GO ?= go

.PHONY: all build vet test race check clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check is what CI runs: static analysis, build, then the race-enabled
# test suite (which subsumes the plain one).
check: vet build race

clean:
	$(GO) clean ./...
