GO ?= go

.PHONY: all build fmt vet test race bench-smoke check clean

all: check

build:
	$(GO) build ./...

# fmt fails when any file needs gofmt, mirroring the CI check.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench-smoke compiles and runs the cheap benchmarks once, catching
# bit-rot in the instrumented hot paths without a full bench run.
bench-smoke:
	$(GO) test -run xxx -bench=. -benchtime=1x ./internal/telemetry/ ./internal/index/

# check is what CI runs: formatting, static analysis, build, the
# race-enabled test suite (which subsumes the plain one), and the
# bench smoke.
check: fmt vet build race bench-smoke

clean:
	$(GO) clean ./...
