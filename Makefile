GO ?= go

.PHONY: all build fmt vet test race race-stress fuzz-smoke cover-check bench-smoke loadtest-smoke loadtest-chaos loadtest-cached loadtest-scatter loadtest-topk loadtest-ingest loadtest-scale docs-check logcheck check clean

all: check

build:
	$(GO) build ./...

# fmt fails when any file needs gofmt, mirroring the CI check.
fmt:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# race-stress repeats the race-enabled suite to shake out schedules a
# single pass misses (the sharded scorer and traversal cache are the
# usual suspects).
race-stress:
	$(GO) test -race -count=2 ./...

# fuzz-smoke runs each index, analysis, and ingest fuzz target
# briefly; the checked-in corpus under testdata/fuzz is replayed by
# the plain test target.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzIndexScore$$' -fuzztime=$(FUZZTIME) ./internal/index/
	$(GO) test -run '^$$' -fuzz '^FuzzShardedMergeEquivalence$$' -fuzztime=$(FUZZTIME) ./internal/index/
	$(GO) test -run '^$$' -fuzz '^FuzzBlockPostingsRoundTrip$$' -fuzztime=$(FUZZTIME) ./internal/index/
	$(GO) test -run '^$$' -fuzz '^FuzzReadIndex$$' -fuzztime=$(FUZZTIME) ./internal/index/
	$(GO) test -run '^$$' -fuzz '^FuzzDeltaApply$$' -fuzztime=$(FUZZTIME) ./internal/index/
	$(GO) test -run '^$$' -fuzz '^FuzzAnalyzeNeed$$' -fuzztime=$(FUZZTIME) ./internal/analysis/
	$(GO) test -run '^$$' -fuzz '^FuzzCorpusDiff$$' -fuzztime=$(FUZZTIME) ./internal/ingest/

# cover-check fails when any internal package's test coverage drops
# below its floor. The package list comes from `go list ./internal/...`
# rather than a hand-maintained enumeration, so a new package is gated
# from the day it lands: the scoring-critical packages carry their
# recorded floors, everything else the default. A package with no test
# files fails outright.
COVER_FLOOR_DEFAULT = 55.0
cover-check:
	@$(GO) test -cover $$($(GO) list ./internal/...) | awk ' \
		BEGIN { floor["expertfind/internal/index"]=91.0; \
		        floor["expertfind/internal/core"]=98.2; \
		        floor["expertfind/internal/loadgen"]=85.0; \
		        floor["expertfind/internal/ingest"]=92.0 } \
		{ print } \
		$$1=="?" { print "coverage floor broken: " $$2 " has no test files"; bad=1 } \
		$$1=="ok" { f=$(COVER_FLOOR_DEFAULT); if ($$2 in floor) f=floor[$$2]; c=-1; \
			for (i=1;i<=NF;i++) if ($$i ~ /%$$/) { split($$i,a,"%"); c=a[1]+0 }; \
			if (c >= 0 && c < f) { printf "coverage floor broken: %s %.1f%% < %.1f%%\n", $$2, c, f; bad=1 } } \
		END { exit bad }'

# bench-smoke compiles and runs the cheap benchmarks once, catching
# bit-rot in the instrumented hot paths without a full bench run.
bench-smoke:
	$(GO) test -run xxx -bench=. -benchtime=1x ./internal/telemetry/ ./internal/index/

# loadtest-smoke runs the deterministic load harness in simulated
# time against both drivers, writes BENCH_4.run.json, and fails on a
# >20% p95 or throughput regression of the steady phase versus the
# committed BENCH_4.json baseline. After an intentional performance
# change, regenerate the baseline:
#   go run ./cmd/loadtest -stamp=false -out BENCH_4.json
loadtest-smoke:
	$(GO) run ./cmd/loadtest -stamp=false -out BENCH_4.run.json -baseline BENCH_4.json

# loadtest-chaos repeats the smoke run with mid-run fault injection
# and a simulated rolling corpus swap; load-shed 503s must land in
# the error taxonomy (shed/injected), not as harness failures.
loadtest-chaos:
	$(GO) run ./cmd/loadtest -stamp=false -chaos -out BENCH_4.chaos.json

# loadtest-cached appends the cached-steady phase (bench 5) and fails
# unless the result cache makes the steady tail faster on every
# driver. After an intentional change to cache or model costs,
# regenerate the committed baseline:
#   go run ./cmd/loadtest -stamp=false -cache-size 4096 -cache-ttl 5m -out BENCH_5.json
loadtest-cached:
	$(GO) run ./cmd/loadtest -stamp=false -cache-size 4096 -cache-ttl 5m \
		-require-cache-speedup -out BENCH_5.run.json

# loadtest-topk runs the pruned-vs-exhaustive top-k head-to-head at a
# larger corpus scale: the same request stream is replayed through the
# in-process finder exhaustively and pruned to the top 10 resources,
# single-threaded under a wall clock. The gate fails unless the pruned
# p95 beats the exhaustive p95 with at least one posting block
# skipped. After an intentional change to scoring costs, regenerate
# the committed record:
#   go run ./cmd/loadtest -topk 10 -scale 0.8 -stamp=false -out BENCH_8.json
loadtest-topk:
	$(GO) run ./cmd/loadtest -topk 10 -scale 0.8 -topk-requests 600 -warmup-requests 80 \
		-require-topk-speedup -stamp=false -out BENCH_8.run.json

# loadtest-scatter boots the real multi-process scatter-gather
# topology — shard-mode serve processes plus a coordinator, built from
# source and SIGKILLed mid-run. Gates: healthy coordinator responses
# byte-identical to a single process over the same corpus, degraded
# queries still answering 200 with the X-Expertfind-Degraded header
# and a climbing degraded-query counter, and byte-identical recovery
# after the shard restarts.
loadtest-scatter:
	$(GO) run ./cmd/loadtest -scatter -scale 0.05 -stamp=false -out BENCH_6.run.json

# loadtest-ingest runs the rolling-ingest live-delta scenario: a
# result cache stays attached while df-preserving deltas are ingested
# live between phases, gating that untouched cache entries keep
# hitting, invalidated ones recompute, no delta escalates to a full
# purge, and the final state ranks bit-identically to a cold rebuild
# of the final remote corpus (BENCH_9.run.json).
loadtest-ingest:
	$(GO) run ./cmd/loadtest -rolling-ingest -scale 0.05 -stamp=false -out BENCH_9.run.json

# loadtest-scale runs the million-user streaming scenario end to end
# at a CI-sized scale: the corpus is streamed to disk in bounded
# memory, the segment index is cold-built from the stream, wall-clock
# queries are served from it, and a full compaction must replay
# sampled queries bit-identically. SCALE=100 is the committed headline
# run (1M+ users; regenerate the record with
#   go run ./cmd/loadtest -scale-run -scale 100 -out BENCH_10.json).
SCALE ?= 10
loadtest-scale:
	$(GO) run ./cmd/loadtest -scale-run -scale $(SCALE) -out BENCH_10.run.json

# logcheck enforces the structured-logging contract: the serving,
# scatter and crawler layers log through log/slog only — a stdlib
# "log" import there regresses the structured access/ops logs.
# (cmd/loadtest and the examples are exempt: they are CLI harnesses
# whose plain log output is their user interface, not ops telemetry.)
LOGCHECK_DIRS = internal/httpapi internal/scatter internal/slo \
	internal/telemetry internal/crawler cmd/serve cmd/coordinator
logcheck:
	@bad=$$(grep -rn --include='*.go' --exclude='*_test.go' '"log"$$' $(LOGCHECK_DIRS)); \
	if [ -n "$$bad" ]; then \
		echo "stdlib log import in slog-converted packages:"; echo "$$bad"; exit 1; \
	fi; \
	echo "logcheck: converted packages log through log/slog only"

# docs-check enforces the documentation contract: every package
# carries a package doc comment, and the metrics reference table in
# OPERATIONS.md matches the telemetry registry (regenerate with
# `go run ./cmd/metricsdoc -write OPERATIONS.md`).
docs-check:
	$(GO) run ./cmd/docscheck
	$(GO) run ./cmd/metricsdoc -check OPERATIONS.md

# check is what CI runs: formatting, static analysis, build, the
# race-enabled test suite (which subsumes the plain one), the bench
# smoke, the load-test SLO and cache gates, the coverage floors, and
# the documentation gates.
check: fmt vet build race bench-smoke loadtest-smoke loadtest-cached loadtest-scatter loadtest-topk loadtest-ingest loadtest-scale cover-check docs-check logcheck

clean:
	$(GO) clean ./...
