module expertfind

go 1.22
