// Teamformation: two extensions from the paper's related-work program
// built on top of expert finding.
//
// First, the Expert Team Formation problem (Lappas et al., KDD 2009):
// a project needs several different competences at once, and the team
// members must be able to collaborate — i.e. be close in the social
// network. Second, the Jury Selection Problem (Cao et al., VLDB
// 2012): a yes/no decision is made by majority vote, and the jury
// should minimize the probability of a wrong decision.
package main

import (
	"fmt"
	"log"

	"expertfind"
)

func main() {
	sys := expertfind.NewSystem(expertfind.Config{Seed: 1, Scale: 0.2})

	// --- Team formation -------------------------------------------
	// A product launch needs an engineer, a gamer and a musician.
	needs := []string{
		"which php function returns the length of a string?",
		"which gaming console should i buy, playstation or xbox?",
		"can you list some famous songs of michael jackson?",
	}
	team, err := sys.FormTeam(needs, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("project team (RarestFirst, diameter cost):")
	for _, need := range needs {
		fmt.Printf("  %-60.60s -> %s\n", need, team.ByNeed[need])
	}
	fmt.Printf("  members: %v\n", team.Members)
	fmt.Printf("  communication diameter %d, sum distance %d, connected: %v\n",
		team.Diameter, team.SumDistance, team.Connected)

	// --- Jury selection -------------------------------------------
	question := "is copper a better electrical conductor than aluminium?"
	jury, err := sys.SelectJury(question, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndecision task: %s\n", question)
	fmt.Printf("selected jury (majority vote): %v\n", jury.Members)
	fmt.Printf("estimated decision error rate: %.4f\n", jury.ErrorRate)
}
