// Crowdrouting: the crowd-searching scenario that motivates the paper
// (§1). A stream of questions has to be routed to small crowds of
// socially connected experts. Social contacts answer out of goodwill,
// not for payment, so the routing layer bounds every expert's open
// questions and rests them between assignments; questions nobody can
// take fall back to a generic crowdsourcing platform — the paper's
// dividing line between social and anonymous crowds.
package main

import (
	"fmt"
	"log"

	"expertfind"
	"expertfind/internal/router"
)

func main() {
	sys := expertfind.NewSystem(expertfind.Config{Seed: 1, Scale: 0.2})

	// Adapt the expert finder to the router's Ranker interface.
	rank := router.RankerFunc(func(need string) ([]router.RankedExpert, error) {
		experts, err := sys.Find(need)
		if err != nil {
			return nil, err
		}
		out := make([]router.RankedExpert, len(experts))
		for i, e := range experts {
			out[i] = router.RankedExpert{Name: e.Name, Score: e.Score}
		}
		return out, nil
	})
	rt := router.New(rank, router.Config{CrowdSize: 3, MaxOpen: 2, Cooldown: 1})

	questions := []string{
		"why is copper a good conductor?",
		"can you list some restaurants in milan?",
		"which php function returns the length of a string?",
		"can you list some famous songs of michael jackson?",
		"which quentin tarantino movie should i watch first?",
		"which gaming console should i buy, playstation or xbox?",
		"can you list some famous european football teams?",
		"can someone explain the theory of relativity in simple words?",
	}

	fmt.Println("routing plan:")
	var open []router.Assignment
	for i, q := range questions {
		a, err := rt.Ask(q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n  Q%d: %s\n", a.ID, q)
		switch {
		case a.Fallback:
			fmt.Println("      no available experts — falling back to a generic crowd platform")
		case a.Partial:
			fmt.Printf("      ask (partial crowd): %v\n", a.Crowd)
		default:
			fmt.Printf("      ask: %v\n", a.Crowd)
		}
		open = append(open, a)

		// Halfway through, the first crowds answer, freeing budget.
		if i == len(questions)/2 {
			for _, done := range open[:2] {
				for _, name := range done.Crowd {
					if err := rt.Complete(done.ID, name); err != nil {
						log.Fatal(err)
					}
				}
			}
			fmt.Println("\n  -- first answers arrived, budget freed --")
		}
	}

	fmt.Printf("\nopen questions: %d\n", rt.OpenQuestions())
	fmt.Println("answer leaderboard:")
	for _, e := range rt.Leaderboard() {
		fmt.Printf("  %-16s %d answered\n", e.Name, int(e.Score))
	}
}
