// Evaluation: measure the system against the self-assessment ground
// truth using only the public API, comparing three configurations the
// paper studies — profiles only (distance 0), the full behavioral
// trace (distance 2), and entity-only matching (α = 0) — on mean
// average precision over the 30 evaluation queries.
package main

import (
	"fmt"
	"log"

	"expertfind"
)

func main() {
	sys := expertfind.NewSystem(expertfind.Config{Seed: 1, Scale: 0.2})

	configs := []struct {
		name string
		opts []expertfind.FindOption
	}{
		{"profiles only (distance 0)", []expertfind.FindOption{expertfind.WithMaxDistance(0)}},
		{"direct resources (distance 1)", []expertfind.FindOption{expertfind.WithMaxDistance(1)}},
		{"full trace (distance 2)", nil},
		{"entity matching only (alpha 0)", []expertfind.FindOption{expertfind.WithAlpha(0)}},
		{"keyword matching only (alpha 1)", []expertfind.FindOption{expertfind.WithAlpha(1)}},
	}

	fmt.Println("mean average precision over the 30 evaluation queries:")
	for _, cfg := range configs {
		mapScore, err := meanAveragePrecision(sys, cfg.opts)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-32s MAP %.4f\n", cfg.name, mapScore)
	}
	fmt.Println("\nexpected shape (paper §3.4, §3.3.2): distance 0 is far worse than")
	fmt.Println("distances 1-2, and alpha extremes lose to the balanced default.")
}

// meanAveragePrecision evaluates a configuration against the ground
// truth exposed by the public API.
func meanAveragePrecision(sys *expertfind.System, opts []expertfind.FindOption) (float64, error) {
	queries := sys.Queries()
	total := 0.0
	for _, q := range queries {
		experts, err := sys.Find(q.Text, opts...)
		if err != nil {
			return 0, err
		}
		relevant, err := sys.Experts(q.Domain)
		if err != nil {
			return 0, err
		}
		relSet := map[string]bool{}
		for _, name := range relevant {
			relSet[name] = true
		}

		hits, sum := 0, 0.0
		for i, e := range experts {
			if relSet[e.Name] {
				hits++
				sum += float64(hits) / float64(i+1)
			}
		}
		if len(relevant) > 0 {
			total += sum / float64(len(relevant))
		}
	}
	return total / float64(len(queries)), nil
}
