// Networkcompare: which social platform is the best source of
// expertise for each domain? The paper finds (§3.6) that Twitter
// leads in computer engineering, science, sport and technology &
// games, while Facebook shines in location, music, sport and
// movies & tv, and LinkedIn trails everywhere. This example measures
// the same thing through the public API: for every evaluation query
// it ranks experts per platform and scores each platform by how many
// true domain experts it puts in the top 5.
package main

import (
	"fmt"
	"log"

	"expertfind"
)

func main() {
	sys := expertfind.NewSystem(expertfind.Config{Seed: 1, Scale: 0.2})

	// precision@5 of true experts, per domain and network.
	type key struct {
		domain  string
		network expertfind.Network
	}
	hits := map[key]int{}
	asked := map[key]int{}

	for _, q := range sys.Queries() {
		for _, net := range expertfind.Networks() {
			experts, err := sys.Find(q.Text, expertfind.WithNetworks(net))
			if err != nil {
				log.Fatal(err)
			}
			k := key{q.Domain, net}
			for i, e := range experts {
				if i >= 5 {
					break
				}
				asked[k]++
				isExp, err := sys.IsExpert(e.Name, q.Domain)
				if err != nil {
					log.Fatal(err)
				}
				if isExp {
					hits[k]++
				}
			}
		}
	}

	fmt.Println("true-expert precision in the top-5, per domain and platform:")
	fmt.Printf("%-22s %10s %10s %10s   %s\n", "domain", "facebook", "twitter", "linkedin", "winner")
	for _, dom := range expertfind.Domains() {
		best, bestP := expertfind.Network("-"), -1.0
		var row []float64
		for _, net := range expertfind.Networks() {
			k := key{dom, net}
			p := 0.0
			if asked[k] > 0 {
				p = float64(hits[k]) / float64(asked[k])
			}
			row = append(row, p)
			if p > bestP {
				best, bestP = net, p
			}
		}
		fmt.Printf("%-22s %10.3f %10.3f %10.3f   %s\n", dom, row[0], row[1], row[2], best)
	}
}
