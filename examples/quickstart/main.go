// Quickstart: build an expert finding system over the synthetic
// social corpus and ask it a question, exactly like Anna in the
// paper's Fig. 1 — who, among the people in my social circle, should
// I ask about freestyle swimming?
package main

import (
	"fmt"
	"log"

	"expertfind"
)

func main() {
	// A reduced-scale corpus keeps the example fast; Scale 1.0 builds
	// the full ~20k-resource evaluation corpus.
	sys := expertfind.NewSystem(expertfind.Config{Seed: 1, Scale: 0.2})
	st := sys.Stats()
	fmt.Printf("corpus: %d candidates, %d resources (%d indexed)\n\n",
		st.Candidates, st.Resources, st.Indexed)

	need := "who is the best at freestyle swimming after michael phelps?"
	experts, err := sys.Find(need)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("expertise need: %s\n", need)
	fmt.Println("top experts:")
	for i, e := range experts {
		if i >= 5 {
			break
		}
		fmt.Printf("  %d. %-16s score %7.1f (%d supporting resources)\n",
			i+1, e.Name, e.Score, e.SupportingResources)
	}

	// The paper's second question: on which platform should Anna
	// contact them?
	best, _, err := sys.BestNetwork(need)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbest platform to reach them: %s\n", best)
}
