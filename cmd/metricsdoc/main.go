// Command metricsdoc generates the metrics reference table in
// OPERATIONS.md from the telemetry registry itself, so the operator
// documentation can never drift from the code. Every instrumented
// package registers its metric families in package-level vars (or
// init), so importing them is enough to observe the full set — the
// tool gathers the default registry, renders one markdown row per
// family (name, type, labels, meaning), and splices it between the
// marker comments in the target file.
//
// Usage:
//
//	metricsdoc            # print the table
//	metricsdoc -write OPERATIONS.md
//	metricsdoc -check OPERATIONS.md   # exit 1 when the block is stale
//
// The target file must contain the markers:
//
//	<!-- metricsdoc:begin -->
//	<!-- metricsdoc:end -->
//
// CI runs -check; run -write after adding or renaming a metric.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"expertfind/internal/telemetry"

	// Imported for their metric registrations only.
	_ "expertfind/internal/core"
	_ "expertfind/internal/crawler"
	_ "expertfind/internal/httpapi"
	_ "expertfind/internal/index"
	_ "expertfind/internal/rescache"
	_ "expertfind/internal/scatter"
	_ "expertfind/internal/slo"
	_ "expertfind/internal/socialgraph"
)

const (
	beginMarker = "<!-- metricsdoc:begin -->"
	endMarker   = "<!-- metricsdoc:end -->"
)

func main() {
	write := flag.String("write", "", "splice the table into this file's marker block")
	check := flag.String("check", "", "verify this file's marker block is current")
	flag.Parse()

	table := render(telemetry.Default().Gather())
	switch {
	case *write != "":
		updated, err := splice(*write, table)
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*write, updated, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("metricsdoc: wrote %s\n", *write)
	case *check != "":
		updated, err := splice(*check, table)
		if err != nil {
			fatal(err)
		}
		current, err := os.ReadFile(*check)
		if err != nil {
			fatal(err)
		}
		if string(current) != string(updated) {
			fmt.Fprintf(os.Stderr, "metricsdoc: %s metrics table is stale; run: go run ./cmd/metricsdoc -write %s\n", *check, *check)
			os.Exit(1)
		}
		fmt.Printf("metricsdoc: %s is current\n", *check)
	default:
		fmt.Print(table)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "metricsdoc: %v\n", err)
	os.Exit(1)
}

// render builds the markdown table, sorted by metric name so output
// does not depend on package initialization order.
func render(fams []telemetry.FamilySnapshot) string {
	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	var sb strings.Builder
	sb.WriteString("| Metric | Type | Labels | Meaning |\n")
	sb.WriteString("|---|---|---|---|\n")
	for _, f := range fams {
		labels := "–"
		if len(f.LabelNames) > 0 {
			labels = "`" + strings.Join(f.LabelNames, "`, `") + "`"
		}
		fmt.Fprintf(&sb, "| `%s` | %s | %s | %s |\n",
			f.Name, f.Type, labels, strings.ReplaceAll(f.Help, "|", "\\|"))
	}
	return sb.String()
}

// splice returns path's contents with the marker block replaced by
// table.
func splice(path, table string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s := string(b)
	begin := strings.Index(s, beginMarker)
	end := strings.Index(s, endMarker)
	if begin < 0 || end < 0 || end < begin {
		return nil, fmt.Errorf("%s: marker block %q ... %q not found", path, beginMarker, endMarker)
	}
	return []byte(s[:begin+len(beginMarker)] + "\n" + table + s[end:]), nil
}
