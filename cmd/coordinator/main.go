// Command coordinator serves the expert finding API by fanning
// queries out to a scatter-gather shard topology (shard-mode cmd/serve
// processes) and merging their replies. It loads no corpus: candidate
// names and the pool fingerprint are bootstrapped from shard metadata,
// and healthy-topology /v1/find responses are byte-identical to a
// single process serving the same corpus.
//
// Usage:
//
//	coordinator -shards http://h1:8081,http://h2:8082,...
//	            [-addr :8080] [-shard-timeout D] [-request-timeout D]
//	            [-max-concurrent N] [-retry-after D] [-hedge-disable]
//	            [-health-interval D] [-topk N]
//	            [-log-format text|json] [-log-level L] [-log-stamp=false]
//	            [-slo-latency D] [-slo-availability F] [-slo-window D]
//	            [-slo-burn-alert F] [-pprof-dir DIR]
//
// Shard URL position defines the shard id: the i-th URL must be the
// process started with -shard-id i -shard-count len(urls).
//
// With -topk N, /v1/find requests without their own topk parameter
// bound resource matching to the N best-ranked reachable resources:
// the parameter is injected into the query forwarded to every shard,
// each shard prunes to its local top N (MaxScore), and the merge is
// truncated to N — byte-identical to a single -topk N process.
//
// Every shard call runs under a per-call deadline, bounded retries,
// a hedged backup request past the shard's latency quantile, and a
// per-shard circuit breaker. Shards that stay down are dropped from
// queries: responses carry the X-Expertfind-Degraded header and a
// "degraded" JSON field instead of failing, and /readyz reports
// "degraded" while part of the topology is away.
//
// Observability: logs are structured (log/slog, -log-format/-log-level,
// -log-stamp=false for byte-deterministic output); /v1 traffic feeds
// the expertfind_slo_* burn-rate gauges (with rate-limited pprof
// captures into -pprof-dir on breach); /debug/traces/{rid} serves the
// assembled cross-process timeline of one query, stitching the span
// snapshots fetched from every shard under the coordinator's fan-out
// spans, and /debug/slow lists the tail-sampled retained traces.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"expertfind/internal/httpapi"
	"expertfind/internal/scatter"
	"expertfind/internal/slo"
	"expertfind/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.String("shards", "", "comma-separated shard base URLs, position = shard id (required)")
	shardTimeout := flag.Duration("shard-timeout", 2*time.Second, "per-call deadline budget for one shard request")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request handling deadline (0 disables)")
	maxConc := flag.Int("max-concurrent", 64, "max in-flight /v1 requests before shedding load (0 = unlimited)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 503 responses")
	hedgeDisable := flag.Bool("hedge-disable", false, "disable hedged second requests")
	healthInterval := flag.Duration("health-interval", time.Second, "shard readiness probe interval")
	topK := flag.Int("topk", 0, "default top-k resource bound for /v1/find, forwarded to every shard (0 = exhaustive)")
	logFormat := flag.String("log-format", "text", "log record format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	logStamp := flag.Bool("log-stamp", true, "timestamp log records (false for byte-deterministic output)")
	sloLatency := flag.Duration("slo-latency", 500*time.Millisecond, "latency objective for /v1 requests (also the slow-trace keep threshold)")
	sloAvail := flag.Float64("slo-availability", 0.999, "availability objective (target non-5xx ratio)")
	sloWindow := flag.Duration("slo-window", 5*time.Minute, "sliding window for SLO burn rates")
	sloBurnAlert := flag.Float64("slo-burn-alert", 4, "burn rate that triggers an on-breach profile capture")
	pprofDir := flag.String("pprof-dir", "", "directory for on-breach pprof captures (empty disables capturing)")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, telemetry.LogConfig{
		Format: *logFormat, Level: *logLevel, NoStamp: !*logStamp,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "coordinator: %v\n", err)
		os.Exit(1)
	}
	fatalf := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	var bases []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			bases = append(bases, strings.TrimRight(s, "/"))
		}
	}
	if len(bases) == 0 {
		fatalf("-shards is required")
	}

	co, err := scatter.New(scatter.Options{
		Shards:         bases,
		ShardTimeout:   *shardTimeout,
		Hedge:          scatter.HedgePolicy{Disable: *hedgeDisable},
		HealthInterval: *healthInterval,
		Logger:         logger,
	})
	if err != nil {
		fatalf("bad topology", "err", err.Error())
	}

	tracker := slo.New(slo.Config{
		Availability: *sloAvail,
		Latency:      *sloLatency,
		Window:       *sloWindow,
		BurnAlert:    *sloBurnAlert,
		ProfileDir:   *pprofDir,
		Logger:       logger,
	})
	// Slow traces are defined by the latency objective: anything that
	// breaches it is retained in the tracer's keep ring.
	tracer := telemetry.DefaultTracer()
	policy := tracer.KeepPolicy()
	policy.SlowThreshold = tracker.Latency()
	tracer.SetKeepPolicy(policy)

	handler := httpapi.NewCoordinator(co, httpapi.Options{
		RequestTimeout: *reqTimeout,
		MaxConcurrent:  *maxConc,
		RetryAfter:     *retryAfter,
		Logger:         logger,
		Tracer:         tracer,
		SLO:            tracker,
		DefaultTopK:    *topK,
	})

	// Background health loop: bootstrap retries until the topology is
	// known, then periodic readiness probes keep /readyz and the
	// shards-down gauge fresh.
	loopCtx, stopLoop := context.WithCancel(context.Background())
	defer stopLoop()
	go co.Run(loopCtx)

	writeTimeout := 30 * time.Second
	if *reqTimeout > 0 && *reqTimeout+5*time.Second > writeTimeout {
		writeTimeout = *reqTimeout + 5*time.Second
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
	}

	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("shutdown", "err", err.Error())
		}
		close(idle)
	}()

	logger.Info("coordinating", "shards", len(bases), "addr", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatalf("listen failed", "err", err.Error())
	}
	<-idle
}
