// Command coordinator serves the expert finding API by fanning
// queries out to a scatter-gather shard topology (shard-mode cmd/serve
// processes) and merging their replies. It loads no corpus: candidate
// names and the pool fingerprint are bootstrapped from shard metadata,
// and healthy-topology /v1/find responses are byte-identical to a
// single process serving the same corpus.
//
// Usage:
//
//	coordinator -shards http://h1:8081,http://h2:8082,...
//	            [-addr :8080] [-shard-timeout D] [-request-timeout D]
//	            [-max-concurrent N] [-retry-after D] [-hedge-disable]
//	            [-health-interval D]
//
// Shard URL position defines the shard id: the i-th URL must be the
// process started with -shard-id i -shard-count len(urls).
//
// Every shard call runs under a per-call deadline, bounded retries,
// a hedged backup request past the shard's latency quantile, and a
// per-shard circuit breaker. Shards that stay down are dropped from
// queries: responses carry the X-Expertfind-Degraded header and a
// "degraded" JSON field instead of failing, and /readyz reports
// "degraded" while part of the topology is away.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"expertfind/internal/httpapi"
	"expertfind/internal/scatter"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.String("shards", "", "comma-separated shard base URLs, position = shard id (required)")
	shardTimeout := flag.Duration("shard-timeout", 2*time.Second, "per-call deadline budget for one shard request")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request handling deadline (0 disables)")
	maxConc := flag.Int("max-concurrent", 64, "max in-flight /v1 requests before shedding load (0 = unlimited)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 503 responses")
	hedgeDisable := flag.Bool("hedge-disable", false, "disable hedged second requests")
	healthInterval := flag.Duration("health-interval", time.Second, "shard readiness probe interval")
	flag.Parse()

	var bases []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			bases = append(bases, strings.TrimRight(s, "/"))
		}
	}
	if len(bases) == 0 {
		log.Fatal("coordinator: -shards is required")
	}

	co, err := scatter.New(scatter.Options{
		Shards:         bases,
		ShardTimeout:   *shardTimeout,
		Hedge:          scatter.HedgePolicy{Disable: *hedgeDisable},
		HealthInterval: *healthInterval,
		Logger:         log.Default(),
	})
	if err != nil {
		log.Fatalf("coordinator: %v", err)
	}

	handler := httpapi.NewCoordinator(co, httpapi.Options{
		RequestTimeout: *reqTimeout,
		MaxConcurrent:  *maxConc,
		RetryAfter:     *retryAfter,
		Logger:         log.Default(),
	})

	// Background health loop: bootstrap retries until the topology is
	// known, then periodic readiness probes keep /readyz and the
	// shards-down gauge fresh.
	loopCtx, stopLoop := context.WithCancel(context.Background())
	defer stopLoop()
	go co.Run(loopCtx)

	writeTimeout := 30 * time.Second
	if *reqTimeout > 0 && *reqTimeout+5*time.Second > writeTimeout {
		writeTimeout = *reqTimeout + 5*time.Second
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}

	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("coordinator: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("coordinator: shutdown: %v", err)
		}
		close(idle)
	}()

	log.Printf("coordinating %d shards on %s", len(bases), *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Printf("coordinator: listen: %v", err)
		os.Exit(1)
	}
	<-idle
}
