// Command expertfind answers expertise needs from the command line:
// it builds the synthetic social corpus, ranks the expert candidates
// for each query given as an argument (or on stdin, one per line) and
// prints the top experts with their scores and the best platform to
// contact them on.
//
// Usage:
//
//	expertfind [flags] "why is copper a good conductor?" ...
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"expertfind"
)

func main() {
	seed := flag.Int64("seed", 1, "corpus seed")
	scale := flag.Float64("scale", 0.5, "corpus volume multiplier")
	corpus := flag.String("corpus", "", "load a saved corpus snapshot instead of generating")
	top := flag.Int("top", 5, "number of experts to print")
	alpha := flag.Float64("alpha", 0.6, "term/entity matching balance in [0,1]")
	distance := flag.Int("distance", 2, "max social-graph distance (0..2)")
	networks := flag.String("networks", "", "comma-separated subset of facebook,twitter,linkedin")
	friends := flag.Bool("friends", false, "include friend users' resources")
	explain := flag.Bool("explain", false, "show the evidence behind the top expert")
	flag.Parse()

	t0 := time.Now()
	var sys *expertfind.System
	if *corpus != "" {
		var err error
		sys, err = expertfind.NewSystemFromCorpus(*corpus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "expertfind: %v\n", err)
			os.Exit(1)
		}
	} else {
		sys = expertfind.NewSystem(expertfind.Config{Seed: *seed, Scale: *scale})
	}
	st := sys.Stats()
	fmt.Fprintf(os.Stderr, "corpus ready: %d candidates, %d/%d resources indexed (%v)\n",
		st.Candidates, st.Indexed, st.Resources, time.Since(t0).Round(time.Millisecond))

	opts := []expertfind.FindOption{
		expertfind.WithAlpha(*alpha),
		expertfind.WithMaxDistance(*distance),
	}
	if *friends {
		opts = append(opts, expertfind.WithFriends())
	}
	if *networks != "" {
		var nets []expertfind.Network
		for _, n := range strings.Split(*networks, ",") {
			nets = append(nets, expertfind.Network(strings.TrimSpace(n)))
		}
		opts = append(opts, expertfind.WithNetworks(nets...))
	}

	queries := flag.Args()
	if len(queries) == 0 {
		sc := bufio.NewScanner(os.Stdin)
		for sc.Scan() {
			if q := strings.TrimSpace(sc.Text()); q != "" {
				queries = append(queries, q)
			}
		}
		if err := sc.Err(); err != nil {
			fmt.Fprintf(os.Stderr, "expertfind: reading stdin: %v\n", err)
			os.Exit(1)
		}
	}
	if len(queries) == 0 {
		fmt.Fprintln(os.Stderr, "expertfind: no queries; pass them as arguments or on stdin")
		os.Exit(2)
	}

	for _, q := range queries {
		if err := answer(sys, q, *top, *explain, opts); err != nil {
			fmt.Fprintf(os.Stderr, "expertfind: %v\n", err)
			os.Exit(1)
		}
	}
}

func answer(sys *expertfind.System, q string, top int, explain bool, opts []expertfind.FindOption) error {
	experts, err := sys.Find(q, opts...)
	if err != nil {
		return err
	}
	best, _, err := sys.BestNetwork(q, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("need: %s\n", q)
	if len(experts) == 0 {
		fmt.Println("  no experts found")
		return nil
	}
	fmt.Printf("  best platform to reach them: %s\n", best)
	for i, e := range experts {
		if i >= top {
			break
		}
		fmt.Printf("  %2d. %-16s score %8.2f  (%d supporting resources)\n",
			i+1, e.Name, e.Score, e.SupportingResources)
	}
	if explain {
		expl, err := sys.Explain(q, experts[0].Name, 3, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("  why %s:\n", expl.Expert)
		for _, ev := range expl.Evidence {
			fmt.Printf("    [%s/%s d%d %.1f] %s\n", ev.Network, ev.Kind, ev.Distance, ev.Contribution, ev.Snippet)
		}
	}
	return nil
}
