package main

import (
	"context"
	"fmt"
	"log"
	"reflect"
	"strings"
	"time"

	"expertfind"
	"expertfind/internal/analysis"
	"expertfind/internal/core"
	"expertfind/internal/corpusio"
	"expertfind/internal/dataset"
	"expertfind/internal/faults"
	"expertfind/internal/ingest"
	"expertfind/internal/loadgen"
	"expertfind/internal/rescache"
	"expertfind/internal/socialgraph"
)

// The rolling-ingest scenario drives the cached in-process finder
// while live deltas land between phases — the serve -ingest-interval
// deployment, compressed into a gated harness run. An identically
// generated remote twin corpus is edited with update-only,
// df-preserving deltas (each touched text repeats one of its own
// words, so postings move but no term gains or loses a document and
// collection statistics stay fixed); the ingester fetches, diffs and
// applies each delta to the live graph and sharded index, invalidating
// only the result-cache entries whose inputs were touched.
//
// Three gates, all unconditional:
//
//   - scoped survival: after every delta, at least one pre-delta cache
//     entry still serves a first-lookup hit, and across the run at
//     least one entry was invalidated and recomputed — the scenario
//     fails on both wholesale purges and no-op invalidation;
//   - no full purge: an update-only delta must never escalate to a
//     whole-cache drop (collection statistics did not move);
//   - differential: after the last delta, every need — cached hit or
//     fresh compute — must rank bit-identically to a cold rebuild of
//     the final remote corpus.
const ingestOut = "BENCH_9.run.json"

func runIngest(o *options) int {
	if o.corpusPath != "" {
		log.Printf("INGEST: -rolling-ingest re-fetches a generated remote twin; drop -corpus")
		return 1
	}
	if o.mode != "real" {
		log.Printf("rolling-ingest scenario measures wall-clock latency; forcing -mode real")
		o.mode = "real"
	}
	out := o.out
	if out == defaultOut {
		out = ingestOut
	}

	sys := buildSystem(o)
	st := sys.Stats()
	finder := sys.CoreFinder()
	pipe := finder.Pipeline()
	params, err := expertfind.ResolveParams()
	if err != nil {
		log.Printf("INGEST: resolve params: %v", err)
		return 1
	}

	// The remote twin: generated from the same config, so it starts as
	// an exact same-ID replica of the installed corpus.
	remote := dataset.Generate(dataset.Config{
		Seed: o.corpusSeed, Scale: o.scale, IndexShards: o.indexShards,
	})

	cacheSize := o.cacheSize
	if cacheSize <= 0 {
		cacheSize = 4096
	}
	cache := rescache.New(rescache.Options{Capacity: cacheSize, TTL: o.cacheTTL})
	sys.SetResultCache(cache.Attach())
	ing, err := sys.NewIngester(ingest.Config{
		API:   faults.Wrap(remote.Graph, faults.Config{}),
		Cache: cache,
	})
	if err != nil {
		log.Printf("INGEST: %v", err)
		return 1
	}

	workload := loadgen.NewWorkload(loadgen.WorkloadConfig{
		Seed: o.seed, ColdFraction: -1, // every need cacheable and re-askable
	}, loadgen.SystemSource(sys))

	warm, _, _ := ingestPhase("warm", o.ingestReq, workload, finder, params)
	phases := []loadgen.PhaseResult{warm}

	code := 0
	cursor := 0
	survivedTotal, droppedTotal := uint64(0), uint64(0)
	for round := 1; round <= o.ingestRounds; round++ {
		var touched int
		touched, cursor = dfPreservingDelta(remote, pipe, cursor, o.ingestTouch)
		if touched == 0 {
			log.Printf("INGEST GATE: round %d: no eligible resources for a df-preserving delta", round)
			return 1
		}
		rep, err := ing.RunOnce(context.Background())
		if err != nil {
			log.Printf("INGEST: round %d: %v", round, err)
			return 1
		}
		if rep.FullPurge {
			log.Printf("INGEST GATE: round %d: update-only delta escalated to a full cache purge", round)
			code = 1
		}
		if rep.Updates != touched {
			log.Printf("INGEST GATE: round %d: delta applied %d updates, edited %d resources", round, rep.Updates, touched)
			code = 1
		}
		phase, survived, dropped := ingestPhase(fmt.Sprintf("delta-steady-%d", round), o.ingestReq, workload, finder, params)
		phases = append(phases, phase)
		survivedTotal += survived
		droppedTotal += dropped
		if survived == 0 {
			log.Printf("INGEST GATE: round %d: no cache entry survived the delta (dropped %d) — invalidation is not scoped",
				round, rep.CacheDropped)
			code = 1
		} else {
			log.Printf("round %d: %d resources edited, %d cache entries dropped, %d first lookups still hit, %d recomputed",
				round, touched, rep.CacheDropped, survived, dropped)
		}
	}
	if droppedTotal == 0 {
		log.Printf("INGEST GATE: no cache entry was invalidated across %d deltas — the scoped path went unexercised", o.ingestRounds)
		code = 1
	}

	code |= ingestDifferential(sys, remote, workload, o, params)

	rep := &loadgen.Report{
		Schema: loadgen.Schema,
		Bench:  9,
		Mode:   o.mode,
		Seed:   o.seed,
		Corpus: loadgen.CorpusInfo{
			Seed: o.corpusSeed, Scale: o.scale,
			Candidates: st.Candidates, Documents: st.Indexed,
		},
		Drivers: []loadgen.DriverReport{{Driver: "inprocess", Phases: phases}},
	}
	if o.stamp {
		rep.GitRev = gitRev(o.rev)
		rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	}
	if err := rep.WriteFile(out); err != nil {
		log.Fatalf("write %s: %v", out, err)
	}
	log.Printf("wrote %s", out)
	printSummary(rep)
	if code == 0 {
		log.Printf("ingest gates passed: %d survivals and %d scoped recomputes across %d deltas, final state matches cold rebuild",
			survivedTotal, droppedTotal, o.ingestRounds)
	}
	return code
}

// ingestPhase replays n needs from the head of the workload stream
// through the cached finder, single-threaded under a wall clock, and
// reports the phase plus the first-lookup dispositions: how many
// distinct needs hit on their first ask (their entry survived whatever
// happened since the last phase) and how many missed.
func ingestPhase(name string, n int, w *loadgen.Workload, finder *core.Finder, params core.Params) (loadgen.PhaseResult, uint64, uint64) {
	lat := make([]float64, 0, n)
	cacheCounts := make(map[string]uint64)
	seen := make(map[string]bool)
	firstHits, firstMisses := uint64(0), uint64(0)
	ctx := context.Background()
	t0 := time.Now()
	for seq := uint64(0); seq < uint64(n); seq++ {
		need := w.Need(seq)
		q0 := time.Now()
		_, status := finder.FindCachedContext(ctx, need, params)
		lat = append(lat, time.Since(q0).Seconds())
		if status != "" {
			cacheCounts[string(status)]++
		}
		if !seen[need] {
			seen[need] = true
			if status == core.CacheHit {
				firstHits++
			} else {
				firstMisses++
			}
		}
	}
	wall := time.Since(t0).Seconds()
	res := loadgen.PhaseResult{
		Name:            name,
		Mode:            "closed",
		Concurrency:     1,
		Requests:        uint64(n),
		Cache:           cacheCounts,
		DurationSeconds: wall,
		Latency:         percentilesOf(lat),
	}
	if wall > 0 {
		res.QPS = float64(n) / wall
	}
	return res, firstHits, firstMisses
}

// dfPreservingDelta edits up to n live remote resources starting at
// the rotating cursor, giving each text one repeated copy of its own
// longest word: the postings move (term frequencies change) but no
// term gains or loses a document and the language filter cannot flip,
// so the delta is update-only with collection statistics fixed. It
// returns the number of resources edited and the advanced cursor.
func dfPreservingDelta(remote *dataset.Dataset, pipe *analysis.Pipeline, cursor, n int) (int, int) {
	touched := 0
	total := remote.Graph.NumResources()
	for off := 0; off < total && touched < n; off++ {
		id := socialgraph.ResourceID((cursor + off) % total)
		if remote.Graph.ResourceDeleted(id) {
			continue
		}
		r := remote.Graph.Resource(id)
		oldA, ok := pipe.Analyze(r.Text, r.URLs)
		if !ok {
			continue
		}
		longest := ""
		for _, w := range strings.Fields(r.Text) {
			if len(w) > len(longest) {
				longest = w
			}
		}
		newText := r.Text + " " + longest
		newA, ok := pipe.Analyze(newText, r.URLs)
		if !ok || reflect.DeepEqual(oldA.Terms, newA.Terms) {
			continue
		}
		remote.Graph.SetResourceText(id, newText, r.URLs...)
		touched++
		if touched == n {
			return touched, (cursor + off + 1) % total
		}
	}
	return touched, cursor
}

// ingestDifferential is the closing gate: every workload need — served
// from cache or freshly computed — must rank bit-identically to a cold
// finder rebuilt from the final remote corpus state.
func ingestDifferential(sys *expertfind.System, remote *dataset.Dataset, w *loadgen.Workload, o *options, params core.Params) int {
	coldPipe := analysis.New(analysis.Options{Web: remote.Web})
	coldIx, _ := corpusio.BuildShardedIndex(remote.Graph, coldPipe, o.indexShards)
	cold := core.NewFinder(remote.Graph, coldIx, coldPipe, remote.Candidates)

	finder := sys.CoreFinder()
	ctx := context.Background()
	checked := make(map[string]bool)
	for seq := uint64(0); seq < uint64(o.ingestReq); seq++ {
		need := w.Need(seq)
		if checked[need] {
			continue
		}
		checked[need] = true
		want := cold.Find(need, params)
		cached, _ := finder.FindCachedContext(ctx, need, params)
		if !reflect.DeepEqual(cached, want) {
			log.Printf("INGEST GATE: cached ranking for %q diverged from the cold rebuild", need)
			return 1
		}
		if live := finder.Find(need, params); !reflect.DeepEqual(live, want) {
			log.Printf("INGEST GATE: live ranking for %q diverged from the cold rebuild", need)
			return 1
		}
	}
	log.Printf("differential gate passed: %d needs bit-identical to the cold rebuild of the final remote state", len(checked))
	return 0
}
