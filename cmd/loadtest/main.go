// Command loadtest drives the expert finding system with a
// deterministic, corpus-derived workload and emits a machine-readable
// BENCH report (internal/loadgen) that CI diffs across commits.
//
// Usage:
//
//	loadtest [-mode sim|real] [-driver inprocess|http|both]
//	         [-seed N] [-corpus-seed N] [-scale F] [-corpus file.json.gz]
//	         [-concurrency N] [-qps F] [-top N]
//	         [-warmup-requests N] [-ramp-requests N] [-steady-requests N]
//	         [-open-requests N] [-warmup D] [-ramp D] [-steady D]
//	         [-cache-size N] [-cache-ttl D] [-cached-requests N]
//	         [-require-cache-speedup]
//	         [-topk N] [-topk-requests N] [-require-topk-speedup]
//	         [-chaos] [-chaos-transient F] [-chaos-ratelimit F]
//	         [-chaos-latency D] [-chaos-requests N] [-chaos-duration D]
//	         [-rolling-ingest] [-ingest-rounds N] [-ingest-requests N]
//	         [-ingest-touch N]
//	         [-addr URL] [-max-concurrent N] [-request-timeout D]
//	         [-scatter] [-scatter-shards N] [-scatter-requests N]
//	         [-scatter-verbose]
//	         [-scale-run] [-scale-dir DIR] [-scale-requests N]
//	         [-scale-chunk-docs N] [-scale-max-heap-mb N]
//	         [-segment-flush-docs N] [-segment-max N]
//	         [-out BENCH_4.json] [-baseline file] [-max-regress F]
//	         [-stamp] [-rev REV] [-compare-only]
//
// Modes. In sim mode (the default), phases are request-count-bounded
// and latency comes from a seeded service-time model on a virtual
// clock: the report is byte-identical across runs with the same seed
// (pass -stamp=false to drop the git-rev/timestamp provenance
// fields). In real mode, phases are duration-bounded and latency is
// wall-clock — use it for actual performance numbers.
//
// Drivers. "inprocess" exercises the pipeline through core.Finder
// directly; "http" drives a live /v1/find — a self-hosted server on a
// loopback port, or the server at -addr. "both" (default) runs the
// two back to back over the same request stream.
//
// Caching. -cache-size > 0 appends a "cached-steady" phase: a
// bounded LRU result cache (internal/rescache) is attached to the
// system and the Zipf-skewed request stream continues against it, so
// the report contrasts cached against uncached steady state — phase
// results carry hit/miss/coalesced counts, and the report's bench
// number becomes 5 (BENCH_5.json). In sim mode the cached phase runs
// at concurrency 1 so the hit pattern is a pure function of the
// request stream; the cache shares the run's virtual clock, making
// TTL expiry simulated too. -require-cache-speedup exits nonzero
// unless every driver's cached-steady p95 beats its steady p95.
// Against a remote -addr server the attach is local and ineffective —
// enable caching on the server instead (serve -cache-size).
//
// Top-k. -topk > 0 replaces the sim/real phases with the pruned-vs-
// exhaustive head-to-head scenario (cmd/loadtest/topk.go): the same
// deterministic request stream is replayed through the in-process
// finder exhaustively and pruned to the top-k resource bound, on a
// single thread under a wall clock, and the report (BENCH_8.json by
// default) records both phases' latency percentiles plus the pruning
// counters each accumulated. -require-topk-speedup exits nonzero
// unless the pruned p95 beats the exhaustive p95 with at least one
// posting block skipped.
//
// Chaos. -chaos appends a chaos phase: concurrency spikes to 4x and
// every request passes the internal/faults gate first, so injected
// transients/rate-limits (and, against a small -max-concurrent
// server, genuine load-shed 503s) show up in the error taxonomy
// while the harness still exits 0 — shed load is correct behavior,
// not a harness failure. With -cache-size too, the rolling corpus
// swap (the chaos-outage not-ready flip) is followed by a
// swap-recovered phase that re-attaches a fresh cache generation and
// gates, unconditionally, that the server serves cache hits again
// with a clean taxonomy — recovery after a swap is asserted, not
// assumed.
//
// Rolling ingest. -rolling-ingest replaces the sim/real phases with
// the live-delta scenario (cmd/loadtest/ingest.go): an identically
// generated remote twin corpus is edited with df-preserving updates
// between phases and re-ingested live through internal/ingest while a
// result cache stays attached. Each delta phase gates that untouched
// cache entries keep hitting (scoped, not wholesale, invalidation)
// and that invalidated entries recompute; the final state must rank
// bit-identically to a cold rebuild of the final remote corpus. The
// report lands in BENCH_9.run.json unless -out is set explicitly.
//
// Scatter. -scatter replaces the sim/real phases with the
// multi-process scatter-gather chaos scenario: it builds the real
// serve and coordinator binaries, boots -scatter-shards shard
// processes plus a coordinator on loopback ports, and gates three
// wall-clock phases — healthy (coordinator responses byte-identical
// to a single-process baseline over the same corpus), degraded (one
// shard SIGKILLed mid-run: every query still answers 200 with the
// X-Expertfind-Degraded header and the degraded-query counter > 0),
// and recovered (the shard restarted: byte-identical again). The
// report lands in BENCH_6.run.json unless -out is set explicitly.
//
// Scale. -scale-run replaces the sim/real phases with the
// million-user streaming scenario (cmd/loadtest/scale.go): the -scale
// corpus is streamed to disk in bounded memory, the disk-backed
// segment index is cold-built from the stream (or reopened from a
// -scale-dir a previous run populated), wall-clock queries are served
// from it, and a full compaction is followed by a bit-identical
// replay of sampled queries. The report lands in BENCH_10.json unless
// -out is set, carrying per-phase structural counters and the peak
// heap across the run; the gates (>= 1M users at scale >= 100, >= 2
// seals, a compaction, identical replays, heap under
// -scale-max-heap-mb) always apply.
//
// Gating. With -baseline, the run's steady-phase p95 and throughput
// are compared against the saved report; regressions beyond
// -max-regress (default 20%) exit nonzero. -compare-only gates
// -out against -baseline without running anything.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"

	"expertfind"
	"expertfind/internal/httpapi"
	"expertfind/internal/loadgen"
	"expertfind/internal/rescache"
	"expertfind/internal/resilience"
)

type options struct {
	mode, driver string
	seed         int64
	corpusSeed   int64
	scale        float64
	corpusPath   string
	indexShards  int

	concurrency int
	qps         float64
	top         int

	warmupReq, rampReq, steadyReq, openReq int
	warmupDur, rampDur, steadyDur          time.Duration

	cacheSize      int
	cacheTTL       time.Duration
	cachedReq      int
	requireSpeedup bool

	topK               int
	topkReq            int
	requireTopkSpeedup bool

	chaos          bool
	chaosTransient float64
	chaosRateLimit float64
	chaosLatency   time.Duration
	chaosReq       int
	chaosDur       time.Duration

	rollingIngest bool
	ingestRounds  int
	ingestReq     int
	ingestTouch   int

	addr       string
	maxConc    int
	reqTimeout time.Duration

	scatter        bool
	scatterShards  int
	scatterReq     int
	scatterVerbose bool

	scaleRun       bool
	scaleDir       string
	scaleReq       int
	scaleChunkDocs int
	scaleMaxHeapMB int
	segmentFlush   int
	segmentMax     int

	out         string
	baseline    string
	maxRegress  float64
	stamp       bool
	rev         string
	compareOnly bool
}

// defaultOut is the sim report's default path; the scatter scenario
// redirects an unchanged -out away from it so a real-mode run never
// clobbers the committed deterministic baseline.
const defaultOut = "BENCH_4.json"

func parseFlags() *options {
	var o options
	flag.StringVar(&o.mode, "mode", "sim", "sim (deterministic virtual time) or real (wall clock)")
	flag.StringVar(&o.driver, "driver", "both", "inprocess, http, or both")
	flag.Int64Var(&o.seed, "seed", 11, "workload and service-model seed")
	flag.Int64Var(&o.corpusSeed, "corpus-seed", 7, "corpus generation seed (ignored with -corpus)")
	flag.Float64Var(&o.scale, "scale", 0.1, "corpus volume multiplier (ignored with -corpus)")
	flag.StringVar(&o.corpusPath, "corpus", "", "load a saved corpus snapshot instead of generating")
	flag.IntVar(&o.indexShards, "index-shards", 0, "index shards (0 = GOMAXPROCS)")

	flag.IntVar(&o.concurrency, "concurrency", 8, "closed-loop worker count")
	flag.Float64Var(&o.qps, "qps", 500, "open-loop target arrival rate")
	flag.IntVar(&o.top, "top", 5, "experts requested per query")

	flag.IntVar(&o.warmupReq, "warmup-requests", 120, "sim warmup phase size")
	flag.IntVar(&o.rampReq, "ramp-requests", 120, "sim ramp phase size")
	flag.IntVar(&o.steadyReq, "steady-requests", 600, "sim steady phase size")
	flag.IntVar(&o.openReq, "open-requests", 300, "sim open-loop phase size")
	flag.DurationVar(&o.warmupDur, "warmup", 2*time.Second, "real-mode warmup duration")
	flag.DurationVar(&o.rampDur, "ramp", 2*time.Second, "real-mode ramp duration")
	flag.DurationVar(&o.steadyDur, "steady", 10*time.Second, "real-mode steady duration")

	flag.IntVar(&o.cacheSize, "cache-size", 0, "result-cache capacity; > 0 appends a cached-steady phase")
	flag.DurationVar(&o.cacheTTL, "cache-ttl", 5*time.Minute, "result-cache entry lifetime (0 = until evicted)")
	flag.IntVar(&o.cachedReq, "cached-requests", 600, "sim cached-steady phase size")
	flag.BoolVar(&o.requireSpeedup, "require-cache-speedup", false, "fail unless cached-steady p95 beats steady p95 on every driver")

	flag.IntVar(&o.topK, "topk", 0, "> 0 runs the pruned-vs-exhaustive top-k head-to-head scenario with this resource bound")
	flag.IntVar(&o.topkReq, "topk-requests", 600, "requests per top-k head-to-head phase")
	flag.BoolVar(&o.requireTopkSpeedup, "require-topk-speedup", false, "fail unless the pruned phase's p95 beats the exhaustive phase's and blocks were skipped")

	flag.BoolVar(&o.chaos, "chaos", false, "append a chaos phase (4x concurrency + fault injection)")
	flag.Float64Var(&o.chaosTransient, "chaos-transient", 0.1, "chaos injected transient-failure rate")
	flag.Float64Var(&o.chaosRateLimit, "chaos-ratelimit", 0.05, "chaos injected rate-limit rate")
	flag.DurationVar(&o.chaosLatency, "chaos-latency", 2*time.Millisecond, "chaos extra per-request latency")
	flag.IntVar(&o.chaosReq, "chaos-requests", 240, "sim chaos phase size")
	flag.DurationVar(&o.chaosDur, "chaos-duration", 3*time.Second, "real-mode chaos duration")

	flag.BoolVar(&o.rollingIngest, "rolling-ingest", false, "run the live-delta rolling-ingest scenario instead of the sim/real phases")
	flag.IntVar(&o.ingestRounds, "ingest-rounds", 3, "rolling-ingest delta rounds")
	flag.IntVar(&o.ingestReq, "ingest-requests", 300, "requests per rolling-ingest phase")
	flag.IntVar(&o.ingestTouch, "ingest-touch", 12, "resources edited per rolling-ingest delta")

	flag.StringVar(&o.addr, "addr", "", "drive an existing server at this base URL instead of self-hosting")
	flag.IntVar(&o.maxConc, "max-concurrent", 64, "self-hosted server concurrency cap (small values force load shedding)")
	flag.DurationVar(&o.reqTimeout, "request-timeout", 5*time.Second, "per-request deadline")

	flag.BoolVar(&o.scatter, "scatter", false, "run the multi-process scatter-gather chaos scenario instead of the sim/real phases")
	flag.IntVar(&o.scatterShards, "scatter-shards", 3, "scatter topology size (shard processes)")
	flag.IntVar(&o.scatterReq, "scatter-requests", 150, "requests per scatter phase (steady, degraded, recovered)")
	flag.BoolVar(&o.scatterVerbose, "scatter-verbose", false, "forward scatter child-process logs to stderr")

	flag.BoolVar(&o.scaleRun, "scale-run", false, "run the million-user streaming/segment scale scenario instead of the sim/real phases")
	flag.StringVar(&o.scaleDir, "scale-dir", "", "working directory for the scale corpus and segments (kept and reused; empty = temp dir)")
	flag.IntVar(&o.scaleReq, "scale-requests", 120, "queries in the scale-query phase")
	flag.IntVar(&o.scaleChunkDocs, "scale-chunk-docs", 25000, "bulk resources per generated stream chunk")
	flag.IntVar(&o.scaleMaxHeapMB, "scale-max-heap-mb", 16384, "peak-heap gate for the scale run in MB (0 disables)")
	flag.IntVar(&o.segmentFlush, "segment-flush-docs", 0, "segment store memtable flush threshold (0 = default)")
	flag.IntVar(&o.segmentMax, "segment-max", 0, "segment count that triggers compaction (0 = default)")

	flag.StringVar(&o.out, "out", defaultOut, "report output path")
	flag.StringVar(&o.baseline, "baseline", "", "baseline report to gate against")
	flag.Float64Var(&o.maxRegress, "max-regress", 0.20, "allowed fractional p95/qps regression")
	flag.BoolVar(&o.stamp, "stamp", true, "stamp the report with git rev and timestamp")
	flag.StringVar(&o.rev, "rev", "", "override the git revision stamp")
	flag.BoolVar(&o.compareOnly, "compare-only", false, "only compare -out against -baseline, run nothing")
	flag.Parse()
	return &o
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadtest: ")
	o := parseFlags()

	if o.compareOnly {
		if o.baseline == "" {
			log.Fatal("-compare-only requires -baseline")
		}
		os.Exit(gate(o.baseline, o.out, o.maxRegress))
	}
	if o.mode != "sim" && o.mode != "real" {
		log.Fatalf("unknown -mode %q", o.mode)
	}
	if o.scatter {
		os.Exit(runScatter(o))
	}
	if o.scaleRun {
		os.Exit(runScale(o))
	}
	if o.topK > 0 {
		os.Exit(runTopK(o))
	}
	if o.rollingIngest {
		os.Exit(runIngest(o))
	}

	sys := buildSystem(o)
	rep := run(o, sys)
	if err := rep.WriteFile(o.out); err != nil {
		log.Fatalf("write %s: %v", o.out, err)
	}
	log.Printf("wrote %s", o.out)
	printSummary(rep)

	code := 0
	if o.requireSpeedup {
		code |= cacheGate(rep)
	}
	if o.chaos && o.cacheSize > 0 {
		code |= swapGate(rep)
	}
	if o.baseline != "" {
		if _, err := os.Stat(o.baseline); os.IsNotExist(err) {
			log.Printf("baseline %s missing; skipping regression gate", o.baseline)
		} else {
			code |= gate(o.baseline, o.out, o.maxRegress)
		}
	}
	os.Exit(code)
}

func buildSystem(o *options) *expertfind.System {
	t0 := time.Now()
	var (
		sys *expertfind.System
		err error
	)
	if o.corpusPath != "" {
		sys, err = expertfind.NewSystemFromCorpusShards(o.corpusPath, o.indexShards)
		if err != nil {
			log.Fatalf("corpus: %v", err)
		}
	} else {
		sys = expertfind.NewSystem(expertfind.Config{
			Seed: o.corpusSeed, Scale: o.scale, IndexShards: o.indexShards,
		})
	}
	st := sys.Stats()
	log.Printf("corpus ready in %v: %d candidates, %d resources indexed",
		time.Since(t0).Round(time.Millisecond), st.Candidates, st.Indexed)
	return sys
}

func run(o *options, sys *expertfind.System) *loadgen.Report {
	st := sys.Stats()
	bench := 4
	if o.cacheSize > 0 {
		bench = 5
	}
	rep := &loadgen.Report{
		Schema: loadgen.Schema,
		Bench:  bench,
		Mode:   o.mode,
		Seed:   o.seed,
		Corpus: loadgen.CorpusInfo{
			Seed: o.corpusSeed, Scale: o.scale,
			Candidates: st.Candidates, Documents: st.Indexed,
		},
	}
	if o.stamp {
		rep.GitRev = gitRev(o.rev)
		rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	}

	workload := loadgen.NewWorkload(loadgen.WorkloadConfig{Seed: o.seed}, loadgen.SystemSource(sys))

	for _, driver := range drivers(o.driver) {
		clock := resilience.RealClock()
		if o.mode == "sim" {
			clock = resilience.NewClock()
		}
		target, handler, cleanup := makeTarget(o, sys, driver)
		runner := newRunner(o, workload, target, clock)
		phases := phasePlan(o)
		log.Printf("driver %s: %d phases", driver, len(phases))
		results := runner.Run(phases...)
		if o.cacheSize > 0 {
			// Cached steady state: attach a fresh cache generation,
			// continue the same Zipf-skewed request stream against it,
			// then detach so later phases (and the next driver) start
			// uncached. The cache shares the driver's clock, so TTL
			// expiry is virtual in sim mode.
			cache := rescache.New(rescache.Options{
				Capacity: o.cacheSize, TTL: o.cacheTTL, Clock: clock,
			})
			sys.SetResultCache(cache.Attach())
			results = append(results, runner.Run(cachedPhase(o))...)
			sys.SetResultCache(nil)
		}
		if o.chaos && handler != nil {
			// Rolling corpus swap: flip the self-hosted server to
			// not-ready mid-run, so its real shedding middleware
			// rejects the phase's requests with 503 + Retry-After —
			// genuine load-shed errors for the taxonomy.
			handler.SetSystem(nil)
			results = append(results, runner.Run(outagePhase(o))...)
			handler.SetSystem(sys)
			if o.cacheSize > 0 {
				// Swap recovery: the server is ready again — prove the
				// swap didn't strand result caching. A fresh cache
				// generation is attached and the same Zipf stream
				// continues; swapGate requires this phase to serve
				// hits again with a clean error taxonomy.
				cache := rescache.New(rescache.Options{
					Capacity: o.cacheSize, TTL: o.cacheTTL, Clock: clock,
				})
				sys.SetResultCache(cache.Attach())
				results = append(results, runner.Run(swapRecoveredPhase(o))...)
				sys.SetResultCache(nil)
			}
		}
		rep.Drivers = append(rep.Drivers, loadgen.DriverReport{Driver: driver, Phases: results})
		cleanup()
	}
	return rep
}

// cachedPhase continues steady-level load with the result cache
// attached. In sim mode it runs at concurrency 1: which requests hit
// is then a pure function of the request stream (no worker
// interleaving), keeping the report deterministic; latency
// percentiles stay comparable to steady's because simulated latency
// is per-request. Real mode keeps the steady concurrency.
func cachedPhase(o *options) loadgen.Phase {
	if o.mode == "sim" {
		return loadgen.Phase{Name: "cached-steady", Requests: o.cachedReq, Concurrency: 1}
	}
	return loadgen.Phase{Name: "cached-steady", Duration: o.steadyDur, Concurrency: o.concurrency}
}

// swapRecoveredPhase continues steady-level load after the corpus
// swap with a fresh cache generation attached. Sim mode runs it at
// concurrency 1 for the same determinism reason as cachedPhase.
func swapRecoveredPhase(o *options) loadgen.Phase {
	if o.mode == "sim" {
		return loadgen.Phase{Name: "swap-recovered", Requests: o.cachedReq, Concurrency: 1}
	}
	return loadgen.Phase{Name: "swap-recovered", Duration: o.chaosDur / 2, Concurrency: o.concurrency}
}

// outagePhase drives steady-level load into the not-ready server.
func outagePhase(o *options) loadgen.Phase {
	p := loadgen.Phase{Name: "chaos-outage", Concurrency: o.concurrency, Chaos: true}
	if o.mode == "sim" {
		p.Requests = o.chaosReq / 2
	} else {
		p.Duration = o.chaosDur / 2
	}
	return p
}

func drivers(spec string) []string {
	switch spec {
	case "inprocess", "http":
		return []string{spec}
	case "both":
		return []string{"inprocess", "http"}
	}
	log.Fatalf("unknown -driver %q", spec)
	return nil
}

// newRunner gives each driver its own runner, clock, and chaos gate,
// all from the same seed: both drivers replay the same request stream
// and the same fault draws, so their reports are directly comparable.
// The clock is passed in (rather than built here) so run can share it
// with the driver's result cache.
func newRunner(o *options, w *loadgen.Workload, target loadgen.Target, clock *resilience.Clock) *loadgen.Runner {
	cfg := loadgen.Config{
		Clock:    clock,
		Workload: w,
		Target:   target,
		Timeout:  o.reqTimeout,
	}
	if o.mode == "sim" {
		cfg.Model = loadgen.DefaultSimModel(o.seed)
	}
	if o.chaos {
		cfg.Chaos = loadgen.NewChaosGate(loadgen.ChaosConfig{
			Seed:          o.seed,
			TransientRate: o.chaosTransient,
			RateLimitRate: o.chaosRateLimit,
			Latency:       o.chaosLatency,
		}, cfg.Clock)
	}
	return loadgen.NewRunner(cfg)
}

// phasePlan is warmup -> ramp -> steady -> open-loop steady, plus the
// optional chaos spike. Sim phases are count-bounded (deterministic);
// real phases are duration-bounded.
func phasePlan(o *options) []loadgen.Phase {
	half := o.concurrency / 2
	if half < 1 {
		half = 1
	}
	var phases []loadgen.Phase
	if o.mode == "sim" {
		phases = []loadgen.Phase{
			{Name: "warmup", Requests: o.warmupReq, Concurrency: half},
			{Name: "ramp", Requests: o.rampReq, Concurrency: o.concurrency},
			{Name: "steady", Requests: o.steadyReq, Concurrency: o.concurrency},
			{Name: "open-steady", Requests: o.openReq, QPS: o.qps},
		}
		if o.chaos {
			phases = append(phases, loadgen.Phase{
				Name: "chaos", Requests: o.chaosReq,
				Concurrency: 4 * o.concurrency, Chaos: true,
			})
		}
	} else {
		phases = []loadgen.Phase{
			{Name: "warmup", Duration: o.warmupDur, Concurrency: half},
			{Name: "ramp", Duration: o.rampDur, Concurrency: o.concurrency},
			{Name: "steady", Duration: o.steadyDur, Concurrency: o.concurrency},
			{Name: "open-steady", Duration: o.steadyDur, QPS: o.qps, MaxOutstanding: 4 * o.concurrency},
		}
		if o.chaos {
			phases = append(phases, loadgen.Phase{
				Name: "chaos", Duration: o.chaosDur,
				Concurrency: 4 * o.concurrency, Chaos: true,
			})
		}
	}
	return phases
}

// makeTarget builds the driver's target; for "http" without -addr it
// self-hosts the real serving stack on a loopback port, so the run
// exercises the shedding/timeout middleware too. The returned handler
// is non-nil only for the self-hosted server (chaos uses it to flip
// readiness mid-run).
func makeTarget(o *options, sys *expertfind.System, driver string) (loadgen.Target, *httpapi.Handler, func()) {
	params := url.Values{"top": {strconv.Itoa(o.top)}}
	switch driver {
	case "inprocess":
		return loadgen.NewFinderTarget(sys, o.top), nil, func() {}
	case "http":
		if o.addr != "" {
			return loadgen.NewHTTPTarget(nil, o.addr, params), nil, func() {}
		}
		handler := httpapi.NewWithOptions(sys, httpapi.Options{
			RequestTimeout: o.reqTimeout,
			MaxConcurrent:  o.maxConc,
			RetryAfter:     time.Second,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatalf("self-host listen: %v", err)
		}
		srv := &http.Server{Handler: handler}
		go srv.Serve(ln)
		base := "http://" + ln.Addr().String()
		log.Printf("self-hosted server at %s (max-concurrent %d)", base, o.maxConc)
		client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
		return loadgen.NewHTTPTarget(client, base, params), handler, func() {
			srv.Close()
			client.CloseIdleConnections()
		}
	}
	log.Fatalf("unknown driver %q", driver)
	return nil, nil, nil
}

func gitRev(override string) string {
	if override != "" {
		return override
	}
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err != nil {
		return "unknown"
	}
	return strings.TrimSpace(string(out))
}

// gate compares current against baseline and returns the exit code.
func gate(basePath, curPath string, maxRegress float64) int {
	base, err := loadgen.ReadReport(basePath)
	if err != nil {
		log.Printf("baseline: %v", err)
		return 1
	}
	cur, err := loadgen.ReadReport(curPath)
	if err != nil {
		log.Printf("current: %v", err)
		return 1
	}
	errs := loadgen.Compare(base, cur, maxRegress)
	for _, e := range errs {
		log.Printf("SLO GATE: %v", e)
	}
	if len(errs) > 0 {
		return 1
	}
	log.Printf("SLO gate passed (steady p95 and qps within %.0f%% of %s)", maxRegress*100, basePath)
	return 0
}

// swapGate closes the rolling-corpus-swap blind spot: every driver
// that ran the chaos-outage phase must follow it with a swap-recovered
// phase that served cache hits again under a clean error taxonomy —
// the swap must not leave the server shedding or permanently cold.
func swapGate(rep *loadgen.Report) int {
	code := 0
	checked := false
	for i := range rep.Drivers {
		d := &rep.Drivers[i]
		if d.Phase("chaos-outage") == nil {
			continue
		}
		checked = true
		rec := d.Phase("swap-recovered")
		if rec == nil {
			log.Printf("SWAP GATE: driver %s: chaos-outage ran but no swap-recovered phase followed", d.Driver)
			code = 1
			continue
		}
		if n := rec.ErrorCount(); n > 0 {
			log.Printf("SWAP GATE: driver %s: %d errors after the corpus swap: %v", d.Driver, n, rec.Errors)
			code = 1
		}
		if rec.Cache["hit"] == 0 {
			log.Printf("SWAP GATE: driver %s: no cache hits after the corpus swap (cache=%v)", d.Driver, rec.Cache)
			code = 1
		} else {
			log.Printf("swap gate passed: driver %s served %d cache hits after the corpus swap",
				d.Driver, rec.Cache["hit"])
		}
	}
	if !checked {
		log.Printf("swap gate: no driver ran the chaos-outage phase (remote -addr run?); nothing to check")
	}
	return code
}

// cacheGate enforces -require-cache-speedup: every driver's
// cached-steady p95 must beat its steady p95. Returns the exit code.
func cacheGate(rep *loadgen.Report) int {
	code := 0
	for i := range rep.Drivers {
		d := &rep.Drivers[i]
		steady, cached := d.Phase("steady"), d.Phase("cached-steady")
		if steady == nil || cached == nil {
			log.Printf("CACHE GATE: driver %s: missing steady or cached-steady phase", d.Driver)
			code = 1
			continue
		}
		hitRate := 0.0
		if cached.Requests > 0 {
			hitRate = float64(cached.Cache["hit"]) / float64(cached.Requests)
		}
		if cached.Latency.P95 < steady.Latency.P95 {
			log.Printf("cache gate passed: driver %s p95 %s -> %s (hit rate %.0f%%)",
				d.Driver, fmtSec(steady.Latency.P95), fmtSec(cached.Latency.P95), hitRate*100)
		} else {
			log.Printf("CACHE GATE: driver %s: cached-steady p95 %s not better than steady p95 %s (hit rate %.0f%%)",
				d.Driver, fmtSec(cached.Latency.P95), fmtSec(steady.Latency.P95), hitRate*100)
			code = 1
		}
	}
	return code
}

func printSummary(rep *loadgen.Report) {
	for _, d := range rep.Drivers {
		for _, p := range d.Phases {
			extra := ""
			if n := p.ErrorCount(); n > 0 {
				extra += fmt.Sprintf("  errors=%v", p.Errors)
			}
			if len(p.Cache) > 0 {
				extra += fmt.Sprintf("  cache=%v", p.Cache)
			}
			log.Printf("%-9s %-12s %6d req  %8.1f qps  p50=%s p95=%s p99=%s%s",
				d.Driver, p.Name, p.Requests, p.QPS,
				fmtSec(p.Latency.P50), fmtSec(p.Latency.P95), fmtSec(p.Latency.P99), extra)
		}
	}
}

func fmtSec(s float64) string {
	return time.Duration(float64(time.Second) * s).Round(10 * time.Microsecond).String()
}
