package main

import (
	"log"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"expertfind"
	"expertfind/internal/corpusio"
	"expertfind/internal/dataset"
	"expertfind/internal/loadgen"
)

// The scale scenario is the million-user end-to-end run: it streams a
// -scale corpus to disk in bounded memory (chunked JSONL, texts
// dropped as each chunk lands), cold-builds the disk-backed segment
// index from the stream (or reopens one a previous run left in
// -scale-dir), serves wall-clock queries from it, then compacts every
// segment and replays a sample of those queries — the rankings must
// be bit-identical across the layout change. The report (BENCH_10.json
// by default) records each phase's wall time, throughput and the
// store's structural counters, plus the peak heap observed across the
// whole run so "bounded memory" is a gated number, not a claim.
//
// Gates (always on): at -scale >= 100 the corpus must hold at least a
// million users; a cold build must seal at least two segments; the
// compaction pass must run; post-compaction rankings must reproduce
// the pre-compaction ones bit for bit; and the peak heap must stay
// under -scale-max-heap-mb.

// scaleOut is the scale report's default path.
const scaleOut = "BENCH_10.json"

// scaleUserGate is the corpus-size floor enforced at -scale >= 100.
const scaleUserGate = 1_000_000

// heapWatcher samples the live heap in the background so the report
// can carry the peak across generation, build and serving.
type heapWatcher struct {
	mu   sync.Mutex
	max  uint64
	stop chan struct{}
	done chan struct{}
}

func newHeapWatcher() *heapWatcher {
	w := &heapWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			w.sample()
			select {
			case <-w.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return w
}

func (w *heapWatcher) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	w.mu.Lock()
	if ms.HeapAlloc > w.max {
		w.max = ms.HeapAlloc
	}
	w.mu.Unlock()
}

func (w *heapWatcher) peak() uint64 {
	w.sample()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.max
}

func (w *heapWatcher) close() {
	close(w.stop)
	<-w.done
}

func runScale(o *options) int {
	if o.mode != "real" {
		log.Printf("scale scenario measures wall-clock phases; forcing -mode real")
		o.mode = "real"
	}
	out := o.out
	if out == defaultOut {
		out = scaleOut
	}

	dir := o.scaleDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "expertfind-scale-*")
		if err != nil {
			log.Printf("SCALE: workdir: %v", err)
			return 1
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Printf("SCALE: workdir: %v", err)
		return 1
	}
	corpus := filepath.Join(dir, "corpus.stream.json.gz")
	segDir := filepath.Join(dir, "segments")

	heap := newHeapWatcher()
	defer heap.close()
	var phases []loadgen.PhaseResult

	// Phase: scale-generate — stream the corpus to disk. An existing
	// file in a caller-provided -scale-dir is reused, so iterating on
	// the later phases doesn't regenerate millions of documents.
	if _, err := os.Stat(corpus); err == nil && o.scaleDir != "" {
		log.Printf("reusing stream corpus %s", corpus)
	} else {
		res, code := scaleGenerate(o, corpus, heap)
		if code != 0 {
			return code
		}
		phases = append(phases, res)
	}

	// Phase: scale-build (empty segment directory: analyze the stream
	// chunk by chunk) or scale-open (segments already on disk).
	t0 := time.Now()
	sys, err := expertfind.NewSystemFromStream(corpus, segDir, expertfind.StreamOptions{
		FlushDocs:   o.segmentFlush,
		MaxSegments: o.segmentMax,
	})
	if err != nil {
		log.Printf("SCALE: build: %v", err)
		return 1
	}
	store := sys.SegmentStore()
	defer store.Close()
	st := store.Status()
	// A cold build seals at least once; a reopened store never does.
	coldBuild := st.Seals > 0
	buildName := "scale-open"
	if coldBuild {
		buildName = "scale-build"
	}
	stats := sys.Stats()
	log.Printf("%s in %v: %d users, %d docs in %d segments (%.1f MB on disk, %d seals)",
		buildName, time.Since(t0).Round(time.Millisecond), stats.Users,
		st.LiveDocs, len(st.Segments), float64(st.DiskBytes)/(1<<20), st.Seals)
	phases = append(phases, scalePhase(buildName, uint64(st.LiveDocs), time.Since(t0), nil, map[string]uint64{
		"users":           uint64(stats.Users),
		"docs":            uint64(st.LiveDocs),
		"segments":        uint64(len(st.Segments)),
		"seals":           st.Seals,
		"disk_bytes":      uint64(st.DiskBytes),
		"peak_heap_bytes": heap.peak(),
	}))

	// Phase: scale-query — wall-clock queries through the public Find
	// API, single-threaded so percentiles measure scoring, not worker
	// interleaving. The head of the stream is kept for the replay gate.
	workload := loadgen.NewWorkload(loadgen.WorkloadConfig{Seed: o.seed}, loadgen.SystemSource(sys))
	for seq := uint64(0); seq < 8; seq++ {
		if _, err := sys.Find(workload.Need(seq)); err != nil {
			log.Printf("SCALE: warmup find: %v", err)
			return 1
		}
	}
	sample := o.scaleReq / 4
	if sample > 32 {
		sample = 32
	}
	before := make([][]expertfind.Expert, sample)
	lat := make([]float64, 0, o.scaleReq)
	t0 = time.Now()
	for seq := uint64(0); seq < uint64(o.scaleReq); seq++ {
		need := workload.Need(seq)
		q0 := time.Now()
		experts, err := sys.Find(need)
		lat = append(lat, time.Since(q0).Seconds())
		if err != nil {
			log.Printf("SCALE: find %q: %v", need, err)
			return 1
		}
		if int(seq) < sample {
			before[seq] = experts
		}
	}
	phases = append(phases, scalePhase("scale-query", uint64(o.scaleReq), time.Since(t0), lat, map[string]uint64{
		"segments":        uint64(len(st.Segments)),
		"peak_heap_bytes": heap.peak(),
	}))

	// Phase: scale-compact — merge every segment, then replay the
	// sampled queries: a layout change must not move a single bit.
	t0 = time.Now()
	if err := store.Compact(); err != nil {
		log.Printf("SCALE: compact: %v", err)
		return 1
	}
	st = store.Status()
	log.Printf("scale-compact in %v: %d segments, %d docs reclaimed, %d compactions",
		time.Since(t0).Round(time.Millisecond), len(st.Segments), st.ReclaimedDocs, st.Compactions)
	identical := 0
	for seq := 0; seq < sample; seq++ {
		again, err := sys.Find(workload.Need(uint64(seq)))
		if err != nil {
			log.Printf("SCALE: post-compaction find: %v", err)
			return 1
		}
		if !expertsIdentical(before[seq], again) {
			log.Printf("SCALE GATE: ranking for %q changed across compaction", workload.Need(uint64(seq)))
			return 1
		}
		identical++
	}
	phases = append(phases, scalePhase("scale-compact", uint64(identical), time.Since(t0), nil, map[string]uint64{
		"segments":          uint64(len(st.Segments)),
		"compactions":       st.Compactions,
		"reclaimed_docs":    st.ReclaimedDocs,
		"disk_bytes":        uint64(st.DiskBytes),
		"identical_replays": uint64(identical),
		"peak_heap_bytes":   heap.peak(),
	}))

	rep := &loadgen.Report{
		Schema: loadgen.Schema,
		Bench:  10,
		Mode:   o.mode,
		Seed:   o.seed,
		Corpus: loadgen.CorpusInfo{
			Seed: o.corpusSeed, Scale: o.scale,
			Candidates: stats.Candidates, Documents: stats.Indexed,
		},
		Drivers: []loadgen.DriverReport{{Driver: "inprocess", Phases: phases}},
	}
	if o.stamp {
		rep.GitRev = gitRev(o.rev)
		rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	}
	if err := rep.WriteFile(out); err != nil {
		log.Fatalf("write %s: %v", out, err)
	}
	log.Printf("wrote %s", out)
	printSummary(rep)

	return scaleGate(o, stats.Users, coldBuild, st.Seals, st.Compactions, heap.peak())
}

// scaleGenerate streams the corpus to disk, dropping each chunk's
// texts from memory once written.
func scaleGenerate(o *options, corpus string, heap *heapWatcher) (loadgen.PhaseResult, int) {
	t0 := time.Now()
	w, err := corpusio.CreateStream(corpus)
	if err != nil {
		log.Printf("SCALE: %v", err)
		return loadgen.PhaseResult{}, 1
	}
	cfg := dataset.StreamConfig{
		Config:    dataset.Config{Seed: o.corpusSeed, Scale: o.scale},
		ChunkDocs: o.scaleChunkDocs,
	}
	total := cfg.BulkChunks()
	chunks := 0
	ds, err := dataset.GenerateStream(cfg,
		func(d *dataset.Dataset) error { return w.WriteBase(d) },
		func(d *dataset.Dataset, c *dataset.StreamChunk) error {
			if err := w.WriteChunk(c); err != nil {
				return err
			}
			d.BlankChunkTexts(c)
			chunks++
			if chunks%25 == 0 || chunks == total {
				log.Printf("  generate: chunk %d/%d, %d users, %d resources, %v elapsed",
					chunks, total, d.Graph.NumUsers(), d.Graph.NumResources(),
					time.Since(t0).Round(time.Second))
			}
			return nil
		})
	if err != nil {
		w.Close()
		log.Printf("SCALE: generate: %v", err)
		return loadgen.PhaseResult{}, 1
	}
	if err := w.Close(); err != nil {
		log.Printf("SCALE: generate: %v", err)
		return loadgen.PhaseResult{}, 1
	}
	var corpusBytes uint64
	if fi, err := os.Stat(corpus); err == nil {
		corpusBytes = uint64(fi.Size())
	}
	wall := time.Since(t0)
	log.Printf("scale-generate in %v: %d chunks, %d users, %d resources (%.1f MB on disk)",
		wall.Round(time.Millisecond), chunks, ds.Graph.NumUsers(), ds.Graph.NumResources(),
		float64(corpusBytes)/(1<<20))
	return scalePhase("scale-generate", uint64(ds.Graph.NumResources()), wall, nil, map[string]uint64{
		"users":           uint64(ds.Graph.NumUsers()),
		"resources":       uint64(ds.Graph.NumResources()),
		"chunks":          uint64(chunks),
		"corpus_bytes":    corpusBytes,
		"peak_heap_bytes": heap.peak(),
	}), 0
}

// scalePhase shapes one scale phase as a report entry. requests is
// the phase's unit count (resources generated, docs built, queries
// answered); lat, when present, carries per-request latencies.
func scalePhase(name string, requests uint64, wall time.Duration, lat []float64, counters map[string]uint64) loadgen.PhaseResult {
	res := loadgen.PhaseResult{
		Name:            name,
		Mode:            "closed",
		Concurrency:     1,
		Requests:        requests,
		DurationSeconds: wall.Seconds(),
		Latency:         percentilesOf(lat),
		Index:           counters,
	}
	if wall > 0 {
		res.QPS = float64(requests) / wall.Seconds()
	}
	return res
}

// scaleGate enforces the scale scenario's structural guarantees.
func scaleGate(o *options, users int, coldBuild bool, seals, compactions, peakHeap uint64) int {
	code := 0
	if o.scale >= 100 && users < scaleUserGate {
		log.Printf("SCALE GATE: %d users at scale %.0f, want >= %d", users, o.scale, scaleUserGate)
		code = 1
	}
	if coldBuild && seals < 2 {
		log.Printf("SCALE GATE: cold build sealed %d segments, want >= 2 (lower -segment-flush-docs?)", seals)
		code = 1
	}
	if compactions < 1 {
		log.Printf("SCALE GATE: no compaction ran")
		code = 1
	}
	if limit := uint64(o.scaleMaxHeapMB) << 20; o.scaleMaxHeapMB > 0 && peakHeap > limit {
		log.Printf("SCALE GATE: peak heap %.1f MB exceeds -scale-max-heap-mb %d", float64(peakHeap)/(1<<20), o.scaleMaxHeapMB)
		code = 1
	}
	if code == 0 {
		log.Printf("scale gate passed: %d users, %d seals, %d compactions, peak heap %.1f MB",
			users, seals, compactions, float64(peakHeap)/(1<<20))
	}
	return code
}
