package main

import (
	"log"
	"math"
	"sort"
	"time"

	"expertfind"
	"expertfind/internal/loadgen"
	"expertfind/internal/telemetry"
)

// The top-k scenario is a wall-clock head-to-head: the sim service
// model prices a request purely by its response bytes and cache
// disposition, so a simulated run cannot observe the work MaxScore
// pruning avoids. Instead the scenario replays the same deterministic
// request stream twice through the in-process finder — exhaustive,
// then pruned to -topk — on a single thread and real clock, records
// both phases' latency percentiles plus the index pruning counters
// accumulated during each, and writes the comparison as BENCH_8.json.
//
// -require-topk-speedup turns the comparison into a gate: the pruned
// phase's p95 must beat the exhaustive one's and the pruned phase must
// have skipped at least one posting block, otherwise the run exits
// nonzero. The pruned phase also re-runs a sample of its requests and
// requires bit-identical expert lists, so the determinism contract is
// checked at the public API surface too, not just in the index tests.

// topkOut is the head-to-head report's default path.
const topkOut = "BENCH_8.json"

// indexCounters reads the index pruning counters the head-to-head
// phases diff. Counter registration is get-or-create, so this attaches
// to the counters internal/index already registered.
func indexCounters() (pruned, skipped float64) {
	reg := telemetry.Default()
	p := reg.Counter("expertfind_index_pruned_docs_total",
		"Accumulated candidates dropped by a MaxScore bound proof during top-k scoring.")
	s := reg.Counter("expertfind_index_blocks_skipped_total",
		"Posting blocks skipped without decoding during top-k scoring.")
	return p.Value(), s.Value()
}

func runTopK(o *options) int {
	if o.mode != "real" {
		log.Printf("topk scenario measures wall-clock latency; forcing -mode real")
		o.mode = "real"
	}
	out := o.out
	if out == defaultOut {
		out = topkOut
	}

	sys := buildSystem(o)
	st := sys.Stats()
	workload := loadgen.NewWorkload(loadgen.WorkloadConfig{Seed: o.seed}, loadgen.SystemSource(sys))

	exhaustive := []expertfind.FindOption{expertfind.WithTopK(0)}
	pruned := []expertfind.FindOption{expertfind.WithTopK(o.topK)}

	// Warm both paths over the head of the stream so first-touch costs
	// (page faults, lazily grown scratch) hit neither measured phase.
	for seq := uint64(0); seq < uint64(o.warmupReq); seq++ {
		need := workload.Need(seq)
		if _, err := sys.Find(need, exhaustive...); err != nil {
			log.Printf("TOPK: warmup exhaustive find: %v", err)
			return 1
		}
		if _, err := sys.Find(need, pruned...); err != nil {
			log.Printf("TOPK: warmup pruned find: %v", err)
			return 1
		}
	}

	exPhase, code := topkPhase(o, sys, workload, "exhaustive-steady", exhaustive)
	if code != 0 {
		return code
	}
	prPhase, code := topkPhase(o, sys, workload, "topk-steady", pruned)
	if code != 0 {
		return code
	}

	rep := &loadgen.Report{
		Schema: loadgen.Schema,
		Bench:  8,
		Mode:   o.mode,
		Seed:   o.seed,
		Corpus: loadgen.CorpusInfo{
			Seed: o.corpusSeed, Scale: o.scale,
			Candidates: st.Candidates, Documents: st.Indexed,
		},
		Drivers: []loadgen.DriverReport{
			{Driver: "inprocess", Phases: []loadgen.PhaseResult{exPhase, prPhase}},
		},
	}
	if o.stamp {
		rep.GitRev = gitRev(o.rev)
		rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	}
	if err := rep.WriteFile(out); err != nil {
		log.Fatalf("write %s: %v", out, err)
	}
	log.Printf("wrote %s", out)
	printSummary(rep)

	if o.requireTopkSpeedup {
		return topkGate(&exPhase, &prPhase, o.topK)
	}
	return 0
}

// topkPhase replays -topk-requests needs from the head of the
// workload stream single-threaded under a real clock, so the two
// phases measure identical request sequences and their percentiles
// differ only by the scoring strategy. Every 16th pruned request is
// re-run and must reproduce the same expert list bit for bit.
func topkPhase(o *options, sys *expertfind.System, w *loadgen.Workload, name string, opts []expertfind.FindOption) (loadgen.PhaseResult, int) {
	lat := make([]float64, 0, o.topkReq)
	pruned0, skipped0 := indexCounters()
	t0 := time.Now()
	for seq := uint64(0); seq < uint64(o.topkReq); seq++ {
		need := w.Need(seq)
		q0 := time.Now()
		experts, err := sys.Find(need, opts...)
		lat = append(lat, time.Since(q0).Seconds())
		if err != nil {
			log.Printf("TOPK: %s find %q: %v", name, need, err)
			return loadgen.PhaseResult{}, 1
		}
		if name == "topk-steady" && seq%16 == 0 {
			again, err := sys.Find(need, opts...)
			if err != nil || !expertsIdentical(experts, again) {
				log.Printf("TOPK: pruned ranking for %q not deterministic across runs", need)
				return loadgen.PhaseResult{}, 1
			}
		}
	}
	wall := time.Since(t0).Seconds()
	pruned1, skipped1 := indexCounters()

	res := loadgen.PhaseResult{
		Name:            name,
		Mode:            "closed",
		Concurrency:     1,
		Requests:        uint64(o.topkReq),
		DurationSeconds: wall,
		Latency:         percentilesOf(lat),
		Index: map[string]uint64{
			"pruned_docs":    uint64(pruned1 - pruned0),
			"blocks_skipped": uint64(skipped1 - skipped0),
		},
	}
	if wall > 0 {
		res.QPS = float64(o.topkReq) / wall
	}
	return res, 0
}

func expertsIdentical(a, b []expertfind.Expert) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name ||
			math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
			return false
		}
	}
	return true
}

func percentilesOf(lat []float64) loadgen.Percentiles {
	if len(lat) == 0 {
		return loadgen.Percentiles{}
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	at := func(q float64) float64 {
		i := int(q * float64(len(s)-1))
		return s[i]
	}
	return loadgen.Percentiles{P50: at(0.50), P95: at(0.95), P99: at(0.99), P999: at(0.999)}
}

// topkGate enforces -require-topk-speedup on the head-to-head report.
func topkGate(ex, pr *loadgen.PhaseResult, k int) int {
	code := 0
	if pr.Latency.P95 < ex.Latency.P95 {
		log.Printf("topk gate passed: p95 %s exhaustive -> %s pruned (k=%d)",
			fmtSec(ex.Latency.P95), fmtSec(pr.Latency.P95), k)
	} else {
		log.Printf("TOPK GATE: pruned p95 %s not better than exhaustive p95 %s (k=%d)",
			fmtSec(pr.Latency.P95), fmtSec(ex.Latency.P95), k)
		code = 1
	}
	if pr.Index["blocks_skipped"] == 0 {
		log.Printf("TOPK GATE: pruned phase skipped no posting blocks (pruned_docs=%d)",
			pr.Index["pruned_docs"])
		code = 1
	}
	return code
}
