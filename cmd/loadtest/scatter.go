package main

// The -scatter scenario: a real multi-process scatter-gather
// deployment driven end to end. Unlike the sim phases, everything
// here is wall-clock and real processes — the point is to exercise
// genuine SIGKILL, connection refusal, breaker trips, and recovery,
// and to gate the coordinator's merged bytes against a single-process
// baseline before and after the chaos.

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"expertfind"
	"expertfind/internal/httpapi"
	"expertfind/internal/loadgen"
)

// runScatter executes the scatter-gather chaos scenario and returns
// the process exit code. The flow: build the real binaries, boot a
// single-process baseline in-process and an N-shard cluster out of
// process, then gate three phases — healthy (byte-identical to the
// baseline), degraded (one shard SIGKILLed: still 200s, degraded
// header, degraded-query counter climbing), and recovered (shard
// restarted: byte-identical again).
func runScatter(o *options) int {
	if o.scatterShards < 2 {
		log.Fatalf("-scatter-shards %d: need at least 2 so a kill leaves survivors", o.scatterShards)
	}
	t0 := time.Now()
	dir, err := os.MkdirTemp("", "expertfind-scatter-")
	if err != nil {
		log.Fatalf("tempdir: %v", err)
	}
	defer os.RemoveAll(dir)
	serveBin, coordBin, err := loadgen.BuildScatterBinaries(dir)
	if err != nil {
		log.Fatalf("%v", err)
	}
	log.Printf("binaries built in %v (race=%v)", time.Since(t0).Round(time.Millisecond), loadgen.RaceEnabled)

	// The baseline is the same serving stack in one process over the
	// same corpus config the shard processes will generate slices of.
	sys := buildSystem(o)
	baseURL, stopBaseline := selfHostBaseline(sys)
	defer stopBaseline()

	var logf func(string, ...any)
	if o.scatterVerbose {
		logf = log.Printf
	}
	// Shards run with a 1ns latency objective: every request breaches
	// it, so the run doubles as the induced-SLO-breach scenario — each
	// shard must capture exactly one (rate-limited) pprof snapshot.
	pprofDir := filepath.Join(dir, "pprof")
	cl, err := loadgen.StartScatter(loadgen.ScatterConfig{
		ServeBin:        serveBin,
		CoordBin:        coordBin,
		Shards:          o.scatterShards,
		CorpusSeed:      o.corpusSeed,
		Scale:           o.scale,
		IndexShards:     o.indexShards,
		ShardSLOLatency: time.Nanosecond,
		ShardPprofDir:   pprofDir,
		Logf:            logf,
	})
	if err != nil {
		log.Fatalf("start cluster: %v", err)
	}
	defer cl.Close()
	log.Printf("cluster ready in %v: %d shards behind %s", time.Since(t0).Round(time.Millisecond), o.scatterShards, cl.CoordinatorURL())

	code := 0
	paths := scatterPaths(sys, o.top)
	code |= scatterDiffGate("healthy", baseURL, cl.CoordinatorURL(), paths)

	workload := loadgen.NewWorkload(loadgen.WorkloadConfig{Seed: o.seed}, loadgen.SystemSource(sys))
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 256}}
	defer client.CloseIdleConnections()
	runner := loadgen.NewRunner(loadgen.Config{
		Workload: workload,
		Target:   loadgen.NewHTTPTarget(client, cl.CoordinatorURL(), url.Values{"top": {strconv.Itoa(o.top)}}),
		Timeout:  o.reqTimeout,
	})
	phase := func(name string) loadgen.Phase {
		return loadgen.Phase{Name: name, Requests: o.scatterReq, Concurrency: o.concurrency}
	}

	results := runner.Run(phase("scatter-steady"))
	code |= scatterPhaseGate(&results[0])

	// Chaos: SIGKILL one shard — no drain, no goodbye — and keep
	// driving load. Every query must still answer 200, now flagged
	// degraded, while the coordinator's breaker stops paying the
	// per-query connection-refused tax.
	const victim = 1
	if err := cl.KillShard(victim); err != nil {
		log.Fatalf("kill shard %d: %v", victim, err)
	}
	if err := cl.WaitCoordinator("degraded", 30*time.Second); err != nil {
		log.Printf("SCATTER GATE: coordinator never reported degraded: %v", err)
		code = 1
	}
	results = append(results, runner.Run(phase("scatter-degraded"))...)
	code |= scatterPhaseGate(&results[1])
	code |= scatterDegradedGate(cl, paths[0], o.scatterShards)

	// Observability gates, part 1: pin a degraded query to a known
	// request id and demand the coordinator serve its assembled
	// cross-process timeline — coordinator gather/merge spans plus
	// spans from every surviving shard process.
	const traceRID = "loadtest-scatter-trace-1"
	code |= scatterTraceQuery(cl.CoordinatorURL()+paths[0], traceRID)
	code |= scatterAssemblyGate("degraded", cl.CoordinatorURL(), traceRID, o.scatterShards-1, 10*time.Second)
	code |= scatterSLOGate(cl)

	// Recovery: a replacement shard on the original port. Once its
	// slice is built and the breaker's cooldown lapses, responses must
	// drop the degraded flag and match the baseline byte for byte.
	if err := cl.RestartShard(victim); err != nil {
		log.Fatalf("restart shard %d: %v", victim, err)
	}
	if err := cl.WaitCoordinator("ready", 60*time.Second); err != nil {
		log.Printf("SCATTER GATE: coordinator never recovered: %v", err)
		code = 1
	}
	if err := waitNonDegraded(cl.CoordinatorURL()+paths[0], 15*time.Second); err != nil {
		log.Printf("SCATTER GATE: %v", err)
		code = 1
	}
	results = append(results, runner.Run(phase("scatter-recovered"))...)
	code |= scatterPhaseGate(&results[2])
	code |= scatterDiffGate("recovered", baseURL, cl.CoordinatorURL(), paths)

	// Observability gates, part 2: the recovered phase just pushed
	// o.scatterReq fast-OK queries through the coordinator's recent
	// ring — more than its capacity — yet the pinned degraded timeline
	// must still be retrievable (tail-based retention), and each
	// surviving shard's induced latency breach must have produced
	// exactly one rate-limited pprof capture.
	code |= scatterAssemblyGate("retained", cl.CoordinatorURL(), traceRID, o.scatterShards-1, 5*time.Second)
	code |= scatterCaptureGate(cl, pprofDir, o.scatterShards)

	st := sys.Stats()
	rep := &loadgen.Report{
		Schema: loadgen.Schema,
		Bench:  6,
		Mode:   "real",
		Seed:   o.seed,
		Corpus: loadgen.CorpusInfo{
			Seed: o.corpusSeed, Scale: o.scale,
			Candidates: st.Candidates, Documents: st.Indexed,
		},
		Drivers: []loadgen.DriverReport{{Driver: "scatter", Phases: results}},
	}
	if o.stamp {
		rep.GitRev = gitRev(o.rev)
		rep.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	}
	out := o.out
	if out == defaultOut {
		out = "BENCH_6.run.json" // don't clobber the sim baseline with a real-mode report
	}
	if err := rep.WriteFile(out); err != nil {
		log.Fatalf("write %s: %v", out, err)
	}
	log.Printf("wrote %s", out)
	printSummary(rep)
	if code == 0 {
		log.Printf("scatter gates passed: merged bytes match single process, chaos degraded %d shard without failing queries, "+
			"assembled timeline retained through ring rotation, SLO breach captured one profile per shard", 1)
	}
	return code
}

// selfHostBaseline serves sys on a loopback port through the full
// middleware stack — the same path the shard processes use — so the
// differential gate compares like with like.
func selfHostBaseline(sys *expertfind.System) (string, func()) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatalf("baseline listen: %v", err)
	}
	srv := &http.Server{Handler: httpapi.New(sys)}
	go srv.Serve(ln)
	return "http://" + ln.Addr().String(), func() { srv.Close() }
}

// scatterPaths are the differential probe queries: corpus evaluation
// needs plus parameter variants, covering top truncation, blend and
// window overrides, and distance-capped traversal.
func scatterPaths(sys *expertfind.System, top int) []string {
	queries := sys.Queries()
	esc := func(s string) string { return url.QueryEscape(s) }
	return []string{
		fmt.Sprintf("/v1/find?q=%s&top=%d", esc(queries[0].Text), top),
		fmt.Sprintf("/v1/find?q=%s", esc(queries[1].Text)),
		fmt.Sprintf("/v1/find?q=%s&alpha=0.3&window=50", esc(queries[2].Text)),
		fmt.Sprintf("/v1/find?q=%s&distance=1&top=3", esc(queries[3].Text)),
		"/v1/find?q=" + esc("database systems and query optimization"),
	}
}

// scatterDiffGate fails unless the coordinator answers every probe
// path 200 without the degraded header and byte-identical to the
// single-process baseline.
func scatterDiffGate(label, baseURL, coordURL string, paths []string) int {
	code := 0
	for _, p := range paths {
		wantStatus, want := scatterGET(baseURL + p)
		gotStatus, got := scatterGET(coordURL + p)
		switch {
		case wantStatus != http.StatusOK || gotStatus != http.StatusOK:
			log.Printf("SCATTER GATE (%s): GET %s: baseline %d, coordinator %d", label, p, wantStatus, gotStatus)
			code = 1
		case want != got:
			log.Printf("SCATTER GATE (%s): GET %s diverged:\n single:      %s\n coordinator: %s", label, p, want, got)
			code = 1
		}
	}
	if code == 0 {
		log.Printf("differential gate (%s): %d paths byte-identical to single process", label, len(paths))
	}
	return code
}

// scatterDegradedGate verifies the degraded contract after a kill:
// queries answer 200 with the X-Expertfind-Degraded header, and the
// coordinator's degraded-query counter is climbing.
func scatterDegradedGate(cl *loadgen.ScatterCluster, path string, shards int) int {
	code := 0
	resp, body := scatterRawGET(cl.CoordinatorURL() + path)
	if resp == nil || resp.StatusCode != http.StatusOK {
		log.Printf("SCATTER GATE (degraded): GET %s did not answer 200: %v %s", path, resp, body)
		code = 1
	} else if h := resp.Header.Get(httpapi.DegradedHeader); h != fmt.Sprintf("shards=1/%d", shards) {
		log.Printf("SCATTER GATE (degraded): header = %q, want shards=1/%d", h, shards)
		code = 1
	}
	n, ok, err := cl.Metric("expertfind_scatter_degraded_queries_total")
	if err != nil || !ok || n < 1 {
		log.Printf("SCATTER GATE (degraded): degraded_queries_total = %v (ok=%v, err=%v), want >= 1", n, ok, err)
		code = 1
	} else {
		log.Printf("degraded gate: %d shard down, %.0f degraded queries answered 200 with partial results", 1, n)
	}
	return code
}

// scatterPhaseGate inspects one load phase's error taxonomy: any
// 4xx/5xx/transport failure fails the run (degraded responses are
// 200s, so a healthy-or-degraded cluster produces none), shed and
// timeout are tolerated (busy CI machines), and at least one request
// must have succeeded.
func scatterPhaseGate(p *loadgen.PhaseResult) int {
	code := 0
	for _, class := range []loadgen.Class{loadgen.Class4xx, loadgen.Class5xx, loadgen.ClassTransport} {
		if n := p.Errors[string(class)]; n > 0 {
			log.Printf("SCATTER GATE: phase %s saw %d %s errors", p.Name, n, class)
			code = 1
		}
	}
	if ok := p.Requests - p.ErrorCount(); ok == 0 {
		log.Printf("SCATTER GATE: phase %s completed no successful requests (errors=%v)", p.Name, p.Errors)
		code = 1
	}
	return code
}

// scatterTraceQuery issues one degraded query pinned to a known
// request id, so the trace-assembly gates have a deterministic handle
// into /debug/traces/{rid}.
func scatterTraceQuery(url, rid string) int {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		log.Printf("SCATTER GATE (trace): %v", err)
		return 1
	}
	req.Header.Set("X-Request-ID", rid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Printf("SCATTER GATE (trace): pinned query: %v", err)
		return 1
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get(httpapi.DegradedHeader) == "" {
		log.Printf("SCATTER GATE (trace): pinned query status=%d degraded=%q, want 200 with degraded header",
			resp.StatusCode, resp.Header.Get(httpapi.DegradedHeader))
		return 1
	}
	return 0
}

// assembledView is the slice of scatter.AssembledTrace the gates
// inspect.
type assembledView struct {
	ID             string `json:"id"`
	ShardProcesses int    `json:"shard_processes"`
	Spans          []struct {
		Process string `json:"process"`
		Name    string `json:"name"`
	} `json:"spans"`
}

// scatterAssemblyGate polls the coordinator's /debug/traces/{rid}
// until it serves one stitched timeline with spans from at least
// minShards shard processes plus the coordinator's own gather and
// merge spans.
func scatterAssemblyGate(label, coordURL, rid string, minShards int, timeout time.Duration) int {
	deadline := time.Now().Add(timeout)
	var last string
	for {
		status, body := scatterGET(coordURL + "/debug/traces/" + rid)
		if status != http.StatusOK {
			last = fmt.Sprintf("HTTP %d: %s", status, body)
		} else {
			var v assembledView
			if err := json.Unmarshal([]byte(body), &v); err != nil {
				last = fmt.Sprintf("bad timeline JSON: %v", err)
			} else if miss := assemblyMissing(v, rid, minShards); miss != "" {
				last = miss
			} else {
				log.Printf("trace gate (%s): /debug/traces/%s stitched %d spans across coordinator + %d shard processes",
					label, rid, len(v.Spans), v.ShardProcesses)
				return 0
			}
		}
		if !time.Now().Before(deadline) {
			log.Printf("SCATTER GATE (trace %s): no assembled timeline for %s after %v: %s", label, rid, timeout, last)
			return 1
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// assemblyMissing reports what an assembled timeline still lacks, or
// "" when it satisfies the gate.
func assemblyMissing(v assembledView, rid string, minShards int) string {
	if v.ID != rid {
		return fmt.Sprintf("timeline id = %q, want %q", v.ID, rid)
	}
	if v.ShardProcesses < minShards {
		return fmt.Sprintf("spans from %d shard processes, want >= %d", v.ShardProcesses, minShards)
	}
	coordSpans := map[string]bool{}
	shardSpans := 0
	for _, sp := range v.Spans {
		if sp.Process == "coordinator" {
			coordSpans[sp.Name] = true
		} else if strings.HasPrefix(sp.Process, "shard") {
			shardSpans++
		}
	}
	for _, want := range []string{"gather stats", "gather find", "merge"} {
		if !coordSpans[want] {
			return fmt.Sprintf("missing coordinator %q span", want)
		}
	}
	if shardSpans == 0 {
		return "no shard-process spans"
	}
	return ""
}

// scatterSLOGate asserts the SLO burn-rate surface is live on the
// coordinator's /metrics after the load phases.
func scatterSLOGate(cl *loadgen.ScatterCluster) int {
	code := 0
	n, ok, err := cl.Metric("expertfind_slo_requests_total")
	if err != nil || !ok || n < 1 {
		log.Printf("SCATTER GATE (slo): expertfind_slo_requests_total = %v (ok=%v, err=%v), want >= 1", n, ok, err)
		code = 1
	}
	for _, name := range []string{"expertfind_slo_objective", "expertfind_slo_burn_rate"} {
		if _, ok, err := cl.Metric(name); err != nil || !ok {
			log.Printf("SCATTER GATE (slo): %s missing from /metrics (ok=%v, err=%v)", name, ok, err)
			code = 1
		}
	}
	if code == 0 {
		log.Printf("slo gate: %0.f requests tracked, burn-rate and objective gauges exported", n)
	}
	return code
}

// scatterCaptureGate asserts the induced latency breach (the shards'
// 1ns objective) produced exactly one rate-limited pprof capture per
// shard process, with profile files on disk. The restarted victim is
// a fresh process that re-breaches during the recovered phase, so it
// is held to the same count.
func scatterCaptureGate(cl *loadgen.ScatterCluster, dir string, shards int) int {
	code := 0
	for i := 0; i < shards; i++ {
		n, ok, err := cl.ShardMetric(i, "expertfind_slo_pprof_captures_total")
		if err != nil || !ok || n != 1 {
			log.Printf("SCATTER GATE (pprof): shard %d captures = %v (ok=%v, err=%v), want exactly 1", i, n, ok, err)
			code = 1
		}
		if err := waitProfileFiles(filepath.Join(dir, fmt.Sprintf("shard%d", i)), 3*time.Second); err != nil {
			log.Printf("SCATTER GATE (pprof): shard %d: %v", i, err)
			code = 1
		}
	}
	if code == 0 {
		log.Printf("pprof gate: induced latency breach captured exactly one profile pair per shard process")
	}
	return code
}

// waitProfileFiles polls dir until it holds at least one pprof file —
// the CPU half of a capture lands a few hundred ms after the breach.
func waitProfileFiles(dir string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		entries, err := os.ReadDir(dir)
		if err == nil && len(entries) > 0 {
			return nil
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("no pprof capture files in %s after %v (err=%v)", dir, timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// waitNonDegraded polls until a find answers without the degraded
// header — the restarted shard's breaker may hold it out of rotation
// for one cooldown after /readyz already reports ready.
func waitNonDegraded(url string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var lastHdr string
	for time.Now().Before(deadline) {
		resp, _ := scatterRawGET(url)
		if resp != nil {
			lastHdr = resp.Header.Get(httpapi.DegradedHeader)
			if resp.StatusCode == http.StatusOK && lastHdr == "" {
				return nil
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("responses still degraded (%q) after %v", lastHdr, timeout)
}

func scatterGET(url string) (int, string) {
	resp, body := scatterRawGET(url)
	if resp == nil {
		return 0, body
	}
	return resp.StatusCode, body
}

func scatterRawGET(url string) (*http.Response, string) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err.Error()
	}
	defer resp.Body.Close()
	var sb strings.Builder
	io.Copy(&sb, resp.Body)
	return resp, sb.String()
}
