// Command docscheck enforces the documentation contract the
// docs-check CI step runs: every package in the module carries a
// package-level doc comment, and every exported top-level declaration
// in the library packages (everything but package main) carries a doc
// comment of its own. The package list is derived from `go list ./...`
// rather than enumerated by hand, so a new package is gated the day it
// is added. Parsing stops at the AST (no type checking), keeping the
// check fast enough to run on every push.
//
// Usage:
//
//	docscheck [packages]
//
// packages defaults to ./... and is passed to `go list` verbatim. Exit
// status is nonzero when any package lacks a doc comment or any
// exported declaration is undocumented, listing each offender with the
// file and line a comment should go at.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	pattern := "./..."
	if len(os.Args) > 1 {
		pattern = os.Args[1]
	}
	pkgs, err := listPackages(pattern)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	var offenders []string
	for _, p := range pkgs {
		off, err := checkPackage(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
			os.Exit(2)
		}
		offenders = append(offenders, off...)
	}
	sort.Strings(offenders)
	for _, o := range offenders {
		fmt.Println(o)
	}
	if len(offenders) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d documentation offender(s)\n", len(offenders))
		os.Exit(1)
	}
	fmt.Printf("docscheck: %d packages documented, exported API covered\n", len(pkgs))
}

type pkg struct {
	dir        string
	importPath string
	name       string
	files      []string
}

// listPackages asks the go tool for the module's packages, so the
// gate's scope is whatever builds — never a hand-maintained list.
func listPackages(pattern string) ([]pkg, error) {
	out, err := exec.Command("go", "list", "-f",
		"{{.Dir}}\t{{.ImportPath}}\t{{.Name}}\t{{range .GoFiles}}{{.}} {{end}}", pattern).Output()
	if err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return nil, fmt.Errorf("go list %s: %v: %s", pattern, err, ee.Stderr)
		}
		return nil, fmt.Errorf("go list %s: %v", pattern, err)
	}
	var pkgs []pkg
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		parts := strings.Split(line, "\t")
		if len(parts) != 4 {
			continue
		}
		p := pkg{dir: parts[0], importPath: parts[1], name: parts[2]}
		for _, f := range strings.Fields(parts[3]) {
			p.files = append(p.files, filepath.Join(p.dir, f))
		}
		if len(p.files) > 0 {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// checkPackage returns one line per documentation offender in p.
func checkPackage(p pkg) ([]string, error) {
	fset := token.NewFileSet()
	var offenders []string
	documented := false
	for _, f := range p.files {
		af, err := parser.ParseFile(fset, f, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
			documented = true
		}
		// Exported API documentation is a library contract; a main
		// package's exported identifiers have no importers to read it.
		if p.name == "main" {
			continue
		}
		for _, d := range af.Decls {
			offenders = append(offenders, checkDecl(fset, p.importPath, d)...)
		}
	}
	if !documented {
		offenders = append(offenders,
			fmt.Sprintf("%s: package has no doc comment (add one in %s)", p.importPath, p.files[0]))
	}
	return offenders, nil
}

// checkDecl reports exported top-level declarations without a doc
// comment. A doc comment on a grouped const/var/type block covers the
// whole group, matching godoc's rendering.
func checkDecl(fset *token.FileSet, importPath string, decl ast.Decl) []string {
	var offenders []string
	undocumented := func(name string, pos token.Pos) {
		p := fset.Position(pos)
		offenders = append(offenders, fmt.Sprintf("%s: exported %s undocumented (%s:%d)",
			importPath, name, p.Filename, p.Line))
	}
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() || d.Doc != nil {
			return nil
		}
		// A method only surfaces in godoc when its receiver type does.
		if d.Recv != nil && !exportedReceiver(d.Recv) {
			return nil
		}
		undocumented("func "+d.Name.Name, d.Pos())
	case *ast.GenDecl:
		if d.Doc != nil {
			return nil
		}
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && s.Doc == nil {
					undocumented("type "+s.Name.Name, s.Pos())
				}
			case *ast.ValueSpec:
				if s.Doc != nil {
					continue
				}
				for _, n := range s.Names {
					if n.IsExported() {
						undocumented(n.Name, n.Pos())
					}
				}
			}
		}
	}
	return offenders
}

// exportedReceiver reports whether a method receiver names an
// exported type.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
