// Command docscheck verifies that every package in the module carries
// a package-level doc comment — the documentation contract the
// docs-check CI step enforces. It walks the repository for directories
// containing non-test Go files, parses package clauses only (fast; no
// type checking), and reports packages whose clause has no attached
// comment in any of their files.
//
// Usage:
//
//	docscheck [dir]
//
// dir defaults to the current directory. Exit status is nonzero when
// any package lacks a doc comment, listing each offender with the file
// a comment should go in (the package's doc.go when present, its first
// file otherwise).
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	offenders, err := check(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	for _, o := range offenders {
		fmt.Println(o)
	}
	if len(offenders) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d package(s) lack a package doc comment\n", len(offenders))
		os.Exit(1)
	}
	fmt.Println("docscheck: all packages documented")
}

// check walks root and returns one line per undocumented package.
func check(root string) ([]string, error) {
	// dir -> files of the package (non-test Go files).
	pkgs := map[string][]string{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			pkgs[dir] = append(pkgs[dir], path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	var offenders []string
	fset := token.NewFileSet()
	for dir, files := range pkgs {
		sort.Strings(files)
		documented := false
		for _, f := range files {
			af, err := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
			if err != nil {
				return nil, err
			}
			if af.Doc != nil && strings.TrimSpace(af.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			offenders = append(offenders, fmt.Sprintf("%s: package has no doc comment (add one in %s)", dir, files[0]))
		}
	}
	sort.Strings(offenders)
	return offenders, nil
}
