package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheck(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "good", "doc.go"), "// Package good is documented.\npackage good\n")
	write(t, filepath.Join(dir, "good", "other.go"), "package good\n")
	write(t, filepath.Join(dir, "bad", "bad.go"), "package bad\n")
	// A detached comment (blank line before the clause) is not a doc
	// comment.
	write(t, filepath.Join(dir, "detached", "a.go"), "// Some file header.\n\npackage detached\n")
	// Test files and testdata never satisfy the requirement.
	write(t, filepath.Join(dir, "bad", "bad_test.go"), "// Package bad tests.\npackage bad\n")
	write(t, filepath.Join(dir, "good", "testdata", "ignore.go"), "package ignored\n")

	offenders, err := check(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 2 {
		t.Fatalf("offenders = %v, want bad and detached", offenders)
	}
	if !strings.Contains(offenders[0], "bad") || !strings.Contains(offenders[1], "detached") {
		t.Fatalf("offenders = %v", offenders)
	}

	// The real repository must stay clean.
	offenders, err = check("../..")
	if err != nil {
		t.Fatal(err)
	}
	if len(offenders) != 0 {
		t.Fatalf("repository packages lack doc comments: %v", offenders)
	}
}
