package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// checkFiles parses the given sources as one package and returns its
// offender lines, exercising checkPackage without invoking go list.
func checkFiles(t *testing.T, name string, sources map[string]string) []string {
	t.Helper()
	dir := t.TempDir()
	p := pkg{dir: dir, importPath: "example.com/" + name, name: name}
	for f, src := range sources {
		path := filepath.Join(dir, f)
		write(t, path, src)
		p.files = append(p.files, path)
	}
	off, err := checkPackage(p)
	if err != nil {
		t.Fatal(err)
	}
	return off
}

func TestCheckPackageDocComment(t *testing.T) {
	if off := checkFiles(t, "good", map[string]string{
		"doc.go":   "// Package good is documented.\npackage good\n",
		"other.go": "package good\n",
	}); len(off) != 0 {
		t.Fatalf("documented package flagged: %v", off)
	}
	off := checkFiles(t, "bad", map[string]string{"bad.go": "package bad\n"})
	if len(off) != 1 || !strings.Contains(off[0], "no doc comment") {
		t.Fatalf("offenders = %v, want missing package doc", off)
	}
	// A detached comment (blank line before the clause) is not a doc
	// comment.
	off = checkFiles(t, "detached", map[string]string{
		"a.go": "// Some file header.\n\npackage detached\n",
	})
	if len(off) != 1 {
		t.Fatalf("offenders = %v, want detached header flagged", off)
	}
}

func TestCheckPackageExportedDecls(t *testing.T) {
	off := checkFiles(t, "api", map[string]string{
		"api.go": `// Package api is documented.
package api

func Undocumented() {}

// Documented does things.
func Documented() {}

func internal() {}

type Thing int

// Method on an exported receiver needs a comment too.
type Box struct{}

func (Box) Get() int { return 0 }

type hidden struct{}

func (hidden) Exported() {}

// Grouped doc covers the whole block.
const (
	A = 1
	B = 2
)

var Loose = 3
`,
	})
	want := []string{"func Undocumented", "type Thing", "func Get", "Loose"}
	if len(off) != len(want) {
		t.Fatalf("offenders = %v, want %d entries for %v", off, len(want), want)
	}
	joined := strings.Join(off, "\n")
	for _, w := range want {
		if !strings.Contains(joined, w) {
			t.Errorf("offenders missing %q in:\n%s", w, joined)
		}
	}
}

func TestCheckPackageMainExemption(t *testing.T) {
	// Exported identifiers in package main have no importers; only the
	// package doc is required.
	if off := checkFiles(t, "main", map[string]string{
		"main.go": "// Command x does things.\npackage main\n\nfunc Exported() {}\n\nfunc main() {}\n",
	}); len(off) != 0 {
		t.Fatalf("main package exported decls flagged: %v", off)
	}
}

func TestRepositoryClean(t *testing.T) {
	// The module pattern works from any directory inside the module,
	// including this test's working directory.
	pkgs, err := listPackages("expertfind/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("go list found only %d packages", len(pkgs))
	}
	var offenders []string
	for _, p := range pkgs {
		off, err := checkPackage(p)
		if err != nil {
			t.Fatal(err)
		}
		offenders = append(offenders, off...)
	}
	if len(offenders) != 0 {
		t.Fatalf("repository packages lack doc comments: %v", offenders)
	}
}
