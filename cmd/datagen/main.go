// Command datagen generates the synthetic evaluation corpus and
// prints its statistics (the Fig. 5 dataset characterization), or
// dumps the full corpus as JSON for inspection.
//
// Usage:
//
//	datagen [-seed N] [-scale F] [-json out.json] [-samples K]
//	        [-save corpus.json.gz] [-load corpus.json.gz]
//	        [-stream corpus.stream.json.gz] [-chunk-docs N]
//	        [-segment-dir DIR] [-segment-flush-docs N] [-segment-max N]
//	        [-fault-transient F] [-fault-ratelimit F] [-fault-seed N]
//	        [-fault-outages net,net] [-retries N]
//	        [-log-format text|json] [-log-level L]
//
// -stream switches to streaming generation: the corpus is emitted as
// chunked JSONL records straight to disk, and bulk texts are dropped
// from memory as each chunk lands, so peak memory is bounded by the
// base corpus plus one chunk at any -scale. With -segment-dir the
// stream is then analyzed chunk by chunk into a disk-backed segment
// index that cmd/serve and cmd/loadtest open directly.
//
// When any -fault-* flag is set, the corpus is re-crawled through the
// fault-injecting platform API (internal/faults) and the degraded
// view replaces the pristine graph — so saved snapshots and printed
// statistics reflect what a crawler facing flaky APIs would obtain.
// -retries enables the retry/breaker stack during that crawl; the
// crawl emits structured log records (breaker transitions, final
// summary) to stderr, shaped by -log-format and -log-level.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"expertfind/internal/corpusio"
	"expertfind/internal/crawler"
	"expertfind/internal/dataset"
	"expertfind/internal/experiments"
	"expertfind/internal/faults"
	"expertfind/internal/index"
	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
	"expertfind/internal/telemetry"
)

// jsonResource is the dump format of one resource.
type jsonResource struct {
	ID        int32    `json:"id"`
	Network   string   `json:"network"`
	Kind      string   `json:"kind"`
	Creator   string   `json:"creator"`
	Container int32    `json:"container,omitempty"`
	Text      string   `json:"text"`
	URLs      []string `json:"urls,omitempty"`
}

// jsonCandidate is the dump format of one candidate's ground truth.
type jsonCandidate struct {
	Name           string         `json:"name"`
	Expressiveness float64        `json:"expressiveness"`
	Activity       float64        `json:"activity"`
	Levels         map[string]int `json:"levels"`
	ExpertIn       []string       `json:"expert_in"`
}

type jsonDump struct {
	Seed       int64           `json:"seed"`
	Scale      float64         `json:"scale"`
	Candidates []jsonCandidate `json:"candidates"`
	Queries    []dataset.Query `json:"queries"`
	Resources  []jsonResource  `json:"resources"`
}

func main() {
	seed := flag.Int64("seed", 1, "generation seed")
	scale := flag.Float64("scale", 1.0, "volume multiplier")
	jsonPath := flag.String("json", "", "write the full corpus as JSON to this file")
	savePath := flag.String("save", "", "save a reloadable corpus snapshot (.json or .json.gz)")
	loadPath := flag.String("load", "", "load a corpus snapshot instead of generating")
	streamPath := flag.String("stream", "", "write a streaming corpus (chunked JSONL, .gz to compress) in bounded memory")
	chunkDocs := flag.Int("chunk-docs", 25000, "bulk resources per stream chunk")
	segmentDir := flag.String("segment-dir", "", "with -stream: build a disk-backed segment index of the corpus in this directory")
	segmentFlush := flag.Int("segment-flush-docs", 0, "segment store memtable flush threshold (0 = default)")
	segmentMax := flag.Int("segment-max", 0, "segment count that triggers compaction (0 = default)")
	samples := flag.Int("samples", 3, "sample resources to print per network")
	faultTransient := flag.Float64("fault-transient", 0, "probability an API call fails transiently")
	faultRateLimit := flag.Float64("fault-ratelimit", 0, "probability an API call is rate-limited (429)")
	faultSeed := flag.Int64("fault-seed", 23, "fault injection seed")
	faultOutages := flag.String("fault-outages", "", "comma-separated networks that are hard down (facebook,twitter,linkedin)")
	retries := flag.Int("retries", 0, "max attempts per API call during the faulted crawl (0 = no retries)")
	logFormat := flag.String("log-format", "text", "crawl log record format: text or json")
	logLevel := flag.String("log-level", "info", "minimum crawl log level: debug, info, warn or error")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, telemetry.LogConfig{Format: *logFormat, Level: *logLevel})
	if err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(2)
	}

	if *streamPath != "" {
		if err := runStream(*seed, *scale, *chunkDocs, *streamPath, *segmentDir, *segmentFlush, *segmentMax); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	t0 := time.Now()
	var ds *dataset.Dataset
	if *loadPath != "" {
		var err error
		ds, err = corpusio.LoadFile(*loadPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
	} else {
		ds = dataset.Generate(dataset.Config{Seed: *seed, Scale: *scale})
	}

	if *faultTransient > 0 || *faultRateLimit > 0 || *faultOutages != "" {
		cfg := faults.Config{
			Seed:          *faultSeed,
			TransientRate: *faultTransient,
			RateLimitRate: *faultRateLimit,
		}
		for _, name := range strings.Split(*faultOutages, ",") {
			if name = strings.TrimSpace(name); name == "" {
				continue
			}
			net := socialgraph.Network(name)
			switch net {
			case socialgraph.Facebook, socialgraph.Twitter, socialgraph.LinkedIn:
				cfg.Outages = append(cfg.Outages, net)
			default:
				fmt.Fprintf(os.Stderr, "datagen: unknown network %q\n", name)
				os.Exit(2)
			}
		}
		res := crawler.Resilience{}
		if *retries > 0 {
			res = crawler.DefaultResilience
			res.Retry.MaxAttempts = *retries
		}
		res.Logger = logger
		crawled, st := crawler.CrawlAPI(faults.Wrap(ds.Graph, cfg), crawler.FullAccess, res)
		fmt.Printf("faulted crawl: %d/%d resources recovered (%d calls, %d failed, %d retries, %d gave up, %d breaker trips)\n",
			crawled.NumResources(), ds.Graph.NumResources(),
			st.APICalls, st.FailedCalls, st.Retries, st.GaveUp, st.BreakerTrips)
		ds = ds.WithGraph(crawled)
	}

	fmt.Printf("generated in %v: %d resources, %d users (%d candidates), %d containers, %d web pages\n\n",
		time.Since(t0).Round(time.Millisecond), ds.Graph.NumResources(), ds.Graph.NumUsers(),
		len(ds.Candidates), ds.Graph.NumContainers(), ds.Web.Len())

	sys := &experiments.System{DS: ds}
	fmt.Print(experiments.RunFig5a(sys))
	fmt.Println()
	fmt.Print(experiments.RunFig5b(sys))

	if *samples > 0 {
		fmt.Println("\nsample resources:")
		printSamples(ds, *samples)
	}

	if *jsonPath != "" {
		if err := writeJSON(ds, *jsonPath, *seed, *scale); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\ncorpus written to %s\n", *jsonPath)
	}
	if *savePath != "" {
		if err := corpusio.SaveFile(ds, *savePath); err != nil {
			fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nreloadable snapshot written to %s\n", *savePath)
	}
}

// runStream generates a corpus straight to disk in chunked form and,
// when segmentDir is set, builds the segment index from the stream.
func runStream(seed int64, scale float64, chunkDocs int, streamPath, segmentDir string, flushDocs, maxSegments int) error {
	t0 := time.Now()
	w, err := corpusio.CreateStream(streamPath)
	if err != nil {
		return err
	}
	cfg := dataset.StreamConfig{Config: dataset.Config{Seed: seed, Scale: scale}, ChunkDocs: chunkDocs}
	total := cfg.BulkChunks()
	chunks := 0
	ds, err := dataset.GenerateStream(cfg,
		func(d *dataset.Dataset) error { return w.WriteBase(d) },
		func(d *dataset.Dataset, c *dataset.StreamChunk) error {
			if err := w.WriteChunk(c); err != nil {
				return err
			}
			// The texts now live on disk; dropping them bounds memory.
			d.BlankChunkTexts(c)
			chunks++
			if chunks%25 == 0 || chunks == total {
				fmt.Printf("  chunk %d/%d: %d users, %d resources, %v elapsed\n",
					chunks, total, d.Graph.NumUsers(), d.Graph.NumResources(),
					time.Since(t0).Round(time.Second))
			}
			return nil
		})
	if err != nil {
		w.Close()
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Printf("stream corpus written to %s in %v: %d chunks, %d users, %d resources\n",
		streamPath, time.Since(t0).Round(time.Millisecond), chunks,
		ds.Graph.NumUsers(), ds.Graph.NumResources())
	if segmentDir == "" {
		return nil
	}

	t1 := time.Now()
	sys, err := experiments.BuildSystemFromStream(streamPath, segmentDir, experiments.StreamBuildOptions{
		FlushDocs:   flushDocs,
		MaxSegments: maxSegments,
	})
	if err != nil {
		return err
	}
	store := sys.Finder.Index().(*index.Store)
	defer store.Close()
	if err := store.Compact(); err != nil {
		return err
	}
	st := store.Status()
	fmt.Printf("segment index built in %s in %v: %d docs in %d segments (%.1f MB on disk, %d seals, %d compactions)\n",
		segmentDir, time.Since(t1).Round(time.Millisecond), st.LiveDocs, len(st.Segments),
		float64(st.DiskBytes)/(1<<20), st.Seals, st.Compactions)
	return nil
}

func printSamples(ds *dataset.Dataset, k int) {
	printed := map[socialgraph.Network]int{}
	for i := 0; i < ds.Graph.NumResources(); i++ {
		r := ds.Graph.Resource(socialgraph.ResourceID(i))
		if r.Kind == socialgraph.KindProfile || printed[r.Network] >= k {
			continue
		}
		printed[r.Network]++
		text := r.Text
		if len(text) > 90 {
			text = text[:90] + "..."
		}
		fmt.Printf("  [%s/%s] %s\n", r.Network, r.Kind, text)
	}
}

func writeJSON(ds *dataset.Dataset, path string, seed int64, scale float64) error {
	dump := jsonDump{Seed: seed, Scale: scale, Queries: ds.Queries}
	for _, u := range ds.Candidates {
		c := jsonCandidate{
			Name:           ds.Graph.User(u).Name,
			Expressiveness: ds.Expressiveness(u),
			Activity:       ds.Activity(u),
			Levels:         map[string]int{},
		}
		for _, dom := range kb.Domains {
			c.Levels[string(dom)] = ds.Level(u, dom)
			if ds.IsExpert(u, dom) {
				c.ExpertIn = append(c.ExpertIn, string(dom))
			}
		}
		dump.Candidates = append(dump.Candidates, c)
	}
	for i := 0; i < ds.Graph.NumResources(); i++ {
		r := ds.Graph.Resource(socialgraph.ResourceID(i))
		dump.Resources = append(dump.Resources, jsonResource{
			ID:        int32(r.ID),
			Network:   string(r.Network),
			Kind:      r.Kind.String(),
			Creator:   ds.Graph.User(r.Creator).Name,
			Container: int32(r.Container),
			Text:      r.Text,
			URLs:      r.URLs,
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	if err := enc.Encode(dump); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
