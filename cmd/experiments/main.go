// Command experiments reproduces the tables and figures of the
// paper's evaluation section over the synthetic corpus and prints
// them as text.
//
// Usage:
//
//	experiments [-seed N] [-scale F] [-index-shards N] [-run id,id,...]
//	            [-fault-rates F,F,...] [-fault-seed N] [-retries N]
//
// Experiment ids: fig5a fig5b fig6 fig7 table2 fig8 table3 fig9
// table4 fig10 fig11 (default: all, in paper order). The -fault-*
// and -retries flags parameterize the "faults" sweep (ranking
// quality vs injected API failure rate).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"expertfind/internal/dataset"
	"expertfind/internal/experiments"
	"expertfind/internal/resilience"
)

func main() {
	seed := flag.Int64("seed", 1, "dataset generation seed")
	scale := flag.Float64("scale", 1.0, "corpus volume multiplier")
	indexShards := flag.Int("index-shards", 0, "document shards scored in parallel per query (0 = GOMAXPROCS, 1 = monolithic)")
	run := flag.String("run", "", "comma-separated experiment ids (default all)")
	faultRates := flag.String("fault-rates", "", "comma-separated API failure rates for the faults sweep (default 0,0.05,0.1,0.25,0.5)")
	faultSeed := flag.Int64("fault-seed", 0, "fault injection seed for the faults sweep (default 23)")
	retries := flag.Int("retries", 0, "max attempts per API call in the faults sweep (default: the standard stack's 4)")
	flag.Parse()

	sweep := experiments.DefaultFaultSweep()
	if *faultRates != "" {
		sweep.Rates = nil
		for _, f := range strings.Split(*faultRates, ",") {
			rate, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil || rate < 0 || rate > 1 {
				fmt.Fprintf(os.Stderr, "experiments: invalid failure rate %q\n", f)
				os.Exit(2)
			}
			sweep.Rates = append(sweep.Rates, rate)
		}
	}
	if *faultSeed != 0 {
		sweep.Seed = *faultSeed
	}
	if *retries > 0 {
		sweep.Res.Retry.MaxAttempts = *retries
		if *retries == 1 {
			sweep.Res.Retry = resilience.RetryPolicy{MaxAttempts: 1}
		}
	}

	runners := []struct {
		id string
		fn func(*experiments.System) fmt.Stringer
	}{
		{"fig5a", func(s *experiments.System) fmt.Stringer { return experiments.RunFig5a(s) }},
		{"fig5b", func(s *experiments.System) fmt.Stringer { return experiments.RunFig5b(s) }},
		{"fig6", func(s *experiments.System) fmt.Stringer { return experiments.RunFig6(s) }},
		{"fig7", func(s *experiments.System) fmt.Stringer { return experiments.RunFig7(s) }},
		{"table2", func(s *experiments.System) fmt.Stringer { return experiments.RunTable2(s) }},
		{"fig8", func(s *experiments.System) fmt.Stringer { return experiments.RunFig8(s) }},
		{"table3", func(s *experiments.System) fmt.Stringer { return experiments.RunTable3(s) }},
		{"fig9", func(s *experiments.System) fmt.Stringer { return experiments.RunFig9(s) }},
		{"table4", func(s *experiments.System) fmt.Stringer { return experiments.RunTable4(s) }},
		{"fig10", func(s *experiments.System) fmt.Stringer { return experiments.RunFig10(s) }},
		{"fig11", func(s *experiments.System) fmt.Stringer { return experiments.RunFig11(s) }},
		{"baselines", func(s *experiments.System) fmt.Stringer { return experiments.RunBaselineComparison(s) }},
		{"significance", func(s *experiments.System) fmt.Stringer { return experiments.RunSignificance(s) }},
		{"crawl", func(s *experiments.System) fmt.Stringer { return experiments.RunCrawlRobustness(s) }},
		{"faults", func(s *experiments.System) fmt.Stringer { return experiments.RunFaultSweep(s, sweep) }},
		{"agreement", func(s *experiments.System) fmt.Stringer { return experiments.RunNetworkAgreement(s) }},
		{"correlation", func(s *experiments.System) fmt.Stringer { return experiments.RunCorrelation(s) }},
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			known := false
			for _, r := range runners {
				if r.id == id {
					known = true
				}
			}
			if !known {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
				os.Exit(2)
			}
		}
	}

	t0 := time.Now()
	sys := experiments.BuildSystem(dataset.Config{Seed: *seed, Scale: *scale, IndexShards: *indexShards})
	fmt.Printf("system: %d resources generated, %d indexed, %d candidates (built in %v)\n\n",
		sys.DS.Graph.NumResources(), sys.Kept, len(sys.DS.Candidates), time.Since(t0).Round(time.Millisecond))

	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		t := time.Now()
		result := r.fn(sys)
		fmt.Printf("== %s (%v) ==\n%s\n", r.id, time.Since(t).Round(time.Millisecond), result)
	}
}
