// Command experiments reproduces the tables and figures of the
// paper's evaluation section over the synthetic corpus and prints
// them as text.
//
// Usage:
//
//	experiments [-seed N] [-scale F] [-run id,id,...]
//
// Experiment ids: fig5a fig5b fig6 fig7 table2 fig8 table3 fig9
// table4 fig10 fig11 (default: all, in paper order).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"expertfind/internal/dataset"
	"expertfind/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "dataset generation seed")
	scale := flag.Float64("scale", 1.0, "corpus volume multiplier")
	run := flag.String("run", "", "comma-separated experiment ids (default all)")
	flag.Parse()

	runners := []struct {
		id string
		fn func(*experiments.System) fmt.Stringer
	}{
		{"fig5a", func(s *experiments.System) fmt.Stringer { return experiments.RunFig5a(s) }},
		{"fig5b", func(s *experiments.System) fmt.Stringer { return experiments.RunFig5b(s) }},
		{"fig6", func(s *experiments.System) fmt.Stringer { return experiments.RunFig6(s) }},
		{"fig7", func(s *experiments.System) fmt.Stringer { return experiments.RunFig7(s) }},
		{"table2", func(s *experiments.System) fmt.Stringer { return experiments.RunTable2(s) }},
		{"fig8", func(s *experiments.System) fmt.Stringer { return experiments.RunFig8(s) }},
		{"table3", func(s *experiments.System) fmt.Stringer { return experiments.RunTable3(s) }},
		{"fig9", func(s *experiments.System) fmt.Stringer { return experiments.RunFig9(s) }},
		{"table4", func(s *experiments.System) fmt.Stringer { return experiments.RunTable4(s) }},
		{"fig10", func(s *experiments.System) fmt.Stringer { return experiments.RunFig10(s) }},
		{"fig11", func(s *experiments.System) fmt.Stringer { return experiments.RunFig11(s) }},
		{"baselines", func(s *experiments.System) fmt.Stringer { return experiments.RunBaselineComparison(s) }},
		{"significance", func(s *experiments.System) fmt.Stringer { return experiments.RunSignificance(s) }},
		{"crawl", func(s *experiments.System) fmt.Stringer { return experiments.RunCrawlRobustness(s) }},
		{"agreement", func(s *experiments.System) fmt.Stringer { return experiments.RunNetworkAgreement(s) }},
		{"correlation", func(s *experiments.System) fmt.Stringer { return experiments.RunCorrelation(s) }},
	}

	want := map[string]bool{}
	if *run != "" {
		for _, id := range strings.Split(*run, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			known := false
			for _, r := range runners {
				if r.id == id {
					known = true
				}
			}
			if !known {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
				os.Exit(2)
			}
		}
	}

	t0 := time.Now()
	sys := experiments.BuildSystem(dataset.Config{Seed: *seed, Scale: *scale})
	fmt.Printf("system: %d resources generated, %d indexed, %d candidates (built in %v)\n\n",
		sys.DS.Graph.NumResources(), sys.Kept, len(sys.DS.Candidates), time.Since(t0).Round(time.Millisecond))

	for _, r := range runners {
		if len(want) > 0 && !want[r.id] {
			continue
		}
		t := time.Now()
		result := r.fn(sys)
		fmt.Printf("== %s (%v) ==\n%s\n", r.id, time.Since(t).Round(time.Millisecond), result)
	}
}
