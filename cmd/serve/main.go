// Command serve runs the expert finding system as an HTTP JSON
// service (see internal/httpapi for the endpoints).
//
// Usage:
//
//	serve [-addr :8080] [-seed N] [-scale F] [-corpus file.json.gz]
//
// With -corpus, the system is built from a saved corpus snapshot
// (datagen -save); otherwise a synthetic corpus is generated.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"expertfind"
	"expertfind/internal/httpapi"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "corpus seed (ignored with -corpus)")
	scale := flag.Float64("scale", 0.5, "corpus volume multiplier (ignored with -corpus)")
	corpus := flag.String("corpus", "", "load a saved corpus snapshot instead of generating")
	flag.Parse()

	t0 := time.Now()
	var (
		sys *expertfind.System
		err error
	)
	if *corpus != "" {
		sys, err = expertfind.NewSystemFromCorpus(*corpus)
		if err != nil {
			log.Fatalf("serve: %v", err)
		}
	} else {
		sys = expertfind.NewSystem(expertfind.Config{Seed: *seed, Scale: *scale})
	}
	st := sys.Stats()
	log.Printf("corpus ready in %v: %d candidates, %d/%d resources indexed",
		time.Since(t0).Round(time.Millisecond), st.Candidates, st.Indexed, st.Resources)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.New(sys),
		ReadHeaderTimeout: 5 * time.Second,
	}

	// Drain in-flight requests on SIGINT/SIGTERM.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Print("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("serve: shutdown: %v", err)
		}
		close(idle)
	}()

	log.Printf("listening on %s", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(fmt.Errorf("serve: %w", err))
	}
	<-idle
}
