// Command serve runs the expert finding system as an HTTP JSON
// service (see internal/httpapi for the endpoints).
//
// Usage:
//
//	serve [-addr :8080] [-seed N] [-scale F] [-corpus file.json.gz]
//	      [-stream-corpus file.stream.json.gz -segment-dir DIR]
//	      [-segment-flush-docs N] [-segment-max N] [-segment-maintain D]
//	      [-index-shards N] [-topk N] [-request-timeout D]
//	      [-max-concurrent N]
//	      [-retry-after D] [-cache-size N] [-cache-ttl D] [-debug]
//	      [-shard-id N -shard-count N]
//	      [-log-format text|json] [-log-level L] [-log-stamp=false]
//	      [-slo-latency D] [-slo-availability F] [-slo-window D]
//	      [-slo-burn-alert F] [-pprof-dir DIR]
//	      [-ingest-interval D] [-ingest-seed N] [-ingest-adds N]
//	      [-ingest-updates N] [-ingest-removes N] [-ingest-transient F]
//
// With -corpus, the system is built from a saved corpus snapshot
// (datagen -save); otherwise a synthetic corpus is generated.
//
// With -stream-corpus and -segment-dir, the system serves a streaming
// corpus (datagen -stream) from a disk-backed segment index. When the
// segment directory already holds a built index (datagen -segment-dir,
// or a previous serve run) it is opened directly — no analysis pass;
// an empty directory is populated by analyzing the corpus chunk by
// chunk in bounded memory. -segment-maintain runs background sealing
// and compaction at that interval; rankings are bit-identical across
// any segment layout. Streaming serving is exclusive with -corpus,
// -shard-count and continuous ingest (deltas need the generated
// corpus's remote twin, and shards slice a monolithic corpus).
//
// With -ingest-interval > 0, the server runs continuous ingest
// (internal/ingest): a same-ID remote replica of the generated corpus
// is churned every interval (-ingest-adds/-updates/-removes operations
// per round, update-only by default so collection statistics stay
// fixed and scoped cache invalidation can preserve untouched entries),
// re-fetched through the fault-injecting platform API
// (-ingest-transient sets the injected transient-failure rate), and
// the delta is applied live to the serving graph and index —
// rankings after any round are bit-identical to a cold rebuild.
// /v1/ingest/status reports the cumulative counters. Continuous
// ingest requires the generated corpus: it is refused together with
// -corpus (no remote twin exists for a snapshot) or -shard-count (a
// shard serves a document slice; deltas carry the whole corpus).
//
// With -topk N, /v1/find and /v1/bestnetwork requests that do not
// pass their own topk parameter bound resource matching to the N
// best-ranked reachable resources (MaxScore pruned; byte-identical to
// the exhaustive top N). Clients override per request with topk=K, or
// topk=0 to force exhaustive scoring.
//
// With -shard-count N (and -shard-id in [0,N)), the process serves
// one shard of a scatter-gather topology: it analyzes and indexes
// only the document slice index.ShardRoute assigns to it and mounts
// the /v1/shard/* endpoints cmd/coordinator fans out to.
//
// The listener comes up immediately; /healthz answers 200 from the
// start while /readyz and the /v1 routes answer 503 + Retry-After
// until the corpus build finishes. Requests are bounded by
// -request-timeout, and load beyond -max-concurrent in-flight /v1
// requests is shed with 503 + Retry-After.
//
// Ranked /v1/find results are cached in a bounded LRU keyed by
// (need, parameters, corpus generation): -cache-size bounds the entry
// count (0 disables caching), -cache-ttl their lifetime. Concurrent
// identical queries coalesce onto one scoring pass, responses carry a
// Cache-Status: hit|miss|coalesced header, and every corpus install
// opens a fresh cache generation so swapped corpora never serve stale
// rankings.
//
// Observability: /metrics serves Prometheus text, /debug/traces the
// recent query traces (with /debug/traces/{rid} lookup by request id
// and /debug/slow listing the tail-sampled slow/errored retained
// traces), /version the build identity. Logs are structured
// (log/slog): -log-format selects text or json, -log-level the floor,
// -log-stamp=false drops timestamps for byte-deterministic output.
// Every /v1 request feeds the expertfind_slo_* burn-rate gauges; when
// the -slo-burn-alert threshold is crossed and -pprof-dir is set, a
// heap+CPU profile pair is captured there (rate-limited). -debug
// additionally mounts net/http/pprof and expvar under /debug/.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"expertfind"
	"expertfind/internal/dataset"
	"expertfind/internal/faults"
	"expertfind/internal/httpapi"
	"expertfind/internal/ingest"
	"expertfind/internal/rescache"
	"expertfind/internal/slo"
	"expertfind/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "corpus seed (ignored with -corpus)")
	scale := flag.Float64("scale", 0.5, "corpus volume multiplier (ignored with -corpus)")
	corpus := flag.String("corpus", "", "load a saved corpus snapshot instead of generating")
	streamCorpus := flag.String("stream-corpus", "", "serve a streaming corpus (datagen -stream) from a segment index (requires -segment-dir)")
	segmentDir := flag.String("segment-dir", "", "segment index directory for -stream-corpus (reused if already built)")
	segmentFlush := flag.Int("segment-flush-docs", 0, "segment store memtable flush threshold (0 = default)")
	segmentMax := flag.Int("segment-max", 0, "segment count that triggers compaction (0 = default)")
	segmentMaintain := flag.Duration("segment-maintain", 30*time.Second, "background segment maintenance interval (0 disables)")
	indexShards := flag.Int("index-shards", 0, "document shards scored in parallel per query (0 = GOMAXPROCS, 1 = monolithic)")
	topK := flag.Int("topk", 0, "default top-k resource bound for /v1/find (MaxScore pruning; 0 = exhaustive)")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request handling deadline (0 disables)")
	maxConc := flag.Int("max-concurrent", 64, "max in-flight /v1 requests before shedding load (0 = unlimited)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 503 responses")
	cacheSize := flag.Int("cache-size", 4096, "ranked-result cache capacity in entries (0 disables caching)")
	cacheTTL := flag.Duration("cache-ttl", time.Minute, "ranked-result cache entry lifetime (0 = until evicted)")
	debugEndpoints := flag.Bool("debug", false, "mount pprof and expvar under /debug/")
	shardID := flag.Int("shard-id", 0, "this process's shard number in a scatter-gather topology (with -shard-count)")
	shardCount := flag.Int("shard-count", 0, "scatter-gather topology size; >= 1 serves only this shard's document slice and mounts /v1/shard/*")
	logFormat := flag.String("log-format", "text", "log record format: text or json")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, warn or error")
	logStamp := flag.Bool("log-stamp", true, "timestamp log records (false for byte-deterministic output)")
	sloLatency := flag.Duration("slo-latency", 500*time.Millisecond, "latency objective for /v1 requests (also the slow-trace keep threshold)")
	sloAvail := flag.Float64("slo-availability", 0.999, "availability objective (target non-5xx ratio)")
	sloWindow := flag.Duration("slo-window", 5*time.Minute, "sliding window for SLO burn rates")
	sloBurnAlert := flag.Float64("slo-burn-alert", 4, "burn rate that triggers an on-breach profile capture")
	pprofDir := flag.String("pprof-dir", "", "directory for on-breach pprof captures (empty disables capturing)")
	ingestInterval := flag.Duration("ingest-interval", 0, "continuous-ingest round interval (0 disables; requires the generated corpus)")
	ingestSeed := flag.Int64("ingest-seed", 1, "remote churn and fault-injection seed")
	ingestAdds := flag.Int("ingest-adds", 0, "remote resources added per churn round")
	ingestUpdates := flag.Int("ingest-updates", 8, "remote resources edited per churn round")
	ingestRemoves := flag.Int("ingest-removes", 0, "remote resources deleted per churn round")
	ingestTransient := flag.Float64("ingest-transient", 0, "injected transient-failure rate on remote fetches")
	flag.Parse()

	logger, err := telemetry.NewLogger(os.Stderr, telemetry.LogConfig{
		Format: *logFormat, Level: *logLevel, NoStamp: !*logStamp,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "serve: %v\n", err)
		os.Exit(1)
	}
	fatalf := func(msg string, args ...any) {
		logger.Error(msg, args...)
		os.Exit(1)
	}

	if *ingestInterval > 0 && (*corpus != "" || *streamCorpus != "" || *shardCount > 0) {
		fatalf("continuous ingest requires the generated corpus",
			"corpus", *corpus, "stream_corpus", *streamCorpus, "shard_count", *shardCount)
	}
	if *streamCorpus != "" && *segmentDir == "" {
		fatalf("-stream-corpus requires -segment-dir")
	}
	if *streamCorpus != "" && (*corpus != "" || *shardCount > 0) {
		fatalf("streaming serving is exclusive with -corpus and -shard-count",
			"corpus", *corpus, "shard_count", *shardCount)
	}

	var shard *httpapi.ShardOptions
	if *shardCount > 0 {
		if *shardID < 0 || *shardID >= *shardCount {
			fatalf("shard id outside topology", "shard_id", *shardID, "shard_count", *shardCount)
		}
		shard = &httpapi.ShardOptions{ID: *shardID, Count: *shardCount}
		// Every record from a shard process carries its topology
		// position, so interleaved multi-process logs stay attributable.
		logger = logger.With("shard", *shardID)
	}
	var cache *rescache.Cache
	if *cacheSize > 0 {
		cache = rescache.New(rescache.Options{Capacity: *cacheSize, TTL: *cacheTTL})
	}

	tracker := slo.New(slo.Config{
		Availability: *sloAvail,
		Latency:      *sloLatency,
		Window:       *sloWindow,
		BurnAlert:    *sloBurnAlert,
		ProfileDir:   *pprofDir,
		Logger:       logger,
	})
	// Slow traces are defined by the latency objective: anything that
	// breaches it is retained in the tracer's keep ring.
	tracer := telemetry.DefaultTracer()
	policy := tracer.KeepPolicy()
	policy.SlowThreshold = tracker.Latency()
	tracer.SetKeepPolicy(policy)

	handler := httpapi.NewWithOptions(nil, httpapi.Options{
		RequestTimeout: *reqTimeout,
		MaxConcurrent:  *maxConc,
		RetryAfter:     *retryAfter,
		Logger:         logger,
		Tracer:         tracer,
		SLO:            tracker,
		Debug:          *debugEndpoints,
		Cache:          cache,
		Shard:          shard,
		DefaultTopK:    *topK,
	})

	// Build the corpus in the background so the listener (and its
	// liveness probe) is up immediately; /readyz gates traffic until
	// SetSystem flips the handler ready.
	go func() {
		t0 := time.Now()
		var (
			sys *expertfind.System
			err error
		)
		cfg := expertfind.Config{Seed: *seed, Scale: *scale, IndexShards: *indexShards}
		switch {
		case *streamCorpus != "":
			sys, err = expertfind.NewSystemFromStream(*streamCorpus, *segmentDir, expertfind.StreamOptions{
				FlushDocs:   *segmentFlush,
				MaxSegments: *segmentMax,
			})
		case *corpus != "" && shard != nil:
			sys, err = expertfind.NewSystemFromCorpusShard(*corpus, *indexShards, shard.ID, shard.Count)
		case *corpus != "":
			sys, err = expertfind.NewSystemFromCorpusShards(*corpus, *indexShards)
		case shard != nil:
			sys, err = expertfind.NewSystemShard(cfg, shard.ID, shard.Count)
		default:
			sys = expertfind.NewSystem(cfg)
		}
		if err != nil {
			fatalf("corpus build failed", "err", err.Error())
		}
		st := sys.Stats()
		if shard != nil {
			logger.Info("shard ready",
				"shard_count", shard.Count,
				"build_time", time.Since(t0).Round(time.Millisecond).String(),
				"candidates", st.Candidates, "resources", st.Indexed)
		} else {
			logger.Info("corpus ready",
				"build_time", time.Since(t0).Round(time.Millisecond).String(),
				"candidates", st.Candidates, "indexed", st.Indexed,
				"resources", st.Resources, "index_shards", st.IndexShards)
		}
		handler.SetSystem(sys)

		if store := sys.SegmentStore(); store != nil {
			st := store.Status()
			logger.Info("segment store serving",
				"dir", *segmentDir, "segments", len(st.Segments),
				"live_docs", st.LiveDocs, "tombstones", st.Tombstones,
				"disk_bytes", st.DiskBytes)
			if *segmentMaintain > 0 {
				store.StartBackground(*segmentMaintain)
			}
		}

		if *ingestInterval > 0 {
			// The remote twin: the same generator configuration yields a
			// same-ID replica of the corpus just installed, which the
			// churn driver then evolves like a live platform.
			remote := dataset.Generate(dataset.Config{
				Seed: *seed, Scale: *scale, IndexShards: *indexShards,
			})
			icfg := ingest.Config{
				API: faults.Wrap(remote.Graph, faults.Config{
					Seed: *ingestSeed, TransientRate: *ingestTransient,
				}),
				Logger: logger,
				Tracer: tracer,
			}
			if cache != nil {
				icfg.Cache = cache
			}
			ing, err := sys.NewIngester(icfg)
			if err != nil {
				fatalf("ingest setup failed", "err", err.Error())
			}
			handler.SetIngester(ing)
			churn := ingest.NewChurn(remote.Graph, ingest.ChurnConfig{
				Seed:    *ingestSeed,
				Adds:    *ingestAdds,
				Updates: *ingestUpdates,
				Removes: *ingestRemoves,
			})
			logger.Info("continuous ingest enabled",
				"interval", ingestInterval.String(),
				"adds", *ingestAdds, "updates", *ingestUpdates, "removes", *ingestRemoves)
			go func() {
				for range time.Tick(*ingestInterval) {
					churn.Round()
					// An aborted round (injected fetch failure) changes
					// nothing and is retried from scratch next tick; the
					// churn already applied stays visible to that retry.
					_, _ = ing.RunOnce(context.Background())
				}
			}()
		}
	}()

	// WriteTimeout must outlast the request deadline so the 503 the
	// timeout middleware writes still reaches the client.
	writeTimeout := 30 * time.Second
	if *reqTimeout > 0 && *reqTimeout+5*time.Second > writeTimeout {
		writeTimeout = *reqTimeout + 5*time.Second
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
	}

	// Drain in-flight requests on SIGINT/SIGTERM.
	idle := make(chan struct{})
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		logger.Info("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Warn("shutdown", "err", err.Error())
		}
		close(idle)
	}()

	logger.Info("listening", "addr", *addr)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatalf("listen failed", "err", err.Error())
	}
	<-idle
}
