package expertfind

import (
	"fmt"

	"expertfind/internal/jury"
	"expertfind/internal/socialgraph"
	"expertfind/internal/teams"
)

// Team is an expert team covering several expertise needs while
// staying well connected in the social network (the Expert Team
// Formation problem of Lappas et al., which the paper's related work
// positions next to expert finding).
type Team struct {
	// Members are the distinct team members.
	Members []string
	// ByNeed maps each input need to the member covering it.
	ByNeed map[string]string
	// Diameter is the largest communication distance (hops over
	// mutual relationships) between any two members.
	Diameter int
	// SumDistance is the total pairwise communication distance.
	SumDistance int
	// Connected reports whether all members can reach each other
	// through mutual relationships.
	Connected bool
}

// FormTeam assembles a team able to address every need in needs: the
// top supportK ranked experts of each need are its candidate
// supporters, and the team minimizes the communication diameter with
// the RarestFirst algorithm. Options apply to the per-need expert
// retrieval.
func (s *System) FormTeam(needs []string, supportK int, opts ...FindOption) (Team, error) {
	if len(needs) == 0 {
		return Team{}, fmt.Errorf("expertfind: no needs given")
	}
	if supportK <= 0 {
		supportK = 5
	}
	support := teams.Support{}
	for _, need := range needs {
		experts, err := s.Find(need, opts...)
		if err != nil {
			return Team{}, err
		}
		if len(experts) == 0 {
			return Team{}, fmt.Errorf("expertfind: no experts found for need %q", need)
		}
		var ids []socialgraph.UserID
		for i, e := range experts {
			if i >= supportK {
				break
			}
			ids = append(ids, s.names[e.Name])
		}
		support[teams.Skill(need)] = ids
	}

	former := teams.NewFormer(s.inner.DS.Graph, nil)
	team, err := former.RarestFirst(support)
	if err != nil {
		return Team{}, err
	}

	out := Team{
		ByNeed:      make(map[string]string, len(team.BySkill)),
		Diameter:    team.Diameter,
		SumDistance: team.SumDistance,
		Connected:   former.Connected(team),
	}
	for _, u := range team.Members {
		out.Members = append(out.Members, s.inner.DS.Graph.User(u).Name)
	}
	for sk, u := range team.BySkill {
		out.ByNeed[string(sk)] = s.inner.DS.Graph.User(u).Name
	}
	return out, nil
}

// EvidenceItem is one resource supporting an expert's selection.
type EvidenceItem struct {
	// Network and Kind locate the resource ("twitter"/"tweet",
	// "facebook"/"group-post", ...).
	Network string
	Kind    string
	// Distance is the social-graph distance between expert and
	// resource (0 profile, 1 direct, 2 indirect).
	Distance int
	// Contribution is how much this resource added to the expert's
	// score.
	Contribution float64
	// Snippet is the resource text, truncated for display.
	Snippet string
}

// Explanation justifies one expert's ranking for a need.
type Explanation struct {
	Expert string
	// Score is the total contribution of the listed evidence; with an
	// untruncated explanation it equals the expert's ranking score.
	Score    float64
	Evidence []EvidenceItem
}

// maxSnippetLen bounds explanation snippets.
const maxSnippetLen = 120

// Explain returns the top supporting resources behind an expert's
// score for a need — the transparency a question router needs before
// bothering a contact ("you're asked because you tweeted X").
func (s *System) Explain(need, expertName string, topN int, opts ...FindOption) (Explanation, error) {
	u, ok := s.names[expertName]
	if !ok {
		return Explanation{}, fmt.Errorf("expertfind: unknown candidate %q", expertName)
	}
	p, err := s.buildParams(opts)
	if err != nil {
		return Explanation{}, err
	}
	analyzed := s.inner.Finder.Pipeline().AnalyzeNeed(need)
	evidence := s.inner.Finder.Explain(analyzed, u, p, topN)

	out := Explanation{Expert: expertName}
	for _, ev := range evidence {
		r := s.inner.DS.Graph.Resource(ev.Resource)
		snippet := r.Text
		if len(snippet) > maxSnippetLen {
			snippet = snippet[:maxSnippetLen] + "..."
		}
		out.Score += ev.Contribution
		out.Evidence = append(out.Evidence, EvidenceItem{
			Network:      string(r.Network),
			Kind:         r.Kind.String(),
			Distance:     ev.Distance,
			Contribution: ev.Contribution,
			Snippet:      snippet,
		})
	}
	return out, nil
}

// Jury is a voting committee for a yes/no decision task (the Jury
// Selection Problem of Cao et al., cited by the paper's related work).
type Jury struct {
	// Members are the selected jurors, most reliable first.
	Members []string
	// ErrorRate is the probability that their majority vote errs.
	ErrorRate float64
}

// SelectJury picks the jury (of odd size at most maxSize) minimizing
// the majority-vote error for a decision task phrased as an expertise
// need. Individual error rates derive from the retrieved expertise
// scores: the strongest expert gets the lowest error rate, candidates
// without supporting resources are not considered.
func (s *System) SelectJury(need string, maxSize int, opts ...FindOption) (Jury, error) {
	experts, err := s.Find(need, opts...)
	if err != nil {
		return Jury{}, err
	}
	if len(experts) == 0 {
		return Jury{}, fmt.Errorf("expertfind: no experts found for need %q", need)
	}
	top := experts[0].Score
	cands := make([]jury.Juror, len(experts))
	for i, e := range experts {
		cands[i] = jury.Juror{
			ID:        int64(s.names[e.Name]),
			ErrorRate: jury.ErrorRateFromExpertise(e.Score / top),
		}
	}
	selected, err := jury.Select(cands, maxSize)
	if err != nil {
		return Jury{}, err
	}
	out := Jury{ErrorRate: selected.ErrorRate}
	for _, m := range selected.Members {
		out.Members = append(out.Members, s.inner.DS.Graph.User(socialgraph.UserID(m.ID)).Name)
	}
	return out, nil
}
