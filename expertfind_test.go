package expertfind

import (
	"strings"
	"sync"
	"testing"
)

var (
	sysOnce sync.Once
	sys     *System
)

// system returns a reduced-scale system shared across facade tests.
func system(t testing.TB) *System {
	t.Helper()
	sysOnce.Do(func() { sys = NewSystem(Config{Seed: 1, Scale: 0.2}) })
	return sys
}

func TestFindReturnsRankedExperts(t *testing.T) {
	s := system(t)
	experts, err := s.Find("why is copper a good conductor?")
	if err != nil {
		t.Fatal(err)
	}
	if len(experts) == 0 {
		t.Fatal("no experts found")
	}
	for i, e := range experts {
		if e.Score <= 0 || e.Name == "" || e.SupportingResources <= 0 {
			t.Errorf("expert %d malformed: %+v", i, e)
		}
		if i > 0 && experts[i-1].Score < e.Score {
			t.Errorf("ranking not descending at %d", i)
		}
	}
}

func TestFindOptionValidation(t *testing.T) {
	s := system(t)
	if _, err := s.Find("x", WithAlpha(1.5)); err == nil {
		t.Error("alpha 1.5 accepted")
	}
	if _, err := s.Find("x", WithMaxDistance(3)); err == nil {
		t.Error("distance 3 accepted")
	}
	if _, err := s.Find("x", WithNetworks("myspace")); err == nil {
		t.Error("unknown network accepted")
	}
}

func TestFindOptionsChangeResults(t *testing.T) {
	s := system(t)
	need := "can you list some famous european football teams?"
	full, err := s.Find(need)
	if err != nil {
		t.Fatal(err)
	}
	profOnly, err := s.Find(need, WithMaxDistance(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(profOnly) >= len(full) {
		t.Errorf("distance 0 found %d experts, full %d", len(profOnly), len(full))
	}
	liOnly, err := s.Find(need, WithNetworks(LinkedIn))
	if err != nil {
		t.Fatal(err)
	}
	if len(liOnly) >= len(full) {
		t.Errorf("linkedin-only found %d experts, full %d", len(liOnly), len(full))
	}
}

func TestBestNetwork(t *testing.T) {
	s := system(t)
	best, rankings, err := s.BestNetwork("which php function returns the length of a string?")
	if err != nil {
		t.Fatal(err)
	}
	if best == "" {
		t.Fatal("no best network")
	}
	if len(rankings) != 3 {
		t.Fatalf("rankings for %d networks", len(rankings))
	}
	if len(rankings[best]) == 0 {
		t.Error("best network has empty ranking")
	}
}

func TestQueriesAndDomains(t *testing.T) {
	s := system(t)
	qs := s.Queries()
	if len(qs) != 30 {
		t.Fatalf("queries = %d", len(qs))
	}
	doms := map[string]bool{}
	for _, d := range Domains() {
		doms[d] = true
	}
	for _, q := range qs {
		if !doms[q.Domain] {
			t.Errorf("query %d has unknown domain %q", q.ID, q.Domain)
		}
	}
	if len(Domains()) != 7 {
		t.Errorf("domains = %v", Domains())
	}
}

func TestGroundTruthAccessors(t *testing.T) {
	s := system(t)
	names := s.Candidates()
	if len(names) != 40 {
		t.Fatalf("candidates = %d", len(names))
	}
	experts, err := s.Experts("sport")
	if err != nil {
		t.Fatal(err)
	}
	if len(experts) == 0 {
		t.Fatal("no sport experts")
	}
	ok, err := s.IsExpert(experts[0], "sport")
	if err != nil || !ok {
		t.Errorf("IsExpert(%s, sport) = %v, %v", experts[0], ok, err)
	}
	if _, err := s.IsExpert("nobody", "sport"); err == nil {
		t.Error("unknown candidate accepted")
	}
	if _, err := s.Experts("cooking"); err == nil {
		t.Error("unknown domain accepted")
	}
	if _, err := s.IsExpert(experts[0], "cooking"); err == nil {
		t.Error("unknown domain accepted by IsExpert")
	}
}

func TestStats(t *testing.T) {
	s := system(t)
	st := s.Stats()
	if st.Candidates != 40 || st.Resources == 0 || st.Indexed == 0 || st.Indexed > st.Resources {
		t.Errorf("stats = %+v", st)
	}
	if st.WebPages == 0 || st.Users < st.Candidates {
		t.Errorf("stats = %+v", st)
	}
}

func TestNetworksList(t *testing.T) {
	nets := Networks()
	if len(nets) != 3 {
		t.Fatalf("networks = %v", nets)
	}
	joined := ""
	for _, n := range nets {
		joined += string(n) + " "
	}
	for _, want := range []string{"facebook", "twitter", "linkedin"} {
		if !strings.Contains(joined, want) {
			t.Errorf("networks missing %s: %v", want, nets)
		}
	}
}

func TestWithFriendsAndWeights(t *testing.T) {
	s := system(t)
	need := "who is the best at freestyle swimming after michael phelps?"
	if _, err := s.Find(need, WithFriends(), WithNetworks(Twitter)); err != nil {
		t.Fatal(err)
	}
	uniform, err := s.Find(need, WithDistanceWeights(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	def, err := s.Find(need)
	if err != nil {
		t.Fatal(err)
	}
	if len(uniform) == 0 || len(def) == 0 {
		t.Fatal("empty rankings")
	}
	// Same retrieval set, possibly different ordering/scores.
	if len(uniform) != len(def) {
		t.Errorf("weights changed retrieval set size: %d vs %d", len(uniform), len(def))
	}
}

func TestWithWindowExtremes(t *testing.T) {
	s := system(t)
	need := "can you list some famous songs of michael jackson?"
	one, err := s.Find(need, WithWindow(1))
	if err != nil {
		t.Fatal(err)
	}
	all, err := s.Find(need, WithWindow(0)) // no truncation
	if err != nil {
		t.Fatal(err)
	}
	if len(one) > len(all) {
		t.Errorf("window 1 found more experts (%d) than unbounded (%d)", len(one), len(all))
	}
}

func TestSaveAndReloadCorpus(t *testing.T) {
	s := system(t)
	path := t.TempDir() + "/corpus.json.gz"
	if err := s.SaveCorpus(path); err != nil {
		t.Fatal(err)
	}
	reloaded, err := NewSystemFromCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	// The reloaded system must answer queries identically.
	need := "why is copper a good conductor?"
	a, err := s.Find(need)
	if err != nil {
		t.Fatal(err)
	}
	b, err := reloaded.Find(need)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("rankings differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Errorf("rank %d: %s vs %s", i, a[i].Name, b[i].Name)
		}
	}
	if _, err := NewSystemFromCorpus(t.TempDir() + "/missing.json"); err == nil {
		t.Error("missing corpus accepted")
	}
}

func TestFormTeam(t *testing.T) {
	s := system(t)
	needs := []string{
		"which php function returns the length of a string?",
		"can you list some famous songs of michael jackson?",
	}
	team, err := s.FormTeam(needs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(team.Members) == 0 || len(team.Members) > len(needs) {
		t.Errorf("members = %v", team.Members)
	}
	for _, need := range needs {
		if team.ByNeed[need] == "" {
			t.Errorf("need %q uncovered", need)
		}
	}
	if _, err := s.FormTeam(nil, 3); err == nil {
		t.Error("empty needs accepted")
	}
	if _, err := s.FormTeam([]string{"zzz qqq xxx"}, 3); err == nil {
		t.Error("unanswerable need accepted")
	}
}

func TestSelectJury(t *testing.T) {
	s := system(t)
	j, err := s.SelectJury("why is copper a good conductor?", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Members) == 0 || len(j.Members)%2 != 1 {
		t.Errorf("jury = %v", j.Members)
	}
	if j.ErrorRate < 0 || j.ErrorRate >= 0.5 {
		t.Errorf("error rate = %v, want < 0.5 (the jury leads with an expert)", j.ErrorRate)
	}
	if _, err := s.SelectJury("zzz qqq xxx", 5); err == nil {
		t.Error("unanswerable need accepted")
	}
}

func TestIndexPersistenceFastPath(t *testing.T) {
	s := system(t)
	dir := t.TempDir()
	corpusPath := dir + "/c.json.gz"
	indexPath := dir + "/ix.bin"
	if err := s.SaveCorpus(corpusPath); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveIndex(indexPath); err != nil {
		t.Fatal(err)
	}
	fast, err := NewSystemFromCorpusAndIndex(corpusPath, indexPath)
	if err != nil {
		t.Fatal(err)
	}
	need := "can you list some famous european football teams?"
	a, err := s.Find(need)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fast.Find(need)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("rankings differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Errorf("rank %d: %s vs %s", i, a[i].Name, b[i].Name)
		}
	}
	if _, err := NewSystemFromCorpusAndIndex(corpusPath, dir+"/missing.bin"); err == nil {
		t.Error("missing index accepted")
	}
	if _, err := NewSystemFromCorpusAndIndex(corpusPath, corpusPath); err == nil {
		t.Error("non-index file accepted as index")
	}
}

func TestExplainFacade(t *testing.T) {
	s := system(t)
	need := "why is copper a good conductor?"
	experts, err := s.Find(need)
	if err != nil || len(experts) == 0 {
		t.Fatalf("find: %v (%d experts)", err, len(experts))
	}
	top := experts[0]

	expl, err := s.Explain(need, top.Name, 3)
	if err != nil {
		t.Fatal(err)
	}
	if expl.Expert != top.Name || len(expl.Evidence) == 0 || len(expl.Evidence) > 3 {
		t.Fatalf("explanation = %+v", expl)
	}
	for _, ev := range expl.Evidence {
		if ev.Snippet == "" || ev.Contribution <= 0 || ev.Network == "" {
			t.Errorf("bad evidence %+v", ev)
		}
	}
	// Untruncated explanation reconstructs the full score.
	full, err := s.Explain(need, top.Name, 0)
	if err != nil {
		t.Fatal(err)
	}
	if diff := full.Score - top.Score; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("full explanation score %v != expert score %v", full.Score, top.Score)
	}
	if _, err := s.Explain(need, "nobody", 3); err == nil {
		t.Error("unknown expert accepted")
	}
	if _, err := s.Explain(need, top.Name, 3, WithAlpha(9)); err == nil {
		t.Error("bad option accepted")
	}
}
