// Package expertfind finds the right crowd: it ranks the members of a
// social group by their expertise with respect to a natural-language
// expertise need, using the behavioral traces they leave on social
// networks — profiles, posts, tweets, likes, group memberships and
// follow relationships.
//
// It is a complete implementation of Bozzon, Brambilla, Ceri,
// Silvestri and Vesci, "Choosing the Right Crowd: Expert Finding in
// Social Networks", EDBT 2013: resources related to each candidate
// are collected from the social graph up to distance 2, analyzed
// through an IR pipeline (URL content extraction, language
// identification, text processing, entity recognition and
// disambiguation), matched against the need with a vector-space model
// combining term and entity evidence, and aggregated into per-expert
// scores weighted by graph distance.
//
// The simplest entry point builds a System over a synthetic,
// seeded corpus that mirrors the paper's evaluation dataset:
//
//	sys := expertfind.NewSystem(expertfind.Config{Seed: 1})
//	experts, err := sys.Find("why is copper a good conductor?")
//
// Queries can be restricted per platform, distance, window size or
// matching weights through functional options, and the paper's second
// question — which is the best social platform to contact the experts
// on? — is answered by BestNetwork.
package expertfind

import (
	"context"
	"fmt"
	"os"
	"sort"

	"expertfind/internal/core"
	"expertfind/internal/corpusio"
	"expertfind/internal/dataset"
	"expertfind/internal/experiments"
	"expertfind/internal/index"
	"expertfind/internal/ingest"
	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
)

// Network identifies a social platform.
type Network string

// The supported social networks.
const (
	Facebook Network = Network(socialgraph.Facebook)
	Twitter  Network = Network(socialgraph.Twitter)
	LinkedIn Network = Network(socialgraph.LinkedIn)
)

// Networks lists the supported platforms.
func Networks() []Network { return []Network{Facebook, Twitter, LinkedIn} }

// Domains lists the expertise domains of the built-in knowledge base
// and evaluation dataset.
func Domains() []string {
	out := make([]string, len(kb.Domains))
	for i, d := range kb.Domains {
		out[i] = string(d)
	}
	return out
}

// Config parameterizes the synthetic corpus behind a System.
type Config struct {
	// Seed drives generation; equal seeds build identical systems.
	// Zero selects seed 1.
	Seed int64
	// Candidates is the expert-candidate pool size (default 40).
	Candidates int
	// Scale multiplies resource volumes (default 1.0 ≈ 20k resources).
	Scale float64
	// IndexShards is the number of document-hash shards the resource
	// index is split into; shards are scored concurrently per query.
	// 0 selects GOMAXPROCS, 1 forces a monolithic index. Rankings are
	// identical for any value.
	IndexShards int
}

// Expert is one ranked expert candidate.
type Expert struct {
	// Name is the candidate's handle.
	Name string
	// Score is the expertise score of Eq. 3; higher is better.
	Score float64
	// SupportingResources is the number of relevant resources that
	// contributed to the score.
	SupportingResources int
}

// Query is one expertise need of the evaluation set.
type Query struct {
	ID     int
	Text   string
	Domain string
}

// Stats summarizes the corpus behind a System.
type Stats struct {
	Candidates  int
	Resources   int // generated resources, all languages
	Indexed     int // English resources surviving the filter
	Users       int // all users, externals included
	WebPages    int // synthetic linked pages
	IndexShards int // document-hash shards scoring in parallel
}

// System is a ready-to-query expert finding system over a generated
// social corpus. Create one with NewSystem; it is safe for concurrent
// queries.
type System struct {
	inner *experiments.System
	names map[string]socialgraph.UserID
}

// NewSystem generates the synthetic corpus for cfg and indexes it
// through the full analysis pipeline. Building a full-scale system
// takes a few seconds; reuse it across queries.
func NewSystem(cfg Config) *System {
	return wrapSystem(experiments.BuildSystem(datasetConfig(cfg)))
}

// datasetConfig maps the public Config onto the generator's.
func datasetConfig(cfg Config) dataset.Config {
	return dataset.Config{
		Seed:          cfg.Seed,
		NumCandidates: cfg.Candidates,
		Scale:         cfg.Scale,
		IndexShards:   cfg.IndexShards,
	}
}

// NewSystemFromCorpus loads a corpus snapshot previously saved with
// SaveCorpus (or `datagen -save`) and indexes it, with the shard
// count the snapshot was generated with (0 = GOMAXPROCS).
func NewSystemFromCorpus(path string) (*System, error) {
	return NewSystemFromCorpusShards(path, 0)
}

// NewSystemFromCorpusShards is NewSystemFromCorpus with an explicit
// index shard count; 0 keeps the snapshot's configured value.
func NewSystemFromCorpusShards(path string, shards int) (*System, error) {
	ds, err := corpusio.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if shards != 0 {
		ds.Config.IndexShards = shards
	}
	return wrapSystem(experiments.BuildSystemFromDataset(ds)), nil
}

// NewSystemFromCorpusShard loads a corpus snapshot as one shard of a
// scatter-gather topology: the system carries the full social graph
// but analyzes and indexes only the documents that the stable
// splitmix64 route (index.ShardRoute) assigns to shard shardID of
// shardCount. Serve it with `serve -shard-id/-shard-count` behind a
// coordinator; it answers the shard-scoped endpoints, not meaningful
// standalone /v1/find queries (its index is a slice of the corpus).
func NewSystemFromCorpusShard(path string, indexShards, shardID, shardCount int) (*System, error) {
	if shardCount < 1 || shardID < 0 || shardID >= shardCount {
		return nil, fmt.Errorf("expertfind: shard %d/%d outside topology", shardID, shardCount)
	}
	ds, err := corpusio.LoadFile(path)
	if err != nil {
		return nil, err
	}
	if indexShards != 0 {
		ds.Config.IndexShards = indexShards
	}
	return wrapSystem(experiments.BuildSystemFromDatasetShard(ds, shardID, shardCount)), nil
}

// NewSystemShard is NewSystem restricted to one scatter-gather shard
// slice (see NewSystemFromCorpusShard); the synthetic corpus is still
// generated in full so every shard agrees on the graph and ground
// truth, but analysis and indexing cover only the slice.
func NewSystemShard(cfg Config, shardID, shardCount int) (*System, error) {
	if shardCount < 1 || shardID < 0 || shardID >= shardCount {
		return nil, fmt.Errorf("expertfind: shard %d/%d outside topology", shardID, shardCount)
	}
	ds := datasetConfig(cfg)
	return wrapSystem(experiments.BuildSystemFromDatasetShard(dataset.Generate(ds), shardID, shardCount)), nil
}

// NewSystemFromCorpusAndIndex loads a corpus snapshot together with a
// pre-built index segment (saved with SaveIndex), skipping the
// analysis pass entirely — the fast path for serving a large corpus.
// The segment is re-split into the snapshot's configured shard count.
func NewSystemFromCorpusAndIndex(corpusPath, indexPath string) (*System, error) {
	ds, err := corpusio.LoadFile(corpusPath)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(indexPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ix, err := index.ReadIndex(f)
	if err != nil {
		return nil, err
	}
	return wrapSystem(experiments.BuildSystemWithIndex(ds, ix)), nil
}

// StreamOptions configures NewSystemFromStream's segment store.
type StreamOptions struct {
	// FlushDocs is the memtable size that triggers sealing a segment
	// to disk during a cold build (0 selects the store default).
	FlushDocs int
	// MaxSegments bounds the sealed-segment count before maintenance
	// compacts (0 selects the store default).
	MaxSegments int
	// ForceStream disables mmap in favor of positioned reads.
	ForceStream bool
	// KeepTexts retains bulk resource texts in memory; by default they
	// are dropped after indexing so a million-user corpus serves in a
	// bounded-memory envelope.
	KeepTexts bool
}

// NewSystemFromStream loads a stream corpus (written by `datagen
// -stream`) and serves it from the disk-backed segment store rooted
// at segmentDir. A store that already holds documents — e.g. one
// built by `datagen -stream -segment-dir` — is served directly,
// skipping analysis; an empty store is populated chunk by chunk with
// segments sealed to disk as the memtable fills, so building a
// million-user corpus stays within a bounded-memory envelope.
// Rankings are bit-identical to an in-memory build of the same
// corpus.
func NewSystemFromStream(corpusPath, segmentDir string, opts StreamOptions) (*System, error) {
	inner, err := experiments.BuildSystemFromStream(corpusPath, segmentDir, experiments.StreamBuildOptions{
		FlushDocs:   opts.FlushDocs,
		MaxSegments: opts.MaxSegments,
		ForceStream: opts.ForceStream,
		KeepTexts:   opts.KeepTexts,
	})
	if err != nil {
		return nil, err
	}
	return wrapSystem(inner), nil
}

// SegmentStore returns the system's disk-backed segment store, or nil
// when the system serves from an in-memory index. The serving layer
// uses it to run background maintenance and expose store status.
func (s *System) SegmentStore() *index.Store {
	st, _ := s.inner.Finder.Index().(*index.Store)
	return st
}

// SaveIndex writes the system's resource index as a binary segment
// that NewSystemFromCorpusAndIndex can reload.
func (s *System) SaveIndex(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	_, err = s.inner.Finder.Index().WriteTo(f)
	return err
}

// SaveCorpus writes the system's corpus (graph, pages, queries,
// ground truth) to path; a ".gz" suffix selects compression. The
// snapshot can be reloaded with NewSystemFromCorpus.
func (s *System) SaveCorpus(path string) error {
	return corpusio.SaveFile(s.inner.DS, path)
}

func wrapSystem(inner *experiments.System) *System {
	s := &System{inner: inner, names: make(map[string]socialgraph.UserID)}
	for _, u := range inner.DS.Candidates {
		s.names[inner.DS.Graph.User(u).Name] = u
	}
	return s
}

// findConfig collects the functional options of Find.
type findConfig struct {
	params core.Params
	err    error
}

// FindOption customizes a Find call.
type FindOption func(*findConfig)

// WithAlpha sets the Eq. 1 balance between keyword matching (1.0) and
// entity matching (0.0). The default is the paper's 0.6.
func WithAlpha(alpha float64) FindOption {
	return func(c *findConfig) {
		if alpha < 0 || alpha > 1 {
			c.err = fmt.Errorf("expertfind: alpha %v outside [0,1]", alpha)
			return
		}
		c.params.Alpha = alpha
		c.params.AlphaSet = true
	}
}

// WithWindow sets the number of top-matching resources considered for
// ranking (default 100); n <= 0 disables truncation.
func WithWindow(n int) FindOption {
	return func(c *findConfig) {
		if n <= 0 {
			n = -1
		}
		c.params.WindowSize = n
	}
}

// WithTopK bounds resource matching to the k best-ranked reachable
// resources, enabling the index's MaxScore early-termination pruning.
// The k resources kept are byte-identical to the first k of the
// exhaustive ranking, so results match the unbounded query whenever k
// covers the effective window (see WithWindow). k <= 0 (the default)
// disables the bound.
func WithTopK(k int) FindOption {
	return func(c *findConfig) {
		if k < 0 {
			k = 0
		}
		c.params.TopK = k
	}
}

// WithMaxDistance bounds the social-graph exploration: 0 profiles
// only, 1 direct resources, 2 (default) indirect resources too.
func WithMaxDistance(d int) FindOption {
	return func(c *findConfig) {
		if d < 0 || d > 2 {
			c.err = fmt.Errorf("expertfind: distance %d outside [0,2]", d)
			return
		}
		c.params.Traversal.MaxDistance = d
	}
}

// WithNetworks restricts evidence to the given platforms.
func WithNetworks(nets ...Network) FindOption {
	return func(c *findConfig) {
		var out []socialgraph.Network
		for _, n := range nets {
			switch n {
			case Facebook, Twitter, LinkedIn:
				out = append(out, socialgraph.Network(n))
			default:
				c.err = fmt.Errorf("expertfind: unknown network %q", n)
				return
			}
		}
		c.params.Traversal.Networks = out
	}
}

// WithFriends includes the resources of friend users (bidirectional
// relationships) in the exploration. The paper found this brings no
// significant benefit (§3.3.3).
func WithFriends() FindOption {
	return func(c *findConfig) { c.params.Traversal.IncludeFriends = true }
}

// WithDistanceWeights overrides the per-distance resource weights wr
// (defaults 1.0, 0.75, 0.5).
func WithDistanceWeights(d0, d1, d2 float64) FindOption {
	return func(c *findConfig) { c.params.DistanceWeights = [3]float64{d0, d1, d2} }
}

func (s *System) buildParams(opts []FindOption) (core.Params, error) {
	return ResolveParams(opts...)
}

// Find ranks the candidate experts for an expertise need, best first.
// Only candidates with positive expertise score are returned.
func (s *System) Find(need string, opts ...FindOption) ([]Expert, error) {
	return s.FindContext(context.Background(), need, opts...)
}

// FindContext is Find with a context. When ctx carries a telemetry
// trace (internal/telemetry), the query's pipeline stages are
// recorded as spans on it — the serving layer uses this to expose
// per-request traces at /debug/traces.
func (s *System) FindContext(ctx context.Context, need string, opts ...FindOption) ([]Expert, error) {
	out, _, err := s.FindCachedContext(ctx, need, opts...)
	return out, err
}

// FindCachedContext is FindContext plus the result-cache disposition:
// "hit", "miss" or "coalesced" when a cache is installed
// (SetResultCache), "" when the query bypassed caching. The serving
// layer reflects the disposition as the Cache-Status response header.
func (s *System) FindCachedContext(ctx context.Context, need string, opts ...FindOption) ([]Expert, string, error) {
	p, err := s.buildParams(opts)
	if err != nil {
		return nil, "", err
	}
	scores, status := s.inner.Finder.FindCachedContext(ctx, need, p)
	out := make([]Expert, len(scores))
	for i, es := range scores {
		out[i] = Expert{
			Name:                s.inner.DS.Graph.User(es.User).Name,
			Score:               es.Score,
			SupportingResources: es.Resources,
		}
	}
	return out, string(status), nil
}

// SetResultCache installs (or, with nil, removes) a ranked-result
// cache on the system's finder — normally a generation-pinned
// internal/rescache view; the serving layer attaches one per corpus
// install so swapped-out corpora can never serve stale rankings. The
// parameter is the internal hook interface: module-external users
// configure caching through cmd/serve's -cache-size/-cache-ttl flags
// instead of calling this directly.
func (s *System) SetResultCache(c core.ResultCache) {
	s.inner.Finder.SetResultCache(c)
}

// NewIngester wires a continuous-ingest driver (internal/ingest) onto
// this system: cfg needs only the remote surface (API) plus optional
// cache/retry/observability hooks — the installed graph, live index,
// analysis pipeline and this system's finder are filled in here. The
// driver's RunOnce re-fetches the remote corpus, diffs it against the
// installed one and applies the delta live; rankings after any round
// are bit-identical to a cold rebuild of the remote state. Both the
// in-memory sharded index and the disk-backed segment store accept
// deltas; any other index kind is an error. Scatter shard-slice
// systems must not be ingested into: a delta carries the whole
// corpus, not the slice (cmd/serve refuses the flag combination).
func (s *System) NewIngester(cfg ingest.Config) (*ingest.Ingester, error) {
	live, ok := s.inner.Finder.Index().(ingest.DeltaIndex)
	if !ok {
		return nil, fmt.Errorf("expertfind: index %T does not accept live deltas", s.inner.Finder.Index())
	}
	cfg.Graph = s.inner.DS.Graph
	cfg.Index = live
	cfg.Pipe = s.inner.Finder.Pipeline()
	cfg.Finders = append(cfg.Finders, s.inner.Finder)
	return ingest.New(cfg), nil
}

// ResolveParams converts Find options into the resolved internal
// query parameters. The scatter-gather serving layer uses it so the
// coordinator truncates and aggregates merged shard results under
// exactly the window/weight semantics the shards scored with.
func ResolveParams(opts ...FindOption) (core.Params, error) {
	cfg := findConfig{params: core.Params{
		Traversal: socialgraph.TraversalOptions{MaxDistance: 2},
	}}
	for _, o := range opts {
		o(&cfg)
		if cfg.err != nil {
			return core.Params{}, cfg.err
		}
	}
	return cfg.params, nil
}

// CoreFinder exposes the underlying expert finder for the shard-
// scoped serving endpoints (stats gathering and globally-weighted
// slice scoring); module-external users query through Find instead.
func (s *System) CoreFinder() *core.Finder { return s.inner.Finder }

// CandidateInfo pairs a candidate's stable user id with their handle.
type CandidateInfo struct {
	ID   int32  `json:"id"`
	Name string `json:"name"`
}

// CandidateInfos lists the candidate pool with ids and handles,
// sorted by id. The scatter coordinator bootstraps this mapping from
// a shard once and then renders merged rankings without a corpus.
func (s *System) CandidateInfos() []CandidateInfo {
	out := make([]CandidateInfo, 0, len(s.inner.DS.Candidates))
	for _, u := range s.inner.DS.Candidates {
		out = append(out, CandidateInfo{ID: int32(u), Name: s.inner.DS.Graph.User(u).Name})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// BestNetwork answers the paper's second question — which is the best
// social platform to contact the experts on? — by ranking the experts
// on each network separately and choosing the platform with the
// strongest top-3 expertise mass. The per-network rankings are also
// returned.
func (s *System) BestNetwork(need string, opts ...FindOption) (Network, map[Network][]Expert, error) {
	return s.BestNetworkContext(context.Background(), need, opts...)
}

// BestNetworkContext is BestNetwork with a context (see FindContext).
func (s *System) BestNetworkContext(ctx context.Context, need string, opts ...FindOption) (Network, map[Network][]Expert, error) {
	rankings := make(map[Network][]Expert, 3)
	best, bestScore := Network(""), -1.0
	for _, net := range Networks() {
		experts, err := s.FindContext(ctx, need, append(append([]FindOption{}, opts...), WithNetworks(net))...)
		if err != nil {
			return "", nil, err
		}
		rankings[net] = experts
		score := 0.0
		for i, e := range experts {
			if i >= 3 {
				break
			}
			score += e.Score
		}
		if score > bestScore {
			best, bestScore = net, score
		}
	}
	return best, rankings, nil
}

// Queries returns the 30 evaluation expertise needs.
func (s *System) Queries() []Query {
	out := make([]Query, 0, len(s.inner.DS.Queries))
	for _, q := range s.inner.DS.Queries {
		out = append(out, Query{ID: q.ID, Text: q.Text, Domain: string(q.Domain)})
	}
	return out
}

// Candidates returns the candidate handles, sorted.
func (s *System) Candidates() []string {
	out := make([]string, 0, len(s.names))
	for name := range s.names {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// IsExpert reports whether the ground truth marks the named candidate
// as an expert of the domain.
func (s *System) IsExpert(name, domain string) (bool, error) {
	u, ok := s.names[name]
	if !ok {
		return false, fmt.Errorf("expertfind: unknown candidate %q", name)
	}
	dom, err := parseDomain(domain)
	if err != nil {
		return false, err
	}
	return s.inner.DS.IsExpert(u, dom), nil
}

// Experts returns the ground-truth experts of a domain.
func (s *System) Experts(domain string) ([]string, error) {
	dom, err := parseDomain(domain)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, u := range s.inner.DS.Experts(dom) {
		out = append(out, s.inner.DS.Graph.User(u).Name)
	}
	return out, nil
}

// Stats returns corpus statistics.
func (s *System) Stats() Stats {
	ds := s.inner.DS
	shards := 1
	if ps, ok := s.inner.Finder.Index().(index.ParallelSearcher); ok {
		shards = ps.NumShards()
	}
	return Stats{
		Candidates:  len(ds.Candidates),
		Resources:   ds.Graph.NumResources(),
		Indexed:     s.inner.Kept,
		Users:       ds.Graph.NumUsers(),
		WebPages:    ds.Web.Len(),
		IndexShards: shards,
	}
}

func parseDomain(domain string) (kb.Domain, error) {
	for _, d := range kb.Domains {
		if string(d) == domain {
			return d, nil
		}
	}
	return "", fmt.Errorf("expertfind: unknown domain %q (known: %v)", domain, Domains())
}
