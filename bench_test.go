// Benchmarks regenerating every table and figure of the paper's
// evaluation (§3) over the full-scale synthetic corpus, plus ablation
// benches for the design choices called out in DESIGN.md. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the wall time of recomputing one full
// experiment; the shared corpus and index are built once per process
// and excluded from the timings.
package expertfind_test

import (
	"context"
	"testing"

	"expertfind"
	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/experiments"
	"expertfind/internal/socialgraph"
	"expertfind/internal/telemetry"
)

// BenchmarkFig5aDataset regenerates the corpus-distribution statistic
// of Fig. 5a (resources per network and distance).
func BenchmarkFig5aDataset(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig5a(s)
	}
}

// BenchmarkFig5bGroundTruth regenerates the expert/expertise
// distribution of Fig. 5b.
func BenchmarkFig5bGroundTruth(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig5b(s)
	}
}

// BenchmarkFig6WindowSweep regenerates the window-size sensitivity
// analysis of Fig. 6 (11 window fractions × 2 distances × 30 queries).
func BenchmarkFig6WindowSweep(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig6(s)
	}
}

// BenchmarkFig7AlphaSweep regenerates the α sensitivity analysis of
// Fig. 7 (11 α values × 3 distances × 30 queries).
func BenchmarkFig7AlphaSweep(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig7(s)
	}
}

// BenchmarkTable2Friends regenerates the Twitter friends comparison of
// Table 2.
func BenchmarkTable2Friends(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunTable2(s)
	}
}

// BenchmarkFig8FriendCurves regenerates the 11-point precision and
// DCG curves of Fig. 8.
func BenchmarkFig8FriendCurves(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig8(s)
	}
}

// BenchmarkTable3Networks regenerates the per-network, per-distance
// comparison of Table 3 (12 configurations × 30 queries).
func BenchmarkTable3Networks(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunTable3(s)
	}
}

// BenchmarkFig9DistanceCurves regenerates the per-distance curves of
// Fig. 9.
func BenchmarkFig9DistanceCurves(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig9(s)
	}
}

// BenchmarkTable4Domains regenerates the per-domain breakdown of
// Table 4 (7 domains × 3 distances × 4 sources).
func BenchmarkTable4Domains(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunTable4(s)
	}
}

// BenchmarkFig10UserF1 regenerates the per-candidate F1 analysis of
// Fig. 10.
func BenchmarkFig10UserF1(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig10(s)
	}
}

// BenchmarkFig11Delta regenerates the differential retrieved-expert
// analysis of Fig. 11.
func BenchmarkFig11Delta(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunFig11(s)
	}
}

// BenchmarkBaselineComparison regenerates the ranking-method
// comparison (random / Balog Model 1 / Balog Model 2 / social VSM).
func BenchmarkBaselineComparison(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunBaselineComparison(s)
	}
}

// BenchmarkSignificance regenerates the paired randomization tests of
// the headline claims.
func BenchmarkSignificance(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunSignificance(s)
	}
}

// BenchmarkCrawlRobustness regenerates the crawl-access sweep (the
// §3.7 privacy-limits analysis) on a reduced-scale corpus: each of
// the five access levels re-crawls and re-indexes the corpus.
func BenchmarkCrawlRobustness(b *testing.B) {
	s := experiments.BuildSystem(dataset.Config{Seed: 1, Scale: 0.1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunCrawlRobustness(s)
	}
}

// BenchmarkNetworkAgreement regenerates the cross-network Kendall-tau
// agreement analysis.
func BenchmarkNetworkAgreement(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.RunNetworkAgreement(s)
	}
}

// BenchmarkSingleQuery measures one end-to-end Find call under the
// default configuration — the latency a crowd-routing application
// would observe per question.
func BenchmarkSingleQuery(b *testing.B) {
	s := experiments.Shared()
	p := core.Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Finder.Find("why is copper a good conductor of electricity?", p)
	}
}

// BenchmarkFindInstrumented measures the same query as
// BenchmarkSingleQuery but under an active telemetry trace, the way
// the HTTP serving path runs it — the delta against
// BenchmarkSingleQuery is the full observability overhead (span
// bookkeeping plus stage histograms), which should be negligible
// next to the milliseconds of traversal and scoring.
func BenchmarkFindInstrumented(b *testing.B) {
	s := experiments.Shared()
	p := core.Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}
	tracer := telemetry.NewTracer(128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, tr := tracer.Start(context.Background(), "bench find", "")
		s.Finder.FindContext(ctx, "why is copper a good conductor of electricity?", p)
		tr.Finish()
	}
}

// --- Ablation benches (DESIGN.md §4) ---------------------------------
//
// Each ablation reports the quality impact of one design choice via
// b.ReportMetric (MAP under the changed configuration vs. the
// default), so `-bench Ablation` doubles as a quality regression
// harness.

// BenchmarkAblationEntityMatching compares pure keyword matching
// (α = 1) with the paper's mixed default (α = 0.6).
func BenchmarkAblationEntityMatching(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	var mixed, keywordOnly experiments.Metrics
	for i := 0; i < b.N; i++ {
		mixed = s.Evaluate(core.Params{
			Alpha: 0.6, WindowSize: 100,
			Traversal: socialgraph.TraversalOptions{MaxDistance: 2},
		})
		keywordOnly = s.Evaluate(core.Params{
			Alpha: 1.0, WindowSize: 100,
			Traversal: socialgraph.TraversalOptions{MaxDistance: 2},
		})
	}
	b.ReportMetric(mixed.MAP, "MAP-mixed")
	b.ReportMetric(keywordOnly.MAP, "MAP-keyword-only")
}

// BenchmarkAblationDistanceWeights compares the paper's linear wr in
// [0.5, 1] with uniform weights.
func BenchmarkAblationDistanceWeights(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	var linear, uniform experiments.Metrics
	for i := 0; i < b.N; i++ {
		linear = s.Evaluate(core.Params{
			WindowSize: 100,
			Traversal:  socialgraph.TraversalOptions{MaxDistance: 2},
		})
		uniform = s.Evaluate(core.Params{
			WindowSize:      100,
			DistanceWeights: [3]float64{1, 1, 1},
			Traversal:       socialgraph.TraversalOptions{MaxDistance: 2},
		})
	}
	b.ReportMetric(linear.MAP, "MAP-linear-wr")
	b.ReportMetric(uniform.MAP, "MAP-uniform-wr")
}

// BenchmarkAblationWindowTruncation compares the 100-resource window
// against using every matching resource.
func BenchmarkAblationWindowTruncation(b *testing.B) {
	s := experiments.Shared()
	b.ReportAllocs()
	b.ResetTimer()
	var window, all experiments.Metrics
	for i := 0; i < b.N; i++ {
		window = s.Evaluate(core.Params{
			WindowSize: 100,
			Traversal:  socialgraph.TraversalOptions{MaxDistance: 2},
		})
		all = s.Evaluate(core.Params{
			WindowSize: -1,
			Traversal:  socialgraph.TraversalOptions{MaxDistance: 2},
		})
	}
	b.ReportMetric(window.MAP, "MAP-window100")
	b.ReportMetric(all.MAP, "MAP-all-matches")
}

// BenchmarkAblationURLEnrichment rebuilds a reduced-scale system with
// and without URL content extraction and compares retrieval quality —
// the enrichment step is the expensive part of the analysis pipeline,
// so this bench exposes its full cost/benefit.
func BenchmarkAblationURLEnrichment(b *testing.B) {
	cfg := dataset.Config{Seed: 1, Scale: 0.25}
	p := core.Params{WindowSize: 100, Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}
	b.ReportAllocs()
	b.ResetTimer()
	var with, without experiments.Metrics
	for i := 0; i < b.N; i++ {
		with = experiments.BuildSystem(cfg).Evaluate(p)
		without = experiments.BuildSystemNoURL(cfg).Evaluate(p)
	}
	b.ReportMetric(with.MAP, "MAP-enriched")
	b.ReportMetric(without.MAP, "MAP-text-only")
}

// BenchmarkSystemBuild measures the one-off cost of generating and
// indexing a reduced-scale corpus end to end (generation, URL
// extraction, language identification, text processing, annotation,
// indexing).
func BenchmarkSystemBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		experiments.BuildSystem(dataset.Config{Seed: int64(i + 1), Scale: 0.1})
	}
}

// BenchmarkPublicFind measures the facade's end-to-end query path.
func BenchmarkPublicFind(b *testing.B) {
	sys := expertfind.NewSystem(expertfind.Config{Seed: 1, Scale: 0.1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Find("can you list some famous songs of michael jackson?"); err != nil {
			b.Fatal(err)
		}
	}
}
