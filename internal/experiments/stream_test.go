package experiments

import (
	"math"
	"path/filepath"
	"testing"

	"expertfind/internal/core"
	"expertfind/internal/corpusio"
	"expertfind/internal/dataset"
	"expertfind/internal/index"
)

// A system built from a stream corpus through the disk-backed segment
// store ranks bit-identically to an in-memory sharded build of the
// same corpus, cold-built or reopened from the sealed segments.
func TestBuildSystemFromStreamBitIdentical(t *testing.T) {
	dir := t.TempDir()
	corpus := filepath.Join(dir, "corpus.stream.json.gz")
	w, err := corpusio.CreateStream(corpus)
	if err != nil {
		t.Fatal(err)
	}
	cfg := dataset.StreamConfig{Config: dataset.Config{Seed: 6, Scale: 1.4}, ChunkDocs: 9000}
	if _, err := dataset.GenerateStream(cfg,
		func(d *dataset.Dataset) error { return w.WriteBase(d) },
		func(_ *dataset.Dataset, c *dataset.StreamChunk) error { return w.WriteChunk(c) }); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segDir := filepath.Join(dir, "segments")
	streamed, err := BuildSystemFromStream(corpus, segDir, StreamBuildOptions{FlushDocs: 8000, MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	store := streamed.Finder.Index().(*index.Store)
	defer store.Close()
	if st := store.Status(); st.Seals < 2 {
		t.Fatalf("cold build sealed %d segments, want ≥ 2 (FlushDocs=8000)", st.Seals)
	}

	// Reference: the same corpus loaded whole and indexed in memory.
	ds, err := corpusio.LoadStreamFile(corpus, corpusio.StreamLoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reference := BuildSystemFromDataset(ds)
	if streamed.Kept != reference.Kept {
		t.Fatalf("streamed kept %d docs, reference %d", streamed.Kept, reference.Kept)
	}

	assertSameRankings := func(label string, sys *System) {
		t.Helper()
		for _, q := range reference.DS.Queries[:8] {
			want := reference.Finder.Find(q.Text, core.Params{})
			got := sys.Finder.Find(q.Text, core.Params{})
			if len(got) != len(want) {
				t.Fatalf("%s: query %d: %d experts, want %d", label, q.ID, len(got), len(want))
			}
			for i := range got {
				if got[i].User != want[i].User ||
					math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
					t.Fatalf("%s: query %d rank %d: %+v, want %+v", label, q.ID, i, got[i], want[i])
				}
			}
		}
	}
	assertSameRankings("cold build", streamed)

	// Reopen path: the sealed store is served without re-analysis.
	store.Close()
	reopened, err := BuildSystemFromStream(corpus, segDir, StreamBuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Finder.Index().(*index.Store).Close()
	if reopened.Kept != reference.Kept {
		t.Fatalf("reopened kept %d docs, want %d", reopened.Kept, reference.Kept)
	}
	assertSameRankings("reopened store", reopened)
}
