package experiments

import (
	"fmt"
	"strings"

	"expertfind/internal/crawler"
)

// CrawlRow is one access level of the crawl-robustness sweep.
type CrawlRow struct {
	AccessProb float64
	Resources  int // resources in the crawled corpus
	Denied     int // users whose privacy settings blocked the crawl
	M          Metrics
}

// CrawlRobustness measures how retrieval quality degrades as the
// crawler's access to non-candidate users shrinks — a quantitative
// treatment of the paper's §3.7 remark that privacy policies limit
// third-party applications while platform owners see everything. The
// corpus is re-crawled at decreasing profile-access probabilities and
// the full pipeline re-run on each partial view (distance 2, window
// 100, α = 0.6).
type CrawlRobustness struct {
	Rows []CrawlRow
}

// crawlAccessLevels are the swept profile-access probabilities; 1.0
// is the platform-owner view, 0.006 the paper's measured Facebook
// friend accessibility.
var crawlAccessLevels = []float64{1.0, 0.5, 0.2, 0.05, 0.006}

// RunCrawlRobustness sweeps the access levels. It rebuilds the
// analysis index once per level, so it is the most expensive
// experiment (≈ one corpus build per level).
func RunCrawlRobustness(s *System) *CrawlRobustness {
	out := &CrawlRobustness{}
	for _, p := range crawlAccessLevels {
		crawled, stats := crawler.Crawl(s.DS.Graph, crawler.Policy{
			ProfileAccessProb: p,
			Seed:              17,
		})
		partial := BuildSystemFromDataset(s.DS.WithGraph(crawled))
		out.Rows = append(out.Rows, CrawlRow{
			AccessProb: p,
			Resources:  crawled.NumResources(),
			Denied:     stats.UsersDenied,
			M:          partial.Evaluate(networkParams(nil, 2)),
		})
	}
	return out
}

// String renders the sweep.
func (cr *CrawlRobustness) String() string {
	var b strings.Builder
	b.WriteString("Crawl robustness — retrieval quality vs profile-access probability (dist 2)\n")
	fmt.Fprintf(&b, "%-8s %10s %8s %8s %8s %8s %8s\n", "access", "resources", "denied", "MAP", "MRR", "NDCG", "NDCG@10")
	for _, r := range cr.Rows {
		fmt.Fprintf(&b, "%-8.3f %10d %8d %8.4f %8.4f %8.4f %8.4f\n",
			r.AccessProb, r.Resources, r.Denied, r.M.MAP, r.M.MRR, r.M.NDCG, r.M.NDCG10)
	}
	return b.String()
}
