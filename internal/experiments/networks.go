package experiments

import (
	"fmt"
	"strings"

	"expertfind/internal/core"
	"expertfind/internal/socialgraph"
)

// NetworkConfig identifies a source configuration of Table 3: all
// networks combined, or one network alone.
type NetworkConfig struct {
	Label    string
	Networks []socialgraph.Network // nil = all
}

// NetworkConfigs lists the four source configurations in the paper's
// order.
var NetworkConfigs = []NetworkConfig{
	{Label: "All", Networks: nil},
	{Label: "FB", Networks: []socialgraph.Network{socialgraph.Facebook}},
	{Label: "TW", Networks: []socialgraph.Network{socialgraph.Twitter}},
	{Label: "LI", Networks: []socialgraph.Network{socialgraph.LinkedIn}},
}

// Table3Row is one (source, distance) configuration.
type Table3Row struct {
	Source   string
	Distance int
	M        Metrics
}

// Table3 is the contribution of resource distance and of each social
// network (paper §3.4–3.5, Table 3): metrics for All/FB/TW/LI at
// distances 0, 1 and 2. The paper's findings: distance-0 (profiles
// only) falls below the random baseline; adding distances 1 and 2
// improves every metric; Twitter at distance 2 wins three metrics out
// of four; Facebook has the best MRR; LinkedIn is the weakest.
type Table3 struct {
	Random Metrics
	Rows   []Table3Row
}

func networkParams(nets []socialgraph.Network, dist int) core.Params {
	return core.Params{
		Alpha:      core.DefaultAlpha,
		WindowSize: core.DefaultWindowSize,
		Traversal:  socialgraph.TraversalOptions{MaxDistance: dist, Networks: nets},
	}
}

// RunTable3 evaluates all (source, distance) configurations.
func RunTable3(s *System) *Table3 {
	out := &Table3{Random: s.RandomBaseline()}
	for _, cfg := range NetworkConfigs {
		for dist := 0; dist <= 2; dist++ {
			out.Rows = append(out.Rows, Table3Row{
				Source:   cfg.Label,
				Distance: dist,
				M:        s.Evaluate(networkParams(cfg.Networks, dist)),
			})
		}
	}
	return out
}

// String renders Table 3.
func (t *Table3) String() string {
	var b strings.Builder
	b.WriteString("Table 3 — networks and distances (window 100, alpha 0.6)\n")
	fmt.Fprintf(&b, "%-6s %-5s %8s %8s %8s %8s\n", "SN", "dist", "MAP", "MRR", "NDCG", "NDCG@10")
	fmt.Fprintf(&b, "%-6s %-5s %8.4f %8.4f %8.4f %8.4f\n", "Random", "-", t.Random.MAP, t.Random.MRR, t.Random.NDCG, t.Random.NDCG10)
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-6s %-5d %8.4f %8.4f %8.4f %8.4f\n", r.Source, r.Distance, r.M.MAP, r.M.MRR, r.M.NDCG, r.M.NDCG10)
	}
	return b.String()
}

// Fig9 contains the all-network curves per distance (paper Fig. 9):
// 11-point interpolated precision and DCG for distances 0, 1 and 2
// over all social networks, plus the random reference.
type Fig9 struct {
	Curves []CurveSet
}

// RunFig9 computes the Fig. 9 curves.
func RunFig9(s *System) *Fig9 {
	out := &Fig9{}
	for dist := 0; dist <= 2; dist++ {
		rank := s.paramsRankFunc(networkParams(nil, dist))
		out.Curves = append(out.Curves, CurveSet{
			Label:    fmt.Sprintf("distance %d", dist),
			ElevenPt: s.elevenPointAvg(s.DS.Queries, rank),
			DCG:      s.dcgCurve(s.DS.Queries, dcgCurveMaxK, rank),
		})
	}
	out.Curves = append(out.Curves, CurveSet{
		Label:    "random",
		ElevenPt: s.elevenPointAvg(s.DS.Queries, s.randomRankFunc()),
		DCG:      s.dcgCurve(s.DS.Queries, dcgCurveMaxK, s.randomRankFunc()),
	})
	return out
}

// String renders the curve values.
func (f *Fig9) String() string {
	return renderCurves("Fig 9 — all networks, per-distance curves", f.Curves)
}
