// Package experiments reproduces every table and figure of the
// paper's experimental evaluation (§3) over the synthetic corpus:
//
//	Fig. 5a/5b  dataset distributions
//	Fig. 6      window-size sensitivity
//	Fig. 7      α sensitivity
//	Table 2 / Fig. 8   Twitter friend resources
//	Table 3 / Fig. 9   per-network, per-distance metrics and curves
//	Table 4     per-domain breakdown
//	Fig. 10     per-candidate F1 vs. available resources
//	Fig. 11     differential number of retrieved experts
//
// Each experiment is a function from a System (dataset + analyzed
// index + expert finder) to a result value that renders the paper's
// rows/series as text via its String method.
package experiments

import (
	"math/rand"
	"sync"

	"expertfind/internal/analysis"
	"expertfind/internal/core"
	"expertfind/internal/corpusio"
	"expertfind/internal/dataset"
	"expertfind/internal/index"
	"expertfind/internal/socialgraph"
)

// System bundles everything the experiments need: the generated
// dataset, the analyzed resource index and the expert finder.
type System struct {
	DS     *dataset.Dataset
	Finder *core.Finder
	// Kept is the number of resources that survived the language
	// filter and were indexed.
	Kept int

	needMu   sync.Mutex
	needByID map[int]analysis.Analyzed
}

// BuildSystem generates the dataset for cfg and indexes its corpus
// through the full analysis pipeline (URL enrichment and English-only
// filtering active, as in the paper).
func BuildSystem(cfg dataset.Config) *System {
	return BuildSystemWith(cfg, analysis.Options{})
}

// BuildSystemWith is BuildSystem with pipeline overrides, used by the
// ablation benchmarks (disabling stemming, stop words, ...). The
// dataset's synthetic Web is installed when opts.Web is nil; use
// BuildSystemNoURL to disable URL enrichment instead.
func BuildSystemWith(cfg dataset.Config, opts analysis.Options) *System {
	ds := dataset.Generate(cfg)
	if opts.Web == nil {
		opts.Web = ds.Web
	}
	return buildFromDataset(ds, opts)
}

// BuildSystemNoURL builds a system with URL content extraction
// disabled (the enrichment ablation).
func BuildSystemNoURL(cfg dataset.Config) *System {
	ds := dataset.Generate(cfg)
	return buildFromDataset(ds, analysis.Options{Web: nil})
}

// BuildSystemFromDataset indexes an existing dataset (e.g. one loaded
// from a corpus snapshot) through the full analysis pipeline.
func BuildSystemFromDataset(ds *dataset.Dataset) *System {
	return buildFromDataset(ds, analysis.Options{Web: ds.Web})
}

// BuildSystemFromDatasetShard builds a scatter-gather shard system:
// the full dataset (graph, queries, ground truth) paired with an
// index over only the document slice that index.ShardRoute assigns to
// shard shardID of shardCount. Analysis is restricted to the slice
// too, so an N-shard topology splits the build cost N ways.
func BuildSystemFromDatasetShard(ds *dataset.Dataset, shardID, shardCount int) *System {
	pipe := analysis.New(analysis.Options{Web: ds.Web})
	ix, kept := corpusio.BuildShardSlice(ds.Graph, pipe, ds.Config.IndexShards, shardID, shardCount)
	return &System{
		DS:       ds,
		Finder:   core.NewFinder(ds.Graph, ix, pipe, ds.Candidates),
		Kept:     kept,
		needByID: make(map[int]analysis.Analyzed),
	}
}

// BuildSystemWithIndex assembles a system from a dataset and a
// pre-built index (loaded from a binary segment), skipping analysis.
// The segment is re-split into the dataset's configured shard count
// so scoring parallelizes like a freshly built system. The pipeline
// is still constructed for analyzing incoming needs.
func BuildSystemWithIndex(ds *dataset.Dataset, ix *index.Index) *System {
	pipe := analysis.New(analysis.Options{Web: ds.Web})
	sharded := index.NewShardedFromIndex(ix, ds.Config.IndexShards)
	return &System{
		DS:       ds,
		Finder:   core.NewFinder(ds.Graph, sharded, pipe, ds.Candidates),
		Kept:     sharded.NumDocs(),
		needByID: make(map[int]analysis.Analyzed),
	}
}

func buildFromDataset(ds *dataset.Dataset, opts analysis.Options) *System {
	pipe := analysis.New(opts)
	ix, kept := corpusio.BuildShardedIndex(ds.Graph, pipe, ds.Config.IndexShards)
	return &System{
		DS:       ds,
		Finder:   core.NewFinder(ds.Graph, ix, pipe, ds.Candidates),
		Kept:     kept,
		needByID: make(map[int]analysis.Analyzed),
	}
}

var (
	sharedOnce sync.Once
	sharedSys  *System
)

// Shared returns the default full-scale system (seed 1, 40
// candidates, scale 1), built once per process; all experiments and
// benchmarks share it.
func Shared() *System {
	sharedOnce.Do(func() { sharedSys = BuildSystem(dataset.Config{}) })
	return sharedSys
}

// need returns the analyzed form of a query, memoized.
func (s *System) need(q dataset.Query) analysis.Analyzed {
	s.needMu.Lock()
	defer s.needMu.Unlock()
	if a, ok := s.needByID[q.ID]; ok {
		return a
	}
	a := s.Finder.Pipeline().AnalyzeNeed(q.Text)
	s.needByID[q.ID] = a
	return a
}

// randomRanking returns one random selection of k candidates in
// random order, the paper's baseline unit (§3.1: 10 runs of 20
// randomly selected users per query).
func randomRanking(r *rand.Rand, candidates []socialgraph.UserID, k int) []socialgraph.UserID {
	perm := r.Perm(len(candidates))
	if k > len(perm) {
		k = len(perm)
	}
	out := make([]socialgraph.UserID, k)
	for i := 0; i < k; i++ {
		out[i] = candidates[perm[i]]
	}
	return out
}
