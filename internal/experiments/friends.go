package experiments

import (
	"fmt"
	"strings"

	"expertfind/internal/core"
	"expertfind/internal/socialgraph"
)

// Table2Row is one configuration of the Twitter friends experiment.
type Table2Row struct {
	Distance int
	Friends  bool
	M        Metrics
}

// Table2 is the relevance of friendship relations (paper §3.3.3,
// Table 2): results on Twitter with and without the resources of
// friend users (bidirectional follows) at distance 1 and 2, window
// 100, α = 0.6. The paper finds at most a ~1% improvement at distance
// 1 and a slight degradation at distance 2 — friends do not share the
// candidate's expertise.
type Table2 struct {
	Random Metrics
	Rows   []Table2Row
}

func twitterParams(dist int, friends bool) core.Params {
	return core.Params{
		Alpha:      core.DefaultAlpha,
		WindowSize: core.DefaultWindowSize,
		Traversal: socialgraph.TraversalOptions{
			MaxDistance:    dist,
			Networks:       []socialgraph.Network{socialgraph.Twitter},
			IncludeFriends: friends,
		},
	}
}

// RunTable2 evaluates the four Twitter configurations.
func RunTable2(s *System) *Table2 {
	out := &Table2{Random: s.RandomBaseline()}
	for _, dist := range []int{1, 2} {
		for _, friends := range []bool{false, true} {
			out.Rows = append(out.Rows, Table2Row{
				Distance: dist,
				Friends:  friends,
				M:        s.Evaluate(twitterParams(dist, friends)),
			})
		}
	}
	return out
}

// String renders Table 2.
func (t *Table2) String() string {
	var b strings.Builder
	b.WriteString("Table 2 — Twitter friend relationships (window 100, alpha 0.6)\n")
	fmt.Fprintf(&b, "%-6s %-7s %8s %8s %8s %8s\n", "dist", "friends", "MAP", "MRR", "NDCG", "NDCG@10")
	fmt.Fprintf(&b, "%-6s %-7s %8.4f %8.4f %8.4f %8.4f\n", "rand", "-", t.Random.MAP, t.Random.MRR, t.Random.NDCG, t.Random.NDCG10)
	for _, r := range t.Rows {
		yn := "N"
		if r.Friends {
			yn = "Y"
		}
		fmt.Fprintf(&b, "%-6d %-7s %8.4f %8.4f %8.4f %8.4f\n", r.Distance, yn, r.M.MAP, r.M.MRR, r.M.NDCG, r.M.NDCG10)
	}
	return b.String()
}

// CurveSet is one plotted series: an 11-point interpolated
// precision/recall curve and a DCG@k curve (k = 1..20, graded gains
// summed over queries).
type CurveSet struct {
	Label    string
	ElevenPt [11]float64
	DCG      []float64
}

// Fig8 contains the curves of the friends experiment (paper Fig. 8):
// 11-point precision and DCG for distance 1 and 2, with and without
// friend resources, plus the random reference.
type Fig8 struct {
	Curves []CurveSet
}

const dcgCurveMaxK = 20

// RunFig8 computes the Fig. 8 curves.
func RunFig8(s *System) *Fig8 {
	out := &Fig8{}
	for _, cfg := range []struct {
		label   string
		dist    int
		friends bool
	}{
		{"dist1 w/o friends", 1, false},
		{"dist1 w/ friends", 1, true},
		{"dist2 w/o friends", 2, false},
		{"dist2 w/ friends", 2, true},
	} {
		rank := s.paramsRankFunc(twitterParams(cfg.dist, cfg.friends))
		out.Curves = append(out.Curves, CurveSet{
			Label:    cfg.label,
			ElevenPt: s.elevenPointAvg(s.DS.Queries, rank),
			DCG:      s.dcgCurve(s.DS.Queries, dcgCurveMaxK, rank),
		})
	}
	rank := s.randomRankFunc()
	out.Curves = append(out.Curves, CurveSet{
		Label:    "random",
		ElevenPt: s.elevenPointAvg(s.DS.Queries, rank),
		DCG:      s.dcgCurve(s.DS.Queries, dcgCurveMaxK, s.randomRankFunc()),
	})
	return out
}

// String renders the curve values.
func (f *Fig8) String() string {
	return renderCurves("Fig 8 — Twitter friends curves", f.Curves)
}

// renderCurves prints a set of 11-point and DCG curves.
func renderCurves(title string, curves []CurveSet) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString("11-point interpolated precision (recall 0.0 .. 1.0):\n")
	for _, c := range curves {
		fmt.Fprintf(&b, "  %-18s", c.Label)
		for _, v := range c.ElevenPt {
			fmt.Fprintf(&b, " %5.3f", v)
		}
		b.WriteByte('\n')
	}
	b.WriteString("DCG at k = 5, 10, 15, 20 (graded gains, summed over queries):\n")
	for _, c := range curves {
		fmt.Fprintf(&b, "  %-18s", c.Label)
		for _, k := range []int{5, 10, 15, 20} {
			if k <= len(c.DCG) {
				fmt.Fprintf(&b, " %7.1f", c.DCG[k-1])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
