package experiments

import (
	"fmt"
	"strings"

	"expertfind/internal/analysis"
	"expertfind/internal/baseline"
	"expertfind/internal/metrics"
	"expertfind/internal/socialgraph"
)

// BaselineRow is one method of the comparison.
type BaselineRow struct {
	Method string
	M      Metrics
}

// BaselineComparison compares the paper's social vector-space
// approach against the classic language-modeling expert-retrieval
// methods it builds on (Balog's candidate Model 1 and document
// Model 2, §4 reference [3]) and the random baseline, all over the
// same corpus, candidate associations (distance ≤ 2, all networks)
// and distance weights, so the ranking method is the only variable.
type BaselineComparison struct {
	Rows []BaselineRow
}

// buildLM re-analyzes the reachable corpus into the language-model
// state. Documents are re-analyzed (rather than reusing the index)
// because the LM needs raw term frequencies per document.
func (s *System) buildLM() *baseline.LM {
	g := s.DS.Graph
	pipe := s.Finder.Pipeline()
	rcm := g.ResourceCandidateMap(s.DS.Candidates, socialgraph.TraversalOptions{MaxDistance: 2})
	docs := make(map[socialgraph.ResourceID]analysis.Analyzed, len(rcm))
	for rid := range rcm {
		r := g.Resource(rid)
		if a, ok := pipe.Analyze(r.Text, r.URLs); ok {
			docs[rid] = a
		}
	}
	return baseline.NewLM(docs, baseline.DistanceWeights(rcm))
}

// RunBaselineComparison evaluates every method on the 30 queries.
func RunBaselineComparison(s *System) *BaselineComparison {
	lm := s.buildLM()
	m1 := baseline.NewModel1(lm)
	m2 := baseline.NewModel2(lm)

	evalRanker := func(rank func(analysis.Analyzed, []socialgraph.UserID) []baseline.Scored) Metrics {
		var aps, rrs, nds, nd10s []float64
		for _, q := range s.DS.Queries {
			scored := rank(s.need(q), s.DS.Candidates)
			ranked := make([]socialgraph.UserID, len(scored))
			for i, sc := range scored {
				ranked[i] = sc.User
			}
			ap, rr, nd, nd10 := s.queryEval(q, ranked)
			aps = append(aps, ap)
			rrs = append(rrs, rr)
			nds = append(nds, nd)
			nd10s = append(nd10s, nd10)
		}
		return Metrics{MAP: metrics.Mean(aps), MRR: metrics.Mean(rrs), NDCG: metrics.Mean(nds), NDCG10: metrics.Mean(nd10s)}
	}

	return &BaselineComparison{Rows: []BaselineRow{
		{Method: "random", M: s.RandomBaseline()},
		{Method: "balog-model1", M: evalRanker(m1.Rank)},
		{Method: "balog-model2", M: evalRanker(m2.Rank)},
		{Method: "social-vsm (paper)", M: s.Evaluate(networkParams(nil, 2))},
	}}
}

// String renders the comparison.
func (b *BaselineComparison) String() string {
	var sb strings.Builder
	sb.WriteString("Baseline comparison — ranking methods over the same corpus and associations\n")
	fmt.Fprintf(&sb, "%-20s %8s %8s %8s %8s\n", "method", "MAP", "MRR", "NDCG", "NDCG@10")
	for _, r := range b.Rows {
		fmt.Fprintf(&sb, "%-20s %8.4f %8.4f %8.4f %8.4f\n", r.Method, r.M.MAP, r.M.MRR, r.M.NDCG, r.M.NDCG10)
	}
	return sb.String()
}
