package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"expertfind/internal/analysis"
	"expertfind/internal/core"
	"expertfind/internal/corpusio"
	"expertfind/internal/dataset"
	"expertfind/internal/index"
	"expertfind/internal/socialgraph"
)

// BuildSystemWithSearcher assembles a system around any pre-built
// searcher — typically a disk-backed segment store — skipping the
// analysis pass. kept is the number of indexed resources.
func BuildSystemWithSearcher(ds *dataset.Dataset, ix index.Searcher, kept int) *System {
	pipe := analysis.New(analysis.Options{Web: ds.Web})
	return &System{
		DS:       ds,
		Finder:   core.NewFinder(ds.Graph, ix, pipe, ds.Candidates),
		Kept:     kept,
		needByID: make(map[int]analysis.Analyzed),
	}
}

// StreamBuildOptions configures BuildSystemFromStream.
type StreamBuildOptions struct {
	// FlushDocs / MaxSegments / ForceStream configure the segment
	// store (zero selects index.StoreOptions defaults).
	FlushDocs   int
	MaxSegments int
	ForceStream bool
	// KeepTexts retains bulk resource texts in memory after indexing.
	// The default drops them chunk by chunk, bounding memory by the
	// base corpus plus one chunk regardless of corpus scale.
	KeepTexts bool
}

// BuildSystemFromStream loads a stream corpus (written by
// corpusio.StreamWriter / `datagen -stream`) and serves it from a
// disk-backed segment store rooted at segmentDir. When the store
// already holds documents it is served as-is — the fast path that
// skips analysis entirely; an empty store is populated by analyzing
// the corpus chunk by chunk, sealing segments as the memtable fills,
// so peak memory stays bounded at any scale. Rankings are
// bit-identical to a monolithic in-memory build of the same corpus.
func BuildSystemFromStream(corpusPath, segmentDir string, o StreamBuildOptions) (*System, error) {
	store, err := index.NewStore(segmentDir, index.StoreOptions{
		FlushDocs:   o.FlushDocs,
		MaxSegments: o.MaxSegments,
		ForceStream: o.ForceStream,
	})
	if err != nil {
		return nil, err
	}
	prebuilt := store.NumDocs() > 0

	var pipe *analysis.Pipeline
	var indexed socialgraph.ResourceID
	kept := 0
	// index [indexed, upto) through the analysis pipeline into the
	// store, fanning analysis out over GOMAXPROCS workers.
	process := func(d *dataset.Dataset, upto socialgraph.ResourceID) error {
		if pipe == nil {
			pipe = analysis.New(analysis.Options{Web: d.Web})
		}
		lo := indexed
		indexed = upto
		n := int(upto - lo)
		if n <= 0 {
			return nil
		}
		type result struct {
			a  analysis.Analyzed
			ok bool
		}
		results := make([]result, n)
		workers := runtime.GOMAXPROCS(0)
		if workers > n {
			workers = n
		}
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(n) {
						return
					}
					rid := lo + socialgraph.ResourceID(i)
					if d.Graph.ResourceDeleted(rid) {
						continue
					}
					r := d.Graph.Resource(rid)
					a, ok := pipe.Analyze(r.Text, r.URLs)
					results[i] = result{a: a, ok: ok}
				}
			}()
		}
		wg.Wait()
		docs := make([]index.Doc, 0, n)
		for i, res := range results {
			if res.ok {
				docs = append(docs, index.Doc{ID: lo + socialgraph.ResourceID(i), A: res.a})
			}
		}
		kept += len(docs)
		return store.AddBatch(docs)
	}

	opts := corpusio.StreamLoadOptions{DropTexts: prebuilt && !o.KeepTexts}
	if !prebuilt {
		opts.OnChunk = func(d *dataset.Dataset, c *dataset.StreamChunk) error {
			end := c.FirstResource + socialgraph.ResourceID(len(c.Resources))
			if err := process(d, end); err != nil {
				return err
			}
			if !o.KeepTexts {
				d.BlankChunkTexts(c)
			}
			return nil
		}
	}
	ds, err := corpusio.LoadStreamFile(corpusPath, opts)
	if err != nil {
		store.Close()
		return nil, err
	}
	if !prebuilt {
		// Base-only streams (or a trailing base section) still need
		// indexing; seal so the build is fully on disk.
		if err := process(ds, socialgraph.ResourceID(ds.Graph.NumResources())); err != nil {
			store.Close()
			return nil, err
		}
		if err := store.Seal(); err != nil {
			store.Close()
			return nil, err
		}
	} else {
		kept = store.NumDocs()
	}
	if store.NumDocs() == 0 {
		store.Close()
		return nil, fmt.Errorf("experiments: stream corpus %s produced an empty index", corpusPath)
	}
	return BuildSystemWithSearcher(ds, store, kept), nil
}
