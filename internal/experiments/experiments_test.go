package experiments

import (
	"strings"
	"sync"
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
)

var (
	testOnce sync.Once
	testSys  *System
)

// testSystem is a reduced-scale system shared across tests: large
// enough for the qualitative patterns, small enough to build fast.
func testSystem(t testing.TB) *System {
	t.Helper()
	testOnce.Do(func() {
		testSys = BuildSystem(dataset.Config{Seed: 1, Scale: 0.25})
	})
	return testSys
}

func TestBuildSystem(t *testing.T) {
	s := testSystem(t)
	if s.Kept == 0 || s.Kept > s.DS.Graph.NumResources() {
		t.Fatalf("kept=%d of %d", s.Kept, s.DS.Graph.NumResources())
	}
	if got := s.Finder.Index().NumDocs(); got != s.Kept {
		t.Errorf("index docs=%d kept=%d", got, s.Kept)
	}
}

func TestMetricsInRange(t *testing.T) {
	s := testSystem(t)
	check := func(name string, m Metrics) {
		t.Helper()
		for _, v := range []float64{m.MAP, m.MRR, m.NDCG, m.NDCG10} {
			if v < 0 || v > 1 {
				t.Errorf("%s out of range: %+v", name, m)
				return
			}
		}
	}
	check("random", s.RandomBaseline())
	check("d2", s.Evaluate(networkParams(nil, 2)))
	check("tw-d1", s.Evaluate(twitterParams(1, false)))
}

func TestRandomBaselineDeterministic(t *testing.T) {
	s := testSystem(t)
	if a, b := s.RandomBaseline(), s.RandomBaseline(); a != b {
		t.Errorf("random baseline not deterministic: %v vs %v", a, b)
	}
}

func TestShapeDistanceOrdering(t *testing.T) {
	s := testSystem(t)
	random := s.RandomBaseline()
	d0 := s.Evaluate(networkParams(nil, 0))
	d1 := s.Evaluate(networkParams(nil, 1))
	d2 := s.Evaluate(networkParams(nil, 2))

	// The paper's central finding (§3.4): profiles alone are worse
	// than random; adding social activity at distances 1 and 2
	// improves the metrics well above random.
	if d0.MAP >= random.MAP {
		t.Errorf("distance-0 MAP %.4f >= random %.4f", d0.MAP, random.MAP)
	}
	if !(d1.MAP > random.MAP && d2.MAP > random.MAP) {
		t.Errorf("behavioral MAP not above random: d1=%.4f d2=%.4f random=%.4f", d1.MAP, d2.MAP, random.MAP)
	}
	if d2.MAP <= d0.MAP || d2.NDCG <= d0.NDCG {
		t.Errorf("distance 2 does not dominate distance 0: %+v vs %+v", d2, d0)
	}
	if d1.MAP <= d0.MAP {
		t.Errorf("distance 1 MAP %.4f <= distance 0 %.4f", d1.MAP, d0.MAP)
	}
}

func TestShapeNetworkOrdering(t *testing.T) {
	s := testSystem(t)
	tw := s.Evaluate(networkParams([]socialgraph.Network{socialgraph.Twitter}, 2))
	li := s.Evaluate(networkParams([]socialgraph.Network{socialgraph.LinkedIn}, 2))
	// LinkedIn proved worse than the other social networks in all
	// cases (§3.5).
	if li.MAP >= tw.MAP {
		t.Errorf("linkedin MAP %.4f >= twitter %.4f", li.MAP, tw.MAP)
	}
}

func TestTable2FriendsNoBigGain(t *testing.T) {
	s := testSystem(t)
	t2 := RunTable2(s)
	byKey := map[[2]interface{}]Metrics{}
	for _, r := range t2.Rows {
		byKey[[2]interface{}{r.Distance, r.Friends}] = r.M
	}
	for _, dist := range []int{1, 2} {
		without := byKey[[2]interface{}{dist, false}]
		with := byKey[[2]interface{}{dist, true}]
		// Friends must not produce a significant improvement (§3.3.3):
		// allow at most a 15% relative MAP gain at this reduced scale.
		if with.MAP > without.MAP*1.15 {
			t.Errorf("dist %d: friends MAP %.4f >> without %.4f", dist, with.MAP, without.MAP)
		}
	}
	if !strings.Contains(t2.String(), "Table 2") {
		t.Error("Table2 render missing title")
	}
}

func TestFig5aCounts(t *testing.T) {
	s := testSystem(t)
	f := RunFig5a(s)
	if f.Candidates != 40 {
		t.Errorf("candidates = %d", f.Candidates)
	}
	for _, net := range socialgraph.Networks {
		c := f.Counts[net]
		if c[0] != 40 {
			t.Errorf("%s distance-0 = %d, want 40 profiles", net, c[0])
		}
	}
	out := f.String()
	for _, want := range []string{"facebook", "twitter", "linkedin", "dist2"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig5bGroundTruth(t *testing.T) {
	s := testSystem(t)
	f := RunFig5b(s)
	if len(f.Rows) != len(kb.Domains) {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	if f.AvgExpertsRow < 10 || f.AvgExpertsRow > 25 {
		t.Errorf("avg experts = %.1f", f.AvgExpertsRow)
	}
	if f.AvgExpertiseAll < 2.5 || f.AvgExpertiseAll > 4.5 {
		t.Errorf("avg expertise = %.2f", f.AvgExpertiseAll)
	}
}

func TestFig6WindowGrowth(t *testing.T) {
	s := testSystem(t)
	f := RunFig6(s)
	if len(f.Dist1) != len(fig6Fracs) || len(f.Dist2) != len(fig6Fracs) {
		t.Fatalf("points: %d/%d", len(f.Dist1), len(f.Dist2))
	}
	// Increasing the window increases MAP and NDCG (§3.3.1): compare
	// the smallest and largest window at distance 2.
	first, last := f.Dist2[0].M, f.Dist2[len(f.Dist2)-1].M
	if last.MAP <= first.MAP {
		t.Errorf("MAP did not grow with window: %.4f -> %.4f", first.MAP, last.MAP)
	}
	if last.NDCG <= first.NDCG {
		t.Errorf("NDCG did not grow with window: %.4f -> %.4f", first.NDCG, last.NDCG)
	}
	if !strings.Contains(f.String(), "100res") {
		t.Error("render missing 100-resource operating point")
	}
}

func TestFig7AlphaStability(t *testing.T) {
	s := testSystem(t)
	f := RunFig7(s)
	for dist := 0; dist <= 2; dist++ {
		if len(f.Dist[dist]) != 11 {
			t.Fatalf("dist %d has %d points", dist, len(f.Dist[dist]))
		}
	}
	// α = 0 at distance 0 collapses (profiles carry few entities);
	// mid-range α is far better (§3.3.2).
	d0 := f.Dist[0]
	alpha0 := d0[0].M.MAP
	alphaMid := d0[6].M.MAP // α = 0.6
	if alpha0 >= alphaMid {
		t.Errorf("distance-0 alpha=0 MAP %.4f >= alpha=0.6 MAP %.4f", alpha0, alphaMid)
	}
}

func TestFig8And9Curves(t *testing.T) {
	s := testSystem(t)
	f8 := RunFig8(s)
	if len(f8.Curves) != 5 {
		t.Fatalf("fig8 curves = %d", len(f8.Curves))
	}
	f9 := RunFig9(s)
	if len(f9.Curves) != 4 {
		t.Fatalf("fig9 curves = %d", len(f9.Curves))
	}
	for _, c := range append(f8.Curves, f9.Curves...) {
		// 11-point curves are non-increasing.
		for i := 1; i < len(c.ElevenPt); i++ {
			if c.ElevenPt[i] > c.ElevenPt[i-1]+1e-9 {
				t.Errorf("%s: 11-pt curve increases at %d", c.Label, i)
			}
		}
		// DCG curves are non-decreasing in k.
		for i := 1; i < len(c.DCG); i++ {
			if c.DCG[i] < c.DCG[i-1]-1e-9 {
				t.Errorf("%s: DCG decreases at k=%d", c.Label, i+1)
			}
		}
	}
	if !strings.Contains(f8.String(), "11-point") || !strings.Contains(f9.String(), "DCG") {
		t.Error("curve renders incomplete")
	}
}

func TestTable4Coverage(t *testing.T) {
	s := testSystem(t)
	t4 := RunTable4(s)
	if len(t4.Rows) != len(kb.Domains)*3 {
		t.Fatalf("rows = %d", len(t4.Rows))
	}
	cell, ok := t4.Cell(kb.Sport, 2, "TW")
	if !ok {
		t.Fatal("missing sport/2/TW cell")
	}
	if cell.MAP < 0 || cell.MAP > 1 {
		t.Errorf("cell MAP = %v", cell.MAP)
	}
	if _, ok := t4.Cell(kb.Sport, 2, "nope"); ok {
		t.Error("unknown source found")
	}
	if !strings.Contains(t4.String(), "computer-engineering") {
		t.Error("render missing domain")
	}
}

func TestFig10UserAnalysis(t *testing.T) {
	s := testSystem(t)
	f := RunFig10(s)
	if len(f.Rows) != 40 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	for _, r := range f.Rows {
		if r.F1 < 0 || r.F1 > 1 {
			t.Errorf("F1 %v out of range", r.F1)
		}
	}
	// The silent experts must be unreliable (paper: 8 candidates were
	// deemed completely unreliable): their mean F1 must fall far below
	// the expressive candidates' mean.
	var silentSum, loudSum float64
	var silentN, loudN int
	for _, r := range f.Rows {
		if s.DS.Expressiveness(r.User) < 0.15 {
			silentSum += r.F1
			silentN++
		} else {
			loudSum += r.F1
			loudN++
		}
	}
	if silentN == 0 || loudN == 0 {
		t.Fatalf("silent=%d loud=%d", silentN, loudN)
	}
	silentMean, loudMean := silentSum/float64(silentN), loudSum/float64(loudN)
	// At the reduced test scale the gap is noisier than at full scale
	// (where the ratio is ≈0.25), so assert it loosely here.
	if silentMean > 0.65*loudMean {
		t.Errorf("silent experts F1 %.3f not clearly below expressive %.3f", silentMean, loudMean)
	}
	// Estimation quality correlates with available resources.
	if f.Correlation <= 0 {
		t.Errorf("resource/F1 correlation = %.3f, want positive", f.Correlation)
	}
	if f.MeanF1 <= 0 || f.MedianF1 < 0 {
		t.Errorf("mean/median F1 = %v/%v", f.MeanF1, f.MedianF1)
	}
}

func TestFig11Deltas(t *testing.T) {
	s := testSystem(t)
	f := RunFig11(s)
	if len(f.Rows) != 30 {
		t.Fatalf("rows = %d", len(f.Rows))
	}
	// Profiles alone under-retrieve; distance 2 reaches many more
	// candidates (the correlation the paper highlights).
	if f.Avg[0] >= f.Avg[2] {
		t.Errorf("avg delta d0 %.1f >= d2 %.1f", f.Avg[0], f.Avg[2])
	}
	if f.Avg[0] >= 0 {
		t.Errorf("avg delta at distance 0 = %.1f, want negative (under-retrieval)", f.Avg[0])
	}
}

func TestSharedSingleton(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale shared system")
	}
	a, b := Shared(), Shared()
	if a != b {
		t.Error("Shared not a singleton")
	}
}

func TestBaselineComparison(t *testing.T) {
	s := testSystem(t)
	bc := RunBaselineComparison(s)
	if len(bc.Rows) != 4 {
		t.Fatalf("rows = %d", len(bc.Rows))
	}
	byMethod := map[string]Metrics{}
	for _, r := range bc.Rows {
		byMethod[r.Method] = r.M
	}
	random := byMethod["random"]
	vsm := byMethod["social-vsm (paper)"]
	m2 := byMethod["balog-model2"]
	// Every informed method must beat random on MAP; the language
	// models see the same evidence, so they should land in the same
	// region as the paper's method.
	if m2.MAP <= random.MAP {
		t.Errorf("model2 MAP %.4f <= random %.4f", m2.MAP, random.MAP)
	}
	if vsm.MAP <= random.MAP {
		t.Errorf("vsm MAP %.4f <= random %.4f", vsm.MAP, random.MAP)
	}
	if !strings.Contains(bc.String(), "balog-model1") {
		t.Error("render missing model1")
	}
}

func TestSignificance(t *testing.T) {
	s := testSystem(t)
	sg := RunSignificance(s)
	if len(sg.Rows) != 5 {
		t.Fatalf("rows = %d", len(sg.Rows))
	}
	byName := map[string]SignificanceRow{}
	for _, r := range sg.Rows {
		if r.PValue < 0 || r.PValue > 1 {
			t.Errorf("%s: p-value %v", r.Comparison, r.PValue)
		}
		byName[r.Comparison] = r
	}
	// The headline gaps must be statistically significant.
	if r := byName["distance2 vs random"]; r.PValue >= 0.05 || r.MAPDiff <= 0 {
		t.Errorf("distance2 vs random: Δ%.4f p=%.4f, want significant positive", r.MAPDiff, r.PValue)
	}
	if r := byName["distance1 vs distance0"]; r.PValue >= 0.05 || r.MAPDiff <= 0 {
		t.Errorf("distance1 vs distance0: Δ%.4f p=%.4f, want significant positive", r.MAPDiff, r.PValue)
	}
	// Friends must NOT be a significant improvement.
	if r := byName["tw-d2 friends vs no-friends"]; r.PValue < 0.05 && r.MAPDiff > 0 {
		t.Errorf("friends significantly helped (Δ%.4f p=%.4f), contradicting Table 2", r.MAPDiff, r.PValue)
	}
	if !strings.Contains(sg.String(), "p-value") {
		t.Error("render incomplete")
	}
}

func TestCrawlRobustness(t *testing.T) {
	s := testSystem(t)
	cr := RunCrawlRobustness(s)
	if len(cr.Rows) != len(crawlAccessLevels) {
		t.Fatalf("rows = %d", len(cr.Rows))
	}
	// Resources shrink monotonically with access, and the full-access
	// crawl must perform like the original system (same reach).
	for i := 1; i < len(cr.Rows); i++ {
		if cr.Rows[i].Resources > cr.Rows[i-1].Resources {
			t.Errorf("resources grew as access shrank: %+v", cr.Rows)
		}
	}
	full := cr.Rows[0]
	orig := s.Evaluate(networkParams(nil, 2))
	if full.Denied != 0 {
		t.Errorf("denied %d at full access", full.Denied)
	}
	if diff := full.M.MAP - orig.MAP; diff > 0.05 || diff < -0.05 {
		t.Errorf("full-access crawl MAP %.4f far from original %.4f", full.M.MAP, orig.MAP)
	}
	// The most restricted crawl must be clearly worse than full access.
	last := cr.Rows[len(cr.Rows)-1]
	if last.M.MAP >= full.M.MAP {
		t.Errorf("restricted crawl MAP %.4f >= full %.4f", last.M.MAP, full.M.MAP)
	}
	if !strings.Contains(cr.String(), "access") {
		t.Error("render incomplete")
	}
}

func TestFaultSweep(t *testing.T) {
	s := testSystem(t)
	sw := DefaultFaultSweep()
	sw.Rates = []float64{0, 0.3} // keep the test to two index rebuilds
	ft := RunFaultSweep(s, sw)
	if len(ft.Rows) != 2 {
		t.Fatalf("rows = %d", len(ft.Rows))
	}
	clean, noisy := ft.Rows[0], ft.Rows[1]
	if clean.Retries != 0 || clean.GaveUp != 0 || clean.ResourcesBare != clean.Resources {
		t.Errorf("faults injected at rate 0: %+v", clean)
	}
	if clean.Spearman < 0.95 {
		t.Errorf("fault-free crawl does not reproduce the ranking: ρ = %.4f", clean.Spearman)
	}
	if noisy.Retries == 0 {
		t.Errorf("no retries at 30%% failure rate: %+v", noisy)
	}
	if noisy.Resources < noisy.ResourcesBare {
		t.Errorf("hardened crawl recovered fewer resources than the bare one: %d < %d",
			noisy.Resources, noisy.ResourcesBare)
	}
	if noisy.Resources > clean.Resources {
		t.Errorf("faulted crawl exceeds the clean one: %d > %d", noisy.Resources, clean.Resources)
	}
	if noisy.Spearman < -1 || noisy.Spearman > 1 {
		t.Errorf("ρ out of range: %v", noisy.Spearman)
	}
	if !strings.Contains(ft.String(), "failure") {
		t.Error("render incomplete")
	}
}

func TestNetworkAgreement(t *testing.T) {
	s := testSystem(t)
	na := RunNetworkAgreement(s)
	if len(na.Rows) != 6 { // C(4,2) pairs
		t.Fatalf("rows = %d", len(na.Rows))
	}
	var allFB, fbTW float64
	for _, r := range na.Rows {
		if r.Tau < -1 || r.Tau > 1 {
			t.Errorf("%s/%s tau = %v", r.A, r.B, r.Tau)
		}
		if r.A == "All" && r.B == "FB" {
			allFB = r.Tau
		}
		if r.A == "FB" && r.B == "TW" {
			fbTW = r.Tau
		}
	}
	// The combined ranking agrees more with any single network than
	// two disjoint networks agree with each other.
	if allFB <= fbTW {
		t.Errorf("All/FB tau %.4f <= FB/TW tau %.4f", allFB, fbTW)
	}
	if !strings.Contains(na.String(), "tau") {
		t.Error("render incomplete")
	}
}

func TestCorrelation(t *testing.T) {
	s := testSystem(t)
	c := RunCorrelation(s)
	if len(c.Rows) != 3 {
		t.Fatalf("rows = %d", len(c.Rows))
	}
	for _, r := range c.Rows {
		if r.MatchesVsDelta < -1 || r.MatchesVsDelta > 1 || r.MatchesVsAP < -1 || r.MatchesVsAP > 1 {
			t.Errorf("correlation out of range: %+v", r)
		}
	}
	// Mean matching resources grow with distance.
	if !(c.Rows[0].MeanMatches < c.Rows[1].MeanMatches && c.Rows[1].MeanMatches < c.Rows[2].MeanMatches) {
		t.Errorf("mean matches not monotone: %+v", c.Rows)
	}
	if !strings.Contains(c.String(), "corr") {
		t.Error("render incomplete")
	}
}
