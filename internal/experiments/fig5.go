package experiments

import (
	"fmt"
	"strings"

	"expertfind/internal/kb"
	"expertfind/internal/metrics"
	"expertfind/internal/socialgraph"
)

// Fig5a is the distribution of resources and expert candidates among
// the social networks, per resource distance (paper Fig. 5a).
type Fig5a struct {
	Candidates int
	Counts     map[socialgraph.Network][3]int
	Indexed    int // resources surviving the language filter
	Total      int // all generated resources
}

// RunFig5a computes the corpus distribution.
func RunFig5a(s *System) *Fig5a {
	return &Fig5a{
		Candidates: len(s.DS.Candidates),
		Counts: s.DS.Graph.DistanceCounts(s.DS.Candidates,
			socialgraph.TraversalOptions{MaxDistance: 2}),
		Indexed: s.Kept,
		Total:   s.DS.Graph.NumResources(),
	}
}

// String renders the Fig. 5a distribution as a table.
func (f *Fig5a) String() string {
	var b strings.Builder
	if f.Indexed > 0 {
		fmt.Fprintf(&b, "Fig 5a — corpus distribution (%d expert candidates; %d resources generated, %d English and indexed)\n",
			f.Candidates, f.Total, f.Indexed)
	} else {
		fmt.Fprintf(&b, "Fig 5a — corpus distribution (%d expert candidates; %d resources generated)\n",
			f.Candidates, f.Total)
	}
	fmt.Fprintf(&b, "%-10s %10s %10s %10s %10s\n", "network", "dist0", "dist1", "dist2", "total")
	for _, net := range socialgraph.Networks {
		c := f.Counts[net]
		fmt.Fprintf(&b, "%-10s %10d %10d %10d %10d\n", net, c[0], c[1], c[2], c[0]+c[1]+c[2])
	}
	return b.String()
}

// Fig5bRow is one domain of Fig. 5b.
type Fig5bRow struct {
	Domain       kb.Domain
	Experts      int
	AvgExpertise float64 // mean Likert level over all candidates
}

// Fig5b is the distribution of experts and expertise in the domains
// (paper Fig. 5b: on average 17 experts per domain, mean expertise
// 3.57).
type Fig5b struct {
	Rows            []Fig5bRow
	AvgExpertsRow   float64
	AvgExpertiseAll float64
}

// RunFig5b computes the ground-truth distribution.
func RunFig5b(s *System) *Fig5b {
	out := &Fig5b{}
	var expertCounts, levels []float64
	for _, dom := range kb.Domains {
		experts := len(s.DS.Experts(dom))
		sum := 0.0
		for _, u := range s.DS.Candidates {
			sum += float64(s.DS.Level(u, dom))
		}
		avg := sum / float64(len(s.DS.Candidates))
		out.Rows = append(out.Rows, Fig5bRow{Domain: dom, Experts: experts, AvgExpertise: avg})
		expertCounts = append(expertCounts, float64(experts))
		levels = append(levels, avg)
	}
	out.AvgExpertsRow = metrics.Mean(expertCounts)
	out.AvgExpertiseAll = metrics.Mean(levels)
	return out
}

// String renders the Fig. 5b distribution as a table.
func (f *Fig5b) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5b — experts and expertise per domain (avg experts %.1f, avg expertise %.2f)\n",
		f.AvgExpertsRow, f.AvgExpertiseAll)
	fmt.Fprintf(&b, "%-22s %10s %14s\n", "domain", "experts", "avg expertise")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-22s %10d %14.2f\n", r.Domain, r.Experts, r.AvgExpertise)
	}
	return b.String()
}
