package experiments

import (
	"fmt"
	"sort"
	"strings"

	"expertfind/internal/core"
	"expertfind/internal/metrics"
	"expertfind/internal/socialgraph"
)

// Fig10Row is one expert candidate of Fig. 10.
type Fig10Row struct {
	User      socialgraph.UserID
	F1        float64
	Resources int // resources reachable at distance ≤ 2
}

// Fig10 relates each candidate's estimation quality to the amount of
// social information available for them (paper §3.7, Fig. 10). The
// per-user F1 counts, over the 30 queries, how often the system's
// top-20 retrieval agrees with the ground truth. The paper observes 6
// candidates above 0.70, 8 completely unreliable (the silent experts),
// and a positive correlation with the number of published resources.
type Fig10 struct {
	Rows        []Fig10Row
	MeanF1      float64
	MedianF1    float64
	Correlation float64 // Pearson between resources and F1
	Intercept   float64 // regression F1 = Intercept + Slope·resources
	Slope       float64
}

// fig10TopK is the retrieval cutoff used for the per-user confusion
// counts, matching the 20-user selections used by the baseline.
const fig10TopK = 20

// RunFig10 computes the per-candidate F1 analysis under the default
// configuration (all networks, distance 2, window 100, α = 0.6).
func RunFig10(s *System) *Fig10 {
	p := networkParams(nil, 2)
	tp := make(map[socialgraph.UserID]int)
	fp := make(map[socialgraph.UserID]int)
	fn := make(map[socialgraph.UserID]int)

	for _, q := range s.DS.Queries {
		experts := s.Finder.FindAnalyzed(s.need(q), p)
		retrieved := make(map[socialgraph.UserID]bool)
		for i, e := range experts {
			if i >= fig10TopK {
				break
			}
			retrieved[e.User] = true
		}
		for _, u := range s.DS.Candidates {
			isExp := s.DS.IsExpert(u, q.Domain)
			switch {
			case retrieved[u] && isExp:
				tp[u]++
			case retrieved[u] && !isExp:
				fp[u]++
			case !retrieved[u] && isExp:
				fn[u]++
			}
		}
	}

	out := &Fig10{}
	var f1s, res []float64
	for _, u := range s.DS.Candidates {
		prec, rec := metrics.PrecisionRecall(tp[u], tp[u]+fp[u], tp[u]+fn[u])
		f1 := metrics.F1(prec, rec)
		n := len(s.DS.Graph.ResourcesWithin(u, socialgraph.TraversalOptions{MaxDistance: 2}))
		out.Rows = append(out.Rows, Fig10Row{User: u, F1: f1, Resources: n})
		f1s = append(f1s, f1)
		res = append(res, float64(n))
	}
	out.MeanF1 = metrics.Mean(f1s)
	sorted := append([]float64(nil), f1s...)
	sort.Float64s(sorted)
	out.MedianF1 = sorted[len(sorted)/2]
	out.Correlation = metrics.PearsonCorrelation(res, f1s)
	out.Intercept, out.Slope = metrics.LinearRegression(res, f1s)
	return out
}

// String renders the per-user relationship.
func (f *Fig10) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 10 — per-candidate F1 vs available resources (mean %.3f, median %.3f, corr %.3f)\n",
		f.MeanF1, f.MedianF1, f.Correlation)
	fmt.Fprintf(&b, "regression: F1 = %.4f + %.6f * resources\n", f.Intercept, f.Slope)
	fmt.Fprintf(&b, "%-14s %8s %10s\n", "candidate", "F1", "resources")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "candidate-%02d   %8.3f %10d\n", int(r.User)+1, r.F1, r.Resources)
	}
	return b.String()
}

// Fig11Row is one query of Fig. 11.
type Fig11Row struct {
	Query int
	// Delta is, per distance 0..2, the number of retrieved experts
	// minus the number of expected experts in the ground truth.
	Delta [3]int
}

// Fig11 is the differential number of retrieved experts (paper §3.7,
// Fig. 11): Δ between how many candidates the system retrieves and how
// many the ground truth expects, per query and resource distance. The
// paper notes the clear correlation between the amount of considered
// resources and retrieval reach: at distance 2, about a third of
// questions remain under-represented while a handful are
// over-represented.
type Fig11 struct {
	Rows []Fig11Row
	Avg  [3]float64
}

// RunFig11 computes the retrieval deltas.
func RunFig11(s *System) *Fig11 {
	out := &Fig11{}
	for _, q := range s.DS.Queries {
		row := Fig11Row{Query: q.ID}
		expected := len(s.DS.Experts(q.Domain))
		for dist := 0; dist <= 2; dist++ {
			p := core.Params{
				Alpha:      core.DefaultAlpha,
				WindowSize: core.DefaultWindowSize,
				Traversal:  socialgraph.TraversalOptions{MaxDistance: dist},
			}
			retrieved := len(s.Finder.FindAnalyzed(s.need(q), p))
			row.Delta[dist] = retrieved - expected
		}
		out.Rows = append(out.Rows, row)
	}
	for dist := 0; dist <= 2; dist++ {
		sum := 0.0
		for _, r := range out.Rows {
			sum += float64(r.Delta[dist])
		}
		out.Avg[dist] = sum / float64(len(out.Rows))
	}
	return out
}

// String renders the deltas.
func (f *Fig11) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 11 — differential retrieved experts (avg d0 %.1f, d1 %.1f, d2 %.1f)\n",
		f.Avg[0], f.Avg[1], f.Avg[2])
	fmt.Fprintf(&b, "%-6s %8s %8s %8s\n", "query", "Δ dist0", "Δ dist1", "Δ dist2")
	for _, r := range f.Rows {
		fmt.Fprintf(&b, "%-6d %8d %8d %8d\n", r.Query, r.Delta[0], r.Delta[1], r.Delta[2])
	}
	return b.String()
}
