package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"expertfind/internal/core"
	"expertfind/internal/metrics"
)

// SignificanceRow is one paired comparison with its per-query MAP
// difference and randomization-test p-value.
type SignificanceRow struct {
	Comparison string
	MAPDiff    float64
	PValue     float64
}

// Significance tests the statistical strength of the paper's headline
// claims on per-query average precision, using Fisher randomization
// (10,000 samples): behavioral evidence beats profiles, distance 2
// beats distance 1, the system beats random selection, and Twitter
// friend resources make no significant difference (Table 2's
// conclusion stated as an accepted null hypothesis).
type Significance struct {
	Rows []SignificanceRow
}

const significanceIterations = 10000

// perQueryAP computes the average precision of every query under p.
func (s *System) perQueryAP(p core.Params) []float64 {
	out := make([]float64, 0, len(s.DS.Queries))
	for _, q := range s.DS.Queries {
		experts := s.Finder.FindAnalyzed(s.need(q), p)
		ap, _, _, _ := s.queryEval(q, rankedUsers(experts))
		out = append(out, ap)
	}
	return out
}

// perQueryRandomAP computes the per-query AP of the random baseline
// (averaged over its 10 runs per query).
func (s *System) perQueryRandomAP() []float64 {
	r := rand.New(rand.NewSource(randomBaselineSeed))
	out := make([]float64, 0, len(s.DS.Queries))
	for _, q := range s.DS.Queries {
		var sum float64
		const runs = 10
		for k := 0; k < runs; k++ {
			ap, _, _, _ := s.queryEval(q, randomRanking(r, s.DS.Candidates, 20))
			sum += ap
		}
		out = append(out, sum/runs)
	}
	return out
}

// RunSignificance runs the paired comparisons.
func RunSignificance(s *System) *Significance {
	d0 := s.perQueryAP(networkParams(nil, 0))
	d1 := s.perQueryAP(networkParams(nil, 1))
	d2 := s.perQueryAP(networkParams(nil, 2))
	random := s.perQueryRandomAP()
	twNoFriends := s.perQueryAP(twitterParams(2, false))
	twFriends := s.perQueryAP(twitterParams(2, true))

	pair := func(name string, a, b []float64) SignificanceRow {
		return SignificanceRow{
			Comparison: name,
			MAPDiff:    metrics.PairedMeanDiff(a, b),
			PValue:     metrics.RandomizationTest(a, b, significanceIterations, 31),
		}
	}
	return &Significance{Rows: []SignificanceRow{
		pair("distance1 vs distance0", d1, d0),
		pair("distance2 vs distance1", d2, d1),
		pair("distance2 vs random", d2, random),
		pair("random vs distance0", random, d0),
		pair("tw-d2 friends vs no-friends", twFriends, twNoFriends),
	}}
}

// String renders the comparisons.
func (sg *Significance) String() string {
	var b strings.Builder
	b.WriteString("Significance — paired Fisher randomization on per-query AP (10k samples)\n")
	fmt.Fprintf(&b, "%-32s %10s %10s %s\n", "comparison", "ΔMAP", "p-value", "verdict")
	for _, r := range sg.Rows {
		verdict := "not significant"
		if r.PValue < 0.05 {
			verdict = "significant (p<0.05)"
		}
		fmt.Fprintf(&b, "%-32s %+10.4f %10.4f %s\n", r.Comparison, r.MAPDiff, r.PValue, verdict)
	}
	return b.String()
}
