package experiments

import (
	"fmt"
	"strings"

	"expertfind/internal/metrics"
)

// CorrelationRow is one resource-distance level of the correlation
// analysis.
type CorrelationRow struct {
	Distance int
	// MatchesVsDelta correlates, across queries, the number of
	// matching resources with Δ (retrieved − expected experts).
	MatchesVsDelta float64
	// MatchesVsAP correlates the number of matching resources with
	// the query's average precision.
	MatchesVsAP float64
	// MeanMatches is the average number of matching resources per
	// query at this distance.
	MeanMatches float64
}

// Correlation completes the analysis the paper defers to future work
// (§3.7, last paragraph): "a more complete analysis of such
// correlation" between the amount of considered resources and the
// system's ability to retrieve experts. For each resource distance it
// reports the Pearson correlation, over the 30 queries, between the
// number of matching resources and (a) the retrieval surplus Δ of
// Fig. 11 and (b) the retrieval quality (AP).
type Correlation struct {
	Rows []CorrelationRow
}

// RunCorrelation computes the per-distance correlations.
func RunCorrelation(s *System) *Correlation {
	out := &Correlation{}
	for dist := 0; dist <= 2; dist++ {
		p := networkParams(nil, dist)
		var matches, deltas, aps []float64
		for _, q := range s.DS.Queries {
			need := s.need(q)
			m := s.Finder.Matches(need, p)
			experts := s.Finder.RankFromMatches(m, p)
			ap, _, _, _ := s.queryEval(q, rankedUsers(experts))
			matches = append(matches, float64(len(m)))
			deltas = append(deltas, float64(len(experts)-len(s.DS.Experts(q.Domain))))
			aps = append(aps, ap)
		}
		out.Rows = append(out.Rows, CorrelationRow{
			Distance:       dist,
			MatchesVsDelta: metrics.PearsonCorrelation(matches, deltas),
			MatchesVsAP:    metrics.PearsonCorrelation(matches, aps),
			MeanMatches:    metrics.Mean(matches),
		})
	}
	return out
}

// String renders the correlations.
func (c *Correlation) String() string {
	var b strings.Builder
	b.WriteString("Correlation — matching resources vs retrieval reach and quality (the paper's deferred analysis)\n")
	fmt.Fprintf(&b, "%-6s %14s %16s %14s\n", "dist", "mean matches", "corr(matches,Δ)", "corr(matches,AP)")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%-6d %14.1f %16.4f %14.4f\n", r.Distance, r.MeanMatches, r.MatchesVsDelta, r.MatchesVsAP)
	}
	return b.String()
}
