package experiments

import (
	"fmt"
	"strings"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/index"
	"expertfind/internal/metrics"
	"expertfind/internal/socialgraph"
)

// Fig6Point is one window size on the sweep.
type Fig6Point struct {
	Frac float64 // fraction of matching resources considered
	M    Metrics
}

// Fig6 is the window-size sensitivity analysis (paper §3.3.1): MAP,
// MRR, NDCG and NDCG@10 for increasing window sizes up to 10% of the
// matching resources, at resource distance 1 and 2 with α = 0.5, plus
// the fixed 100-resource operating point the paper settles on.
type Fig6 struct {
	Dist1, Dist2           []Fig6Point
	Dist1At100, Dist2At100 Metrics
	Random                 Metrics
}

// fig6Fracs are the swept window fractions.
var fig6Fracs = []float64{0.005, 0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10}

// RunFig6 sweeps the window size at distance 1 and 2.
func RunFig6(s *System) *Fig6 {
	out := &Fig6{Random: s.RandomBaseline()}
	out.Dist1, out.Dist1At100 = s.windowSweep(1)
	out.Dist2, out.Dist2At100 = s.windowSweep(2)
	return out
}

// windowSweep evaluates all queries at every window fraction for one
// distance, reusing the per-query match lists across window sizes.
func (s *System) windowSweep(dist int) ([]Fig6Point, Metrics) {
	p := core.Params{
		Alpha:     0.5, // the paper's setting for this experiment
		Traversal: socialgraph.TraversalOptions{MaxDistance: dist},
	}
	type qm struct {
		q       dataset.Query
		matches []index.ScoredDoc
	}
	qms := make([]qm, len(s.DS.Queries))
	for i, q := range s.DS.Queries {
		qms[i] = qm{q: q, matches: s.Finder.Matches(s.need(q), p)}
	}

	eval := func(pp core.Params) Metrics {
		var aps, rrs, nds, nd10s []float64
		for _, x := range qms {
			experts := s.Finder.RankFromMatches(x.matches, pp)
			ap, rr, nd, nd10 := s.queryEval(x.q, rankedUsers(experts))
			aps = append(aps, ap)
			rrs = append(rrs, rr)
			nds = append(nds, nd)
			nd10s = append(nd10s, nd10)
		}
		return Metrics{MAP: metrics.Mean(aps), MRR: metrics.Mean(rrs), NDCG: metrics.Mean(nds), NDCG10: metrics.Mean(nd10s)}
	}

	points := make([]Fig6Point, 0, len(fig6Fracs))
	for _, frac := range fig6Fracs {
		pp := p
		pp.WindowFrac = frac
		points = append(points, Fig6Point{Frac: frac, M: eval(pp)})
	}
	pp := p
	pp.WindowSize = core.DefaultWindowSize
	return points, eval(pp)
}

// String renders the sweep as two series tables.
func (f *Fig6) String() string {
	var b strings.Builder
	b.WriteString("Fig 6 — window-size sweep (alpha 0.5; metrics: MAP MRR NDCG NDCG@10)\n")
	fmt.Fprintf(&b, "random baseline: %s\n", f.Random)
	render := func(name string, pts []Fig6Point, at100 Metrics) {
		fmt.Fprintf(&b, "%s:\n", name)
		for _, pt := range pts {
			fmt.Fprintf(&b, "  %5.1f%%  %s\n", pt.Frac*100, pt.M)
		}
		fmt.Fprintf(&b, "  100res  %s\n", at100)
	}
	render("distance 1", f.Dist1, f.Dist1At100)
	render("distance 2", f.Dist2, f.Dist2At100)
	return b.String()
}

// Fig7Point is one α value on the sweep.
type Fig7Point struct {
	Alpha float64
	M     Metrics
}

// Fig7 is the α sensitivity analysis (paper §3.3.2): metrics for α in
// [0, 1] at resource distances 0, 1 and 2 with window 100. The paper
// observes stability in [0.3, 0.8] and a collapse at α = 0 with
// distance-0 resources (profiles carry too few entities), settling on
// α = 0.6.
type Fig7 struct {
	Dist   [3][]Fig7Point
	Random Metrics
}

// RunFig7 sweeps α at each distance.
func RunFig7(s *System) *Fig7 {
	out := &Fig7{Random: s.RandomBaseline()}
	for dist := 0; dist <= 2; dist++ {
		for a := 0; a <= 10; a++ {
			alpha := float64(a) / 10
			p := core.Params{
				Alpha:      alpha,
				AlphaSet:   true,
				WindowSize: core.DefaultWindowSize,
				Traversal:  socialgraph.TraversalOptions{MaxDistance: dist},
			}
			out.Dist[dist] = append(out.Dist[dist], Fig7Point{Alpha: alpha, M: s.Evaluate(p)})
		}
	}
	return out
}

// String renders the α sweep.
func (f *Fig7) String() string {
	var b strings.Builder
	b.WriteString("Fig 7 — alpha sweep (window 100; metrics: MAP MRR NDCG NDCG@10)\n")
	fmt.Fprintf(&b, "random baseline: %s\n", f.Random)
	for dist := 0; dist <= 2; dist++ {
		fmt.Fprintf(&b, "distance %d:\n", dist)
		for _, pt := range f.Dist[dist] {
			fmt.Fprintf(&b, "  a=%.1f  %s\n", pt.Alpha, pt.M)
		}
	}
	return b.String()
}
