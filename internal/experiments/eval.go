package experiments

import (
	"fmt"
	"math/rand"

	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/metrics"
	"expertfind/internal/socialgraph"
)

// Metrics aggregates the four headline measures used throughout the
// paper's tables: MAP, MRR, NDCG and NDCG@10.
type Metrics struct {
	MAP    float64
	MRR    float64
	NDCG   float64
	NDCG10 float64
}

// String renders the metrics in the paper's four-decimal style.
func (m Metrics) String() string {
	return fmt.Sprintf("%.4f %.4f %.4f %.4f", m.MAP, m.MRR, m.NDCG, m.NDCG10)
}

// queryEval evaluates one ranked expert list against the ground truth
// of the query's domain.
func (s *System) queryEval(q dataset.Query, ranked []socialgraph.UserID) (ap, rr, ndcg, ndcg10 float64) {
	rel := make([]bool, len(ranked))
	for i, u := range ranked {
		rel[i] = s.DS.IsExpert(u, q.Domain)
	}
	numRel := len(s.DS.Experts(q.Domain))
	gains := metrics.BinaryGains(rel)
	ideal := metrics.Ones(numRel)
	return metrics.AveragePrecision(rel, numRel),
		metrics.ReciprocalRank(rel),
		metrics.NDCG(gains, ideal, 0),
		metrics.NDCG(gains, ideal, 10)
}

// rankedUsers strips the scores from an expert ranking.
func rankedUsers(experts []core.ExpertScore) []socialgraph.UserID {
	out := make([]socialgraph.UserID, len(experts))
	for i, e := range experts {
		out[i] = e.User
	}
	return out
}

// Evaluate runs every query of the dataset under params and returns
// the mean metrics (MAP, MRR, mean NDCG, mean NDCG@10).
func (s *System) Evaluate(p core.Params) Metrics {
	return s.EvaluateQueries(s.DS.Queries, p)
}

// EvaluateQueries evaluates a subset of queries under params.
func (s *System) EvaluateQueries(qs []dataset.Query, p core.Params) Metrics {
	var aps, rrs, ndcgs, ndcg10s []float64
	for _, q := range qs {
		experts := s.Finder.FindAnalyzed(s.need(q), p)
		ap, rr, nd, nd10 := s.queryEval(q, rankedUsers(experts))
		aps = append(aps, ap)
		rrs = append(rrs, rr)
		ndcgs = append(ndcgs, nd)
		ndcg10s = append(ndcg10s, nd10)
	}
	return Metrics{
		MAP:    metrics.Mean(aps),
		MRR:    metrics.Mean(rrs),
		NDCG:   metrics.Mean(ndcgs),
		NDCG10: metrics.Mean(ndcg10s),
	}
}

// randomBaselineSeed fixes the baseline sampling across experiments.
const randomBaselineSeed = 97

// RandomBaseline computes the paper's random reference (§3.1): for
// each query, the metrics are averaged over 10 runs in which 20 users
// are randomly selected (in random order).
func (s *System) RandomBaseline() Metrics {
	return s.RandomBaselineQueries(s.DS.Queries)
}

// RandomBaselineQueries is RandomBaseline restricted to a query
// subset.
func (s *System) RandomBaselineQueries(qs []dataset.Query) Metrics {
	r := rand.New(rand.NewSource(randomBaselineSeed))
	var aps, rrs, ndcgs, ndcg10s []float64
	for _, q := range qs {
		var qap, qrr, qnd, qnd10 float64
		const runs = 10
		for k := 0; k < runs; k++ {
			ranked := randomRanking(r, s.DS.Candidates, 20)
			ap, rr, nd, nd10 := s.queryEval(q, ranked)
			qap += ap
			qrr += rr
			qnd += nd
			qnd10 += nd10
		}
		aps = append(aps, qap/runs)
		rrs = append(rrs, qrr/runs)
		ndcgs = append(ndcgs, qnd/runs)
		ndcg10s = append(ndcg10s, qnd10/runs)
	}
	return Metrics{
		MAP:    metrics.Mean(aps),
		MRR:    metrics.Mean(rrs),
		NDCG:   metrics.Mean(ndcgs),
		NDCG10: metrics.Mean(ndcg10s),
	}
}

// elevenPointAvg averages per-query 11-point interpolated precision
// curves for a ranking function.
func (s *System) elevenPointAvg(qs []dataset.Query, rank func(q dataset.Query) []socialgraph.UserID) [11]float64 {
	var sum [11]float64
	for _, q := range qs {
		ranked := rank(q)
		rel := make([]bool, len(ranked))
		for i, u := range ranked {
			rel[i] = s.DS.IsExpert(u, q.Domain)
		}
		curve := metrics.ElevenPointPrecision(rel, len(s.DS.Experts(q.Domain)))
		for i := range sum {
			sum[i] += curve[i]
		}
	}
	for i := range sum {
		sum[i] /= float64(len(qs))
	}
	return sum
}

// dcgCurve computes the graded DCG at cutoffs 1..maxK, summed over
// queries, with the candidate's Likert expertise level in the query
// domain as gain — the construction behind the paper's DCG plots
// (Figs. 8b, 9b), whose magnitude (tens to hundreds) reveals
// cross-query summation of graded gains.
func (s *System) dcgCurve(qs []dataset.Query, maxK int, rank func(q dataset.Query) []socialgraph.UserID) []float64 {
	out := make([]float64, maxK)
	for _, q := range qs {
		ranked := rank(q)
		gains := make([]float64, len(ranked))
		for i, u := range ranked {
			gains[i] = float64(s.DS.Level(u, q.Domain))
		}
		for k := 1; k <= maxK; k++ {
			out[k-1] += metrics.DCG(gains, k)
		}
	}
	return out
}

// randomRankFunc returns a rank function drawing a fresh random
// 20-user selection per query (averaged curves use averaged=10 runs
// internally where needed; for curve plots a single seeded draw per
// query suffices, as the paper plots one random series).
func (s *System) randomRankFunc() func(q dataset.Query) []socialgraph.UserID {
	r := rand.New(rand.NewSource(randomBaselineSeed))
	return func(dataset.Query) []socialgraph.UserID {
		return randomRanking(r, s.DS.Candidates, 20)
	}
}

// paramsRankFunc returns a rank function running the finder under p.
func (s *System) paramsRankFunc(p core.Params) func(q dataset.Query) []socialgraph.UserID {
	return func(q dataset.Query) []socialgraph.UserID {
		return rankedUsers(s.Finder.FindAnalyzed(s.need(q), p))
	}
}
