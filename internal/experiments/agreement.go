package experiments

import (
	"fmt"
	"strings"

	"expertfind/internal/metrics"
	"expertfind/internal/socialgraph"
)

// AgreementRow is the mean rank correlation between two sources'
// expert rankings.
type AgreementRow struct {
	A, B string
	Tau  float64
}

// NetworkAgreement measures how much the platforms agree on who the
// experts are: for every query, each source's ranking is turned into
// a score vector over the whole candidate pool (unretrieved
// candidates score 0) and compared pairwise with Kendall's τ-b,
// averaged over the 30 queries. Low cross-network agreement is the
// structural reason combining networks differs from using the best
// one alone (§3.5).
type NetworkAgreement struct {
	Rows []AgreementRow
}

// RunNetworkAgreement compares all source pairs at distance 2.
func RunNetworkAgreement(s *System) *NetworkAgreement {
	// Per source, per query: score vector over candidates.
	vectors := make(map[string][][]float64, len(NetworkConfigs))
	for _, cfg := range NetworkConfigs {
		p := networkParams(cfg.Networks, 2)
		var per [][]float64
		for _, q := range s.DS.Queries {
			scores := make([]float64, len(s.DS.Candidates))
			pos := make(map[socialgraph.UserID]int, len(s.DS.Candidates))
			for i, u := range s.DS.Candidates {
				pos[u] = i
			}
			for _, es := range s.Finder.FindAnalyzed(s.need(q), p) {
				scores[pos[es.User]] = es.Score
			}
			per = append(per, scores)
		}
		vectors[cfg.Label] = per
	}

	out := &NetworkAgreement{}
	for i, a := range NetworkConfigs {
		for _, b := range NetworkConfigs[i+1:] {
			var taus []float64
			va, vb := vectors[a.Label], vectors[b.Label]
			for qi := range s.DS.Queries {
				taus = append(taus, metrics.KendallTau(va[qi], vb[qi]))
			}
			out.Rows = append(out.Rows, AgreementRow{A: a.Label, B: b.Label, Tau: metrics.Mean(taus)})
		}
	}
	return out
}

// String renders the agreement matrix.
func (na *NetworkAgreement) String() string {
	var b strings.Builder
	b.WriteString("Network agreement — mean Kendall tau between source rankings (dist 2)\n")
	fmt.Fprintf(&b, "%-10s %-10s %8s\n", "source A", "source B", "tau")
	for _, r := range na.Rows {
		fmt.Fprintf(&b, "%-10s %-10s %8.4f\n", r.A, r.B, r.Tau)
	}
	return b.String()
}
