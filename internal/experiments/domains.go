package experiments

import (
	"fmt"
	"strings"

	"expertfind/internal/kb"
)

// Table4Cell holds the three per-domain measures the paper reports.
type Table4Cell struct {
	MAP, MRR, NDCG10 float64
}

// Table4Row is one (domain, distance) row with the four sources.
type Table4Row struct {
	Domain   kb.Domain
	Distance int
	// Cells indexes by source in NetworkConfigs order: All, FB, TW, LI.
	Cells [4]Table4Cell
}

// Table4 is the per-domain breakdown (paper §3.6, Table 4): MAP, MRR
// and NDCG@10 for every domain, distance and social network. The
// paper's qualitative findings: Twitter leads in computer engineering,
// science, sport and technology & games; Facebook is strong in
// location, music, sport and movies & tv; LinkedIn trails everywhere
// but scores notably at distance 0 in computer engineering thanks to
// its career profiles.
type Table4 struct {
	Rows []Table4Row
}

// RunTable4 evaluates every (domain, distance, source) cell.
func RunTable4(s *System) *Table4 {
	out := &Table4{}
	for _, dom := range kb.Domains {
		qs := s.DS.QueriesInDomain(dom)
		for dist := 0; dist <= 2; dist++ {
			row := Table4Row{Domain: dom, Distance: dist}
			for ci, cfg := range NetworkConfigs {
				m := s.EvaluateQueries(qs, networkParams(cfg.Networks, dist))
				row.Cells[ci] = Table4Cell{MAP: m.MAP, MRR: m.MRR, NDCG10: m.NDCG10}
			}
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// String renders Table 4 in the paper's layout (MAP | MRR | NDCG@10,
// each split by All/FB/TW/LI).
func (t *Table4) String() string {
	var b strings.Builder
	b.WriteString("Table 4 — per-domain metrics (window 100, alpha 0.6)\n")
	fmt.Fprintf(&b, "%-22s %-4s |%28s |%28s |%28s\n", "domain", "dist",
		"MAP  All    FB    TW    LI", "MRR  All    FB    TW    LI", "N@10 All    FB    TW    LI")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-22s %-4d |", r.Domain, r.Distance)
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %5.3f", c.MAP)
		}
		b.WriteString("      |")
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %5.3f", c.MRR)
		}
		b.WriteString("      |")
		for _, c := range r.Cells {
			fmt.Fprintf(&b, " %5.3f", c.NDCG10)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Cell returns the cell for a domain, distance and source label.
func (t *Table4) Cell(dom kb.Domain, dist int, source string) (Table4Cell, bool) {
	si := -1
	for i, cfg := range NetworkConfigs {
		if cfg.Label == source {
			si = i
		}
	}
	if si < 0 {
		return Table4Cell{}, false
	}
	for _, r := range t.Rows {
		if r.Domain == dom && r.Distance == dist {
			return r.Cells[si], true
		}
	}
	return Table4Cell{}, false
}
