package experiments

import (
	"fmt"
	"strings"

	"expertfind/internal/crawler"
	"expertfind/internal/faults"
	"expertfind/internal/metrics"
	"expertfind/internal/socialgraph"
)

// FaultRow is one failure-rate level of the fault-tolerance sweep.
type FaultRow struct {
	// FailureRate is the combined per-call probability of an injected
	// failure (⅔ transient, ⅓ rate-limited).
	FailureRate float64
	// ResourcesBare / Resources are the crawled corpus sizes without
	// and with the retry/breaker stack.
	ResourcesBare int
	Resources     int
	Retries       int
	GaveUp        int
	BreakerTrips  int
	// Spearman is the mean (over queries) rank correlation between
	// the ranking computed on the hardened faulted crawl and the one
	// computed on the pristine full-access corpus.
	Spearman float64
	// M are the retrieval metrics of the hardened faulted crawl.
	M Metrics
}

// FaultTolerance charts how ranking quality degrades as the platform
// APIs get flakier — the §3.7 robustness-to-incompleteness question
// under *transient* incompleteness (failed calls) rather than just
// *policy* incompleteness (privacy). At every failure rate the corpus
// is re-crawled twice through the fault-injecting API — once with a
// bare client, once through the retry + rate-limit + breaker stack —
// and the full pipeline is re-run on the hardened crawl.
type FaultTolerance struct {
	Rows []FaultRow
}

// FaultSweep parameterizes RunFaultSweep.
type FaultSweep struct {
	// Rates are the combined failure rates to sweep.
	Rates []float64
	// Seed drives the injected fault draws.
	Seed int64
	// Res is the hardened client's resilience stack.
	Res crawler.Resilience
}

// DefaultFaultSweep sweeps a healthy API up to one failing every
// other call, with the default SDK-style stack.
func DefaultFaultSweep() FaultSweep {
	return FaultSweep{
		Rates: []float64{0, 0.05, 0.1, 0.25, 0.5},
		Seed:  23,
		Res:   crawler.DefaultResilience,
	}
}

// RunFaultTolerance runs the default sweep.
func RunFaultTolerance(s *System) *FaultTolerance {
	return RunFaultSweep(s, DefaultFaultSweep())
}

// RunFaultSweep runs the sweep with explicit parameters. Like the
// crawl-robustness experiment it rebuilds the analysis index once per
// level, so it is expensive (≈ one corpus build per rate).
func RunFaultSweep(s *System, sw FaultSweep) *FaultTolerance {
	p := networkParams(nil, 2)
	baseline := make([][]socialgraph.UserID, len(s.DS.Queries))
	for i, q := range s.DS.Queries {
		baseline[i] = rankedUsers(s.Finder.FindAnalyzed(s.need(q), p))
	}

	out := &FaultTolerance{}
	for _, rate := range sw.Rates {
		cfg := faults.Config{
			Seed:          sw.Seed,
			TransientRate: rate * 2 / 3,
			RateLimitRate: rate / 3,
		}
		bare, _ := crawler.CrawlAPI(faults.Wrap(s.DS.Graph, cfg), crawler.FullAccess, crawler.Resilience{})
		hardened, stats := crawler.CrawlAPI(faults.Wrap(s.DS.Graph, cfg), crawler.FullAccess, sw.Res)
		partial := BuildSystemFromDataset(s.DS.WithGraph(hardened))

		var rhos []float64
		for i, q := range s.DS.Queries {
			ranked := rankedUsers(partial.Finder.FindAnalyzed(partial.need(q), p))
			rhos = append(rhos, rankAgreement(baseline[i], ranked))
		}
		out.Rows = append(out.Rows, FaultRow{
			FailureRate:   rate,
			ResourcesBare: bare.NumResources(),
			Resources:     hardened.NumResources(),
			Retries:       stats.Retries,
			GaveUp:        stats.GaveUp,
			BreakerTrips:  stats.BreakerTrips,
			Spearman:      metrics.Mean(rhos),
			M:             partial.Evaluate(p),
		})
	}
	return out
}

// rankAgreement computes Spearman's ρ between two rankings of the
// same candidate pool. Users missing from a ranking share the
// past-the-end position, so losing candidates (because their
// resources failed to crawl) lowers the correlation.
func rankAgreement(a, b []socialgraph.UserID) float64 {
	users := make(map[socialgraph.UserID]bool, len(a)+len(b))
	for _, u := range a {
		users[u] = true
	}
	for _, u := range b {
		users[u] = true
	}
	pos := func(ranked []socialgraph.UserID) map[socialgraph.UserID]float64 {
		m := make(map[socialgraph.UserID]float64, len(ranked))
		for i, u := range ranked {
			m[u] = float64(i + 1)
		}
		return m
	}
	pa, pb := pos(a), pos(b)
	var xs, ys []float64
	for u := range users {
		x, ok := pa[u]
		if !ok {
			x = float64(len(a) + 1)
		}
		y, ok := pb[u]
		if !ok {
			y = float64(len(b) + 1)
		}
		xs = append(xs, x)
		ys = append(ys, y)
	}
	return metrics.SpearmanCorrelation(xs, ys)
}

// String renders the sweep.
func (ft *FaultTolerance) String() string {
	var b strings.Builder
	b.WriteString("Fault tolerance — ranking quality vs API failure rate (dist 2, retry/breaker stack)\n")
	fmt.Fprintf(&b, "%-8s %10s %10s %8s %8s %6s %9s %8s %8s\n",
		"failure", "res(bare)", "res(hard)", "retries", "gaveup", "trips", "spearman", "MAP", "NDCG")
	for _, r := range ft.Rows {
		fmt.Fprintf(&b, "%-8.2f %10d %10d %8d %8d %6d %9.4f %8.4f %8.4f\n",
			r.FailureRate, r.ResourcesBare, r.Resources, r.Retries, r.GaveUp,
			r.BreakerTrips, r.Spearman, r.M.MAP, r.M.NDCG)
	}
	return b.String()
}
