package ingest

import (
	"math/rand"
	"strings"

	"expertfind/internal/socialgraph"
)

// ChurnConfig sets the per-round operation mix of a Churn driver.
type ChurnConfig struct {
	// Seed drives all randomness; equal seeds against equal graphs
	// produce identical churn sequences.
	Seed int64
	// Adds, Updates and Removes are the operations attempted per
	// round. An update-only mix (Adds = Removes = 0) keeps collection
	// statistics fixed, which is what lets scoped cache invalidation
	// preserve entries across rounds.
	Adds    int
	Updates int
	Removes int
}

// ChurnStats counts what one round actually did.
type ChurnStats struct {
	Adds    int
	Updates int
	Removes int
}

// Churn mutates a remote graph the way a live platform does between
// crawls: posts appear, get edited, and disappear. It drives the
// graph behind a faults API so an Ingester has something real to
// diff against; tests and the load harness use it as the write side
// of rolling-ingest scenarios.
//
// Adds are standalone resources (posts, tweets, updates) recorded
// with their creates edge, so they surface in the creator's streams.
// Updates rewrite the text of any live resource — profiles and
// container descriptions included — by splicing words from another
// live resource, which keeps the corpus inside the analysis
// pipeline's language filter. Removes tombstone live resources,
// excluding profiles and container descriptions (platforms do not
// delete those, and the ingest diff treats their absence as an
// incomplete catalog).
type Churn struct {
	g   *socialgraph.Graph
	rng *rand.Rand
	cfg ChurnConfig
}

// NewChurn returns a churn driver over the remote graph g.
func NewChurn(g *socialgraph.Graph, cfg ChurnConfig) *Churn {
	return &Churn{g: g, rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// Round applies one round of the configured mix. Operations are
// skipped (not retried) when no eligible resource remains.
func (c *Churn) Round() ChurnStats {
	var st ChurnStats
	live := c.liveResources()
	for i := 0; i < c.cfg.Updates && len(live) > 0; i++ {
		id := live[c.rng.Intn(len(live))]
		donor := live[c.rng.Intn(len(live))]
		r := c.g.Resource(id)
		text := c.mutateText(r.Text, c.g.Resource(donor).Text)
		c.g.SetResourceText(id, text, r.URLs...)
		st.Updates++
	}
	removable := c.removableResources(live)
	for i := 0; i < c.cfg.Removes && len(removable) > 0; i++ {
		j := c.rng.Intn(len(removable))
		c.g.RemoveResource(removable[j])
		removable[j] = removable[len(removable)-1]
		removable = removable[:len(removable)-1]
		st.Removes++
	}
	live = c.liveResources()
	users := c.g.NumUsers()
	for i := 0; i < c.cfg.Adds && len(live) > 0 && users > 0; i++ {
		creator := socialgraph.UserID(c.rng.Intn(users))
		net := socialgraph.Networks[c.rng.Intn(len(socialgraph.Networks))]
		donor := c.g.Resource(live[c.rng.Intn(len(live))])
		text := c.mutateText(donor.Text, c.g.Resource(live[c.rng.Intn(len(live))]).Text)
		c.g.AddResource(net, kindFor(net), creator, text)
		st.Adds++
	}
	return st
}

// kindFor maps a network to its native standalone resource kind.
func kindFor(net socialgraph.Network) socialgraph.ResourceKind {
	switch net {
	case socialgraph.Twitter:
		return socialgraph.KindTweet
	case socialgraph.LinkedIn:
		return socialgraph.KindUpdate
	}
	return socialgraph.KindPost
}

func (c *Churn) liveResources() []socialgraph.ResourceID {
	n := c.g.NumResources()
	out := make([]socialgraph.ResourceID, 0, n)
	for i := 0; i < n; i++ {
		id := socialgraph.ResourceID(i)
		if !c.g.ResourceDeleted(id) {
			out = append(out, id)
		}
	}
	return out
}

func (c *Churn) removableResources(live []socialgraph.ResourceID) []socialgraph.ResourceID {
	var out []socialgraph.ResourceID
	for _, id := range live {
		switch c.g.Resource(id).Kind {
		case socialgraph.KindProfile, socialgraph.KindContainerDesc:
		default:
			out = append(out, id)
		}
	}
	return out
}

// mutateText rewrites old by keeping a random-length prefix of its
// words and splicing in a random suffix of the donor's. Both inputs
// come from the generated (English) corpus, so the result stays
// inside the language filter. The result is guaranteed to differ from
// old, so every churn update is a real content change.
func (c *Churn) mutateText(old, donor string) string {
	ow := strings.Fields(old)
	dw := strings.Fields(donor)
	keep := 0
	if len(ow) > 0 {
		keep = c.rng.Intn(len(ow))
	}
	take := 0
	if len(dw) > 0 {
		take = 1 + c.rng.Intn(len(dw))
	}
	words := append(append([]string{}, ow[:keep]...), dw[len(dw)-take:]...)
	text := strings.Join(words, " ")
	if text == old {
		text += " revisited"
	}
	return text
}
