// Package ingest keeps an installed corpus live: it re-visits the
// remote platforms through the faults API, diffs what they serve
// against the installed social graph, and applies the resulting
// add/update/delete delta to the graph and the sharded index without
// a rebuild — invalidating only the result-cache entries the delta
// can actually change.
//
// The paper's system crawls once and serves a frozen corpus (§2.3);
// real deployments re-crawl continuously, because walls move: posts
// are written, edited and deleted between crawls. The correctness
// spine of this package is the delta-vs-rebuild differential: after
// any sequence of ingest rounds, the delta-absorbed index must rank
// bit-identically to — and serialize byte-identically with — a cold
// rebuild of the same corpus state.
//
// The installed graph is assumed to be a same-ID replica of the
// remote one: both evolved from a common crawl by positional appends,
// so a remote resource and its installed copy share one ResourceID.
// FetchCatalog re-fetches every user stream and container feed, Diff
// classifies each resource by a stable content fingerprint, and
// Ingester.RunOnce applies the delta atomically with respect to
// concurrent queries. A round that cannot fetch completely is
// aborted whole: diffing a partial catalog would misread every
// missing resource as a deletion.
package ingest

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"

	"expertfind/internal/faults"
	"expertfind/internal/resilience"
	"expertfind/internal/socialgraph"
	"expertfind/internal/telemetry"
)

// Ingest metrics: round cadence and delta composition. The rescache
// scoped-invalidation counters live in internal/rescache.
var (
	mRounds = telemetry.Default().Counter(
		"expertfind_ingest_rounds_total",
		"Completed ingest rounds (empty deltas included).")
	mAborts = telemetry.Default().Counter(
		"expertfind_ingest_aborts_total",
		"Ingest rounds abandoned whole on an incomplete fetch or an inconsistent catalog.")
	mAdds = telemetry.Default().Counter(
		"expertfind_ingest_adds_total",
		"Resources added to the installed corpus by ingest deltas.")
	mUpdates = telemetry.Default().Counter(
		"expertfind_ingest_updates_total",
		"Resources updated in place by ingest deltas.")
	mRemoves = telemetry.Default().Counter(
		"expertfind_ingest_removes_total",
		"Resources tombstoned by ingest deltas.")
	mFullPurges = telemetry.Default().Counter(
		"expertfind_ingest_cache_full_purges_total",
		"Ingest rounds whose delta changed collection statistics (N or a document frequency), forcing a whole-cache purge instead of a scoped one.")
	mCatalog = telemetry.Default().Gauge(
		"expertfind_ingest_catalog_resources",
		"Resources in the most recently fetched remote catalog.")
	mRoundSeconds = telemetry.Default().Histogram(
		"expertfind_ingest_round_duration_seconds",
		"Wall time of one full ingest round (fetch, diff, apply, invalidate).", nil)
)

// Fingerprint hashes the content of a resource: network, kind,
// creator, container, text and URLs, each length-delimited so
// adjacent fields cannot alias. Two resources fingerprint equal iff
// an ingest delta has nothing to change between them. The ID is
// deliberately excluded — the catalog already keys by it.
func Fingerprint(r socialgraph.Resource) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeStr := func(s string) {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	writeStr(string(r.Network))
	binary.LittleEndian.PutUint64(buf[:], uint64(r.Kind))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(r.Creator)))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(r.Container)))
	h.Write(buf[:])
	writeStr(r.Text)
	binary.LittleEndian.PutUint64(buf[:], uint64(len(r.URLs)))
	h.Write(buf[:])
	for _, u := range r.URLs {
		writeStr(u)
	}
	return h.Sum64()
}

// Catalog is one complete fetch of the remote corpus: every resource
// the platforms currently serve, keyed by its remote ID.
type Catalog map[socialgraph.ResourceID]socialgraph.Resource

// FetchCatalog walks every user on every network through api,
// retrying each call under retry, and assembles the full remote
// resource catalog: profiles, owned/created/annotated streams,
// container descriptions and container feeds. Containers are
// discovered three ways — the known list (the caller's installed
// containers, so a group that lost all members and content keeps its
// description fetchable), user memberships, and the Container field
// of every fetched resource — and fetched once each.
//
// Any call that still fails after retries aborts the whole fetch with
// an error: a partial catalog must never be diffed, because every
// resource the failed calls would have returned would be misread as
// deleted.
func FetchCatalog(api faults.API, retry *resilience.Retryer, known []socialgraph.ContainerID) (Catalog, error) {
	seen := make(map[socialgraph.ContainerID]bool)
	var containers []socialgraph.ContainerID
	discover := func(c socialgraph.ContainerID) {
		if c != socialgraph.NoContainer && !seen[c] {
			seen[c] = true
			containers = append(containers, c)
		}
	}
	for _, c := range known {
		discover(c)
	}
	cat := make(Catalog)
	add := func(r socialgraph.Resource) {
		cat[r.ID] = r
		discover(r.Container)
	}
	for _, u := range api.Users() {
		for _, net := range socialgraph.Networks {
			var view *faults.UserView
			err := retry.Do(func() error {
				v, err := api.FetchUser(u.ID, net)
				if err == nil {
					view = v
				}
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("ingest: fetch user %d on %s: %w", u.ID, net, err)
			}
			if view.Profile != nil {
				add(*view.Profile)
			}
			for _, r := range view.Owned {
				add(r)
			}
			for _, r := range view.Created {
				add(r)
			}
			for _, r := range view.Annotated {
				add(r)
			}
			for _, c := range view.Containers {
				discover(c)
			}
		}
	}
	// The loop range grows as container feeds surface resources in
	// further containers.
	for i := 0; i < len(containers); i++ {
		c := containers[i]
		var view *faults.ContainerView
		err := retry.Do(func() error {
			v, err := api.FetchContainer(c, 0)
			if err == nil {
				view = v
			}
			return err
		})
		if err != nil {
			return nil, fmt.Errorf("ingest: fetch container %d: %w", c, err)
		}
		add(view.Desc)
		for _, r := range view.Feed {
			add(r)
		}
	}
	return cat, nil
}

// Delta is the classified difference between the installed graph and
// a remote catalog. Adds and Updates carry the full remote records;
// Removes carry the IDs of installed resources the remote no longer
// serves. All three are sorted by ID, so equal (graph, catalog) pairs
// always produce the identical delta.
type Delta struct {
	Adds    []socialgraph.Resource
	Updates []socialgraph.Resource
	Removes []socialgraph.ResourceID
}

// Empty reports whether the delta carries no changes.
func (d Delta) Empty() bool {
	return len(d.Adds) == 0 && len(d.Updates) == 0 && len(d.Removes) == 0
}

// Diff classifies a remote catalog against the installed graph:
//
//   - catalog resources beyond the installed ID range are Adds;
//   - installed live resources absent from the catalog are Removes
//     (the remote deleted them — its API stops serving tombstones);
//   - installed live resources whose catalog record fingerprints
//     differently are Updates.
//
// Structural fields (network, kind, creator, container) are immutable
// on real platforms; an update that changes one means the remote is
// not the same-ID replica the ingest contract assumes, and Diff
// reports it as an error rather than guessing. Profiles and container
// descriptions missing from the catalog are likewise errors — the
// platforms never delete them, so their absence marks an incomplete
// catalog that must not drive deletions.
func Diff(g *socialgraph.Graph, cat Catalog) (Delta, error) {
	var d Delta
	n := g.NumResources()
	for i := 0; i < n; i++ {
		id := socialgraph.ResourceID(i)
		remote, inCat := cat[id]
		if g.ResourceDeleted(id) {
			if inCat {
				return Delta{}, fmt.Errorf("ingest: remote resurrected deleted resource %d", id)
			}
			continue
		}
		local := g.Resource(id)
		if !inCat {
			if local.Kind == socialgraph.KindProfile || local.Kind == socialgraph.KindContainerDesc {
				return Delta{}, fmt.Errorf("ingest: %s resource %d missing from catalog (incomplete fetch?)", local.Kind, id)
			}
			d.Removes = append(d.Removes, id)
			continue
		}
		if Fingerprint(remote) == Fingerprint(local) {
			continue
		}
		if remote.Network != local.Network || remote.Kind != local.Kind ||
			remote.Creator != local.Creator || remote.Container != local.Container {
			return Delta{}, fmt.Errorf("ingest: resource %d changed structure (%s/%s by %d → %s/%s by %d)",
				id, local.Network, local.Kind, local.Creator, remote.Network, remote.Kind, remote.Creator)
		}
		d.Updates = append(d.Updates, remote)
	}
	for id, r := range cat {
		if int(id) >= n {
			d.Adds = append(d.Adds, r)
		}
	}
	sort.Slice(d.Adds, func(i, j int) bool { return d.Adds[i].ID < d.Adds[j].ID })
	sort.Slice(d.Updates, func(i, j int) bool { return d.Updates[i].ID < d.Updates[j].ID })
	sort.Slice(d.Removes, func(i, j int) bool { return d.Removes[i] < d.Removes[j] })
	return d, nil
}
