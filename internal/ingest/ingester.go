package ingest

import (
	"context"
	"fmt"
	"log/slog"
	"strconv"
	"sync"
	"time"

	"expertfind/internal/analysis"
	"expertfind/internal/core"
	"expertfind/internal/faults"
	"expertfind/internal/index"
	"expertfind/internal/kb"
	"expertfind/internal/resilience"
	"expertfind/internal/socialgraph"
	"expertfind/internal/telemetry"
)

// Config assembles an Ingester around an installed serving stack.
type Config struct {
	// API is the remote platform surface to re-visit.
	API faults.API
	// Graph is the installed corpus: a same-ID replica of the remote
	// graph behind API.
	Graph *socialgraph.Graph
	// Index is the live index over Graph's analyzable resources;
	// deltas are applied to it atomically. Both the in-memory sharded
	// index (*index.Sharded) and the disk-backed segment store
	// (*index.Store, whose deltas land in the mutable memtable and
	// reach disk at the next seal) implement the surface.
	Index DeltaIndex
	// Pipe is the analysis pipeline the index was built with.
	Pipe *analysis.Pipeline
	// Finders are the query frontends serving over Graph and Index.
	// Each one's traversal cache is invalidated after a delta, and its
	// group fingerprint participates in scoped cache invalidation.
	Finders []*core.Finder
	// Cache, when set, receives scoped invalidations: only the entries
	// an applied delta can change are dropped (see invalidate).
	Cache ScopedCache
	// Retry is the per-call fetch retry policy; zero selects
	// resilience.DefaultRetry.
	Retry resilience.RetryPolicy
	// Clock supplies retry backoff sleeps; nil means real time.
	Clock *resilience.Clock
	// Logger receives per-round summaries; nil disables logging.
	Logger *slog.Logger
	// Tracer, when set, records one trace per round with
	// fetch/diff/apply/invalidate spans.
	Tracer *telemetry.Tracer
}

// DeltaIndex is the live-index surface an ingest delta applies to:
// removes, updates and adds land as one atomic step.
type DeltaIndex interface {
	ApplyDelta(index.Delta)
}

// ScopedCache is the invalidation surface the ingester drives:
// internal/rescache.Cache implements it.
type ScopedCache interface {
	InvalidateMatching(pred func(core.CacheKey) bool) int
}

// Status is a cumulative snapshot of an ingester's work, served by
// the /v1/ingest/status endpoint.
type Status struct {
	// Rounds counts completed rounds, empty deltas included.
	Rounds int `json:"rounds"`
	// Aborts counts rounds abandoned whole (incomplete fetch or
	// inconsistent catalog); an aborted round changes nothing.
	Aborts int `json:"aborts"`
	// Adds, Updates and Removes count resources applied across all
	// completed rounds.
	Adds    int `json:"adds"`
	Updates int `json:"updates"`
	Removes int `json:"removes"`
	// CacheDropped counts result-cache entries dropped by scoped
	// invalidations; FullPurges counts rounds that had to drop every
	// entry because the delta changed collection statistics.
	CacheDropped int `json:"cache_dropped"`
	FullPurges   int `json:"full_purges"`
	// LastError is the most recent abort reason, empty after a
	// successful round.
	LastError string `json:"last_error,omitempty"`
	// Last describes the most recent completed round.
	Last RoundReport `json:"last_round"`
}

// RoundReport describes one completed ingest round.
type RoundReport struct {
	Catalog      int           `json:"catalog"`
	Adds         int           `json:"adds"`
	Updates      int           `json:"updates"`
	Removes      int           `json:"removes"`
	CacheDropped int           `json:"cache_dropped"`
	FullPurge    bool          `json:"full_purge"`
	Duration     time.Duration `json:"duration_ns"`
}

// Ingester re-visits the remote platforms and keeps the installed
// graph, index and caches in sync with what they serve. RunOnce is
// safe to call from one goroutine at a time; queries may run
// concurrently throughout.
type Ingester struct {
	cfg     Config
	retryer *resilience.Retryer

	mu     sync.Mutex
	status Status
}

// New assembles an ingester. API, Graph, Index and Pipe are required.
func New(cfg Config) *Ingester {
	if cfg.API == nil || cfg.Graph == nil || cfg.Index == nil || cfg.Pipe == nil {
		panic("ingest: Config requires API, Graph, Index and Pipe")
	}
	if !cfg.Retry.Enabled() {
		cfg.Retry = resilience.DefaultRetry
	}
	return &Ingester{
		cfg:     cfg,
		retryer: &resilience.Retryer{Policy: cfg.Retry, Clock: cfg.Clock},
	}
}

// Status returns a snapshot of the cumulative counters.
func (ing *Ingester) Status() Status {
	ing.mu.Lock()
	defer ing.mu.Unlock()
	return ing.status
}

// RunOnce performs one full ingest round: fetch the remote catalog,
// diff it against the installed graph, apply the delta to graph and
// index, and invalidate exactly the cache state the delta can change.
// A round that cannot complete its fetch aborts whole and changes
// nothing. The returned report describes what was applied.
func (ing *Ingester) RunOnce(ctx context.Context) (RoundReport, error) {
	start := time.Now()
	var tr *telemetry.Trace
	if ing.cfg.Tracer != nil {
		_, tr = ing.cfg.Tracer.Start(ctx, "ingest-round", "")
		defer tr.Finish()
	}

	sp := tr.StartSpan("ingest_fetch")
	known := make([]socialgraph.ContainerID, ing.cfg.Graph.NumContainers())
	for i := range known {
		known[i] = socialgraph.ContainerID(i)
	}
	cat, err := FetchCatalog(ing.cfg.API, ing.retryer, known)
	sp.End()
	if err != nil {
		return ing.abort(tr, err)
	}
	mCatalog.Set(float64(len(cat)))

	sp = tr.StartSpan("ingest_diff")
	delta, err := Diff(ing.cfg.Graph, cat)
	sp.End()
	if err != nil {
		return ing.abort(tr, err)
	}

	rep := RoundReport{
		Catalog: len(cat),
		Adds:    len(delta.Adds),
		Updates: len(delta.Updates),
		Removes: len(delta.Removes),
	}
	if !delta.Empty() {
		sp = tr.StartSpan("ingest_apply")
		plan, err := ing.planApply(delta)
		if err != nil {
			sp.End()
			return ing.abort(tr, err)
		}
		ing.apply(delta, plan)
		sp.End()

		sp = tr.StartSpan("ingest_invalidate")
		rep.CacheDropped, rep.FullPurge = ing.invalidate(plan)
		sp.End()
	}
	rep.Duration = time.Since(start)

	mRounds.Inc()
	mAdds.Add(float64(rep.Adds))
	mUpdates.Add(float64(rep.Updates))
	mRemoves.Add(float64(rep.Removes))
	if rep.FullPurge {
		mFullPurges.Inc()
	}
	mRoundSeconds.Observe(rep.Duration.Seconds())

	ing.mu.Lock()
	ing.status.Rounds++
	ing.status.Adds += rep.Adds
	ing.status.Updates += rep.Updates
	ing.status.Removes += rep.Removes
	ing.status.CacheDropped += rep.CacheDropped
	if rep.FullPurge {
		ing.status.FullPurges++
	}
	ing.status.LastError = ""
	ing.status.Last = rep
	ing.mu.Unlock()

	tr.SetAttr("adds", strconv.Itoa(rep.Adds))
	tr.SetAttr("updates", strconv.Itoa(rep.Updates))
	tr.SetAttr("removes", strconv.Itoa(rep.Removes))
	if ing.cfg.Logger != nil {
		ing.cfg.Logger.Info("ingest round",
			"catalog", rep.Catalog,
			"adds", rep.Adds, "updates", rep.Updates, "removes", rep.Removes,
			"cache_dropped", rep.CacheDropped, "full_purge", rep.FullPurge,
			"duration", rep.Duration)
	}
	return rep, nil
}

func (ing *Ingester) abort(tr *telemetry.Trace, err error) (RoundReport, error) {
	mAborts.Inc()
	tr.Keep("ingest-abort")
	tr.SetAttr("error", err.Error())
	ing.mu.Lock()
	ing.status.Aborts++
	ing.status.LastError = err.Error()
	ing.mu.Unlock()
	if ing.cfg.Logger != nil {
		ing.cfg.Logger.Warn("ingest round aborted", "error", err)
	}
	return RoundReport{}, err
}

// dim encodes one index dimension — a stemmed term or a knowledge-base
// entity — as a string key for invalidation set arithmetic.
func termDim(t string) string        { return "t:" + t }
func entityDim(e kb.EntityID) string { return "e:" + strconv.Itoa(int(e)) }
func analyzedDims(a analysis.Analyzed) []string {
	out := make([]string, 0, len(a.Terms)+len(a.Entities))
	for t := range a.Terms {
		out = append(out, termDim(t))
	}
	for e := range a.Entities {
		out = append(out, entityDim(e))
	}
	return out
}

// applyPlan is everything planApply precomputes from the pre-mutation
// graph: the index delta, the add validation, and the invalidation
// inputs.
type applyPlan struct {
	idx index.Delta
	// fillers are tombstone placeholders for remote IDs that were
	// created and deleted between rounds: the installed graph appends
	// and immediately removes a resource so positional IDs stay
	// aligned with the remote's.
	fillers map[socialgraph.ResourceID]socialgraph.Resource
	// nChanged reports whether the indexed document count changes:
	// every IRF weight moves with N, so no cached result survives.
	nChanged bool
	// affectedDims are the dimensions whose posting lists change;
	// dfChangedDims is the subset whose document frequency changes
	// (their query weights move for every cached need that uses them).
	affectedDims  map[string]bool
	dfChangedDims map[string]bool
	// touchedDocs are the updated documents whose postings change —
	// the docs whose reachability decides which groups are affected.
	touchedDocs []socialgraph.ResourceID
}

// planApply validates the delta against the installed graph and
// precomputes the index delta and invalidation inputs, reading the
// pre-mutation state. It performs no mutation, so an invalid delta
// aborts the round with the graph untouched.
func (ing *Ingester) planApply(d Delta) (*applyPlan, error) {
	g, pipe := ing.cfg.Graph, ing.cfg.Pipe
	plan := &applyPlan{
		fillers:       make(map[socialgraph.ResourceID]socialgraph.Resource),
		affectedDims:  make(map[string]bool),
		dfChangedDims: make(map[string]bool),
	}
	dfNet := make(map[string]int)

	for _, id := range d.Removes {
		r := g.Resource(id)
		if a, ok := pipe.Analyze(r.Text, r.URLs); ok {
			plan.idx.Removes = append(plan.idx.Removes, index.Doc{ID: id, A: a})
		}
	}
	for _, r := range d.Updates {
		old := g.Resource(r.ID)
		oldA, oldOK := pipe.Analyze(old.Text, old.URLs)
		newA, newOK := pipe.Analyze(r.Text, r.URLs)
		switch {
		case oldOK && newOK:
			plan.idx.Updates = append(plan.idx.Updates, index.DocUpdate{ID: r.ID, Old: oldA, New: newA})
			if dims := postingDiff(oldA, newA, dfNet); len(dims) > 0 {
				for _, dim := range dims {
					plan.affectedDims[dim] = true
				}
				plan.touchedDocs = append(plan.touchedDocs, r.ID)
			}
		case oldOK:
			plan.idx.Removes = append(plan.idx.Removes, index.Doc{ID: r.ID, A: oldA})
		case newOK:
			plan.idx.Adds = append(plan.idx.Adds, index.Doc{ID: r.ID, A: newA})
		}
	}

	numUsers, numContainers := g.NumUsers(), g.NumContainers()
	expect := socialgraph.ResourceID(g.NumResources())
	for _, r := range d.Adds {
		if r.ID < expect {
			return nil, fmt.Errorf("ingest: add %d out of order (expected ≥ %d)", r.ID, expect)
		}
		for expect < r.ID {
			// A remote ID we never saw alive: created and deleted
			// between rounds. Reserve the slot with a filler tombstone
			// so subsequent IDs stay aligned.
			plan.fillers[expect] = socialgraph.Resource{
				Network: r.Network, Kind: socialgraph.KindPost,
				Creator: r.Creator, Container: socialgraph.NoContainer,
			}
			expect++
		}
		if int(r.Creator) < 0 || int(r.Creator) >= numUsers {
			return nil, fmt.Errorf("ingest: add %d has unknown creator %d", r.ID, r.Creator)
		}
		switch {
		case r.Kind == socialgraph.KindContainerDesc:
			return nil, fmt.Errorf("ingest: add %d is a container description (container creation is outside the delta protocol)", r.ID)
		case r.Kind == socialgraph.KindProfile:
			if r.Container != socialgraph.NoContainer {
				return nil, fmt.Errorf("ingest: profile add %d inside container %d", r.ID, r.Container)
			}
			if _, ok := g.Profile(r.Creator, r.Network); ok {
				return nil, fmt.Errorf("ingest: profile add %d for user %d on %s, which already has one", r.ID, r.Creator, r.Network)
			}
		case r.Container != socialgraph.NoContainer:
			if int(r.Container) < 0 || int(r.Container) >= numContainers {
				return nil, fmt.Errorf("ingest: add %d references unknown container %d", r.ID, r.Container)
			}
			if net := g.Container(r.Container).Network; net != r.Network {
				return nil, fmt.Errorf("ingest: add %d on %s inside %s container %d", r.ID, r.Network, net, r.Container)
			}
		}
		if a, ok := pipe.Analyze(r.Text, r.URLs); ok {
			plan.idx.Adds = append(plan.idx.Adds, index.Doc{ID: r.ID, A: a})
		}
		expect++
	}

	plan.nChanged = len(plan.idx.Adds) > 0 || len(plan.idx.Removes) > 0
	for dim, net := range dfNet {
		if net != 0 {
			plan.dfChangedDims[dim] = true
		}
	}
	return plan, nil
}

// postingDiff returns the dimensions whose posting for this document
// differs between old and new, and accumulates each dimension's net
// document-frequency movement into dfNet (+1 gained, −1 lost; a tf or
// dScore change alone moves the posting but not the df).
func postingDiff(old, new analysis.Analyzed, dfNet map[string]int) []string {
	var dims []string
	for t, tf := range old.Terms {
		ntf, ok := new.Terms[t]
		if !ok {
			dfNet[termDim(t)]--
			dims = append(dims, termDim(t))
		} else if ntf != tf {
			dims = append(dims, termDim(t))
		}
	}
	for t := range new.Terms {
		if _, ok := old.Terms[t]; !ok {
			dfNet[termDim(t)]++
			dims = append(dims, termDim(t))
		}
	}
	for e, st := range old.Entities {
		nst, ok := new.Entities[e]
		if !ok {
			dfNet[entityDim(e)]--
			dims = append(dims, entityDim(e))
		} else if nst != st {
			dims = append(dims, entityDim(e))
		}
	}
	for e := range new.Entities {
		if _, ok := old.Entities[e]; !ok {
			dfNet[entityDim(e)]++
			dims = append(dims, entityDim(e))
		}
	}
	return dims
}

// apply mutates the installed graph, then flips the index atomically,
// then drops the finders' traversal caches. A query overlapping an
// update-only round always observes either the complete pre-delta or
// the complete post-delta ranking (updates leave reachability alone
// and ApplyDelta is atomic). A query overlapping an add/remove round
// may additionally observe the post-delta corpus before the new
// resources are attributed to candidates — never torn per-document
// state.
func (ing *Ingester) apply(d Delta, plan *applyPlan) {
	g := ing.cfg.Graph
	for _, id := range d.Removes {
		g.RemoveResource(id)
	}
	for _, r := range d.Updates {
		g.SetResourceText(r.ID, r.Text, r.URLs...)
	}
	next := socialgraph.ResourceID(g.NumResources())
	for _, r := range d.Adds {
		for next < r.ID {
			f := plan.fillers[next]
			got := g.AddResource(f.Network, f.Kind, f.Creator, "")
			g.RemoveResource(got)
			next++
		}
		var got socialgraph.ResourceID
		switch {
		case r.Kind == socialgraph.KindProfile:
			got = g.SetProfile(r.Creator, r.Network, r.Text, r.URLs...)
		case r.Container != socialgraph.NoContainer:
			got = g.AddContainedResource(r.Kind, r.Container, r.Creator, r.Text, r.URLs...)
		default:
			got = g.AddResource(r.Network, r.Kind, r.Creator, r.Text, r.URLs...)
		}
		if got != r.ID {
			panic(fmt.Sprintf("ingest: add landed on id %d, want %d (planApply must pre-validate alignment)", got, r.ID))
		}
		next++
	}
	ing.cfg.Index.ApplyDelta(plan.idx)
	for _, f := range ing.cfg.Finders {
		f.InvalidateTraversal()
	}
}

// widestTraversal over-approximates every traversal a finder can be
// queried with: any resource unreachable under it is unreachable
// under any TraversalOptions.
var widestTraversal = socialgraph.TraversalOptions{MaxDistance: 2, IncludeFriends: true}

// invalidate drops exactly the cached results the applied delta can
// change, and reports (entries dropped, whether the whole cache was
// purged).
//
// Soundness, from the scoring model (Eq. 1–3): a cached ranking for
// need q over group G is a function of (N, df of q's dims, the
// posting lists of q's dims, G's reachability map). Therefore:
//
//   - if N changed, every IRF weight moved: purge everything;
//   - else if q's dims miss every changed posting list, nothing the
//     ranking reads moved (update-only deltas leave reachability
//     intact): keep;
//   - else if q's dims hit a dimension whose df moved, q's query
//     weights moved: drop regardless of group;
//   - else the damage is confined to the updated documents' scores,
//     which only surface for groups that can reach one of them: drop
//     iff G reaches a touched document under the widest traversal
//     (an over-approximation of every queryable traversal), or G is
//     not one of the configured finders' groups (unprovable: drop).
func (ing *Ingester) invalidate(plan *applyPlan) (dropped int, fullPurge bool) {
	cache := ing.cfg.Cache
	if cache == nil {
		return 0, false
	}
	if plan.nChanged {
		return cache.InvalidateMatching(func(core.CacheKey) bool { return true }), true
	}
	if len(plan.affectedDims) == 0 {
		return 0, false
	}

	groupTouched := make(map[string]bool, len(ing.cfg.Finders))
	for _, f := range ing.cfg.Finders {
		rcm := f.Graph().ResourceCandidateMap(f.Candidates(), widestTraversal)
		touched := false
		for _, id := range plan.touchedDocs {
			if _, ok := rcm[id]; ok {
				touched = true
				break
			}
		}
		groupTouched[f.GroupFingerprint()] = touched
	}

	needDims := make(map[string][]string)
	dimsOf := func(need string) []string {
		if dims, ok := needDims[need]; ok {
			return dims
		}
		dims := analyzedDims(ing.cfg.Pipe.AnalyzeNeed(need))
		needDims[need] = dims
		return dims
	}
	hits := func(dims []string, set map[string]bool) bool {
		for _, d := range dims {
			if set[d] {
				return true
			}
		}
		return false
	}
	return cache.InvalidateMatching(func(k core.CacheKey) bool {
		dims := dimsOf(k.Need)
		if !hits(dims, plan.affectedDims) {
			return false
		}
		if hits(dims, plan.dfChangedDims) {
			return true
		}
		touched, known := groupTouched[k.Group]
		return !known || touched
	}), false
}
