package ingest

import (
	"context"
	"reflect"
	"testing"

	"expertfind/internal/analysis"
	"expertfind/internal/corpusio"
	"expertfind/internal/socialgraph"
)

// fuzzWords is the vocabulary fuzz ops draw text from. It mixes
// clearly English phrases with short fragments, so generated
// resources land on both sides of the analysis language filter and
// every ok-flag combination of the update legs gets exercised.
var fuzzWords = []string{
	"swimming training at the pool",
	"guitar solo recording session",
	"copper wire",
	"the football match was great to watch",
	"php code review notes for the team",
	"milan",
	"a long wave of atoms in the machine",
	"il calcio è bellissimo stasera davvero",
	"train",
	"we played the new game all night long",
}

func fuzzText(x, y byte) string {
	s := fuzzWords[int(x)%len(fuzzWords)]
	if y%3 == 0 {
		s += " " + fuzzWords[int(y)%len(fuzzWords)]
	}
	return s
}

// applyFuzzOps interprets ops as remote-platform churn, three bytes
// per operation: adds (standalone and contained), in-place text
// updates, and removes of non-profile, non-description resources.
func applyFuzzOps(g *socialgraph.Graph, ops []byte) {
	for len(ops) >= 3 {
		op, x, y := ops[0], ops[1], ops[2]
		ops = ops[3:]
		switch op % 4 {
		case 0:
			creator := socialgraph.UserID(int(x) % g.NumUsers())
			net := socialgraph.Networks[int(y)%len(socialgraph.Networks)]
			g.AddResource(net, kindFor(net), creator, fuzzText(x, y))
		case 1:
			if g.NumContainers() == 0 {
				continue
			}
			c := socialgraph.ContainerID(int(x) % g.NumContainers())
			creator := socialgraph.UserID(int(y) % g.NumUsers())
			g.AddContainedResource(socialgraph.KindGroupPost, c, creator, fuzzText(y, x))
		case 2:
			live := liveIDs(g, false)
			if len(live) == 0 {
				continue
			}
			id := live[int(x)%len(live)]
			r := g.Resource(id)
			g.SetResourceText(id, fuzzText(y, x), r.URLs...)
		case 3:
			removable := liveIDs(g, true)
			if len(removable) == 0 {
				continue
			}
			g.RemoveResource(removable[int(x)%len(removable)])
		}
	}
}

func liveIDs(g *socialgraph.Graph, removableOnly bool) []socialgraph.ResourceID {
	var out []socialgraph.ResourceID
	for i := 0; i < g.NumResources(); i++ {
		id := socialgraph.ResourceID(i)
		if g.ResourceDeleted(id) {
			continue
		}
		if removableOnly {
			switch g.Resource(id).Kind {
			case socialgraph.KindProfile, socialgraph.KindContainerDesc:
				continue
			}
		}
		out = append(out, id)
	}
	return out
}

// FuzzCorpusDiff is the diff round-trip property: for any churn
// sequence applied to the remote replica, fetching and ingesting the
// delta must make the installed graph exactly equal to the remote one
// (records, tombstones, profile map effects), and the delta-absorbed
// index must serialize byte-identically to cold rebuilds of both —
// so deletes leave no orphaned postings or entities behind.
func FuzzCorpusDiff(f *testing.F) {
	f.Add(int64(1), []byte("\x00\x01\x02\x02\x03\x04\x03\x00\x00"))
	f.Add(int64(7), []byte("\x01\x02\x01\x02\x05\x07\x03\x02\x00\x00\x09\x01\x02\x00\x03"))
	f.Add(int64(42), []byte("\x03\x00\x00\x03\x01\x00\x00\x04\x02\x02\x01\x08"))
	f.Fuzz(func(t *testing.T, seed int64, ops []byte) {
		const shards = 3
		remote, installed := buildFixture(), buildFixture()
		// A seeded churn round first, so the op stream mutates a
		// corpus that already diverged in interesting ways.
		NewChurn(remote.g, ChurnConfig{Seed: seed, Adds: 2, Updates: 2, Removes: 1}).Round()

		pipe := analysis.New(analysis.Options{})
		ix, _ := corpusio.BuildShardedIndex(installed.g, pipe, shards)
		ing := New(Config{API: reliableAPI(remote.g), Graph: installed.g, Index: ix, Pipe: pipe})

		half := len(ops) / 2
		for _, chunk := range [][]byte{ops[:half], ops[half:]} {
			applyFuzzOps(remote.g, chunk)
			if _, err := ing.RunOnce(context.Background()); err != nil {
				t.Fatalf("RunOnce: %v", err)
			}
			assertGraphsEqual(t, installed.g, remote.g)
			assertIndexMatchesRebuild(t, "vs installed rebuild", ix, installed.g, pipe, shards)
			assertIndexMatchesRebuild(t, "vs remote rebuild", ix, remote.g, pipe, shards)
		}

		// A final no-op round must diff empty: ingest converged.
		rep, err := ing.RunOnce(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if rep.Adds+rep.Updates+rep.Removes != 0 {
			t.Fatalf("converged corpus produced a non-empty delta: %+v", rep)
		}
		// Profile maps must have converged too (profiles are updated in
		// place, never added by the ops above, but SetProfile routing is
		// exercised by the churn round).
		for _, u := range remote.g.Users() {
			for _, net := range socialgraph.Networks {
				rr, rok := remote.g.Profile(u.ID, net)
				lr, lok := installed.g.Profile(u.ID, net)
				if rok != lok || (rok && !reflect.DeepEqual(rr, lr)) {
					t.Fatalf("profile map diverged for user %d on %s", u.ID, net)
				}
			}
		}
	})
}
