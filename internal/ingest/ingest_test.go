package ingest

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"expertfind/internal/analysis"
	"expertfind/internal/core"
	"expertfind/internal/corpusio"
	"expertfind/internal/dataset"
	"expertfind/internal/faults"
	"expertfind/internal/index"
	"expertfind/internal/rescache"
	"expertfind/internal/resilience"
	"expertfind/internal/socialgraph"
)

// fixture is a small two-pool corpus. buildFixture is deterministic,
// so calling it twice yields same-ID replicas — the ingest contract.
type fixture struct {
	g          *socialgraph.Graph
	ua, ub, uc socialgraph.UserID
	docA, docB socialgraph.ResourceID
	cont       socialgraph.ContainerID
}

func buildFixture() *fixture {
	g := socialgraph.New()
	f := &fixture{g: g}
	f.ua = g.AddUser("ann", true)
	f.ub = g.AddUser("bob", true)
	f.uc = g.AddUser("carol", false)
	g.SetProfile(f.ua, socialgraph.Twitter, "racing sports fan and commentator")
	g.SetProfile(f.ub, socialgraph.Facebook, "guitar teacher living downtown")
	g.SetProfile(f.uc, socialgraph.Facebook, "just here for the memes and chatter")
	f.docA = g.AddResource(socialgraph.Twitter, socialgraph.KindTweet, f.ua,
		"freestyle swimming training at the pool every morning")
	f.docB = g.AddResource(socialgraph.Facebook, socialgraph.KindPost, f.ub,
		"new guitar solo recorded with the band last night")
	f.cont = g.AddContainer(socialgraph.Facebook, socialgraph.ContainerGroup, f.uc,
		"music makers", "a group about guitar music and recording sessions")
	g.RelatesTo(f.uc, f.cont)
	g.AddContainedResource(socialgraph.KindGroupPost, f.cont, f.uc,
		"looking for a drummer to join our weekend sessions")
	g.AddResource(socialgraph.Facebook, socialgraph.KindPost, f.uc,
		"what a great match last night, incredible game to watch")
	return f
}

// system bundles an installed serving stack over a replica graph.
type system struct {
	g      *socialgraph.Graph
	pipe   *analysis.Pipeline
	ix     *index.Sharded
	finder *core.Finder
}

func buildSystem(g *socialgraph.Graph, shards int, candidates []socialgraph.UserID) *system {
	pipe := analysis.New(analysis.Options{})
	ix, _ := corpusio.BuildShardedIndex(g, pipe, shards)
	return &system{g: g, pipe: pipe, ix: ix, finder: core.NewFinder(g, ix, pipe, candidates)}
}

func reliableAPI(g *socialgraph.Graph) faults.API {
	return faults.Wrap(g, faults.Config{})
}

func noRetry() *resilience.Retryer {
	return &resilience.Retryer{Policy: resilience.RetryPolicy{MaxAttempts: 1}}
}

func TestFingerprint(t *testing.T) {
	base := socialgraph.Resource{
		Network: socialgraph.Twitter, Kind: socialgraph.KindTweet,
		Creator: 3, Container: socialgraph.NoContainer,
		Text: "hello world", URLs: []string{"http://a", "http://b"},
	}
	if Fingerprint(base) != Fingerprint(base) {
		t.Fatal("fingerprint not deterministic")
	}
	same := base
	same.ID = 99 // the ID must not participate
	if Fingerprint(same) != Fingerprint(base) {
		t.Error("fingerprint depends on ID")
	}
	mutations := map[string]socialgraph.Resource{
		"text":      {Network: base.Network, Kind: base.Kind, Creator: base.Creator, Container: base.Container, Text: "hello world!", URLs: base.URLs},
		"urls":      {Network: base.Network, Kind: base.Kind, Creator: base.Creator, Container: base.Container, Text: base.Text, URLs: []string{"http://a"}},
		"url-split": {Network: base.Network, Kind: base.Kind, Creator: base.Creator, Container: base.Container, Text: base.Text, URLs: []string{"http://ahttp://b"}},
		"creator":   {Network: base.Network, Kind: base.Kind, Creator: 4, Container: base.Container, Text: base.Text, URLs: base.URLs},
		"network":   {Network: socialgraph.Facebook, Kind: base.Kind, Creator: base.Creator, Container: base.Container, Text: base.Text, URLs: base.URLs},
		"kind":      {Network: base.Network, Kind: socialgraph.KindPost, Creator: base.Creator, Container: base.Container, Text: base.Text, URLs: base.URLs},
		"container": {Network: base.Network, Kind: base.Kind, Creator: base.Creator, Container: 0, Text: base.Text, URLs: base.URLs},
	}
	for name, m := range mutations {
		if Fingerprint(m) == Fingerprint(base) {
			t.Errorf("fingerprint insensitive to %s change", name)
		}
	}
}

// TestFetchCatalogComplete checks the discovery contract: one full
// fetch covers exactly the live resources of the remote graph, with
// records equal to the graph's own.
func TestFetchCatalogComplete(t *testing.T) {
	for _, g := range []*socialgraph.Graph{
		buildFixture().g,
		dataset.Generate(dataset.Config{Seed: 5, Scale: 0.05}).Graph,
	} {
		cat, err := FetchCatalog(reliableAPI(g), noRetry(), nil)
		if err != nil {
			t.Fatalf("FetchCatalog: %v", err)
		}
		for i := 0; i < g.NumResources(); i++ {
			id := socialgraph.ResourceID(i)
			r, inCat := cat[id]
			if g.ResourceDeleted(id) {
				if inCat {
					t.Errorf("deleted resource %d served in catalog", id)
				}
				continue
			}
			if !inCat {
				t.Errorf("live resource %d (%s) missing from catalog", id, g.Resource(id).Kind)
				continue
			}
			if !reflect.DeepEqual(r, g.Resource(id)) {
				t.Errorf("catalog record %d differs from graph record", id)
			}
		}
		if want := g.NumResources() - g.NumDeletedResources(); len(cat) != want {
			t.Errorf("catalog has %d resources, want %d", len(cat), want)
		}
	}
}

func TestFetchCatalogAbortsOnOutage(t *testing.T) {
	g := buildFixture().g
	api := faults.Wrap(g, faults.Config{Outages: []socialgraph.Network{socialgraph.Facebook}})
	if _, err := FetchCatalog(api, noRetry(), nil); err == nil {
		t.Fatal("FetchCatalog succeeded against a hard outage")
	}
}

func TestFetchCatalogRetriesTransients(t *testing.T) {
	g := buildFixture().g
	api := faults.Wrap(g, faults.Config{Seed: 11, TransientRate: 0.2})
	retryer := &resilience.Retryer{Policy: resilience.DefaultRetry, Clock: resilience.NewClock()}
	cat, err := FetchCatalog(api, retryer, nil)
	if err != nil {
		t.Fatalf("FetchCatalog with retries: %v", err)
	}
	if len(cat) != g.NumResources() {
		t.Errorf("catalog has %d resources, want %d", len(cat), g.NumResources())
	}
}

func TestDiffClassification(t *testing.T) {
	remote, installed := buildFixture(), buildFixture()
	remote.g.SetResourceText(remote.docA, "freestyle swimming at dawn")
	remote.g.RemoveResource(remote.docB)
	added := remote.g.AddResource(socialgraph.Twitter, socialgraph.KindTweet, remote.uc, "copper wire projects")

	cat, err := FetchCatalog(reliableAPI(remote.g), noRetry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Diff(installed.g, cat)
	if err != nil {
		t.Fatalf("Diff: %v", err)
	}
	if len(d.Adds) != 1 || d.Adds[0].ID != added {
		t.Errorf("Adds = %v, want one add of %d", d.Adds, added)
	}
	if len(d.Updates) != 1 || d.Updates[0].ID != installed.docA {
		t.Errorf("Updates = %v, want one update of %d", d.Updates, installed.docA)
	}
	if len(d.Removes) != 1 || d.Removes[0] != installed.docB {
		t.Errorf("Removes = %v, want one remove of %d", d.Removes, installed.docB)
	}

	// An identical pair diffs empty.
	cat2, _ := FetchCatalog(reliableAPI(buildFixture().g), noRetry(), nil)
	if d, err := Diff(buildFixture().g, cat2); err != nil || !d.Empty() {
		t.Errorf("identical twins diff non-empty: %+v, %v", d, err)
	}
}

func TestDiffRejectsStructuralChange(t *testing.T) {
	remote, installed := buildFixture(), buildFixture()
	cat, _ := FetchCatalog(reliableAPI(remote.g), noRetry(), nil)
	r := cat[remote.docA]
	r.Creator = remote.ub
	cat[remote.docA] = r
	if _, err := Diff(installed.g, cat); err == nil {
		t.Error("Diff accepted a creator change")
	}
}

func TestDiffRejectsMissingProfile(t *testing.T) {
	remote, installed := buildFixture(), buildFixture()
	cat, _ := FetchCatalog(reliableAPI(remote.g), noRetry(), nil)
	profA, _ := remote.g.Profile(remote.ua, socialgraph.Twitter)
	delete(cat, profA)
	if _, err := Diff(installed.g, cat); err == nil {
		t.Error("Diff accepted a catalog missing a profile")
	}
}

func TestDiffRejectsResurrection(t *testing.T) {
	remote, installed := buildFixture(), buildFixture()
	installed.g.RemoveResource(installed.docB)
	cat, _ := FetchCatalog(reliableAPI(remote.g), noRetry(), nil)
	if _, err := Diff(installed.g, cat); err == nil {
		t.Error("Diff accepted a remote record for a locally deleted resource")
	}
}

// assertGraphsEqual checks that installed has converged to exactly
// the remote state: equal tombstone sets and equal records for every
// live resource. The remote may have extra trailing slots only if all
// of them are tombstoned — resources created and deleted between
// rounds that no fetch ever observed.
func assertGraphsEqual(t *testing.T, installed, remote *socialgraph.Graph) {
	t.Helper()
	if installed.NumResources() > remote.NumResources() {
		t.Fatalf("installed has %d resource slots, remote only %d", installed.NumResources(), remote.NumResources())
	}
	for i := installed.NumResources(); i < remote.NumResources(); i++ {
		if !remote.ResourceDeleted(socialgraph.ResourceID(i)) {
			t.Fatalf("live remote resource %d beyond installed range %d", i, installed.NumResources())
		}
	}
	for i := 0; i < installed.NumResources(); i++ {
		id := socialgraph.ResourceID(i)
		if installed.ResourceDeleted(id) != remote.ResourceDeleted(id) {
			t.Fatalf("resource %d: installed deleted=%t, remote deleted=%t",
				id, installed.ResourceDeleted(id), remote.ResourceDeleted(id))
		}
		if remote.ResourceDeleted(id) {
			continue
		}
		if !reflect.DeepEqual(installed.Resource(id), remote.Resource(id)) {
			t.Fatalf("resource %d: installed record %+v differs from remote %+v",
				id, installed.Resource(id), remote.Resource(id))
		}
	}
}

// assertIndexMatchesRebuild checks the differential gate: the
// delta-absorbed index serializes byte-identically to a cold rebuild
// of the same corpus.
func assertIndexMatchesRebuild(t *testing.T, label string, live *index.Sharded, g *socialgraph.Graph, pipe *analysis.Pipeline, shards int) {
	t.Helper()
	rebuilt, _ := corpusio.BuildShardedIndex(g, pipe, shards)
	var want, got bytes.Buffer
	if _, err := rebuilt.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if _, err := live.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatalf("%s: delta-absorbed index differs from cold rebuild (%d vs %d bytes)",
			label, got.Len(), want.Len())
	}
}

// TestRunOnceDifferential is the system-level delta-vs-rebuild gate:
// churn the remote dataset, ingest the deltas, and require the
// installed graph, index and rankings to match a cold rebuild after
// every round.
func TestRunOnceDifferential(t *testing.T) {
	const shards = 3
	cfg := dataset.Config{Seed: 5, Scale: 0.05}
	remote := dataset.Generate(cfg)
	installed := dataset.Generate(cfg)
	sys := buildSystem(installed.Graph, shards, nil)
	ing := New(Config{
		API: reliableAPI(remote.Graph), Graph: installed.Graph,
		Index: sys.ix, Pipe: sys.pipe, Finders: []*core.Finder{sys.finder},
	})
	churn := NewChurn(remote.Graph, ChurnConfig{Seed: 7, Adds: 5, Updates: 12, Removes: 4})

	params := core.Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}
	for round := 1; round <= 4; round++ {
		churn.Round()
		rep, err := ing.RunOnce(context.Background())
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if rep.Adds == 0 && rep.Updates == 0 && rep.Removes == 0 {
			t.Fatalf("round %d applied an empty delta after churn", round)
		}
		assertGraphsEqual(t, installed.Graph, remote.Graph)
		assertIndexMatchesRebuild(t, "vs installed rebuild", sys.ix, installed.Graph, sys.pipe, shards)
		assertIndexMatchesRebuild(t, "vs remote rebuild", sys.ix, remote.Graph, sys.pipe, shards)

		cold := buildSystem(remote.Graph, shards, nil)
		for _, q := range installed.Queries[:6] {
			got := sys.finder.Find(q.Text, params)
			want := cold.finder.Find(q.Text, params)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d, query %q: live ranking differs from cold rebuild\nlive: %v\ncold: %v",
					round, q.Text, got, want)
			}
		}
	}
	st := ing.Status()
	if st.Rounds != 4 || st.Aborts != 0 {
		t.Errorf("status = %+v, want 4 rounds, 0 aborts", st)
	}
	if st.Adds == 0 || st.Updates == 0 || st.Removes == 0 {
		t.Errorf("status did not accumulate delta counts: %+v", st)
	}
}

// TestRunOnceAddGapFillers covers remote IDs created and deleted
// between rounds: the installed graph must reserve the slots with
// tombstones so later IDs stay aligned.
func TestRunOnceAddGapFillers(t *testing.T) {
	remote, installed := buildFixture(), buildFixture()
	sys := buildSystem(installed.g, 2, nil)
	ing := New(Config{API: reliableAPI(remote.g), Graph: installed.g, Index: sys.ix, Pipe: sys.pipe})

	ghost := remote.g.AddResource(socialgraph.Twitter, socialgraph.KindTweet, remote.ua, "deleted before anyone saw it")
	kept := remote.g.AddResource(socialgraph.Twitter, socialgraph.KindTweet, remote.ua, "swimming relay results are in")
	remote.g.RemoveResource(ghost)

	if _, err := ing.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !installed.g.ResourceDeleted(ghost) {
		t.Error("gap slot not tombstoned")
	}
	if installed.g.Resource(kept).Text != "swimming relay results are in" {
		t.Errorf("post-gap add misaligned: %+v", installed.g.Resource(kept))
	}
	assertIndexMatchesRebuild(t, "after gap fill", sys.ix, installed.g, sys.pipe, 2)
	assertIndexMatchesRebuild(t, "after gap fill vs remote", sys.ix, remote.g, sys.pipe, 2)
}

// TestRunOnceProfileAdd covers a user gaining a profile on a network
// they had none on: the add must route through SetProfile so the
// installed profile map stays aligned.
func TestRunOnceProfileAdd(t *testing.T) {
	remote, installed := buildFixture(), buildFixture()
	sys := buildSystem(installed.g, 1, nil)
	ing := New(Config{API: reliableAPI(remote.g), Graph: installed.g, Index: sys.ix, Pipe: sys.pipe})

	remote.g.SetProfile(remote.uc, socialgraph.Twitter, "occasional swimmer and full time spectator")
	if _, err := ing.RunOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	rid, ok := installed.g.Profile(installed.uc, socialgraph.Twitter)
	if !ok {
		t.Fatal("installed graph missing the added profile")
	}
	if got := installed.g.Resource(rid).Text; got != "occasional swimmer and full time spectator" {
		t.Errorf("profile text = %q", got)
	}
	assertGraphsEqual(t, installed.g, remote.g)
	assertIndexMatchesRebuild(t, "after profile add", sys.ix, installed.g, sys.pipe, 1)
}

func TestRunOnceAbortChangesNothing(t *testing.T) {
	remote, installed := buildFixture(), buildFixture()
	sys := buildSystem(installed.g, 2, nil)
	api := faults.Wrap(remote.g, faults.Config{Outages: []socialgraph.Network{socialgraph.LinkedIn}})
	ing := New(Config{API: api, Graph: installed.g, Index: sys.ix, Pipe: sys.pipe,
		Retry: resilience.RetryPolicy{MaxAttempts: 1}})

	remote.g.SetResourceText(remote.docA, "this edit must not be ingested")
	if _, err := ing.RunOnce(context.Background()); err == nil {
		t.Fatal("RunOnce succeeded through an outage")
	}
	if installed.g.Resource(installed.docA).Text == "this edit must not be ingested" {
		t.Error("aborted round leaked a mutation into the installed graph")
	}
	st := ing.Status()
	if st.Aborts != 1 || st.Rounds != 0 || st.LastError == "" {
		t.Errorf("status after abort = %+v", st)
	}
}

// TestScopedInvalidation is the cache-scoping gate: an update-only,
// df-preserving delta touching only pool A's documents must recompute
// A's affected entries byte-identically while pool B's entries — and
// A's entries for unrelated needs — keep serving hits.
func TestScopedInvalidation(t *testing.T) {
	remote, installed := buildFixture(), buildFixture()
	pipe := analysis.New(analysis.Options{})
	ix, _ := corpusio.BuildShardedIndex(installed.g, pipe, 2)
	fa := core.NewFinder(installed.g, ix, pipe, []socialgraph.UserID{installed.ua})
	fb := core.NewFinder(installed.g, ix, pipe, []socialgraph.UserID{installed.ub})
	cache := rescache.New(rescache.Options{Capacity: 64})
	view := cache.Attach()
	fa.SetResultCache(view)
	fb.SetResultCache(view)

	ing := New(Config{
		API: reliableAPI(remote.g), Graph: installed.g, Index: ix, Pipe: pipe,
		Finders: []*core.Finder{fa, fb}, Cache: cache,
	})

	ctx := context.Background()
	params := core.Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}
	warm := func(f *core.Finder, need string) []core.ExpertScore {
		t.Helper()
		if _, status := f.FindCachedContext(ctx, need, params); status != core.CacheMiss {
			t.Fatalf("first %q query: status %q, want miss", need, status)
		}
		scores, status := f.FindCachedContext(ctx, need, params)
		if status != core.CacheHit {
			t.Fatalf("second %q query: status %q, want hit", need, status)
		}
		return scores
	}
	warm(fa, "swimming training")
	warm(fa, "guitar solo")
	preB := warm(fb, "swimming training")

	// Double one word of docA: its tf moves but every term keeps its
	// document frequency, so N and all query weights are unchanged.
	remote.g.SetResourceText(remote.docA,
		"freestyle swimming swimming training at the pool every morning")
	rep, err := ing.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullPurge {
		t.Fatalf("df-preserving update forced a full purge: %+v", rep)
	}
	if rep.CacheDropped == 0 {
		t.Fatalf("scoped invalidation dropped nothing: %+v", rep)
	}

	// Pool A, affected need: must miss and recompute exactly what a
	// cold post-delta system computes.
	gotA, status := fa.FindCachedContext(ctx, "swimming training", params)
	if status != core.CacheMiss {
		t.Errorf("pool A affected need: status %q, want miss", status)
	}
	coldG := buildFixture().g
	coldG.SetResourceText(coldG.Resource(installed.docA).ID,
		"freestyle swimming swimming training at the pool every morning")
	cold := buildSystem(coldG, 2, []socialgraph.UserID{installed.ua})
	if want := cold.finder.Find("swimming training", params); !reflect.DeepEqual(gotA, want) {
		t.Errorf("recomputed pool A ranking differs from cold rebuild\ngot:  %v\nwant: %v", gotA, want)
	}

	// Pool B cannot reach docA: its entry must still be resident and
	// still correct.
	gotB, status := fb.FindCachedContext(ctx, "swimming training", params)
	if status != core.CacheHit {
		t.Errorf("pool B untouched group: status %q, want hit", status)
	}
	if !reflect.DeepEqual(gotB, preB) {
		t.Errorf("pool B hit changed value across delta")
	}

	// Pool A, unrelated need: dims disjoint from the delta, must hit.
	if _, status := fa.FindCachedContext(ctx, "guitar solo", params); status != core.CacheHit {
		t.Errorf("pool A unrelated need: status %q, want hit", status)
	}
}

// TestFullPurgeOnCountChange: any add or remove moves N and with it
// every IRF weight, so the whole cache must go.
func TestFullPurgeOnCountChange(t *testing.T) {
	remote, installed := buildFixture(), buildFixture()
	pipe := analysis.New(analysis.Options{})
	ix, _ := corpusio.BuildShardedIndex(installed.g, pipe, 2)
	fa := core.NewFinder(installed.g, ix, pipe, nil)
	cache := rescache.New(rescache.Options{Capacity: 64})
	fa.SetResultCache(cache.Attach())
	ing := New(Config{
		API: reliableAPI(remote.g), Graph: installed.g, Index: ix, Pipe: pipe,
		Finders: []*core.Finder{fa}, Cache: cache,
	})

	ctx := context.Background()
	params := core.Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}
	fa.FindCachedContext(ctx, "guitar solo", params)
	if cache.Len() == 0 {
		t.Fatal("warmup stored nothing")
	}
	remote.g.AddResource(socialgraph.Facebook, socialgraph.KindPost, remote.uc,
		"brand new post about cooking pasta at home")
	rep, err := ing.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FullPurge {
		t.Errorf("add did not force a full purge: %+v", rep)
	}
	if cache.Len() != 0 {
		t.Errorf("cache still holds %d entries after a count change", cache.Len())
	}
	if _, status := fa.FindCachedContext(ctx, "guitar solo", params); status != core.CacheMiss {
		t.Errorf("post-purge query: status %q, want miss", status)
	}
}

func TestChurnDeterminismAndEligibility(t *testing.T) {
	a := buildFixture()
	b := buildFixture()
	ca := NewChurn(a.g, ChurnConfig{Seed: 3, Adds: 2, Updates: 3, Removes: 1})
	cb := NewChurn(b.g, ChurnConfig{Seed: 3, Adds: 2, Updates: 3, Removes: 1})
	for round := 0; round < 3; round++ {
		sa, sb := ca.Round(), cb.Round()
		if sa != sb {
			t.Fatalf("round %d: stats diverge: %+v vs %+v", round, sa, sb)
		}
		assertGraphsEqual(t, a.g, b.g)
	}
	for i := 0; i < a.g.NumResources(); i++ {
		id := socialgraph.ResourceID(i)
		if a.g.ResourceDeleted(id) {
			if k := a.g.Resource(id).Kind; k == socialgraph.KindProfile || k == socialgraph.KindContainerDesc {
				t.Errorf("churn removed a %s resource", k)
			}
		}
	}
}

func TestChurnUpdateOnlyPreservesCount(t *testing.T) {
	f := buildFixture()
	before := f.g.NumResources()
	c := NewChurn(f.g, ChurnConfig{Seed: 9, Updates: 5})
	st := c.Round()
	if st.Adds != 0 || st.Removes != 0 || st.Updates != 5 {
		t.Errorf("update-only round did %+v", st)
	}
	if f.g.NumResources() != before || f.g.NumDeletedResources() != 0 {
		t.Error("update-only churn changed the resource population")
	}
}
