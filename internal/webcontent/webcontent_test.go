package webcontent

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTripRecoverMainContent(t *testing.T) {
	w := NewWeb()
	main := "Copper is an excellent electrical conductor because its atoms have a free electron.\n" +
		"The conductivity of copper is second only to silver among pure metals."
	w.AddPage("https://science.example.com/copper", "Why copper conducts", main)

	got, ok := w.Extract("https://science.example.com/copper")
	if !ok {
		t.Fatal("Extract: page not found")
	}
	if !strings.Contains(got, "free electron") || !strings.Contains(got, "second only to silver") {
		t.Errorf("main content lost:\n%s", got)
	}
	if !strings.Contains(got, "Why copper conducts") {
		t.Errorf("title lost:\n%s", got)
	}
	for _, boiler := range []string{"Privacy policy", "Sign up", "Trending", "RSS feed", "Copyright"} {
		if strings.Contains(got, boiler) {
			t.Errorf("boilerplate %q survived extraction:\n%s", boiler, got)
		}
	}
}

func TestExtractUnknownURL(t *testing.T) {
	w := NewWeb()
	if _, ok := w.Extract("https://nowhere.example.com/"); ok {
		t.Error("Extract of unknown URL succeeded")
	}
	if _, ok := w.Render("https://nowhere.example.com/"); ok {
		t.Error("Render of unknown URL succeeded")
	}
}

func TestAddPageReplacesAndLen(t *testing.T) {
	w := NewWeb()
	w.AddPage("u", "t1", "first body text that is long enough to be kept by the extractor")
	w.AddPage("u", "t2", "second body text that is long enough to be kept by the extractor")
	if w.Len() != 1 {
		t.Fatalf("Len = %d, want 1", w.Len())
	}
	got, _ := w.Extract("u")
	if !strings.Contains(got, "second body") {
		t.Errorf("page not replaced: %s", got)
	}
}

func TestExtractMainContentDropsScriptsAndStyles(t *testing.T) {
	html := `<html><body><script>var x = "tracking code here";</script>
<style>.a { color: red }</style>
<p>The actual article text talks about swimming training techniques in detail.</p>
</body></html>`
	got := ExtractMainContent(html)
	if strings.Contains(got, "tracking") || strings.Contains(got, "color") {
		t.Errorf("script/style leaked: %s", got)
	}
	if !strings.Contains(got, "swimming training") {
		t.Errorf("content lost: %s", got)
	}
}

func TestExtractMainContentDropsLinkFarms(t *testing.T) {
	html := `<div><a href="/a">Home</a> <a href="/b">News</a> <a href="/c">Sports page</a> <a href="/d">More links</a></div>
<p>Real content with enough words to pass the block length threshold easily here.</p>`
	got := ExtractMainContent(html)
	if strings.Contains(got, "Home") {
		t.Errorf("link farm kept: %s", got)
	}
	if !strings.Contains(got, "Real content") {
		t.Errorf("content lost: %s", got)
	}
}

func TestExtractMainContentKeepsHeadings(t *testing.T) {
	got := ExtractMainContent("<h1>Short Title</h1><p>Body of the page with several words to keep in the output.</p>")
	if !strings.Contains(got, "Short Title") {
		t.Errorf("heading dropped: %s", got)
	}
}

func TestExtractMainContentMalformedHTML(t *testing.T) {
	for _, html := range []string{"", "<", "<>", "< >", "<p", "text only", "<p>unclosed", "a < b and c > d"} {
		// Must not panic.
		_ = ExtractMainContent(html)
	}
}

// Property: extraction output never contains tag brackets and is
// deterministic.
func TestExtractProperties(t *testing.T) {
	f := func(s string) bool {
		a := ExtractMainContent(s)
		if a != ExtractMainContent(s) {
			return false
		}
		return !strings.Contains(a, "<")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	w := NewWeb()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			w.AddPage("url", "t", "some content body long enough for extraction to keep it around")
		}
	}()
	for i := 0; i < 100; i++ {
		w.Extract("url")
	}
	<-done
}

func BenchmarkExtract(b *testing.B) {
	w := NewWeb()
	w.AddPage("u", "Benchmark page", strings.Repeat("a paragraph about copper conductors and electrons in metals\n", 10))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w.Extract("u")
	}
}
