package webcontent

import (
	"strings"
	"testing"
)

func FuzzExtractMainContent(f *testing.F) {
	seeds := []string{
		"", "<html><body><p>hello world</p></body></html>",
		"<script>x</script>text", "<a>only links</a>", "< broken",
		"<p>" + strings.Repeat("word ", 50) + "</p>",
		"<!-- comment --><div>content here for everyone</div>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, html string) {
		out := ExtractMainContent(html)
		if strings.Contains(out, "<") {
			t.Fatalf("tag bracket leaked: %q", out)
		}
	})
}
