// Package webcontent simulates the URL Content Extraction step of the
// analysis pipeline (paper §2.3). The paper enriches resource text
// with the main content of linked Web pages, extracted through the
// AlchemyAPI text-extraction service; offline, this package provides
// (a) a synthetic Web — a registry of pages keyed by URL, rendered as
// realistic HTML with navigation/sidebar/footer boilerplate — and (b)
// a generic main-content extractor that removes that boilerplate with
// the block-scoring heuristics such services use.
//
// The extractor is deliberately independent from the renderer: it
// works on arbitrary HTML by scoring text blocks on length and link
// density, so the round-trip Render → Extract genuinely exercises a
// boilerplate-removal code path rather than echoing stored text.
package webcontent

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Page is a synthetic Web page.
type Page struct {
	URL   string
	Title string
	Main  string // the main textual content (what extraction should recover)
}

// Web is a registry of synthetic pages. It is safe for concurrent
// use.
type Web struct {
	mu    sync.RWMutex
	pages map[string]Page
}

// NewWeb returns an empty Web.
func NewWeb() *Web {
	return &Web{pages: make(map[string]Page)}
}

// AddPage registers a page under its URL, replacing any previous one.
func (w *Web) AddPage(url, title, main string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.pages[url] = Page{URL: url, Title: title, Main: main}
}

// Len returns the number of registered pages.
func (w *Web) Len() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return len(w.pages)
}

// Pages returns all registered pages, sorted by URL.
func (w *Web) Pages() []Page {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make([]Page, 0, len(w.pages))
	for _, p := range w.pages {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Lookup returns the page registered under url.
func (w *Web) Lookup(url string) (Page, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	p, ok := w.pages[url]
	return p, ok
}

// Render produces the full HTML of the page at url, with realistic
// boilerplate surrounding the main content, or false when the URL is
// not part of the synthetic Web.
func (w *Web) Render(url string) (string, bool) {
	p, ok := w.Lookup(url)
	if !ok {
		return "", false
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>\n", p.Title)
	b.WriteString(`<nav><a href="/">Home</a> <a href="/news">News</a> ` +
		`<a href="/about">About</a> <a href="/contact">Contact</a> ` +
		`<a href="/login">Login</a> <a href="/signup">Sign up</a></nav>` + "\n")
	b.WriteString(`<div class="sidebar"><a href="/trending">Trending</a> ` +
		`<a href="/popular">Popular posts</a> <a href="/archive">Archive</a> ` +
		`<a href="/tags">Tags</a> <a href="/rss">RSS feed</a></div>` + "\n")
	fmt.Fprintf(&b, "<article><h1>%s</h1>\n", p.Title)
	for _, para := range strings.Split(p.Main, "\n") {
		if strings.TrimSpace(para) == "" {
			continue
		}
		fmt.Fprintf(&b, "<p>%s</p>\n", para)
	}
	b.WriteString("</article>\n")
	b.WriteString(`<footer><a href="/terms">Terms of service</a> ` +
		`<a href="/privacy">Privacy policy</a> <a href="/cookies">Cookie policy</a> ` +
		`Copyright 2012 Example Media</footer>` + "\n")
	b.WriteString("</body></html>\n")
	return b.String(), true
}

// Extract fetches the page at url from the synthetic Web and returns
// its extracted main content (title included), or false when the URL
// is unknown. It is the offline equivalent of one AlchemyAPI text
// extraction call.
func (w *Web) Extract(url string) (string, bool) {
	html, ok := w.Render(url)
	if !ok {
		return "", false
	}
	return ExtractMainContent(html), true
}

// block is a contiguous run of text between block-level boundaries,
// with link statistics for boilerplate scoring.
type block struct {
	text      string
	words     int
	linkWords int
}

// ExtractMainContent strips markup from arbitrary HTML and removes
// boilerplate using block scoring: a block is kept when it is long
// enough and its link density is low, the classic heuristic of
// main-content extractors (Kohlschütter et al.'s boilerpipe family).
func ExtractMainContent(html string) string {
	blocks := parseBlocks(html)
	var out []string
	for _, b := range blocks {
		if b.words == 0 {
			continue
		}
		linkDensity := float64(b.linkWords) / float64(b.words)
		// Keep substantial low-link-density blocks, plus short ones
		// with no links at all (titles, headings).
		if (b.words >= 6 && linkDensity < 0.33) || (b.words >= 1 && b.linkWords == 0) {
			out = append(out, b.text)
		}
	}
	return strings.Join(out, "\n")
}

// blockTags end a text block when opened or closed.
var blockTags = map[string]bool{
	"p": true, "div": true, "article": true, "section": true,
	"nav": true, "footer": true, "header": true, "aside": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"li": true, "ul": true, "ol": true, "table": true, "tr": true,
	"td": true, "th": true, "br": true, "body": true, "title": true,
	"blockquote": true, "pre": true,
}

// skipTags have their entire content dropped.
var skipTags = map[string]bool{"script": true, "style": true, "head": false}

func parseBlocks(html string) []block {
	var blocks []block
	var cur strings.Builder
	curWords, curLinkWords := 0, 0
	inLink := false
	skipUntil := "" // closing tag name that ends a skipped region

	flush := func() {
		text := strings.Join(strings.Fields(cur.String()), " ")
		if text != "" {
			blocks = append(blocks, block{text: text, words: curWords, linkWords: curLinkWords})
		}
		cur.Reset()
		curWords, curLinkWords = 0, 0
	}

	i := 0
	for i < len(html) {
		c := html[i]
		if c != '<' {
			j := strings.IndexByte(html[i:], '<')
			if j < 0 {
				j = len(html) - i
			}
			if skipUntil == "" {
				seg := html[i : i+j]
				n := len(strings.Fields(seg))
				cur.WriteString(seg)
				curWords += n
				if inLink {
					curLinkWords += n
				}
			}
			i += j
			continue
		}
		end := strings.IndexByte(html[i:], '>')
		if end < 0 {
			break
		}
		tag := html[i+1 : i+end]
		i += end + 1
		closing := strings.HasPrefix(tag, "/")
		fields := strings.Fields(strings.TrimPrefix(tag, "/"))
		if len(fields) == 0 {
			continue
		}
		name := strings.TrimSuffix(strings.ToLower(fields[0]), "/")
		switch {
		case skipUntil != "":
			if closing && name == skipUntil {
				skipUntil = ""
			}
		case skipTags[name] && !closing:
			skipUntil = name
		case name == "a":
			inLink = !closing
			cur.WriteByte(' ')
		case blockTags[name]:
			flush()
		default:
			cur.WriteByte(' ')
		}
	}
	flush()
	return blocks
}
