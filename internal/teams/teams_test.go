package teams

import (
	"math/rand"
	"testing"
	"testing/quick"

	"expertfind/internal/socialgraph"
)

// buildLine creates candidates 0-1-2-3-4 connected in a line on
// Facebook, plus an isolated candidate 5.
func buildLine(t testing.TB) (*socialgraph.Graph, []socialgraph.UserID) {
	t.Helper()
	g := socialgraph.New()
	var users []socialgraph.UserID
	for i := 0; i < 6; i++ {
		users = append(users, g.AddUser("u", true))
	}
	for i := 0; i < 4; i++ {
		g.Befriend(users[i], users[i+1], socialgraph.Facebook)
	}
	return g, users
}

func TestDistance(t *testing.T) {
	g, u := buildLine(t)
	f := NewFormer(g, nil)
	if d := f.Distance(u[0], u[0]); d != 0 {
		t.Errorf("self distance = %d", d)
	}
	if d := f.Distance(u[0], u[4]); d != 4 {
		t.Errorf("line distance = %d, want 4", d)
	}
	if d := f.Distance(u[0], u[5]); d != Unreachable {
		t.Errorf("isolated distance = %d, want Unreachable", d)
	}
	if d := f.Distance(u[4], u[0]); d != 4 {
		t.Errorf("distance not symmetric: %d", d)
	}
}

func TestRarestFirstPrefersCloseTeams(t *testing.T) {
	g, u := buildLine(t)
	f := NewFormer(g, nil)
	// Skill a: only user 2 (rarest). Skill b: users 0 and 3.
	// RarestFirst anchors on 2 and must choose 3 (distance 1) over 0
	// (distance 2).
	team, err := f.RarestFirst(Support{
		"a": {u[2]},
		"b": {u[0], u[3]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if team.BySkill["b"] != u[3] {
		t.Errorf("skill b covered by %d, want %d", team.BySkill["b"], u[3])
	}
	if team.Diameter != 1 {
		t.Errorf("diameter = %d, want 1", team.Diameter)
	}
}

func TestRarestFirstAnchorSelection(t *testing.T) {
	g, u := buildLine(t)
	f := NewFormer(g, nil)
	// Rarest skill has two supporters (0 and 4); skill b only user 1.
	// Anchoring on 0 gives diameter 1; anchoring on 4 gives 3.
	team, err := f.RarestFirst(Support{
		"a": {u[0], u[4]},
		"b": {u[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if team.BySkill["a"] != u[0] || team.Diameter != 1 {
		t.Errorf("team = %+v, want anchor 0 with diameter 1", team)
	}
}

func TestGreedySumBuildsCompactTeam(t *testing.T) {
	g, u := buildLine(t)
	f := NewFormer(g, nil)
	team, err := f.GreedySum(Support{
		"a": {u[1]},
		"b": {u[3], u[2]},
		"c": {u[4], u[2]},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Skill a forces user 1; then b and c must choose user 2 over the
	// farther alternatives (users 3 and 4).
	if team.BySkill["b"] != u[2] || team.BySkill["c"] != u[2] {
		t.Errorf("team = %+v", team)
	}
	if len(team.Members) != 2 {
		t.Errorf("members = %v, want dedup to 2", team.Members)
	}
	if team.SumDistance != 1 {
		t.Errorf("sum distance = %d, want 1", team.SumDistance)
	}
}

func TestOneMemberCoveringEverything(t *testing.T) {
	g, u := buildLine(t)
	f := NewFormer(g, nil)
	team, err := f.RarestFirst(Support{
		"a": {u[2]},
		"b": {u[2]},
		"c": {u[2]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(team.Members) != 1 || team.Diameter != 0 || team.SumDistance != 0 {
		t.Errorf("team = %+v, want singleton", team)
	}
}

func TestUnreachableTeamDetected(t *testing.T) {
	g, u := buildLine(t)
	f := NewFormer(g, nil)
	team, err := f.RarestFirst(Support{
		"a": {u[0]},
		"b": {u[5]}, // isolated
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Connected(team) {
		t.Error("disconnected team reported as connected")
	}
}

func TestSupportValidation(t *testing.T) {
	g, u := buildLine(t)
	f := NewFormer(g, nil)
	if _, err := f.RarestFirst(Support{}); err == nil {
		t.Error("empty support accepted")
	}
	if _, err := f.RarestFirst(Support{"a": nil}); err == nil {
		t.Error("unsupported skill accepted")
	}
	if _, err := f.GreedySum(Support{"a": nil}); err == nil {
		t.Error("unsupported skill accepted by GreedySum")
	}
	_ = u
}

func TestNetworkRestriction(t *testing.T) {
	g := socialgraph.New()
	a := g.AddUser("a", true)
	b := g.AddUser("b", true)
	g.Befriend(a, b, socialgraph.Twitter)
	// Only the Facebook network: the Twitter friendship is invisible.
	f := NewFormer(g, []socialgraph.Network{socialgraph.Facebook})
	if d := f.Distance(a, b); d != Unreachable {
		t.Errorf("distance = %d, want Unreachable on facebook-only view", d)
	}
	f = NewFormer(g, []socialgraph.Network{socialgraph.Twitter})
	if d := f.Distance(a, b); d != 1 {
		t.Errorf("distance = %d, want 1 on twitter view", d)
	}
}

func TestOnlyMutualEdgesCount(t *testing.T) {
	g := socialgraph.New()
	a := g.AddUser("a", true)
	b := g.AddUser("b", true)
	g.Follows(a, b, socialgraph.Twitter) // unidirectional
	f := NewFormer(g, nil)
	if d := f.Distance(a, b); d != Unreachable {
		t.Errorf("unidirectional follow created a communication edge (d=%d)", d)
	}
}

// randomFormer builds a random candidate graph with random skills.
func randomFormer(r *rand.Rand) (*Former, Support) {
	g := socialgraph.New()
	n := 4 + r.Intn(10)
	users := make([]socialgraph.UserID, n)
	for i := range users {
		users[i] = g.AddUser("u", true)
	}
	for i := 0; i < n*2; i++ {
		a, b := users[r.Intn(n)], users[r.Intn(n)]
		if a != b {
			g.Befriend(a, b, socialgraph.Facebook)
		}
	}
	support := Support{}
	for si := 0; si < 1+r.Intn(4); si++ {
		sk := Skill(string(rune('a' + si)))
		for len(support[sk]) == 0 {
			for _, u := range users {
				if r.Intn(3) == 0 {
					support[sk] = append(support[sk], u)
				}
			}
		}
	}
	return NewFormer(g, nil), support
}

// Property: both algorithms always return full skill coverage from
// the declared supporters, and diameter <= sum distance bound holds.
func TestFormationProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		former, support := randomFormer(r)
		for _, algo := range []func(Support) (Team, error){former.RarestFirst, former.GreedySum} {
			team, err := algo(support)
			if err != nil {
				return false
			}
			for sk, supporters := range support {
				member, ok := team.BySkill[sk]
				if !ok {
					return false
				}
				found := false
				for _, u := range supporters {
					if u == member {
						found = true
					}
				}
				if !found {
					return false // member does not actually have the skill
				}
			}
			if len(team.Members) > len(support) {
				return false // more members than skills
			}
			if team.Diameter > team.SumDistance && len(team.Members) > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: RarestFirst respects its 2-approximation guarantee
// relative to any assignment containing its anchor — in particular
// the naive first-supporter assignment (whose rarest-skill member is
// one of the anchors RarestFirst tries): through the anchor and the
// triangle inequality, diameter(RarestFirst) ≤ 2·diameter(naive).
func TestRarestFirstTwoApproxVsNaive(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		former, support := randomFormer(r)
		team, err := former.RarestFirst(support)
		if err != nil {
			return false
		}
		naive := map[Skill]socialgraph.UserID{}
		for sk, us := range support {
			naive[sk] = us[0]
		}
		naiveTeam := former.finalize(naive)
		return team.Diameter <= 2*naiveTeam.Diameter
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
