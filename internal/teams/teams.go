// Package teams implements the Expert Team Formation problem the
// paper's related work discusses (§4, Lappas, Liu & Terzi, "Finding a
// team of experts in social networks", KDD 2009): given a task that
// requires a set of skills and a pool of experts connected by a social
// network, find a team that covers every skill while keeping the
// communication cost among members low.
//
// Two cost functions from the KDD paper are supported:
//
//   - Diameter cost — the largest shortest-path distance between any
//     two team members, minimized by the RarestFirst algorithm (a
//     2-approximation).
//   - Sum cost — the sum of pairwise distances, minimized greedily.
//
// The communication network is derived from the social graph's mutual
// relationships (friendships / connections), which is exactly the
// paper's reading of a real-world bond (§2.2): you can actually work
// with a friend, while a followed celebrity will not answer.
package teams

import (
	"fmt"
	"sort"

	"expertfind/internal/socialgraph"
)

// Skill names one required competence (in this repository, an
// expertise domain, but any label works).
type Skill string

// Team is a formed team: one member per required skill (members can
// repeat across skills and are deduplicated in Members).
type Team struct {
	// Members lists the distinct team members, sorted.
	Members []socialgraph.UserID
	// BySkill maps every required skill to the member covering it.
	BySkill map[Skill]socialgraph.UserID
	// Diameter is the largest pairwise communication distance within
	// the team.
	Diameter int
	// SumDistance is the sum of pairwise communication distances.
	SumDistance int
}

// Unreachable is the distance reported between members with no
// connecting path; teams containing such pairs are avoided whenever
// the skill supports allow it.
const Unreachable = 1 << 20

// Former forms teams over a communication network.
type Former struct {
	adj   map[socialgraph.UserID][]socialgraph.UserID
	users []socialgraph.UserID
	// distCache memoizes single-source BFS results.
	distCache map[socialgraph.UserID]map[socialgraph.UserID]int
}

// NewFormer builds the communication network from the mutual
// relationships of the graph on the given networks (nil = all).
// Only candidate users are nodes: externals (followed accounts,
// group members) are not teammates.
func NewFormer(g *socialgraph.Graph, networks []socialgraph.Network) *Former {
	if networks == nil {
		networks = socialgraph.Networks
	}
	f := &Former{
		adj:       make(map[socialgraph.UserID][]socialgraph.UserID),
		distCache: make(map[socialgraph.UserID]map[socialgraph.UserID]int),
	}
	candidates := g.Candidates()
	isCand := make(map[socialgraph.UserID]bool, len(candidates))
	for _, u := range candidates {
		isCand[u] = true
	}
	f.users = candidates
	for i, a := range candidates {
		for _, b := range candidates[i+1:] {
			for _, net := range networks {
				if g.IsFriend(a, b, net) {
					f.adj[a] = append(f.adj[a], b)
					f.adj[b] = append(f.adj[b], a)
					break
				}
			}
		}
	}
	return f
}

// Distance returns the communication distance (shortest path over
// mutual relationships) between two users, or Unreachable.
func (f *Former) Distance(a, b socialgraph.UserID) int {
	if a == b {
		return 0
	}
	d, ok := f.bfs(a)[b]
	if !ok {
		return Unreachable
	}
	return d
}

func (f *Former) bfs(src socialgraph.UserID) map[socialgraph.UserID]int {
	if d, ok := f.distCache[src]; ok {
		return d
	}
	dist := map[socialgraph.UserID]int{src: 0}
	queue := []socialgraph.UserID{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range f.adj[u] {
			if _, seen := dist[v]; !seen {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	f.distCache[src] = dist
	return dist
}

// Support lists, per skill, the users able to contribute it.
type Support map[Skill][]socialgraph.UserID

// validate checks that every skill has at least one supporter.
func (s Support) validate() error {
	if len(s) == 0 {
		return fmt.Errorf("teams: no skills required")
	}
	for skill, users := range s {
		if len(users) == 0 {
			return fmt.Errorf("teams: skill %q has no supporting experts", skill)
		}
	}
	return nil
}

// skillsSorted returns the skills in deterministic order.
func (s Support) skillsSorted() []Skill {
	out := make([]Skill, 0, len(s))
	for sk := range s {
		out = append(out, sk)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RarestFirst forms a team minimizing the diameter cost, following
// the KDD 2009 RarestFirst algorithm: anchor on the supporters of the
// rarest skill, attach to each anchor the closest supporter of every
// other skill, and keep the anchor whose team has the smallest
// diameter.
func (f *Former) RarestFirst(support Support) (Team, error) {
	if err := support.validate(); err != nil {
		return Team{}, err
	}
	skills := support.skillsSorted()

	rarest := skills[0]
	for _, sk := range skills {
		if len(support[sk]) < len(support[rarest]) {
			rarest = sk
		}
	}

	best := Team{Diameter: Unreachable + 1}
	for _, anchor := range support[rarest] {
		bySkill := map[Skill]socialgraph.UserID{rarest: anchor}
		for _, sk := range skills {
			if sk == rarest {
				continue
			}
			chosen, chosenDist := socialgraph.UserID(-1), Unreachable+1
			for _, u := range support[sk] {
				if d := f.Distance(anchor, u); d < chosenDist {
					chosen, chosenDist = u, d
				}
			}
			bySkill[sk] = chosen
		}
		team := f.finalize(bySkill)
		if team.Diameter < best.Diameter ||
			(team.Diameter == best.Diameter && team.SumDistance < best.SumDistance) {
			best = team
		}
	}
	return best, nil
}

// GreedySum forms a team minimizing the sum of pairwise distances
// with a greedy heuristic: skills are covered from rarest to most
// common, each time picking the supporter with the smallest total
// distance to the members chosen so far.
func (f *Former) GreedySum(support Support) (Team, error) {
	if err := support.validate(); err != nil {
		return Team{}, err
	}
	skills := support.skillsSorted()
	sort.SliceStable(skills, func(i, j int) bool {
		return len(support[skills[i]]) < len(support[skills[j]])
	})

	bySkill := make(map[Skill]socialgraph.UserID, len(skills))
	var members []socialgraph.UserID
	for _, sk := range skills {
		chosen, chosenCost := socialgraph.UserID(-1), -1
		for _, u := range support[sk] {
			cost := 0
			for _, m := range members {
				cost += f.Distance(u, m)
			}
			if chosenCost < 0 || cost < chosenCost || (cost == chosenCost && u < chosen) {
				chosen, chosenCost = u, cost
			}
		}
		bySkill[sk] = chosen
		already := false
		for _, m := range members {
			if m == chosen {
				already = true
			}
		}
		if !already {
			members = append(members, chosen)
		}
	}
	return f.finalize(bySkill), nil
}

// finalize computes team costs from a skill assignment.
func (f *Former) finalize(bySkill map[Skill]socialgraph.UserID) Team {
	seen := map[socialgraph.UserID]bool{}
	var members []socialgraph.UserID
	for _, u := range bySkill {
		if !seen[u] {
			seen[u] = true
			members = append(members, u)
		}
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	diameter, sum := 0, 0
	for i, a := range members {
		for _, b := range members[i+1:] {
			d := f.Distance(a, b)
			if d > diameter {
				diameter = d
			}
			sum += d
		}
	}
	return Team{Members: members, BySkill: bySkill, Diameter: diameter, SumDistance: sum}
}

// Connected reports whether every pair of team members can reach each
// other in the communication network.
func (f *Former) Connected(t Team) bool {
	return t.Diameter < Unreachable
}
