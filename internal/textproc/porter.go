package textproc

// Porter stemming algorithm, a faithful implementation of
// M.F. Porter, "An algorithm for suffix stripping", Program 14(3)
// 1980, following the reference implementation structure.

// Stem returns the Porter stem of a lowercase word. Words shorter
// than three letters, or containing bytes outside 'a'..'z', are
// returned unchanged (digits and non-ASCII tokens are meaningful as-is
// for matching).
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	for i := 0; i < len(word); i++ {
		if word[i] < 'a' || word[i] > 'z' {
			return word
		}
	}
	s := &stemmer{b: []byte(word), k: len(word) - 1}
	s.step1ab()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5()
	return string(s.b[:s.k+1])
}

type stemmer struct {
	b []byte
	k int // offset of the last letter of the current stem
	j int // general offset set by ends
}

// cons reports whether b[i] is a consonant.
func (s *stemmer) cons(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.cons(i - 1)
	}
	return true
}

// m measures the number of consonant-vowel sequences between 0 and j.
func (s *stemmer) m() int {
	n, i := 0, 0
	for {
		if i > s.j {
			return n
		}
		if !s.cons(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.cons(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.cons(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether 0..j contains a vowel.
func (s *stemmer) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.cons(i) {
			return true
		}
	}
	return false
}

// doublec reports whether i, i-1 contain a double consonant.
func (s *stemmer) doublec(i int) bool {
	if i < 1 {
		return false
	}
	if s.b[i] != s.b[i-1] {
		return false
	}
	return s.cons(i)
}

// cvc reports whether i-2, i-1, i has the form consonant-vowel-
// consonant where the second consonant is not w, x or y. Used to
// restore a final e, e.g. cav(e), lov(e), hop(e).
func (s *stemmer) cvc(i int) bool {
	if i < 2 || !s.cons(i) || s.cons(i-1) || !s.cons(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends reports whether 0..k ends with the string t; if so it sets j
// to the offset just before the suffix.
func (s *stemmer) ends(t string) bool {
	l := len(t)
	if l > s.k+1 {
		return false
	}
	if string(s.b[s.k+1-l:s.k+1]) != t {
		return false
	}
	s.j = s.k - l
	return true
}

// setto sets j+1..k to the characters of t, readjusting k.
func (s *stemmer) setto(t string) {
	s.b = append(s.b[:s.j+1], t...)
	s.k = s.j + len(t)
}

// r replaces the suffix with t when m() > 0.
func (s *stemmer) r(t string) {
	if s.m() > 0 {
		s.setto(t)
	}
}

// step1ab removes plurals and -ed or -ing.
func (s *stemmer) step1ab() {
	if s.b[s.k] == 's' {
		switch {
		case s.ends("sses"):
			s.k -= 2
		case s.ends("ies"):
			s.setto("i")
		case s.b[s.k-1] != 's':
			s.k--
		}
	}
	if s.ends("eed") {
		if s.m() > 0 {
			s.k--
		}
	} else if (s.ends("ed") || s.ends("ing")) && s.vowelInStem() {
		s.k = s.j
		switch {
		case s.ends("at"):
			s.setto("ate")
		case s.ends("bl"):
			s.setto("ble")
		case s.ends("iz"):
			s.setto("ize")
		case s.doublec(s.k):
			if c := s.b[s.k]; c != 'l' && c != 's' && c != 'z' {
				s.k--
			}
		default:
			s.j = s.k
			if s.m() == 1 && s.cvc(s.k) {
				s.setto("e")
			}
		}
	}
}

// step1c turns terminal y to i when there is another vowel in the stem.
func (s *stemmer) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[s.k] = 'i'
	}
}

// step2 maps double suffixes to single ones when m() > 0.
func (s *stemmer) step2() {
	if s.k < 1 {
		return
	}
	switch s.b[s.k-1] {
	case 'a':
		switch {
		case s.ends("ational"):
			s.r("ate")
		case s.ends("tional"):
			s.r("tion")
		}
	case 'c':
		switch {
		case s.ends("enci"):
			s.r("ence")
		case s.ends("anci"):
			s.r("ance")
		}
	case 'e':
		if s.ends("izer") {
			s.r("ize")
		}
	case 'l':
		switch {
		case s.ends("bli"):
			s.r("ble")
		case s.ends("alli"):
			s.r("al")
		case s.ends("entli"):
			s.r("ent")
		case s.ends("eli"):
			s.r("e")
		case s.ends("ousli"):
			s.r("ous")
		}
	case 'o':
		switch {
		case s.ends("ization"):
			s.r("ize")
		case s.ends("ation"):
			s.r("ate")
		case s.ends("ator"):
			s.r("ate")
		}
	case 's':
		switch {
		case s.ends("alism"):
			s.r("al")
		case s.ends("iveness"):
			s.r("ive")
		case s.ends("fulness"):
			s.r("ful")
		case s.ends("ousness"):
			s.r("ous")
		}
	case 't':
		switch {
		case s.ends("aliti"):
			s.r("al")
		case s.ends("iviti"):
			s.r("ive")
		case s.ends("biliti"):
			s.r("ble")
		}
	case 'g':
		if s.ends("logi") {
			s.r("log")
		}
	}
}

// step3 deals with -ic-, -full, -ness etc.
func (s *stemmer) step3() {
	switch s.b[s.k] {
	case 'e':
		switch {
		case s.ends("icate"):
			s.r("ic")
		case s.ends("ative"):
			s.r("")
		case s.ends("alize"):
			s.r("al")
		}
	case 'i':
		if s.ends("iciti") {
			s.r("ic")
		}
	case 'l':
		switch {
		case s.ends("ical"):
			s.r("ic")
		case s.ends("ful"):
			s.r("")
		}
	case 's':
		if s.ends("ness") {
			s.r("")
		}
	}
}

// step4 takes off -ant, -ence etc. when m() > 1.
func (s *stemmer) step4() {
	if s.k < 1 {
		return
	}
	switch s.b[s.k-1] {
	case 'a':
		if !s.ends("al") {
			return
		}
	case 'c':
		if !s.ends("ance") && !s.ends("ence") {
			return
		}
	case 'e':
		if !s.ends("er") {
			return
		}
	case 'i':
		if !s.ends("ic") {
			return
		}
	case 'l':
		if !s.ends("able") && !s.ends("ible") {
			return
		}
	case 'n':
		if !s.ends("ant") && !s.ends("ement") && !s.ends("ment") && !s.ends("ent") {
			return
		}
	case 'o':
		if s.ends("ion") {
			if s.j < 0 || (s.b[s.j] != 's' && s.b[s.j] != 't') {
				return
			}
		} else if !s.ends("ou") {
			return
		}
	case 's':
		if !s.ends("ism") {
			return
		}
	case 't':
		if !s.ends("ate") && !s.ends("iti") {
			return
		}
	case 'u':
		if !s.ends("ous") {
			return
		}
	case 'v':
		if !s.ends("ive") {
			return
		}
	case 'z':
		if !s.ends("ize") {
			return
		}
	default:
		return
	}
	if s.m() > 1 {
		s.k = s.j
	}
}

// step5 removes a final -e and changes -ll to -l when m() > 1.
func (s *stemmer) step5() {
	s.j = s.k
	if s.b[s.k] == 'e' {
		a := s.m()
		if a > 1 || (a == 1 && !s.cvc(s.k-1)) {
			s.k--
		}
	}
	if s.b[s.k] == 'l' && s.doublec(s.k) && s.m() > 1 {
		s.k--
	}
}
