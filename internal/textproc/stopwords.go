package textproc

// stopwords is a standard English stop-word list (a superset of the
// classic SMART/Glasgow lists restricted to very high frequency
// function words), used by the Text Processing step of the pipeline.
var stopwords = map[string]struct{}{}

func init() {
	for _, w := range stopwordList {
		stopwords[w] = struct{}{}
	}
}

// IsStopword reports whether the (lowercase) token is an English stop
// word.
func IsStopword(tok string) bool {
	_, ok := stopwords[tok]
	return ok
}

var stopwordList = []string{
	"a", "about", "above", "after", "again", "against", "all", "am",
	"an", "and", "any", "are", "aren", "as", "at", "be", "because",
	"been", "before", "being", "below", "between", "both", "but", "by",
	"can", "cannot", "could", "couldn", "did", "didn", "do", "does",
	"doesn", "doing", "don", "down", "during", "each", "few", "for",
	"from", "further", "had", "hadn", "has", "hasn", "have", "haven",
	"having", "he", "her", "here", "hers", "herself", "him", "himself",
	"his", "how", "i", "if", "in", "into", "is", "isn", "it", "its",
	"itself", "just", "ll", "me", "more", "most", "mustn", "my",
	"myself", "no", "nor", "not", "now", "of", "off", "on", "once",
	"only", "or", "other", "ought", "our", "ours", "ourselves", "out",
	"over", "own", "re", "s", "same", "shan", "she", "should",
	"shouldn", "so", "some", "such", "t", "than", "that", "the",
	"their", "theirs", "them", "themselves", "then", "there", "these",
	"they", "this", "those", "through", "to", "too", "under", "until",
	"up", "ve", "very", "was", "wasn", "we", "were", "weren", "what",
	"when", "where", "which", "while", "who", "whom", "why", "will",
	"with", "won", "would", "wouldn", "you", "your", "yours",
	"yourself", "yourselves",
	// conversational filler ubiquitous in social resources
	"also", "get", "got", "like", "one", "really", "see", "thanks",
	"today", "want", "yes",
}
