// Package textproc implements the standard information-retrieval text
// preprocessing used by the expert finding pipeline: sanitization,
// tokenization, stop-word removal, and Porter stemming (paper §2.3,
// "Text Processing").
//
// The processing is symmetric: the same Processor is applied both to
// social resources and to expertise needs, so that their term vectors
// live in the same space.
package textproc

import (
	"strings"
	"unicode"
)

// Options configures a Processor. The zero value enables every step,
// matching the pipeline of the paper; individual steps can be switched
// off for ablation experiments.
type Options struct {
	// DisableStopwords keeps stop words in the token stream.
	DisableStopwords bool
	// DisableStemming keeps tokens unstemmed.
	DisableStemming bool
	// MinTokenLen drops tokens shorter than this many runes after
	// sanitization. Zero means the default of 2.
	MinTokenLen int
	// MaxTokenLen drops tokens longer than this many runes (they are
	// almost always URLs or noise). Zero means the default of 40.
	MaxTokenLen int
}

// Processor turns raw text into a normalized term stream.
type Processor struct {
	opts Options
}

// New returns a Processor with the given options.
func New(opts Options) *Processor {
	if opts.MinTokenLen == 0 {
		opts.MinTokenLen = 2
	}
	if opts.MaxTokenLen == 0 {
		opts.MaxTokenLen = 40
	}
	return &Processor{opts: opts}
}

// Default is a Processor with all steps enabled.
var Default = New(Options{})

// Terms runs the full pipeline on text and returns the resulting
// terms, in order of appearance. The returned slice is freshly
// allocated on each call.
func (p *Processor) Terms(text string) []string {
	tokens := Tokenize(Sanitize(text))
	terms := tokens[:0]
	for _, tok := range tokens {
		if n := len([]rune(tok)); n < p.opts.MinTokenLen || n > p.opts.MaxTokenLen {
			continue
		}
		if !p.opts.DisableStopwords && IsStopword(tok) {
			continue
		}
		if !p.opts.DisableStemming {
			tok = Stem(tok)
		}
		if tok == "" {
			continue
		}
		terms = append(terms, tok)
	}
	return terms
}

// TermFreq runs the pipeline and aggregates term frequencies.
func (p *Processor) TermFreq(text string) map[string]int {
	tf := make(map[string]int)
	for _, t := range p.Terms(text) {
		tf[t]++
	}
	return tf
}

// Sanitize lowercases text and strips markup artifacts commonly found
// in social resources: HTML tags and entities, URLs, @-mentions and
// #-prefixes (the hashtag word itself is kept), and control
// characters. It preserves natural-language content.
func Sanitize(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	i := 0
	for i < len(text) {
		switch c := text[i]; {
		case c == '<': // drop HTML/XML tags
			j := strings.IndexByte(text[i:], '>')
			if j < 0 {
				i = len(text)
				continue
			}
			b.WriteByte(' ')
			i += j + 1
		case c == '&': // drop HTML entities like &amp;
			j := indexEntityEnd(text[i:])
			if j > 0 {
				b.WriteByte(' ')
				i += j
				continue
			}
			b.WriteByte(c)
			i++
		case hasURLPrefix(text[i:]): // drop URLs wholesale
			j := i
			for j < len(text) && !isSpaceByte(text[j]) {
				j++
			}
			b.WriteByte(' ')
			i = j
		case c == '@': // drop @mentions wholesale
			j := i + 1
			for j < len(text) && isWordByte(text[j]) {
				j++
			}
			b.WriteByte(' ')
			i = j
		case c == '#': // keep hashtag word, drop the marker
			b.WriteByte(' ')
			i++
		case c < 0x20 || c == 0x7f: // control characters
			b.WriteByte(' ')
			i++
		default:
			b.WriteByte(c)
			i++
		}
	}
	return strings.ToLower(b.String())
}

func hasURLPrefix(s string) bool {
	return strings.HasPrefix(s, "http://") || strings.HasPrefix(s, "https://") ||
		strings.HasPrefix(s, "www.")
}

func isSpaceByte(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func isWordByte(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// indexEntityEnd reports the length of an HTML entity at the start of
// s ("&amp;", "&#39;", ...), or 0 if s does not start with one.
func indexEntityEnd(s string) int {
	if len(s) < 3 || s[0] != '&' {
		return 0
	}
	for j := 1; j < len(s) && j < 10; j++ {
		c := s[j]
		switch {
		case c == ';':
			if j == 1 {
				return 0
			}
			return j + 1
		case c == '#' && j == 1:
		case isWordByte(c):
		default:
			return 0
		}
	}
	return 0
}

// Tokenize splits sanitized text into word tokens. Letters and digits
// are token constituents; an apostrophe inside a word splits it and
// keeps both parts ("don't" → "don", "t"), matching common IR
// tokenizers.
func Tokenize(text string) []string {
	return strings.FieldsFunc(text, func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}
