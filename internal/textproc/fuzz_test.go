package textproc

import "testing"

func FuzzStem(f *testing.F) {
	for _, seed := range []string{"", "a", "swimming", "relational", "données", "x1y2", "AAAA", "zzzzzzzzzzzzzzzz"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, word string) {
		s := Stem(word)
		if len(s) > len(word) {
			t.Fatalf("Stem(%q) = %q grew", word, s)
		}
	})
}

func FuzzSanitizeAndTokenize(f *testing.F) {
	seeds := []string{
		"", "<a href=x>link</a>", "http://x.com &amp; more", "@user #tag",
		"plain text", "<<>><<", "&#39;&bogus", "unicode: 日本語 données",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		out := Sanitize(text)
		for _, tok := range Tokenize(out) {
			if tok == "" {
				t.Fatal("empty token")
			}
		}
		// The full pipeline must never emit stop words.
		for _, term := range Default.Terms(text) {
			if IsStopword(term) {
				t.Fatalf("stop word %q leaked", term)
			}
		}
	})
}
