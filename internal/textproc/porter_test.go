package textproc

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Canonical pairs from Porter's reference vocabulary (voc.txt /
// output.txt of the reference implementation).
var porterPairs = []struct{ in, want string }{
	// step 1a
	{"caresses", "caress"},
	{"ponies", "poni"},
	{"ties", "ti"},
	{"caress", "caress"},
	{"cats", "cat"},
	// step 1b
	{"feed", "feed"},
	{"agreed", "agre"},
	{"plastered", "plaster"},
	{"bled", "bled"},
	{"motoring", "motor"},
	{"sing", "sing"},
	{"conflated", "conflat"},
	{"troubled", "troubl"},
	{"sized", "size"},
	{"hopping", "hop"},
	{"tanned", "tan"},
	{"falling", "fall"},
	{"hissing", "hiss"},
	{"fizzed", "fizz"},
	{"failing", "fail"},
	{"filing", "file"},
	// step 1c
	{"happy", "happi"},
	{"sky", "sky"},
	// step 2
	{"relational", "relat"},
	{"conditional", "condit"},
	{"rational", "ration"},
	{"valenci", "valenc"},
	{"hesitanci", "hesit"},
	{"digitizer", "digit"},
	{"radically", "radic"},
	{"differently", "differ"},
	{"vileli", "vile"},
	{"analogousli", "analog"},
	{"vietnamization", "vietnam"},
	{"predication", "predic"},
	{"operator", "oper"},
	{"feudalism", "feudal"},
	{"decisiveness", "decis"},
	{"hopefulness", "hope"},
	{"callousness", "callous"},
	{"formaliti", "formal"},
	{"sensitiviti", "sensit"},
	{"sensibiliti", "sensibl"},
	// step 3
	{"triplicate", "triplic"},
	{"formative", "form"},
	{"formalize", "formal"},
	{"electriciti", "electr"},
	{"electrical", "electr"},
	{"hopeful", "hope"},
	{"goodness", "good"},
	// step 4
	{"revival", "reviv"},
	{"allowance", "allow"},
	{"inference", "infer"},
	{"airliner", "airlin"},
	{"gyroscopic", "gyroscop"},
	{"adjustable", "adjust"},
	{"defensible", "defens"},
	{"irritant", "irrit"},
	{"replacement", "replac"},
	{"adjustment", "adjust"},
	{"dependent", "depend"},
	{"adoption", "adopt"},
	{"communism", "commun"},
	{"activate", "activ"},
	{"angulariti", "angular"},
	{"homologous", "homolog"},
	{"effective", "effect"},
	{"bowdlerize", "bowdler"},
	// step 5
	{"probate", "probat"},
	{"rate", "rate"},
	{"cease", "ceas"},
	{"controlling", "control"},
	{"rolling", "roll"},
	// general vocabulary
	{"computers", "comput"},
	{"computing", "comput"},
	{"computation", "comput"},
	{"swimmers", "swimmer"},
	{"swimming", "swim"},
	{"engineering", "engin"},
	{"engineers", "engin"},
	{"programmers", "programm"},
	{"programming", "program"},
	{"musical", "music"},
	{"musicians", "musician"},
	{"locations", "locat"},
	{"scientists", "scientist"},
	{"technologies", "technolog"},
	{"restaurants", "restaur"},
	{"conductivity", "conduct"},
}

func TestStemVocabulary(t *testing.T) {
	for _, p := range porterPairs {
		if got := Stem(p.in); got != p.want {
			t.Errorf("Stem(%q) = %q, want %q", p.in, got, p.want)
		}
	}
}

func TestStemShortAndNonAlpha(t *testing.T) {
	for _, w := range []string{"", "a", "at", "go", "c3po", "naïve", "42", "php5", "r2d2"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

func TestStemMergesInflections(t *testing.T) {
	groups := [][]string{
		{"swimming", "swims"},
		{"training", "trains", "trained"},
		{"conductor", "conductors"},
		{"restaurants", "restaurant"},
		{"playing", "played", "plays"},
	}
	for _, g := range groups {
		first := Stem(g[0])
		for _, w := range g[1:] {
			if got := Stem(w); got != first {
				t.Errorf("Stem(%q) = %q, want %q (same stem as %q)", w, got, first, g[0])
			}
		}
	}
}

// Property: stemming never grows a word and stays lowercase ASCII for
// lowercase ASCII input.
func TestStemProperties(t *testing.T) {
	gen := func(r *rand.Rand) string {
		n := 1 + r.Intn(12)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteByte(byte('a' + r.Intn(26)))
		}
		return b.String()
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			w := gen(r)
			s := Stem(w)
			if len(s) > len(w) || len(s) == 0 {
				t.Logf("word %q stem %q", w, s)
				return false
			}
			for j := 0; j < len(s); j++ {
				if s[j] < 'a' || s[j] > 'z' {
					t.Logf("word %q stem %q has non-alpha", w, s)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Stem never panics on arbitrary strings.
func TestStemArbitraryInput(t *testing.T) {
	f := func(s string) bool {
		_ = Stem(s)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkStem(b *testing.B) {
	words := []string{"computational", "swimming", "relational", "engineering", "conductivity"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Stem(words[i%len(words)])
	}
}
