package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSanitize(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Hello World", "hello world"},
		{"check http://example.com/page now", "check   now"},
		{"see www.example.com too", "see   too"},
		{"hi @alice how are you", "hi   how are you"},
		{"#freestyle swimming", " freestyle swimming"},
		{"<b>bold</b> text", " bold  text"},
		{"fish &amp; chips", "fish   chips"},
		{"a&b", "a&b"},
		{"tab\tand\nnewline", "tab and newline"},
		{"ctrl\x01char", "ctrl char"},
		{"<unclosed tag", ""},
	}
	for _, tc := range tests {
		if got := Sanitize(tc.in); got != tc.want {
			t.Errorf("Sanitize(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"hello world", []string{"hello", "world"}},
		{"don't stop", []string{"don", "t", "stop"}},
		{"php5 and c99", []string{"php5", "and", "c99"}},
		{"", nil},
		{"  --  ", nil},
		{"one,two;three", []string{"one", "two", "three"}},
	}
	for _, tc := range tests {
		got := Tokenize(tc.in)
		if len(got) == 0 && len(tc.want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestIsStopword(t *testing.T) {
	for _, w := range []string{"the", "and", "is", "of", "a"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false, want true", w)
		}
	}
	for _, w := range []string{"swimming", "phelps", "copper", "php"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true, want false", w)
		}
	}
}

func TestProcessorTerms(t *testing.T) {
	got := Default.Terms("Michael Phelps is the best! Great freestyle gold medal")
	want := []string{"michael", "phelp", "best", "great", "freestyl", "gold", "medal"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestProcessorTermsDropsURLsAndMentions(t *testing.T) {
	got := Default.Terms("@bob check https://news.example.com/article about copper conductors")
	want := []string{"check", "copper", "conductor"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestProcessorOptions(t *testing.T) {
	p := New(Options{DisableStemming: true, DisableStopwords: true})
	got := p.Terms("the swimmers are training")
	want := []string{"the", "swimmers", "are", "training"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestProcessorMinMaxLen(t *testing.T) {
	p := New(Options{MinTokenLen: 4, MaxTokenLen: 6, DisableStemming: true, DisableStopwords: true})
	got := p.Terms("go gym pools swimming champion")
	want := []string{"pools"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestTermFreq(t *testing.T) {
	tf := Default.TermFreq("swim swim swimming pool")
	if tf["swim"] != 3 {
		t.Errorf("tf[swim] = %d, want 3 (swimming stems to swim)", tf["swim"])
	}
	if tf["pool"] != 1 {
		t.Errorf("tf[pool] = %d, want 1", tf["pool"])
	}
}

// Property: the pipeline never emits stop words or empty terms and is
// deterministic.
func TestProcessorProperties(t *testing.T) {
	f := func(s string) bool {
		a := Default.Terms(s)
		b := Default.Terms(s)
		if !reflect.DeepEqual(a, b) {
			return false
		}
		for _, term := range a {
			if term == "" || IsStopword(term) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: sanitized output contains no URLs, tags or mentions.
func TestSanitizeProperties(t *testing.T) {
	f := func(s string) bool {
		out := Sanitize(s)
		return !strings.Contains(out, "http://") &&
			!strings.Contains(out, "https://") &&
			!strings.Contains(out, "<")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkProcessorTerms(b *testing.B) {
	text := "Just finished 30min freestyle training at the swimming pool with @charlie, " +
		"see https://pool.example.com/sessions #swimming #training it was great fun indeed"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Default.Terms(text)
	}
}
