// Package annotator implements the Entity Recognition and
// Disambiguation step of the analysis pipeline (paper §2.3). It is a
// faithful functional substitute for the TAGME short-text annotator
// [Ferragina & Scaiella, CIKM 2010] the paper uses: it spots anchors
// from a knowledge-base dictionary, disambiguates each mention by
// combining the candidate's commonness prior with the coherence of its
// domain with the rest of the text, and returns a Wikipedia-like URI
// plus a disambiguation confidence (dScore) per mention — exactly the
// contract consumed by the resource-scoring formula (Eq. 1–2).
package annotator

import (
	"strings"

	"expertfind/internal/kb"
	"expertfind/internal/textproc"
)

// Options configures an Annotator. Zero values select the defaults.
type Options struct {
	// MinLinkProb discards anchors whose link probability is below
	// this threshold (TAGME's lp filter for stop-word-like surface
	// forms). Default 0.15.
	MinLinkProb float64
	// MinDScore discards annotations whose disambiguation confidence
	// is below this threshold (TAGME's rho pruning). Default 0.10.
	MinDScore float64
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MinLinkProb == 0 {
		out.MinLinkProb = 0.15
	}
	if out.MinDScore == 0 {
		out.MinDScore = 0.10
	}
	return out
}

// Annotation is a disambiguated entity mention.
type Annotation struct {
	Entity kb.Entity
	Anchor string  // the matched surface form (normalized)
	Start  int     // first token of the mention (inclusive)
	End    int     // one past the last token of the mention
	DScore float64 // disambiguation confidence in (0, 1]
}

// Annotator recognizes and disambiguates entity mentions in short
// texts.
type Annotator struct {
	kb   *kb.KB
	opts Options
}

// New returns an Annotator over the given knowledge base.
func New(k *kb.KB, opts Options) *Annotator {
	return &Annotator{kb: k, opts: opts.withDefaults()}
}

// spot is an anchor occurrence before disambiguation.
type spot struct {
	anchor     string
	start, end int
	cands      []kb.Candidate
}

// Annotate recognizes entity mentions in text and disambiguates each
// one, returning annotations in order of appearance. Mentions whose
// confidence falls below Options.MinDScore are pruned.
func (a *Annotator) Annotate(text string) []Annotation {
	tokens := textproc.Tokenize(textproc.Sanitize(text))
	if len(tokens) == 0 {
		return nil
	}
	spots := a.spotAnchors(tokens)
	if len(spots) == 0 {
		return nil
	}

	ctx := a.contextProfile(tokens, spots)

	var out []Annotation
	for i, sp := range spots {
		ann, ok := a.disambiguate(sp, spots, i, ctx)
		if ok {
			out = append(out, ann)
		}
	}
	return out
}

// spotAnchors finds non-overlapping, longest-first anchor matches.
func (a *Annotator) spotAnchors(tokens []string) []spot {
	maxLen := a.kb.MaxAnchorTokens()
	var spots []spot
	for i := 0; i < len(tokens); {
		matched := false
		for n := min(maxLen, len(tokens)-i); n >= 1; n-- {
			anchor := strings.Join(tokens[i:i+n], " ")
			cands, lp := a.kb.Candidates(anchor)
			if cands == nil || lp < a.opts.MinLinkProb {
				continue
			}
			spots = append(spots, spot{anchor: anchor, start: i, end: i + n, cands: cands})
			i += n
			matched = true
			break
		}
		if !matched {
			i++
		}
	}
	return spots
}

// contextProfile counts, per domain, the topical-vocabulary words
// occurring in the text. Token comparison happens on raw lowercase
// surface forms, matching how vocabularies are stored.
func (a *Annotator) contextProfile(tokens []string, spots []spot) map[kb.Domain]float64 {
	inSpot := make([]bool, len(tokens))
	for _, sp := range spots {
		for i := sp.start; i < sp.end; i++ {
			inSpot[i] = true
		}
	}
	ctx := make(map[kb.Domain]float64, len(kb.Domains))
	for i, tok := range tokens {
		if inSpot[i] {
			continue
		}
		stem := textproc.Stem(tok)
		for _, d := range kb.Domains {
			if a.kb.InVocabStem(d, stem) {
				ctx[d]++
			}
		}
	}
	return ctx
}

// disambiguate chooses the interpretation of one spot. Each candidate
// is scored by its commonness prior boosted by the coherence of its
// domain with (a) the topical context words and (b) the other spots'
// dominant interpretations — a voting scheme in the spirit of TAGME's
// relatedness votes. The dScore is the winner's share of the total
// candidate mass, attenuated when the text gives no topical support.
func (a *Annotator) disambiguate(sp spot, spots []spot, self int, ctx map[kb.Domain]float64) (Annotation, bool) {
	votes := make(map[kb.Domain]float64, len(kb.Domains))
	for d, n := range ctx {
		votes[d] += n
	}
	for j, other := range spots {
		if j == self {
			continue
		}
		// The dominant candidate of every other spot votes for its
		// domain with its commonness as weight.
		best := other.cands[0]
		votes[a.kb.Entity(best.Entity).Domain] += best.Commonness
	}

	// Context dominates the commonness prior: a candidate whose domain
	// gets no votes keeps only a small fraction of its prior, so that
	// topical evidence can overturn a popular-by-default reading
	// ("milan" → AC Milan in a football post).
	const priorFloor = 0.15
	var total float64
	scores := make([]float64, len(sp.cands))
	for i, c := range sp.cands {
		boost := coherenceBoost(votes[a.kb.Entity(c.Entity).Domain])
		scores[i] = c.Commonness * (priorFloor + boost)
		total += scores[i]
	}

	bestIdx := 0
	for i := 1; i < len(scores); i++ {
		if scores[i] > scores[bestIdx] {
			bestIdx = i
		}
	}
	winner := sp.cands[bestIdx]
	winnerEnt := a.kb.Entity(winner.Entity)

	share := scores[bestIdx] / total
	support := coherenceBoost(votes[winnerEnt.Domain])
	dScore := share * (0.5 + 0.5*support)
	if dScore < a.opts.MinDScore {
		return Annotation{}, false
	}
	if dScore > 1 {
		dScore = 1
	}
	return Annotation{
		Entity: winnerEnt,
		Anchor: sp.anchor,
		Start:  sp.start,
		End:    sp.end,
		DScore: dScore,
	}, true
}

// coherenceBoost maps a raw vote count to [0,1] with diminishing
// returns: 0 votes → 0, 1 vote → 0.33, 2 → 0.5, 4 → 0.67, ∞ → 1.
func coherenceBoost(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return v / (v + 2)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
