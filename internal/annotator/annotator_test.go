package annotator

import (
	"testing"
	"testing/quick"

	"expertfind/internal/kb"
)

func newDefault() *Annotator {
	return New(kb.Builtin(), Options{})
}

func annotatedLabels(anns []Annotation) map[string]bool {
	out := make(map[string]bool, len(anns))
	for _, a := range anns {
		out[a.Entity.Label] = true
	}
	return out
}

func TestAnnotateSimpleMention(t *testing.T) {
	anns := newDefault().Annotate("Michael Phelps is the best! Great freestyle gold medal")
	labels := annotatedLabels(anns)
	if !labels["Michael Phelps"] {
		t.Errorf("missing Michael Phelps in %v", labels)
	}
	if !labels["Freestyle swimming"] {
		t.Errorf("missing Freestyle swimming in %v", labels)
	}
}

func TestAnnotateMultiTokenAnchor(t *testing.T) {
	anns := newDefault().Annotate("Can you list some famous actors in How I Met Your Mother?")
	labels := annotatedLabels(anns)
	if !labels["How I Met Your Mother"] {
		t.Errorf("missing multi-token entity, got %v", labels)
	}
}

func TestDisambiguationByContext(t *testing.T) {
	a := newDefault()

	// "milan" in a travel context must resolve to the city.
	anns := a.Annotate("can you list some restaurants in milan near the cathedral for my trip")
	var milanEnt string
	for _, an := range anns {
		if an.Anchor == "milan" {
			milanEnt = an.Entity.Label
		}
	}
	if milanEnt != "Milan" {
		t.Errorf("travel context: milan resolved to %q, want Milan", milanEnt)
	}

	// "milan" in a football context must resolve to the club.
	anns = a.Annotate("great match yesterday, milan scored two goals in the derby and won the league game")
	milanEnt = ""
	for _, an := range anns {
		if an.Anchor == "milan" {
			milanEnt = an.Entity.Label
		}
	}
	if milanEnt != "AC Milan" {
		t.Errorf("football context: milan resolved to %q, want AC Milan", milanEnt)
	}
}

func TestDisambiguationPython(t *testing.T) {
	a := newDefault()
	anns := a.Annotate("wrote a python function to parse the string and fix the bug in the code")
	for _, an := range anns {
		if an.Anchor == "python" && an.Entity.Label != "Python (programming language)" {
			t.Errorf("code context: python resolved to %q", an.Entity.Label)
		}
	}
	anns = a.Annotate("saw a huge python at the zoo, the species lives in tropical regions")
	for _, an := range anns {
		if an.Anchor == "python" && an.Entity.Label != "Python (snake)" {
			t.Errorf("zoo context: python resolved to %q", an.Entity.Label)
		}
	}
}

func TestLowLinkProbAnchorDropped(t *testing.T) {
	// "friends" has lp 0.12 < default 0.15: must never be spotted in
	// ordinary conversation.
	anns := newDefault().Annotate("met some friends for dinner and we talked for hours")
	if labels := annotatedLabels(anns); labels["Friends (TV series)"] {
		t.Errorf("low-lp anchor spotted: %v", labels)
	}
	// With a permissive threshold and a TV context, it may be spotted.
	a := New(kb.Builtin(), Options{MinLinkProb: 0.05})
	anns = a.Annotate("watched an episode of friends, the sitcom series finale was great")
	if labels := annotatedLabels(anns); !labels["Friends (TV series)"] {
		t.Errorf("permissive lp: friends not spotted, got %v", labels)
	}
}

func TestDScoreRange(t *testing.T) {
	a := newDefault()
	texts := []string{
		"Michael Phelps won the freestyle race at the Olympics",
		"the mercury level rose in the experiment with copper electrodes",
		"queen played a concert with freddie mercury on stage",
		"bought a new graphics card from nvidia to play diablo 3",
	}
	for _, txt := range texts {
		for _, an := range a.Annotate(txt) {
			if an.DScore <= 0 || an.DScore > 1 {
				t.Errorf("dScore %v out of (0,1] for %q in %q", an.DScore, an.Anchor, txt)
			}
			if an.Start < 0 || an.End <= an.Start {
				t.Errorf("bad span [%d,%d) for %q", an.Start, an.End, an.Anchor)
			}
		}
	}
}

func TestAnnotationsNonOverlappingAndOrdered(t *testing.T) {
	a := newDefault()
	anns := a.Annotate("michael phelps swam freestyle at the olympic games in london, then visited the eiffel tower in paris")
	for i := 1; i < len(anns); i++ {
		if anns[i].Start < anns[i-1].End {
			t.Errorf("overlapping annotations: %v and %v", anns[i-1], anns[i])
		}
	}
	if len(anns) < 3 {
		t.Errorf("expected >= 3 annotations, got %d", len(anns))
	}
}

func TestAnnotateEmptyAndPlainText(t *testing.T) {
	a := newDefault()
	if anns := a.Annotate(""); anns != nil {
		t.Errorf("Annotate(empty) = %v", anns)
	}
	if anns := a.Annotate("completely mundane words without any known surface forms whatsoever"); len(anns) != 0 {
		t.Errorf("Annotate(plain) = %v", anns)
	}
}

func TestAmbiguousMercuryContexts(t *testing.T) {
	a := newDefault()
	anns := a.Annotate("freddie sang with queen while mercury was the greatest singer of the band on stage")
	for _, an := range anns {
		if an.Anchor == "mercury" && an.Entity.Domain != kb.Music {
			t.Errorf("music context: mercury resolved to %v", an.Entity.Label)
		}
	}
	anns = a.Annotate("the mercury in the thermometer reacts to temperature, a metal element with high conductivity in the experiment")
	for _, an := range anns {
		if an.Anchor == "mercury" && an.Entity.Domain != kb.Science {
			t.Errorf("science context: mercury resolved to %v", an.Entity.Label)
		}
	}
}

// Property: Annotate is deterministic and never panics on arbitrary
// input.
func TestAnnotateArbitraryInput(t *testing.T) {
	a := newDefault()
	f := func(s string) bool {
		x := a.Annotate(s)
		y := a.Annotate(s)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnnotate(b *testing.B) {
	a := newDefault()
	text := "Just finished 30min freestyle training at the swimming pool, michael phelps " +
		"is my hero since the olympic games in london, what a great race"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Annotate(text)
	}
}
