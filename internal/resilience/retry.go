package resilience

import (
	"errors"
	"math/rand"
	"time"
)

// RetryPolicy configures exponential backoff with jitter.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts, the first try
	// included. Values ≤ 1 mean a single attempt (no retries).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps any single backoff. Zero means uncapped.
	MaxDelay time.Duration
	// Multiplier is the backoff growth factor; values ≤ 1 default to 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized: the
	// actual delay is drawn uniformly from [d·(1−Jitter), d]. Zero
	// disables jitter (fully deterministic backoff).
	Jitter float64
}

// DefaultRetry mirrors the client defaults of the large platform
// SDKs: four attempts, 100 ms initial backoff doubling up to 2 s,
// half-width jitter.
var DefaultRetry = RetryPolicy{
	MaxAttempts: 4,
	BaseDelay:   100 * time.Millisecond,
	MaxDelay:    2 * time.Second,
	Multiplier:  2,
	Jitter:      0.5,
}

// Enabled reports whether the policy retries at all.
func (p RetryPolicy) Enabled() bool { return p.MaxAttempts > 1 }

// delay returns the backoff before retry number retry (0-based),
// before jitter.
func (p RetryPolicy) delay(retry int) time.Duration {
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 0; i < retry; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	return time.Duration(d)
}

// permanentError marks an error that must not be retried.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so a Retryer stops immediately instead of
// retrying. A nil err returns nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Retryable classifies err: errors wrapped with Permanent, and errors
// whose chain exposes a Retryable() bool method returning false, are
// not retried; everything else is.
func Retryable(err error) bool {
	var p *permanentError
	if errors.As(err, &p) {
		return false
	}
	var r interface{ Retryable() bool }
	if errors.As(err, &r) {
		return r.Retryable()
	}
	return true
}

// retryAfterHinter is implemented by errors carrying a server-supplied
// backoff hint (an HTTP 429 Retry-After header, for example).
type retryAfterHinter interface {
	RetryAfterHint() (time.Duration, bool)
}

// RetryAfter extracts a server-supplied backoff hint from err's chain.
func RetryAfter(err error) (time.Duration, bool) {
	var h retryAfterHinter
	if errors.As(err, &h) {
		return h.RetryAfterHint()
	}
	return 0, false
}

// Retryer executes operations under a RetryPolicy.
type Retryer struct {
	Policy RetryPolicy
	// Clock supplies the backoff sleeps; nil means real time.
	Clock *Clock
	// Rand drives the jitter; nil disables jitter regardless of the
	// policy (keeping a seeded source here keeps runs reproducible).
	Rand *rand.Rand
	// OnRetry, if set, is invoked before each backoff sleep with the
	// 1-based number of the attempt that just failed, its error, and
	// the chosen delay.
	OnRetry func(attempt int, err error, delay time.Duration)
}

// Do runs f until it succeeds, exhausts the policy's attempts, or
// returns a non-retryable error. It returns the last error observed
// (nil on success). Server Retry-After hints, when present and larger
// than the computed backoff, replace it.
func (r *Retryer) Do(f func() error) error {
	attempts := r.Policy.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for attempt := 1; ; attempt++ {
		err = f()
		if err == nil || attempt >= attempts || !Retryable(err) {
			return err
		}
		delay := r.Policy.delay(attempt - 1)
		if r.Rand != nil && r.Policy.Jitter > 0 {
			j := r.Policy.Jitter
			if j > 1 {
				j = 1
			}
			delay = time.Duration(float64(delay) * (1 - j*r.Rand.Float64()))
		}
		if hint, ok := RetryAfter(err); ok && hint > delay {
			delay = hint
		}
		if r.OnRetry != nil {
			r.OnRetry(attempt, err, delay)
		}
		r.Clock.Sleep(delay)
	}
}
