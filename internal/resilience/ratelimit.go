package resilience

import (
	"sync"
	"time"
)

// TokenBucket is a classic token-bucket rate limiter: rate tokens per
// second refill a bucket holding at most burst tokens, and each call
// consumes one. It is safe for concurrent use.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
	clock  *Clock
}

// NewTokenBucket returns a bucket allowing rate calls per second with
// the given burst (values < 1 become 1). A nil clock means real time.
func NewTokenBucket(rate float64, burst int, clock *Clock) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	b := &TokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), clock: clock}
	b.last = clock.Now()
	return b
}

// refill credits the tokens accrued since the last observation.
// Callers must hold b.mu.
func (b *TokenBucket) refill(now time.Time) {
	if elapsed := now.Sub(b.last); elapsed > 0 {
		b.tokens += elapsed.Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
}

// Reserve consumes one token and returns how long the caller must
// wait before acting on it (zero when a token was available). The
// token is committed either way, so call Reserve only when the work
// will actually be performed.
func (b *TokenBucket) Reserve() time.Duration {
	if b == nil || b.rate <= 0 {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(b.clock.Now())
	b.tokens--
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// Allow reports whether a token is available right now, consuming one
// if so. It never waits.
func (b *TokenBucket) Allow() bool {
	if b == nil || b.rate <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refill(b.clock.Now())
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}
