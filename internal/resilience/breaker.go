package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned (or reported) when a circuit breaker is open
// and rejecting calls.
var ErrOpen = errors.New("resilience: circuit breaker open")

// BreakerPolicy configures a consecutive-failure circuit breaker.
type BreakerPolicy struct {
	// Threshold is the number of consecutive failures that trips the
	// breaker. Values ≤ 0 disable it.
	Threshold int
	// Cooldown is how long the breaker stays open before letting a
	// probe call through (half-open state).
	Cooldown time.Duration
}

// Breaker is a minimal circuit breaker: after Threshold consecutive
// failures it opens and rejects calls for Cooldown; the next call
// after the cooldown is a probe whose outcome closes the breaker or
// re-trips it. It is safe for concurrent use.
type Breaker struct {
	policy BreakerPolicy
	clock  *Clock

	// OnStateChange, if set before the breaker is used, is invoked
	// whenever the breaker transitions between closed and open (true =
	// now open). It runs while the breaker's lock is held, so it must
	// be fast and must not call back into the breaker; its intended use
	// is bridging breaker state into a telemetry gauge.
	OnStateChange func(open bool)

	mu        sync.Mutex
	failures  int
	open      bool
	probing   bool
	openUntil time.Time
	trips     int
}

// NewBreaker returns a breaker under the given policy. A nil clock
// means real time.
func NewBreaker(p BreakerPolicy, clock *Clock) *Breaker {
	return &Breaker{policy: p, clock: clock}
}

// Allow reports whether a call may proceed. While open and cooling
// down it returns false; after the cooldown exactly one caller is
// admitted as the half-open probe — concurrent callers keep being
// rejected until that probe reports an outcome, so a recovering
// backend sees a single trial request instead of a thundering herd.
func (b *Breaker) Allow() bool {
	if b == nil || b.policy.Threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	now := b.clock.Now()
	if now.Before(b.openUntil) {
		return false
	}
	if b.probing {
		// A probe is already in flight; reject concurrent callers until
		// it reports. If its outcome never arrives (caller lost), admit
		// a fresh probe after another full cooldown rather than wedging
		// the breaker open forever.
		if now.Before(b.openUntil.Add(b.policy.Cooldown)) {
			return false
		}
		b.openUntil = now
	}
	b.probing = true
	return true
}

// Success reports a successful call, closing the breaker.
func (b *Breaker) Success() {
	if b == nil || b.policy.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	wasOpen := b.open
	b.failures = 0
	b.open = false
	b.probing = false
	if wasOpen && b.OnStateChange != nil {
		b.OnStateChange(false)
	}
}

// Failure reports a failed call. It trips the breaker after Threshold
// consecutive failures, and re-trips immediately when a half-open
// probe fails.
func (b *Breaker) Failure() {
	if b == nil || b.policy.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.probing || b.failures >= b.policy.Threshold {
		wasOpen := b.open
		b.open = true
		b.probing = false
		b.failures = 0
		b.openUntil = b.clock.Now().Add(b.policy.Cooldown)
		b.trips++
		if !wasOpen && b.OnStateChange != nil {
			b.OnStateChange(true)
		}
	}
}

// Open reports whether the breaker is currently open (cooldown may
// have elapsed without a probe yet).
func (b *Breaker) Open() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// Trips returns how many times the breaker has tripped open.
func (b *Breaker) Trips() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
