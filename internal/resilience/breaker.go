package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned (or reported) when a circuit breaker is open
// and rejecting calls.
var ErrOpen = errors.New("resilience: circuit breaker open")

// BreakerPolicy configures a consecutive-failure circuit breaker.
type BreakerPolicy struct {
	// Threshold is the number of consecutive failures that trips the
	// breaker. Values ≤ 0 disable it.
	Threshold int
	// Cooldown is how long the breaker stays open before letting a
	// probe call through (half-open state).
	Cooldown time.Duration
}

// Breaker is a minimal circuit breaker: after Threshold consecutive
// failures it opens and rejects calls for Cooldown; the next call
// after the cooldown is a probe whose outcome closes the breaker or
// re-trips it. It is safe for concurrent use.
type Breaker struct {
	policy BreakerPolicy
	clock  *Clock

	mu        sync.Mutex
	failures  int
	open      bool
	probing   bool
	openUntil time.Time
	trips     int
}

// NewBreaker returns a breaker under the given policy. A nil clock
// means real time.
func NewBreaker(p BreakerPolicy, clock *Clock) *Breaker {
	return &Breaker{policy: p, clock: clock}
}

// Allow reports whether a call may proceed. While open and cooling
// down it returns false; after the cooldown it admits calls as probes
// until one of them reports an outcome.
func (b *Breaker) Allow() bool {
	if b == nil || b.policy.Threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.clock.Now().Before(b.openUntil) {
		return false
	}
	b.probing = true
	return true
}

// Success reports a successful call, closing the breaker.
func (b *Breaker) Success() {
	if b == nil || b.policy.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures = 0
	b.open = false
	b.probing = false
}

// Failure reports a failed call. It trips the breaker after Threshold
// consecutive failures, and re-trips immediately when a half-open
// probe fails.
func (b *Breaker) Failure() {
	if b == nil || b.policy.Threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.probing || b.failures >= b.policy.Threshold {
		b.open = true
		b.probing = false
		b.failures = 0
		b.openUntil = b.clock.Now().Add(b.policy.Cooldown)
		b.trips++
	}
}

// Trips returns how many times the breaker has tripped open.
func (b *Breaker) Trips() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
