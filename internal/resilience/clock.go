// Package resilience provides the generic fault-handling primitives
// the system uses wherever it talks to an unreliable party: retry
// with exponential backoff and jitter, token-bucket rate limiting,
// and a circuit breaker. The crawler composes all three around the
// simulated platform APIs of internal/faults; the HTTP serving path
// reuses the same load-shedding ideas in internal/httpapi.
//
// Every primitive takes its notion of time from a Clock, so that
// simulations advance time virtually (a crawl that backs off for
// minutes of simulated time still finishes in microseconds of wall
// time) while production users can pass a real-time clock.
package resilience

import (
	"sync"
	"time"
)

// Clock is a monotonic clock that can be advanced without waiting.
// The zero value is not usable; construct with NewClock (virtual) or
// RealClock (wall time).
type Clock struct {
	mu      sync.Mutex
	now     time.Time
	virtual bool
}

// NewClock returns a virtual clock starting at the zero time. Sleep
// advances it instantly; Now never moves on its own.
func NewClock() *Clock {
	return &Clock{virtual: true}
}

// RealClock returns a clock backed by time.Now and time.Sleep.
func RealClock() *Clock {
	return &Clock{}
}

// Now returns the current clock time.
func (c *Clock) Now() time.Time {
	if c == nil {
		return time.Now()
	}
	if !c.virtual {
		return time.Now()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep pauses for d: virtually (advancing Now and returning at once)
// or by actually sleeping, depending on the clock's mode. Negative or
// zero durations are no-ops.
func (c *Clock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if c == nil || !c.virtual {
		time.Sleep(d)
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Elapsed reports how far a virtual clock has advanced since its
// creation. For a real clock it returns 0 (wall time has no anchor).
func (c *Clock) Elapsed() time.Duration {
	if c == nil || !c.virtual {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now.Sub(time.Time{})
}
