package resilience

import (
	"errors"
	"math/rand"
	"testing"
	"time"
)

type fakeErr struct {
	retryable bool
	hint      time.Duration
}

func (e *fakeErr) Error() string   { return "fake" }
func (e *fakeErr) Retryable() bool { return e.retryable }
func (e *fakeErr) RetryAfterHint() (time.Duration, bool) {
	return e.hint, e.hint > 0
}

func TestRetrySucceedsAfterTransients(t *testing.T) {
	clock := NewClock()
	r := &Retryer{
		Policy: RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second},
		Clock:  clock,
	}
	calls := 0
	err := r.Do(func() error {
		calls++
		if calls < 3 {
			return &fakeErr{retryable: true}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
	// Two backoffs: 100ms + 200ms of virtual time.
	if got := clock.Elapsed(); got != 300*time.Millisecond {
		t.Errorf("elapsed = %v, want 300ms", got)
	}
}

func TestRetryStopsOnPermanent(t *testing.T) {
	r := &Retryer{Policy: RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}, Clock: NewClock()}
	calls := 0
	sentinel := errors.New("broken")
	err := r.Do(func() error { calls++; return Permanent(sentinel) })
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
	calls = 0
	if err := r.Do(func() error { calls++; return &fakeErr{retryable: false} }); err == nil || calls != 1 {
		t.Errorf("non-retryable error: err=%v calls=%d", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	r := &Retryer{Policy: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}, Clock: NewClock()}
	calls, retries := 0, 0
	r.OnRetry = func(int, error, time.Duration) { retries++ }
	err := r.Do(func() error { calls++; return &fakeErr{retryable: true} })
	if err == nil || calls != 3 || retries != 2 {
		t.Errorf("err=%v calls=%d retries=%d", err, calls, retries)
	}
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	clock := NewClock()
	r := &Retryer{Policy: RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}, Clock: clock}
	_ = r.Do(func() error { return &fakeErr{retryable: true, hint: time.Second} })
	if got := clock.Elapsed(); got != time.Second {
		t.Errorf("elapsed = %v, want the 1s hint", got)
	}
}

func TestRetryJitterDeterministicPerSeed(t *testing.T) {
	run := func() time.Duration {
		clock := NewClock()
		r := &Retryer{
			Policy: RetryPolicy{MaxAttempts: 4, BaseDelay: 100 * time.Millisecond, Jitter: 0.5},
			Clock:  clock,
			Rand:   rand.New(rand.NewSource(7)),
		}
		_ = r.Do(func() error { return &fakeErr{retryable: true} })
		return clock.Elapsed()
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("jittered backoff not reproducible: %v vs %v", a, b)
	}
	// Nominal backoff is 100+200+400 ms; half-width jitter keeps the
	// total in [350ms, 700ms) with probability 1.
	if a >= 700*time.Millisecond || a < 350*time.Millisecond {
		t.Errorf("jittered total %v outside [350ms, 700ms)", a)
	}
}

func TestTokenBucketPacing(t *testing.T) {
	clock := NewClock()
	b := NewTokenBucket(10, 2, clock) // 10 calls/s, burst 2
	if w := b.Reserve(); w != 0 {
		t.Fatalf("first call waited %v", w)
	}
	if w := b.Reserve(); w != 0 {
		t.Fatalf("burst call waited %v", w)
	}
	w := b.Reserve()
	if w != 100*time.Millisecond {
		t.Fatalf("third call waited %v, want 100ms", w)
	}
	clock.Sleep(w)
	// After paying the debt and one period passing, a call is free again.
	clock.Sleep(100 * time.Millisecond)
	if w := b.Reserve(); w != 0 {
		t.Errorf("post-refill call waited %v", w)
	}
}

func TestTokenBucketAllow(t *testing.T) {
	clock := NewClock()
	b := NewTokenBucket(1, 1, clock)
	if !b.Allow() {
		t.Fatal("first Allow refused")
	}
	if b.Allow() {
		t.Fatal("second Allow admitted with an empty bucket")
	}
	clock.Sleep(time.Second)
	if !b.Allow() {
		t.Error("Allow refused after refill")
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	clock := NewClock()
	b := NewBreaker(BreakerPolicy{Threshold: 3, Cooldown: time.Second}, clock)
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused call %d", i)
		}
		b.Failure()
	}
	if b.Allow() {
		t.Fatal("breaker did not open after threshold failures")
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d", b.Trips())
	}
	clock.Sleep(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe")
	}
	b.Failure() // probe fails: re-trip immediately
	if b.Allow() {
		t.Fatal("breaker closed after a failed probe")
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d", b.Trips())
	}
	clock.Sleep(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second probe")
	}
	b.Success()
	if !b.Allow() {
		t.Error("breaker not closed after a successful probe")
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	clock := NewClock()
	b := NewBreaker(BreakerPolicy{Threshold: 1, Cooldown: time.Second}, clock)
	b.Failure()
	clock.Sleep(time.Second)
	// After the cooldown, exactly one waiter becomes the probe;
	// everyone else keeps being rejected until it reports.
	if !b.Allow() {
		t.Fatal("breaker refused the half-open probe")
	}
	for i := 0; i < 5; i++ {
		if b.Allow() {
			t.Fatalf("breaker admitted concurrent probe %d while one was in flight", i)
		}
	}
	b.Success()
	if !b.Allow() {
		t.Fatal("breaker not closed after the probe succeeded")
	}

	// A failing probe re-trips: still exactly one probe per cooldown.
	b.Failure()
	clock.Sleep(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second probe")
	}
	if b.Allow() {
		t.Fatal("breaker admitted a second concurrent probe")
	}
	b.Failure()
	if b.Allow() {
		t.Fatal("breaker admitted a call right after a failed probe")
	}

	// Lost-probe guard: a probe that never reports frees the slot
	// after one further cooldown instead of wedging the breaker.
	clock.Sleep(time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the post-retrip probe")
	}
	clock.Sleep(time.Second)
	if !b.Allow() {
		t.Fatal("breaker never re-admitted a probe after the first was lost")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := NewBreaker(BreakerPolicy{}, NewClock())
	for i := 0; i < 10; i++ {
		b.Failure()
	}
	if !b.Allow() {
		t.Error("disabled breaker rejected a call")
	}
}
