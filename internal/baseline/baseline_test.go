package baseline

import (
	"math"
	"math/rand"
	"testing"

	"expertfind/internal/analysis"
	"expertfind/internal/socialgraph"
)

// fixture builds a tiny corpus: user 1 owns two swimming docs, user 2
// owns two programming docs, user 3 owns one of each.
func fixture() (*LM, []socialgraph.UserID) {
	pipe := analysis.New(analysis.Options{})
	texts := map[socialgraph.ResourceID]string{
		1: "freestyle swimming training at the pool every morning is great",
		2: "the swimming race was close but our pool team won the medal",
		3: "debugging the php function that parses the string arguments",
		4: "wrote a new code library for database queries in the backend",
		5: "after swimming practice i fixed a bug in the php code",
	}
	docs := make(map[socialgraph.ResourceID]analysis.Analyzed)
	for id, s := range texts {
		a, ok := pipe.Analyze(s, nil)
		if !ok {
			panic("fixture doc filtered")
		}
		docs[id] = a
	}
	assoc := map[socialgraph.ResourceID][]Association{
		1: {{Candidate: 1, Weight: 1}},
		2: {{Candidate: 1, Weight: 1}},
		3: {{Candidate: 2, Weight: 1}},
		4: {{Candidate: 2, Weight: 1}},
		5: {{Candidate: 3, Weight: 1}},
	}
	return NewLM(docs, assoc), []socialgraph.UserID{1, 2, 3}
}

func needFor(text string) analysis.Analyzed {
	return analysis.New(analysis.Options{}).AnalyzeNeed(text)
}

func TestModel1RanksTopicalCandidateFirst(t *testing.T) {
	lm, cands := fixture()
	m := NewModel1(lm)

	got := m.Rank(needFor("swimming pool training"), cands)
	if len(got) == 0 || got[0].User != 1 {
		t.Errorf("swimming query ranking = %v, want user 1 first", got)
	}

	got = m.Rank(needFor("php function string code"), cands)
	if len(got) == 0 || got[0].User != 2 {
		t.Errorf("php query ranking = %v, want user 2 first", got)
	}
}

func TestModel2RanksTopicalCandidateFirst(t *testing.T) {
	lm, cands := fixture()
	m := NewModel2(lm)

	got := m.Rank(needFor("swimming pool training"), cands)
	if len(got) == 0 || got[0].User != 1 {
		t.Errorf("swimming query ranking = %v, want user 1 first", got)
	}

	got = m.Rank(needFor("php function string code"), cands)
	if len(got) == 0 || got[0].User != 2 {
		t.Errorf("php query ranking = %v, want user 2 first", got)
	}
}

func TestMixedCandidateRanksInBetween(t *testing.T) {
	lm, cands := fixture()
	for name, rank := range map[string]func(analysis.Analyzed, []socialgraph.UserID) []Scored{
		"model1": NewModel1(lm).Rank,
		"model2": NewModel2(lm).Rank,
	} {
		got := rank(needFor("swimming pool"), cands)
		pos := map[socialgraph.UserID]int{}
		for i, s := range got {
			pos[s.User] = i + 1
		}
		if pos[1] == 0 || pos[3] == 0 {
			t.Fatalf("%s: missing candidates in %v", name, got)
		}
		if pos[1] > pos[3] {
			t.Errorf("%s: pure swimmer ranked below mixed user: %v", name, got)
		}
	}
}

func TestUnmatchedQueryReturnsNothing(t *testing.T) {
	lm, cands := fixture()
	need := needFor("xylophone zeppelin quark")
	if got := NewModel1(lm).Rank(need, cands); len(got) != 0 {
		t.Errorf("model1 returned %v for unmatched query", got)
	}
	if got := NewModel2(lm).Rank(need, cands); len(got) != 0 {
		t.Errorf("model2 returned %v for unmatched query", got)
	}
}

func TestCandidateWithoutDocsOmitted(t *testing.T) {
	lm, _ := fixture()
	cands := []socialgraph.UserID{1, 99}
	for _, s := range NewModel1(lm).Rank(needFor("swimming"), cands) {
		if s.User == 99 {
			t.Error("model1 ranked a candidate with no documents")
		}
	}
	for _, s := range NewModel2(lm).Rank(needFor("swimming"), cands) {
		if s.User == 99 {
			t.Error("model2 ranked a candidate with no documents")
		}
	}
}

func TestAssociationWeightsMatter(t *testing.T) {
	// Same document associated strongly with user 1, weakly with
	// user 2: user 1 must outrank user 2 under Model 2.
	pipe := analysis.New(analysis.Options{})
	a, _ := pipe.Analyze("the swimming race in the pool was a great competition", nil)
	docs := map[socialgraph.ResourceID]analysis.Analyzed{1: a}
	assoc := map[socialgraph.ResourceID][]Association{
		1: {{Candidate: 1, Weight: 1.0}, {Candidate: 2, Weight: 0.5}},
	}
	lm := NewLM(docs, assoc)
	got := NewModel2(lm).Rank(needFor("swimming pool"), []socialgraph.UserID{1, 2})
	if len(got) != 2 || got[0].User != 1 {
		t.Fatalf("ranking = %v", got)
	}
	if ratio := got[0].Score / got[1].Score; math.Abs(ratio-2) > 1e-9 {
		t.Errorf("score ratio = %v, want 2 (weight ratio)", ratio)
	}
}

func TestDistanceWeights(t *testing.T) {
	rcm := map[socialgraph.ResourceID][]socialgraph.CandidateDistance{
		1: {{Candidate: 1, Distance: 0}, {Candidate: 2, Distance: 2}},
	}
	assoc := DistanceWeights(rcm)
	if len(assoc[1]) != 2 {
		t.Fatalf("assoc = %v", assoc)
	}
	if assoc[1][0].Weight != 1.0 || assoc[1][1].Weight != 0.5 {
		t.Errorf("weights = %v", assoc[1])
	}
}

func TestRandomSelect(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	cands := []socialgraph.UserID{1, 2, 3, 4, 5}
	got := RandomSelect(r, cands, 3)
	if len(got) != 3 {
		t.Fatalf("selected %d", len(got))
	}
	seen := map[socialgraph.UserID]bool{}
	for _, u := range got {
		if seen[u] {
			t.Error("duplicate selection")
		}
		seen[u] = true
	}
	if got := RandomSelect(r, cands, 10); len(got) != 5 {
		t.Errorf("over-sized selection returned %d", len(got))
	}
}

func TestModelsDeterministic(t *testing.T) {
	lm, cands := fixture()
	need := needFor("swimming php code")
	a1 := NewModel1(lm).Rank(need, cands)
	a2 := NewModel1(lm).Rank(need, cands)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("model1 nondeterministic")
		}
	}
	b1 := NewModel2(lm).Rank(need, cands)
	b2 := NewModel2(lm).Rank(need, cands)
	for i := range b1 {
		if b1[i] != b2[i] {
			t.Fatal("model2 nondeterministic")
		}
	}
}
