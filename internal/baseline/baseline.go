// Package baseline implements reference expert-finding methods to
// compare against the paper's social vector-space approach:
//
//   - Random selection, the baseline the paper reports in every table
//     (§3.1: averaging 10 runs of 20 randomly selected users).
//   - Balog's candidate model (Model 1) and document model (Model 2)
//     from "People Search in the Enterprise" [3], the classic
//     language-modeling expert-retrieval methods the paper's §4 cites
//     as the foundation of resource-based expert finding.
//
// Both language models operate on the same analyzed corpus and
// candidate-resource associations as the main system, so comparisons
// isolate the ranking method.
package baseline

import (
	"math"
	"math/rand"
	"sort"

	"expertfind/internal/analysis"
	"expertfind/internal/socialgraph"
)

// Scored is a ranked candidate with its score (a log-probability for
// the language models).
type Scored struct {
	User  socialgraph.UserID
	Score float64
}

// Association weighs how strongly a resource is associated with a
// candidate, e.g. by graph distance.
type Association struct {
	Candidate socialgraph.UserID
	Weight    float64
}

// DistanceWeights converts the social-graph candidate-distance map of
// the main system into association weights using the paper's wr
// weighting (1.0, 0.75, 0.5 for distances 0, 1, 2).
func DistanceWeights(rcm map[socialgraph.ResourceID][]socialgraph.CandidateDistance) map[socialgraph.ResourceID][]Association {
	wr := [3]float64{1.0, 0.75, 0.5}
	out := make(map[socialgraph.ResourceID][]Association, len(rcm))
	for r, cds := range rcm {
		assoc := make([]Association, len(cds))
		for i, cd := range cds {
			assoc[i] = Association{Candidate: cd.Candidate, Weight: wr[cd.Distance]}
		}
		out[r] = assoc
	}
	return out
}

// LM is the shared language-modeling state: per-document term
// frequencies and the background collection model.
type LM struct {
	docs     map[socialgraph.ResourceID]analysis.Analyzed
	docLen   map[socialgraph.ResourceID]int
	collFreq map[string]int
	collLen  int
	assoc    map[socialgraph.ResourceID][]Association
	// Lambda is the Jelinek-Mercer smoothing weight of the collection
	// model; Balog's experiments use 0.5.
	Lambda float64
}

// NewLM builds the language-modeling state over analyzed documents
// and candidate associations.
func NewLM(docs map[socialgraph.ResourceID]analysis.Analyzed, assoc map[socialgraph.ResourceID][]Association) *LM {
	lm := &LM{
		docs:     docs,
		docLen:   make(map[socialgraph.ResourceID]int, len(docs)),
		collFreq: make(map[string]int),
		assoc:    assoc,
		Lambda:   0.5,
	}
	for id, d := range docs {
		n := 0
		for t, tf := range d.Terms {
			lm.collFreq[t] += tf
			n += tf
		}
		lm.docLen[id] = n
		lm.collLen += n
	}
	return lm
}

// pColl is the background probability of a term.
func (lm *LM) pColl(t string) float64 {
	if lm.collLen == 0 {
		return 0
	}
	return float64(lm.collFreq[t]) / float64(lm.collLen)
}

// pDoc is the maximum-likelihood probability of a term in a document.
func (lm *LM) pDoc(t string, d socialgraph.ResourceID) float64 {
	n := lm.docLen[d]
	if n == 0 {
		return 0
	}
	return float64(lm.docs[d].Terms[t]) / float64(n)
}

// Model1 ranks candidates with Balog's candidate model: a smoothed
// candidate language model is estimated from all associated
// documents, and candidates are scored by the query log-likelihood
//
//	log p(q|ca) = Σ_t qtf(t) · log((1−λ)·p(t|θca) + λ·p(t|C)).
type Model1 struct {
	lm *LM
	// p(t|θca) support: per-candidate term distribution.
	candTerms map[socialgraph.UserID]map[string]float64
	candNorm  map[socialgraph.UserID]float64
}

// NewModel1 estimates the per-candidate models.
func NewModel1(lm *LM) *Model1 {
	m := &Model1{
		lm:        lm,
		candTerms: make(map[socialgraph.UserID]map[string]float64),
		candNorm:  make(map[socialgraph.UserID]float64),
	}
	for d, doc := range lm.docs {
		for _, a := range lm.assoc[d] {
			tm := m.candTerms[a.Candidate]
			if tm == nil {
				tm = make(map[string]float64)
				m.candTerms[a.Candidate] = tm
			}
			dl := lm.docLen[d]
			if dl == 0 {
				continue
			}
			for t, tf := range doc.Terms {
				tm[t] += a.Weight * float64(tf) / float64(dl)
			}
			m.candNorm[a.Candidate] += a.Weight
		}
	}
	return m
}

// Rank scores the candidates for a need, best first. Candidates with
// no associated documents are omitted.
func (m *Model1) Rank(need analysis.Analyzed, candidates []socialgraph.UserID) []Scored {
	var out []Scored
	for _, ca := range candidates {
		tm := m.candTerms[ca]
		norm := m.candNorm[ca]
		if tm == nil || norm == 0 {
			continue
		}
		ll := 0.0
		matched := false
		for t, qtf := range need.Terms {
			pca := tm[t] / norm
			pc := m.lm.pColl(t)
			p := (1-m.lm.Lambda)*pca + m.lm.Lambda*pc
			if p <= 0 {
				// Term unseen in the whole collection: skip, as a
				// zero would annihilate every candidate identically.
				continue
			}
			if pca > 0 {
				matched = true
			}
			ll += float64(qtf) * math.Log(p)
		}
		if matched {
			out = append(out, Scored{User: ca, Score: ll})
		}
	}
	sortScored(out)
	return out
}

// Model2 ranks candidates with Balog's document model:
//
//	p(q|ca) = Σ_d p(q|d) · p(d|ca),
//
// with document query likelihoods smoothed against the collection and
// p(d|ca) proportional to the association weight.
type Model2 struct {
	lm *LM
}

// NewModel2 wraps the language-modeling state.
func NewModel2(lm *LM) *Model2 { return &Model2{lm: lm} }

// Rank scores the candidates for a need, best first.
func (m *Model2) Rank(need analysis.Analyzed, candidates []socialgraph.UserID) []Scored {
	inPool := make(map[socialgraph.UserID]bool, len(candidates))
	for _, ca := range candidates {
		inPool[ca] = true
	}
	scores := make(map[socialgraph.UserID]float64)
	norms := make(map[socialgraph.UserID]float64)
	for d, assoc := range m.lm.assoc {
		if _, ok := m.lm.docs[d]; !ok {
			continue
		}
		// p(q|d) in probability space; documents are short, so the
		// product stays representable.
		pq := 1.0
		matched := false
		for t, qtf := range need.Terms {
			pd := m.lm.pDoc(t, d)
			pc := m.lm.pColl(t)
			p := (1-m.lm.Lambda)*pd + m.lm.Lambda*pc
			if p <= 0 {
				continue
			}
			if pd > 0 {
				matched = true
			}
			pq *= math.Pow(p, float64(qtf))
		}
		if !matched {
			continue
		}
		for _, a := range assoc {
			if !inPool[a.Candidate] {
				continue
			}
			scores[a.Candidate] += pq * a.Weight
			norms[a.Candidate] += a.Weight
		}
	}
	var out []Scored
	for ca, s := range scores {
		if norms[ca] > 0 && s > 0 {
			out = append(out, Scored{User: ca, Score: s})
		}
	}
	sortScored(out)
	return out
}

func sortScored(xs []Scored) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Score != xs[j].Score {
			return xs[i].Score > xs[j].Score
		}
		return xs[i].User < xs[j].User
	})
}

// RandomSelect returns k candidates drawn without replacement in
// random order: one run of the paper's random baseline.
func RandomSelect(r *rand.Rand, candidates []socialgraph.UserID, k int) []socialgraph.UserID {
	perm := r.Perm(len(candidates))
	if k > len(perm) {
		k = len(perm)
	}
	out := make([]socialgraph.UserID, k)
	for i := range out {
		out[i] = candidates[perm[i]]
	}
	return out
}
