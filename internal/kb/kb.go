// Package kb provides the knowledge base used for entity recognition
// and disambiguation (paper §2.3). It plays the role Wikipedia plays
// for the TAGME annotator [Ferragina & Scaiella, CIKM 2010] that the
// paper uses: a catalog of real-world entities, each with a unique
// URI, a type (Person, City, Sports Team, ...) and a domain (sports,
// music, technology, ...), plus an anchor dictionary mapping surface
// forms to candidate entities with a commonness prior and a link
// probability.
//
// The same knowledge base supplies the per-domain topic vocabularies
// that the synthetic corpus generator draws from, guaranteeing that
// generated resources contain spottable entity mentions.
package kb

import (
	"fmt"
	"sort"
	"strings"

	"expertfind/internal/textproc"
)

// Domain is one of the seven expertise domains of the paper's
// evaluation dataset (§3.1).
type Domain string

// The seven expertise domains.
const (
	ComputerEngineering Domain = "computer-engineering"
	Location            Domain = "location"
	MoviesTV            Domain = "movies-tv"
	Music               Domain = "music"
	Science             Domain = "science"
	Sport               Domain = "sport"
	Technology          Domain = "technology-games"
)

// Domains lists all expertise domains in the order used by the
// paper's tables.
var Domains = []Domain{
	ComputerEngineering, Location, MoviesTV, Music, Science, Sport, Technology,
}

// EntityID identifies an entity within a KB.
type EntityID int32

// Entity is a real-world concept with a unique interpretation, as
// produced by the Entity Recognition and Disambiguation step.
type Entity struct {
	ID     EntityID
	Label  string // canonical name, e.g. "Michael Phelps"
	URI    string // Wikipedia-like URI, e.g. "wiki:Michael_Phelps"
	Type   string // e.g. "Athlete", "City", "Sports Team"
	Domain Domain
}

// Candidate is one possible interpretation of an anchor.
type Candidate struct {
	Entity     EntityID
	Commonness float64 // prior probability P(entity | anchor)
}

// KB is an immutable knowledge base. Build one with a Builder or use
// Builtin.
type KB struct {
	entities   []Entity
	byLabel    map[string]EntityID
	anchors    map[string][]Candidate // normalized anchor -> candidates
	linkProb   map[string]float64     // normalized anchor -> P(link)
	vocab      map[Domain][]string
	vocabStems map[Domain]map[string]struct{}
	maxTokens  int // longest anchor, in tokens
}

// Builder assembles a KB.
type Builder struct {
	kb   *KB
	errs []error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{kb: &KB{
		byLabel:  make(map[string]EntityID),
		anchors:  make(map[string][]Candidate),
		linkProb: make(map[string]float64),
		vocab:    make(map[Domain][]string),
	}}
}

// AddEntity registers an entity and returns its ID. The canonical
// label is automatically added as an anchor with commonness 1 and the
// given link probability.
func (b *Builder) AddEntity(label, typ string, domain Domain, linkProb float64) EntityID {
	kb := b.kb
	if _, dup := kb.byLabel[label]; dup {
		b.errs = append(b.errs, fmt.Errorf("kb: duplicate entity label %q", label))
	}
	id := EntityID(len(kb.entities))
	kb.entities = append(kb.entities, Entity{
		ID:     id,
		Label:  label,
		URI:    "wiki:" + strings.ReplaceAll(label, " ", "_"),
		Type:   typ,
		Domain: domain,
	})
	kb.byLabel[label] = id
	b.AddAnchor(label, label, 1.0, linkProb)
	return id
}

// AddAnchor registers a surface form for the entity with the given
// canonical label. Commonness is the prior P(entity|anchor); when an
// anchor maps to several entities their commonness values are
// renormalized at Build time. linkProb is the probability that the
// surface form denotes an entity at all (TAGME's lp, used to discard
// stop-word-like anchors).
func (b *Builder) AddAnchor(anchor, entityLabel string, commonness, linkProb float64) {
	kb := b.kb
	id, ok := kb.byLabel[entityLabel]
	if !ok {
		b.errs = append(b.errs, fmt.Errorf("kb: anchor %q references unknown entity %q", anchor, entityLabel))
		return
	}
	norm := NormalizeAnchor(anchor)
	if norm == "" {
		b.errs = append(b.errs, fmt.Errorf("kb: empty anchor for entity %q", entityLabel))
		return
	}
	for _, c := range kb.anchors[norm] {
		if c.Entity == id {
			b.errs = append(b.errs, fmt.Errorf("kb: duplicate anchor %q for entity %q", anchor, entityLabel))
			return
		}
	}
	kb.anchors[norm] = append(kb.anchors[norm], Candidate{Entity: id, Commonness: commonness})
	if lp, seen := kb.linkProb[norm]; !seen || linkProb > lp {
		kb.linkProb[norm] = linkProb
	}
	if n := len(strings.Fields(norm)); n > kb.maxTokens {
		kb.maxTokens = n
	}
}

// AddVocab appends topical vocabulary words to a domain.
func (b *Builder) AddVocab(domain Domain, words ...string) {
	b.kb.vocab[domain] = append(b.kb.vocab[domain], words...)
}

// Build finalizes the KB, renormalizing commonness per anchor.
func (b *Builder) Build() (*KB, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	kb := b.kb
	for norm, cands := range kb.anchors {
		var sum float64
		for _, c := range cands {
			sum += c.Commonness
		}
		if sum <= 0 {
			return nil, fmt.Errorf("kb: anchor %q has non-positive total commonness", norm)
		}
		for i := range cands {
			cands[i].Commonness /= sum
		}
		// Deterministic order: highest commonness first, then ID.
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].Commonness != cands[j].Commonness {
				return cands[i].Commonness > cands[j].Commonness
			}
			return cands[i].Entity < cands[j].Entity
		})
		kb.anchors[norm] = cands
	}
	kb.vocabStems = make(map[Domain]map[string]struct{}, len(kb.vocab))
	for d, words := range kb.vocab {
		stems := make(map[string]struct{}, len(words))
		for _, w := range words {
			stems[textproc.Stem(w)] = struct{}{}
		}
		kb.vocabStems[d] = stems
	}
	return kb, nil
}

// MustBuild is Build that panics on error; intended for the embedded
// builtin catalog.
func (b *Builder) MustBuild() *KB {
	kb, err := b.Build()
	if err != nil {
		panic(err)
	}
	return kb
}

// NormalizeAnchor lowercases an anchor and reduces it to its word
// tokens, using the same tokenizer applied to resource text, so that
// anchors compare equal to the token sequences produced at annotation
// time ("Python (programming language)" → "python programming
// language").
func NormalizeAnchor(anchor string) string {
	return strings.Join(textproc.Tokenize(strings.ToLower(anchor)), " ")
}

// SurfaceForm returns the natural surface form of an entity label for
// text generation: the label with any disambiguating parenthetical
// stripped and lowercased ("Queen (band)" → "queen").
func SurfaceForm(label string) string {
	if i := strings.Index(label, " ("); i > 0 {
		label = label[:i]
	}
	return strings.ToLower(label)
}

// Entity returns the entity with the given ID.
func (k *KB) Entity(id EntityID) Entity {
	return k.entities[id]
}

// EntityByLabel returns the entity with the given canonical label.
func (k *KB) EntityByLabel(label string) (Entity, bool) {
	id, ok := k.byLabel[label]
	if !ok {
		return Entity{}, false
	}
	return k.entities[id], true
}

// Len returns the number of entities.
func (k *KB) Len() int { return len(k.entities) }

// Entities returns all entities (a copy).
func (k *KB) Entities() []Entity {
	out := make([]Entity, len(k.entities))
	copy(out, k.entities)
	return out
}

// Candidates returns the candidate interpretations of a normalized
// anchor, ordered by descending commonness, and its link probability.
// It returns nil when the anchor is unknown.
func (k *KB) Candidates(normAnchor string) ([]Candidate, float64) {
	c, ok := k.anchors[normAnchor]
	if !ok {
		return nil, 0
	}
	return c, k.linkProb[normAnchor]
}

// MaxAnchorTokens returns the length, in tokens, of the longest
// anchor, bounding the spotting window.
func (k *KB) MaxAnchorTokens() int { return k.maxTokens }

// Vocab returns the topical vocabulary of a domain.
func (k *KB) Vocab(d Domain) []string { return k.vocab[d] }

// InVocab reports whether word belongs to the vocabulary of domain d.
// The comparison is on lowercase surface forms.
func (k *KB) InVocab(d Domain, word string) bool {
	for _, w := range k.vocab[d] {
		if w == word {
			return true
		}
	}
	return false
}

// InVocabStem reports whether a Porter stem matches the stemmed
// vocabulary of domain d, so that inflected forms ("restaurants",
// "scored") hit their vocabulary entries.
func (k *KB) InVocabStem(d Domain, stem string) bool {
	_, ok := k.vocabStems[d][stem]
	return ok
}

// EntitiesInDomain returns the entities of a domain, ordered by ID.
func (k *KB) EntitiesInDomain(d Domain) []Entity {
	var out []Entity
	for _, e := range k.entities {
		if e.Domain == d {
			out = append(out, e)
		}
	}
	return out
}
