package kb

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBuiltinLoads(t *testing.T) {
	k := Builtin()
	if k.Len() < 100 {
		t.Fatalf("builtin KB has %d entities, want >= 100", k.Len())
	}
	if Builtin() != k {
		t.Error("Builtin not memoized")
	}
}

func TestBuiltinCoversAllDomains(t *testing.T) {
	k := Builtin()
	for _, d := range Domains {
		if n := len(k.EntitiesInDomain(d)); n < 15 {
			t.Errorf("domain %s has %d entities, want >= 15", d, n)
		}
		if len(k.Vocab(d)) < 20 {
			t.Errorf("domain %s has %d vocab words, want >= 20", d, len(k.Vocab(d)))
		}
	}
}

func TestEntityByLabel(t *testing.T) {
	k := Builtin()
	e, ok := k.EntityByLabel("Michael Phelps")
	if !ok {
		t.Fatal("Michael Phelps not found")
	}
	if e.Domain != Sport || e.Type != "Athlete" {
		t.Errorf("entity = %+v, want Sport Athlete", e)
	}
	if e.URI != "wiki:Michael_Phelps" {
		t.Errorf("URI = %q", e.URI)
	}
	if _, ok := k.EntityByLabel("No Such Entity"); ok {
		t.Error("found nonexistent entity")
	}
}

func TestAmbiguousAnchors(t *testing.T) {
	k := Builtin()
	tests := []struct {
		anchor  string
		domains []Domain
	}{
		{"milan", []Domain{Location, Sport}},
		{"python", []Domain{ComputerEngineering, Science}},
		{"java", []Domain{ComputerEngineering, Location}},
		{"mercury", []Domain{Music, Science}},
		{"steam", []Domain{Science, Technology}},
	}
	for _, tc := range tests {
		cands, _ := k.Candidates(tc.anchor)
		if len(cands) < 2 {
			t.Errorf("anchor %q has %d candidates, want >= 2", tc.anchor, len(cands))
			continue
		}
		got := map[Domain]bool{}
		for _, c := range cands {
			got[k.Entity(c.Entity).Domain] = true
		}
		for _, d := range tc.domains {
			if !got[d] {
				t.Errorf("anchor %q missing candidate in domain %s", tc.anchor, d)
			}
		}
	}
}

func TestCommonnessNormalized(t *testing.T) {
	k := Builtin()
	checked := 0
	for _, e := range k.Entities() {
		norm := NormalizeAnchor(e.Label)
		cands, _ := k.Candidates(norm)
		if cands == nil {
			t.Errorf("canonical label %q is not an anchor", e.Label)
			continue
		}
		var sum float64
		for _, c := range cands {
			if c.Commonness <= 0 || c.Commonness > 1 {
				t.Errorf("anchor %q candidate commonness %v out of (0,1]", norm, c.Commonness)
			}
			sum += c.Commonness
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("anchor %q commonness sums to %v, want 1", norm, sum)
		}
		// Candidates must be sorted by descending commonness.
		for i := 1; i < len(cands); i++ {
			if cands[i].Commonness > cands[i-1].Commonness {
				t.Errorf("anchor %q candidates not sorted", norm)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no anchors checked")
	}
}

func TestLinkProbRange(t *testing.T) {
	k := Builtin()
	for _, e := range k.Entities() {
		_, lp := k.Candidates(NormalizeAnchor(e.Label))
		if lp <= 0 || lp > 1 {
			t.Errorf("entity %q link prob %v out of (0,1]", e.Label, lp)
		}
	}
	// "friends" must be stop-word-like.
	if _, lp := k.Candidates("friends"); lp > 0.2 {
		t.Errorf("anchor friends lp = %v, want <= 0.2", lp)
	}
}

func TestNormalizeAnchor(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Michael  Phelps", "michael phelps"},
		{"  AC Milan ", "ac milan"},
		{"PHP", "php"},
		{"", ""},
		{"   ", ""},
	}
	for _, tc := range tests {
		if got := NormalizeAnchor(tc.in); got != tc.want {
			t.Errorf("NormalizeAnchor(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestMaxAnchorTokens(t *testing.T) {
	k := Builtin()
	if k.MaxAnchorTokens() < 3 {
		t.Errorf("MaxAnchorTokens = %d, want >= 3 (e.g. 'how i met your mother')", k.MaxAnchorTokens())
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.AddEntity("X", "T", Sport, 0.5)
	b.AddAnchor("y", "Unknown", 1, 0.5)
	if _, err := b.Build(); err == nil {
		t.Error("Build with unknown entity anchor: want error")
	}

	b = NewBuilder()
	b.AddEntity("X", "T", Sport, 0.5)
	b.AddEntity("X", "T", Sport, 0.5)
	if _, err := b.Build(); err == nil {
		t.Error("Build with duplicate entity: want error")
	}

	b = NewBuilder()
	b.AddEntity("X", "T", Sport, 0.5)
	b.AddAnchor("x", "X", 1, 0.5) // duplicate of the auto-added canonical anchor
	if _, err := b.Build(); err == nil {
		t.Error("Build with duplicate anchor: want error")
	}
}

func TestInVocab(t *testing.T) {
	k := Builtin()
	if !k.InVocab(Sport, "swimming") {
		t.Error("swimming not in Sport vocab")
	}
	if k.InVocab(Sport, "compiler") {
		t.Error("compiler unexpectedly in Sport vocab")
	}
}

func TestVocabWordsAreLowercaseSingleTokens(t *testing.T) {
	k := Builtin()
	for _, d := range Domains {
		for _, w := range k.Vocab(d) {
			if w != strings.ToLower(w) || strings.ContainsAny(w, " \t") {
				t.Errorf("vocab word %q in %s is not a lowercase single token", w, d)
			}
		}
	}
}

// Property: NormalizeAnchor is idempotent.
func TestNormalizeAnchorIdempotent(t *testing.T) {
	f := func(s string) bool {
		n := NormalizeAnchor(s)
		return NormalizeAnchor(n) == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every entity ID round-trips through Entity().
func TestEntityIDsContiguous(t *testing.T) {
	k := Builtin()
	for i := 0; i < k.Len(); i++ {
		if got := k.Entity(EntityID(i)).ID; got != EntityID(i) {
			t.Fatalf("Entity(%d).ID = %d", i, got)
		}
	}
}
