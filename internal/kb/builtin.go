package kb

import "sync"

var (
	builtinOnce sync.Once
	builtinKB   *KB
)

// Builtin returns the embedded knowledge base: ~150 entities over the
// seven expertise domains, an anchor dictionary with deliberately
// ambiguous surface forms (e.g. "milan" → the city and AC Milan,
// "python" → the language and the snake), and per-domain topic
// vocabularies. It is built once and shared; the KB is immutable
// after construction.
func Builtin() *KB {
	builtinOnce.Do(func() { builtinKB = buildBuiltin() })
	return builtinKB
}

func buildBuiltin() *KB {
	b := NewBuilder()

	// --- Computer engineering -------------------------------------
	b.AddEntity("PHP", "Programming Language", ComputerEngineering, 0.85)
	b.AddEntity("Python (programming language)", "Programming Language", ComputerEngineering, 0.80)
	b.AddEntity("Java (programming language)", "Programming Language", ComputerEngineering, 0.80)
	b.AddEntity("JavaScript", "Programming Language", ComputerEngineering, 0.85)
	b.AddEntity("Perl", "Programming Language", ComputerEngineering, 0.80)
	b.AddEntity("SQL", "Query Language", ComputerEngineering, 0.85)
	b.AddEntity("Linux", "Operating System", ComputerEngineering, 0.85)
	b.AddEntity("Git", "Software", ComputerEngineering, 0.70)
	b.AddEntity("MySQL", "Software", ComputerEngineering, 0.90)
	b.AddEntity("Apache HTTP Server", "Software", ComputerEngineering, 0.75)
	b.AddEntity("Stack Overflow", "Website", ComputerEngineering, 0.90)
	b.AddEntity("Regular expression", "Concept", ComputerEngineering, 0.80)
	b.AddEntity("Compiler", "Concept", ComputerEngineering, 0.70)
	b.AddEntity("Database", "Concept", ComputerEngineering, 0.60)
	b.AddEntity("Algorithm", "Concept", ComputerEngineering, 0.60)
	b.AddEntity("Data structure", "Concept", ComputerEngineering, 0.75)
	b.AddEntity("HTML", "Markup Language", ComputerEngineering, 0.85)
	b.AddEntity("CSS", "Style Language", ComputerEngineering, 0.85)
	b.AddEntity("Hypertext Transfer Protocol", "Protocol", ComputerEngineering, 0.85)
	b.AddEntity("Unit testing", "Concept", ComputerEngineering, 0.80)
	b.AddAnchor("python", "Python (programming language)", 0.75, 0.70)
	b.AddAnchor("java", "Java (programming language)", 0.70, 0.65)
	b.AddAnchor("regex", "Regular expression", 1, 0.90)
	b.AddAnchor("apache", "Apache HTTP Server", 1, 0.70)
	b.AddAnchor("http", "Hypertext Transfer Protocol", 1, 0.60)

	// --- Location ---------------------------------------------------
	b.AddEntity("Milan", "City", Location, 0.75)
	b.AddEntity("Rome", "City", Location, 0.75)
	b.AddEntity("Paris", "City", Location, 0.75)
	b.AddEntity("London", "City", Location, 0.75)
	b.AddEntity("New York City", "City", Location, 0.80)
	b.AddEntity("Tokyo", "City", Location, 0.80)
	b.AddEntity("Berlin", "City", Location, 0.75)
	b.AddEntity("Barcelona", "City", Location, 0.70)
	b.AddEntity("Venice", "City", Location, 0.75)
	b.AddEntity("Florence", "City", Location, 0.70)
	b.AddEntity("Amsterdam", "City", Location, 0.75)
	b.AddEntity("Duomo di Milano", "Landmark", Location, 0.90)
	b.AddEntity("Eiffel Tower", "Landmark", Location, 0.90)
	b.AddEntity("Colosseum", "Landmark", Location, 0.90)
	b.AddEntity("Central Park", "Park", Location, 0.85)
	b.AddEntity("Lake Como", "Lake", Location, 0.85)
	b.AddEntity("Alps", "Mountain Range", Location, 0.80)
	b.AddEntity("Sicily", "Island", Location, 0.80)
	b.AddEntity("Navigli", "District", Location, 0.85)
	b.AddEntity("Java (island)", "Island", Location, 0.60)
	// "milan" is auto-registered by the Milan entity; AC Milan adds a
	// second candidate below, giving the city ~0.74 commonness.
	b.AddAnchor("new york", "New York City", 1, 0.80)
	b.AddAnchor("duomo", "Duomo di Milano", 1, 0.80)
	b.AddAnchor("java", "Java (island)", 0.30, 0.65)

	// --- Movies & TV -------------------------------------------------
	b.AddEntity("How I Met Your Mother", "TV Series", MoviesTV, 0.95)
	b.AddEntity("Breaking Bad", "TV Series", MoviesTV, 0.90)
	b.AddEntity("Game of Thrones", "TV Series", MoviesTV, 0.90)
	b.AddEntity("The Godfather", "Film", MoviesTV, 0.90)
	b.AddEntity("Inception", "Film", MoviesTV, 0.70)
	b.AddEntity("Star Wars", "Film Series", MoviesTV, 0.90)
	b.AddEntity("Pulp Fiction", "Film", MoviesTV, 0.90)
	b.AddEntity("Titanic (film)", "Film", MoviesTV, 0.70)
	b.AddEntity("The Simpsons", "TV Series", MoviesTV, 0.90)
	b.AddEntity("Doctor Who", "TV Series", MoviesTV, 0.85)
	b.AddEntity("Friends (TV series)", "TV Series", MoviesTV, 0.90)
	b.AddEntity("Quentin Tarantino", "Film Director", MoviesTV, 0.90)
	b.AddEntity("Steven Spielberg", "Film Director", MoviesTV, 0.90)
	b.AddEntity("Christopher Nolan", "Film Director", MoviesTV, 0.90)
	b.AddEntity("Leonardo DiCaprio", "Actor", MoviesTV, 0.90)
	b.AddEntity("Neil Patrick Harris", "Actor", MoviesTV, 0.90)
	b.AddEntity("Al Pacino", "Actor", MoviesTV, 0.90)
	b.AddEntity("Netflix", "Company", MoviesTV, 0.85)
	b.AddEntity("HBO", "TV Network", MoviesTV, 0.85)
	b.AddEntity("Pixar", "Film Studio", MoviesTV, 0.85)
	b.AddAnchor("himym", "How I Met Your Mother", 1, 0.90)
	b.AddAnchor("titanic", "Titanic (film)", 0.70, 0.60)
	b.AddAnchor("friends", "Friends (TV series)", 1, 0.12) // stop-word-like anchor
	b.AddAnchor("tarantino", "Quentin Tarantino", 1, 0.90)
	b.AddAnchor("dicaprio", "Leonardo DiCaprio", 1, 0.90)

	// --- Music --------------------------------------------------------
	b.AddEntity("Michael Jackson", "Musician", Music, 0.90)
	b.AddEntity("The Beatles", "Band", Music, 0.90)
	b.AddEntity("The Rolling Stones", "Band", Music, 0.90)
	b.AddEntity("Wolfgang Amadeus Mozart", "Composer", Music, 0.90)
	b.AddEntity("Ludwig van Beethoven", "Composer", Music, 0.90)
	b.AddEntity("Elvis Presley", "Musician", Music, 0.90)
	b.AddEntity("Bob Dylan", "Musician", Music, 0.90)
	b.AddEntity("David Bowie", "Musician", Music, 0.90)
	b.AddEntity("Radiohead", "Band", Music, 0.90)
	b.AddEntity("U2", "Band", Music, 0.80)
	b.AddEntity("Queen (band)", "Band", Music, 0.80)
	b.AddEntity("Freddie Mercury", "Musician", Music, 0.90)
	b.AddEntity("Thriller (album)", "Album", Music, 0.70)
	b.AddEntity("Guitar", "Instrument", Music, 0.60)
	b.AddEntity("Piano", "Instrument", Music, 0.60)
	b.AddEntity("Jazz", "Genre", Music, 0.65)
	b.AddEntity("Opera", "Genre", Music, 0.60)
	b.AddEntity("La Scala", "Opera House", Music, 0.90)
	b.AddEntity("Vinyl record", "Format", Music, 0.80)
	b.AddEntity("Billie Jean", "Song", Music, 0.90)
	b.AddAnchor("mozart", "Wolfgang Amadeus Mozart", 1, 0.90)
	b.AddAnchor("beethoven", "Ludwig van Beethoven", 1, 0.90)
	b.AddAnchor("elvis", "Elvis Presley", 1, 0.85)
	b.AddAnchor("queen", "Queen (band)", 0.55, 0.35)
	b.AddAnchor("mercury", "Freddie Mercury", 0.40, 0.45)
	b.AddAnchor("thriller", "Thriller (album)", 0.60, 0.50)
	b.AddAnchor("beatles", "The Beatles", 1, 0.90)
	b.AddAnchor("rolling stones", "The Rolling Stones", 1, 0.90)

	// --- Science ------------------------------------------------------
	b.AddEntity("Copper", "Chemical Element", Science, 0.70)
	b.AddEntity("Mercury (element)", "Chemical Element", Science, 0.55)
	b.AddEntity("Albert Einstein", "Physicist", Science, 0.90)
	b.AddEntity("Isaac Newton", "Physicist", Science, 0.90)
	b.AddEntity("Charles Darwin", "Naturalist", Science, 0.90)
	b.AddEntity("Quantum mechanics", "Theory", Science, 0.90)
	b.AddEntity("Theory of relativity", "Theory", Science, 0.90)
	b.AddEntity("Evolution", "Theory", Science, 0.60)
	b.AddEntity("DNA", "Molecule", Science, 0.80)
	b.AddEntity("Photosynthesis", "Process", Science, 0.90)
	b.AddEntity("Gravity", "Phenomenon", Science, 0.65)
	b.AddEntity("Electron", "Particle", Science, 0.80)
	b.AddEntity("Higgs boson", "Particle", Science, 0.90)
	b.AddEntity("CERN", "Laboratory", Science, 0.90)
	b.AddEntity("Periodic table", "Concept", Science, 0.90)
	b.AddEntity("Neuron", "Cell", Science, 0.85)
	b.AddEntity("Antibiotic", "Drug Class", Science, 0.80)
	b.AddEntity("Electrical conductor", "Concept", Science, 0.70)
	b.AddEntity("Python (snake)", "Animal", Science, 0.55)
	b.AddEntity("Steam (water vapor)", "Substance", Science, 0.40)
	b.AddAnchor("mercury", "Mercury (element)", 0.60, 0.45)
	b.AddAnchor("einstein", "Albert Einstein", 1, 0.90)
	b.AddAnchor("newton", "Isaac Newton", 1, 0.80)
	b.AddAnchor("darwin", "Charles Darwin", 1, 0.85)
	b.AddAnchor("relativity", "Theory of relativity", 1, 0.85)
	b.AddAnchor("conductor", "Electrical conductor", 1, 0.50)
	b.AddAnchor("python", "Python (snake)", 0.25, 0.70)
	b.AddAnchor("steam", "Steam (water vapor)", 0.35, 0.40)

	// --- Sport --------------------------------------------------------
	b.AddEntity("Michael Phelps", "Athlete", Sport, 0.90)
	b.AddEntity("Usain Bolt", "Athlete", Sport, 0.90)
	b.AddEntity("Roger Federer", "Athlete", Sport, 0.90)
	b.AddEntity("Rafael Nadal", "Athlete", Sport, 0.90)
	b.AddEntity("Cristiano Ronaldo", "Athlete", Sport, 0.90)
	b.AddEntity("Lionel Messi", "Athlete", Sport, 0.90)
	b.AddEntity("Freestyle swimming", "Sport Discipline", Sport, 0.90)
	b.AddEntity("Association football", "Sport", Sport, 0.60)
	b.AddEntity("Basketball", "Sport", Sport, 0.65)
	b.AddEntity("Tennis", "Sport", Sport, 0.65)
	b.AddEntity("Marathon", "Sport Event", Sport, 0.65)
	b.AddEntity("Olympic Games", "Sport Event", Sport, 0.90)
	b.AddEntity("FIFA World Cup", "Sport Event", Sport, 0.90)
	b.AddEntity("UEFA Champions League", "Sport Competition", Sport, 0.90)
	b.AddEntity("Serie A", "Sport Competition", Sport, 0.85)
	b.AddEntity("FC Barcelona", "Sports Team", Sport, 0.80)
	b.AddEntity("Real Madrid", "Sports Team", Sport, 0.85)
	b.AddEntity("AC Milan", "Sports Team", Sport, 0.85)
	b.AddEntity("Juventus", "Sports Team", Sport, 0.85)
	b.AddEntity("Manchester United", "Sports Team", Sport, 0.85)
	b.AddEntity("NBA", "Sports League", Sport, 0.85)
	b.AddAnchor("phelps", "Michael Phelps", 1, 0.90)
	b.AddAnchor("freestyle", "Freestyle swimming", 1, 0.55)
	b.AddAnchor("football", "Association football", 1, 0.55)
	b.AddAnchor("soccer", "Association football", 1, 0.60)
	b.AddAnchor("world cup", "FIFA World Cup", 1, 0.80)
	b.AddAnchor("champions league", "UEFA Champions League", 1, 0.85)
	b.AddAnchor("milan", "AC Milan", 0.35, 0.70)
	b.AddAnchor("barcelona", "FC Barcelona", 0.30, 0.70)
	b.AddAnchor("ronaldo", "Cristiano Ronaldo", 1, 0.85)
	b.AddAnchor("messi", "Lionel Messi", 1, 0.90)
	b.AddAnchor("federer", "Roger Federer", 1, 0.90)
	b.AddAnchor("olympics", "Olympic Games", 1, 0.85)

	// --- Technology & videogames --------------------------------------
	b.AddEntity("Diablo III", "Video Game", Technology, 0.90)
	b.AddEntity("World of Warcraft", "Video Game", Technology, 0.90)
	b.AddEntity("StarCraft", "Video Game", Technology, 0.90)
	b.AddEntity("Minecraft", "Video Game", Technology, 0.90)
	b.AddEntity("The Elder Scrolls V: Skyrim", "Video Game", Technology, 0.90)
	b.AddEntity("Call of Duty", "Video Game Series", Technology, 0.90)
	b.AddEntity("PlayStation", "Game Console", Technology, 0.85)
	b.AddEntity("Xbox", "Game Console", Technology, 0.85)
	b.AddEntity("Nintendo", "Company", Technology, 0.85)
	b.AddEntity("Blizzard Entertainment", "Company", Technology, 0.80)
	b.AddEntity("Steam (service)", "Software Platform", Technology, 0.60)
	b.AddEntity("Nvidia", "Company", Technology, 0.90)
	b.AddEntity("AMD", "Company", Technology, 0.85)
	b.AddEntity("Intel", "Company", Technology, 0.85)
	b.AddEntity("Graphics card", "Hardware", Technology, 0.85)
	b.AddEntity("Central processing unit", "Hardware", Technology, 0.80)
	b.AddEntity("Solid-state drive", "Hardware", Technology, 0.85)
	b.AddEntity("iPhone", "Smartphone", Technology, 0.85)
	b.AddEntity("Android (operating system)", "Operating System", Technology, 0.75)
	b.AddEntity("Oculus Rift", "Hardware", Technology, 0.90)
	b.AddAnchor("diablo 3", "Diablo III", 1, 0.90)
	b.AddAnchor("diablo", "Diablo III", 0.80, 0.60)
	b.AddAnchor("wow", "World of Warcraft", 0.70, 0.30)
	b.AddAnchor("skyrim", "The Elder Scrolls V: Skyrim", 1, 0.90)
	b.AddAnchor("blizzard", "Blizzard Entertainment", 0.75, 0.55)
	b.AddAnchor("steam", "Steam (service)", 0.65, 0.40)
	b.AddAnchor("gpu", "Graphics card", 0.90, 0.80)
	b.AddAnchor("cpu", "Central processing unit", 1, 0.80)
	b.AddAnchor("ssd", "Solid-state drive", 1, 0.85)
	b.AddAnchor("android", "Android (operating system)", 0.85, 0.70)

	addExtendedCatalog(b)

	// --- Per-domain topic vocabularies ---------------------------------
	b.AddVocab(ComputerEngineering,
		"function", "string", "array", "code", "bug", "compile", "debug",
		"server", "query", "table", "index", "class", "object", "method",
		"variable", "loop", "pointer", "memory", "thread", "library",
		"framework", "commit", "branch", "deploy", "api", "backend",
		"frontend", "script", "syntax", "exception", "runtime", "refactor",
		"programming", "software", "developer", "repository")
	b.AddVocab(Location,
		"restaurant", "city", "travel", "trip", "hotel", "museum", "square",
		"street", "river", "beach", "mountain", "church", "cathedral",
		"bridge", "market", "district", "neighborhood", "flight", "train",
		"station", "airport", "tour", "guide", "view", "sunset", "lake",
		"island", "village", "downtown", "pizzeria", "cafe", "vacation")
	b.AddVocab(MoviesTV,
		"movie", "film", "actor", "actress", "episode", "season", "series",
		"director", "scene", "trailer", "cinema", "screenplay", "plot",
		"character", "finale", "premiere", "sitcom", "drama", "comedy",
		"thriller", "oscar", "cast", "sequel", "remake", "documentary",
		"streaming", "binge", "watch", "screen", "studio")
	b.AddVocab(Music,
		"song", "album", "band", "concert", "guitar", "piano", "drums",
		"singer", "melody", "lyrics", "chorus", "tour", "stage", "vinyl",
		"playlist", "record", "symphony", "orchestra", "festival", "gig",
		"bass", "chord", "tune", "track", "single", "studio", "acoustic",
		"rock", "pop", "classical")
	b.AddVocab(Science,
		"copper", "conductor", "electron", "atom", "molecule", "energy",
		"experiment", "theory", "physics", "chemistry", "biology", "cell",
		"gene", "protein", "reaction", "electricity", "magnetic", "quantum",
		"particle", "laboratory", "research", "hypothesis", "evolution",
		"species", "metal", "element", "temperature", "pressure", "wave",
		"resistance", "voltage", "current")
	b.AddVocab(Sport,
		"match", "team", "goal", "league", "player", "coach", "training",
		"swimming", "pool", "medal", "race", "championship", "tournament",
		"stadium", "score", "season", "transfer", "striker", "defender",
		"midfielder", "penalty", "final", "record", "sprint", "athlete",
		"fitness", "gym", "derby", "victory", "defeat", "referee")
	b.AddVocab(Technology,
		"game", "gaming", "console", "graphics", "card", "gpu", "cpu",
		"screen", "keyboard", "mouse", "gadget", "device", "smartphone",
		"tablet", "laptop", "hardware", "driver", "benchmark", "fps",
		"resolution", "quest", "level", "multiplayer", "raid", "patch",
		"update", "release", "review", "specs", "battery", "wireless",
		"overclock")

	return b.MustBuild()
}
