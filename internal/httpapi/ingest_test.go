package httpapi

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"expertfind"
	"expertfind/internal/dataset"
	"expertfind/internal/faults"
	"expertfind/internal/ingest"
	"expertfind/internal/rescache"
	"expertfind/internal/socialgraph"
)

// TestIngestScopedInvalidationE2E drives the scoped-invalidation
// contract end to end through the HTTP surface: a live delta touching
// one query's evidence must turn exactly that query's cached entry
// into a Cache-Status miss that recomputes byte-identically to a cold
// rebuild, while untouched queries keep serving hits — asserted on
// response headers and bodies, not internal counters. The ingest
// status endpoint is checked along the way (404 before an ingester is
// attached, live counters after a round).
//
// A dedicated system is built here: the delta mutates the corpus, so
// the package's shared fixture must stay out of it.
func TestIngestScopedInvalidationE2E(t *testing.T) {
	sysLive := expertfind.NewSystem(expertfind.Config{Seed: 5, Scale: 0.05})
	remote := dataset.Generate(dataset.Config{Seed: 5, Scale: 0.05})

	cache := rescache.New(rescache.Options{Capacity: 256})
	h := NewWithOptions(sysLive, Options{Cache: cache})
	ts := httptest.NewServer(h)
	defer ts.Close()
	defer sysLive.SetResultCache(nil)

	fetch := func(srv *httptest.Server, q string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/find?top=5&q=" + url.QueryEscape(q))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("Cache-Status"), string(body)
	}

	// No ingester attached yet: the status endpoint must distinguish
	// "ingest disabled" from "no rounds yet".
	resp, err := http.Get(ts.URL + "/v1/ingest/status")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ingest status without ingester: %d, want 404", resp.StatusCode)
	}

	ing, err := sysLive.NewIngester(ingest.Config{
		API:   faults.Wrap(remote.Graph, faults.Config{}),
		Cache: cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.SetIngester(ing)

	var status ingest.Status
	get := func() ingest.Status {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/ingest/status")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status: %d", resp.StatusCode)
		}
		var st ingest.Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}
	if status = get(); status.Rounds != 0 {
		t.Fatalf("fresh ingester reports %d rounds", status.Rounds)
	}

	// Warm every evaluation query through the HTTP cache: miss, then
	// hit with an identical body.
	queries := sysLive.Queries()
	warm := make(map[string]string, len(queries))
	for _, q := range queries {
		code, st, body := fetch(ts, q.Text)
		if code != http.StatusOK || st != "miss" {
			t.Fatalf("warm %q: status %d disposition %q, want 200 miss", q.Text, code, st)
		}
		code, st, again := fetch(ts, q.Text)
		if code != http.StatusOK || st != "hit" || again != body {
			t.Fatalf("warm re-ask %q: status %d disposition %q, body equal=%v", q.Text, code, st, again == body)
		}
		warm[q.Text] = body
	}

	// A df-preserving delta on the evidence of the first query: its
	// top matched resources get one of their own words repeated, so
	// the postings move but no document frequency does — the
	// invalidation must stay scoped to groups reaching those docs.
	target := queries[0].Text
	params, err := expertfind.ResolveParams()
	if err != nil {
		t.Fatal(err)
	}
	finder := sysLive.CoreFinder()
	need := finder.Pipeline().AnalyzeNeed(target)
	touched := 0
	for _, sd := range finder.Matches(need, params) {
		if touched == 3 {
			break
		}
		id := socialgraph.ResourceID(sd.Doc)
		r := remote.Graph.Resource(id)
		oldA, ok := finder.Pipeline().Analyze(r.Text, r.URLs)
		if !ok {
			continue
		}
		longest := ""
		for _, w := range strings.Fields(r.Text) {
			if len(w) > len(longest) {
				longest = w
			}
		}
		newText := r.Text + " " + longest
		newA, ok := finder.Pipeline().Analyze(newText, r.URLs)
		if !ok || reflect.DeepEqual(oldA.Terms, newA.Terms) {
			continue
		}
		remote.Graph.SetResourceText(id, newText, r.URLs...)
		touched++
	}
	if touched == 0 {
		t.Fatalf("no evidence resource of %q eligible for a df-preserving edit", target)
	}
	rep, err := ing.RunOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullPurge {
		t.Fatalf("update-only delta forced a full purge: %+v", rep)
	}
	if status = get(); status.Rounds != 1 || status.Updates != touched {
		t.Fatalf("status after one round: %+v, want 1 round with %d updates", status, touched)
	}

	// Post-delta dispositions: the touched query misses and recomputes;
	// untouched groups keep serving their warm bodies as hits.
	postDelta := make(map[string]string, len(queries))
	hits := 0
	for _, q := range queries {
		code, st, body := fetch(ts, q.Text)
		if code != http.StatusOK {
			t.Fatalf("post-delta %q: status %d", q.Text, code)
		}
		postDelta[q.Text] = body
		switch st {
		case "hit":
			hits++
			if body != warm[q.Text] {
				t.Fatalf("post-delta hit for %q changed body", q.Text)
			}
		case "miss":
		default:
			t.Fatalf("post-delta %q: disposition %q", q.Text, st)
		}
		if q.Text == target && st != "miss" {
			t.Fatalf("delta touched the evidence of %q but its entry survived (%q)", target, st)
		}
	}
	if hits == 0 {
		t.Fatal("delta dropped every cached query: invalidation was not scoped")
	}
	// The recomputed entry is resident again and byte-stable.
	if _, st, body := fetch(ts, target); st != "hit" || body != postDelta[target] {
		t.Fatalf("re-ask of recomputed %q: disposition %q, body equal=%v", target, st, body == postDelta[target])
	}

	// Cold truth: snapshot the delta-absorbed corpus, rebuild a fresh
	// uncached system from it, and require every post-delta body —
	// surviving hit or recomputed miss alike — byte-identical to the
	// cold server's.
	snap := filepath.Join(t.TempDir(), "corpus.json.gz")
	if err := sysLive.SaveCorpus(snap); err != nil {
		t.Fatal(err)
	}
	sysCold, err := expertfind.NewSystemFromCorpus(snap)
	if err != nil {
		t.Fatal(err)
	}
	tsCold := httptest.NewServer(New(sysCold))
	defer tsCold.Close()
	for _, q := range queries {
		code, st, body := fetch(tsCold, q.Text)
		if code != http.StatusOK || st != "" {
			t.Fatalf("cold %q: status %d disposition %q, want 200 and no Cache-Status", q.Text, code, st)
		}
		if body != postDelta[q.Text] {
			t.Fatalf("post-delta body for %q diverged from the cold rebuild", q.Text)
		}
	}
}
