package httpapi

// End-to-end scatter-gather tests: real shard systems behind real
// (httptest) shard servers, a real coordinator in front. The central
// gate is differential — an all-healthy coordinator must answer
// /v1/find byte-identically to a single process over the same corpus,
// for every topology size.

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"expertfind"
	"expertfind/internal/resilience"
	"expertfind/internal/scatter"
	"expertfind/internal/telemetry"
)

// scatterTopo is one running scatter-gather deployment: shard servers
// over disjoint slices of cfg's corpus and a coordinator front.
type scatterTopo struct {
	shardSrvs    []*httptest.Server
	shardTracers []*telemetry.Tracer
	shardRIDs    []atomic.Value // last X-Request-ID seen on /v1/shard/*
	frontTracer  *telemetry.Tracer
	front        *httptest.Server
	indexed      []int
}

func newScatterTopo(t *testing.T, cfg expertfind.Config, count int) *scatterTopo {
	t.Helper()
	topo := &scatterTopo{
		shardSrvs:    make([]*httptest.Server, count),
		shardTracers: make([]*telemetry.Tracer, count),
		shardRIDs:    make([]atomic.Value, count),
		indexed:      make([]int, count),
	}
	bases := make([]string, count)
	for i := 0; i < count; i++ {
		sys, err := expertfind.NewSystemShard(cfg, i, count)
		if err != nil {
			t.Fatal(err)
		}
		topo.indexed[i] = sys.Stats().Indexed
		topo.shardTracers[i] = telemetry.NewTracer(8)
		h := NewWithOptions(sys, Options{
			Shard:  &ShardOptions{ID: i, Count: count},
			Tracer: topo.shardTracers[i],
		})
		i := i
		topo.shardSrvs[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasPrefix(r.URL.Path, "/v1/shard/") {
				topo.shardRIDs[i].Store(r.Header.Get("X-Request-ID"))
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(topo.shardSrvs[i].Close)
		bases[i] = topo.shardSrvs[i].URL
	}
	co, err := scatter.New(scatter.Options{
		Shards:  bases,
		Retry:   resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, Multiplier: 2},
		Breaker: resilience.BreakerPolicy{Threshold: 1000, Cooldown: time.Millisecond},
		Hedge:   scatter.HedgePolicy{Disable: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	topo.frontTracer = telemetry.NewTracer(8)
	topo.front = httptest.NewServer(NewCoordinator(co, Options{Tracer: topo.frontTracer}))
	t.Cleanup(topo.front.Close)
	return topo
}

func rawGET(t *testing.T, base, path string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestScatterDifferential is the PR's central gate: all-healthy
// coordinator responses must be byte-identical to a single process
// serving the same corpus, across seeds and topology sizes —
// including parameterized queries.
func TestScatterDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("builds many corpus slices")
	}
	for _, seed := range []int64{1, 2} {
		cfg := expertfind.Config{Seed: seed, Candidates: 12, Scale: 0.05, IndexShards: 1}
		single := expertfind.NewSystem(cfg)
		singleSrv := httptest.NewServer(New(single))
		t.Cleanup(singleSrv.Close)

		queries := single.Queries()
		paths := []string{
			fmt.Sprintf("/v1/find?q=%s", escape(queries[0].Text)),
			fmt.Sprintf("/v1/find?q=%s&top=5", escape(queries[1].Text)),
			fmt.Sprintf("/v1/find?q=%s&alpha=0.3&window=50", escape(queries[2].Text)),
			fmt.Sprintf("/v1/find?q=%s&distance=1&top=3", escape(queries[0].Text)),
			"/v1/find?q=" + escape("database systems and query optimization"),
		}
		baselines := make([][]byte, len(paths))
		for i, p := range paths {
			resp, body := rawGET(t, singleSrv.URL, p, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("seed %d: single-process GET %s: %d %s", seed, p, resp.StatusCode, body)
			}
			baselines[i] = body
		}

		for _, count := range []int{1, 2, 3, 5} {
			topo := newScatterTopo(t, cfg, count)
			slice := 0
			for _, n := range topo.indexed {
				slice += n
			}
			if want := single.Stats().Indexed; slice != want {
				t.Fatalf("seed %d count %d: slices hold %d docs, single process %d", seed, count, slice, want)
			}
			for i, p := range paths {
				resp, body := rawGET(t, topo.front.URL, p, nil)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("seed %d count %d: GET %s: %d %s", seed, count, p, resp.StatusCode, body)
				}
				if resp.Header.Get(DegradedHeader) != "" {
					t.Errorf("seed %d count %d: healthy topology sent degraded header", seed, count)
				}
				if !bytes.Equal(body, baselines[i]) {
					t.Errorf("seed %d count %d: GET %s diverged from single process:\n coordinator: %s\n single:      %s",
						seed, count, p, body, baselines[i])
				}
			}
		}
	}
}

func escape(s string) string { return strings.ReplaceAll(s, " ", "+") }

// TestScatterServing covers the operational contract on one 3-shard
// topology, in order: trace/request-id propagation, then degraded
// mode as shards die, then total failure.
func TestScatterServing(t *testing.T) {
	if testing.Short() {
		t.Skip("builds corpus slices")
	}
	cfg := expertfind.Config{Seed: 1, Candidates: 12, Scale: 0.05, IndexShards: 1}
	topo := newScatterTopo(t, cfg, 3)
	need := "/v1/find?q=" + escape("social network analysis")

	t.Run("request id spans processes", func(t *testing.T) {
		const rid = "rid-scatter-e2e-1"
		resp, body := rawGET(t, topo.front.URL, need, map[string]string{"X-Request-ID": rid})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET: %d %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Request-ID"); got != rid {
			t.Errorf("coordinator echoed rid %q", got)
		}
		for i := range topo.shardRIDs {
			if got, _ := topo.shardRIDs[i].Load().(string); got != rid {
				t.Errorf("shard %d saw rid %q, want %q", i, got, rid)
			}
		}
		// The coordinator trace carries one child span per shard call.
		traces := topo.frontTracer.Recent(1)
		if len(traces) != 1 || traces[0].ID != rid {
			t.Fatalf("front traces = %+v", traces)
		}
		spans := make(map[string]bool)
		for _, sp := range traces[0].Spans {
			spans[sp.Name] = true
		}
		for i := 0; i < 3; i++ {
			for _, phase := range []string{"stats", "find"} {
				if name := fmt.Sprintf("shard%d %s", i, phase); !spans[name] {
					t.Errorf("front trace missing span %q (have %v)", name, traces[0].Spans)
				}
			}
		}
		// Each shard recorded traces under the same id — one per shard
		// call (meta/stats/find) — and the find trace carries the local
		// pipeline spans: one request id stitches the whole fan-out.
		for i, str := range topo.shardTracers {
			found, withSpans := false, false
			for _, ts := range str.Recent(0) {
				if ts.ID != rid {
					continue
				}
				found = true
				got := make(map[string]bool)
				for _, sp := range ts.Spans {
					got[sp.Name] = true
				}
				if got["analyze"] && got["index_match"] {
					withSpans = true
				}
			}
			if !found {
				t.Errorf("shard %d recorded no trace for rid %q", i, rid)
			} else if !withSpans {
				t.Errorf("shard %d has no trace with pipeline spans for rid %q", i, rid)
			}
		}
	})

	t.Run("ready while healthy", func(t *testing.T) {
		resp, body := rawGET(t, topo.front.URL, "/readyz", nil)
		if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"ready"`)) {
			t.Fatalf("/readyz: %d %s", resp.StatusCode, body)
		}
	})

	t.Run("one shard down degrades", func(t *testing.T) {
		topo.shardSrvs[1].Close()
		resp, body := rawGET(t, topo.front.URL, need, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("degraded GET: %d %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get(DegradedHeader); got != "shards=1/3" {
			t.Errorf("degraded header = %q, want shards=1/3", got)
		}
		if !bytes.Contains(body, []byte(`"degraded":{"shards_down":1,"shards_total":3}`)) {
			t.Errorf("degraded body missing marker: %s", body)
		}
		if !bytes.Contains(body, []byte(`"experts":[{`)) {
			t.Errorf("degraded body has no surviving results: %s", body)
		}

		resp, body = rawGET(t, topo.front.URL, "/readyz", nil)
		if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"degraded"`)) {
			t.Errorf("/readyz under partial topology: %d %s", resp.StatusCode, body)
		}
		if got := resp.Header.Get(DegradedHeader); got != "shards=1/3" {
			t.Errorf("/readyz degraded header = %q", got)
		}

		resp, body = rawGET(t, topo.front.URL, "/v1/shards", nil)
		if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"unready":[1]`)) {
			t.Errorf("/v1/shards: %d %s", resp.StatusCode, body)
		}
	})

	t.Run("all shards down fails", func(t *testing.T) {
		topo.shardSrvs[0].Close()
		topo.shardSrvs[2].Close()
		resp, body := rawGET(t, topo.front.URL, need, nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("all-down GET: %d %s", resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("503 without Retry-After")
		}
		resp, _ = rawGET(t, topo.front.URL, "/readyz", nil)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("/readyz all-down: %d", resp.StatusCode)
		}
	})
}
