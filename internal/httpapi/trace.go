package httpapi

// Trace retrieval endpoints: by-request-id lookup, the shard-side
// trace export the coordinator assembles timelines from, and the
// human-readable slow/errored trace view. See ARCHITECTURE.md for the
// cross-process assembly diagram.

import (
	"fmt"
	"net/http"
	"time"

	"expertfind/internal/telemetry"
)

// traceByID serves GET /debug/traces/{rid} on a single-process or
// shard server: every retained trace recorded under that request id
// (newest first), from the keep ring or the recent ring. On a
// coordinator the same route serves the assembled cross-process
// timeline instead.
func (h *Handler) traceByID(w http.ResponseWriter, r *http.Request) {
	rid := sanitizeRequestID(r.PathValue("rid"))
	if rid == "" {
		writeError(w, r, http.StatusBadRequest, "invalid request id")
		return
	}
	traces := h.tracer.Lookup(rid)
	if len(traces) == 0 {
		writeError(w, r, http.StatusNotFound, "no trace retained for request id "+rid)
		return
	}
	writeJSON(w, http.StatusOK, traces)
}

// shardTrace serves GET /v1/shard/trace?rid=...: the span snapshots
// this shard process retained for one request id, which the
// coordinator stitches into the cross-process timeline. An unknown id
// is an empty list, not an error — a shard that restarted mid-query
// legitimately has nothing.
func (h *Handler) shardTrace(w http.ResponseWriter, r *http.Request) {
	rid := sanitizeRequestID(r.URL.Query().Get("rid"))
	if rid == "" {
		writeError(w, r, http.StatusBadRequest, "missing or invalid parameter: rid")
		return
	}
	traces := h.tracer.Lookup(rid)
	if traces == nil {
		traces = []telemetry.TraceSnapshot{}
	}
	writeJSON(w, http.StatusOK, traces)
}

// serveSlow renders the tail-sampled keep ring as text: one block per
// retained slow/errored/shed/degraded trace, spans indented under
// their parents. This is the "which queries hurt recently" page of the
// debugging runbook (OPERATIONS.md).
func serveSlow(tr *telemetry.Tracer, w http.ResponseWriter, _ *http.Request) {
	kept := tr.Kept(0)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	policy := tr.KeepPolicy()
	fmt.Fprintf(w, "%d retained traces (keep ring capacity %d, slow threshold %s)\n",
		len(kept), policy.Capacity, policy.SlowThreshold)
	for _, t := range kept {
		fmt.Fprintf(w, "\n%s  rid=%s  %s  %.3fms  keep=%s\n",
			t.Start.UTC().Format(time.RFC3339Nano), t.ID, t.Name,
			float64(t.DurationUS)/1000, t.Attrs["keep"])
		depth := spanDepths(t.Spans)
		for _, sp := range t.Spans {
			fmt.Fprintf(w, "  %*s%-28s +%.3fms  %.3fms",
				2*depth[sp.ID], "", sp.Name,
				float64(sp.StartOffsetUS)/1000, float64(sp.DurationUS)/1000)
			if e := sp.Attrs["error"]; e != "" {
				fmt.Fprintf(w, "  error=%s", e)
			}
			fmt.Fprintln(w)
		}
	}
}

// spanDepths computes each span's nesting depth from its parent chain.
func spanDepths(spans []telemetry.SpanSnapshot) map[string]int {
	depth := make(map[string]int, len(spans))
	for _, sp := range spans { // spans are recorded in start order, parents first
		if sp.Parent != "" {
			depth[sp.ID] = depth[sp.Parent] + 1
		}
	}
	return depth
}
