// Package httpapi exposes an expert finding System over HTTP with a
// small JSON API, so the expert selection service can back Web
// applications the way the paper envisions (crowd-searching front
// ends, question routers, recommendation systems).
//
// Endpoints:
//
//	GET /healthz                 liveness probe
//	GET /v1/stats                corpus statistics
//	GET /v1/domains              known expertise domains
//	GET /v1/queries              the evaluation query set
//	GET /v1/experts?domain=D     ground-truth experts of a domain
//	GET /v1/find?q=...           ranked experts for an expertise need
//	GET /v1/bestnetwork?q=...    best platform + per-network rankings
//
// /v1/find accepts the optional parameters alpha (0..1), distance
// (0..2), window (int, 0 = no truncation), networks (comma-separated),
// friends (bool) and top (int).
package httpapi

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"expertfind"
)

// Handler serves the JSON API over a System.
type Handler struct {
	sys *expertfind.System
	mux *http.ServeMux
}

// New returns the API handler.
func New(sys *expertfind.System) *Handler {
	h := &Handler{sys: sys, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /healthz", h.health)
	h.mux.HandleFunc("GET /v1/stats", h.stats)
	h.mux.HandleFunc("GET /v1/domains", h.domains)
	h.mux.HandleFunc("GET /v1/queries", h.queries)
	h.mux.HandleFunc("GET /v1/experts", h.experts)
	h.mux.HandleFunc("GET /v1/find", h.find)
	h.mux.HandleFunc("GET /v1/bestnetwork", h.bestNetwork)
	h.mux.HandleFunc("GET /v1/explain", h.explain)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

func (h *Handler) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (h *Handler) stats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.sys.Stats())
}

func (h *Handler) domains(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, expertfind.Domains())
}

func (h *Handler) queries(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, h.sys.Queries())
}

func (h *Handler) experts(w http.ResponseWriter, r *http.Request) {
	domain := r.URL.Query().Get("domain")
	if domain == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter: domain")
		return
	}
	experts, err := h.sys.Experts(domain)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"domain": domain, "experts": experts})
}

// findResponse is the payload of /v1/find.
type findResponse struct {
	Need    string              `json:"need"`
	Experts []expertfind.Expert `json:"experts"`
}

func (h *Handler) find(w http.ResponseWriter, r *http.Request) {
	need := r.URL.Query().Get("q")
	if need == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter: q")
		return
	}
	opts, top, err := parseOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	experts, err := h.sys.Find(need, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if top > 0 && len(experts) > top {
		experts = experts[:top]
	}
	writeJSON(w, http.StatusOK, findResponse{Need: need, Experts: experts})
}

// bestNetworkResponse is the payload of /v1/bestnetwork.
type bestNetworkResponse struct {
	Need     string                                     `json:"need"`
	Best     expertfind.Network                         `json:"best"`
	Rankings map[expertfind.Network][]expertfind.Expert `json:"rankings"`
}

func (h *Handler) bestNetwork(w http.ResponseWriter, r *http.Request) {
	need := r.URL.Query().Get("q")
	if need == "" {
		writeError(w, http.StatusBadRequest, "missing required parameter: q")
		return
	}
	opts, top, err := parseOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	best, rankings, err := h.sys.BestNetwork(need, opts...)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if top > 0 {
		for net, experts := range rankings {
			if len(experts) > top {
				rankings[net] = experts[:top]
			}
		}
	}
	writeJSON(w, http.StatusOK, bestNetworkResponse{Need: need, Best: best, Rankings: rankings})
}

func (h *Handler) explain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	need, expert := q.Get("q"), q.Get("expert")
	if need == "" || expert == "" {
		writeError(w, http.StatusBadRequest, "missing required parameters: q, expert")
		return
	}
	opts, top, err := parseOptions(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if top == 0 {
		top = 5
	}
	expl, err := h.sys.Explain(need, expert, top, opts...)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, expl)
}

// parseOptions converts query parameters into Find options.
func parseOptions(r *http.Request) (opts []expertfind.FindOption, top int, err error) {
	q := r.URL.Query()
	if v := q.Get("alpha"); v != "" {
		alpha, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("invalid alpha %q", v)
		}
		opts = append(opts, expertfind.WithAlpha(alpha))
	}
	if v := q.Get("distance"); v != "" {
		d, err := strconv.Atoi(v)
		if err != nil {
			return nil, 0, fmt.Errorf("invalid distance %q", v)
		}
		opts = append(opts, expertfind.WithMaxDistance(d))
	}
	if v := q.Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, 0, fmt.Errorf("invalid window %q", v)
		}
		opts = append(opts, expertfind.WithWindow(n))
	}
	if v := q.Get("networks"); v != "" {
		var nets []expertfind.Network
		for _, n := range strings.Split(v, ",") {
			nets = append(nets, expertfind.Network(strings.TrimSpace(n)))
		}
		opts = append(opts, expertfind.WithNetworks(nets...))
	}
	if v := q.Get("friends"); v != "" {
		on, err := strconv.ParseBool(v)
		if err != nil {
			return nil, 0, fmt.Errorf("invalid friends %q", v)
		}
		if on {
			opts = append(opts, expertfind.WithFriends())
		}
	}
	if v := q.Get("top"); v != "" {
		top, err = strconv.Atoi(v)
		if err != nil || top < 0 {
			return nil, 0, fmt.Errorf("invalid top %q", v)
		}
	}
	return opts, top, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
