// Package httpapi exposes an expert finding System over HTTP with a
// small JSON API, so the expert selection service can back Web
// applications the way the paper envisions (crowd-searching front
// ends, question routers, recommendation systems).
//
// Endpoints:
//
//	GET /healthz                 liveness probe (always 200 while the process runs)
//	GET /readyz                  readiness probe (503 until a corpus is installed
//	                             or while the concurrency cap is saturated)
//	GET /version                 build info, Go version, uptime
//	GET /metrics                 Prometheus text exposition of the telemetry registry
//	GET /debug/traces            recent /v1 query traces with per-stage spans (JSON)
//	GET /v1/stats                corpus statistics
//	GET /v1/domains              known expertise domains
//	GET /v1/queries              the evaluation query set
//	GET /v1/experts?domain=D     ground-truth experts of a domain
//	GET /v1/find?q=...           ranked experts for an expertise need
//	GET /v1/bestnetwork?q=...    best platform + per-network rankings
//	GET /v1/explain?q=...&expert=N  evidence behind one expert's rank
//	GET /v1/ingest/status        continuous-ingest counters (404 when
//	                             no ingester is attached; see SetIngester)
//
// With Options.Debug, net/http/pprof is mounted under /debug/pprof/
// and expvar under /debug/vars.
//
// /v1/find accepts the optional parameters alpha (0..1), distance
// (0..2), window (int, 0 = no truncation), networks (comma-separated),
// friends (bool), topk (int, bound resource matching to the k best
// reachable matches with MaxScore pruning; 0 = exhaustive) and top
// (int). When the handler manages a result
// cache (Options.Cache), /v1/find responses carry a Cache-Status
// header — hit, miss or coalesced — reporting how the ranking was
// obtained; cached rankings are byte-identical to cold ones.
//
// Every request carries an ID — the inbound X-Request-ID header when
// present, else generated — echoed as a response header, attached to
// log lines and to the trace recorded for /v1 requests. Every error
// response — including 404/405 fallbacks and 503s from the hardening
// middleware — carries the uniform JSON body {"error": "...",
// "request_id": "..."}; 503s additionally carry a Retry-After header.
package httpapi

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"expertfind"
	"expertfind/internal/ingest"
	"expertfind/internal/slo"
	"expertfind/internal/telemetry"
)

// Handler serves the JSON API over a System.
type Handler struct {
	sys    atomic.Pointer[expertfind.System]
	ing    atomic.Pointer[ingest.Ingester]
	mux    *http.ServeMux
	opts   Options
	sem    chan struct{}
	root   http.Handler
	tracer *telemetry.Tracer
}

// New returns the API handler with default (zero) Options.
func New(sys *expertfind.System) *Handler {
	return NewWithOptions(sys, Options{})
}

// NewWithOptions returns the API handler with the serving-path
// hardening described by opts. sys may be nil: the probe endpoints
// work immediately while /v1 answers 503 until SetSystem installs a
// corpus, so the listener can come up before the index is built.
func NewWithOptions(sys *expertfind.System, opts Options) *Handler {
	h := &Handler{mux: http.NewServeMux(), opts: opts, tracer: opts.Tracer}
	if h.tracer == nil {
		h.tracer = telemetry.DefaultTracer()
	}
	if sys != nil {
		h.SetSystem(sys)
	}
	if opts.MaxConcurrent > 0 {
		h.sem = make(chan struct{}, opts.MaxConcurrent)
	}
	h.mux.HandleFunc("GET /healthz", h.health)
	h.mux.HandleFunc("GET /readyz", h.ready)
	h.mux.HandleFunc("GET /version", h.version)
	h.mux.Handle("GET /metrics", telemetry.MetricsHandler(telemetry.Default()))
	h.mux.Handle("GET /debug/traces", telemetry.TracesHandler(h.tracer))
	h.mux.HandleFunc("GET /debug/traces/{rid}", h.traceByID)
	h.mux.HandleFunc("GET /debug/slow", func(w http.ResponseWriter, r *http.Request) {
		serveSlow(h.tracer, w, r)
	})
	if opts.Debug {
		h.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		h.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		h.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		h.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		h.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		h.mux.Handle("GET /debug/vars", expvar.Handler())
	}
	h.mux.HandleFunc("GET /v1/stats", h.v1(h.stats))
	h.mux.HandleFunc("GET /v1/domains", h.v1(h.domains))
	h.mux.HandleFunc("GET /v1/queries", h.v1(h.queries))
	h.mux.HandleFunc("GET /v1/experts", h.v1(h.experts))
	h.mux.HandleFunc("GET /v1/find", h.v1(h.find))
	h.mux.HandleFunc("GET /v1/bestnetwork", h.v1(h.bestNetwork))
	h.mux.HandleFunc("GET /v1/explain", h.v1(h.explain))
	// The ingest status endpoint sits outside the v1 guard: the
	// counters are ops state, meaningful even while the corpus is
	// rebuilding or the concurrency cap is saturated.
	h.mux.HandleFunc("GET /v1/ingest/status", h.ingestStatus)
	if opts.Shard != nil {
		h.mux.HandleFunc("GET /v1/shard/meta", h.v1(h.shardMeta))
		h.mux.HandleFunc("GET /v1/shard/stats", h.v1(h.shardStats))
		h.mux.HandleFunc("POST /v1/shard/find", h.v1(h.shardFind))
		// Trace fetch stays outside the v1 guard: the coordinator
		// assembles timelines even while this shard's corpus is
		// rebuilding or its concurrency cap is saturated, and the fetch
		// itself must not record a trace of its own.
		h.mux.HandleFunc("GET /v1/shard/trace", h.shardTrace)
	}

	h.root = buildRoot(opts, http.HandlerFunc(h.route))
	return h
}

// buildRoot assembles the shared middleware chain around a dispatch
// function: request IDs outermost, then logging, the per-request
// deadline, and panic recovery innermost.
func buildRoot(opts Options, route http.Handler) http.Handler {
	root := withRecovery(opts.Logger, route)
	if opts.RequestTimeout > 0 {
		root = withTimeout(opts, root)
	}
	if opts.Logger != nil {
		root = withLogging(opts.Logger, root)
	}
	return withRequestID(root)
}

// SetSystem atomically installs (or swaps) the served System. Until
// the first call with a non-nil System, /readyz and all /v1 routes
// answer 503. With Options.Cache configured, each install attaches a
// fresh cache generation to the incoming System — purging the
// previous corpus's entries — and a nil install invalidates the
// cache, so rankings can never outlive the corpus that produced them.
func (h *Handler) SetSystem(sys *expertfind.System) {
	if c := h.opts.Cache; c != nil {
		if sys != nil {
			sys.SetResultCache(c.Attach())
		} else {
			c.Invalidate()
		}
	}
	h.sys.Store(sys)
}

// SetIngester attaches (or, with nil, detaches) the continuous-ingest
// driver whose cumulative counters /v1/ingest/status serves. Without
// one the endpoint answers 404, so probes can tell "ingest disabled"
// from "no rounds yet".
func (h *Handler) SetIngester(ing *ingest.Ingester) {
	h.ing.Store(ing)
}

func (h *Handler) ingestStatus(w http.ResponseWriter, r *http.Request) {
	ing := h.ing.Load()
	if ing == nil {
		writeError(w, r, http.StatusNotFound, "ingest not enabled")
		return
	}
	writeJSON(w, http.StatusOK, ing.Status())
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.root.ServeHTTP(w, r)
}

// route dispatches through the mux, measuring every request into the
// per-route metrics (count by status, latency histogram, in-flight
// gauge) and rewriting the mux's plain-text 404/405 fallbacks into
// the API's uniform JSON error shape while preserving the status and
// the Allow header the mux computes.
func (h *Handler) route(w http.ResponseWriter, r *http.Request) {
	dispatchMux(h.mux, h.opts.SLO, w, r)
}

// dispatchMux is the shared routing core of the API handlers (shard
// and coordinator processes alike). Besides the per-route metrics, it
// reports the matched route to the access-log middleware and observes
// every /v1 request into the SLO burn-rate tracker.
func dispatchMux(mux *http.ServeMux, st *slo.Tracker, w http.ResponseWriter, r *http.Request) {
	handler, pattern := mux.Handler(r)
	route := routeLabel(pattern)
	if rh, ok := r.Context().Value(routeCtxKey{}).(*routeHolder); ok {
		rh.set(route)
	}
	mInFlight.Inc()
	defer mInFlight.Dec()
	t0 := time.Now()
	sw := &statusWriter{ResponseWriter: w}

	if pattern != "" {
		// Dispatch through the mux (not the handler mux.Handler returned)
		// so wildcard patterns like /debug/traces/{rid} get their path
		// values bound.
		mux.ServeHTTP(sw, r)
	} else {
		rec := &timeoutWriter{header: make(http.Header)}
		handler.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusNotFound
		}
		if allow := rec.header.Get("Allow"); allow != "" {
			sw.Header().Set("Allow", allow)
		}
		writeError(sw, r, status, http.StatusText(status))
	}

	status := sw.status
	if status == 0 {
		status = http.StatusOK
	}
	mDuration.With(route).ObserveSince(t0)
	mRequests.With(route, strconv.Itoa(status)).Inc()
	if st != nil && strings.Contains(route, " /v1/") {
		st.Observe(status, time.Since(t0))
	}
}

// v1 guards an API route: shed load when the concurrency cap is
// saturated, and refuse with 503 until a corpus is installed. The
// probe endpoints bypass this, so /healthz stays 200 while /v1 sheds.
// Every request — including shed and not-ready refusals — runs under a
// telemetry trace (named after the route, identified by the request
// ID); shed, errored and degraded traces are marked for tail-sampled
// retention so /debug/traces/{rid} can still find them after a flood
// of healthy queries. On a shard process, the coordinator's span
// header nests the trace under the fan-out attempt that carried it.
func (h *Handler) v1(f func(*expertfind.System, http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, tr := h.tracer.Start(r.Context(), r.Method+" "+r.URL.Path, requestID(r.Context()))
		defer tr.Finish()
		if q := r.URL.Query().Get("q"); q != "" {
			tr.SetAttr("q", q)
		}
		if parent := sanitizeRequestID(r.Header.Get(telemetry.SpanHeader)); parent != "" {
			tr.SetParentSpan(parent)
		}
		sw := &statusWriter{ResponseWriter: w}
		defer func() {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			tr.SetAttr("status", strconv.Itoa(status))
			if sw.Header().Get(DegradedHeader) != "" {
				tr.Keep("degraded")
			}
			if status >= 500 {
				tr.Keep("error")
			}
		}()
		if h.sem != nil {
			select {
			case h.sem <- struct{}{}:
				defer func() { <-h.sem }()
			default:
				mShed.Inc()
				tr.Keep("shed")
				h.opts.writeUnavailable(sw, r, "server overloaded")
				return
			}
		}
		sys := h.sys.Load()
		if sys == nil {
			h.opts.writeUnavailable(sw, r, "corpus not ready")
			return
		}
		f(sys, sw, r.WithContext(ctx))
	}
}

func (h *Handler) health(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ready reports whether the service can usefully answer /v1 traffic:
// a corpus must be installed and the concurrency cap must have head
// room (a saturated cap is the serving-side analogue of an open
// circuit breaker — tell the balancer to route elsewhere).
func (h *Handler) ready(w http.ResponseWriter, r *http.Request) {
	if h.sys.Load() == nil {
		h.opts.writeUnavailable(w, r, "corpus not ready")
		return
	}
	if h.sem != nil && len(h.sem) == cap(h.sem) {
		h.opts.writeUnavailable(w, r, "server overloaded")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func (h *Handler) stats(sys *expertfind.System, w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, sys.Stats())
}

func (h *Handler) domains(_ *expertfind.System, w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, expertfind.Domains())
}

func (h *Handler) queries(sys *expertfind.System, w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, sys.Queries())
}

func (h *Handler) experts(sys *expertfind.System, w http.ResponseWriter, r *http.Request) {
	domain := r.URL.Query().Get("domain")
	if domain == "" {
		writeError(w, r, http.StatusBadRequest, "missing required parameter: domain")
		return
	}
	experts, err := sys.Experts(domain)
	if err != nil {
		writeError(w, r, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"domain": domain, "experts": experts})
}

// findResponse is the payload of /v1/find.
type findResponse struct {
	Need    string              `json:"need"`
	Experts []expertfind.Expert `json:"experts"`
}

func (h *Handler) find(sys *expertfind.System, w http.ResponseWriter, r *http.Request) {
	need := r.URL.Query().Get("q")
	if need == "" {
		writeError(w, r, http.StatusBadRequest, "missing required parameter: q")
		return
	}
	opts, top, err := parseOptions(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	opts = h.applyDefaultTopK(r, opts)
	experts, cacheStatus, err := sys.FindCachedContext(r.Context(), need, opts...)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if cacheStatus != "" {
		w.Header().Set("Cache-Status", cacheStatus)
	}
	if top > 0 && len(experts) > top {
		experts = experts[:top]
	}
	writeJSON(w, http.StatusOK, findResponse{Need: need, Experts: experts})
}

// bestNetworkResponse is the payload of /v1/bestnetwork.
type bestNetworkResponse struct {
	Need     string                                     `json:"need"`
	Best     expertfind.Network                         `json:"best"`
	Rankings map[expertfind.Network][]expertfind.Expert `json:"rankings"`
}

func (h *Handler) bestNetwork(sys *expertfind.System, w http.ResponseWriter, r *http.Request) {
	need := r.URL.Query().Get("q")
	if need == "" {
		writeError(w, r, http.StatusBadRequest, "missing required parameter: q")
		return
	}
	opts, top, err := parseOptions(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	opts = h.applyDefaultTopK(r, opts)
	best, rankings, err := sys.BestNetworkContext(r.Context(), need, opts...)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if top > 0 {
		for net, experts := range rankings {
			if len(experts) > top {
				rankings[net] = experts[:top]
			}
		}
	}
	writeJSON(w, http.StatusOK, bestNetworkResponse{Need: need, Best: best, Rankings: rankings})
}

func (h *Handler) explain(sys *expertfind.System, w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	need, expert := q.Get("q"), q.Get("expert")
	if need == "" || expert == "" {
		writeError(w, r, http.StatusBadRequest, "missing required parameters: q, expert")
		return
	}
	opts, top, err := parseOptions(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	if top == 0 {
		top = 5
	}
	expl, err := sys.Explain(need, expert, top, opts...)
	if err != nil {
		writeError(w, r, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, expl)
}

// applyDefaultTopK appends the handler's default top-k bound when the
// request did not choose one itself (including an explicit topk=0 to
// force exhaustive scoring).
func (h *Handler) applyDefaultTopK(r *http.Request, opts []expertfind.FindOption) []expertfind.FindOption {
	if h.opts.DefaultTopK > 0 && !r.URL.Query().Has("topk") {
		opts = append(opts, expertfind.WithTopK(h.opts.DefaultTopK))
	}
	return opts
}

// parseOptions converts query parameters into Find options.
func parseOptions(r *http.Request) (opts []expertfind.FindOption, top int, err error) {
	q := r.URL.Query()
	if v := q.Get("alpha"); v != "" {
		alpha, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("invalid alpha %q", v)
		}
		opts = append(opts, expertfind.WithAlpha(alpha))
	}
	if v := q.Get("distance"); v != "" {
		d, err := strconv.Atoi(v)
		if err != nil {
			return nil, 0, fmt.Errorf("invalid distance %q", v)
		}
		opts = append(opts, expertfind.WithMaxDistance(d))
	}
	if v := q.Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return nil, 0, fmt.Errorf("invalid window %q", v)
		}
		opts = append(opts, expertfind.WithWindow(n))
	}
	if v := q.Get("networks"); v != "" {
		var nets []expertfind.Network
		for _, n := range strings.Split(v, ",") {
			nets = append(nets, expertfind.Network(strings.TrimSpace(n)))
		}
		opts = append(opts, expertfind.WithNetworks(nets...))
	}
	if v := q.Get("friends"); v != "" {
		on, err := strconv.ParseBool(v)
		if err != nil {
			return nil, 0, fmt.Errorf("invalid friends %q", v)
		}
		if on {
			opts = append(opts, expertfind.WithFriends())
		}
	}
	if v := q.Get("topk"); v != "" {
		k, err := strconv.Atoi(v)
		if err != nil || k < 0 {
			return nil, 0, fmt.Errorf("invalid topk %q", v)
		}
		opts = append(opts, expertfind.WithTopK(k))
	}
	if v := q.Get("top"); v != "" {
		top, err = strconv.Atoi(v)
		if err != nil || top < 0 {
			return nil, 0, fmt.Errorf("invalid top %q", v)
		}
	}
	return opts, top, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError sends the uniform JSON error body, tagged with the
// request's ID when the middleware chain assigned one (so a client
// report and the server's log line can be correlated).
func writeError(w http.ResponseWriter, r *http.Request, status int, msg string) {
	body := map[string]string{"error": msg}
	if id := requestID(r.Context()); id != "" {
		body["request_id"] = id
	}
	writeJSON(w, status, body)
}
