package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"expertfind/internal/telemetry"
)

// TestMetricsReflectServedFind drives a /v1/find through the full
// middleware chain and asserts the scrape afterwards carries the
// request counter, the per-stage pipeline timings and the traversal
// cache counters that query must have produced.
func TestMetricsReflectServedFind(t *testing.T) {
	s := server(t)
	resp, err := http.Get(s.URL + "/v1/find?q=" + url.QueryEscape("why is copper a good conductor?"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("find status = %d", resp.StatusCode)
	}

	resp, err = http.Get(s.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	for _, want := range []string{
		`expertfind_http_requests_total{route="GET /v1/find",code="200"}`,
		`expertfind_http_request_duration_seconds_bucket{route="GET /v1/find",le="+Inf"}`,
		"expertfind_http_in_flight_requests 1", // the /metrics request itself
		`expertfind_pipeline_stage_duration_seconds_bucket{stage="analyze"`,
		`expertfind_pipeline_stage_duration_seconds_bucket{stage="traverse"`,
		`expertfind_pipeline_stage_duration_seconds_bucket{stage="index_match"`,
		`expertfind_pipeline_stage_duration_seconds_bucket{stage="aggregate_rank"`,
		"expertfind_queries_total",
		"expertfind_traversal_cache_hits_total",
		"expertfind_traversal_cache_misses_total",
		"expertfind_index_queries_total",
		"expertfind_index_postings_scored_total",
		"expertfind_graph_traversals_total",
		"expertfind_uptime_seconds",
		"# TYPE expertfind_http_requests_total counter",
		"# TYPE expertfind_pipeline_stage_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestDebugTracesShowPipelineSpans serves a /v1/find tagged with a
// known request ID and asserts /debug/traces returns that query's
// trace with one span per pipeline stage.
func TestDebugTracesShowPipelineSpans(t *testing.T) {
	s := server(t)
	req, err := http.NewRequest(http.MethodGet,
		s.URL+"/v1/find?q="+url.QueryEscape("famous football teams"), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "trace-probe-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("find status = %d", resp.StatusCode)
	}

	resp, err = http.Get(s.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var traces []telemetry.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	var found *telemetry.TraceSnapshot
	for i := range traces {
		if traces[i].ID == "trace-probe-1" {
			found = &traces[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("trace trace-probe-1 not in /debug/traces (%d traces)", len(traces))
	}
	if found.Name != "GET /v1/find" {
		t.Errorf("trace name = %q", found.Name)
	}
	if found.Attrs["q"] != "famous football teams" {
		t.Errorf("trace attrs = %v", found.Attrs)
	}
	stages := make(map[string]bool)
	for _, sp := range found.Spans {
		stages[sp.Name] = true
		if sp.DurationUS < 0 {
			t.Errorf("span %s has negative duration", sp.Name)
		}
	}
	for _, want := range []string{"analyze", "traverse", "index_match", "aggregate_rank"} {
		if !stages[want] {
			t.Errorf("trace missing span %q (have %v)", want, stages)
		}
	}
}

func TestDebugTracesLimit(t *testing.T) {
	s := server(t)
	resp, err := http.Get(s.URL + "/debug/traces?n=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid n: status = %d", resp.StatusCode)
	}
}

func TestRequestIDEchoed(t *testing.T) {
	s := server(t)
	req, err := http.NewRequest(http.MethodGet, s.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "client-chosen-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "client-chosen-42" {
		t.Errorf("X-Request-ID = %q, want client-chosen-42", got)
	}
}

func TestRequestIDGenerated(t *testing.T) {
	s := server(t)
	resp, err := http.Get(s.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); len(got) != 16 {
		t.Errorf("generated X-Request-ID = %q, want 16 hex chars", got)
	}
}

func TestRequestIDSanitized(t *testing.T) {
	s := server(t)
	req, err := http.NewRequest(http.MethodGet, s.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", `evil"injection`)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Request-ID")
	if got == `evil"injection` || len(got) != 16 {
		t.Errorf("hostile inbound ID not replaced: %q", got)
	}
}

func TestErrorBodyCarriesRequestID(t *testing.T) {
	s := server(t)
	req, err := http.NewRequest(http.MethodGet, s.URL+"/v1/find", nil) // missing q → 400
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "err-corr-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["request_id"] != "err-corr-7" {
		t.Errorf("error body = %v, want request_id err-corr-7", body)
	}
	if body["error"] == "" {
		t.Errorf("error body missing message: %v", body)
	}
}

func TestVersion(t *testing.T) {
	s := server(t)
	resp, err := http.Get(s.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var v versionInfo
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(v.GoVersion, "go") {
		t.Errorf("go_version = %q", v.GoVersion)
	}
	if v.UptimeSeconds < 0 {
		t.Errorf("uptime_seconds = %v", v.UptimeSeconds)
	}
	if v.Start.IsZero() {
		t.Error("start is zero")
	}
}

// TestDebugEndpointsGated asserts pprof and expvar are absent by
// default and present under Options.Debug.
func TestDebugEndpointsGated(t *testing.T) {
	probe := func(h *Handler, path string) int {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code
	}
	plain := NewWithOptions(nil, Options{})
	if got := probe(plain, "/debug/vars"); got != http.StatusNotFound {
		t.Errorf("/debug/vars without Debug: status = %d, want 404", got)
	}
	dbg := NewWithOptions(nil, Options{Debug: true})
	if got := probe(dbg, "/debug/vars"); got != http.StatusOK {
		t.Errorf("/debug/vars with Debug: status = %d, want 200", got)
	}
	if got := probe(dbg, "/debug/pprof/cmdline"); got != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline with Debug: status = %d, want 200", got)
	}
}

func TestRouteLabel(t *testing.T) {
	for pattern, want := range map[string]string{
		"":                        "unmatched",
		"GET /v1/find":            "GET /v1/find",
		"GET /debug/pprof/":       "GET /debug/pprof/*",
		"GET /debug/pprof/symbol": "GET /debug/pprof/*",
		"GET /metrics":            "GET /metrics",
	} {
		if got := routeLabel(pattern); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", pattern, got, want)
		}
	}
}

func TestSanitizeRequestID(t *testing.T) {
	for in, want := range map[string]string{
		"ok-id_123":             "ok-id_123",
		"":                      "",
		"has space":             "",
		"quote\"y":              "",
		"newline\n":             "",
		strings.Repeat("x", 65): "",
		strings.Repeat("x", 64): strings.Repeat("x", 64),
		"tab\tseparated":        "",
		"unicode-é":             "",
		"punct-ok;{}~!":         "punct-ok;{}~!",
	} {
		if got := sanitizeRequestID(in); got != want {
			t.Errorf("sanitizeRequestID(%q) = %q, want %q", in, got, want)
		}
	}
}
