package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"expertfind"
)

// errBody decodes the uniform {"error": "..."} payload.
func errBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("error response content type %q", ct)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding error body: %v", err)
	}
	if body.Error == "" {
		t.Error("error body has empty message")
	}
	return body.Error
}

// TestLoadShedding is the acceptance scenario: with the concurrency
// cap saturated, /v1/find sheds with 503 + Retry-After while the
// liveness probe stays 200 and the readiness probe reports overload.
func TestLoadShedding(t *testing.T) {
	system := expertfind.NewSystem(expertfind.Config{Seed: 1, Scale: 0.1})
	h := NewWithOptions(system, Options{MaxConcurrent: 2, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(h)
	defer ts.Close()

	// Occupy every slot, simulating two requests stuck in handlers.
	h.sem <- struct{}{}
	h.sem <- struct{}{}

	resp, err := http.Get(ts.URL + "/v1/find?q=copper")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated /v1/find status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Errorf("Retry-After = %q, want \"2\"", ra)
	}
	if msg := errBody(t, resp); !strings.Contains(msg, "overloaded") {
		t.Errorf("shed message = %q", msg)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status under load = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz status under load = %d, want 503", resp.StatusCode)
	}

	// Free a slot: traffic flows again.
	<-h.sem
	resp, err = http.Get(ts.URL + "/v1/find?q=copper")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/v1/find after drain = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz after drain = %d, want 200", resp.StatusCode)
	}
	<-h.sem
}

// TestReadinessGating covers the serve startup sequence: the listener
// is up before the corpus, so /v1 and /readyz answer 503 until
// SetSystem installs it, while /healthz is green the whole time.
func TestReadinessGating(t *testing.T) {
	h := NewWithOptions(nil, Options{})
	ts := httptest.NewServer(h)
	defer ts.Close()

	for _, path := range []string{"/readyz", "/v1/stats", "/v1/find?q=x"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s before SetSystem = %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("%s before SetSystem: missing Retry-After", path)
		}
		if msg := errBody(t, resp); !strings.Contains(msg, "not ready") {
			t.Errorf("%s message = %q", path, msg)
		}
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz before SetSystem = %d, want 200", resp.StatusCode)
	}

	h.SetSystem(expertfind.NewSystem(expertfind.Config{Seed: 1, Scale: 0.1}))
	for _, path := range []string{"/readyz", "/v1/stats"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s after SetSystem = %d, want 200", path, resp.StatusCode)
		}
	}
}

func TestPanicRecoveryMiddleware(t *testing.T) {
	var logs bytes.Buffer
	inner := http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	rec := httptest.NewRecorder()
	withRecovery(slog.New(slog.NewTextHandler(&logs, nil)), inner).ServeHTTP(rec, httptest.NewRequest("GET", "/v1/find", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Errorf("body = %q (err %v)", rec.Body.String(), err)
	}
	if !strings.Contains(logs.String(), "kaboom") {
		t.Errorf("panic not logged: %q", logs.String())
	}
}

func TestRequestTimeout(t *testing.T) {
	slow := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
			w.Write([]byte("too late"))
		case <-r.Context().Done():
		}
	})
	opts := Options{RequestTimeout: 30 * time.Millisecond, RetryAfter: 3 * time.Second}
	rec := httptest.NewRecorder()
	withTimeout(opts, slow).ServeHTTP(rec, httptest.NewRequest("GET", "/v1/find", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("status = %d, want 503", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", ra)
	}
	if !strings.Contains(rec.Body.String(), "timed out") {
		t.Errorf("body = %q", rec.Body.String())
	}

	// A fast handler passes through with headers and body intact.
	fast := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Fast", "yes")
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("done"))
	})
	rec = httptest.NewRecorder()
	withTimeout(opts, fast).ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusTeapot || rec.Body.String() != "done" || rec.Header().Get("X-Fast") != "yes" {
		t.Errorf("passthrough: code %d, body %q, header %q", rec.Code, rec.Body.String(), rec.Header().Get("X-Fast"))
	}
}

// TestRequestLogging asserts the structured access log: one record
// per request carrying method, path, the matched route pattern,
// status, and the request id the client can correlate on.
func TestRequestLogging(t *testing.T) {
	var logs bytes.Buffer
	system := expertfind.NewSystem(expertfind.Config{Seed: 1, Scale: 0.1})
	h := NewWithOptions(system, Options{Logger: slog.New(slog.NewJSONHandler(&logs, nil))})
	ts := httptest.NewServer(h)
	defer ts.Close()

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-ID", "log-probe-9")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var rec map[string]any
	if err := json.Unmarshal(logs.Bytes(), &rec); err != nil {
		t.Fatalf("access log is not JSON: %v (%s)", err, logs.String())
	}
	for key, want := range map[string]any{
		"msg":    "request",
		"method": "GET",
		"path":   "/healthz",
		"route":  "GET /healthz",
		"status": float64(200),
		"rid":    "log-probe-9",
	} {
		if rec[key] != want {
			t.Errorf("access log %s = %v, want %v (record %v)", key, rec[key], want, rec)
		}
	}
}

// TestJSONFallbacks verifies the mux's plain-text 404/405 responses
// are rewritten into the uniform JSON error shape.
func TestJSONFallbacks(t *testing.T) {
	ts := server(t)

	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d", resp.StatusCode)
	}
	errBody(t, resp)

	resp, err = http.Post(ts.URL+"/v1/find?q=x", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); !strings.Contains(allow, "GET") {
		t.Errorf("Allow = %q", allow)
	}
	errBody(t, resp)
}

// TestUniformParamErrors is the table-driven check that every bad
// request parameter yields 400 with the {"error": "..."} body.
func TestUniformParamErrors(t *testing.T) {
	ts := server(t)
	cases := []struct {
		name, path, wantIn string
	}{
		{"missing q", "/v1/find", "missing required parameter"},
		{"bad alpha", "/v1/find?q=x&alpha=banana", "alpha"},
		{"alpha out of range", "/v1/find?q=x&alpha=7", "alpha"},
		{"bad distance", "/v1/find?q=x&distance=far", "distance"},
		{"distance out of range", "/v1/find?q=x&distance=9", "distance"},
		{"bad window", "/v1/find?q=x&window=wide", "window"},
		{"unknown network", "/v1/find?q=x&networks=myspace", "network"},
		{"bad friends", "/v1/find?q=x&friends=maybe", "friends"},
		{"negative top", "/v1/find?q=x&top=-1", "top"},
		{"bestnetwork bad alpha", "/v1/bestnetwork?q=x&alpha=no", "alpha"},
		{"explain bad top", "/v1/explain?q=x&expert=y&top=zz", "top"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			if msg := errBody(t, resp); !strings.Contains(msg, tc.wantIn) {
				t.Errorf("error %q does not mention %q", msg, tc.wantIn)
			}
		})
	}
}
