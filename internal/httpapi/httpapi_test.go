package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"expertfind"
)

var (
	srvOnce sync.Once
	srv     *httptest.Server
	sys     *expertfind.System
)

func server(t testing.TB) *httptest.Server {
	t.Helper()
	srvOnce.Do(func() {
		sys = expertfind.NewSystem(expertfind.Config{Seed: 1, Scale: 0.1})
		srv = httptest.NewServer(New(sys))
	})
	return srv
}

func get(t *testing.T, path string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(server(t).URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET %s: content type %q", path, ct)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decoding: %v", path, err)
		}
	}
}

func TestHealth(t *testing.T) {
	var body map[string]string
	get(t, "/healthz", http.StatusOK, &body)
	if body["status"] != "ok" {
		t.Errorf("body = %v", body)
	}
}

func TestStats(t *testing.T) {
	var st expertfind.Stats
	get(t, "/v1/stats", http.StatusOK, &st)
	if st.Candidates != 40 || st.Resources == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDomainsAndQueries(t *testing.T) {
	var domains []string
	get(t, "/v1/domains", http.StatusOK, &domains)
	if len(domains) != 7 {
		t.Errorf("domains = %v", domains)
	}
	var queries []expertfind.Query
	get(t, "/v1/queries", http.StatusOK, &queries)
	if len(queries) != 30 {
		t.Errorf("queries = %d", len(queries))
	}
}

func TestExperts(t *testing.T) {
	var body struct {
		Domain  string   `json:"domain"`
		Experts []string `json:"experts"`
	}
	get(t, "/v1/experts?domain=sport", http.StatusOK, &body)
	if body.Domain != "sport" || len(body.Experts) == 0 {
		t.Errorf("body = %+v", body)
	}
	get(t, "/v1/experts?domain=cooking", http.StatusNotFound, nil)
	get(t, "/v1/experts", http.StatusBadRequest, nil)
}

func TestFind(t *testing.T) {
	var body struct {
		Need    string              `json:"need"`
		Experts []expertfind.Expert `json:"experts"`
	}
	q := url.QueryEscape("why is copper a good conductor?")
	get(t, "/v1/find?q="+q, http.StatusOK, &body)
	if len(body.Experts) == 0 {
		t.Fatal("no experts")
	}
	for i := 1; i < len(body.Experts); i++ {
		if body.Experts[i].Score > body.Experts[i-1].Score {
			t.Error("ranking not descending")
		}
	}

	// top truncation
	get(t, "/v1/find?top=2&q="+q, http.StatusOK, &body)
	if len(body.Experts) > 2 {
		t.Errorf("top=2 returned %d experts", len(body.Experts))
	}

	// options pass through
	get(t, "/v1/find?distance=0&networks=linkedin&alpha=0.8&window=50&friends=true&q="+q, http.StatusOK, &body)
}

func TestFindValidation(t *testing.T) {
	get(t, "/v1/find", http.StatusBadRequest, nil)
	get(t, "/v1/find?q=x&alpha=banana", http.StatusBadRequest, nil)
	get(t, "/v1/find?q=x&alpha=7", http.StatusBadRequest, nil)
	get(t, "/v1/find?q=x&distance=9", http.StatusBadRequest, nil)
	get(t, "/v1/find?q=x&window=wide", http.StatusBadRequest, nil)
	get(t, "/v1/find?q=x&networks=myspace", http.StatusBadRequest, nil)
	get(t, "/v1/find?q=x&friends=maybe", http.StatusBadRequest, nil)
	get(t, "/v1/find?q=x&top=-1", http.StatusBadRequest, nil)
}

func TestBestNetwork(t *testing.T) {
	var body struct {
		Best     string                         `json:"best"`
		Rankings map[string][]expertfind.Expert `json:"rankings"`
	}
	q := url.QueryEscape("can you list some famous songs of michael jackson?")
	get(t, "/v1/bestnetwork?top=3&q="+q, http.StatusOK, &body)
	if body.Best == "" || len(body.Rankings) != 3 {
		t.Errorf("body = %+v", body)
	}
	for net, experts := range body.Rankings {
		if len(experts) > 3 {
			t.Errorf("network %s returned %d experts with top=3", net, len(experts))
		}
	}
	get(t, "/v1/bestnetwork", http.StatusBadRequest, nil)
}

func TestMethodNotAllowed(t *testing.T) {
	resp, err := http.Post(server(t).URL+"/v1/find?q=x", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", resp.StatusCode)
	}
}

func TestUnknownPath(t *testing.T) {
	resp, err := http.Get(server(t).URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestConcurrentFinds(t *testing.T) {
	s := server(t)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(s.URL + "/v1/find?q=" + url.QueryEscape("famous football teams"))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestExplain(t *testing.T) {
	// Find an expert first, then explain them.
	var found struct {
		Experts []expertfind.Expert `json:"experts"`
	}
	q := url.QueryEscape("why is copper a good conductor?")
	get(t, "/v1/find?top=1&q="+q, http.StatusOK, &found)
	if len(found.Experts) == 0 {
		t.Fatal("no experts to explain")
	}
	var expl struct {
		Expert   string `json:"Expert"`
		Evidence []any  `json:"Evidence"`
	}
	get(t, "/v1/explain?expert="+url.QueryEscape(found.Experts[0].Name)+"&q="+q, http.StatusOK, &expl)
	if expl.Expert != found.Experts[0].Name || len(expl.Evidence) == 0 {
		t.Errorf("explanation = %+v", expl)
	}
	get(t, "/v1/explain?q="+q, http.StatusBadRequest, nil)
	get(t, "/v1/explain?expert=nobody&q="+q, http.StatusNotFound, nil)
}
