package httpapi

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"testing"

	"expertfind"
)

var update = flag.Bool("update", false, "rewrite golden files with observed output")

// goldenScript is the scripted query set: a deterministic walk across
// the read API. Only success responses participate — error bodies
// carry a per-request random request_id.
func goldenScript() []string {
	find := func(q string) string {
		return "/v1/find?" + url.Values{"q": {q}, "top": {"3"}}.Encode()
	}
	return []string{
		"/v1/stats",
		"/v1/domains",
		"/v1/queries",
		"/v1/experts?domain=sport",
		"/v1/experts?domain=computer-engineering",
		find("Which PHP function can I use in order to obtain the length of a string?"),
		find("Can you list some restaurants in Milan?"),
		find("What should I consider when training for a marathon?"),
		"/v1/bestnetwork?" + url.Values{"q": {"Which camera lens is best for night photography?"}, "top": {"3"}}.Encode(),
	}
}

// TestE2EGolden serves a small seeded corpus through the full HTTP
// stack, replays the scripted query set, and byte-compares the
// concatenated responses against the checked-in golden file. Run with
// -update after an intentional output change:
//
//	go test ./internal/httpapi -run TestE2EGolden -update
func TestE2EGolden(t *testing.T) {
	// IndexShards pinned to 1: the default tracks GOMAXPROCS, and the
	// golden transcript must not depend on the machine.
	sys := expertfind.NewSystem(expertfind.Config{
		Seed: 7, Candidates: 12, Scale: 0.05, IndexShards: 1,
	})
	srv := httptest.NewServer(New(sys))
	defer srv.Close()

	var got bytes.Buffer
	for _, path := range goldenScript() {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		fmt.Fprintf(&got, "== GET %s\n%s", path, body)
	}

	golden := filepath.Join("testdata", "e2e.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, got.Len())
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("API output diverged from %s (rerun with -update if intentional)\ngot  %d bytes\nwant %d bytes\nfirst divergence at byte %d",
			golden, got.Len(), len(want), firstDiff(got.Bytes(), want))
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
