package httpapi

import (
	"errors"
	"fmt"
	"net/http"

	"expertfind"
	"expertfind/internal/scatter"
	"expertfind/internal/telemetry"
)

// DegradedHeader flags responses computed from a partial topology.
// Its value is "shards=<down>/<total>", so operators (and the load
// harness) can read the blast radius straight off the response.
const DegradedHeader = "X-Expertfind-Degraded"

func degradedValue(down, total int) string {
	return fmt.Sprintf("shards=%d/%d", down, total)
}

// CoordinatorHandler serves the public expert-finding API from a
// scatter-gather coordinator instead of a local corpus: /v1/find fans
// out to the shard topology and merges. It reuses the regular
// handler's middleware chain, metrics, probes and error shapes, and
// its healthy-topology /v1/find bodies are byte-identical to a
// single-process server's.
type CoordinatorHandler struct {
	co     *scatter.Coordinator
	mux    *http.ServeMux
	opts   Options
	sem    chan struct{}
	root   http.Handler
	tracer *telemetry.Tracer
}

// NewCoordinator returns the API handler for a coordinator process.
func NewCoordinator(co *scatter.Coordinator, opts Options) *CoordinatorHandler {
	h := &CoordinatorHandler{co: co, mux: http.NewServeMux(), opts: opts, tracer: opts.Tracer}
	if h.tracer == nil {
		h.tracer = telemetry.DefaultTracer()
	}
	if opts.MaxConcurrent > 0 {
		h.sem = make(chan struct{}, opts.MaxConcurrent)
	}
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	h.mux.HandleFunc("GET /readyz", h.ready)
	h.mux.HandleFunc("GET /version", serveVersion)
	h.mux.Handle("GET /metrics", telemetry.MetricsHandler(telemetry.Default()))
	h.mux.Handle("GET /debug/traces", telemetry.TracesHandler(h.tracer))
	h.mux.HandleFunc("GET /v1/find", h.find)
	h.mux.HandleFunc("GET /v1/shards", h.shards)
	h.root = buildRoot(opts, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dispatchMux(h.mux, w, r)
	}))
	return h
}

// ServeHTTP implements http.Handler.
func (h *CoordinatorHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.root.ServeHTTP(w, r)
}

// ready distinguishes three topology states: ready (every shard
// passes its readiness probe), degraded (some but not all shards up —
// 200, so balancers keep routing, with the degraded header and counts
// for operators), and unavailable (no shard up, or the topology never
// bootstrapped — 503).
func (h *CoordinatorHandler) ready(w http.ResponseWriter, r *http.Request) {
	up, total := h.co.Probe(r.Context())
	if _, _, boot := h.co.Health(); !boot {
		if err := h.co.Bootstrap(r.Context()); err != nil {
			h.opts.writeUnavailable(w, r, "topology not bootstrapped")
			return
		}
	}
	switch {
	case up == 0:
		h.opts.writeUnavailable(w, r, "no shards reachable")
	case up < total:
		w.Header().Set(DegradedHeader, degradedValue(total-up, total))
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "degraded", "shards_up": up, "shards_total": total,
		})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// shards reports the topology as of the latest probes: base URLs,
// which shards are down, and whether bootstrap completed.
func (h *CoordinatorHandler) shards(w http.ResponseWriter, r *http.Request) {
	up, total := h.co.Probe(r.Context())
	_, _, boot := h.co.Health()
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":       h.co.ShardBases(),
		"unready":      h.co.UnreadyShards(),
		"shards_up":    up,
		"shards_total": total,
		"bootstrapped": boot,
	})
}

// coordFindResponse is findResponse plus the degraded marker. The
// field is omitted on healthy answers, which keeps them byte-for-byte
// identical to a single-process /v1/find body.
type coordFindResponse struct {
	Need     string              `json:"need"`
	Experts  []expertfind.Expert `json:"experts"`
	Degraded *degradedInfo       `json:"degraded,omitempty"`
}

type degradedInfo struct {
	ShardsDown  int `json:"shards_down"`
	ShardsTotal int `json:"shards_total"`
}

func (h *CoordinatorHandler) find(w http.ResponseWriter, r *http.Request) {
	if h.sem != nil {
		select {
		case h.sem <- struct{}{}:
			defer func() { <-h.sem }()
		default:
			mShed.Inc()
			h.opts.writeUnavailable(w, r, "server overloaded")
			return
		}
	}
	need := r.URL.Query().Get("q")
	if need == "" {
		writeError(w, r, http.StatusBadRequest, "missing required parameter: q")
		return
	}
	opts, top, err := parseOptions(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	p, err := expertfind.ResolveParams(opts...)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}

	ctx, tr := h.tracer.Start(r.Context(), r.Method+" "+r.URL.Path, requestID(r.Context()))
	defer tr.Finish()
	tr.SetAttr("q", need)

	res, err := h.co.Find(ctx, need, r.URL.Query(), p)
	if err != nil {
		tr.SetAttr("error", err.Error())
		var mal *scatter.MalformedError
		switch {
		case errors.As(err, &mal):
			writeError(w, r, http.StatusBadGateway, err.Error())
		case errors.Is(err, scatter.ErrNoShards), errors.Is(err, scatter.ErrNotBootstrapped):
			h.opts.writeUnavailable(w, r, err.Error())
		default:
			writeError(w, r, http.StatusInternalServerError, err.Error())
		}
		return
	}

	experts := make([]expertfind.Expert, len(res.Experts))
	for i, e := range res.Experts {
		experts[i] = expertfind.Expert{
			Name:                e.Name,
			Score:               e.Score,
			SupportingResources: e.SupportingResources,
		}
	}
	if top > 0 && len(experts) > top {
		experts = experts[:top]
	}
	resp := coordFindResponse{Need: need, Experts: experts}
	if res.Degraded {
		w.Header().Set(DegradedHeader, degradedValue(res.ShardsDown, res.ShardsTotal))
		resp.Degraded = &degradedInfo{ShardsDown: res.ShardsDown, ShardsTotal: res.ShardsTotal}
	}
	writeJSON(w, http.StatusOK, resp)
}
