package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"expertfind"
	"expertfind/internal/scatter"
	"expertfind/internal/telemetry"
)

// DegradedHeader flags responses computed from a partial topology.
// Its value is "shards=<down>/<total>", so operators (and the load
// harness) can read the blast radius straight off the response.
const DegradedHeader = "X-Expertfind-Degraded"

func degradedValue(down, total int) string {
	return fmt.Sprintf("shards=%d/%d", down, total)
}

// CoordinatorHandler serves the public expert-finding API from a
// scatter-gather coordinator instead of a local corpus: /v1/find fans
// out to the shard topology and merges. It reuses the regular
// handler's middleware chain, metrics, probes and error shapes, and
// its healthy-topology /v1/find bodies are byte-identical to a
// single-process server's.
type CoordinatorHandler struct {
	co     *scatter.Coordinator
	mux    *http.ServeMux
	opts   Options
	sem    chan struct{}
	root   http.Handler
	tracer *telemetry.Tracer
	asm    *assemblyCache
}

// NewCoordinator returns the API handler for a coordinator process.
func NewCoordinator(co *scatter.Coordinator, opts Options) *CoordinatorHandler {
	h := &CoordinatorHandler{
		co: co, mux: http.NewServeMux(), opts: opts, tracer: opts.Tracer,
		asm: newAssemblyCache(64),
	}
	if h.tracer == nil {
		h.tracer = telemetry.DefaultTracer()
	}
	if opts.MaxConcurrent > 0 {
		h.sem = make(chan struct{}, opts.MaxConcurrent)
	}
	h.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	h.mux.HandleFunc("GET /readyz", h.ready)
	h.mux.HandleFunc("GET /version", serveVersion)
	h.mux.Handle("GET /metrics", telemetry.MetricsHandler(telemetry.Default()))
	h.mux.Handle("GET /debug/traces", telemetry.TracesHandler(h.tracer))
	h.mux.HandleFunc("GET /debug/traces/{rid}", h.traceByID)
	h.mux.HandleFunc("GET /debug/slow", func(w http.ResponseWriter, r *http.Request) {
		serveSlow(h.tracer, w, r)
	})
	h.mux.HandleFunc("GET /v1/find", h.find)
	h.mux.HandleFunc("GET /v1/shards", h.shards)
	h.root = buildRoot(opts, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		dispatchMux(h.mux, opts.SLO, w, r)
	}))
	return h
}

// ServeHTTP implements http.Handler.
func (h *CoordinatorHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.root.ServeHTTP(w, r)
}

// ready distinguishes three topology states: ready (every shard
// passes its readiness probe), degraded (some but not all shards up —
// 200, so balancers keep routing, with the degraded header and counts
// for operators), and unavailable (no shard up, or the topology never
// bootstrapped — 503).
func (h *CoordinatorHandler) ready(w http.ResponseWriter, r *http.Request) {
	up, total := h.co.Probe(r.Context())
	if _, _, boot := h.co.Health(); !boot {
		if err := h.co.Bootstrap(r.Context()); err != nil {
			h.opts.writeUnavailable(w, r, "topology not bootstrapped")
			return
		}
	}
	switch {
	case up == 0:
		h.opts.writeUnavailable(w, r, "no shards reachable")
	case up < total:
		w.Header().Set(DegradedHeader, degradedValue(total-up, total))
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "degraded", "shards_up": up, "shards_total": total,
		})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

// shards reports the topology as of the latest probes: base URLs,
// which shards are down, and whether bootstrap completed.
func (h *CoordinatorHandler) shards(w http.ResponseWriter, r *http.Request) {
	up, total := h.co.Probe(r.Context())
	_, _, boot := h.co.Health()
	writeJSON(w, http.StatusOK, map[string]any{
		"shards":       h.co.ShardBases(),
		"unready":      h.co.UnreadyShards(),
		"shards_up":    up,
		"shards_total": total,
		"bootstrapped": boot,
	})
}

// coordFindResponse is findResponse plus the degraded marker. The
// field is omitted on healthy answers, which keeps them byte-for-byte
// identical to a single-process /v1/find body.
type coordFindResponse struct {
	Need     string              `json:"need"`
	Experts  []expertfind.Expert `json:"experts"`
	Degraded *degradedInfo       `json:"degraded,omitempty"`
}

type degradedInfo struct {
	ShardsDown  int `json:"shards_down"`
	ShardsTotal int `json:"shards_total"`
}

func (h *CoordinatorHandler) find(w http.ResponseWriter, r *http.Request) {
	if h.sem != nil {
		select {
		case h.sem <- struct{}{}:
			defer func() { <-h.sem }()
		default:
			mShed.Inc()
			h.opts.writeUnavailable(w, r, "server overloaded")
			return
		}
	}
	need := r.URL.Query().Get("q")
	if need == "" {
		writeError(w, r, http.StatusBadRequest, "missing required parameter: q")
		return
	}
	opts, top, err := parseOptions(r)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	rawParams := r.URL.Query()
	// The coordinator's default top-k must reach the shards too: the
	// per-shard prune depth and the coordinator's merge truncation have
	// to agree for the bounded ranking to stay byte-identical to a
	// single process's. Injecting the parameter into the forwarded
	// query makes the topology behave as if the client had asked.
	if h.opts.DefaultTopK > 0 && !rawParams.Has("topk") {
		opts = append(opts, expertfind.WithTopK(h.opts.DefaultTopK))
		rawParams.Set("topk", strconv.Itoa(h.opts.DefaultTopK))
	}
	p, err := expertfind.ResolveParams(opts...)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}

	ctx, tr := h.tracer.Start(r.Context(), r.Method+" "+r.URL.Path, requestID(r.Context()))
	defer func() {
		tr.Finish()
		// An interesting query (degraded, errored, slow) just landed in
		// the keep ring: assemble its cross-process timeline now, while
		// every shard still retains its side, and cache the result so
		// /debug/traces/{rid} answers long after shard rings rotate.
		if tr.WasKept() {
			go h.assembleAndCache(tr.ID())
		}
	}()
	tr.SetAttr("q", need)

	res, err := h.co.Find(ctx, need, rawParams, p)
	if err != nil {
		tr.SetAttr("error", err.Error())
		tr.Keep("error")
		var mal *scatter.MalformedError
		switch {
		case errors.As(err, &mal):
			writeError(w, r, http.StatusBadGateway, err.Error())
		case errors.Is(err, scatter.ErrNoShards), errors.Is(err, scatter.ErrNotBootstrapped):
			h.opts.writeUnavailable(w, r, err.Error())
		default:
			writeError(w, r, http.StatusInternalServerError, err.Error())
		}
		return
	}

	experts := make([]expertfind.Expert, len(res.Experts))
	for i, e := range res.Experts {
		experts[i] = expertfind.Expert{
			Name:                e.Name,
			Score:               e.Score,
			SupportingResources: e.SupportingResources,
		}
	}
	if top > 0 && len(experts) > top {
		experts = experts[:top]
	}
	resp := coordFindResponse{Need: need, Experts: experts}
	if res.Degraded {
		w.Header().Set(DegradedHeader, degradedValue(res.ShardsDown, res.ShardsTotal))
		resp.Degraded = &degradedInfo{ShardsDown: res.ShardsDown, ShardsTotal: res.ShardsTotal}
	}
	writeJSON(w, http.StatusOK, resp)
}

// traceByID serves GET /debug/traces/{rid} on the coordinator: the
// assembled cross-process timeline of one query — coordinator spans
// plus the span snapshots fetched from every shard process, stitched
// under the fan-out attempts that carried them. Kept queries are
// served from the eager assembly cache (so the timeline survives the
// shards' own ring rotation); anything still in the local rings is
// assembled live.
func (h *CoordinatorHandler) traceByID(w http.ResponseWriter, r *http.Request) {
	rid := sanitizeRequestID(r.PathValue("rid"))
	if rid == "" {
		writeError(w, r, http.StatusBadRequest, "invalid request id")
		return
	}
	if body, ok := h.asm.get(rid); ok {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
		return
	}
	local := h.tracer.Lookup(rid)
	if len(local) == 0 {
		writeError(w, r, http.StatusNotFound, "no trace retained for request id "+rid)
		return
	}
	asm := scatter.AssembleTrace(local[0], h.co.FetchShardTraces(r.Context(), rid))
	writeJSON(w, http.StatusOK, asm)
}

// assembleAndCache eagerly assembles a kept query's timeline. Shards
// record their traces moments after their responses are written, so
// the fetch retries briefly until at least one shard has contributed
// (or gives up and caches the coordinator-only view).
func (h *CoordinatorHandler) assembleAndCache(rid string) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for attempt := 0; ; attempt++ {
		time.Sleep(time.Duration(attempt+1) * 20 * time.Millisecond)
		local := h.tracer.Lookup(rid)
		if len(local) == 0 {
			return
		}
		asm := scatter.AssembleTrace(local[0], h.co.FetchShardTraces(ctx, rid))
		if asm.ShardProcesses > 0 || attempt >= 2 {
			if body, err := json.Marshal(asm); err == nil {
				h.asm.put(rid, body)
			}
			return
		}
	}
}

// assemblyCache is a bounded FIFO of assembled timelines, keyed by
// request id; the newest assembly for an id wins.
type assemblyCache struct {
	mu      sync.Mutex
	cap     int
	entries map[string][]byte
	order   []string
}

func newAssemblyCache(capacity int) *assemblyCache {
	return &assemblyCache{cap: capacity, entries: make(map[string][]byte)}
}

func (c *assemblyCache) put(rid string, body []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[rid]; !ok {
		c.order = append(c.order, rid)
		for len(c.order) > c.cap {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.entries[rid] = body
}

func (c *assemblyCache) get(rid string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, ok := c.entries[rid]
	return body, ok
}
