package httpapi

import (
	"context"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync/atomic"
	"time"

	"expertfind/internal/telemetry"
)

// processStart anchors the uptime gauge and /version's uptime field.
var processStart = time.Now()

// Serving-path metrics. Routes are labeled by mux pattern (bounded
// cardinality), never by raw URL path.
var (
	mRequests = telemetry.Default().CounterVec(
		"expertfind_http_requests_total",
		"HTTP requests served, by route pattern and status code.",
		"route", "code")
	mDuration = telemetry.Default().HistogramVec(
		"expertfind_http_request_duration_seconds",
		"Wall time handling one HTTP request, by route pattern.",
		nil, "route")
	mInFlight = telemetry.Default().Gauge(
		"expertfind_http_in_flight_requests",
		"Requests currently being handled.")
	mShed = telemetry.Default().Counter(
		"expertfind_http_requests_shed_total",
		"/v1 requests shed with 503 because the concurrency cap was saturated.")
	mPanics = telemetry.Default().Counter(
		"expertfind_http_panics_total",
		"Handler panics recovered into JSON 500s.")
	mTimeouts = telemetry.Default().Counter(
		"expertfind_http_request_timeouts_total",
		"Requests cut off with 503 by the per-request deadline.")
)

func init() {
	telemetry.Default().GaugeFunc(
		"expertfind_uptime_seconds",
		"Seconds since the process started serving.",
		func() float64 { return time.Since(processStart).Seconds() })
}

// routeHolder carries the matched route pattern from the dispatch
// layer back out to the access-log middleware wrapped around it. The
// value is written by dispatchMux and read after the handler returns;
// atomic because the timeout middleware's stray goroutine may still be
// dispatching when the deadline path logs.
type routeHolder struct{ v atomic.Value }

func (h *routeHolder) set(route string) { h.v.Store(route) }

func (h *routeHolder) get() string {
	s, _ := h.v.Load().(string)
	return s
}

type routeCtxKey struct{}

type requestIDKey struct{}

// withRequestID assigns every request an ID — the inbound
// X-Request-ID when present (sanitized), else a generated one — and
// reflects it as a response header. Downstream, the ID labels log
// lines, error bodies and the request's trace.
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = telemetry.NewID()
		}
		w.Header().Set("X-Request-ID", id)
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id)))
	})
}

// requestID returns the request's ID, or "" outside the middleware
// chain (direct handler tests).
func requestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// sanitizeRequestID keeps inbound IDs loggable: printable ASCII less
// the quote, at most 64 bytes; anything else is discarded so a hostile
// header cannot inject into logs or JSON.
func sanitizeRequestID(id string) string {
	if len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' || id[i] == '"' {
			return ""
		}
	}
	return id
}

// versionInfo is the /version payload.
type versionInfo struct {
	GoVersion     string    `json:"go_version"`
	Module        string    `json:"module,omitempty"`
	Version       string    `json:"version,omitempty"`
	VCSRevision   string    `json:"vcs_revision,omitempty"`
	VCSTime       string    `json:"vcs_time,omitempty"`
	Start         time.Time `json:"start"`
	UptimeSeconds float64   `json:"uptime_seconds"`
}

// version serves build and runtime identity: who is running (module,
// version, VCS revision when built from a repository), on what Go,
// for how long.
func (h *Handler) version(w http.ResponseWriter, r *http.Request) { serveVersion(w, r) }

func serveVersion(w http.ResponseWriter, _ *http.Request) {
	info := versionInfo{
		GoVersion:     runtime.Version(),
		Start:         processStart.UTC(),
		UptimeSeconds: time.Since(processStart).Seconds(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.Module = bi.Main.Path
		info.Version = bi.Main.Version
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				info.VCSRevision = s.Value
			case "vcs.time":
				info.VCSTime = s.Value
			}
		}
	}
	writeJSON(w, http.StatusOK, info)
}

// routeLabel bounds the route label to known mux patterns.
func routeLabel(pattern string) string {
	if pattern == "" {
		return "unmatched"
	}
	// pprof sub-routes share one label; profile names don't belong in
	// label cardinality.
	if strings.HasPrefix(pattern, "GET /debug/pprof/") {
		return "GET /debug/pprof/*"
	}
	return pattern
}
