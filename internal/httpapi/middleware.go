package httpapi

import (
	"bytes"
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sync"
	"time"

	"expertfind/internal/rescache"
	"expertfind/internal/slo"
	"expertfind/internal/telemetry"
)

// Options hardens the serving path. The zero value is the historical
// behavior: no timeout, no concurrency cap, no request logging (panic
// recovery is always on).
type Options struct {
	// RequestTimeout bounds each request's handling time; past it the
	// client gets 503 + Retry-After. Zero disables the deadline.
	RequestTimeout time.Duration
	// MaxConcurrent caps in-flight /v1 requests; excess load is shed
	// with 503 + Retry-After instead of queueing without bound. Zero
	// means unlimited.
	MaxConcurrent int
	// RetryAfter is the hint attached to 503 responses (load shed,
	// timeout, not ready); zero defaults to 1s.
	RetryAfter time.Duration
	// Logger receives one structured record per request plus recovered
	// panics; nil disables request logging (panics are still
	// recovered). Build one with telemetry.NewLogger.
	Logger *slog.Logger
	// Tracer records per-request query traces for /debug/traces; nil
	// selects telemetry.DefaultTracer().
	Tracer *telemetry.Tracer
	// SLO, when non-nil, observes every /v1 request's status and wall
	// time into the burn-rate tracker (see internal/slo).
	SLO *slo.Tracker
	// Debug mounts net/http/pprof under /debug/pprof/ and expvar under
	// /debug/vars. Off by default: profiling endpoints expose process
	// internals and belong behind an operator's deliberate flag.
	Debug bool
	// Shard, when non-nil, mounts the scatter-gather shard endpoints
	// (/v1/shard/meta, /v1/shard/stats, /v1/shard/find,
	// /v1/shard/trace) and identifies this process's position in the
	// topology. The regular /v1 routes stay mounted — a shard answers
	// them over its document slice, which is useful for debugging but
	// not globally ranked.
	Shard *ShardOptions
	// DefaultTopK, when positive, bounds resource matching on /v1/find
	// and /v1/bestnetwork to the k best-ranked reachable resources
	// (MaxScore pruning) for requests that do not pass an explicit
	// topk parameter. Results are byte-identical to the unbounded
	// query whenever k covers the effective window.
	DefaultTopK int
	// Cache, when non-nil, is the ranked-result cache the handler
	// manages across corpus installs: every SetSystem attaches a fresh
	// generation (purging the previous corpus's entries) so a swapped
	// corpus can never serve stale rankings. /v1/find reflects each
	// query's disposition in the Cache-Status response header.
	Cache *rescache.Cache
}

// retryAfterSeconds renders the Retry-After header value (whole
// seconds, minimum 1 as the header cannot express sub-second waits).
func (o Options) retryAfterSeconds() string {
	d := o.RetryAfter
	if d <= 0 {
		d = time.Second
	}
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

// writeUnavailable sends the uniform 503 payload with the Retry-After
// hint that tells well-behaved clients when to come back.
func (o Options) writeUnavailable(w http.ResponseWriter, r *http.Request, msg string) {
	w.Header().Set("Retry-After", o.retryAfterSeconds())
	writeError(w, r, http.StatusServiceUnavailable, msg)
}

// statusWriter captures the response status and size for logging.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// withLogging emits one structured record per request: method, path,
// matched route, status, size, duration, request id (which is also the
// trace id for /v1 requests), and the degraded marker when the
// response carried one. 5xx responses log at error level, 4xx at warn.
func withLogging(l *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		holder := &routeHolder{}
		r = r.WithContext(context.WithValue(r.Context(), routeCtxKey{}, holder))
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		level := slog.LevelInfo
		switch {
		case status >= 500:
			level = slog.LevelError
		case status >= 400:
			level = slog.LevelWarn
		}
		attrs := []any{
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", holder.get()),
			slog.Int("status", status),
			slog.Int("bytes", sw.bytes),
			slog.String("duration", time.Since(t0).Round(time.Microsecond).String()),
			slog.String("rid", requestID(r.Context())),
		}
		if d := sw.Header().Get(DegradedHeader); d != "" {
			attrs = append(attrs, slog.String("degraded", d))
		}
		l.Log(r.Context(), level, "request", attrs...)
	})
}

// withRecovery converts handler panics into JSON 500s instead of
// killing the connection (or, under withTimeout's goroutine, the
// whole process).
func withRecovery(l *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if p := recover(); p != nil {
				mPanics.Inc()
				if l != nil {
					l.Error("panic recovered",
						"method", r.Method,
						"path", r.URL.Path,
						"rid", requestID(r.Context()),
						"panic", fmt.Sprint(p),
						"stack", string(debug.Stack()))
				}
				writeError(w, r, http.StatusInternalServerError, "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// timeoutWriter buffers a handler's response so that, when the
// deadline fires first, the handler's late writes never interleave
// with the 503 already sent to the client.
type timeoutWriter struct {
	mu     sync.Mutex
	header http.Header
	buf    bytes.Buffer
	status int
}

func (tw *timeoutWriter) Header() http.Header {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.header
}

func (tw *timeoutWriter) WriteHeader(code int) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.status == 0 {
		tw.status = code
	}
}

func (tw *timeoutWriter) Write(p []byte) (int, error) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.status == 0 {
		tw.status = http.StatusOK
	}
	return tw.buf.Write(p)
}

// flush copies the buffered response onto the real writer.
func (tw *timeoutWriter) flush(w http.ResponseWriter) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	dst := w.Header()
	for k, v := range tw.header {
		dst[k] = v
	}
	status := tw.status
	if status == 0 {
		status = http.StatusOK
	}
	w.WriteHeader(status)
	_, _ = w.Write(tw.buf.Bytes())
}

// withTimeout enforces a per-request deadline. The handler runs in a
// goroutine against a buffered writer; if the deadline fires first
// the client gets 503 + Retry-After while the stray goroutine drains
// harmlessly into the buffer (its context is canceled, so
// cooperative handlers can stop early).
func withTimeout(opts Options, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), opts.RequestTimeout)
		defer cancel()
		tw := &timeoutWriter{header: make(http.Header)}
		done := make(chan struct{})
		go func() {
			defer close(done)
			next.ServeHTTP(tw, r.WithContext(ctx))
		}()
		select {
		case <-done:
			tw.flush(w)
		case <-ctx.Done():
			mTimeouts.Inc()
			opts.writeUnavailable(w, r, "request timed out")
		}
	})
}
