package httpapi

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"expertfind/internal/rescache"
)

// TestCacheStatusHeader wires the serving stack with a result cache
// and checks the Cache-Status disposition header plus the corpus-swap
// invalidation path.
func TestCacheStatusHeader(t *testing.T) {
	server(t) // build the shared system
	cache := rescache.New(rescache.Options{Capacity: 64})
	h := NewWithOptions(sys, Options{Cache: cache})
	ts := httptest.NewServer(h)
	defer ts.Close()
	defer sys.SetResultCache(nil)

	fetch := func(q string) (string, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/find?q=" + q + "&top=3")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET q=%s: status %d: %s", q, resp.StatusCode, body)
		}
		return resp.Header.Get("Cache-Status"), string(body)
	}

	st1, body1 := fetch("swimming")
	st2, body2 := fetch("swimming")
	if st1 != "miss" || st2 != "hit" {
		t.Fatalf("statuses %q, %q; want miss then hit", st1, st2)
	}
	if body1 != body2 {
		t.Fatal("cached response body differs from cold one")
	}
	if cache.Len() == 0 {
		t.Fatal("cache empty after a miss")
	}

	// Reinstalling a corpus advances the generation: the old entries
	// are purged and the same query misses again.
	gen := cache.Generation()
	h.SetSystem(sys)
	if cache.Generation() != gen+1 {
		t.Fatalf("generation %d after SetSystem, want %d", cache.Generation(), gen+1)
	}
	if st, _ := fetch("swimming"); st != "miss" {
		t.Fatalf("post-swap status %q, want miss", st)
	}

	// Removing the corpus invalidates outright; the probe answers 503
	// with no cache header and no resident entries.
	h.SetSystem(nil)
	if cache.Len() != 0 {
		t.Fatalf("cache holds %d entries after corpus removal", cache.Len())
	}
	resp, err := http.Get(ts.URL + "/v1/find?q=swimming")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with no corpus, want 503", resp.StatusCode)
	}
	if h := resp.Header.Get("Cache-Status"); h != "" {
		t.Fatalf("Cache-Status %q on 503, want unset", h)
	}
}

// TestNoCacheNoHeader guards the default path: without a cache,
// responses carry no Cache-Status header at all.
func TestNoCacheNoHeader(t *testing.T) {
	resp, err := http.Get(server(t).URL + "/v1/find?q=swimming")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if h := resp.Header.Get("Cache-Status"); h != "" {
		t.Fatalf("Cache-Status %q without a cache, want unset", h)
	}
}
