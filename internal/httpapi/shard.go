package httpapi

// Shard-scoped endpoints: the server side of scatter-gather serving.
// A shard process serves its document slice to a coordinator through
// three routes — metadata for topology bootstrap, per-need collection
// statistics (fan-out phase one), and globally-weighted slice scoring
// (phase two). See internal/scatter for the protocol and the
// determinism contract.

import (
	"encoding/json"
	"net/http"
	"net/url"

	"expertfind"
	"expertfind/internal/scatter"
)

// ShardOptions places a shard process in a scatter-gather topology.
type ShardOptions struct {
	// ID is this process's shard number, 0-based.
	ID int
	// Count is the topology size; the process must serve the document
	// slice index.ShardRoute assigns to ID of Count.
	Count int
}

// shardCandidates renders the system's candidate pool in the wire
// form (sorted by id, the fingerprint's canonical order).
func shardCandidates(sys *expertfind.System) []scatter.Candidate {
	infos := sys.CandidateInfos()
	out := make([]scatter.Candidate, len(infos))
	for i, ci := range infos {
		out[i] = scatter.Candidate{ID: ci.ID, Name: ci.Name}
	}
	return out
}

// shardMeta serves GET /v1/shard/meta: this process's topology
// position, slice size, and the candidate pool with its fingerprint.
func (h *Handler) shardMeta(sys *expertfind.System, w http.ResponseWriter, _ *http.Request) {
	cands := shardCandidates(sys)
	writeJSON(w, http.StatusOK, scatter.Meta{
		ShardID:    h.opts.Shard.ID,
		ShardCount: h.opts.Shard.Count,
		NumDocs:    sys.Stats().Indexed,
		Group:      scatter.GroupFingerprint(cands),
		Candidates: cands,
	})
}

// shardStats serves GET /v1/shard/stats?q=...: this slice's document
// count and local document frequencies for the need's dimensions,
// which the coordinator sums into the global collection view.
func (h *Handler) shardStats(sys *expertfind.System, w http.ResponseWriter, r *http.Request) {
	need := r.URL.Query().Get("q")
	if need == "" {
		writeError(w, r, http.StatusBadRequest, "missing required parameter: q")
		return
	}
	writeJSON(w, http.StatusOK, scatter.StatsFromNeed(sys.CoreFinder().NeedStats(need)))
}

// shardFind serves POST /v1/shard/find: score this slice under the
// coordinator's global statistics and return reachable matches with
// their candidate/distance evidence. The forwarded client parameters
// are resolved through the same parser as /v1/find, so a shard and a
// single-process server interpret a query identically.
func (h *Handler) shardFind(sys *expertfind.System, w http.ResponseWriter, r *http.Request) {
	var req scatter.FindRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, "invalid request body: "+err.Error())
		return
	}
	if req.Need == "" {
		writeError(w, r, http.StatusBadRequest, "missing required field: need")
		return
	}
	forwarded := &http.Request{URL: &url.URL{RawQuery: req.ParamValues().Encode()}}
	opts, _, err := parseOptions(forwarded)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	p, err := expertfind.ResolveParams(opts...)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	matches := sys.CoreFinder().ShardMatches(r.Context(), req.Need, p, req.Stats.Global())
	writeJSON(w, http.StatusOK, scatter.FindResponse{
		Group:   scatter.GroupFingerprint(shardCandidates(sys)),
		Matches: scatter.MatchesFromCore(matches),
	})
}
