// Package corpusio persists complete evaluation corpora — social
// graph, synthetic Web, queries and ground truth — as (optionally
// gzip-compressed) JSON, so that a generated dataset can be saved
// once and reloaded across processes, or hand-edited / replaced by a
// real crawl with the same schema.
package corpusio

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"expertfind/internal/dataset"
)

// formatVersion guards against loading snapshots from incompatible
// releases.
const formatVersion = 1

// envelope wraps the dataset snapshot with versioning.
type envelope struct {
	Format  string            `json:"format"`
	Version int               `json:"version"`
	Corpus  *dataset.Snapshot `json:"corpus"`
}

// Save writes the dataset to w as JSON.
func Save(d *dataset.Dataset, w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(envelope{
		Format:  "expertfind-corpus",
		Version: formatVersion,
		Corpus:  d.Snapshot(),
	})
}

// Load reads a dataset previously written by Save.
func Load(r io.Reader) (*dataset.Dataset, error) {
	var env envelope
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("corpusio: decoding corpus: %w", err)
	}
	if env.Format != "expertfind-corpus" {
		return nil, fmt.Errorf("corpusio: not an expertfind corpus (format %q)", env.Format)
	}
	if env.Version != formatVersion {
		return nil, fmt.Errorf("corpusio: unsupported corpus version %d (supported: %d)", env.Version, formatVersion)
	}
	d, err := dataset.FromSnapshot(env.Corpus)
	if err != nil {
		return nil, fmt.Errorf("corpusio: %w", err)
	}
	return d, nil
}

// SaveFile writes the dataset to path; a ".gz" suffix selects gzip
// compression.
func SaveFile(d *dataset.Dataset, path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	var w io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		defer func() {
			if cerr := gz.Close(); err == nil {
				err = cerr
			}
		}()
		w = gz
	}
	return Save(d, w)
}

// LoadFile reads a dataset from path; a ".gz" suffix selects gzip
// decompression.
func LoadFile(path string) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("corpusio: opening gzip corpus: %w", err)
		}
		defer gz.Close()
		r = gz
	}
	return Load(r)
}
