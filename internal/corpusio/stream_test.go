package corpusio

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/socialgraph"
)

func writeStreamCorpus(t *testing.T, path string, cfg dataset.StreamConfig) *dataset.Dataset {
	t.Helper()
	w, err := CreateStream(path)
	if err != nil {
		t.Fatal(err)
	}
	d, err := dataset.GenerateStream(cfg,
		func(d *dataset.Dataset) error { return w.WriteBase(d) },
		func(_ *dataset.Dataset, c *dataset.StreamChunk) error { return w.WriteChunk(c) })
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestStreamCorpusRoundTrip(t *testing.T) {
	for _, name := range []string{"corpus.stream.json", "corpus.stream.json.gz"} {
		path := filepath.Join(t.TempDir(), name)
		cfg := dataset.StreamConfig{Config: dataset.Config{Seed: 4, Scale: 1.3}, ChunkDocs: 8000}
		gen := writeStreamCorpus(t, path, cfg)

		chunks := 0
		got, err := LoadStreamFile(path, StreamLoadOptions{
			OnChunk: func(*dataset.Dataset, *dataset.StreamChunk) error { chunks++; return nil },
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if chunks == 0 {
			t.Fatalf("%s: no chunks replayed", name)
		}
		if got.Graph.NumResources() != gen.Graph.NumResources() || got.Graph.NumUsers() != gen.Graph.NumUsers() {
			t.Fatalf("%s: %d resources / %d users, want %d / %d", name,
				got.Graph.NumResources(), got.Graph.NumUsers(),
				gen.Graph.NumResources(), gen.Graph.NumUsers())
		}
		for i := 0; i < gen.Graph.NumResources(); i += 733 {
			ra := gen.Graph.Resource(socialgraph.ResourceID(i))
			rb := got.Graph.Resource(socialgraph.ResourceID(i))
			if ra.Text != rb.Text || ra.Creator != rb.Creator || ra.Container != rb.Container {
				t.Fatalf("%s: resource %d differs after reload", name, i)
			}
		}
	}
}

func TestStreamCorpusDropTexts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.stream.json.gz")
	cfg := dataset.StreamConfig{Config: dataset.Config{Seed: 7, Scale: 1.2}, ChunkDocs: 8000}
	gen := writeStreamCorpus(t, path, cfg)

	got, err := LoadStreamFile(path, StreamLoadOptions{DropTexts: true})
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumResources() != gen.Graph.NumResources() {
		t.Fatalf("resources %d, want %d", got.Graph.NumResources(), gen.Graph.NumResources())
	}
	blank := 0
	for i := 0; i < got.Graph.NumResources(); i++ {
		if got.Graph.Resource(socialgraph.ResourceID(i)).Text == "" {
			blank++
		}
	}
	if blank == 0 {
		t.Fatal("DropTexts left every text in place")
	}
}

func TestStreamCorpusRejectsTruncation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corpus.stream.json")
	cfg := dataset.StreamConfig{Config: dataset.Config{Seed: 4, Scale: 1.2}, ChunkDocs: 10000}
	writeStreamCorpus(t, path, cfg)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the trailer line off.
	lines := strings.SplitAfter(string(raw), "\n")
	cut := strings.Join(lines[:len(lines)-2], "")
	trunc := filepath.Join(t.TempDir(), "trunc.json")
	if err := os.WriteFile(trunc, []byte(cut), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStreamFile(trunc, StreamLoadOptions{}); err == nil {
		t.Fatal("accepted a stream corpus without a trailer")
	}

	// A plain snapshot is not a stream corpus.
	plain := filepath.Join(t.TempDir(), "plain.json")
	if err := SaveFile(dataset.Generate(dataset.Config{Seed: 1, Scale: 0.3}), plain); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadStreamFile(plain, StreamLoadOptions{}); err == nil {
		t.Fatal("accepted a monolithic snapshot as a stream corpus")
	}
}
