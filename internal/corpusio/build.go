package corpusio

import (
	"runtime"
	"sync"
	"sync/atomic"

	"expertfind/internal/analysis"
	"expertfind/internal/index"
	"expertfind/internal/socialgraph"
)

// BuildShardedIndex analyzes every resource of the graph through pipe
// and indexes the survivors of the language filter into a sharded
// index. Both phases parallelize: analysis fans out over GOMAXPROCS
// workers (the pipeline is stateless), then each shard is populated
// by its own single writer via AddBatch, so no lock is ever
// contended. shards <= 0 selects GOMAXPROCS.
//
// The returned kept count is the number of indexed resources. Output
// is deterministic: shard routing is a pure function of the document
// id and scoring is insertion-order invariant, so any worker
// interleaving builds an equivalent index.
func BuildShardedIndex(g *socialgraph.Graph, pipe *analysis.Pipeline, shards int) (*index.Sharded, int) {
	return BuildShardSlice(g, pipe, shards, 0, 1)
}

// BuildShardSlice is BuildShardedIndex restricted to one slice of a
// scatter-gather topology: only the resources that index.ShardRoute
// assigns to shard shardID of shardCount are analyzed and indexed, so
// a shard process pays the analysis and memory cost of its slice
// alone. shardCount <= 1 builds the whole corpus. The slice's postings
// are identical to the corresponding subset of a full build — the
// route is a pure function of the document id — which is what lets
// the coordinator's merged rankings reproduce single-process output.
func BuildShardSlice(g *socialgraph.Graph, pipe *analysis.Pipeline, shards, shardID, shardCount int) (*index.Sharded, int) {
	n := g.NumResources()

	type result struct {
		a  analysis.Analyzed
		ok bool
	}
	results := make([]result, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n && n > 0 {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				if shardCount > 1 && index.ShardRoute(socialgraph.ResourceID(i), shardCount) != shardID {
					continue
				}
				// Tombstoned resources stay out of the index, so a cold
				// rebuild of a delta-mutated graph matches the
				// delta-applied index exactly.
				if g.ResourceDeleted(socialgraph.ResourceID(i)) {
					continue
				}
				r := g.Resource(socialgraph.ResourceID(i))
				a, ok := pipe.Analyze(r.Text, r.URLs)
				results[i] = result{a: a, ok: ok}
			}
		}()
	}
	wg.Wait()

	docs := make([]index.Doc, 0, n)
	for i, res := range results {
		if res.ok {
			docs = append(docs, index.Doc{ID: socialgraph.ResourceID(i), A: res.a})
		}
	}
	ix := index.NewSharded(shards)
	ix.AddBatch(docs)
	return ix, len(docs)
}
