package corpusio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"expertfind/internal/dataset"
	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
)

func makeDataset(t testing.TB) *dataset.Dataset {
	t.Helper()
	return dataset.Generate(dataset.Config{Seed: 11, Scale: 0.03})
}

// assertEqualDatasets verifies that two datasets are observationally
// identical: same corpus, ground truth and web pages.
func assertEqualDatasets(t *testing.T, a, b *dataset.Dataset) {
	t.Helper()
	if a.Graph.NumResources() != b.Graph.NumResources() ||
		a.Graph.NumUsers() != b.Graph.NumUsers() ||
		a.Graph.NumContainers() != b.Graph.NumContainers() {
		t.Fatalf("graph sizes differ: %d/%d/%d vs %d/%d/%d",
			a.Graph.NumResources(), a.Graph.NumUsers(), a.Graph.NumContainers(),
			b.Graph.NumResources(), b.Graph.NumUsers(), b.Graph.NumContainers())
	}
	for i := 0; i < a.Graph.NumResources(); i++ {
		ra := a.Graph.Resource(socialgraph.ResourceID(i))
		rb := b.Graph.Resource(socialgraph.ResourceID(i))
		if ra.Text != rb.Text || ra.Kind != rb.Kind || ra.Network != rb.Network ||
			ra.Creator != rb.Creator || ra.Container != rb.Container {
			t.Fatalf("resource %d differs:\n%+v\n%+v", i, ra, rb)
		}
	}
	if len(a.Candidates) != len(b.Candidates) {
		t.Fatalf("candidate counts differ")
	}
	for _, u := range a.Candidates {
		if a.Expressiveness(u) != b.Expressiveness(u) || a.Activity(u) != b.Activity(u) {
			t.Fatalf("candidate %d latent traits differ", u)
		}
		for _, dom := range kb.Domains {
			if a.Level(u, dom) != b.Level(u, dom) {
				t.Fatalf("candidate %d level in %s differs", u, dom)
			}
			if a.IsExpert(u, dom) != b.IsExpert(u, dom) {
				t.Fatalf("candidate %d expert flag in %s differs", u, dom)
			}
		}
	}
	if a.Web.Len() != b.Web.Len() {
		t.Fatalf("web sizes differ: %d vs %d", a.Web.Len(), b.Web.Len())
	}
	// Traversal equivalence: the reconstructed graph must reproduce
	// the reachability structure exactly.
	for _, u := range a.Candidates[:5] {
		ha := a.Graph.ResourcesWithin(u, socialgraph.TraversalOptions{MaxDistance: 2})
		hb := b.Graph.ResourcesWithin(u, socialgraph.TraversalOptions{MaxDistance: 2})
		if len(ha) != len(hb) {
			t.Fatalf("candidate %d reach differs: %d vs %d", u, len(ha), len(hb))
		}
		for i := range ha {
			if ha[i] != hb[i] {
				t.Fatalf("candidate %d hit %d differs: %v vs %v", u, i, ha[i], hb[i])
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	d := makeDataset(t)
	var buf bytes.Buffer
	if err := Save(d, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertEqualDatasets(t, d, got)
}

func TestRoundTripFilePlainAndGzip(t *testing.T) {
	d := makeDataset(t)
	dir := t.TempDir()
	for _, name := range []string{"corpus.json", "corpus.json.gz"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(d, path); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertEqualDatasets(t, d, got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json at all")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Load(strings.NewReader(`{"format":"something-else","version":1}`)); err == nil {
		t.Error("wrong format accepted")
	}
	if _, err := Load(strings.NewReader(`{"format":"expertfind-corpus","version":99}`)); err == nil {
		t.Error("wrong version accepted")
	}
	if _, err := Load(strings.NewReader(`{"format":"expertfind-corpus","version":1,"corpus":{}}`)); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestLoadRejectsCorruptReferences(t *testing.T) {
	d := makeDataset(t)
	snap := d.Snapshot()
	// Corrupt a follows edge to reference a missing user.
	if len(snap.Graph.Follows) == 0 {
		t.Skip("no follow edges at this scale")
	}
	snap.Graph.Follows[0].To = 1 << 30
	var buf bytes.Buffer
	if err := Save(d, &buf); err != nil {
		t.Fatal(err)
	}
	// Rebuild through the snapshot API directly to hit validation.
	if _, err := dataset.FromSnapshot(snap); err == nil {
		t.Error("corrupt snapshot accepted")
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestLoadedDatasetIsQueryable(t *testing.T) {
	d := makeDataset(t)
	var buf bytes.Buffer
	if err := Save(d, &buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Ground-truth helpers must work on the loaded dataset.
	for _, dom := range kb.Domains {
		if got.DomainMean(dom) <= 0 {
			t.Errorf("domain mean %s = %v", dom, got.DomainMean(dom))
		}
	}
	if len(got.Queries) != 30 {
		t.Errorf("queries = %d", len(got.Queries))
	}
}
