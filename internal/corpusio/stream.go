package corpusio

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"expertfind/internal/dataset"
)

// streamFormatVersion guards the chunked stream-corpus format, which
// is versioned independently of the monolithic snapshot format.
const streamFormatVersion = 1

// streamRecord is one line of a stream corpus file: exactly one of
// the payload fields is set. The first record is the header, followed
// by the base snapshot, the bulk chunks in order, and a trailer whose
// totals let the loader detect truncated files.
type streamRecord struct {
	Format  string               `json:"format,omitempty"`
	Version int                  `json:"version,omitempty"`
	Base    *dataset.Snapshot    `json:"base,omitempty"`
	Chunk   *dataset.StreamChunk `json:"chunk,omitempty"`
	EOF     *streamTrailer       `json:"eof,omitempty"`
}

// streamTrailer closes a stream corpus with the totals the loader
// verifies after replay.
type streamTrailer struct {
	Chunks    int `json:"chunks"`
	Users     int `json:"users"`
	Resources int `json:"resources"`
}

// StreamWriter persists a streamed corpus incrementally — header and
// base snapshot first, then one record per bulk chunk — so a
// scale-100 corpus is written without ever materializing more than
// the base plus one chunk. Use with dataset.GenerateStream: write the
// base in onBase and each chunk in onChunk, then Close to append the
// integrity trailer.
type StreamWriter struct {
	f      *os.File
	gz     *gzip.Writer
	bw     *bufio.Writer
	enc    *json.Encoder
	chunks int
	users  int
	res    int
	closed bool
}

// CreateStream opens path for stream-corpus writing; a ".gz" suffix
// selects gzip compression.
func CreateStream(path string) (*StreamWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := &StreamWriter{f: f}
	var out io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		w.gz = gzip.NewWriter(f)
		out = w.gz
	}
	w.bw = bufio.NewWriterSize(out, 1<<20)
	w.enc = json.NewEncoder(w.bw)
	if err := w.enc.Encode(streamRecord{Format: "expertfind-corpus-stream", Version: streamFormatVersion}); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// WriteBase writes the base dataset snapshot; call once, before any
// chunk.
func (w *StreamWriter) WriteBase(d *dataset.Dataset) error {
	snap := d.Snapshot()
	w.users = d.Graph.NumUsers()
	w.res = d.Graph.NumResources()
	return w.enc.Encode(streamRecord{Base: snap})
}

// WriteChunk appends one bulk chunk.
func (w *StreamWriter) WriteChunk(c *dataset.StreamChunk) error {
	w.chunks++
	w.users += len(c.Users)
	w.res += len(c.Resources)
	return w.enc.Encode(streamRecord{Chunk: c})
}

// Close appends the integrity trailer and closes the file.
func (w *StreamWriter) Close() (err error) {
	if w.closed {
		return nil
	}
	w.closed = true
	err = w.enc.Encode(streamRecord{EOF: &streamTrailer{Chunks: w.chunks, Users: w.users, Resources: w.res}})
	if ferr := w.bw.Flush(); err == nil {
		err = ferr
	}
	if w.gz != nil {
		if gerr := w.gz.Close(); err == nil {
			err = gerr
		}
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// StreamLoadOptions customizes stream-corpus loading.
type StreamLoadOptions struct {
	// DropTexts blanks every bulk resource text right after its chunk
	// is applied, keeping only the graph structure — the mode a server
	// uses when scoring comes from a pre-built segment store and the
	// texts would only burn memory.
	DropTexts bool
	// OnChunk, when set, observes each chunk after it is applied to
	// the growing dataset (and before DropTexts blanking). Returning
	// an error aborts the load.
	OnChunk func(d *dataset.Dataset, c *dataset.StreamChunk) error
}

// LoadStreamFile replays a stream corpus written by StreamWriter:
// base snapshot first, then every chunk in order, rebuilding the
// exact dataset GenerateStream produced. A ".gz" suffix selects gzip;
// a missing trailer or mismatched totals is a truncation error.
func LoadStreamFile(path string, o StreamLoadOptions) (*dataset.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("corpusio: opening gzip stream corpus: %w", err)
		}
		defer gz.Close()
		r = gz
	}
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<20))

	var hdr streamRecord
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("corpusio: decoding stream header: %w", err)
	}
	if hdr.Format != "expertfind-corpus-stream" {
		return nil, fmt.Errorf("corpusio: not an expertfind stream corpus (format %q)", hdr.Format)
	}
	if hdr.Version != streamFormatVersion {
		return nil, fmt.Errorf("corpusio: unsupported stream corpus version %d (supported: %d)", hdr.Version, streamFormatVersion)
	}

	var d *dataset.Dataset
	chunks := 0
	for {
		var rec streamRecord
		if err := dec.Decode(&rec); err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("corpusio: stream corpus truncated (no trailer)")
			}
			return nil, fmt.Errorf("corpusio: decoding stream record: %w", err)
		}
		switch {
		case rec.Base != nil:
			if d != nil {
				return nil, fmt.Errorf("corpusio: stream corpus has two base snapshots")
			}
			d, err = dataset.FromSnapshot(rec.Base)
			if err != nil {
				return nil, fmt.Errorf("corpusio: %w", err)
			}
		case rec.Chunk != nil:
			if d == nil {
				return nil, fmt.Errorf("corpusio: stream corpus chunk before base snapshot")
			}
			chunks++
			d.ApplyChunk(rec.Chunk)
			if o.OnChunk != nil {
				if err := o.OnChunk(d, rec.Chunk); err != nil {
					return nil, err
				}
			}
			if o.DropTexts {
				d.BlankChunkTexts(rec.Chunk)
			}
		case rec.EOF != nil:
			if d == nil {
				return nil, fmt.Errorf("corpusio: stream corpus has no base snapshot")
			}
			if rec.EOF.Chunks != chunks {
				return nil, fmt.Errorf("corpusio: stream corpus truncated: %d of %d chunks", chunks, rec.EOF.Chunks)
			}
			if got := d.Graph.NumUsers(); got != rec.EOF.Users {
				return nil, fmt.Errorf("corpusio: stream corpus user count %d, trailer says %d", got, rec.EOF.Users)
			}
			if got := d.Graph.NumResources(); got != rec.EOF.Resources {
				return nil, fmt.Errorf("corpusio: stream corpus resource count %d, trailer says %d", got, rec.EOF.Resources)
			}
			return d, nil
		default:
			return nil, fmt.Errorf("corpusio: stream corpus has an empty record")
		}
	}
}
