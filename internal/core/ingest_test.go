// System-level delta-vs-rebuild differential: after live ingest
// rounds (adds, edits, deletes applied through internal/ingest), the
// finder over the delta-absorbed graph and index must rank exactly
// like a cold finder built from scratch over the remote corpus state,
// across the full parameter grid — and cached rankings that survive a
// scoped invalidation must be byte-identical to what a cold miss
// recomputes. External test package: internal/ingest imports core, so
// the differential has to live on the far side of the cycle.
package core_test

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"expertfind/internal/analysis"
	"expertfind/internal/core"
	"expertfind/internal/corpusio"
	"expertfind/internal/dataset"
	"expertfind/internal/faults"
	"expertfind/internal/index"
	"expertfind/internal/ingest"
	"expertfind/internal/rescache"
	"expertfind/internal/socialgraph"
)

// ingestSystem is one half of a twin-replica pair: the graph, the
// pipeline it was analyzed with, and a finder over its sharded index.
type ingestSystem struct {
	ds     *dataset.Dataset
	pipe   *analysis.Pipeline
	finder *core.Finder
}

func buildIngestSystem(cfg dataset.Config, shards int) *ingestSystem {
	ds := dataset.Generate(cfg)
	pipe := analysis.New(analysis.Options{Web: ds.Web})
	ix, _ := corpusio.BuildShardedIndex(ds.Graph, pipe, shards)
	return &ingestSystem{
		ds:     ds,
		pipe:   pipe,
		finder: core.NewFinder(ds.Graph, ix, pipe, ds.Candidates),
	}
}

// ingestConfig wires an ingester between the installed system and its
// remote twin.
func ingestConfig(installed *ingestSystem, remote *dataset.Dataset, cache ingest.ScopedCache) ingest.Config {
	return ingest.Config{
		API:     faults.Wrap(remote.Graph, faults.Config{}),
		Graph:   installed.ds.Graph,
		Index:   installed.finder.Index().(*index.Sharded),
		Pipe:    installed.pipe,
		Finders: []*core.Finder{installed.finder},
		Cache:   cache,
	}
}

// TestIngestDifferentialGrid runs live ingest rounds against twin
// corpora and checks, for every shard count, alpha, and top-k bound,
// that the delta-absorbed finder ranks identically to a cold rebuild
// of the remote state.
func TestIngestDifferentialGrid(t *testing.T) {
	cfg := dataset.Config{Seed: 5, Scale: 0.05}
	for _, shards := range []int{1, 2, 3, 7} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			installed := buildIngestSystem(cfg, shards)
			remote := dataset.Generate(cfg)
			ing := ingest.New(ingestConfig(installed, remote, nil))
			churn := ingest.NewChurn(remote.Graph, ingest.ChurnConfig{
				Seed: 11, Adds: 4, Updates: 10, Removes: 3,
			})
			for round := 0; round < 2; round++ {
				churn.Round()
				if _, err := ing.RunOnce(context.Background()); err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
			}

			// Cold rebuild of the final remote state, same shard count.
			coldPipe := analysis.New(analysis.Options{Web: remote.Web})
			coldIx, _ := corpusio.BuildShardedIndex(remote.Graph, coldPipe, shards)
			cold := core.NewFinder(remote.Graph, coldIx, coldPipe, remote.Candidates)

			for _, alpha := range []float64{0, 0.6, 1} {
				for _, k := range []int{1, 10, 0} { // 0 = exhaustive
					p := core.Params{
						Alpha: alpha, AlphaSet: true, TopK: k,
						Traversal: socialgraph.TraversalOptions{MaxDistance: 2},
					}
					for _, q := range remote.Queries[:6] {
						live := installed.finder.Find(q.Text, p)
						want := cold.Find(q.Text, p)
						if !reflect.DeepEqual(live, want) {
							t.Fatalf("alpha=%v k=%d query %d: delta-absorbed ranking diverged from cold rebuild\nlive: %v\ncold: %v",
								alpha, k, q.ID, live, want)
						}
					}
				}
			}
		})
	}
}

// TestIngestCacheHitsMatchColdMisses attaches a result cache, runs an
// update-only ingest round (collection statistics fixed, so scoped
// invalidation preserves untouched entries), and checks every cached
// disposition after the delta: entries that survive must serve values
// byte-identical to a cold post-delta recompute, and entries that were
// dropped must recompute to exactly those values too.
func TestIngestCacheHitsMatchColdMisses(t *testing.T) {
	cfg := dataset.Config{Seed: 5, Scale: 0.05}
	const shards = 3
	installed := buildIngestSystem(cfg, shards)
	remote := dataset.Generate(cfg)

	cache := rescache.New(rescache.Options{})
	view := cache.Attach()
	installed.finder.SetResultCache(view)
	ing := ingest.New(ingestConfig(installed, remote, cache))

	p := core.Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}
	ctx := context.Background()
	warm := make(map[int][]core.ExpertScore)
	for _, q := range remote.Queries {
		res, status := installed.finder.FindCachedContext(ctx, q.Text, p)
		if status != core.CacheMiss {
			t.Fatalf("query %d: first lookup %q, want miss", q.ID, status)
		}
		warm[q.ID] = res
	}

	// A hand-crafted update-only, df-preserving delta: duplicate an
	// existing word of 12 indexed resources. Term frequencies move (the
	// postings change) but no term gains or loses a document, and no
	// text can flip the language filter — so N and every df stay fixed
	// and the invalidation must stay scoped.
	touched := 0
	for i := 0; i < remote.Graph.NumResources() && touched < 12; i++ {
		id := socialgraph.ResourceID(i)
		if remote.Graph.ResourceDeleted(id) {
			continue
		}
		r := remote.Graph.Resource(id)
		oldA, ok := installed.pipe.Analyze(r.Text, r.URLs)
		if !ok {
			continue
		}
		longest := ""
		for _, w := range strings.Fields(r.Text) {
			if len(w) > len(longest) {
				longest = w
			}
		}
		newText := r.Text + " " + longest
		newA, ok := installed.pipe.Analyze(newText, r.URLs)
		if !ok || reflect.DeepEqual(oldA.Terms, newA.Terms) {
			continue
		}
		remote.Graph.SetResourceText(id, newText, r.URLs...)
		touched++
	}
	if touched < 12 {
		t.Fatalf("only %d eligible resources for the df-preserving delta", touched)
	}
	rep, err := ing.RunOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FullPurge {
		t.Fatalf("update-only round forced a full purge: %+v", rep)
	}

	// Cold post-delta truth, built from the remote state.
	coldPipe := analysis.New(analysis.Options{Web: remote.Web})
	coldIx, _ := corpusio.BuildShardedIndex(remote.Graph, coldPipe, shards)
	cold := core.NewFinder(remote.Graph, coldIx, coldPipe, remote.Candidates)

	hits, misses := 0, 0
	for _, q := range remote.Queries {
		want := cold.Find(q.Text, p)
		res, status := installed.finder.FindCachedContext(ctx, q.Text, p)
		switch status {
		case core.CacheHit:
			hits++
			// A surviving entry must already equal the post-delta truth
			// (its inputs were untouched, so the pre-delta value is the
			// post-delta value).
			if !reflect.DeepEqual(res, warm[q.ID]) {
				t.Fatalf("query %d: surviving hit changed value", q.ID)
			}
		case core.CacheMiss:
			misses++
		default:
			t.Fatalf("query %d: unexpected disposition %q", q.ID, status)
		}
		if !reflect.DeepEqual(res, want) {
			t.Fatalf("query %d (%s): post-delta value diverged from cold rebuild", q.ID, status)
		}
		// And the value just stored must now hit, byte-identical.
		again, status := installed.finder.FindCachedContext(ctx, q.Text, p)
		if status != core.CacheHit || !reflect.DeepEqual(again, want) {
			t.Fatalf("query %d: re-lookup %q or value diverged", q.ID, status)
		}
	}
	if misses == 0 {
		t.Error("delta invalidated nothing: the scoped-invalidation path was not exercised")
	}
	if hits == 0 {
		t.Error("delta dropped every entry: no scoped survival was exercised")
	}
	t.Logf("post-delta dispositions: %d hits survived, %d misses recomputed (dropped %d)",
		hits, misses, rep.CacheDropped)
}
