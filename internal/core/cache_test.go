package core

import (
	"context"
	"reflect"
	"testing"

	"expertfind/internal/socialgraph"
)

func TestNormalizeNeed(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Who SWIMS  best?", "who swims best?"},
		{"  leading and\ttrailing \n ", "leading and trailing"},
		{"already normal", "already normal"},
		{"", ""},
	}
	for _, c := range cases {
		if got := NormalizeNeed(c.in); got != c.want {
			t.Errorf("NormalizeNeed(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParamsFingerprint(t *testing.T) {
	// Implicit defaults and their explicit spellings share a fingerprint.
	zero := Params{}.Fingerprint()
	explicit := Params{
		Alpha:           DefaultAlpha,
		DistanceWeights: DefaultDistanceWeights,
		WindowSize:      DefaultWindowSize,
	}.Fingerprint()
	if zero != explicit {
		t.Errorf("zero %q != explicit defaults %q", zero, explicit)
	}

	// Traversal network order must not matter.
	a := Params{Traversal: socialgraph.TraversalOptions{
		Networks: []socialgraph.Network{socialgraph.Twitter, socialgraph.Facebook},
	}}.Fingerprint()
	b := Params{Traversal: socialgraph.TraversalOptions{
		Networks: []socialgraph.Network{socialgraph.Facebook, socialgraph.Twitter},
	}}.Fingerprint()
	if a != b {
		t.Errorf("network order changed fingerprint: %q vs %q", a, b)
	}

	// ScoreWorkers never changes the ranking, so it must not split
	// cache entries.
	if (Params{ScoreWorkers: 4}).Fingerprint() != zero {
		t.Error("ScoreWorkers changed the fingerprint")
	}

	// Every ranking-relevant knob must produce a distinct fingerprint.
	variants := map[string]Params{
		"alpha":       {Alpha: 0.3},
		"alpha-zero":  {AlphaSet: true},
		"window":      {WindowSize: 5},
		"window-all":  {WindowSize: -1},
		"window-frac": {WindowFrac: 0.5},
		"weights":     {DistanceWeights: [3]float64{1, 0.5, 0.25}},
		"distance":    {Traversal: socialgraph.TraversalOptions{MaxDistance: 2}},
		"friends":     {Traversal: socialgraph.TraversalOptions{IncludeFriends: true}},
	}
	seen := map[string]string{"defaults": zero}
	for name, p := range variants {
		fp := p.Fingerprint()
		for prev, prevFP := range seen {
			if fp == prevFP {
				t.Errorf("%s and %s share fingerprint %q", name, prev, fp)
			}
		}
		seen[name] = fp
	}
}

func TestGroupFingerprint(t *testing.T) {
	f, users := buildFigure1(t)
	if f.GroupFingerprint() == "" {
		t.Fatal("empty group fingerprint")
	}
	g := f.Graph()
	sub := NewFinder(g, f.Index(), f.Pipeline(), []socialgraph.UserID{users["alice"], users["bob"]})
	if sub.GroupFingerprint() == f.GroupFingerprint() {
		t.Error("subgroup shares the full pool's fingerprint")
	}
	same := NewFinder(g, f.Index(), f.Pipeline(), nil)
	if same.GroupFingerprint() != f.GroupFingerprint() {
		t.Error("identical pools fingerprint differently")
	}
}

// fakeCache records the keys it sees and replays stored values.
type fakeCache struct {
	entries map[CacheKey][]ExpertScore
	keys    []CacheKey
}

func (c *fakeCache) GetOrCompute(key CacheKey, compute func() []ExpertScore) ([]ExpertScore, CacheStatus) {
	c.keys = append(c.keys, key)
	if v, ok := c.entries[key]; ok {
		return v, CacheHit
	}
	v := compute()
	c.entries[key] = v
	return v, CacheMiss
}

func TestFindCachedContext(t *testing.T) {
	f, _ := buildFigure1(t)
	p := Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}
	need := "who is the best at freestyle swimming?"

	// No cache installed: bypass, ranking unchanged.
	out, st := f.FindCachedContext(context.Background(), need, p)
	if st != CacheBypass {
		t.Fatalf("status %q, want bypass", st)
	}
	cold := f.Find(need, p)
	if !reflect.DeepEqual(out, cold) {
		t.Fatal("bypass ranking differs from Find")
	}

	fc := &fakeCache{entries: map[CacheKey][]ExpertScore{}}
	f.SetResultCache(fc)
	out, st = f.FindCachedContext(context.Background(), need, p)
	if st != CacheMiss {
		t.Fatalf("first cached query: status %q, want miss", st)
	}
	if !reflect.DeepEqual(out, cold) {
		t.Fatal("miss ranking differs from cold")
	}
	// Case/whitespace variants of the need normalize onto one key.
	out, st = f.FindCachedContext(context.Background(), "  WHO is the best at  FREESTYLE swimming?", p)
	if st != CacheHit {
		t.Fatalf("normalized variant: status %q, want hit", st)
	}
	if !reflect.DeepEqual(out, cold) {
		t.Fatal("hit ranking differs from cold")
	}
	// FindContext routes through the cache too, dropping the status.
	if got := f.FindContext(context.Background(), need, p); !reflect.DeepEqual(got, cold) {
		t.Fatal("FindContext via cache differs from cold")
	}

	want := CacheKey{Need: NormalizeNeed(need), Group: f.GroupFingerprint(), Params: p.Fingerprint()}
	for _, k := range fc.keys {
		if k != want {
			t.Fatalf("cache key %+v, want %+v", k, want)
		}
	}

	// Removing the cache restores bypass.
	f.SetResultCache(nil)
	if _, st := f.FindCachedContext(context.Background(), need, p); st != CacheBypass {
		t.Fatalf("after removal: status %q, want bypass", st)
	}
}
