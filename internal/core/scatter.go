package core

// Scatter-gather support: the shard-process half of distributed
// expert finding. A shard process owns one slice of the document
// space (routed by index.ShardRoute) but the full social graph, so it
// can score its slice under collection-global statistics and ship
// matches annotated with the candidate/distance evidence the
// coordinator needs to aggregate Eq. (3) — without the coordinator
// ever loading a corpus. The three pieces:
//
//	NeedStats    per-shard local df for a need's dimensions (phase 1)
//	ShardMatches globally-weighted matches of this shard's slice (phase 2)
//	RankMerged   coordinator-side Eq. (3) over the k-way-merged matches
//
// Determinism contract: with global stats equal to the sum of every
// shard's NeedStats, the concatenation (in scoredLess order) of all
// shards' ShardMatches is bit-identical to a single process's
// Matches, and RankMerged over it is bit-identical to that process's
// Find — same plan weights, same per-document addition chains, same
// per-expert accumulation order, same total-order sorts.

import (
	"context"
	"sort"
	"strconv"
	"time"

	"expertfind/internal/analysis"
	"expertfind/internal/index"
	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
	"expertfind/internal/telemetry"
)

// EffectiveAlpha resolves the Eq. (1) weighting factor, applying the
// paper default when Alpha was left unset.
func (p Params) EffectiveAlpha() float64 { return p.alpha() }

// EffectiveWeights resolves the per-distance wr weights, applying the
// defaults when unset.
func (p Params) EffectiveWeights() [3]float64 { return p.weights() }

// WindowFor resolves the window size for a relevant-resource list of
// the given length (§2.4.1), applying defaults and WindowFrac.
func (p Params) WindowFor(matches int) int { return p.window(matches) }

// NeedStats is one shard's local collection statistics restricted to
// a need's dimensions: what the coordinator sums across shards to
// reconstruct the global query weights.
type NeedStats struct {
	Docs     int
	TermDF   map[string]int
	EntityDF map[kb.EntityID]int
}

// NeedStats analyzes the need and reports this finder's document
// count plus the local resource frequency of every term and entity
// the analyzed need mentions (absent dimensions report 0 and are
// omitted). Analysis is deterministic, so every shard derives the
// same dimension set from the same need text.
func (f *Finder) NeedStats(need string) NeedStats {
	a := f.pipe.AnalyzeNeed(need)
	st := NeedStats{
		Docs:     f.index.NumDocs(),
		TermDF:   make(map[string]int, len(a.Terms)),
		EntityDF: make(map[kb.EntityID]int, len(a.Entities)),
	}
	for t := range a.Terms {
		if df := f.index.DocFreq(t); df > 0 {
			st.TermDF[t] = df
		}
	}
	for e := range a.Entities {
		if df := f.index.EntityFreq(e); df > 0 {
			st.EntityDF[e] = df
		}
	}
	return st
}

// ShardMatch is one relevant resource of a shard's slice: its Eq. (1)
// score under global weights plus the candidate/distance pairs the
// resource is reachable from — everything Eq. (3) needs, so the
// coordinator can aggregate without a graph of its own. Cands
// preserves the reachability map's deterministic order.
type ShardMatch struct {
	Doc   index.DocID
	Score float64
	Cands []socialgraph.CandidateDistance
}

// ShardMatches runs the shard-local part of a scattered query:
// analyze the need, score this finder's document slice under the
// supplied global collection view, restrict to resources reachable
// from the candidate pool, and annotate each match with its
// candidate/distance evidence. Matches come back in the global
// ranking order (descending score, ascending doc), ready for a k-way
// merge with the other shards' lists.
func (f *Finder) ShardMatches(ctx context.Context, need string, p Params, st index.CollectionStats) []ShardMatch {
	mQueries.Inc()
	tr := telemetry.TraceFrom(ctx)

	sp, t0 := tr.StartSpan("analyze"), time.Now()
	a := f.pipe.AnalyzeNeed(need)
	mStageSeconds.With("analyze").ObserveSince(t0)
	sp.End()

	sp, t0 = tr.StartSpan("traverse"), time.Now()
	rcm := f.reachability(p.Traversal)
	mStageSeconds.With("traverse").ObserveSince(t0)
	sp.SetAttr("reachable_resources", strconv.Itoa(len(rcm)))
	sp.End()

	sp, t0 = tr.StartSpan("index_match"), time.Now()
	scored := f.scoreStats(a, p, st, rcm)
	out := make([]ShardMatch, 0, len(scored))
	for _, sd := range scored {
		if cands, ok := rcm[sd.Doc]; ok {
			out = append(out, ShardMatch{Doc: sd.Doc, Score: sd.Score, Cands: cands})
		}
	}
	mStageSeconds.With("index_match").ObserveSince(t0)
	sp.SetAttr("matches", strconv.Itoa(len(out)))
	sp.End()
	return out
}

// scoreStats is score under an explicit collection view, honoring the
// per-query worker bound when the index supports it. With TopK set
// (and a stats-capable index), the shard prunes to its local top k of
// the reachable set — a shard's slice of the global top k is always
// within the shard's local top k, so the coordinator's merge of these
// prefixes, truncated to k, is byte-identical to the single-process
// bounded ranking.
func (f *Finder) scoreStats(need analysis.Analyzed, p Params, st index.CollectionStats, rcm map[socialgraph.ResourceID][]socialgraph.CandidateDistance) []index.ScoredDoc {
	alpha := p.EffectiveAlpha()
	if k := p.TopK; k > 0 {
		accept := func(d index.DocID) bool {
			_, ok := rcm[d]
			return ok
		}
		if p.ScoreWorkers != 0 {
			if sh, ok := f.index.(*index.Sharded); ok {
				return sh.ScoreStatsTopKWorkers(need, alpha, st, p.ScoreWorkers, k, accept)
			}
		}
		if ss, ok := f.index.(index.StatsSearcher); ok {
			return ss.ScoreStatsTopK(need, alpha, st, k, accept)
		}
		return f.index.ScoreTopK(need, alpha, k, accept)
	}
	if p.ScoreWorkers != 0 {
		if sh, ok := f.index.(*index.Sharded); ok {
			return sh.ScoreStatsWorkers(need, alpha, st, p.ScoreWorkers)
		}
	}
	if ss, ok := f.index.(index.StatsSearcher); ok {
		return ss.ScoreStats(need, alpha, st)
	}
	return f.index.Score(need, alpha)
}

// RankMerged is the coordinator-side Eq. (3) aggregation over the
// k-way-merged shard matches: window truncation, per-expert score
// accumulation weighted by distance, and the (descending score,
// ascending user) total-order sort. It mirrors rankMatches exactly —
// the accumulation runs in merged-match × candidate-list order, which
// over a complete merge equals the single-process addition order —
// so healthy-topology rankings are bit-identical to Finder.Find.
func RankMerged(matches []ShardMatch, p Params) []ExpertScore {
	n := p.window(len(matches))
	if n > len(matches) {
		n = len(matches)
	}
	w := p.weights()

	scores := make(map[socialgraph.UserID]float64)
	support := make(map[socialgraph.UserID]int)
	for _, m := range matches[:n] {
		for _, cd := range m.Cands {
			scores[cd.Candidate] += m.Score * w[cd.Distance]
			support[cd.Candidate]++
		}
	}

	out := make([]ExpertScore, 0, len(scores))
	for u, s := range scores {
		if s > 0 {
			out = append(out, ExpertScore{User: u, Score: s, Resources: support[u]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].User < out[j].User
	})
	return out
}
