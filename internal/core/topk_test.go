package core

import (
	"context"
	"fmt"
	"math"
	"reflect"
	"testing"

	"expertfind/internal/index"
	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
)

func assertMatchesBitIdentical(t *testing.T, label string, want, got []index.ScoredDoc) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d matches, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].Doc != got[i].Doc || math.Float64bits(want[i].Score) != math.Float64bits(got[i].Score) {
			t.Fatalf("%s: match %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestMatchesTopKBounded checks the TopK contract at the pipeline
// layer: Matches with TopK = k is the first k of the exhaustive
// reachable ranking, bit for bit, through every scoreMatches dispatch
// — the plain Searcher, the worker-bounded ParallelSearcher, and a
// sharded index without a worker bound.
func TestMatchesTopKBounded(t *testing.T) {
	f, _ := buildFigure1(t)
	need := f.Pipeline().AnalyzeNeed("who is the best at freestyle swimming?")
	base := Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}

	exhaustive := f.Matches(need, base)
	if len(exhaustive) < 2 {
		t.Fatalf("fixture yields %d matches; need at least 2", len(exhaustive))
	}
	sharded := shardedClone(t, f, 3)

	for _, k := range []int{1, 2, len(exhaustive), len(exhaustive) + 10} {
		want := exhaustive
		if k < len(want) {
			want = want[:k]
		}
		p := base
		p.TopK = k
		assertMatchesBitIdentical(t, fmt.Sprintf("k%d mono", k), want, f.Matches(need, p))

		pw := p
		pw.ScoreWorkers = 2
		assertMatchesBitIdentical(t, fmt.Sprintf("k%d sharded workers", k), want, sharded.Matches(need, pw))
		assertMatchesBitIdentical(t, fmt.Sprintf("k%d sharded", k), want, sharded.Matches(need, p))

		pw2 := p
		pw2.ScoreWorkers = 2
		assertMatchesBitIdentical(t, fmt.Sprintf("k%d mono workers", k), want, f.Matches(need, pw2))
	}
}

// TestFindTopKEndToEnd checks Find under a TopK bound: with k at
// least the full match count the expert ranking is bit-identical to
// the exhaustive one, and any k is deterministic and shard-invariant.
func TestFindTopKEndToEnd(t *testing.T) {
	f, _ := buildFigure1(t)
	const need = "who is the best at freestyle swimming?"
	base := Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}
	exhaustive := f.Find(need, base)

	pAll := base
	pAll.TopK = 1000
	assertExpertsBitIdentical(t, "k covers corpus", exhaustive, f.Find(need, pAll))

	sharded := shardedClone(t, f, 3)
	for _, k := range []int{1, 2, 1000} {
		p := base
		p.TopK = k
		want := f.Find(need, p)
		assertExpertsBitIdentical(t, fmt.Sprintf("k%d repeat", k), want, f.Find(need, p))
		assertExpertsBitIdentical(t, fmt.Sprintf("k%d sharded", k), want, sharded.Find(need, p))
	}
}

// TestShardMatchesTopK drives the scatter entrypoint under a TopK
// bound through all three scoreStats dispatches: the worker-bounded
// sharded path, the StatsSearcher path, and the plain-Searcher
// fallback. All use the same (self-)global stats here, so every
// dispatch must produce the exhaustive shard matches truncated to k.
func TestShardMatchesTopK(t *testing.T) {
	full, _ := buildFigure1(t)
	const need = "who is the best at freestyle swimming?"
	base := Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}

	st := full.NeedStats(need)
	global := index.GlobalStats{Docs: st.Docs, TermDF: st.TermDF}
	for e, df := range st.EntityDF {
		if global.EntityDF == nil {
			global.EntityDF = make(map[kb.EntityID]int, len(st.EntityDF))
		}
		global.EntityDF[e] += df
	}
	exhaustive := full.ShardMatches(context.Background(), need, base, global)
	if len(exhaustive) < 2 {
		t.Fatalf("fixture yields %d shard matches; need at least 2", len(exhaustive))
	}

	mono, ok := full.Index().(*index.Index)
	if !ok {
		t.Fatalf("fixture index is %T, want *index.Index", full.Index())
	}
	sharded := NewFinder(full.Graph(), index.NewShardedFromIndex(mono, 3), full.Pipeline(), nil)
	plain := NewFinder(full.Graph(), noStats{mono}, full.Pipeline(), nil)

	for _, k := range []int{1, 2, len(exhaustive) + 5} {
		want := exhaustive
		if k < len(want) {
			want = want[:k]
		}
		p := base
		p.TopK = k
		if got := full.ShardMatches(context.Background(), need, p, global); !reflect.DeepEqual(got, want) {
			t.Fatalf("k%d stats path:\n got %v\nwant %v", k, got, want)
		}
		pw := p
		pw.ScoreWorkers = 2
		if got := sharded.ShardMatches(context.Background(), need, pw, global); !reflect.DeepEqual(got, want) {
			t.Fatalf("k%d sharded worker path:\n got %v\nwant %v", k, got, want)
		}
		if got := plain.ShardMatches(context.Background(), need, p, global); !reflect.DeepEqual(got, want) {
			t.Fatalf("k%d fallback path:\n got %v\nwant %v", k, got, want)
		}
	}
}

// TestFingerprintTopK pins the cache-key behavior of the bound: zero
// and negative TopK share the exhaustive fingerprint, every positive
// k gets its own, and k is independent of the window dimension.
func TestFingerprintTopK(t *testing.T) {
	base := Params{}
	if got, want := base.Fingerprint(), (Params{TopK: -3}).Fingerprint(); got != want {
		t.Fatalf("zero vs negative TopK fingerprints differ: %q vs %q", got, want)
	}
	k5 := Params{TopK: 5}.Fingerprint()
	k6 := Params{TopK: 6}.Fingerprint()
	if k5 == k6 || k5 == base.Fingerprint() {
		t.Fatalf("TopK not keyed: base=%q k5=%q k6=%q", base.Fingerprint(), k5, k6)
	}
	if got, want := (Params{TopK: 5, WindowSize: -1}).Fingerprint(), k5; got == want {
		t.Fatalf("window change did not change fingerprint alongside TopK")
	}
}
