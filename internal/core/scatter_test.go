package core

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"expertfind/internal/index"
	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
)

// shardFinders splits full's corpus into n slice finders, each
// indexing only the documents index.ShardRoute assigns to it while
// sharing the full graph and analysis pipeline — the exact shape of a
// shard-mode serve process.
func shardFinders(t testing.TB, full *Finder, n int) []*Finder {
	t.Helper()
	g, pipe := full.Graph(), full.Pipeline()
	ixs := make([]*index.Index, n)
	for i := range ixs {
		ixs[i] = index.New()
	}
	for i := 0; i < g.NumResources(); i++ {
		r := g.Resource(socialgraph.ResourceID(i))
		if !full.Index().Has(r.ID) {
			continue
		}
		if a, ok := pipe.Analyze(r.Text, r.URLs); ok {
			ixs[index.ShardRoute(r.ID, n)].Add(r.ID, a)
		}
	}
	out := make([]*Finder, n)
	for i, ix := range ixs {
		out[i] = NewFinder(g, ix, pipe, nil)
	}
	return out
}

// mergeShardMatches concatenates per-shard match lists and sorts them
// under the coordinator's merge order (descending score, ascending
// doc) — equivalent to the k-way merge over already-sorted lists.
func mergeShardMatches(lists [][]ShardMatch) []ShardMatch {
	var all []ShardMatch
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Doc < all[j].Doc
	})
	return all
}

// TestScatterShardDifferential is the in-package half of the scatter
// determinism contract: for every shard count, summed NeedStats equal
// the single-process collection view, merged ShardMatches equal the
// single-process match list, and RankMerged over them equals Find.
func TestScatterShardDifferential(t *testing.T) {
	full, _ := buildFigure1(t)
	needs := []string{
		"who is the best at freestyle swimming?",
		"swimming training",
	}
	params := []Params{
		{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}},
		{Alpha: 0.3, AlphaSet: true, WindowSize: 50, Traversal: socialgraph.TraversalOptions{MaxDistance: 2}},
		{WindowFrac: 0.5, Traversal: socialgraph.TraversalOptions{MaxDistance: 1}},
	}
	for _, n := range []int{1, 2, 3, 5} {
		shards := shardFinders(t, full, n)

		total := 0
		for _, sf := range shards {
			total += sf.Index().NumDocs()
		}
		if want := full.Index().NumDocs(); total != want {
			t.Fatalf("n=%d: shard slices hold %d docs, full index %d", n, total, want)
		}

		for _, need := range needs {
			// Phase 1: gather and sum local stats.
			global := index.GlobalStats{TermDF: make(map[string]int)}
			for _, sf := range shards {
				st := sf.NeedStats(need)
				global.Docs += st.Docs
				for term, df := range st.TermDF {
					global.TermDF[term] += df
				}
				for e, df := range st.EntityDF {
					if global.EntityDF == nil {
						global.EntityDF = make(map[kb.EntityID]int, len(st.EntityDF))
					}
					global.EntityDF[e] += df
				}
			}
			if global.Docs != full.Index().NumDocs() {
				t.Fatalf("n=%d need=%q: summed Docs %d != %d", n, need, global.Docs, full.Index().NumDocs())
			}
			a := full.Pipeline().AnalyzeNeed(need)
			for term := range a.Terms {
				if got, want := global.DocFreq(term), full.Index().DocFreq(term); got != want {
					t.Errorf("n=%d need=%q term=%q: summed df %d != %d", n, need, term, got, want)
				}
			}

			for pi, p := range params {
				// Phase 2: score each slice under the global view,
				// merge under the coordinator's total order.
				lists := make([][]ShardMatch, n)
				for i, sf := range shards {
					lists[i] = sf.ShardMatches(context.Background(), need, p, global)
					if !sort.SliceIsSorted(lists[i], func(a, b int) bool {
						if lists[i][a].Score != lists[i][b].Score {
							return lists[i][a].Score > lists[i][b].Score
						}
						return lists[i][a].Doc < lists[i][b].Doc
					}) {
						t.Errorf("n=%d need=%q p=%d shard=%d: ShardMatches not in merge order", n, need, pi, i)
					}
				}
				merged := mergeShardMatches(lists)

				want := full.Matches(a, p)
				if len(merged) != len(want) {
					t.Fatalf("n=%d need=%q p=%d: merged %d matches, single-process %d", n, need, pi, len(merged), len(want))
				}
				for i := range want {
					if merged[i].Doc != want[i].Doc || merged[i].Score != want[i].Score {
						t.Fatalf("n=%d need=%q p=%d: match %d = (%d, %v), want (%d, %v)",
							n, need, pi, i, merged[i].Doc, merged[i].Score, want[i].Doc, want[i].Score)
					}
				}

				got := RankMerged(merged, p)
				if wantRank := full.Find(need, p); !reflect.DeepEqual(got, wantRank) {
					t.Fatalf("n=%d need=%q p=%d: RankMerged diverges from Find:\n got %v\nwant %v", n, need, pi, got, wantRank)
				}
			}
		}
	}
}

// TestScatterNeedStatsOmitsAbsentDims pins the wire-size contract:
// dimensions with zero local frequency are omitted, not reported as 0.
func TestScatterNeedStatsOmitsAbsentDims(t *testing.T) {
	full, _ := buildFigure1(t)
	st := full.NeedStats("freestyle xylophone zymurgy")
	if st.Docs != full.Index().NumDocs() {
		t.Fatalf("Docs = %d, want %d", st.Docs, full.Index().NumDocs())
	}
	if _, ok := st.TermDF["freestyl"]; !ok {
		t.Errorf("expected df entry for a matching stem, got %v", st.TermDF)
	}
	for term, df := range st.TermDF {
		if df <= 0 {
			t.Errorf("term %q reported with df %d; absent dims must be omitted", term, df)
		}
	}
	for e, df := range st.EntityDF {
		if df <= 0 {
			t.Errorf("entity %v reported with df %d; absent dims must be omitted", e, df)
		}
	}
}

// TestParamsEffectiveAccessors covers the exported default-resolution
// views the shard HTTP layer uses to echo resolved parameters.
func TestParamsEffectiveAccessors(t *testing.T) {
	var zero Params
	if got := zero.EffectiveAlpha(); got != DefaultAlpha {
		t.Errorf("zero EffectiveAlpha = %v, want %v", got, DefaultAlpha)
	}
	if got := zero.EffectiveWeights(); got != DefaultDistanceWeights {
		t.Errorf("zero EffectiveWeights = %v, want %v", got, DefaultDistanceWeights)
	}
	if got := zero.WindowFor(500); got != DefaultWindowSize {
		t.Errorf("zero WindowFor(500) = %d, want %d", got, DefaultWindowSize)
	}

	p := Params{Alpha: 0, AlphaSet: true, DistanceWeights: [3]float64{1, 0.5, 0.25}, WindowSize: -1}
	if got := p.EffectiveAlpha(); got != 0 {
		t.Errorf("AlphaSet EffectiveAlpha = %v, want 0", got)
	}
	if got := p.EffectiveWeights(); got != p.DistanceWeights {
		t.Errorf("EffectiveWeights = %v, want %v", got, p.DistanceWeights)
	}
	if got := p.WindowFor(42); got != 42 {
		t.Errorf("negative-window WindowFor(42) = %d, want 42", got)
	}
	if got := (Params{WindowFrac: 0.1}).WindowFor(5); got != 1 {
		t.Errorf("WindowFrac floor WindowFor(5) = %d, want 1", got)
	}
}

// TestRankMergedEdgeCases: empty input, window truncation, and the
// zero-score filter.
func TestRankMergedEdgeCases(t *testing.T) {
	if got := RankMerged(nil, Params{}); len(got) != 0 {
		t.Fatalf("RankMerged(nil) = %v, want empty", got)
	}

	m := []ShardMatch{
		{Doc: 1, Score: 2, Cands: []socialgraph.CandidateDistance{{Candidate: 7, Distance: 0}}},
		{Doc: 2, Score: 1, Cands: []socialgraph.CandidateDistance{{Candidate: 8, Distance: 1}}},
	}
	// Window of 1 must drop doc 2's contribution entirely.
	got := RankMerged(m, Params{WindowSize: 1})
	if len(got) != 1 || got[0].User != 7 {
		t.Fatalf("windowed RankMerged = %v, want only user 7", got)
	}

	// A candidate whose only evidence is weighted to zero is filtered.
	z := []ShardMatch{
		{Doc: 1, Score: 5, Cands: []socialgraph.CandidateDistance{{Candidate: 9, Distance: 2}}},
	}
	got = RankMerged(z, Params{DistanceWeights: [3]float64{1, 1, 0}, WindowSize: -1})
	if len(got) != 0 {
		t.Fatalf("zero-weight RankMerged = %v, want empty", got)
	}
}

// noStats hides the concrete index behind the plain Searcher
// interface, forcing scoreStats down its local-stats fallback path.
type noStats struct{ index.Searcher }

// TestShardMatchesScoreFallbacks covers the three scoreStats
// dispatches: the sharded worker-bounded path, the StatsSearcher path
// (exercised by the differential test), and the plain-Score fallback,
// which must agree when the "global" view is the local one.
func TestShardMatchesScoreFallbacks(t *testing.T) {
	full, _ := buildFigure1(t)
	const need = "who is the best at freestyle swimming?"
	p := Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}

	// Self-global stats: one shard holding the whole corpus.
	st := full.NeedStats(need)
	global := index.GlobalStats{Docs: st.Docs, TermDF: st.TermDF}
	for e, df := range st.EntityDF {
		if global.EntityDF == nil {
			global.EntityDF = make(map[kb.EntityID]int, len(st.EntityDF))
		}
		global.EntityDF[e] += df
	}
	want := full.ShardMatches(context.Background(), need, p, global)
	if len(want) == 0 {
		t.Fatal("no matches from the StatsSearcher path")
	}

	// Worker-bounded sharded path.
	mono, ok := full.Index().(*index.Index)
	if !ok {
		t.Fatalf("fixture index is %T, want *index.Index", full.Index())
	}
	sharded := NewFinder(full.Graph(), index.NewShardedFromIndex(mono, 3), full.Pipeline(), nil)
	pw := p
	pw.ScoreWorkers = 2
	got := sharded.ShardMatches(context.Background(), need, pw, global)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("sharded worker path diverges:\n got %v\nwant %v", got, want)
	}

	// Fallback path: the index type exposes no ScoreStats, so the
	// shard scores with its local view — identical here because the
	// local view is the global one.
	plain := NewFinder(full.Graph(), noStats{mono}, full.Pipeline(), nil)
	got = plain.ShardMatches(context.Background(), need, p, global)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fallback path diverges:\n got %v\nwant %v", got, want)
	}
}
