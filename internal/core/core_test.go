package core

import (
	"testing"

	"expertfind/internal/analysis"
	"expertfind/internal/index"
	"expertfind/internal/socialgraph"
)

// buildFigure1 reproduces the running example of the paper's Fig. 1:
// Anna asks about the best freestyle swimmers. Alice tweeted about
// Michael Phelps's freestyle gold medal, Charlie posted about his
// freestyle training, Bob's profile lists swimming as a hobby, Chuck
// is only connected to Bob, and Peggy has nothing related.
func buildFigure1(t testing.TB) (*Finder, map[string]socialgraph.UserID) {
	t.Helper()
	g := socialgraph.New()
	users := map[string]socialgraph.UserID{
		"alice":   g.AddUser("Alice", true),
		"charlie": g.AddUser("Charlie", true),
		"bob":     g.AddUser("Bob", true),
		"chuck":   g.AddUser("Chuck", true),
		"peggy":   g.AddUser("Peggy", true),
	}

	g.SetProfile(users["alice"], socialgraph.Twitter, "just a person who loves racing sports")
	g.SetProfile(users["charlie"], socialgraph.Facebook, "enjoying life one day at a time")
	g.SetProfile(users["bob"], socialgraph.Facebook, "hobby: swimming, movies and long walks outside")
	g.SetProfile(users["chuck"], socialgraph.Twitter, "nothing interesting to say here really")
	g.SetProfile(users["peggy"], socialgraph.Facebook, "i like knitting and gardening in my backyard")

	tweet := g.AddResource(socialgraph.Twitter, socialgraph.KindTweet, users["alice"],
		"Michael Phelps is the best! Great freestyle gold medal")
	g.Owns(users["alice"], tweet)

	post := g.AddResource(socialgraph.Facebook, socialgraph.KindPost, users["charlie"],
		"Just finished 30min freestyle training at the swimming pool")
	g.Owns(users["charlie"], post)

	// Chuck follows Bob on Twitter (unidirectional), so Bob's swimming
	// profile is a distance-1 resource for Chuck.
	g.SetProfile(users["bob"], socialgraph.Twitter, "swimming fan, i watch every race i can")
	g.Follows(users["chuck"], users["bob"], socialgraph.Twitter)

	pipe := analysis.New(analysis.Options{})
	ix := index.New()
	for i := 0; i < g.NumResources(); i++ {
		r := g.Resource(socialgraph.ResourceID(i))
		if a, ok := pipe.Analyze(r.Text, r.URLs); ok {
			ix.Add(r.ID, a)
		}
	}
	return NewFinder(g, ix, pipe, nil), users
}

func rankOf(experts []ExpertScore, u socialgraph.UserID) int {
	for i, e := range experts {
		if e.User == u {
			return i
		}
	}
	return -1
}

func TestFigure1Ranking(t *testing.T) {
	f, users := buildFigure1(t)
	experts := f.Find("who is the best at freestyle swimming?", Params{
		Traversal: socialgraph.TraversalOptions{MaxDistance: 2},
	})

	if rankOf(experts, users["peggy"]) != -1 {
		t.Error("peggy retrieved despite having no related resources")
	}
	ra := rankOf(experts, users["alice"])
	rc := rankOf(experts, users["charlie"])
	rb := rankOf(experts, users["bob"])
	rch := rankOf(experts, users["chuck"])
	if ra == -1 || rc == -1 || rb == -1 || rch == -1 {
		t.Fatalf("missing experts: alice=%d charlie=%d bob=%d chuck=%d (%v)", ra, rc, rb, rch, experts)
	}
	// The paper's ranking: Alice, Charlie, Bob, Chuck.
	if !(ra < rc && rc < rb && rb < rch) {
		t.Errorf("ranking = alice:%d charlie:%d bob:%d chuck:%d, want alice < charlie < bob < chuck\n%v",
			ra, rc, rb, rch, experts)
	}
}

func TestDistanceZeroOnlyProfiles(t *testing.T) {
	f, users := buildFigure1(t)
	experts := f.Find("who is the best at freestyle swimming?", Params{
		Traversal: socialgraph.TraversalOptions{MaxDistance: 0},
	})
	// Only Bob's profile mentions swimming: he is the only expert
	// retrievable from profiles alone.
	if rankOf(experts, users["bob"]) != 0 {
		t.Errorf("bob not first with distance 0: %v", experts)
	}
	if rankOf(experts, users["alice"]) != -1 {
		t.Errorf("alice retrieved from profile only: %v", experts)
	}
	if rankOf(experts, users["chuck"]) != -1 {
		t.Errorf("chuck retrieved at distance 0: %v", experts)
	}
}

func TestNetworkRestriction(t *testing.T) {
	f, users := buildFigure1(t)
	experts := f.Find("who is the best at freestyle swimming?", Params{
		Traversal: socialgraph.TraversalOptions{
			MaxDistance: 2,
			Networks:    []socialgraph.Network{socialgraph.Facebook},
		},
	})
	if rankOf(experts, users["alice"]) != -1 {
		t.Errorf("alice (twitter only) retrieved on facebook: %v", experts)
	}
	if rankOf(experts, users["charlie"]) == -1 {
		t.Errorf("charlie (facebook) not retrieved: %v", experts)
	}
}

func TestDistanceWeightsMatter(t *testing.T) {
	f, users := buildFigure1(t)
	p := Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}

	def := f.Find("who is the best at freestyle swimming?", p)

	// With weight 0 at distance 1 and 2, only profile evidence counts.
	p.DistanceWeights = [3]float64{1, 0, 0}
	profOnly := f.Find("who is the best at freestyle swimming?", p)
	if rankOf(profOnly, users["alice"]) != -1 {
		t.Errorf("alice scored with zeroed distance-1 weight: %v", profOnly)
	}
	if len(profOnly) >= len(def) {
		t.Errorf("zeroed weights retrieved %d >= %d experts", len(profOnly), len(def))
	}
}

func TestWindowTruncation(t *testing.T) {
	f, _ := buildFigure1(t)
	need := f.Pipeline().AnalyzeNeed("who is the best at freestyle swimming?")
	p := Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}
	matches := f.Matches(need, p)
	if len(matches) < 3 {
		t.Fatalf("only %d matches", len(matches))
	}
	// Window of 1: only the single best resource contributes.
	p.WindowSize = 1
	experts := f.RankFromMatches(matches, p)
	if len(experts) != 1 {
		t.Errorf("window 1 yielded %d experts, want 1", len(experts))
	}
	// Unbounded window.
	p.WindowSize = -1
	all := f.RankFromMatches(matches, p)
	if len(all) < len(experts) {
		t.Errorf("unbounded window yielded fewer experts")
	}
}

func TestWindowFrac(t *testing.T) {
	p := Params{WindowFrac: 0.5}
	if got := p.window(10); got != 5 {
		t.Errorf("window(10) at frac 0.5 = %d", got)
	}
	if got := p.window(1); got != 1 {
		t.Errorf("window(1) at frac 0.5 = %d, want minimum 1", got)
	}
	p = Params{}
	if got := p.window(1000); got != DefaultWindowSize {
		t.Errorf("default window = %d", got)
	}
}

func TestAlphaDefaulting(t *testing.T) {
	if (Params{}).alpha() != DefaultAlpha {
		t.Error("zero Params alpha != default")
	}
	if (Params{Alpha: 0.3}).alpha() != 0.3 {
		t.Error("explicit alpha ignored")
	}
	if (Params{AlphaSet: true}).alpha() != 0 {
		t.Error("AlphaSet zero alpha ignored")
	}
}

func TestScoresDeterministic(t *testing.T) {
	f, _ := buildFigure1(t)
	p := Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}
	a := f.Find("who is the best at freestyle swimming?", p)
	b := f.Find("who is the best at freestyle swimming?", p)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic lengths %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("nondeterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEmptyNeed(t *testing.T) {
	f, _ := buildFigure1(t)
	experts := f.Find("", Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}})
	if len(experts) != 0 {
		t.Errorf("empty need retrieved %v", experts)
	}
}

func TestCandidatesAccessor(t *testing.T) {
	f, _ := buildFigure1(t)
	if len(f.Candidates()) != 5 {
		t.Errorf("Candidates = %v", f.Candidates())
	}
	if f.Graph() == nil || f.Index() == nil || f.Pipeline() == nil {
		t.Error("nil accessors")
	}
}

func TestExplain(t *testing.T) {
	f, users := buildFigure1(t)
	need := f.Pipeline().AnalyzeNeed("who is the best at freestyle swimming?")
	p := Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}

	// Alice's evidence is her tweet at distance 1.
	ev := f.Explain(need, users["alice"], p, 0)
	if len(ev) != 1 {
		t.Fatalf("alice evidence = %v", ev)
	}
	if ev[0].Distance != 1 {
		t.Errorf("alice evidence distance = %d", ev[0].Distance)
	}
	// The sum of contributions equals the ranked score.
	experts := f.FindAnalyzed(need, p)
	var aliceScore float64
	for _, e := range experts {
		if e.User == users["alice"] {
			aliceScore = e.Score
		}
	}
	var sum float64
	for _, e := range ev {
		sum += e.Contribution
		if e.Contribution != e.Relevance*DefaultDistanceWeights[e.Distance] {
			t.Errorf("contribution mismatch: %+v", e)
		}
	}
	if diff := sum - aliceScore; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("evidence sum %v != score %v", sum, aliceScore)
	}

	// Peggy has no evidence.
	if ev := f.Explain(need, users["peggy"], p, 0); len(ev) != 0 {
		t.Errorf("peggy evidence = %v", ev)
	}

	// Truncation.
	if ev := f.Explain(need, users["bob"], p, 1); len(ev) > 1 {
		t.Errorf("topN ignored: %v", ev)
	}
}
