// Package core implements the paper's primary contribution: matching
// expertise needs to candidate experts over social-network resources
// (§2.4) and ranking the experts (§2.4.1, Eq. 3).
//
// Given an expertise need q, the Finder
//
//  1. analyzes q with the same pipeline used for resources;
//  2. retrieves the relevant resources RR with the vector-space model
//     of Eq. (1), restricted to the resources reachable from the
//     candidate pool under the configured social-graph traversal;
//  3. truncates RR to the window of the top-n matches (§2.4.1);
//  4. scores each candidate expert as
//     score(q,ex) = Σ_{ri∈RR} score(q,ri) · wr(ri,ex),
//     where wr weighs each resource by its graph distance from the
//     candidate, linearly decreasing within [0.5, 1] (§3.3).
package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"expertfind/internal/analysis"
	"expertfind/internal/index"
	"expertfind/internal/socialgraph"
	"expertfind/internal/telemetry"
)

// Query-pipeline metrics. Stage names follow the pipeline order:
// analyze → traverse → index_match → aggregate_rank; the same names
// label the per-query trace spans FindContext records.
var (
	mQueries = telemetry.Default().Counter(
		"expertfind_queries_total",
		"Expert-finding queries answered by Finder.FindAnalyzed.")
	mStageSeconds = telemetry.Default().HistogramVec(
		"expertfind_pipeline_stage_duration_seconds",
		"Wall time per query-pipeline stage.", nil, "stage")
	mCacheHits = telemetry.Default().Counter(
		"expertfind_traversal_cache_hits_total",
		"Reachability-map lookups answered from the per-traversal cache.")
	mCacheMisses = telemetry.Default().Counter(
		"expertfind_traversal_cache_misses_total",
		"Reachability-map lookups that had to rebuild the map.")
)

// DefaultWindowSize is the number of relevant resources considered
// for expert ranking, as set in the paper after the window-size
// sensitivity analysis (§3.3.1).
const DefaultWindowSize = 100

// DefaultAlpha balances term matching vs. entity matching, as set in
// the paper after the α sensitivity analysis (§3.3.2).
const DefaultAlpha = 0.6

// DefaultDistanceWeights are the wr weighting terms per resource
// distance: fixed in [0.5, 1] with value linearly decreasing w.r.t.
// distance (§3.3).
var DefaultDistanceWeights = [3]float64{1.0, 0.75, 0.5}

// Params configures one expert-finding query.
type Params struct {
	// Alpha is the Eq. (1) weighting factor: 1 = keyword matching
	// only, 0 = entity matching only. A zero Alpha selects
	// DefaultAlpha unless AlphaSet is true.
	Alpha float64
	// AlphaSet marks Alpha as deliberate even when it is 0 (entity
	// matching only). Without it, a zero Alpha selects DefaultAlpha,
	// keeping the zero Params value useful.
	AlphaSet bool
	// WindowSize truncates the relevant-resource list to the top n
	// matches. Zero selects DefaultWindowSize; negative disables
	// truncation.
	WindowSize int
	// WindowFrac, when positive, sets the window to this fraction of
	// the matching resources (the x-axis of Fig. 6), overriding
	// WindowSize.
	WindowFrac float64
	// Traversal bounds the social-graph exploration (distance,
	// networks, friends).
	Traversal socialgraph.TraversalOptions
	// DistanceWeights override wr per distance; the zero value
	// selects DefaultDistanceWeights.
	DistanceWeights [3]float64
	// ScoreWorkers bounds the index-scoring worker pool for this
	// query when the finder's index is sharded
	// (index.ParallelSearcher): 0 keeps the index's own
	// GOMAXPROCS-sized default, 1 forces sequential shard scoring,
	// larger values allow up to that many concurrent shard scorers.
	// Ignored for non-sharded indexes. Results are identical for any
	// value — the knob trades latency against CPU, never output.
	ScoreWorkers int
}

func (p Params) alpha() float64 {
	if !p.AlphaSet && p.Alpha == 0 {
		return DefaultAlpha
	}
	return p.Alpha
}

func (p Params) weights() [3]float64 {
	if p.DistanceWeights == ([3]float64{}) {
		return DefaultDistanceWeights
	}
	return p.DistanceWeights
}

func (p Params) window(matches int) int {
	if p.WindowFrac > 0 {
		n := int(p.WindowFrac * float64(matches))
		if n < 1 {
			n = 1
		}
		return n
	}
	switch {
	case p.WindowSize < 0:
		return matches
	case p.WindowSize == 0:
		return DefaultWindowSize
	default:
		return p.WindowSize
	}
}

// ExpertScore is one ranked expert with its expertise score and the
// number of relevant resources that supported it.
type ExpertScore struct {
	User      socialgraph.UserID
	Score     float64
	Resources int
}

// Finder answers expertise needs over a social graph and a resource
// index. It caches the expensive resource→candidate reachability maps
// per traversal configuration; the cache is safe for concurrent use.
type Finder struct {
	graph      *socialgraph.Graph
	index      index.Searcher
	pipe       *analysis.Pipeline
	candidates []socialgraph.UserID

	mu       sync.Mutex
	rcmCache map[string]map[socialgraph.ResourceID][]socialgraph.CandidateDistance
}

// NewFinder assembles a Finder. ix is either a monolithic
// *index.Index or an *index.Sharded (the Params.ScoreWorkers knob
// applies to the latter). candidates is the expert-candidate pool CE;
// nil selects every candidate user in the graph.
func NewFinder(g *socialgraph.Graph, ix index.Searcher, pipe *analysis.Pipeline, candidates []socialgraph.UserID) *Finder {
	if candidates == nil {
		candidates = g.Candidates()
	}
	return &Finder{
		graph:      g,
		index:      ix,
		pipe:       pipe,
		candidates: candidates,
		rcmCache:   make(map[string]map[socialgraph.ResourceID][]socialgraph.CandidateDistance),
	}
}

// Candidates returns the candidate pool CE.
func (f *Finder) Candidates() []socialgraph.UserID {
	out := make([]socialgraph.UserID, len(f.candidates))
	copy(out, f.candidates)
	return out
}

// Graph returns the underlying social graph.
func (f *Finder) Graph() *socialgraph.Graph { return f.graph }

// Index returns the underlying resource index.
func (f *Finder) Index() index.Searcher { return f.index }

// score runs Eq. (1) matching, honoring the per-query worker bound
// when the index supports parallel shard scoring.
func (f *Finder) score(need analysis.Analyzed, p Params) []index.ScoredDoc {
	if p.ScoreWorkers != 0 {
		if ps, ok := f.index.(index.ParallelSearcher); ok {
			return ps.ScoreWorkers(need, p.alpha(), p.ScoreWorkers)
		}
	}
	return f.index.Score(need, p.alpha())
}

// Pipeline returns the analysis pipeline.
func (f *Finder) Pipeline() *analysis.Pipeline { return f.pipe }

// Find ranks the candidate experts for a natural-language expertise
// need. Only experts with positive score are returned, best first.
func (f *Finder) Find(need string, p Params) []ExpertScore {
	return f.FindContext(context.Background(), need, p)
}

// FindContext is Find with a context. When ctx carries a telemetry
// trace (telemetry.Tracer.Start), every pipeline stage is recorded as
// a span on it; stage timings land in the metrics registry either
// way.
func (f *Finder) FindContext(ctx context.Context, need string, p Params) []ExpertScore {
	tr := telemetry.TraceFrom(ctx)
	sp, t0 := tr.StartSpan("analyze"), time.Now()
	a := f.pipe.AnalyzeNeed(need)
	mStageSeconds.With("analyze").ObserveSince(t0)
	sp.End()
	return f.FindAnalyzedContext(ctx, a, p)
}

// FindAnalyzed is Find for a pre-analyzed need.
func (f *Finder) FindAnalyzed(need analysis.Analyzed, p Params) []ExpertScore {
	return f.FindAnalyzedContext(context.Background(), need, p)
}

// FindAnalyzedContext is FindAnalyzed with a context, instrumented
// like FindContext (minus the analyze stage, already done by the
// caller).
func (f *Finder) FindAnalyzedContext(ctx context.Context, need analysis.Analyzed, p Params) []ExpertScore {
	mQueries.Inc()
	tr := telemetry.TraceFrom(ctx)

	sp, t0 := tr.StartSpan("traverse"), time.Now()
	rcm := f.reachability(p.Traversal)
	mStageSeconds.With("traverse").ObserveSince(t0)
	sp.SetAttr("reachable_resources", strconv.Itoa(len(rcm)))
	sp.End()

	sp, t0 = tr.StartSpan("index_match"), time.Now()
	matches := filterReachable(f.score(need, p), rcm)
	mStageSeconds.With("index_match").ObserveSince(t0)
	sp.SetAttr("matches", strconv.Itoa(len(matches)))
	sp.End()

	sp, t0 = tr.StartSpan("aggregate_rank"), time.Now()
	out := rankMatches(matches, rcm, p)
	mStageSeconds.With("aggregate_rank").ObserveSince(t0)
	sp.SetAttr("experts", strconv.Itoa(len(out)))
	sp.End()
	return out
}

// Matches returns the relevant resources for the need — the scored
// matches of Eq. (1) restricted to resources reachable from the
// candidate pool under p.Traversal — ordered by descending relevance,
// before window truncation.
func (f *Finder) Matches(need analysis.Analyzed, p Params) []index.ScoredDoc {
	return filterReachable(f.score(need, p), f.reachability(p.Traversal))
}

// filterReachable restricts scored resources to those present in the
// reachability map, preserving order.
func filterReachable(scored []index.ScoredDoc, rcm map[socialgraph.ResourceID][]socialgraph.CandidateDistance) []index.ScoredDoc {
	matches := scored[:0:0]
	for _, sd := range scored {
		if _, ok := rcm[sd.Doc]; ok {
			matches = append(matches, sd)
		}
	}
	return matches
}

// RankFromMatches applies window truncation and the expert scoring
// function of Eq. (3) to a pre-computed relevant-resource list.
func (f *Finder) RankFromMatches(matches []index.ScoredDoc, p Params) []ExpertScore {
	return rankMatches(matches, f.reachability(p.Traversal), p)
}

// rankMatches is the Eq. (3) aggregation over an already-computed
// reachability map.
//
// Determinism: scores accumulate in matches-slice × reachability-list
// order (both deterministic), map iteration appears only when
// assembling the output, and the final sort's comparator is a total
// order (UserID is unique), so repeated calls are byte-identical. The
// matching side holds the same contract (see index.queryPlan).
func rankMatches(matches []index.ScoredDoc, rcm map[socialgraph.ResourceID][]socialgraph.CandidateDistance, p Params) []ExpertScore {
	n := p.window(len(matches))
	if n > len(matches) {
		n = len(matches)
	}
	w := p.weights()

	scores := make(map[socialgraph.UserID]float64)
	support := make(map[socialgraph.UserID]int)
	for _, sd := range matches[:n] {
		for _, cd := range rcm[sd.Doc] {
			scores[cd.Candidate] += sd.Score * w[cd.Distance]
			support[cd.Candidate]++
		}
	}

	out := make([]ExpertScore, 0, len(scores))
	for u, s := range scores {
		if s > 0 {
			out = append(out, ExpertScore{User: u, Score: s, Resources: support[u]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].User < out[j].User
	})
	return out
}

// Evidence is the contribution of one relevant resource to one
// expert's score: one addend of Eq. (3).
type Evidence struct {
	Resource socialgraph.ResourceID
	// Relevance is score(q, r), the Eq. (1) resource score.
	Relevance float64
	// Distance is the resource's graph distance from the expert.
	Distance int
	// Contribution is Relevance · wr(distance), the amount added to
	// the expert's score.
	Contribution float64
}

// Explain returns the evidence behind an expert's score for a need:
// the relevant resources (within the window) associated to the
// expert, ordered by descending contribution, truncated to topN
// (topN <= 0 returns everything). The sum of the contributions equals
// the expert's Eq. (3) score.
func (f *Finder) Explain(need analysis.Analyzed, u socialgraph.UserID, p Params, topN int) []Evidence {
	matches := f.Matches(need, p)
	n := p.window(len(matches))
	if n > len(matches) {
		n = len(matches)
	}
	rcm := f.reachability(p.Traversal)
	w := p.weights()

	var out []Evidence
	for _, sd := range matches[:n] {
		for _, cd := range rcm[sd.Doc] {
			if cd.Candidate != u {
				continue
			}
			out = append(out, Evidence{
				Resource:     sd.Doc,
				Relevance:    sd.Score,
				Distance:     cd.Distance,
				Contribution: sd.Score * w[cd.Distance],
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Contribution != out[j].Contribution {
			return out[i].Contribution > out[j].Contribution
		}
		return out[i].Resource < out[j].Resource
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// reachability returns the resource→candidates map for a traversal
// configuration, computing and caching it on first use.
func (f *Finder) reachability(opts socialgraph.TraversalOptions) map[socialgraph.ResourceID][]socialgraph.CandidateDistance {
	key := traversalKey(opts)
	f.mu.Lock()
	defer f.mu.Unlock()
	if rcm, ok := f.rcmCache[key]; ok {
		mCacheHits.Inc()
		return rcm
	}
	mCacheMisses.Inc()
	rcm := f.graph.ResourceCandidateMap(f.candidates, opts)
	f.rcmCache[key] = rcm
	return rcm
}

func traversalKey(opts socialgraph.TraversalOptions) string {
	nets := make([]string, len(opts.Networks))
	for i, n := range opts.Networks {
		nets[i] = string(n)
	}
	sort.Strings(nets)
	return fmt.Sprintf("d%d|f%t|%s", opts.MaxDistance, opts.IncludeFriends, strings.Join(nets, ","))
}
