// Package core implements the paper's primary contribution: matching
// expertise needs to candidate experts over social-network resources
// (§2.4) and ranking the experts (§2.4.1, Eq. 3).
//
// Given an expertise need q, the Finder
//
//  1. analyzes q with the same pipeline used for resources;
//  2. retrieves the relevant resources RR with the vector-space model
//     of Eq. (1), restricted to the resources reachable from the
//     candidate pool under the configured social-graph traversal;
//  3. truncates RR to the window of the top-n matches (§2.4.1);
//  4. scores each candidate expert as
//     score(q,ex) = Σ_{ri∈RR} score(q,ri) · wr(ri,ex),
//     where wr weighs each resource by its graph distance from the
//     candidate, linearly decreasing within [0.5, 1] (§3.3).
package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"expertfind/internal/analysis"
	"expertfind/internal/index"
	"expertfind/internal/socialgraph"
	"expertfind/internal/telemetry"
)

// Query-pipeline metrics. Stage names follow the pipeline order:
// analyze → traverse → index_match → aggregate_rank; the same names
// label the per-query trace spans FindContext records.
var (
	mQueries = telemetry.Default().Counter(
		"expertfind_queries_total",
		"Expert-finding queries answered by Finder.FindAnalyzed.")
	mStageSeconds = telemetry.Default().HistogramVec(
		"expertfind_pipeline_stage_duration_seconds",
		"Wall time per query-pipeline stage.", nil, "stage")
	mCacheHits = telemetry.Default().Counter(
		"expertfind_traversal_cache_hits_total",
		"Reachability-map lookups answered from the per-traversal cache.")
	mCacheMisses = telemetry.Default().Counter(
		"expertfind_traversal_cache_misses_total",
		"Reachability-map lookups that had to rebuild the map.")
)

// DefaultWindowSize is the number of relevant resources considered
// for expert ranking, as set in the paper after the window-size
// sensitivity analysis (§3.3.1).
const DefaultWindowSize = 100

// DefaultAlpha balances term matching vs. entity matching, as set in
// the paper after the α sensitivity analysis (§3.3.2).
const DefaultAlpha = 0.6

// DefaultDistanceWeights are the wr weighting terms per resource
// distance: fixed in [0.5, 1] with value linearly decreasing w.r.t.
// distance (§3.3).
var DefaultDistanceWeights = [3]float64{1.0, 0.75, 0.5}

// Params configures one expert-finding query.
type Params struct {
	// Alpha is the Eq. (1) weighting factor: 1 = keyword matching
	// only, 0 = entity matching only. A zero Alpha selects
	// DefaultAlpha unless AlphaSet is true.
	Alpha float64
	// AlphaSet marks Alpha as deliberate even when it is 0 (entity
	// matching only). Without it, a zero Alpha selects DefaultAlpha,
	// keeping the zero Params value useful.
	AlphaSet bool
	// WindowSize truncates the relevant-resource list to the top n
	// matches. Zero selects DefaultWindowSize; negative disables
	// truncation.
	WindowSize int
	// WindowFrac, when positive, sets the window to this fraction of
	// the matching resources (the x-axis of Fig. 6), overriding
	// WindowSize.
	WindowFrac float64
	// Traversal bounds the social-graph exploration (distance,
	// networks, friends).
	Traversal socialgraph.TraversalOptions
	// DistanceWeights override wr per distance; the zero value
	// selects DefaultDistanceWeights.
	DistanceWeights [3]float64
	// ScoreWorkers bounds the index-scoring worker pool for this
	// query when the finder's index is sharded
	// (index.ParallelSearcher): 0 keeps the index's own
	// GOMAXPROCS-sized default, 1 forces sequential shard scoring,
	// larger values allow up to that many concurrent shard scorers.
	// Ignored for non-sharded indexes. Results are identical for any
	// value — the knob trades latency against CPU, never output.
	ScoreWorkers int
	// TopK, when positive, bounds the relevant-resource list to the k
	// best-ranked reachable matches, letting the index prune documents
	// that provably cannot enter the top k (MaxScore early
	// termination). The k matches kept are byte-identical to the first
	// k of the exhaustive reachable ranking, so the expert ranking
	// equals the unbounded one whenever k covers the effective window.
	// Zero or negative disables the bound.
	TopK int
}

func (p Params) alpha() float64 {
	if !p.AlphaSet && p.Alpha == 0 {
		return DefaultAlpha
	}
	return p.Alpha
}

func (p Params) weights() [3]float64 {
	if p.DistanceWeights == ([3]float64{}) {
		return DefaultDistanceWeights
	}
	return p.DistanceWeights
}

func (p Params) window(matches int) int {
	if p.WindowFrac > 0 {
		n := int(p.WindowFrac * float64(matches))
		if n < 1 {
			n = 1
		}
		return n
	}
	switch {
	case p.WindowSize < 0:
		return matches
	case p.WindowSize == 0:
		return DefaultWindowSize
	default:
		return p.WindowSize
	}
}

// Fingerprint canonically encodes every Params field that can change
// the ranking, for use in result-cache keys. Parameter sets with the
// same semantics share a fingerprint: implicit defaults resolve to
// their effective values (a zero Alpha to DefaultAlpha, zero weights
// to DefaultDistanceWeights, a zero WindowSize to DefaultWindowSize),
// and traversal networks are order-insensitive. ScoreWorkers is
// deliberately excluded — it trades latency against CPU but never
// changes the output (the sharded-scoring bit-equality guarantee), so
// queries differing only in worker bound share cache entries.
func (p Params) Fingerprint() string {
	w := p.weights()
	var win string
	switch {
	case p.WindowFrac > 0:
		win = "f" + strconv.FormatFloat(p.WindowFrac, 'g', -1, 64)
	case p.WindowSize < 0:
		win = "all"
	case p.WindowSize == 0:
		win = strconv.Itoa(DefaultWindowSize)
	default:
		win = strconv.Itoa(p.WindowSize)
	}
	k := "all"
	if p.TopK > 0 {
		k = strconv.Itoa(p.TopK)
	}
	return fmt.Sprintf("a%s|w%s|dw%g,%g,%g|k%s|%s",
		strconv.FormatFloat(p.alpha(), 'g', -1, 64), win,
		w[0], w[1], w[2], k, traversalKey(p.Traversal))
}

// NormalizeNeed canonicalizes a need's text for cache keying: case is
// folded and runs of whitespace collapse to single spaces. Both are
// sound — the analysis pipeline lowercases during tokenization and
// language identification, and tokenization is whitespace-insensitive
// — so needs mapping to the same normalized form always rank
// identically.
func NormalizeNeed(need string) string {
	return strings.Join(strings.Fields(strings.ToLower(need)), " ")
}

// ExpertScore is one ranked expert with its expertise score and the
// number of relevant resources that supported it.
type ExpertScore struct {
	User      socialgraph.UserID
	Score     float64
	Resources int
}

// CacheStatus reports how a Find was answered when a result cache is
// installed: from the cache (hit), by scoring and filling the cache
// (miss), or by waiting on an identical in-flight query (coalesced).
// The empty value means no cache was consulted.
type CacheStatus string

// The cache dispositions. Their string values are what the serving
// layer sends in the Cache-Status response header.
const (
	CacheBypass    CacheStatus = ""
	CacheHit       CacheStatus = "hit"
	CacheMiss      CacheStatus = "miss"
	CacheCoalesced CacheStatus = "coalesced"
)

// CacheKey identifies one Find computation for result caching. Two
// queries with equal keys are guaranteed to rank identically (over
// the same corpus), so a cache may serve one's result for the other.
type CacheKey struct {
	// Need is the normalized need text (NormalizeNeed).
	Need string
	// Group fingerprints the candidate pool CE the finder ranks
	// (Finder.GroupFingerprint): a cache shared between finders over
	// different groups must not cross-serve results.
	Group string
	// Params is the Params.Fingerprint of the query options.
	Params string
}

// ResultCache is the hook a Finder routes Find queries through when
// one is installed with SetResultCache. GetOrCompute must return
// either a previously stored value for key or the result of calling
// compute (exactly once per concurrent burst of equal keys, when the
// implementation coalesces). internal/rescache provides the bounded
// LRU+TTL implementation; the interface lives here so core does not
// depend on it.
type ResultCache interface {
	GetOrCompute(key CacheKey, compute func() []ExpertScore) ([]ExpertScore, CacheStatus)
}

// Finder answers expertise needs over a social graph and a resource
// index. It caches the expensive resource→candidate reachability maps
// per traversal configuration; the cache is safe for concurrent use.
type Finder struct {
	graph      *socialgraph.Graph
	index      index.Searcher
	pipe       *analysis.Pipeline
	candidates []socialgraph.UserID
	groupFP    string

	cacheMu sync.RWMutex
	cache   ResultCache

	mu       sync.Mutex
	rcmCache map[string]map[socialgraph.ResourceID][]socialgraph.CandidateDistance
}

// NewFinder assembles a Finder. ix is either a monolithic
// *index.Index or an *index.Sharded (the Params.ScoreWorkers knob
// applies to the latter). candidates is the expert-candidate pool CE;
// nil selects every candidate user in the graph.
func NewFinder(g *socialgraph.Graph, ix index.Searcher, pipe *analysis.Pipeline, candidates []socialgraph.UserID) *Finder {
	if candidates == nil {
		candidates = g.Candidates()
	}
	return &Finder{
		graph:      g,
		index:      ix,
		pipe:       pipe,
		candidates: candidates,
		groupFP:    groupFingerprint(candidates),
		rcmCache:   make(map[string]map[socialgraph.ResourceID][]socialgraph.CandidateDistance),
	}
}

// groupFingerprint hashes the candidate pool so cache keys distinguish
// finders ranking different groups.
func groupFingerprint(candidates []socialgraph.UserID) string {
	h := fnv.New64a()
	var buf [4]byte
	for _, u := range candidates {
		binary.LittleEndian.PutUint32(buf[:], uint32(u))
		h.Write(buf[:])
	}
	return fmt.Sprintf("n%d-%016x", len(candidates), h.Sum64())
}

// GroupFingerprint identifies the finder's candidate pool for result
// caching; it participates in every CacheKey the finder builds.
func (f *Finder) GroupFingerprint() string { return f.groupFP }

// SetResultCache installs (or, with nil, removes) the Find result
// cache. Once installed, FindContext routes queries through it; the
// cache is expected to be generation-scoped to the corpus behind this
// finder (see internal/rescache.Cache.Attach), because the finder
// itself never invalidates it.
func (f *Finder) SetResultCache(c ResultCache) {
	f.cacheMu.Lock()
	f.cache = c
	f.cacheMu.Unlock()
}

func (f *Finder) resultCache() ResultCache {
	f.cacheMu.RLock()
	defer f.cacheMu.RUnlock()
	return f.cache
}

// Candidates returns the candidate pool CE.
func (f *Finder) Candidates() []socialgraph.UserID {
	out := make([]socialgraph.UserID, len(f.candidates))
	copy(out, f.candidates)
	return out
}

// Graph returns the underlying social graph.
func (f *Finder) Graph() *socialgraph.Graph { return f.graph }

// Index returns the underlying resource index.
func (f *Finder) Index() index.Searcher { return f.index }

// score runs Eq. (1) matching, honoring the per-query worker bound
// when the index supports parallel shard scoring.
func (f *Finder) score(need analysis.Analyzed, p Params) []index.ScoredDoc {
	if p.ScoreWorkers != 0 {
		if ps, ok := f.index.(index.ParallelSearcher); ok {
			return ps.ScoreWorkers(need, p.alpha(), p.ScoreWorkers)
		}
	}
	return f.index.Score(need, p.alpha())
}

// scoreMatches produces the relevant-resource list: Eq. (1) matches
// restricted to the reachable set. With TopK set, the reachability
// filter rides into the index as the accept predicate so the pruned
// evaluation bounds exactly the list the pipeline consumes; the result
// is byte-identical to the exhaustive filtered ranking truncated to k.
func (f *Finder) scoreMatches(need analysis.Analyzed, p Params, rcm map[socialgraph.ResourceID][]socialgraph.CandidateDistance) []index.ScoredDoc {
	if p.TopK <= 0 {
		return filterReachable(f.score(need, p), rcm)
	}
	accept := func(d index.DocID) bool {
		_, ok := rcm[d]
		return ok
	}
	if p.ScoreWorkers != 0 {
		if ps, ok := f.index.(index.ParallelSearcher); ok {
			return ps.ScoreTopKWorkers(need, p.alpha(), p.ScoreWorkers, p.TopK, accept)
		}
	}
	return f.index.ScoreTopK(need, p.alpha(), p.TopK, accept)
}

// Pipeline returns the analysis pipeline.
func (f *Finder) Pipeline() *analysis.Pipeline { return f.pipe }

// Find ranks the candidate experts for a natural-language expertise
// need. Only experts with positive score are returned, best first.
func (f *Finder) Find(need string, p Params) []ExpertScore {
	return f.FindContext(context.Background(), need, p)
}

// FindContext is Find with a context. When ctx carries a telemetry
// trace (telemetry.Tracer.Start), every pipeline stage is recorded as
// a span on it; stage timings land in the metrics registry either
// way. With a result cache installed (SetResultCache), the query is
// routed through it; use FindCachedContext to also learn the cache
// disposition.
func (f *Finder) FindContext(ctx context.Context, need string, p Params) []ExpertScore {
	out, _ := f.FindCachedContext(ctx, need, p)
	return out
}

// FindCachedContext is FindContext plus the cache disposition: how
// the installed result cache answered (hit, miss, coalesced), or
// CacheBypass when none is installed. Cache keys combine the
// normalized need, the candidate-pool fingerprint and the Params
// fingerprint; the cache implementation scopes them to the corpus
// generation. A coalesced query shares the leading query's scoring
// pass — and therefore its trace spans — recording only a "cache"
// span of its own.
func (f *Finder) FindCachedContext(ctx context.Context, need string, p Params) ([]ExpertScore, CacheStatus) {
	c := f.resultCache()
	if c == nil {
		return f.findCold(ctx, need, p), CacheBypass
	}
	sp := telemetry.TraceFrom(ctx).StartSpan("cache")
	key := CacheKey{Need: NormalizeNeed(need), Group: f.groupFP, Params: p.Fingerprint()}
	out, status := c.GetOrCompute(key, func() []ExpertScore {
		return f.findCold(ctx, need, p)
	})
	sp.SetAttr("status", string(status))
	sp.End()
	return out, status
}

// findCold runs the full uncached pipeline: analysis, then the
// traverse/match/rank stages of FindAnalyzedContext.
func (f *Finder) findCold(ctx context.Context, need string, p Params) []ExpertScore {
	tr := telemetry.TraceFrom(ctx)
	sp, t0 := tr.StartSpan("analyze"), time.Now()
	a := f.pipe.AnalyzeNeed(need)
	mStageSeconds.With("analyze").ObserveSince(t0)
	sp.End()
	return f.FindAnalyzedContext(ctx, a, p)
}

// FindAnalyzed is Find for a pre-analyzed need.
func (f *Finder) FindAnalyzed(need analysis.Analyzed, p Params) []ExpertScore {
	return f.FindAnalyzedContext(context.Background(), need, p)
}

// FindAnalyzedContext is FindAnalyzed with a context, instrumented
// like FindContext (minus the analyze stage, already done by the
// caller).
func (f *Finder) FindAnalyzedContext(ctx context.Context, need analysis.Analyzed, p Params) []ExpertScore {
	mQueries.Inc()
	tr := telemetry.TraceFrom(ctx)

	sp, t0 := tr.StartSpan("traverse"), time.Now()
	rcm := f.reachability(p.Traversal)
	mStageSeconds.With("traverse").ObserveSince(t0)
	sp.SetAttr("reachable_resources", strconv.Itoa(len(rcm)))
	sp.End()

	sp, t0 = tr.StartSpan("index_match"), time.Now()
	matches := f.scoreMatches(need, p, rcm)
	mStageSeconds.With("index_match").ObserveSince(t0)
	sp.SetAttr("matches", strconv.Itoa(len(matches)))
	sp.End()

	sp, t0 = tr.StartSpan("aggregate_rank"), time.Now()
	out := rankMatches(matches, rcm, p)
	mStageSeconds.With("aggregate_rank").ObserveSince(t0)
	sp.SetAttr("experts", strconv.Itoa(len(out)))
	sp.End()
	return out
}

// Matches returns the relevant resources for the need — the scored
// matches of Eq. (1) restricted to resources reachable from the
// candidate pool under p.Traversal — ordered by descending relevance,
// before window truncation (but after the TopK bound, when one is
// set).
func (f *Finder) Matches(need analysis.Analyzed, p Params) []index.ScoredDoc {
	return f.scoreMatches(need, p, f.reachability(p.Traversal))
}

// filterReachable restricts scored resources to those present in the
// reachability map, preserving order.
func filterReachable(scored []index.ScoredDoc, rcm map[socialgraph.ResourceID][]socialgraph.CandidateDistance) []index.ScoredDoc {
	matches := scored[:0:0]
	for _, sd := range scored {
		if _, ok := rcm[sd.Doc]; ok {
			matches = append(matches, sd)
		}
	}
	return matches
}

// RankFromMatches applies window truncation and the expert scoring
// function of Eq. (3) to a pre-computed relevant-resource list.
func (f *Finder) RankFromMatches(matches []index.ScoredDoc, p Params) []ExpertScore {
	return rankMatches(matches, f.reachability(p.Traversal), p)
}

// rankMatches is the Eq. (3) aggregation over an already-computed
// reachability map.
//
// Determinism: scores accumulate in matches-slice × reachability-list
// order (both deterministic), map iteration appears only when
// assembling the output, and the final sort's comparator is a total
// order (UserID is unique), so repeated calls are byte-identical. The
// matching side holds the same contract (see index.queryPlan).
func rankMatches(matches []index.ScoredDoc, rcm map[socialgraph.ResourceID][]socialgraph.CandidateDistance, p Params) []ExpertScore {
	n := p.window(len(matches))
	if n > len(matches) {
		n = len(matches)
	}
	w := p.weights()

	scores := make(map[socialgraph.UserID]float64)
	support := make(map[socialgraph.UserID]int)
	for _, sd := range matches[:n] {
		for _, cd := range rcm[sd.Doc] {
			scores[cd.Candidate] += sd.Score * w[cd.Distance]
			support[cd.Candidate]++
		}
	}

	out := make([]ExpertScore, 0, len(scores))
	for u, s := range scores {
		if s > 0 {
			out = append(out, ExpertScore{User: u, Score: s, Resources: support[u]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].User < out[j].User
	})
	return out
}

// Evidence is the contribution of one relevant resource to one
// expert's score: one addend of Eq. (3).
type Evidence struct {
	Resource socialgraph.ResourceID
	// Relevance is score(q, r), the Eq. (1) resource score.
	Relevance float64
	// Distance is the resource's graph distance from the expert.
	Distance int
	// Contribution is Relevance · wr(distance), the amount added to
	// the expert's score.
	Contribution float64
}

// Explain returns the evidence behind an expert's score for a need:
// the relevant resources (within the window) associated to the
// expert, ordered by descending contribution, truncated to topN
// (topN <= 0 returns everything). The sum of the contributions equals
// the expert's Eq. (3) score.
func (f *Finder) Explain(need analysis.Analyzed, u socialgraph.UserID, p Params, topN int) []Evidence {
	matches := f.Matches(need, p)
	n := p.window(len(matches))
	if n > len(matches) {
		n = len(matches)
	}
	rcm := f.reachability(p.Traversal)
	w := p.weights()

	var out []Evidence
	for _, sd := range matches[:n] {
		for _, cd := range rcm[sd.Doc] {
			if cd.Candidate != u {
				continue
			}
			out = append(out, Evidence{
				Resource:     sd.Doc,
				Relevance:    sd.Score,
				Distance:     cd.Distance,
				Contribution: sd.Score * w[cd.Distance],
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Contribution != out[j].Contribution {
			return out[i].Contribution > out[j].Contribution
		}
		return out[i].Resource < out[j].Resource
	})
	if topN > 0 && len(out) > topN {
		out = out[:topN]
	}
	return out
}

// reachability returns the resource→candidates map for a traversal
// configuration, computing and caching it on first use.
func (f *Finder) reachability(opts socialgraph.TraversalOptions) map[socialgraph.ResourceID][]socialgraph.CandidateDistance {
	key := traversalKey(opts)
	f.mu.Lock()
	defer f.mu.Unlock()
	if rcm, ok := f.rcmCache[key]; ok {
		mCacheHits.Inc()
		return rcm
	}
	mCacheMisses.Inc()
	rcm := f.graph.ResourceCandidateMap(f.candidates, opts)
	f.rcmCache[key] = rcm
	return rcm
}

// InvalidateTraversal drops every cached reachability map. A live
// ingest must call it after mutating the graph: the maps are cached
// forever on the assumption of a frozen graph, and a stale map would
// hide newly added resources from ranking (or keep attributing removed
// ones). The next query per traversal configuration rebuilds its map.
func (f *Finder) InvalidateTraversal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	clear(f.rcmCache)
}

func traversalKey(opts socialgraph.TraversalOptions) string {
	nets := make([]string, len(opts.Networks))
	for i, n := range opts.Networks {
		nets[i] = string(n)
	}
	sort.Strings(nets)
	return fmt.Sprintf("d%d|f%t|%s", opts.MaxDistance, opts.IncludeFriends, strings.Join(nets, ","))
}
