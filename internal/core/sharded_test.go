package core

import (
	"context"
	"fmt"
	"math"
	"sync"
	"testing"

	"expertfind/internal/index"
	"expertfind/internal/socialgraph"
)

// shardedClone rebuilds f's index as an n-shard split of the same
// documents and returns a Finder over it; graph, pipeline and
// candidate pool are shared.
func shardedClone(t testing.TB, f *Finder, n int) *Finder {
	t.Helper()
	flat, ok := f.Index().(*index.Index)
	if !ok {
		t.Fatalf("finder index is %T, want *index.Index", f.Index())
	}
	return NewFinder(f.Graph(), index.NewShardedFromIndex(flat, n), f.Pipeline(), nil)
}

func assertExpertsBitIdentical(t *testing.T, label string, want, got []ExpertScore) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d experts, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].User != got[i].User || want[i].Resources != got[i].Resources ||
			math.Float64bits(want[i].Score) != math.Float64bits(got[i].Score) {
			t.Fatalf("%s: rank %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// figure1Params are the query configurations the equivalence and
// determinism tests sweep: both Eq. (1) extremes, the paper default,
// and a profile-only traversal.
func figure1Params() []Params {
	return []Params{
		{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}},
		{Alpha: 1, Traversal: socialgraph.TraversalOptions{MaxDistance: 2}},
		{AlphaSet: true, Traversal: socialgraph.TraversalOptions{MaxDistance: 2}},
		{Traversal: socialgraph.TraversalOptions{MaxDistance: 0}},
	}
}

// TestShardedFinderEquivalence checks the end-to-end contract: a
// Finder over a sharded index ranks experts bit-identically to one
// over the monolithic index, for any shard count and query config.
func TestShardedFinderEquivalence(t *testing.T) {
	flat, _ := buildFigure1(t)
	const query = "who is the best at freestyle swimming?"
	for _, n := range []int{1, 2, 5} {
		sharded := shardedClone(t, flat, n)
		for pi, p := range figure1Params() {
			want := flat.Find(query, p)
			if pi == 0 && len(want) == 0 {
				t.Fatal("no experts found for the figure 1 query")
			}
			got := sharded.Find(query, p)
			assertExpertsBitIdentical(t, fmt.Sprintf("shards=%d params=%d", n, pi), want, got)
		}
	}
}

// TestParamsScoreWorkers checks that the per-query worker bound never
// changes output — on a sharded index any bound gives the sequential
// ranking, and on a monolithic index the knob is ignored.
func TestParamsScoreWorkers(t *testing.T) {
	flat, _ := buildFigure1(t)
	sharded := shardedClone(t, flat, 4)
	const query = "freestyle swimming training"

	base := Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}, ScoreWorkers: 1}
	want := sharded.Find(query, base)
	for _, workers := range []int{0, 2, 16} {
		p := base
		p.ScoreWorkers = workers
		assertExpertsBitIdentical(t, fmt.Sprintf("workers=%d", workers), want, sharded.Find(query, p))
	}

	flatBase := base
	flatBase.ScoreWorkers = 0
	flatWant := flat.Find(query, flatBase)
	flatBase.ScoreWorkers = 8
	assertExpertsBitIdentical(t, "flat ignores workers", flatWant, flat.Find(query, flatBase))
}

// TestFindDeterministicAcrossRuns guards against map-iteration-order
// nondeterminism anywhere in the query path: the same query must
// produce byte-identical rankings on every run, on both index kinds.
func TestFindDeterministicAcrossRuns(t *testing.T) {
	flat, _ := buildFigure1(t)
	sharded := shardedClone(t, flat, 3)
	const query = "who is the best at freestyle swimming?"
	for pi, p := range figure1Params() {
		wantFlat := flat.Find(query, p)
		wantSharded := sharded.Find(query, p)
		assertExpertsBitIdentical(t, fmt.Sprintf("params=%d flat vs sharded", pi), wantFlat, wantSharded)
		for run := 0; run < 50; run++ {
			assertExpertsBitIdentical(t, fmt.Sprintf("params=%d flat run %d", pi, run), wantFlat, flat.Find(query, p))
			assertExpertsBitIdentical(t, fmt.Sprintf("params=%d sharded run %d", pi, run), wantSharded, sharded.Find(query, p))
		}
	}
}

// TestFindContextStress hammers one sharded Finder from many
// goroutines with varying traversal and worker configs, exercising
// the traversal cache and the shard worker pool concurrently (run
// under -race). Every result must match its sequential reference.
func TestFindContextStress(t *testing.T) {
	flat, _ := buildFigure1(t)
	f := shardedClone(t, flat, 3)

	queries := []string{
		"who is the best at freestyle swimming?",
		"freestyle swimming training",
		"gold medal racing",
		"knitting and gardening",
	}
	params := figure1Params()
	want := make([][]ExpertScore, 0, len(queries)*len(params))
	for _, q := range queries {
		for _, p := range params {
			want = append(want, f.Find(q, p))
		}
	}

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := context.Background()
			for iter := 0; iter < 25; iter++ {
				qi := (g + iter) % len(queries)
				pi := (g * 3) % len(params)
				p := params[pi]
				p.ScoreWorkers = g % 4
				got := f.FindContext(ctx, queries[qi], p)
				ref := want[qi*len(params)+pi]
				if len(got) != len(ref) {
					t.Errorf("goroutine %d iter %d: %d experts, want %d", g, iter, len(got), len(ref))
					return
				}
				for i := range ref {
					if got[i].User != ref[i].User || math.Float64bits(got[i].Score) != math.Float64bits(ref[i].Score) {
						t.Errorf("goroutine %d iter %d rank %d: %+v, want %+v", g, iter, i, got[i], ref[i])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
