// Package langid implements character n-gram language identification
// (Cavnar & Trenkle, "N-Gram-Based Text Categorization", 1994) for the
// Language Identification step of the analysis pipeline (paper §2.3).
//
// The paper keeps only English resources (230k out of 330k collected);
// this classifier provides the same filtering capability for the
// simulated corpus. Profiles for English, Italian, Spanish, French and
// German are built at init time from embedded sample text.
package langid

import (
	"sort"
	"strings"
	"unicode"
)

// Lang identifies a natural language.
type Lang string

// Languages known to the classifier.
const (
	English    Lang = "en"
	Italian    Lang = "it"
	Spanish    Lang = "es"
	French     Lang = "fr"
	German     Lang = "de"
	Portuguese Lang = "pt"
	Dutch      Lang = "nl"
	Unknown    Lang = "und"
)

const (
	profileSize = 400 // n-grams retained per language profile
	maxN        = 3   // n-gram sizes 1..maxN
)

// Classifier identifies the language of short texts.
type Classifier struct {
	profiles map[Lang][]string // ranked n-grams per language
	ranks    map[Lang]map[string]int
}

// defaultClassifier is built once from the embedded samples.
var defaultClassifier = NewClassifier(trainingSamples)

// NewClassifier builds a classifier from per-language sample text.
func NewClassifier(samples map[Lang]string) *Classifier {
	c := &Classifier{
		profiles: make(map[Lang][]string, len(samples)),
		ranks:    make(map[Lang]map[string]int, len(samples)),
	}
	for lang, text := range samples {
		prof := topNGrams(text, profileSize)
		c.profiles[lang] = prof
		rank := make(map[string]int, len(prof))
		for i, g := range prof {
			rank[g] = i
		}
		c.ranks[lang] = rank
	}
	return c
}

// Identify returns the most likely language of text using the default
// embedded profiles. Texts with fewer than 8 letters return Unknown.
func Identify(text string) Lang {
	return defaultClassifier.Identify(text)
}

// IsEnglish reports whether text is classified as English.
func IsEnglish(text string) bool {
	return Identify(text) == English
}

// Identify returns the most likely language of text, or Unknown when
// the text carries too little signal (fewer than 8 letters).
func (c *Classifier) Identify(text string) Lang {
	grams := ngramFreqs(text)
	if len(grams) == 0 {
		return Unknown
	}
	letters := 0
	for _, r := range text {
		if unicode.IsLetter(r) {
			letters++
		}
	}
	if letters < 8 {
		return Unknown
	}
	doc := rankNGrams(grams, profileSize)

	best, bestDist := Unknown, int(^uint(0)>>1)
	// Iterate deterministically for stable tie-breaking.
	langs := make([]Lang, 0, len(c.ranks))
	for lang := range c.ranks {
		langs = append(langs, lang)
	}
	sort.Slice(langs, func(i, j int) bool { return langs[i] < langs[j] })
	for _, lang := range langs {
		d := outOfPlace(doc, c.ranks[lang])
		if d < bestDist {
			best, bestDist = lang, d
		}
	}
	return best
}

// outOfPlace computes the Cavnar-Trenkle out-of-place distance between
// a ranked document profile and a language rank map.
func outOfPlace(doc []string, langRank map[string]int) int {
	const missingPenalty = profileSize
	dist := 0
	for i, g := range doc {
		if j, ok := langRank[g]; ok {
			if i > j {
				dist += i - j
			} else {
				dist += j - i
			}
		} else {
			dist += missingPenalty
		}
	}
	return dist
}

// ngramFreqs extracts 1..maxN character n-grams from the
// letters-only, lowercased, space-padded form of text.
func ngramFreqs(text string) map[string]int {
	norm := normalize(text)
	freqs := make(map[string]int)
	for _, word := range strings.Fields(norm) {
		padded := " " + word + " "
		runes := []rune(padded)
		for n := 1; n <= maxN; n++ {
			for i := 0; i+n <= len(runes); i++ {
				g := string(runes[i : i+n])
				if g == " " {
					continue
				}
				freqs[g]++
			}
		}
	}
	return freqs
}

func normalize(text string) string {
	var b strings.Builder
	b.Grow(len(text))
	for _, r := range strings.ToLower(text) {
		switch {
		case unicode.IsLetter(r):
			b.WriteRune(r)
		default:
			b.WriteByte(' ')
		}
	}
	return b.String()
}

func topNGrams(text string, n int) []string {
	return rankNGrams(ngramFreqs(text), n)
}

// rankNGrams orders n-grams by descending frequency (ties broken
// lexicographically for determinism) and keeps the top n.
func rankNGrams(freqs map[string]int, n int) []string {
	grams := make([]string, 0, len(freqs))
	for g := range freqs {
		grams = append(grams, g)
	}
	sort.Slice(grams, func(i, j int) bool {
		if freqs[grams[i]] != freqs[grams[j]] {
			return freqs[grams[i]] > freqs[grams[j]]
		}
		return grams[i] < grams[j]
	})
	if len(grams) > n {
		grams = grams[:n]
	}
	return grams
}
