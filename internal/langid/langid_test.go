package langid

import (
	"testing"
	"testing/quick"
)

func TestIdentifyEnglish(t *testing.T) {
	texts := []string{
		"Michael Phelps is the best! Great freestyle gold medal",
		"Just finished 30min freestyle training at the swimming pool",
		"Which PHP function can I use in order to obtain the length of a string?",
		"Can you list some restaurants in Milan?",
		"Why is copper a good conductor of electricity and heat in general?",
		"I am looking for a graphic card to play this game but I don't want to spend too much",
	}
	for _, s := range texts {
		if got := Identify(s); got != English {
			t.Errorf("Identify(%q) = %v, want en", s, got)
		}
	}
}

func TestIdentifyItalian(t *testing.T) {
	texts := []string{
		"oggi sono andato in piscina e ho fatto mezzora di allenamento di stile libero",
		"qualcuno conosce dei buoni ristoranti a milano vicino al duomo per stasera",
		"la partita di calcio di ieri sera è stata davvero bellissima e molto combattuta",
	}
	for _, s := range texts {
		if got := Identify(s); got != Italian {
			t.Errorf("Identify(%q) = %v, want it", s, got)
		}
	}
}

func TestIdentifyOtherLanguages(t *testing.T) {
	tests := []struct {
		text string
		want Lang
	}{
		{"la semana pasada fuimos a la playa con los niños y comimos pescado fresco", Spanish},
		{"hier soir nous sommes allés au restaurant avec nos amis et c'était très bien", French},
		{"gestern abend waren wir mit unseren freunden im restaurant und es war sehr schön", German},
		{"ontem à noite fomos ao restaurante com os nossos amigos e foi muito bom", Portuguese},
		{"gisteravond zijn we met onze vrienden naar het restaurant geweest en het was erg leuk", Dutch},
	}
	for _, tc := range tests {
		if got := Identify(tc.text); got != tc.want {
			t.Errorf("Identify(%q) = %v, want %v", tc.text, got, tc.want)
		}
	}
}

func TestIdentifyShortTextUnknown(t *testing.T) {
	for _, s := range []string{"", "ok", "123 456", "a b", "!!!"} {
		if got := Identify(s); got != Unknown {
			t.Errorf("Identify(%q) = %v, want und", s, got)
		}
	}
}

func TestIsEnglish(t *testing.T) {
	if !IsEnglish("the weather today is wonderful and we should go outside for a walk") {
		t.Error("IsEnglish(english text) = false")
	}
	if IsEnglish("il tempo oggi è meraviglioso e dovremmo uscire a fare una passeggiata") {
		t.Error("IsEnglish(italian text) = true")
	}
}

func TestClassifierDeterminism(t *testing.T) {
	text := "the people of the town wake up and go to work in the morning"
	first := Identify(text)
	for i := 0; i < 5; i++ {
		if got := Identify(text); got != first {
			t.Fatalf("Identify not deterministic: %v then %v", first, got)
		}
	}
}

// Property: Identify never panics and returns a known label.
func TestIdentifyArbitraryInput(t *testing.T) {
	known := map[Lang]bool{English: true, Italian: true, Spanish: true, French: true, German: true, Portuguese: true, Dutch: true, Unknown: true}
	f := func(s string) bool {
		return known[Identify(s)]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewClassifierCustomProfiles(t *testing.T) {
	c := NewClassifier(map[Lang]string{
		"aa": "aaaa aaaa aaaa aaaa aaaa",
		"bb": "bbbb bbbb bbbb bbbb bbbb",
	})
	if got := c.Identify("aaaa aaaa aaa"); got != "aa" {
		t.Errorf("Identify = %v, want aa", got)
	}
	if got := c.Identify("bbb bbbb bbbb"); got != "bb" {
		t.Errorf("Identify = %v, want bb", got)
	}
}

func BenchmarkIdentify(b *testing.B) {
	text := "Just finished 30min freestyle training at the swimming pool with my friends"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Identify(text)
	}
}
