package langid

// trainingSamples holds the embedded text used to build the default
// language profiles. The samples are ordinary prose rich in function
// words, which dominate the top of character n-gram rankings and make
// short-text identification reliable.
var trainingSamples = map[Lang]string{
	English: `the quick brown fox jumps over the lazy dog and then it runs away
into the forest where the trees are tall and the light is soft in the
morning when the people of the town wake up and go to work they talk
about the weather and the news of the day because there is always
something that has happened somewhere in the world and everyone wants
to know what it means for them and for their families the children go
to school where they learn to read and write and to count and they
play games in the yard during the break while the teachers drink
coffee and talk about the lessons of the afternoon it is a simple life
but it is a good one and most people would not change it for anything
else in the world because they have everything that they need right
here the shops sell bread and milk and fruit and the market on the
square is open every saturday morning from early until noon when the
farmers pack their things and drive back to their fields which lie
just outside the town between the river and the hills that you can
see from the church tower if you climb all the way up the narrow
stairs that turn and turn until you reach the top and look out over
the roofs of the houses this is what we know and this is what we tell
our children so that they will remember where they come from and who
they are no matter where life takes them in the years to come`,

	Italian: `la mattina presto il sole sorge sopra le colline e la luce entra
dalle finestre della casa dove la famiglia si prepara per la giornata
i bambini vanno a scuola e imparano a leggere e a scrivere mentre i
genitori vanno al lavoro in città con il treno che parte dalla piccola
stazione del paese ogni giorno alla stessa ora la gente parla del
tempo e delle notizie perché c'è sempre qualcosa che succede nel mondo
e tutti vogliono sapere cosa significa per loro e per le loro famiglie
il mercato della piazza è aperto ogni sabato mattina e i contadini
vendono il pane il latte la frutta e la verdura che coltivano nei
campi fuori dal paese tra il fiume e le colline che si vedono dal
campanile della chiesa se si salgono tutte le scale strette fino in
cima questa è la vita semplice che conosciamo e che raccontiamo ai
nostri figli perché ricordino da dove vengono e chi sono ovunque la
vita li porti negli anni che verranno e anche quando saranno lontani
penseranno sempre a questo posto con il cuore pieno di ricordi belli`,

	Spanish: `por la mañana temprano el sol sale sobre las colinas y la luz entra
por las ventanas de la casa donde la familia se prepara para el día
los niños van a la escuela y aprenden a leer y a escribir mientras los
padres van al trabajo en la ciudad con el tren que sale de la pequeña
estación del pueblo todos los días a la misma hora la gente habla del
tiempo y de las noticias porque siempre hay algo que pasa en el mundo
y todos quieren saber qué significa para ellos y para sus familias el
mercado de la plaza está abierto todos los sábados por la mañana y los
campesinos venden el pan la leche la fruta y las verduras que cultivan
en los campos fuera del pueblo entre el río y las colinas que se ven
desde la torre de la iglesia si subes todas las escaleras estrechas
hasta arriba esta es la vida sencilla que conocemos y que contamos a
nuestros hijos para que recuerden de dónde vienen y quiénes son donde
quiera que la vida los lleve en los años que vendrán`,

	French: `le matin très tôt le soleil se lève sur les collines et la lumière
entre par les fenêtres de la maison où la famille se prépare pour la
journée les enfants vont à l'école et apprennent à lire et à écrire
pendant que les parents vont au travail en ville avec le train qui
part de la petite gare du village tous les jours à la même heure les
gens parlent du temps et des nouvelles parce qu'il y a toujours
quelque chose qui se passe dans le monde et tout le monde veut savoir
ce que cela signifie pour eux et pour leurs familles le marché de la
place est ouvert tous les samedis matin et les paysans vendent le pain
le lait les fruits et les légumes qu'ils cultivent dans les champs en
dehors du village entre la rivière et les collines que l'on voit
depuis le clocher de l'église si l'on monte tous les escaliers étroits
jusqu'en haut c'est la vie simple que nous connaissons et que nous
racontons à nos enfants pour qu'ils se souviennent d'où ils viennent`,

	Portuguese: `de manhã cedo o sol nasce sobre as colinas e a luz entra pelas
janelas da casa onde a família se prepara para o dia as crianças vão à
escola e aprendem a ler e a escrever enquanto os pais vão ao trabalho
na cidade com o comboio que parte da pequena estação da aldeia todos
os dias à mesma hora as pessoas falam do tempo e das notícias porque
há sempre alguma coisa que acontece no mundo e todos querem saber o
que significa para eles e para as suas famílias o mercado da praça
está aberto todos os sábados de manhã e os agricultores vendem o pão
o leite a fruta e os legumes que cultivam nos campos fora da aldeia
entre o rio e as colinas que se veem da torre da igreja se subirmos
todas as escadas estreitas até ao topo esta é a vida simples que
conhecemos e que contamos aos nossos filhos para que se lembrem de
onde vêm e de quem são onde quer que a vida os leve nos anos que virão`,

	Dutch: `vroeg in de ochtend komt de zon op boven de heuvels en het licht
valt door de ramen van het huis waar het gezin zich klaarmaakt voor de
dag de kinderen gaan naar school en leren lezen en schrijven terwijl
de ouders met de trein naar hun werk in de stad gaan die elke dag op
hetzelfde tijdstip van het kleine station van het dorp vertrekt de
mensen praten over het weer en het nieuws want er gebeurt altijd wel
iets in de wereld en iedereen wil weten wat het voor hen en voor hun
gezinnen betekent de markt op het plein is elke zaterdagochtend open
en de boeren verkopen brood melk fruit en groenten die ze verbouwen op
de velden buiten het dorp tussen de rivier en de heuvels die je vanaf
de kerktoren kunt zien als je alle smalle trappen helemaal naar boven
klimt dit is het eenvoudige leven dat wij kennen en dat wij aan onze
kinderen vertellen zodat zij zich herinneren waar zij vandaan komen`,

	German: `am frühen morgen geht die sonne über den hügeln auf und das licht
fällt durch die fenster des hauses in dem sich die familie auf den tag
vorbereitet die kinder gehen in die schule und lernen lesen und
schreiben während die eltern mit dem zug zur arbeit in die stadt
fahren der jeden tag zur gleichen zeit vom kleinen bahnhof des dorfes
abfährt die leute sprechen über das wetter und die nachrichten weil
immer irgendwo etwas in der welt geschieht und alle wissen wollen was
es für sie und ihre familien bedeutet der markt auf dem platz ist
jeden samstagmorgen geöffnet und die bauern verkaufen brot milch obst
und gemüse das sie auf den feldern außerhalb des dorfes anbauen
zwischen dem fluss und den hügeln die man vom kirchturm aus sehen kann
wenn man die engen treppen bis ganz nach oben steigt das ist das
einfache leben das wir kennen und von dem wir unseren kindern erzählen
damit sie sich daran erinnern woher sie kommen und wer sie sind`,
}
