package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestPrecisionAt(t *testing.T) {
	rel := []bool{true, false, true, true, false}
	approx(t, "P@1", PrecisionAt(rel, 1), 1)
	approx(t, "P@2", PrecisionAt(rel, 2), 0.5)
	approx(t, "P@4", PrecisionAt(rel, 4), 0.75)
	approx(t, "P@10 (short list)", PrecisionAt(rel, 10), 3.0/5)
	approx(t, "P@0", PrecisionAt(rel, 0), 0)
	approx(t, "P of empty", PrecisionAt(nil, 5), 0)
}

func TestRecallAt(t *testing.T) {
	rel := []bool{true, false, true}
	approx(t, "R@1", RecallAt(rel, 4, 1), 0.25)
	approx(t, "R@3", RecallAt(rel, 4, 3), 0.5)
	approx(t, "R@10", RecallAt(rel, 4, 10), 0.5)
	approx(t, "R with 0 relevant", RecallAt(rel, 0, 3), 0)
}

func TestAveragePrecision(t *testing.T) {
	// Classic worked example: relevant at ranks 1, 3, 5 out of 3 total.
	rel := []bool{true, false, true, false, true}
	want := (1.0 + 2.0/3 + 3.0/5) / 3
	approx(t, "AP", AveragePrecision(rel, 3), want)

	// Unretrieved relevant items lower AP.
	approx(t, "AP missing relevant", AveragePrecision(rel, 6), (1.0+2.0/3+3.0/5)/6)

	// Perfect ranking has AP 1.
	approx(t, "AP perfect", AveragePrecision([]bool{true, true, true}, 3), 1)
	approx(t, "AP nothing relevant", AveragePrecision([]bool{false, false}, 2), 0)
	approx(t, "AP zero relevant", AveragePrecision(rel, 0), 0)
}

func TestReciprocalRank(t *testing.T) {
	approx(t, "RR first", ReciprocalRank([]bool{true, false}), 1)
	approx(t, "RR third", ReciprocalRank([]bool{false, false, true}), 1.0/3)
	approx(t, "RR none", ReciprocalRank([]bool{false, false}), 0)
	approx(t, "RR empty", ReciprocalRank(nil), 0)
}

func TestMean(t *testing.T) {
	approx(t, "Mean", Mean([]float64{1, 2, 3}), 2)
	approx(t, "Mean empty", Mean(nil), 0)
}

func TestDCG(t *testing.T) {
	gains := []float64{3, 2, 3, 0, 1, 2}
	// Standard textbook example (Wikipedia DCG article, log2(i+1) form):
	want := 3 + 2/math.Log2(3) + 3/math.Log2(4) + 0 + 1/math.Log2(6) + 2/math.Log2(7)
	approx(t, "DCG full", DCG(gains, 0), want)
	approx(t, "DCG@1", DCG(gains, 1), 3)
	approx(t, "DCG@2", DCG(gains, 2), 3+2/math.Log2(3))
	approx(t, "DCG k>len", DCG(gains, 100), want)
}

func TestNDCG(t *testing.T) {
	gains := []float64{3, 2, 3, 0, 1, 2}
	ideal := []float64{3, 3, 2, 2, 1, 0}
	got := NDCG(gains, ideal, 0)
	if got <= 0 || got >= 1 {
		t.Errorf("NDCG = %v, want in (0,1)", got)
	}
	// Ideal ranking ⇒ NDCG = 1.
	approx(t, "NDCG ideal", NDCG(ideal, ideal, 0), 1)
	// Zero ideal gain ⇒ 0.
	approx(t, "NDCG zero ideal", NDCG(gains, nil, 0), 0)
	// Unsorted ideal gains are sorted internally.
	shuffled := []float64{0, 1, 2, 3, 2, 3}
	approx(t, "NDCG shuffled ideal", NDCG(gains, shuffled, 0), got)
}

func TestNDCGTruncated(t *testing.T) {
	rel := []bool{true, false, true}
	g := BinaryGains(rel)
	// At k=1 the first item is relevant: NDCG@1 = 1.
	approx(t, "NDCG@1", NDCG(g, Ones(2), 1), 1)
	// NDCG@2: DCG = 1, IDCG = 1 + 1/log2(3).
	approx(t, "NDCG@2", NDCG(g, Ones(2), 2), 1/(1+1/math.Log2(3)))
}

func TestBinaryGainsAndOnes(t *testing.T) {
	g := BinaryGains([]bool{true, false, true})
	if g[0] != 1 || g[1] != 0 || g[2] != 1 {
		t.Errorf("BinaryGains = %v", g)
	}
	if o := Ones(3); len(o) != 3 || o[0] != 1 || o[2] != 1 {
		t.Errorf("Ones = %v", o)
	}
}

func TestElevenPointPrecision(t *testing.T) {
	// 2 relevant items at ranks 1 and 3, 2 relevant total.
	rel := []bool{true, false, true}
	p := ElevenPointPrecision(rel, 2)
	// At recall 0.0..0.5 the best precision is 1 (rank 1, recall 0.5).
	for level := 0; level <= 5; level++ {
		approx(t, "11P low recall", p[level], 1)
	}
	// At recall 0.6..1.0 the best precision is 2/3 (rank 3, recall 1).
	for level := 6; level <= 10; level++ {
		approx(t, "11P high recall", p[level], 2.0/3)
	}
	// No relevant retrieved: all zeros.
	p = ElevenPointPrecision([]bool{false, false}, 2)
	for _, v := range p {
		approx(t, "11P none", v, 0)
	}
}

func TestElevenPointPrecisionMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		rel := make([]bool, n)
		total := 0
		for i := range rel {
			rel[i] = r.Intn(3) == 0
			if rel[i] {
				total++
			}
		}
		total += r.Intn(3) // some relevant items not retrieved
		if total == 0 {
			total = 1
		}
		p := ElevenPointPrecision(rel, total)
		for i := 1; i < len(p); i++ {
			if p[i] > p[i-1]+1e-12 {
				return false // interpolated precision must be non-increasing
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestF1(t *testing.T) {
	approx(t, "F1", F1(0.5, 0.5), 0.5)
	approx(t, "F1 asym", F1(1, 0.5), 2.0/3)
	approx(t, "F1 zero", F1(0, 0), 0)
}

func TestPrecisionRecall(t *testing.T) {
	p, r := PrecisionRecall(3, 4, 6)
	approx(t, "precision", p, 0.75)
	approx(t, "recall", r, 0.5)
	p, r = PrecisionRecall(0, 0, 0)
	approx(t, "precision empty", p, 0)
	approx(t, "recall empty", r, 0)
}

func TestLinearRegression(t *testing.T) {
	// y = 2 + 3x exactly.
	x := []float64{0, 1, 2, 3}
	y := []float64{2, 5, 8, 11}
	a, b := LinearRegression(x, y)
	approx(t, "intercept", a, 2)
	approx(t, "slope", b, 3)
	// Constant x: slope 0, intercept mean(y).
	a, b = LinearRegression([]float64{1, 1}, []float64{3, 5})
	approx(t, "slope const x", b, 0)
	approx(t, "intercept const x", a, 4)
}

func TestPearsonCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	approx(t, "perfect positive", PearsonCorrelation(x, []float64{2, 4, 6, 8}), 1)
	approx(t, "perfect negative", PearsonCorrelation(x, []float64{8, 6, 4, 2}), -1)
	approx(t, "no variance", PearsonCorrelation(x, []float64{5, 5, 5, 5}), 0)
}

func TestSpearmanCorrelation(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	// Any monotone map of x has ρ = 1 even when Pearson < 1.
	approx(t, "monotone", SpearmanCorrelation(x, []float64{1, 10, 100, 1000}), 1)
	approx(t, "reversed", SpearmanCorrelation(x, []float64{9, 7, 5, 3}), -1)
	approx(t, "no variance", SpearmanCorrelation(x, []float64{5, 5, 5, 5}), 0)
	// Ties get midranks: textbook example with one swap and a tie.
	rho := SpearmanCorrelation([]float64{1, 2, 3, 4, 5}, []float64{1, 3, 2, 4, 4})
	if rho <= 0.7 || rho >= 1 {
		t.Errorf("tied ρ = %v, want in (0.7, 1)", rho)
	}
	approx(t, "mismatched lengths", SpearmanCorrelation(x, []float64{1}), 0)
}

// Property: all bounded metrics stay in [0,1] for arbitrary inputs.
func TestMetricBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := r.Intn(40)
		rel := make([]bool, n)
		relevantRetrieved := 0
		for i := range rel {
			rel[i] = r.Intn(2) == 0
			if rel[i] {
				relevantRetrieved++
			}
		}
		numRelevant := relevantRetrieved + r.Intn(5)
		in01 := func(v float64) bool { return v >= 0 && v <= 1+1e-12 }
		if !in01(AveragePrecision(rel, numRelevant)) {
			return false
		}
		if !in01(ReciprocalRank(rel)) {
			return false
		}
		if !in01(PrecisionAt(rel, 1+r.Intn(10))) {
			return false
		}
		if !in01(RecallAt(rel, numRelevant, 1+r.Intn(10))) {
			return false
		}
		if !in01(NDCG(BinaryGains(rel), Ones(numRelevant), 10)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: NDCG of the ideal ordering is exactly 1 whenever there is
// at least one relevant item.
func TestNDCGIdealIsOne(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(20)
		gains := make([]float64, n)
		for i := range gains {
			gains[i] = float64(r.Intn(8))
		}
		sorted := append([]float64(nil), gains...)
		sortDesc(sorted)
		if sorted[0] == 0 {
			sorted[0] = 1
		}
		return math.Abs(NDCG(sorted, sorted, 0)-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAveragePrecision(b *testing.B) {
	rel := make([]bool, 40)
	for i := range rel {
		rel[i] = i%3 == 0
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		AveragePrecision(rel, 17)
	}
}
