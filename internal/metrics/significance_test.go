package metrics

import (
	"math/rand"
	"testing"
)

func TestRandomizationTestDetectsCleanDifference(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		b[i] = r.Float64() * 0.3
		a[i] = b[i] + 0.3 + r.Float64()*0.1 // consistently much better
	}
	p := RandomizationTest(a, b, 10000, 7)
	if p > 0.01 {
		t.Errorf("p = %v for a systematic difference, want < 0.01", p)
	}
}

func TestRandomizationTestAcceptsNoise(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		base := r.Float64()
		a[i] = base + r.NormFloat64()*0.05
		b[i] = base + r.NormFloat64()*0.05
	}
	p := RandomizationTest(a, b, 10000, 7)
	if p < 0.05 {
		t.Errorf("p = %v for pure noise, want >= 0.05", p)
	}
}

func TestRandomizationTestIdenticalSamples(t *testing.T) {
	a := []float64{0.1, 0.5, 0.9}
	if p := RandomizationTest(a, a, 1000, 3); p != 1 {
		t.Errorf("p = %v for identical samples, want 1", p)
	}
}

func TestRandomizationTestDegenerateInputs(t *testing.T) {
	if p := RandomizationTest(nil, nil, 100, 1); p != 1 {
		t.Errorf("p(nil) = %v", p)
	}
	if p := RandomizationTest([]float64{1}, []float64{1, 2}, 100, 1); p != 1 {
		t.Errorf("p(mismatched) = %v", p)
	}
	if p := RandomizationTest([]float64{1}, []float64{0}, 0, 1); p != 1 {
		t.Errorf("p(no iterations) = %v", p)
	}
}

func TestRandomizationTestDeterministic(t *testing.T) {
	a := []float64{0.3, 0.5, 0.7, 0.9, 0.2}
	b := []float64{0.2, 0.4, 0.8, 0.7, 0.1}
	p1 := RandomizationTest(a, b, 5000, 11)
	p2 := RandomizationTest(a, b, 5000, 11)
	if p1 != p2 {
		t.Errorf("nondeterministic: %v vs %v", p1, p2)
	}
}

func TestPairedMeanDiff(t *testing.T) {
	if d := PairedMeanDiff([]float64{1, 2, 3}, []float64{0, 1, 2}); d != 1 {
		t.Errorf("diff = %v", d)
	}
}

func TestKendallTau(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := KendallTau(x, []float64{10, 20, 30, 40}); got != 1 {
		t.Errorf("identical order tau = %v", got)
	}
	if got := KendallTau(x, []float64{40, 30, 20, 10}); got != -1 {
		t.Errorf("reversed tau = %v", got)
	}
	if got := KendallTau(x, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("constant tau = %v", got)
	}
	if got := KendallTau(x, []float64{1, 2}); got != 0 {
		t.Errorf("mismatched tau = %v", got)
	}
	if got := KendallTau([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("single tau = %v", got)
	}
	// Partial agreement lands strictly between the extremes.
	mid := KendallTau(x, []float64{2, 1, 3, 4})
	if mid <= 0 || mid >= 1 {
		t.Errorf("partial tau = %v", mid)
	}
	// Ties: tau-b stays in [-1, 1].
	tied := KendallTau([]float64{1, 1, 2, 3}, []float64{1, 2, 2, 3})
	if tied < -1 || tied > 1 {
		t.Errorf("tied tau = %v", tied)
	}
}
