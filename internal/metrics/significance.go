package metrics

import (
	"math"
	"math/rand"
)

// RandomizationTest returns the two-sided p-value of the null
// hypothesis that the paired per-query scores a and b are exchangeable
// — Fisher's randomization (permutation) test over sign flips of the
// per-pair differences, the recommended significance test for IR
// metric comparisons (Smucker, Allan & Carterette, CIKM 2007).
//
// a and b must be aligned per query and equally long. iterations
// controls the Monte-Carlo sample size (10,000 is customary); the
// result is deterministic for a fixed seed.
func RandomizationTest(a, b []float64, iterations int, seed int64) float64 {
	if len(a) != len(b) || len(a) == 0 || iterations <= 0 {
		return 1
	}
	diffs := make([]float64, len(a))
	var observed float64
	for i := range a {
		diffs[i] = a[i] - b[i]
		observed += diffs[i]
	}
	observed = math.Abs(observed / float64(len(diffs)))

	r := rand.New(rand.NewSource(seed))
	extreme := 0
	for it := 0; it < iterations; it++ {
		var sum float64
		for _, d := range diffs {
			if r.Intn(2) == 0 {
				sum += d
			} else {
				sum -= d
			}
		}
		if math.Abs(sum/float64(len(diffs))) >= observed-1e-15 {
			extreme++
		}
	}
	return float64(extreme) / float64(iterations)
}

// PairedMeanDiff returns mean(a) - mean(b) for aligned per-query
// scores.
func PairedMeanDiff(a, b []float64) float64 {
	return Mean(a) - Mean(b)
}

// KendallTau returns Kendall's τ-b rank correlation between two
// aligned score vectors: +1 for identical orderings, −1 for reversed,
// 0 for unrelated. Ties are handled with the τ-b correction; vectors
// where either side is constant return 0.
func KendallTau(x, y []float64) float64 {
	n := len(x)
	if n != len(y) || n < 2 {
		return 0
	}
	var concordant, discordant float64
	var tiesX, tiesY float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := x[i] - x[j]
			dy := y[i] - y[j]
			switch {
			case dx == 0 && dy == 0:
				tiesX++
				tiesY++
			case dx == 0:
				tiesX++
			case dy == 0:
				tiesY++
			case (dx > 0) == (dy > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	denomX := n0 - tiesX
	denomY := n0 - tiesY
	if denomX <= 0 || denomY <= 0 {
		return 0
	}
	return (concordant - discordant) / sqrt(denomX*denomY)
}

func sqrt(v float64) float64 { return math.Sqrt(v) }
