// Package metrics implements the standard retrieval-evaluation
// measures used in the paper's experiments (§3.2): Mean Average
// Precision (MAP), Mean Reciprocal Rank (MRR), (Normalized) Discounted
// Cumulative Gain (DCG / NDCG, optionally truncated at k), the
// 11-point interpolated precision/recall curve, and per-user
// precision/recall/F1.
//
// All functions operate on relevance judgments given in rank order:
// rel[i] reports whether the item retrieved at rank i+1 is relevant,
// and numRelevant is the total number of relevant items in the
// collection (retrieved or not), which fixes the recall denominator.
package metrics

import (
	"math"
	"sort"
)

// PrecisionAt returns the fraction of relevant items within the first
// k retrieved. When fewer than k items were retrieved the denominator
// stays k-independent: precision is computed over min(k, len(rel)).
func PrecisionAt(rel []bool, k int) float64 {
	if k > len(rel) {
		k = len(rel)
	}
	if k <= 0 {
		return 0
	}
	hits := 0
	for _, r := range rel[:k] {
		if r {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAt returns the fraction of all relevant items retrieved within
// the first k.
func RecallAt(rel []bool, numRelevant, k int) float64 {
	if numRelevant <= 0 {
		return 0
	}
	if k > len(rel) {
		k = len(rel)
	}
	hits := 0
	for _, r := range rel[:k] {
		if r {
			hits++
		}
	}
	return float64(hits) / float64(numRelevant)
}

// AveragePrecision returns the mean of the precision values measured
// at every relevant retrieved position, divided by the total number of
// relevant items; relevant items never retrieved contribute zero.
func AveragePrecision(rel []bool, numRelevant int) float64 {
	if numRelevant <= 0 {
		return 0
	}
	sum, hits := 0.0, 0
	for i, r := range rel {
		if r {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(numRelevant)
}

// ReciprocalRank returns 1/rank of the first relevant item, or 0 when
// none was retrieved.
func ReciprocalRank(rel []bool) float64 {
	for i, r := range rel {
		if r {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
// MAP and MRR are Mean of per-query AveragePrecision / ReciprocalRank.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// DCG returns the Discounted Cumulative Gain of the first k retrieved
// items, with graded gains: Σ gain_i / log2(i+1) with 1-based ranks.
// k <= 0 means the whole list.
func DCG(gains []float64, k int) float64 {
	if k <= 0 || k > len(gains) {
		k = len(gains)
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += gains[i] / math.Log2(float64(i)+2)
	}
	return sum
}

// NDCG returns DCG normalized by the ideal DCG obtainable with the
// given idealGains (the gains of all relevant items in the
// collection, in any order; they are sorted internally). Both DCG and
// ideal DCG are truncated at k (k <= 0 for untruncated). NDCG is 0
// when the ideal gain is 0.
func NDCG(gains, idealGains []float64, k int) float64 {
	ideal := append([]float64(nil), idealGains...)
	sortDesc(ideal)
	idcg := DCG(ideal, k)
	if idcg == 0 {
		return 0
	}
	return DCG(gains, k) / idcg
}

// BinaryGains converts boolean relevance judgments to 0/1 gains.
func BinaryGains(rel []bool) []float64 {
	out := make([]float64, len(rel))
	for i, r := range rel {
		if r {
			out[i] = 1
		}
	}
	return out
}

// Ones returns a slice of n unit gains: the ideal gains for binary
// relevance with n relevant items.
func Ones(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = 1
	}
	return out
}

// ElevenPointPrecision returns the interpolated precision at the 11
// standard recall levels 0.0, 0.1, ..., 1.0. The interpolated
// precision at recall level r is the maximum precision observed at any
// recall >= r.
func ElevenPointPrecision(rel []bool, numRelevant int) [11]float64 {
	var out [11]float64
	if numRelevant <= 0 {
		return out
	}
	// Collect (recall, precision) at every rank.
	type pr struct{ r, p float64 }
	points := make([]pr, 0, len(rel))
	hits := 0
	for i, r := range rel {
		if r {
			hits++
		}
		points = append(points, pr{
			r: float64(hits) / float64(numRelevant),
			p: float64(hits) / float64(i+1),
		})
	}
	for level := 0; level <= 10; level++ {
		rl := float64(level) / 10
		maxP := 0.0
		for _, pt := range points {
			if pt.r >= rl-1e-12 && pt.p > maxP {
				maxP = pt.p
			}
		}
		out[level] = maxP
	}
	return out
}

// F1 returns the harmonic mean of precision and recall, or 0 when
// both are 0.
func F1(precision, recall float64) float64 {
	if precision+recall == 0 {
		return 0
	}
	return 2 * precision * recall / (precision + recall)
}

// PrecisionRecall computes precision and recall of an unranked
// retrieved set: hits relevant items retrieved, retrieved total items
// retrieved, relevant total relevant items.
func PrecisionRecall(hits, retrieved, relevant int) (precision, recall float64) {
	if retrieved > 0 {
		precision = float64(hits) / float64(retrieved)
	}
	if relevant > 0 {
		recall = float64(hits) / float64(relevant)
	}
	return precision, recall
}

func sortDesc(xs []float64) {
	// Insertion sort: ideal-gain lists are short (tens of items).
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		j := i - 1
		for j >= 0 && xs[j] < x {
			xs[j+1] = xs[j]
			j--
		}
		xs[j+1] = x
	}
}

// LinearRegression fits y = a + b·x by least squares and returns the
// intercept and slope. Used for the resource-count regression of
// Fig. 10. It returns (mean(y), 0) when x has no variance.
func LinearRegression(x, y []float64) (a, b float64) {
	n := float64(len(x))
	if n == 0 || len(x) != len(y) {
		return 0, 0
	}
	mx, my := Mean(x), Mean(y)
	var sxx, sxy float64
	for i := range x {
		dx := x[i] - mx
		sxx += dx * dx
		sxy += dx * (y[i] - my)
	}
	if sxx == 0 {
		return my, 0
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b
}

// SpearmanCorrelation returns Spearman's rank correlation ρ of x and
// y: the Pearson correlation of their rank vectors, with tied values
// assigned the average of the ranks they span (midranks). It returns
// 0 when either vector has no variance in its ranks.
func SpearmanCorrelation(x, y []float64) float64 {
	if len(x) == 0 || len(x) != len(y) {
		return 0
	}
	return PearsonCorrelation(ranks(x), ranks(y))
}

// ranks converts values to 1-based midranks.
func ranks(xs []float64) []float64 {
	order := make([]int, len(xs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return xs[order[i]] < xs[order[j]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(order); {
		j := i
		for j+1 < len(order) && xs[order[j+1]] == xs[order[i]] {
			j++
		}
		mid := float64(i+j)/2 + 1 // average of 1-based ranks i+1..j+1
		for k := i; k <= j; k++ {
			out[order[k]] = mid
		}
		i = j + 1
	}
	return out
}

// PearsonCorrelation returns the correlation coefficient of x and y,
// or 0 when either has no variance. Non-finite inputs (NaN, ±Inf)
// have no meaningful correlation and also yield 0 — without the
// guard, a single NaN would slip past the zero-variance check (NaN
// compares false against 0) and poison the result.
func PearsonCorrelation(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxx, syy, sxy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		syy += dy * dy
		sxy += dx * dy
	}
	if sxx == 0 || syy == 0 || math.IsNaN(sxx) || math.IsNaN(syy) ||
		math.IsInf(sxx, 0) || math.IsInf(syy, 0) {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
