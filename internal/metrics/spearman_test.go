package metrics

import (
	"math"
	"testing"
)

func TestSpearmanCorrelationTable(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name string
		x, y []float64
		want float64
	}{
		{name: "empty", x: nil, y: nil, want: 0},
		{name: "single element", x: []float64{3}, y: []float64{7}, want: 0},
		{name: "mismatched lengths", x: []float64{1, 2}, y: []float64{1}, want: 0},
		{name: "perfect agreement", x: []float64{1, 2, 3, 4}, y: []float64{10, 20, 30, 40}, want: 1},
		{name: "reversed ranking", x: []float64{1, 2, 3, 4}, y: []float64{4, 3, 2, 1}, want: -1},
		{name: "monotone nonlinear", x: []float64{1, 2, 3, 4}, y: []float64{1, 8, 27, 64}, want: 1},
		{
			// Midranks: x ranks are {1.5, 1.5, 3.5, 3.5}, giving
			// ρ = 4/√20 against the untied y.
			name: "ties in x", x: []float64{1, 1, 2, 2}, y: []float64{1, 2, 3, 4},
			want: 4 / math.Sqrt(20),
		},
		{name: "ties in both", x: []float64{1, 1, 2, 2}, y: []float64{5, 5, 9, 9}, want: 1},
		{name: "constant x (no rank variance)", x: []float64{2, 2, 2}, y: []float64{1, 2, 3}, want: 0},
		{name: "constant both", x: []float64{2, 2, 2}, y: []float64{7, 7, 7}, want: 0},
		{name: "two elements agree", x: []float64{1, 2}, y: []float64{5, 6}, want: 1},
		{name: "two elements disagree", x: []float64{1, 2}, y: []float64{6, 5}, want: -1},
		{
			// ±Inf are ordinary extremes under ranking.
			name: "infinities rank like extremes",
			x:    []float64{math.Inf(-1), 0, inf}, y: []float64{1, 2, 3},
			want: 1,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := SpearmanCorrelation(tc.x, tc.y)
			if math.IsNaN(got) {
				t.Fatalf("SpearmanCorrelation(%v, %v) = NaN", tc.x, tc.y)
			}
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("SpearmanCorrelation(%v, %v) = %v, want %v", tc.x, tc.y, got, tc.want)
			}
		})
	}
}

// Spearman ranks NaN inputs deterministically enough to stay finite
// and bounded; the exact value is unspecified but must never be NaN.
func TestSpearmanCorrelationNaNInputStaysFinite(t *testing.T) {
	x := []float64{1, math.NaN(), 3, 4}
	y := []float64{4, 3, math.NaN(), 1}
	got := SpearmanCorrelation(x, y)
	if math.IsNaN(got) || got < -1 || got > 1 {
		t.Fatalf("SpearmanCorrelation with NaN input = %v, want finite in [-1,1]", got)
	}
}

// Direct Pearson on non-finite inputs used to return NaN: the NaN
// moments slipped past the zero-variance check because NaN compares
// false against 0.
func TestPearsonCorrelationNonFiniteInputs(t *testing.T) {
	cases := []struct {
		name string
		x, y []float64
	}{
		{name: "NaN in x", x: []float64{1, math.NaN(), 3}, y: []float64{1, 2, 3}},
		{name: "NaN in y", x: []float64{1, 2, 3}, y: []float64{math.NaN(), 2, 3}},
		{name: "Inf in x", x: []float64{1, math.Inf(1), 3}, y: []float64{1, 2, 3}},
		{name: "-Inf in y", x: []float64{1, 2, 3}, y: []float64{1, math.Inf(-1), 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := PearsonCorrelation(tc.x, tc.y); got != 0 {
				t.Errorf("PearsonCorrelation(%v, %v) = %v, want 0", tc.x, tc.y, got)
			}
		})
	}
}

func TestRanksMidranks(t *testing.T) {
	got := ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", got, want)
		}
	}
}
