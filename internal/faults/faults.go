// Package faults simulates the unreliable platform APIs behind the
// paper's Resource Extraction step (§2.3, Fig. 4). The real
// Facebook/Twitter/LinkedIn endpoints rate-limit, time out, and
// return transient errors; industrial-scale expert miners engineer
// around exactly that. This package wraps the remote
// socialgraph.Graph (the ground truth living on the platforms) behind
// an API interface whose calls can fail with deterministic, seeded
// faults: transient 5xx-style errors, 429-style rate-limit responses
// carrying a Retry-After hint, per-call service latency, and hard
// per-network outages.
//
// The crawler (internal/crawler) consumes this interface through the
// retry / rate-limit / circuit-breaker stack of internal/resilience,
// which turns "robustness to policy incompleteness" (§3.7) into the
// harder question the experiments chart: robustness to *transient*
// incompleteness.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"expertfind/internal/resilience"
	"expertfind/internal/socialgraph"
)

// Kind classifies an injected API failure.
type Kind uint8

// Failure kinds, ordered from most to least benign.
const (
	// Transient is a 5xx-style hiccup (gateway error, reset
	// connection): retryable immediately.
	Transient Kind = iota
	// RateLimited is a 429-style rejection carrying a Retry-After
	// hint: retryable after the hint.
	RateLimited
	// Unavailable is a hard per-network outage (platform down, API
	// revoked): not retryable.
	Unavailable
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case RateLimited:
		return "rate-limited"
	case Unavailable:
		return "unavailable"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// APIError is the error returned by failed platform calls. It
// implements the Retryable and RetryAfterHint classification the
// resilience package consumes.
type APIError struct {
	Kind    Kind
	Network socialgraph.Network
	// Hint is the server-supplied Retry-After for RateLimited errors.
	Hint time.Duration
}

// Error implements error.
func (e *APIError) Error() string {
	return fmt.Sprintf("faults: %s API %s", e.Network, e.Kind)
}

// Retryable reports whether a retry can succeed: hard outages cannot.
func (e *APIError) Retryable() bool { return e.Kind != Unavailable }

// RetryAfterHint exposes the 429 Retry-After hint.
func (e *APIError) RetryAfterHint() (time.Duration, bool) {
	if e.Kind == RateLimited && e.Hint > 0 {
		return e.Hint, true
	}
	return 0, false
}

// Edge is a follow relationship as the relationship API reports it.
type Edge struct {
	To socialgraph.UserID
	// Mutual marks a reciprocated edge — a friendship in the paper's
	// meta-model (§2.2).
	Mutual bool
}

// UserView is the response of FetchUser: everything the platform
// returns about a user's presence on one network — profile, container
// memberships, and the owned/created/annotated streams, with full
// resource records (IDs are the remote graph's).
type UserView struct {
	Network    socialgraph.Network
	Profile    *socialgraph.Resource // nil when the user has no profile there
	Containers []socialgraph.ContainerID
	Owned      []socialgraph.Resource
	Created    []socialgraph.Resource
	Annotated  []socialgraph.Resource
}

// ContainerView is the response of FetchContainer: the container
// record, its description resource, and the most recent feed entries.
type ContainerView struct {
	Container socialgraph.Container
	Desc      socialgraph.Resource
	// Feed holds the retrieved resources in chronological order (most
	// recent last); Total is the feed length before the limit cut.
	Feed  []socialgraph.Resource
	Total int
}

// API is the remote platform surface as a crawling application sees
// it: a user directory (the application's own registration records,
// always available), cached public relationship lists, and per-call
// content fetches that can fail.
type API interface {
	// Users returns the user directory.
	Users() []socialgraph.User
	// Candidates returns the expert-candidate pool CE.
	Candidates() []socialgraph.UserID
	// Follows returns u's outgoing follow edges on net, flagging
	// mutual (friendship) edges. Relationship lists are public and
	// served from cache: no API call, no failures.
	Follows(u socialgraph.UserID, net socialgraph.Network) []Edge
	// FetchUser retrieves u's content on net. One API call; may fail.
	FetchUser(u socialgraph.UserID, net socialgraph.Network) (*UserView, error)
	// FetchContainer retrieves a container and its limit most recent
	// feed entries (0 = all). One API call; may fail.
	FetchContainer(c socialgraph.ContainerID, limit int) (*ContainerView, error)
}

// Config sets the injected fault mix. The zero value injects nothing:
// Wrap(g, Config{}) is a perfectly reliable API.
type Config struct {
	// Seed drives the per-call fault draws, making every failure
	// sequence reproducible.
	Seed int64
	// TransientRate is the probability that a call fails with a
	// Transient error.
	TransientRate float64
	// RateLimitRate is the probability that a call fails RateLimited.
	// TransientRate + RateLimitRate must be ≤ 1.
	RateLimitRate float64
	// RetryAfter is the hint attached to RateLimited errors; zero
	// defaults to 50ms.
	RetryAfter time.Duration
	// Latency is the simulated per-call service time, charged to the
	// clock on every call (failures included).
	Latency time.Duration
	// Outages lists networks that are hard down: every call against
	// them fails Unavailable.
	Outages []socialgraph.Network
	// Clock receives the injected latency; nil means a private
	// virtual clock (latency is then only visible in Stats).
	Clock *resilience.Clock
}

// Stats counts what the injector did, for reporting.
type Stats struct {
	Calls          int
	Transients     int
	RateLimits     int
	OutageFailures int
	Latency        time.Duration // total injected service time
}

// Gate is the graph-free injection core: it charges calls against a
// seeded fault mix and decides their fate, nothing more. Injector
// routes every platform call through one; other call paths (the load
// harness's chaos mode, for instance) can gate arbitrary operations
// through their own. All methods are safe for concurrent use; draws
// are serialized, so single-threaded call sequences are deterministic.
type Gate struct {
	cfg Config

	mu    sync.Mutex
	rng   *rand.Rand
	down  map[socialgraph.Network]bool
	stats Stats
}

// NewGate returns a gate drawing from the configured fault mix.
func NewGate(cfg Config) *Gate {
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 50 * time.Millisecond
	}
	if cfg.Clock == nil {
		cfg.Clock = resilience.NewClock()
	}
	g := &Gate{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed + 1)),
		down: make(map[socialgraph.Network]bool, len(cfg.Outages)),
	}
	for _, net := range cfg.Outages {
		g.down[net] = true
	}
	return g
}

// Stats returns a snapshot of the gate's counters.
func (g *Gate) Stats() Stats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.stats
}

// Call charges one call against net and decides its fate. A single
// uniform draw selects the failure class, so each call consumes
// exactly one random number regardless of the configuration. net is a
// free-form label for callers outside the platform simulation — it
// only has to match the Outages entries they configured.
func (g *Gate) Call(net socialgraph.Network) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stats.Calls++
	if g.cfg.Latency > 0 {
		g.stats.Latency += g.cfg.Latency
		g.cfg.Clock.Sleep(g.cfg.Latency)
	}
	if g.down[net] {
		g.stats.OutageFailures++
		return &APIError{Kind: Unavailable, Network: net}
	}
	if g.cfg.TransientRate <= 0 && g.cfg.RateLimitRate <= 0 {
		return nil
	}
	draw := g.rng.Float64()
	if draw < g.cfg.TransientRate {
		g.stats.Transients++
		return &APIError{Kind: Transient, Network: net}
	}
	if draw < g.cfg.TransientRate+g.cfg.RateLimitRate {
		g.stats.RateLimits++
		return &APIError{Kind: RateLimited, Network: net, Hint: g.cfg.RetryAfter}
	}
	return nil
}

// Injector implements API over a socialgraph.Graph, gating every
// platform call through a Gate over the configured fault mix.
type Injector struct {
	g    *socialgraph.Graph
	gate *Gate
}

// Wrap returns a fault-injecting API over g.
func Wrap(g *socialgraph.Graph, cfg Config) *Injector {
	return &Injector{g: g, gate: NewGate(cfg)}
}

// Stats returns a snapshot of the injector's counters.
func (in *Injector) Stats() Stats { return in.gate.Stats() }

// call charges one API call against net and decides its fate.
func (in *Injector) call(net socialgraph.Network) error {
	return in.gate.Call(net)
}

// Users implements API.
func (in *Injector) Users() []socialgraph.User { return in.g.Users() }

// Candidates implements API.
func (in *Injector) Candidates() []socialgraph.UserID { return in.g.Candidates() }

// Follows implements API.
func (in *Injector) Follows(u socialgraph.UserID, net socialgraph.Network) []Edge {
	followed := in.g.Followed(u, net, true)
	out := make([]Edge, 0, len(followed))
	for _, v := range followed {
		out = append(out, Edge{To: v, Mutual: in.g.FollowsEdge(v, u, net)})
	}
	return out
}

// FetchUser implements API.
func (in *Injector) FetchUser(u socialgraph.UserID, net socialgraph.Network) (*UserView, error) {
	if err := in.call(net); err != nil {
		return nil, err
	}
	view := &UserView{Network: net}
	if rid, ok := in.g.Profile(u, net); ok {
		r := in.g.Resource(rid)
		view.Profile = &r
	}
	for _, cid := range in.g.RelatedContainers(u) {
		if in.g.Container(cid).Network == net {
			view.Containers = append(view.Containers, cid)
		}
	}
	view.Owned = in.streamOn(in.g.OwnedBy(u), net)
	view.Created = in.streamOn(in.g.CreatedBy(u), net)
	view.Annotated = in.streamOn(in.g.AnnotatedBy(u), net)
	return view, nil
}

// streamOn resolves the resource records of ids that live on net.
// Tombstoned resources are omitted — a deleted post disappears from
// the platform's responses, which is how a re-crawling ingester
// detects the deletion.
func (in *Injector) streamOn(ids []socialgraph.ResourceID, net socialgraph.Network) []socialgraph.Resource {
	var out []socialgraph.Resource
	for _, rid := range ids {
		if in.g.ResourceDeleted(rid) {
			continue
		}
		if r := in.g.Resource(rid); r.Network == net {
			out = append(out, r)
		}
	}
	return out
}

// FetchContainer implements API.
func (in *Injector) FetchContainer(c socialgraph.ContainerID, limit int) (*ContainerView, error) {
	cont := in.g.Container(c)
	if err := in.call(cont.Network); err != nil {
		return nil, err
	}
	feed := in.g.ContainedResources(c)
	live := feed[:0:0]
	for _, rid := range feed {
		if !in.g.ResourceDeleted(rid) {
			live = append(live, rid)
		}
	}
	feed = live
	view := &ContainerView{
		Container: cont,
		Desc:      in.g.Resource(cont.Desc),
		Total:     len(feed),
	}
	keep := len(feed)
	if limit > 0 && keep > limit {
		keep = limit
	}
	for _, rid := range feed[len(feed)-keep:] { // the most recent ones
		view.Feed = append(view.Feed, in.g.Resource(rid))
	}
	return view, nil
}
