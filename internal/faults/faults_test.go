package faults

import (
	"errors"
	"testing"
	"time"

	"expertfind/internal/resilience"
	"expertfind/internal/socialgraph"
)

// tinyGraph builds one candidate with a profile, a followed user, and
// a group with three posts.
func tinyGraph() (*socialgraph.Graph, socialgraph.UserID, socialgraph.ContainerID) {
	g := socialgraph.New()
	u := g.AddUser("ada", true)
	v := g.AddUser("bob", false)
	g.SetProfile(u, socialgraph.Facebook, "graph theory and optimization")
	g.Follows(u, v, socialgraph.Twitter)
	cid := g.AddContainer(socialgraph.Facebook, socialgraph.ContainerGroup, u, "algorithms", "algorithm talk")
	for i := 0; i < 3; i++ {
		g.AddContainedResource(socialgraph.KindGroupPost, cid, u, "post about sorting")
	}
	g.RelatesTo(u, cid)
	return g, u, cid
}

func TestZeroConfigNeverFails(t *testing.T) {
	g, u, cid := tinyGraph()
	api := Wrap(g, Config{})
	for i := 0; i < 50; i++ {
		if _, err := api.FetchUser(u, socialgraph.Facebook); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	view, err := api.FetchContainer(cid, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Feed) != 3 || view.Total != 3 {
		t.Errorf("feed = %d/%d, want 3/3", len(view.Feed), view.Total)
	}
}

func TestFetchUserView(t *testing.T) {
	g, u, cid := tinyGraph()
	api := Wrap(g, Config{})
	fb, err := api.FetchUser(u, socialgraph.Facebook)
	if err != nil {
		t.Fatal(err)
	}
	if fb.Profile == nil || fb.Profile.Text == "" {
		t.Error("facebook profile missing")
	}
	if len(fb.Containers) != 1 || fb.Containers[0] != cid {
		t.Errorf("containers = %v", fb.Containers)
	}
	// Created stream carries the group posts (same network).
	if len(fb.Created) == 0 {
		t.Error("created stream empty")
	}
	tw, err := api.FetchUser(u, socialgraph.Twitter)
	if err != nil {
		t.Fatal(err)
	}
	if tw.Profile != nil || len(tw.Containers) != 0 {
		t.Errorf("twitter view leaked facebook data: %+v", tw)
	}
}

func TestFollowsReportsMutuality(t *testing.T) {
	g := socialgraph.New()
	a := g.AddUser("a", true)
	b := g.AddUser("b", false)
	c := g.AddUser("c", false)
	g.Befriend(a, b, socialgraph.Facebook)
	g.Follows(a, c, socialgraph.Twitter)
	api := Wrap(g, Config{})
	fb := api.Follows(a, socialgraph.Facebook)
	if len(fb) != 1 || fb[0].To != b || !fb[0].Mutual {
		t.Errorf("facebook edges = %+v", fb)
	}
	tw := api.Follows(a, socialgraph.Twitter)
	if len(tw) != 1 || tw[0].To != c || tw[0].Mutual {
		t.Errorf("twitter edges = %+v", tw)
	}
}

func TestDeterministicFaultSequence(t *testing.T) {
	g, u, _ := tinyGraph()
	seq := func() []bool {
		api := Wrap(g, Config{Seed: 3, TransientRate: 0.3, RateLimitRate: 0.2})
		var out []bool
		for i := 0; i < 40; i++ {
			_, err := api.FetchUser(u, socialgraph.Facebook)
			out = append(out, err == nil)
		}
		return out
	}
	a, b := seq(), seq()
	failed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequences diverge at call %d", i)
		}
		if !a[i] {
			failed++
		}
	}
	if failed == 0 {
		t.Error("no faults injected at 50% combined rate")
	}
}

func TestFaultClassification(t *testing.T) {
	g, u, cid := tinyGraph()
	api := Wrap(g, Config{Seed: 1, TransientRate: 0.5, RateLimitRate: 0.5, RetryAfter: 123 * time.Millisecond})
	sawTransient, sawRateLimit := false, false
	for i := 0; i < 60 && !(sawTransient && sawRateLimit); i++ {
		_, err := api.FetchUser(u, socialgraph.Facebook)
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("call %d: error %v is not an APIError", i, err)
		}
		switch apiErr.Kind {
		case Transient:
			sawTransient = true
			if !resilience.Retryable(err) {
				t.Error("transient not retryable")
			}
			if _, ok := resilience.RetryAfter(err); ok {
				t.Error("transient carries a retry-after hint")
			}
		case RateLimited:
			sawRateLimit = true
			hint, ok := resilience.RetryAfter(err)
			if !ok || hint != 123*time.Millisecond {
				t.Errorf("hint = %v/%v", hint, ok)
			}
		}
	}
	if !sawTransient || !sawRateLimit {
		t.Errorf("fault mix incomplete: transient=%v ratelimit=%v", sawTransient, sawRateLimit)
	}
	st := api.Stats()
	if st.Calls == 0 || st.Transients == 0 || st.RateLimits == 0 {
		t.Errorf("stats = %+v", st)
	}
	_ = cid
}

func TestOutageIsPermanentPerNetwork(t *testing.T) {
	g, u, cid := tinyGraph()
	api := Wrap(g, Config{Outages: []socialgraph.Network{socialgraph.Facebook}})
	if _, err := api.FetchUser(u, socialgraph.Facebook); err == nil {
		t.Fatal("facebook call succeeded during outage")
	} else if resilience.Retryable(err) {
		t.Error("outage error classified retryable")
	}
	if _, err := api.FetchContainer(cid, 0); err == nil {
		t.Fatal("container call succeeded during its network's outage")
	}
	if _, err := api.FetchUser(u, socialgraph.Twitter); err != nil {
		t.Errorf("twitter call failed outside the outage: %v", err)
	}
	if api.Stats().OutageFailures != 2 {
		t.Errorf("outage failures = %d, want 2", api.Stats().OutageFailures)
	}
}

func TestLatencyChargedToClock(t *testing.T) {
	g, u, _ := tinyGraph()
	clock := resilience.NewClock()
	api := Wrap(g, Config{Latency: 5 * time.Millisecond, Clock: clock})
	for i := 0; i < 4; i++ {
		if _, err := api.FetchUser(u, socialgraph.Facebook); err != nil {
			t.Fatal(err)
		}
	}
	if got := clock.Elapsed(); got != 20*time.Millisecond {
		t.Errorf("clock advanced %v, want 20ms", got)
	}
	if api.Stats().Latency != 20*time.Millisecond {
		t.Errorf("stats latency = %v", api.Stats().Latency)
	}
}

func TestFeedLimit(t *testing.T) {
	g, _, cid := tinyGraph()
	api := Wrap(g, Config{})
	view, err := api.FetchContainer(cid, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Feed) != 2 || view.Total != 3 {
		t.Errorf("feed = %d/%d, want 2/3", len(view.Feed), view.Total)
	}
	// The limit keeps the most recent (last) entries.
	all, _ := api.FetchContainer(cid, 0)
	if view.Feed[0].ID != all.Feed[1].ID || view.Feed[1].ID != all.Feed[2].ID {
		t.Error("limit did not keep the most recent entries")
	}
}

// TestGateStandalone exercises the graph-free injection core directly:
// a Gate must draw the same fault sequence as an Injector with the
// same seed, work without any graph, and honor outages for arbitrary
// call labels.
func TestGateStandalone(t *testing.T) {
	cfg := Config{Seed: 9, TransientRate: 0.3, RateLimitRate: 0.2}
	gate := NewGate(cfg)
	g, u, _ := tinyGraph()
	in := Wrap(g, cfg)

	const label = socialgraph.Network("loadgen")
	for i := 0; i < 200; i++ {
		gerr := gate.Call(label)
		_, ierr := in.FetchUser(u, socialgraph.Facebook)
		if (gerr == nil) != (ierr == nil) {
			t.Fatalf("call %d: gate err %v, injector err %v", i, gerr, ierr)
		}
		if gerr != nil {
			var ge, ie *APIError
			if !errors.As(gerr, &ge) || !errors.As(ierr, &ie) || ge.Kind != ie.Kind {
				t.Fatalf("call %d: gate %v vs injector %v", i, gerr, ierr)
			}
			if ge.Network != label {
				t.Fatalf("call %d: gate error network %q, want %q", i, ge.Network, label)
			}
		}
	}
	st := gate.Stats()
	if st.Calls != 200 || st.Transients == 0 || st.RateLimits == 0 {
		t.Fatalf("gate stats = %+v", st)
	}
}

func TestGateOutageAndLatency(t *testing.T) {
	clock := resilience.NewClock()
	const label = socialgraph.Network("chaos")
	gate := NewGate(Config{
		Seed:    1,
		Latency: 5 * time.Millisecond,
		Outages: []socialgraph.Network{label},
		Clock:   clock,
	})
	for i := 0; i < 4; i++ {
		err := gate.Call(label)
		var ae *APIError
		if !errors.As(err, &ae) || ae.Kind != Unavailable {
			t.Fatalf("call %d: err = %v, want Unavailable", i, err)
		}
	}
	if err := gate.Call("other"); err != nil {
		t.Fatalf("non-outage label failed: %v", err)
	}
	if got := clock.Elapsed(); got != 25*time.Millisecond {
		t.Fatalf("clock elapsed = %v, want 25ms", got)
	}
	if st := gate.Stats(); st.OutageFailures != 4 || st.Latency != 25*time.Millisecond {
		t.Fatalf("stats = %+v", st)
	}
}
