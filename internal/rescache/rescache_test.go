package rescache_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"expertfind"
	"expertfind/internal/core"
	"expertfind/internal/rescache"
	"expertfind/internal/resilience"
)

// scores builds a distinguishable ranking for a key.
func scores(n int) []core.ExpertScore {
	out := make([]core.ExpertScore, 1)
	out[0] = core.ExpertScore{User: 1, Score: float64(n), Resources: n}
	return out
}

// get runs one lookup, counting computes.
func get(t *testing.T, v *rescache.View, need string, n *int) core.CacheStatus {
	t.Helper()
	_, st := v.GetOrCompute(core.CacheKey{Need: need, Group: "g", Params: "p"}, func() []core.ExpertScore {
		*n++
		return scores(len(need))
	})
	return st
}

func TestLRUEvictionOrder(t *testing.T) {
	c := rescache.New(rescache.Options{Capacity: 3, Shards: 1})
	v := c.Attach()
	computes := 0

	for _, need := range []string{"a", "b", "c"} {
		if st := get(t, v, need, &computes); st != core.CacheMiss {
			t.Fatalf("first %q: status %q, want miss", need, st)
		}
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// Touch "a" so "b" becomes least recently used, then overflow.
	if st := get(t, v, "a", &computes); st != core.CacheHit {
		t.Fatalf("touch a: status %q, want hit", st)
	}
	if st := get(t, v, "d", &computes); st != core.CacheMiss {
		t.Fatalf("insert d: status %q, want miss", st)
	}
	if c.Len() != 3 {
		t.Fatalf("Len after eviction = %d, want 3", c.Len())
	}
	// "b" was evicted; "a", "c", "d" survive.
	if st := get(t, v, "b", &computes); st != core.CacheMiss {
		t.Fatalf("b after eviction: status %q, want miss", st)
	}
	for _, need := range []string{"a", "d"} {
		if st := get(t, v, need, &computes); st != core.CacheHit {
			t.Fatalf("%q after eviction: status %q, want hit", need, st)
		}
	}
	// a,b,c,d cold + b recomputed.
	if computes != 5 {
		t.Fatalf("computes = %d, want 5", computes)
	}
}

func TestTTLExpiryVirtualClock(t *testing.T) {
	clock := resilience.NewClock()
	c := rescache.New(rescache.Options{Capacity: 8, TTL: time.Minute, Clock: clock})
	v := c.Attach()
	computes := 0

	if st := get(t, v, "q", &computes); st != core.CacheMiss {
		t.Fatalf("cold: status %q, want miss", st)
	}
	clock.Sleep(30 * time.Second)
	if st := get(t, v, "q", &computes); st != core.CacheHit {
		t.Fatalf("within TTL: status %q, want hit", st)
	}
	clock.Sleep(31 * time.Second)
	if st := get(t, v, "q", &computes); st != core.CacheMiss {
		t.Fatalf("past TTL: status %q, want miss (expired)", st)
	}
	// The recompute refreshed the entry and its deadline.
	if st := get(t, v, "q", &computes); st != core.CacheHit {
		t.Fatalf("after refresh: status %q, want hit", st)
	}
	if computes != 2 {
		t.Fatalf("computes = %d, want 2", computes)
	}
}

func TestGenerationInvalidation(t *testing.T) {
	c := rescache.New(rescache.Options{Capacity: 8})
	v1 := c.Attach()
	computes := 0

	get(t, v1, "q", &computes)
	if st := get(t, v1, "q", &computes); st != core.CacheHit {
		t.Fatalf("gen1 reread: status %q, want hit", st)
	}

	v2 := c.Attach()
	if c.Len() != 0 {
		t.Fatalf("Len after re-attach = %d, want 0 (purged)", c.Len())
	}
	if st := get(t, v2, "q", &computes); st != core.CacheMiss {
		t.Fatalf("gen2 first read: status %q, want miss", st)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}

	// The stale view still answers (compute result) but can neither
	// read the new generation's entries nor store its own.
	for i := 0; i < 2; i++ {
		if st := get(t, v1, "q", &computes); st != core.CacheMiss {
			t.Fatalf("stale view read %d: status %q, want miss", i, st)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len after stale stores = %d, want 1 (stale store dropped)", c.Len())
	}
	if st := get(t, v2, "q", &computes); st != core.CacheHit {
		t.Fatalf("gen2 reread: status %q, want hit", st)
	}

	c.Invalidate()
	if c.Len() != 0 {
		t.Fatalf("Len after Invalidate = %d, want 0", c.Len())
	}
	if st := get(t, v2, "q", &computes); st != core.CacheMiss {
		t.Fatalf("view after Invalidate: status %q, want miss (inert)", st)
	}
	if c.Generation() != 3 {
		t.Fatalf("Generation = %d, want 3", c.Generation())
	}
}

// TestSingleflight gates the leader's compute so all followers must
// coalesce: exactly one scoring pass for ten concurrent identical
// queries.
func TestSingleflight(t *testing.T) {
	c := rescache.New(rescache.Options{Capacity: 8})
	v := c.Attach()
	key := core.CacheKey{Need: "q", Group: "g", Params: "p"}

	var (
		computes atomic.Int32
		started  = make(chan struct{})
		release  = make(chan struct{})
		entered  atomic.Int32
	)
	compute := func() []core.ExpertScore {
		computes.Add(1)
		close(started)
		<-release
		return scores(7)
	}

	statuses := make(chan core.CacheStatus, 10)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, st := v.GetOrCompute(key, compute)
		statuses <- st
	}()
	<-started // the leader is inside compute and holds the inflight slot

	for i := 0; i < 9; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			entered.Add(1)
			val, st := v.GetOrCompute(key, compute)
			if len(val) != 1 || val[0].Resources != 7 {
				t.Errorf("follower value %v, want leader's", val)
			}
			statuses <- st
		}()
	}
	// Wait until every follower is at most a few instructions from the
	// in-flight check, then give them time to block on it before the
	// leader is allowed to finish.
	for entered.Load() != 9 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	close(statuses)

	counts := map[core.CacheStatus]int{}
	for st := range statuses {
		counts[st]++
	}
	if computes.Load() != 1 {
		t.Fatalf("computes = %d, want 1", computes.Load())
	}
	if counts[core.CacheMiss] != 1 || counts[core.CacheCoalesced] != 9 {
		t.Fatalf("statuses = %v, want 1 miss + 9 coalesced", counts)
	}
}

// TestConcurrentStress exercises hits, misses, coalescing, eviction
// and generation churn under the race detector. Every returned value
// must match its key's compute, whichever path produced it.
func TestConcurrentStress(t *testing.T) {
	c := rescache.New(rescache.Options{Capacity: 16, Shards: 4})
	var view atomic.Pointer[rescache.View]
	view.Store(c.Attach())

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				n := (w*31 + i*7) % 24
				key := core.CacheKey{Need: fmt.Sprintf("need-%d", n), Group: "g", Params: "p"}
				val, _ := view.Load().GetOrCompute(key, func() []core.ExpertScore {
					return scores(n)
				})
				if len(val) != 1 || val[0].Resources != n {
					t.Errorf("key %d: got %v", n, val)
					return
				}
				// Mutating the returned slice must not corrupt the cache.
				val[0].Score = -1
				if w == 0 && i%100 == 99 {
					view.Store(c.Attach())
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("Len = %d exceeds capacity 16", c.Len())
	}
}

// TestColdCachedDifferential is the bit-identical-ranking proof: for
// every (seed, shard count, params variant, need), the cold ranking,
// the cache-filling miss, and the subsequent hit must serialize to
// identical bytes — and so must the same query across shard counts,
// preserving the sharded-scoring guarantee through the cache layer.
func TestColdCachedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("builds full systems")
	}
	needs := []string{
		"why is copper a good conductor?",
		"who is the best at freestyle swimming?",
		"can you list some famous songs of michael jackson?",
	}
	variants := []struct {
		name string
		opts []expertfind.FindOption
	}{
		{"defaults", nil},
		{"alpha0.3-window5", []expertfind.FindOption{expertfind.WithAlpha(0.3), expertfind.WithWindow(5)}},
		{"profiles-only", []expertfind.FindOption{expertfind.WithMaxDistance(0)}},
		{"weights", []expertfind.FindOption{expertfind.WithDistanceWeights(1, 0.5, 0.25)}},
	}
	for _, seed := range []int64{3, 11} {
		// ref[variant/need] is the shards=1 cold ranking; every other
		// configuration and cache path must reproduce it exactly.
		ref := map[string][]byte{}
		for _, shards := range []int{1, 3} {
			sys := expertfind.NewSystem(expertfind.Config{Seed: seed, Scale: 0.05, IndexShards: shards})
			cache := rescache.New(rescache.Options{Capacity: 64})

			for _, v := range variants {
				for _, need := range needs {
					id := fmt.Sprintf("%s/%s", v.name, need)
					sys.SetResultCache(nil)
					cold, err := sys.FindContext(context.Background(), need, v.opts...)
					if err != nil {
						t.Fatalf("seed %d shards %d %s: cold: %v", seed, shards, id, err)
					}
					coldJSON := mustJSON(t, cold)

					sys.SetResultCache(cache.Attach())
					miss, st, err := sys.FindCachedContext(context.Background(), need, v.opts...)
					if err != nil || st != "miss" {
						t.Fatalf("seed %d shards %d %s: fill: status %q err %v", seed, shards, id, st, err)
					}
					hit, st, err := sys.FindCachedContext(context.Background(), need, v.opts...)
					if err != nil || st != "hit" {
						t.Fatalf("seed %d shards %d %s: reread: status %q err %v", seed, shards, id, st, err)
					}
					if !bytes.Equal(coldJSON, mustJSON(t, miss)) {
						t.Errorf("seed %d shards %d %s: miss differs from cold", seed, shards, id)
					}
					if !bytes.Equal(coldJSON, mustJSON(t, hit)) {
						t.Errorf("seed %d shards %d %s: hit differs from cold", seed, shards, id)
					}
					if prev, ok := ref[id]; ok {
						if !bytes.Equal(prev, coldJSON) {
							t.Errorf("seed %d %s: shards %d ranking differs from shards 1", seed, id, shards)
						}
					} else {
						ref[id] = coldJSON
					}
				}
			}
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// TestTinyCapacityCollapsesShards guards the per-shard capacity math:
// a cache smaller than its shard count must still bound occupancy at
// the requested capacity.
func TestTinyCapacityCollapsesShards(t *testing.T) {
	c := rescache.New(rescache.Options{Capacity: 2, Shards: 8})
	v := c.Attach()
	computes := 0
	for _, need := range []string{"a", "b", "c", "d", "e"} {
		get(t, v, need, &computes)
	}
	if c.Len() > 2 {
		t.Fatalf("Len = %d, want <= 2", c.Len())
	}
}

// TestInvalidateMatchingScoped checks the scoped-invalidation
// contract: exactly the entries matching the predicate are dropped,
// untouched entries keep serving hits without recomputation, and the
// corpus generation does not move (surviving views stay attached).
func TestInvalidateMatchingScoped(t *testing.T) {
	c := rescache.New(rescache.Options{Capacity: 16, Shards: 4})
	v := c.Attach()
	computes := 0
	needs := []string{"alpha query", "beta query", "gamma query", "delta query"}
	for _, need := range needs {
		get(t, v, need, &computes)
	}
	gen := c.Generation()

	dropped := c.InvalidateMatching(func(k core.CacheKey) bool {
		return k.Need == "beta query" || k.Need == "delta query"
	})
	if dropped != 2 {
		t.Fatalf("dropped %d entries, want 2", dropped)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d after scoped drop, want 2", c.Len())
	}
	if c.Generation() != gen {
		t.Fatalf("generation moved %d -> %d; scoped invalidation must not advance it", gen, c.Generation())
	}

	computes = 0
	if st := get(t, v, "alpha query", &computes); st != core.CacheHit {
		t.Fatalf("untouched entry: %q, want hit", st)
	}
	if st := get(t, v, "gamma query", &computes); st != core.CacheHit {
		t.Fatalf("untouched entry: %q, want hit", st)
	}
	if computes != 0 {
		t.Fatalf("untouched entries recomputed %d times", computes)
	}
	if st := get(t, v, "beta query", &computes); st != core.CacheMiss {
		t.Fatalf("dropped entry: %q, want miss", st)
	}
	if computes != 1 {
		t.Fatalf("dropped entry computed %d times, want 1", computes)
	}
	// The recomputed entry is resident again.
	if st := get(t, v, "beta query", &computes); st != core.CacheHit {
		t.Fatalf("recomputed entry: %q, want hit", st)
	}
}

// TestInvalidateMatchingFencesInFlightStores checks the epoch fence: a
// leader that began computing before a scoped invalidation must not
// publish its (potentially pre-delta) result, even when the predicate
// matched nothing resident — the entry it would store was computed
// from state the invalidation declared stale.
func TestInvalidateMatchingFencesInFlightStores(t *testing.T) {
	c := rescache.New(rescache.Options{Capacity: 16, Shards: 1})
	v := c.Attach()
	key := core.CacheKey{Need: "fenced", Group: "g", Params: "p"}

	started := make(chan struct{})
	release := make(chan struct{})
	done := make(chan core.CacheStatus, 1)
	go func() {
		_, st := v.GetOrCompute(key, func() []core.ExpertScore {
			close(started)
			<-release
			return scores(1)
		})
		done <- st
	}()
	<-started
	if n := c.InvalidateMatching(func(core.CacheKey) bool { return false }); n != 0 {
		t.Fatalf("nothing was resident, yet %d entries dropped", n)
	}
	close(release)
	if st := <-done; st != core.CacheMiss {
		t.Fatalf("leader finished as %q, want miss", st)
	}

	// The leader's store must have been dropped: the next lookup is a
	// fresh miss, and its store (post-invalidation) sticks.
	computes := 0
	if st := get(t, v, "fenced", &computes); st != core.CacheMiss {
		t.Fatalf("post-fence lookup: %q, want miss (stale store must not publish)", st)
	}
	if st := get(t, v, "fenced", &computes); st != core.CacheHit {
		t.Fatalf("post-fence second lookup: %q, want hit", st)
	}
}
