// Package rescache is the query-result cache of the serving path: a
// bounded, sharded LRU+TTL cache over ranked Find results with
// singleflight request coalescing and generation-based invalidation.
//
// The paper's workload is read-dominated — the same expertise needs
// recur against a corpus that only changes on crawl or swap — so the
// hot serving path fronts core.Finder with this cache: repeated
// queries are answered from memory, and N concurrent identical
// queries cost exactly one scoring pass (the followers coalesce onto
// the leader's computation).
//
// Correctness rests on three properties:
//
//   - Keys are sound. A cache key combines the normalized need text,
//     the candidate-pool fingerprint, the Params fingerprint (every
//     knob that can change the ranking; see core.Params.Fingerprint)
//     and the corpus generation. Two queries with equal keys are
//     guaranteed byte-identical rankings, so a hit is
//     indistinguishable from a cold score — proven by the
//     differential tests in this package.
//
//   - Generations fence corpus swaps. Attach binds a view of the
//     cache to one corpus: it advances the generation counter, purges
//     the previous generation's entries, and pins the view to the new
//     generation. A view left over from a replaced corpus can still
//     read nothing (its generation's entries are purged) and can
//     never store (stores from non-current generations are dropped),
//     so a stale corpus cannot serve or poison rankings.
//
//   - Eviction is bounded and observable. Capacity is divided across
//     shards, each evicting least-recently-used entries past its
//     budget; TTL expiry runs lazily on lookup against a
//     resilience.Clock, so tests drive it virtually. Hits, misses,
//     coalesced waits, evictions, expirations and invalidations all
//     land in the telemetry registry.
package rescache

import (
	"container/list"
	"hash/fnv"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"expertfind/internal/core"
	"expertfind/internal/resilience"
	"expertfind/internal/telemetry"
)

// Cache metrics. The entries gauge tracks deltas, so several caches
// in one process sum to the true total.
var (
	mHits = telemetry.Default().Counter(
		"expertfind_rescache_hits_total",
		"Find queries answered from the result cache.")
	mMisses = telemetry.Default().Counter(
		"expertfind_rescache_misses_total",
		"Find queries that ran a scoring pass and filled the result cache.")
	mCoalesced = telemetry.Default().Counter(
		"expertfind_rescache_coalesced_total",
		"Find queries that waited on an identical in-flight query instead of scoring.")
	mEvictions = telemetry.Default().Counter(
		"expertfind_rescache_evictions_total",
		"Result-cache entries evicted by the LRU capacity bound.")
	mExpirations = telemetry.Default().Counter(
		"expertfind_rescache_expirations_total",
		"Result-cache entries dropped on lookup because their TTL had passed.")
	mInvalidations = telemetry.Default().Counter(
		"expertfind_rescache_invalidations_total",
		"Result-cache entries purged by a generation change (corpus build or swap).")
	mGenerations = telemetry.Default().Counter(
		"expertfind_rescache_generations_total",
		"Corpus generation advances observed by the result cache.")
	mScopedInvalidations = telemetry.Default().Counter(
		"expertfind_rescache_scoped_invalidations_total",
		"Scoped invalidation passes run against the result cache (ingest deltas).")
	mScopedDropped = telemetry.Default().Counter(
		"expertfind_rescache_scoped_dropped_total",
		"Result-cache entries dropped by scoped (predicate) invalidation.")
	mEntries = telemetry.Default().Gauge(
		"expertfind_rescache_entries",
		"Result-cache entries currently resident.")
)

// Options configures a Cache. The zero value selects the defaults
// noted per field.
type Options struct {
	// Capacity bounds the total entry count across all shards
	// (default 1024). The bound is enforced per shard (capacity is
	// split evenly), so worst-case occupancy never exceeds it.
	Capacity int
	// TTL expires entries this long after they were stored; 0 keeps
	// entries until evicted or invalidated.
	TTL time.Duration
	// Shards is the lock-striping factor, rounded up to a power of
	// two (default 8). More shards reduce contention between
	// concurrent distinct queries.
	Shards int
	// Clock is the TTL time source; nil selects real time. Tests pass
	// a virtual resilience.Clock to drive expiry deterministically,
	// and the simulated load harness shares its run clock here.
	Clock *resilience.Clock
}

// Cache is the sharded result cache. Construct with New; all methods
// are safe for concurrent use. A Cache is not used directly as a
// finder hook — Attach binds a generation-pinned View first.
type Cache struct {
	ttl   time.Duration
	clock *resilience.Clock
	gen   atomic.Uint64
	// epoch advances on every scoped invalidation. Leaders snapshot it
	// before computing and drop their store if it moved: a computation
	// that overlapped a delta may hold a pre-delta ranking, and unlike a
	// generation change the key namespace stays the same, so the store
	// itself must be fenced.
	epoch  atomic.Uint64
	shards []*shard
}

type shard struct {
	mu       sync.Mutex
	cap      int
	lru      *list.List // front = most recently used; holds *entry
	byKey    map[string]*list.Element
	inflight map[string]*call
}

type entry struct {
	key     string
	ckey    core.CacheKey // structured form, for scoped invalidation predicates
	val     []core.ExpertScore
	expires time.Time // zero when the cache has no TTL
}

// call is one in-flight computation; followers block on done and read
// val afterwards.
type call struct {
	done chan struct{}
	val  []core.ExpertScore
}

// New returns an empty cache. See Options for the defaults.
func New(opts Options) *Cache {
	if opts.Capacity <= 0 {
		opts.Capacity = 1024
	}
	nshards := 1
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	for nshards < opts.Shards {
		nshards <<= 1
	}
	if nshards > opts.Capacity {
		// Never let striping inflate per-shard capacity above the
		// requested total for tiny caches.
		nshards = 1
	}
	perShard := (opts.Capacity + nshards - 1) / nshards
	c := &Cache{ttl: opts.TTL, clock: opts.Clock, shards: make([]*shard, nshards)}
	for i := range c.shards {
		c.shards[i] = &shard{
			cap:      perShard,
			lru:      list.New(),
			byKey:    make(map[string]*list.Element),
			inflight: make(map[string]*call),
		}
	}
	return c
}

// View is a generation-pinned handle on a Cache, implementing
// core.ResultCache. Obtain one from Attach when installing a corpus;
// a View outliving its generation (because a newer corpus attached)
// keeps answering compute results but neither reads nor writes cache
// state, so it can never leak rankings across corpora.
type View struct {
	c   *Cache
	gen uint64
}

// Attach advances the cache to a new corpus generation: the previous
// generation's entries are purged and a View pinned to the new
// generation is returned, ready to install with
// core.Finder.SetResultCache. Call it exactly once per corpus build
// or swap.
func (c *Cache) Attach() *View {
	gen := c.gen.Add(1)
	mGenerations.Inc()
	c.purge()
	return &View{c: c, gen: gen}
}

// Invalidate advances the generation and purges all entries without
// attaching a corpus — the serving layer calls it when a corpus is
// removed (swap to not-ready), so any surviving views go inert.
func (c *Cache) Invalidate() {
	c.gen.Add(1)
	mGenerations.Inc()
	c.purge()
}

// InvalidateMatching drops the resident entries whose structured key
// matches pred and returns how many were dropped, without advancing
// the corpus generation: untouched entries keep serving hits across an
// ingest delta — the scoped alternative to the all-or-nothing purge of
// Attach/Invalidate. In-flight computations that began before the call
// have their stores dropped (they may hold pre-delta rankings), so a
// delta can never poison the cache through a slow leader. pred runs
// under shard locks and must not call back into the cache.
func (c *Cache) InvalidateMatching(pred func(core.CacheKey) bool) int {
	c.epoch.Add(1)
	mScopedInvalidations.Inc()
	dropped := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		var next *list.Element
		for el := sh.lru.Front(); el != nil; el = next {
			next = el.Next()
			if pred(el.Value.(*entry).ckey) {
				sh.removeLocked(el)
				dropped++
			}
		}
		sh.mu.Unlock()
	}
	if dropped > 0 {
		mScopedDropped.Add(float64(dropped))
	}
	return dropped
}

// Generation returns the current corpus generation.
func (c *Cache) Generation() uint64 { return c.gen.Load() }

// Len returns the resident entry count across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}

// purge drops every resident entry, counting them as invalidations.
func (c *Cache) purge() {
	for _, sh := range c.shards {
		sh.mu.Lock()
		n := sh.lru.Len()
		sh.lru.Init()
		clear(sh.byKey)
		sh.mu.Unlock()
		if n > 0 {
			mInvalidations.Add(float64(n))
			mEntries.Add(-float64(n))
		}
	}
}

// GetOrCompute implements core.ResultCache for the view's generation.
func (v *View) GetOrCompute(key core.CacheKey, compute func() []core.ExpertScore) ([]core.ExpertScore, core.CacheStatus) {
	return v.c.getOrCompute(v.gen, key, compute)
}

// keyString flattens (generation, key) into the map key, separated by
// 0x1f (unit separator). The generation, group and params components
// are system-generated and never contain 0x1f; the need — the only
// caller-controlled component — goes last, so a need embedding the
// separator can only extend its own component, never collide with a
// key built from different group or params values.
func keyString(gen uint64, key core.CacheKey) string {
	return strconv.FormatUint(gen, 10) + "\x1f" + key.Group + "\x1f" + key.Params + "\x1f" + key.Need
}

func (c *Cache) shard(k string) *shard {
	h := fnv.New32a()
	h.Write([]byte(k))
	return c.shards[int(h.Sum32())&(len(c.shards)-1)]
}

func (c *Cache) getOrCompute(gen uint64, key core.CacheKey, compute func() []core.ExpertScore) ([]core.ExpertScore, core.CacheStatus) {
	k := keyString(gen, key)
	sh := c.shard(k)

	sh.mu.Lock()
	if el, ok := sh.byKey[k]; ok {
		e := el.Value.(*entry)
		if c.ttl > 0 && c.clock.Now().After(e.expires) {
			sh.removeLocked(el)
			mExpirations.Inc()
		} else {
			sh.lru.MoveToFront(el)
			val := e.val
			sh.mu.Unlock()
			mHits.Inc()
			return cloneScores(val), core.CacheHit
		}
	}
	if cl, ok := sh.inflight[k]; ok {
		sh.mu.Unlock()
		<-cl.done
		mCoalesced.Inc()
		return cloneScores(cl.val), core.CacheCoalesced
	}
	cl := &call{done: make(chan struct{})}
	sh.inflight[k] = cl
	sh.mu.Unlock()
	epoch := c.epoch.Load()

	// The leader computes outside the shard lock, then publishes. The
	// deferred cleanup also runs if compute panics: followers then
	// observe a nil result while the panic propagates on the leader
	// (and, in the serving path, becomes its 500).
	defer func() {
		sh.mu.Lock()
		delete(sh.inflight, k)
		sh.mu.Unlock()
		close(cl.done)
	}()
	cl.val = compute()

	// Stores from a superseded generation are dropped: the entries
	// would be unreachable (lookups use the current generation) yet
	// would occupy capacity until evicted. The epoch re-check runs
	// under the shard lock so it orders against InvalidateMatching's
	// walk of the same shard: the entry is either present for the walk
	// to judge, or dropped here because the epoch already moved.
	if gen == c.gen.Load() {
		sh.mu.Lock()
		if _, ok := sh.byKey[k]; !ok && epoch == c.epoch.Load() {
			e := &entry{key: k, ckey: key, val: cloneScores(cl.val)}
			if c.ttl > 0 {
				e.expires = c.clock.Now().Add(c.ttl)
			}
			sh.byKey[k] = sh.lru.PushFront(e)
			mEntries.Inc()
			for sh.lru.Len() > sh.cap {
				sh.removeLocked(sh.lru.Back())
				mEvictions.Inc()
			}
		}
		sh.mu.Unlock()
	}
	mMisses.Inc()
	return cl.val, core.CacheMiss
}

// removeLocked unlinks an entry; the caller holds the shard lock and
// accounts the reason (eviction, expiration) itself.
func (sh *shard) removeLocked(el *list.Element) {
	e := sh.lru.Remove(el).(*entry)
	delete(sh.byKey, e.key)
	mEntries.Dec()
}

// cloneScores copies a ranking so callers can truncate or reslice
// their result without aliasing the cached value (ExpertScore is a
// value type; a shallow copy fully detaches).
func cloneScores(s []core.ExpertScore) []core.ExpertScore {
	if s == nil {
		return nil
	}
	out := make([]core.ExpertScore, len(s))
	copy(out, s)
	return out
}
