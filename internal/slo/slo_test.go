package slo

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fixedClock is an injectable clock advanced manually by tests.
type fixedClock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *fixedClock {
	return &fixedClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fixedClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fixedClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBurnRatesHealthy(t *testing.T) {
	clk := newClock()
	tr := New(Config{Availability: 0.99, Latency: 100 * time.Millisecond, LatencyTarget: 0.9, Now: clk.Now})
	for i := 0; i < 100; i++ {
		tr.Observe(200, 5*time.Millisecond)
	}
	avail, lat := tr.BurnRates()
	if avail != 0 || lat != 0 {
		t.Fatalf("healthy burn rates = %v, %v, want 0, 0", avail, lat)
	}
}

func TestAvailabilityBurnRate(t *testing.T) {
	clk := newClock()
	// 1% error budget; 10% observed errors → burn rate 10.
	tr := New(Config{Availability: 0.99, Now: clk.Now})
	for i := 0; i < 90; i++ {
		tr.Observe(200, time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		tr.Observe(503, time.Millisecond)
	}
	avail, _ := tr.BurnRates()
	if avail < 9.99 || avail > 10.01 {
		t.Fatalf("availability burn = %v, want 10", avail)
	}
}

func TestLatencyBurnRate(t *testing.T) {
	clk := newClock()
	// 10% latency budget; half of successes slow → burn rate 5.
	tr := New(Config{Latency: 100 * time.Millisecond, LatencyTarget: 0.9, Now: clk.Now})
	for i := 0; i < 10; i++ {
		tr.Observe(200, time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		tr.Observe(200, 200*time.Millisecond)
	}
	_, lat := tr.BurnRates()
	if lat < 4.99 || lat > 5.01 {
		t.Fatalf("latency burn = %v, want 5", lat)
	}
	// 5xx requests must not count toward (or against) latency budget.
	tr.Observe(500, time.Hour)
	_, lat2 := tr.BurnRates()
	if lat2 != lat {
		t.Fatalf("5xx moved latency burn: %v -> %v", lat, lat2)
	}
}

func TestWindowExpiry(t *testing.T) {
	clk := newClock()
	tr := New(Config{Availability: 0.99, Window: 3 * time.Second, Now: clk.Now})
	for i := 0; i < 50; i++ {
		tr.Observe(500, time.Millisecond)
	}
	if avail, _ := tr.BurnRates(); avail == 0 {
		t.Fatal("errors not reflected in burn rate")
	}
	// Advance past the window; the bad second expires and the new
	// healthy traffic is all that remains.
	clk.Advance(5 * time.Second)
	tr.Observe(200, time.Millisecond)
	if avail, _ := tr.BurnRates(); avail != 0 {
		t.Fatalf("burn rate %v after window expiry, want 0", avail)
	}
}

// TestExactlyOneCapture is the rate-limiting contract: a sustained
// breach storm produces exactly one profile capture per interval.
func TestExactlyOneCapture(t *testing.T) {
	clk := newClock()
	var captures atomic.Int64
	tr := New(Config{
		Availability:    0.999,
		BurnAlert:       2,
		MinSamples:      10,
		CaptureInterval: 10 * time.Minute,
		Now:             clk.Now,
		Capture: func(kind string, burn float64) error {
			captures.Add(1)
			return nil
		},
	})
	for i := 0; i < 500; i++ { // sustained 100% error rate
		tr.Observe(503, time.Millisecond)
	}
	waitFor(t, func() bool { return captures.Load() == 1 })
	if got := captures.Load(); got != 1 {
		t.Fatalf("captures = %d, want exactly 1", got)
	}

	// After the interval elapses the next breach may capture again.
	clk.Advance(11 * time.Minute)
	for i := 0; i < 50; i++ {
		tr.Observe(503, time.Millisecond)
	}
	waitFor(t, func() bool { return captures.Load() == 2 })
	if got := captures.Load(); got != 2 {
		t.Fatalf("captures after interval = %d, want 2", got)
	}
}

func TestNoCaptureBelowMinSamples(t *testing.T) {
	clk := newClock()
	var captures atomic.Int64
	tr := New(Config{
		BurnAlert:  2,
		MinSamples: 100,
		Now:        clk.Now,
		Capture: func(string, float64) error {
			captures.Add(1)
			return nil
		},
	})
	for i := 0; i < 99; i++ { // all errors, but below the sample floor
		tr.Observe(500, time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	if got := captures.Load(); got != 0 {
		t.Fatalf("captured %d times below MinSamples", got)
	}
}

func TestNoCaptureWhenDisabled(t *testing.T) {
	clk := newClock()
	// No ProfileDir and no Capture override: tracking only.
	tr := New(Config{BurnAlert: 1, MinSamples: 1, Now: clk.Now})
	before := Captures()
	for i := 0; i < 50; i++ {
		tr.Observe(500, time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	if got := Captures(); got != before {
		t.Fatalf("capture counter moved (%v -> %v) with capturing disabled", before, got)
	}
}

func TestNilTrackerIsNoop(t *testing.T) {
	var tr *Tracker
	tr.Observe(500, time.Second) // must not panic
	if a, l := tr.BurnRates(); a != 0 || l != 0 {
		t.Fatalf("nil tracker burn rates = %v, %v", a, l)
	}
}

func TestConcurrentObserve(t *testing.T) {
	clk := newClock()
	tr := New(Config{Now: clk.Now})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Observe(200, time.Millisecond)
				tr.BurnRates()
			}
		}()
	}
	wg.Wait()
	if avail, lat := tr.BurnRates(); avail != 0 || lat != 0 {
		t.Fatalf("burn rates = %v, %v after healthy traffic", avail, lat)
	}
}

// waitFor polls for an async condition (the capture runs in a
// goroutine) with a bounded deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	if !cond() {
		t.Fatal("condition not reached within deadline")
	}
}
