// Package slo measures the serving layer against explicit service
// level objectives and turns violations into evidence.
//
// Two SLOs are tracked over a sliding window of per-second buckets:
//
//   - availability: the fraction of requests answered without a 5xx
//     (load shed and timeouts count against the budget — to a caller
//     they are outages, whatever the server's reason);
//   - latency: the fraction of successful requests answered under the
//     latency objective.
//
// For each, the tracker publishes a burn rate — how fast the error
// budget is being consumed relative to its sustainable pace, the
// multi-window alerting currency of SRE practice: 1.0 means exactly
// on budget, N means the budget burns N× too fast. When a burn rate
// crosses the alert threshold with enough samples in the window, the
// tracker captures pprof heap and CPU snapshots to disk (rate-limited
// to one capture per interval) so an SLO page arrives with the
// profile of the process that violated it, not just a graph.
//
// Metrics (see OPERATIONS.md): expertfind_slo_requests_total,
// expertfind_slo_availability_errors_total,
// expertfind_slo_latency_breaches_total,
// expertfind_slo_burn_rate{slo}, expertfind_slo_objective{slo},
// expertfind_slo_pprof_captures_total.
package slo

import (
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"expertfind/internal/telemetry"
)

var (
	mRequests = telemetry.Default().Counter(
		"expertfind_slo_requests_total",
		"Requests observed by the SLO tracker (/v1 routes).")
	mErrors = telemetry.Default().Counter(
		"expertfind_slo_availability_errors_total",
		"Requests that burned availability budget (5xx, shed, timeout).")
	mSlow = telemetry.Default().Counter(
		"expertfind_slo_latency_breaches_total",
		"Successful requests slower than the latency objective.")
	mBurn = telemetry.Default().GaugeVec(
		"expertfind_slo_burn_rate",
		"Error-budget burn rate over the sliding window (1 = exactly on budget, N = burning N× too fast).",
		"slo")
	mObjective = telemetry.Default().GaugeVec(
		"expertfind_slo_objective",
		"Configured objective, as a target success ratio per SLO.",
		"slo")
	mCaptures = telemetry.Default().Counter(
		"expertfind_slo_pprof_captures_total",
		"pprof heap+CPU snapshots captured on SLO burn-rate breaches (rate-limited).")
)

// Config parameterizes a Tracker. Zero values select the documented
// defaults.
type Config struct {
	// Availability is the target non-5xx ratio. 0 selects 0.999.
	Availability float64
	// Latency is the latency objective: successful requests slower
	// than this burn latency budget. 0 selects 500ms.
	Latency time.Duration
	// LatencyTarget is the target under-objective ratio among
	// successful requests. 0 selects 0.99.
	LatencyTarget float64
	// Window is the sliding burn-rate window. 0 selects 5m; capped to
	// [1s, 1h].
	Window time.Duration
	// BurnAlert is the burn rate that triggers the on-breach capture.
	// 0 selects 4 (a fast burn: the whole window's budget spent 4×
	// too fast).
	BurnAlert float64
	// MinSamples is how many requests the window needs before a burn
	// rate is trusted enough to alert. 0 selects 20.
	MinSamples int
	// ProfileDir is where breach captures are written; "" disables
	// capturing (burn rates are still tracked and exported).
	ProfileDir string
	// CaptureInterval rate-limits captures: at most one per interval,
	// however long the breach lasts. 0 selects 10m.
	CaptureInterval time.Duration
	// CPUProfileDuration is how long the breach CPU profile runs.
	// 0 selects 250ms.
	CPUProfileDuration time.Duration
	// Logger records breaches and capture outcomes; nil silences them.
	Logger *slog.Logger

	// Now overrides the clock (tests). Nil selects time.Now.
	Now func() time.Time
	// Capture overrides the profile writer (tests). Nil selects the
	// pprof heap+CPU capture into ProfileDir.
	Capture func(kind string, burn float64) error
}

func (c Config) withDefaults() Config {
	if c.Availability <= 0 || c.Availability >= 1 {
		c.Availability = 0.999
	}
	if c.Latency <= 0 {
		c.Latency = 500 * time.Millisecond
	}
	if c.LatencyTarget <= 0 || c.LatencyTarget >= 1 {
		c.LatencyTarget = 0.99
	}
	if c.Window <= 0 {
		c.Window = 5 * time.Minute
	}
	if c.Window < time.Second {
		c.Window = time.Second
	}
	if c.Window > time.Hour {
		c.Window = time.Hour
	}
	if c.BurnAlert <= 0 {
		c.BurnAlert = 4
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 20
	}
	if c.CaptureInterval <= 0 {
		c.CaptureInterval = 10 * time.Minute
	}
	if c.CPUProfileDuration <= 0 {
		c.CPUProfileDuration = 250 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// bucket accumulates one second of observations.
type bucket struct {
	sec    int64
	total  int64
	errors int64
	ok     int64
	slow   int64
}

// Tracker tracks the SLOs of one process. Safe for concurrent use.
type Tracker struct {
	cfg       Config
	captureOn bool

	mu      sync.Mutex
	buckets []bucket
	lastSec int64
	// running window sums, maintained as buckets expire
	total, errors, ok, slow int64
	lastCapture             time.Time
	captured                bool
}

// New builds a tracker and publishes the configured objectives.
func New(cfg Config) *Tracker {
	captureOn := cfg.ProfileDir != "" || cfg.Capture != nil
	cfg = cfg.withDefaults()
	t := &Tracker{
		cfg:       cfg,
		captureOn: captureOn,
		buckets:   make([]bucket, int(cfg.Window/time.Second)),
	}
	if cfg.Capture == nil {
		cfg := cfg // capture the defaulted copy
		t.cfg.Capture = func(kind string, burn float64) error {
			return captureProfiles(cfg, kind)
		}
	}
	mObjective.With("availability").Set(cfg.Availability)
	mObjective.With("latency").Set(cfg.LatencyTarget)
	return t
}

// Latency returns the configured latency objective (the serving layer
// reuses it as the tracer's slow-trace keep threshold).
func (t *Tracker) Latency() time.Duration { return t.cfg.Latency }

// Observe records one served request: its status code and wall time.
// The serving layer calls it for every /v1 request.
func (t *Tracker) Observe(status int, dur time.Duration) {
	if t == nil {
		return
	}
	now := t.cfg.Now()
	bad := status >= 500
	slow := !bad && dur > t.cfg.Latency

	mRequests.Inc()
	if bad {
		mErrors.Inc()
	}
	if slow {
		mSlow.Inc()
	}

	t.mu.Lock()
	t.advance(now.Unix())
	b := &t.buckets[int(now.Unix())%len(t.buckets)]
	b.total++
	t.total++
	if bad {
		b.errors++
		t.errors++
	} else {
		b.ok++
		t.ok++
		if slow {
			b.slow++
			t.slow++
		}
	}
	availBurn, latBurn := t.burnLocked()
	breach := ""
	worst := 0.0
	if t.total >= int64(t.cfg.MinSamples) {
		if availBurn >= t.cfg.BurnAlert {
			breach, worst = "availability", availBurn
		} else if latBurn >= t.cfg.BurnAlert {
			breach, worst = "latency", latBurn
		}
	}
	capture := false
	if breach != "" && t.captureOn {
		if !t.captured || now.Sub(t.lastCapture) >= t.cfg.CaptureInterval {
			t.captured = true
			t.lastCapture = now
			capture = true
		}
	}
	t.mu.Unlock()

	mBurn.With("availability").Set(availBurn)
	mBurn.With("latency").Set(latBurn)

	if capture {
		mCaptures.Inc()
		if l := t.cfg.Logger; l != nil {
			l.Warn("slo burn-rate breach", "slo", breach, "burn_rate", worst,
				"window", t.cfg.Window.String(), "profile_dir", t.cfg.ProfileDir)
		}
		go func() {
			if err := t.cfg.Capture(breach, worst); err != nil && t.cfg.Logger != nil {
				t.cfg.Logger.Error("slo profile capture failed", "err", err.Error())
			}
		}()
	}
}

// advance expires buckets between the last observed second and now,
// subtracting them from the running window sums.
func (t *Tracker) advance(sec int64) {
	if t.lastSec == 0 {
		t.lastSec = sec
		b := &t.buckets[int(sec)%len(t.buckets)]
		*b = bucket{sec: sec}
		return
	}
	if sec <= t.lastSec {
		return // same second (or a clock step back: keep accumulating)
	}
	steps := sec - t.lastSec
	if steps > int64(len(t.buckets)) {
		steps = int64(len(t.buckets))
	}
	for i := int64(1); i <= steps; i++ {
		b := &t.buckets[int(t.lastSec+i)%len(t.buckets)]
		t.total -= b.total
		t.errors -= b.errors
		t.ok -= b.ok
		t.slow -= b.slow
		*b = bucket{sec: t.lastSec + i}
	}
	t.lastSec = sec
}

// burnLocked computes the two burn rates from the window sums.
func (t *Tracker) burnLocked() (avail, lat float64) {
	if t.total > 0 {
		badRatio := float64(t.errors) / float64(t.total)
		avail = badRatio / (1 - t.cfg.Availability)
	}
	if t.ok > 0 {
		slowRatio := float64(t.slow) / float64(t.ok)
		lat = slowRatio / (1 - t.cfg.LatencyTarget)
	}
	return avail, lat
}

// BurnRates returns the current window's burn rates (availability,
// latency).
func (t *Tracker) BurnRates() (avail, lat float64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.burnLocked()
}

// Captures returns the process-wide count of breach captures.
func Captures() float64 { return mCaptures.Value() }

// captureProfiles writes a heap snapshot immediately and then a short
// CPU profile into cfg.ProfileDir, named after the breached SLO and
// the capture time.
func captureProfiles(cfg Config, kind string) error {
	if cfg.ProfileDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.ProfileDir, 0o755); err != nil {
		return err
	}
	stamp := cfg.Now().UTC().Format("20060102T150405")
	prefix := filepath.Join(cfg.ProfileDir, fmt.Sprintf("slo-%s-%s", kind, stamp))

	hf, err := os.Create(prefix + ".heap.pprof")
	if err != nil {
		return err
	}
	herr := pprof.Lookup("heap").WriteTo(hf, 0)
	if cerr := hf.Close(); herr == nil {
		herr = cerr
	}

	cf, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return herr
	}
	// Only one CPU profile can run per process; a concurrent profiler
	// (an operator on /debug/pprof/profile) wins and we keep the heap
	// snapshot.
	if err := pprof.StartCPUProfile(cf); err != nil {
		cf.Close()
		os.Remove(prefix + ".cpu.pprof")
		return herr
	}
	time.Sleep(cfg.CPUProfileDuration)
	pprof.StopCPUProfile()
	if cerr := cf.Close(); herr == nil {
		herr = cerr
	}
	return herr
}
