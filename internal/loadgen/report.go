package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema identifies the BENCH report format; bump on breaking layout
// changes so CI comparisons fail loudly instead of misreading fields.
const Schema = "expertfind/bench/v1"

// Percentiles are latency quantiles in seconds.
type Percentiles struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
}

// PhaseResult is one phase's aggregate outcome.
type PhaseResult struct {
	Name string `json:"name"`
	// Mode is "closed" (fixed concurrency) or "open" (target QPS).
	Mode        string  `json:"mode"`
	Concurrency int     `json:"concurrency,omitempty"`
	TargetQPS   float64 `json:"target_qps,omitempty"`
	Chaos       bool    `json:"chaos,omitempty"`
	Requests    uint64  `json:"requests"`
	// Errors maps taxonomy classes (shed, timeout, 4xx, 5xx,
	// transport, injected) to counts; successes are Requests minus the
	// sum. Only nonzero classes appear.
	Errors map[string]uint64 `json:"errors,omitempty"`
	// Cache maps result-cache dispositions (hit, miss, coalesced) to
	// counts. Omitted entirely for uncached phases, so reports from
	// runs without -cache-size stay byte-identical to pre-cache ones.
	Cache map[string]uint64 `json:"cache,omitempty"`
	// Index maps index-evaluation counters (pruned_docs,
	// blocks_skipped) to the amount accumulated during the phase.
	// Only the top-k head-to-head scenario records it.
	Index           map[string]uint64 `json:"index,omitempty"`
	DurationSeconds float64           `json:"duration_seconds"`
	QPS             float64           `json:"qps"`
	Latency         Percentiles       `json:"latency_seconds"`
}

// ErrorCount sums the phase's failures across all classes.
func (p PhaseResult) ErrorCount() uint64 {
	var n uint64
	for _, v := range p.Errors {
		n += v
	}
	return n
}

// CorpusInfo pins the corpus configuration a run measured, so CI
// never diffs runs over different data.
type CorpusInfo struct {
	Seed       int64   `json:"seed"`
	Scale      float64 `json:"scale"`
	Candidates int     `json:"candidates,omitempty"`
	Documents  int     `json:"documents,omitempty"`
}

// DriverReport is one driver's phase results.
type DriverReport struct {
	// Driver is "inprocess" (core.Finder) or "http" (/v1/find).
	Driver string        `json:"driver"`
	Phases []PhaseResult `json:"phases"`
}

// Phase returns the named phase, or nil.
func (d *DriverReport) Phase(name string) *PhaseResult {
	for i := range d.Phases {
		if d.Phases[i].Name == name {
			return &d.Phases[i]
		}
	}
	return nil
}

// Report is the machine-readable BENCH_4.json payload. With Mode
// "sim", everything except the stamp fields (GitRev, GeneratedAt) is
// byte-identical across runs with the same seed; CI strips the stamps
// and diffs the rest.
type Report struct {
	Schema string `json:"schema"`
	Bench  int    `json:"bench"`
	// GitRev and GeneratedAt are provenance stamps, excluded from
	// determinism comparisons; the harness omits them with -stamp=false.
	GitRev      string         `json:"git_rev,omitempty"`
	GeneratedAt string         `json:"generated_at,omitempty"`
	Mode        string         `json:"mode"` // "sim" or "real"
	Seed        int64          `json:"seed"`
	Corpus      CorpusInfo     `json:"corpus"`
	Drivers     []DriverReport `json:"drivers"`
}

// Driver returns the named driver's report, or nil.
func (r *Report) Driver(name string) *DriverReport {
	for i := range r.Drivers {
		if r.Drivers[i].Driver == name {
			return &r.Drivers[i]
		}
	}
	return nil
}

// Stripped returns a copy with the provenance stamps cleared — the
// canonical form for determinism diffs.
func (r Report) Stripped() Report {
	r.GitRev = ""
	r.GeneratedAt = ""
	return r
}

// Marshal renders the report as stable, indented JSON (struct field
// order is fixed; the error maps marshal with sorted keys).
func (r *Report) Marshal() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	b, err := r.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// ReadReport loads and validates a BENCH report.
func ReadReport(path string) (*Report, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("loadgen: %s: schema %q, want %q", path, r.Schema, Schema)
	}
	return &r, nil
}

// GatePhase is the phase the SLO regression gate inspects.
const GatePhase = "steady"

// Compare gates cur against base: for every driver present in both,
// the steady-phase p95 may not regress by more than maxRegress
// (fractional, e.g. 0.20) and throughput may not drop by more than
// the same fraction. It returns all violations, not just the first,
// so one CI run surfaces the full picture.
func Compare(base, cur *Report, maxRegress float64) []error {
	if maxRegress <= 0 {
		maxRegress = 0.20
	}
	var errs []error
	if base.Corpus != cur.Corpus {
		errs = append(errs, fmt.Errorf("corpus mismatch: baseline %+v vs current %+v (not comparable)", base.Corpus, cur.Corpus))
		return errs
	}
	for i := range base.Drivers {
		bd := &base.Drivers[i]
		cd := cur.Driver(bd.Driver)
		if cd == nil {
			errs = append(errs, fmt.Errorf("driver %q present in baseline but missing from current run", bd.Driver))
			continue
		}
		bp, cp := bd.Phase(GatePhase), cd.Phase(GatePhase)
		if bp == nil || cp == nil {
			continue
		}
		if bp.Latency.P95 > 0 {
			ratio := cp.Latency.P95 / bp.Latency.P95
			if ratio > 1+maxRegress {
				errs = append(errs, fmt.Errorf(
					"driver %s: steady p95 regressed %.1f%% (%.6fs -> %.6fs, limit %.0f%%)",
					bd.Driver, (ratio-1)*100, bp.Latency.P95, cp.Latency.P95, maxRegress*100))
			}
		}
		if bp.QPS > 0 {
			ratio := cp.QPS / bp.QPS
			if ratio < 1-maxRegress {
				errs = append(errs, fmt.Errorf(
					"driver %s: steady throughput dropped %.1f%% (%.1f -> %.1f qps, limit %.0f%%)",
					bd.Driver, (1-ratio)*100, bp.QPS, cp.QPS, maxRegress*100))
			}
		}
	}
	return errs
}
