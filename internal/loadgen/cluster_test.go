package loadgen

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestScatterClusterChaos runs the real-process chaos scenario:
// build the serve and coordinator binaries, boot a 2-shard topology,
// SIGKILL one shard mid-life, verify queries degrade to partial
// results instead of failing, restart the shard, and verify full
// recovery. Under -race the children are race-instrumented too.
func TestScatterClusterChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and corpus slices")
	}
	serveBin, coordBin, err := BuildScatterBinaries(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cl, err := StartScatter(ScatterConfig{
		ServeBin:   serveBin,
		CoordBin:   coordBin,
		Shards:     2,
		CorpusSeed: 1,
		Scale:      0.05,
		// One scoring goroutine per shard process keeps the tiny
		// corpus cheap; scoring parallelism never changes result bytes.
		IndexShards: 1,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	get := func(path string) (*http.Response, string) {
		t.Helper()
		resp, err := http.Get(cl.CoordinatorURL() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return resp, string(body)
	}
	const need = "/v1/find?q=database+systems&top=3"

	resp, body := get(need)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy find: %d %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Expertfind-Degraded"); h != "" {
		t.Fatalf("healthy topology sent degraded header %q", h)
	}
	healthyBody := body

	if v, ok, err := cl.Metric("expertfind_scatter_shards_down"); err != nil || !ok || v != 0 {
		t.Errorf("shards_down = %v, %v, %v; want 0, true, nil", v, ok, err)
	}

	if err := cl.KillShard(1); err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitCoordinator("degraded", 15*time.Second); err != nil {
		t.Fatal(err)
	}
	resp, body = get(need)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded find: %d %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Expertfind-Degraded"); h != "shards=1/2" {
		t.Errorf("degraded header = %q, want shards=1/2", h)
	}
	if !strings.Contains(body, `"degraded":{"shards_down":1,"shards_total":2}`) {
		t.Errorf("degraded body missing marker: %s", body)
	}
	if v, ok, err := cl.Metric("expertfind_scatter_degraded_queries_total"); err != nil || !ok || v < 1 {
		t.Errorf("degraded_queries_total = %v, %v, %v; want >= 1", v, ok, err)
	}

	if err := cl.RestartShard(1); err != nil {
		t.Fatal(err)
	}
	if err := cl.WaitCoordinator("ready", 15*time.Second); err != nil {
		t.Fatal(err)
	}
	// The shard's breaker may still be open for one cooldown after the
	// restart; poll until a find comes back whole again.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, body = get(need)
		if resp.StatusCode == http.StatusOK && resp.Header.Get("X-Expertfind-Degraded") == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("find never recovered: %d %q %s", resp.StatusCode, resp.Header.Get("X-Expertfind-Degraded"), body)
		}
		time.Sleep(100 * time.Millisecond)
	}
	if body != healthyBody {
		t.Errorf("recovered response diverged from pre-kill response:\n before: %s\n after:  %s", healthyBody, body)
	}

	// Double kill is an error, as is closing twice a no-op.
	if err := cl.KillShard(1); err != nil {
		t.Fatal(err)
	}
	if err := cl.KillShard(1); err == nil {
		t.Error("second kill of the same shard succeeded")
	}
	cl.Close()
	cl.Close()
}
