package loadgen

import (
	"testing"

	"expertfind/internal/rescache"
	"expertfind/internal/resilience"
)

// TestCachedPhase mirrors the harness's cached-steady phase: same
// request stream, result cache attached, simulated latency discounted
// on hits. The Zipf-skewed workload must produce a hit-dominated
// phase whose tail beats the uncached one.
func TestCachedPhase(t *testing.T) {
	sys := testSystem(t)
	clock := resilience.NewClock()
	runner := NewRunner(Config{
		Clock:    clock,
		Workload: NewWorkload(WorkloadConfig{Seed: 11}, SystemSource(sys)),
		Target:   NewFinderTarget(sys, 5),
		Model:    DefaultSimModel(11),
	})

	steady := runner.Run(Phase{Name: "steady", Requests: 300, Concurrency: 4})[0]
	if steady.Cache != nil {
		t.Fatalf("uncached phase carries cache counts %v", steady.Cache)
	}

	cache := rescache.New(rescache.Options{Capacity: 512, Clock: clock})
	sys.SetResultCache(cache.Attach())
	defer sys.SetResultCache(nil)
	cached := runner.Run(Phase{Name: "cached-steady", Requests: 300, Concurrency: 1})[0]

	hits, misses := cached.Cache["hit"], cached.Cache["miss"]
	if hits == 0 || misses == 0 {
		t.Fatalf("cache counts %v, want both hits and misses", cached.Cache)
	}
	if hits+misses != cached.Requests {
		t.Fatalf("cache counts %v do not sum to %d requests", cached.Cache, cached.Requests)
	}
	if hits < misses {
		t.Errorf("hits %d < misses %d: Zipf skew should repeat needs", hits, misses)
	}
	if cached.Latency.P95 >= steady.Latency.P95 {
		t.Errorf("cached p95 %.6fs not better than steady %.6fs", cached.Latency.P95, steady.Latency.P95)
	}
}
