package loadgen

import (
	"bytes"
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"expertfind/internal/resilience"
)

// echoTarget is a deterministic in-memory target whose response size
// depends only on the need, with scripted failure needs.
func echoTarget() Target {
	return TargetFunc(func(ctx context.Context, need string) Result {
		return Result{Class: ClassOK, Bytes: len(need)}
	})
}

func simRunner(seed int64, chaos ChaosConfig) *Runner {
	clock := resilience.NewClock()
	w := NewWorkload(WorkloadConfig{Seed: seed}, testSource())
	return NewRunner(Config{
		Clock:    clock,
		Workload: w,
		Target:   echoTarget(),
		Model:    DefaultSimModel(seed),
		Chaos:    NewChaosGate(chaos, clock),
	})
}

// simPhases is the CLI's sim shape in miniature.
func simPhases() []Phase {
	return []Phase{
		{Name: "warmup", Requests: 40, Concurrency: 4},
		{Name: "ramp", Requests: 40, Concurrency: 8},
		{Name: "steady", Requests: 200, Concurrency: 8},
		{Name: "open-steady", Requests: 100, QPS: 500},
	}
}

func runSim(seed int64) []byte {
	r := simRunner(seed, ChaosConfig{Seed: seed})
	rep := &Report{
		Schema: Schema, Bench: 4, Mode: "sim", Seed: seed,
		Corpus:  CorpusInfo{Seed: 7, Scale: 0.1},
		Drivers: []DriverReport{{Driver: "inprocess", Phases: r.Run(simPhases()...)}},
	}
	b, err := rep.Marshal()
	if err != nil {
		panic(err)
	}
	return b
}

// The acceptance criterion: same seed, same report bytes — despite 8
// racing workers per closed-loop phase.
func TestSimDeterministicAcrossRuns(t *testing.T) {
	a, b := runSim(11), runSim(11)
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed sim reports differ:\n%s\n----\n%s", a, b)
	}
	if c := runSim(12); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical reports")
	}
}

func TestSimPhaseResults(t *testing.T) {
	r := simRunner(3, ChaosConfig{})
	results := r.Run(simPhases()...)
	if len(results) != 4 {
		t.Fatalf("phases = %d", len(results))
	}
	for _, pr := range results {
		if pr.Requests == 0 || pr.QPS <= 0 || pr.DurationSeconds <= 0 {
			t.Errorf("phase %s: empty result %+v", pr.Name, pr)
		}
		if pr.Latency.P50 <= 0 || pr.Latency.P95 < pr.Latency.P50 || pr.Latency.P999 < pr.Latency.P99 {
			t.Errorf("phase %s: non-monotone percentiles %+v", pr.Name, pr.Latency)
		}
		if n := pr.ErrorCount(); n != 0 {
			t.Errorf("phase %s: unexpected errors %v", pr.Name, pr.Errors)
		}
	}
	if results[2].Name != "steady" || results[2].Mode != "closed" || results[2].Concurrency != 8 {
		t.Errorf("steady phase metadata: %+v", results[2])
	}
	if results[3].Mode != "open" || results[3].TargetQPS != 500 {
		t.Errorf("open phase metadata: %+v", results[3])
	}
	// Open-loop sim duration is the scheduled span: 100 req @ 500 qps.
	if got := results[3].DurationSeconds; got < 0.19 || got > 0.21 {
		t.Errorf("open-loop duration = %v, want 0.2", got)
	}
}

// Phases share one sequence space: a run split 40+60 issues the same
// needs as a run of one 100-request phase.
func TestPhasesShareSequenceSpace(t *testing.T) {
	w := NewWorkload(WorkloadConfig{Seed: 5}, testSource())
	var mu sync.Mutex
	seen := []string{}
	collect := TargetFunc(func(ctx context.Context, need string) Result {
		mu.Lock()
		seen = append(seen, need)
		mu.Unlock()
		return Result{Class: ClassOK, Bytes: 1}
	})
	mk := func() *Runner {
		return NewRunner(Config{Clock: resilience.NewClock(), Workload: w, Target: collect, Model: func(uint64, Result) time.Duration { return time.Millisecond }})
	}
	mk().Run(Phase{Name: "a", Requests: 40}, Phase{Name: "b", Requests: 60})
	split := append([]string(nil), seen...)
	seen = seen[:0]
	mk().Run(Phase{Name: "all", Requests: 100})
	if len(split) != 100 || len(seen) != 100 {
		t.Fatalf("request counts: split %d, whole %d", len(split), len(seen))
	}
	for i := range seen {
		if split[i] != seen[i] {
			t.Fatalf("seq %d: %q vs %q", i, split[i], seen[i])
		}
	}
}

func TestChaosPhaseInjectsAndCounts(t *testing.T) {
	r := simRunner(21, ChaosConfig{Seed: 21, TransientRate: 0.3, Latency: time.Millisecond})
	results := r.Run(
		Phase{Name: "calm", Requests: 100, Concurrency: 4},
		Phase{Name: "chaos", Requests: 200, Concurrency: 4, Chaos: true},
	)
	if n := results[0].ErrorCount(); n != 0 {
		t.Errorf("calm phase errors = %v", results[0].Errors)
	}
	injected := results[1].Errors[string(ClassInjected)]
	if injected < 30 || injected > 90 {
		t.Errorf("injected = %d of 200, want ~60 at rate 0.3", injected)
	}
	// Injected faults still count as completed requests.
	if results[1].Requests != 200 {
		t.Errorf("chaos requests = %d, want 200", results[1].Requests)
	}
}

func TestClosedLoopTimeBoundVirtual(t *testing.T) {
	clock := resilience.NewClock()
	w := NewWorkload(WorkloadConfig{Seed: 2}, testSource())
	r := NewRunner(Config{
		Clock: clock, Workload: w, Target: echoTarget(),
		Model: func(uint64, Result) time.Duration { return 10 * time.Millisecond },
	})
	res := r.Run(Phase{Name: "soak", Duration: time.Second, Concurrency: 2})[0]
	// 1 virtual second of 10ms requests across 2 workers: the clock
	// accumulates every sleep, so ~100 requests total fit the budget.
	if res.Requests < 90 || res.Requests > 110 {
		t.Errorf("time-bound virtual phase ran %d requests, want ~100", res.Requests)
	}
	if res.QPS <= 0 {
		t.Errorf("qps = %v", res.QPS)
	}
}

// Open loop in real time must measure from the scheduled arrival:
// with a serialized 20ms server behind a 10ms arrival grid, queueing
// delay compounds and late requests record far more than 20ms.
func TestOpenLoopCoordinatedOmissionSafe(t *testing.T) {
	var mu sync.Mutex // serializes the "server"
	slow := TargetFunc(func(ctx context.Context, need string) Result {
		mu.Lock()
		defer mu.Unlock()
		time.Sleep(20 * time.Millisecond)
		return Result{Class: ClassOK, Bytes: 1}
	})
	w := NewWorkload(WorkloadConfig{Seed: 3}, testSource())
	r := NewRunner(Config{Workload: w, Target: slow})
	res := r.Run(Phase{Name: "open", Requests: 15, QPS: 100})[0]
	if res.Requests != 15 {
		t.Fatalf("requests = %d", res.Requests)
	}
	// Service time alone is 20ms; the p95 arrival waited behind ~13
	// queued requests, so CO-safe measurement must show >100ms.
	if res.Latency.P95 < 0.1 {
		t.Errorf("p95 = %vs: coordinated omission suspected (service time 0.02s, queue ~14 deep)", res.Latency.P95)
	}
	// And p50 must also exceed a single service time.
	if res.Latency.P50 <= 0.02 {
		t.Errorf("p50 = %vs, want > single service time", res.Latency.P50)
	}
}

func TestOpenLoopMaxOutstanding(t *testing.T) {
	var inflight, peak atomic.Int64
	tr := TargetFunc(func(ctx context.Context, need string) Result {
		cur := inflight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		inflight.Add(-1)
		return Result{Class: ClassOK}
	})
	w := NewWorkload(WorkloadConfig{Seed: 4}, testSource())
	r := NewRunner(Config{Workload: w, Target: tr})
	r.Run(Phase{Name: "open", Requests: 40, QPS: 2000, MaxOutstanding: 3})
	if p := peak.Load(); p > 3 {
		t.Errorf("peak in-flight = %d, want <= 3", p)
	}
}

func TestRunnerTimeoutApplied(t *testing.T) {
	blocker := TargetFunc(func(ctx context.Context, need string) Result {
		<-ctx.Done()
		return Result{Class: ClassTimeout, Err: ctx.Err()}
	})
	w := NewWorkload(WorkloadConfig{Seed: 6}, testSource())
	r := NewRunner(Config{Workload: w, Target: blocker, Timeout: 10 * time.Millisecond})
	res := r.Run(Phase{Name: "t", Requests: 3})[0]
	if got := res.Errors[string(ClassTimeout)]; got != 3 {
		t.Errorf("timeouts = %d, want 3 (errors %v)", got, res.Errors)
	}
}
