package loadgen

import (
	"math/rand"
	"time"

	"expertfind/internal/faults"
	"expertfind/internal/resilience"
)

// ChaosConfig parameterizes mid-run fault injection: chaos phases
// flip the internal/faults gate on, so a fraction of requests fail
// before reaching the target and every gated call pays extra latency.
type ChaosConfig struct {
	// Seed fixes the fault draw sequence.
	Seed int64
	// TransientRate is the per-request probability of an injected
	// transient failure.
	TransientRate float64
	// RateLimitRate is the per-request probability of an injected
	// rate-limit rejection.
	RateLimitRate float64
	// Latency is extra per-request service time charged to the clock.
	Latency time.Duration
}

// NewChaosGate builds the fault gate chaos phases draw from. clock
// receives the injected latency — pass the runner's clock so virtual
// runs account for it.
func NewChaosGate(cfg ChaosConfig, clock *resilience.Clock) *faults.Gate {
	return faults.NewGate(faults.Config{
		Seed:          cfg.Seed,
		TransientRate: cfg.TransientRate,
		RateLimitRate: cfg.RateLimitRate,
		Latency:       cfg.Latency,
		Clock:         clock,
	})
}

// DefaultSimModel returns the service-time model simulation mode
// uses: a fixed floor plus a per-byte cost, scaled by log-normal
// noise — a pure function of (seed, seq, response outcome), so equal
// seeds reproduce identical latency streams. Failed requests (zero
// bytes) cost the floor only, mirroring cheap early rejection. A
// result-cache hit skips the scoring pass entirely, so its modeled
// cost drops to a lookup floor plus a cheap serialization term;
// coalesced requests wait out the leader's scoring pass and are
// charged like misses.
func DefaultSimModel(seed int64) ServiceModel {
	return func(seq uint64, res Result) time.Duration {
		rng := rand.New(rand.NewSource(int64(mix(seq ^ uint64(seed)*0x6a09e667f3bcc909))))
		base := 500*time.Microsecond + time.Duration(res.Bytes)*2*time.Microsecond
		if res.Cache == "hit" {
			base = 30*time.Microsecond + time.Duration(res.Bytes)*100*time.Nanosecond
		}
		// Log-normal multiplicative noise, σ = 0.3.
		noise := 1.0
		for i := 0; i < 4; i++ {
			noise *= 1 + 0.3*(rng.Float64()-0.5)
		}
		return time.Duration(float64(base) * noise)
	}
}
