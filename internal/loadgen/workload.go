// Package loadgen is the deterministic load and soak harness: it
// samples realistic expertise-need workloads from a corpus's own
// topic and entity distribution, drives the expert-finding system —
// either the in-process Finder or the live HTTP /v1/find endpoint —
// with closed-loop (fixed concurrency) and open-loop (target QPS,
// coordinated-omission-safe) drivers, and reports throughput, an
// error taxonomy, and log-bucketed latency percentiles.
//
// Two properties make the harness a regression gate rather than a
// one-off stress script:
//
//   - Determinism. The workload is a pure function of (seed, request
//     sequence number): request n asks the same need in every run and
//     on every driver, regardless of worker interleaving. In
//     simulation mode (a virtual resilience.Clock plus a seeded
//     ServiceModel), the full report — counts, error taxonomy, qps,
//     percentiles — is byte-identical across runs, so CI can diff
//     BENCH_*.json files across commits.
//
//   - Honest tails. The open-loop driver schedules arrivals on a
//     fixed grid and measures each request from its *scheduled* start,
//     so a stalling server inflates the recorded latency instead of
//     silently slowing the load generator (the coordinated-omission
//     trap).
package loadgen

import (
	"fmt"
	"math/rand"

	"expertfind"
	"expertfind/internal/kb"
)

// Source is the corpus-derived material the workload samples from.
type Source struct {
	// Queries are realistic hot needs, typically the corpus's own
	// evaluation query set. They seed the hot pool verbatim.
	Queries []string
	// DomainWeights is the corpus's topic mass per domain (any
	// positive scale); synthetic needs draw their topic from it.
	// Empty weights select a uniform domain mix.
	DomainWeights map[kb.Domain]float64
}

// SystemSource derives a Source from a built System: the evaluation
// queries become the hot set, and each domain is weighted by its
// ground-truth expert mass (a proxy for how much of the corpus talks
// about it).
func SystemSource(sys *expertfind.System) Source {
	src := Source{DomainWeights: make(map[kb.Domain]float64)}
	for _, q := range sys.Queries() {
		src.Queries = append(src.Queries, q.Text)
	}
	for _, d := range kb.Domains {
		experts, err := sys.Experts(string(d))
		if err != nil {
			continue
		}
		if n := len(experts); n > 0 {
			src.DomainWeights[d] = float64(n)
		}
	}
	return src
}

// WorkloadConfig parameterizes need sampling. The zero value selects
// the defaults noted per field.
type WorkloadConfig struct {
	// Seed drives all sampling; equal seeds replay identical request
	// streams. Zero selects seed 1.
	Seed int64
	// HotNeeds is the hot-pool size (default 64): the corpus queries
	// plus synthetic needs composed from the knowledge base's own
	// vocabulary and entities, up to this many.
	HotNeeds int
	// ZipfS is the Zipf skew exponent over the hot pool (default 1.2;
	// must exceed 1). Higher values concentrate more traffic on the
	// hottest needs.
	ZipfS float64
	// ColdFraction is the probability that a request asks a
	// never-seen-before need made of tokens outside every vocabulary —
	// the zero-match cold tail (default 0.05).
	ColdFraction float64
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.HotNeeds <= 0 {
		c.HotNeeds = 64
	}
	if c.ZipfS <= 1 {
		c.ZipfS = 1.2
	}
	if c.ColdFraction == 0 {
		c.ColdFraction = 0.05
	} else if c.ColdFraction < 0 {
		c.ColdFraction = 0
	}
	return c
}

// Workload deterministically maps request sequence numbers to
// expertise needs. Need is a pure function, safe for concurrent use.
type Workload struct {
	cfg  WorkloadConfig
	pool []string
}

// needTemplates compose synthetic needs from two vocabulary words and
// one entity surface form, mimicking the question register of the
// evaluation set.
var needTemplates = []string{
	"Who can help me with %s and %s, maybe someone who knows %s?",
	"I am looking for advice about %s %s, something like %s.",
	"What should I know about %s before getting into %s like %s?",
	"Can anyone explain how %s relates to %s, for example %s?",
}

// NewWorkload builds the hot pool for a source: the source's queries
// first, then synthetic needs drawn from the knowledge base under the
// source's domain weights, all fixed by cfg.Seed.
func NewWorkload(cfg WorkloadConfig, src Source) *Workload {
	cfg = cfg.withDefaults()
	w := &Workload{cfg: cfg}
	w.pool = append(w.pool, src.Queries...)

	base := kb.Builtin()
	domains, cum := weightedDomains(src.DomainWeights)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for len(w.pool) < cfg.HotNeeds {
		d := pickDomain(rng, domains, cum)
		vocab := base.Vocab(d)
		ents := base.EntitiesInDomain(d)
		if len(vocab) < 2 || len(ents) == 0 {
			continue
		}
		tmpl := needTemplates[rng.Intn(len(needTemplates))]
		w1 := vocab[rng.Intn(len(vocab))]
		w2 := vocab[rng.Intn(len(vocab))]
		ent := kb.SurfaceForm(ents[rng.Intn(len(ents))].Label)
		w.pool = append(w.pool, fmt.Sprintf(tmpl, w1, w2, ent))
	}
	return w
}

// weightedDomains flattens the weight map into parallel slices of
// domains (in kb.Domains order, for determinism) and cumulative
// weights. Empty maps yield a uniform distribution.
func weightedDomains(weights map[kb.Domain]float64) ([]kb.Domain, []float64) {
	var domains []kb.Domain
	var cum []float64
	total := 0.0
	for _, d := range kb.Domains {
		wt := 1.0
		if len(weights) > 0 {
			wt = weights[d]
			if wt <= 0 {
				continue
			}
		}
		total += wt
		domains = append(domains, d)
		cum = append(cum, total)
	}
	return domains, cum
}

func pickDomain(rng *rand.Rand, domains []kb.Domain, cum []float64) kb.Domain {
	if len(domains) == 0 {
		return kb.Domains[0]
	}
	x := rng.Float64() * cum[len(cum)-1]
	for i, c := range cum {
		if x < c {
			return domains[i]
		}
	}
	return domains[len(domains)-1]
}

// mix is the splitmix64 finalizer, decorrelating per-request RNG
// streams from sequential sequence numbers.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// rngFor returns the private RNG stream of one request.
func (w *Workload) rngFor(seq uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(mix(seq ^ uint64(w.cfg.Seed)*0x9e3779b97f4a7c15))))
}

// Need returns the expertise need of request seq — a pure function of
// (workload seed, seq), independent of which worker asks or when.
// A ColdFraction of requests get a fresh unseen need (Zipf cold
// tail); the rest draw from the hot pool under the Zipf skew.
func (w *Workload) Need(seq uint64) string {
	rng := w.rngFor(seq)
	if rng.Float64() < w.cfg.ColdFraction || len(w.pool) == 0 {
		return coldNeed(rng)
	}
	z := rand.NewZipf(rng, w.cfg.ZipfS, 1, uint64(len(w.pool)-1))
	return w.pool[z.Uint64()]
}

// Pool returns a copy of the hot need pool, hottest rank first.
func (w *Workload) Pool() []string {
	out := make([]string, len(w.pool))
	copy(out, w.pool)
	return out
}

// coldNeed fabricates a need whose tokens appear in no vocabulary, so
// it exercises the zero-match path end to end (analysis still runs,
// matching finds nothing).
func coldNeed(rng *rand.Rand) string {
	word := func() string {
		n := 6 + rng.Intn(5)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}
	return fmt.Sprintf("Does anyone know about %s %s and %s?", word(), word(), word())
}
