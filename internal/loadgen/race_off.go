//go:build !race

package loadgen

// RaceEnabled reports whether this binary was built with -race.
const RaceEnabled = false
