package loadgen

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"expertfind/internal/faults"
	"expertfind/internal/resilience"
	"expertfind/internal/telemetry"
)

// Phase is one segment of a run: a warmup, a ramp step, the steady
// state, or a chaos window. Phases execute in order against a shared
// request-sequence space, so request n carries the same need no
// matter how the run is phased.
type Phase struct {
	// Name labels the phase in the report ("warmup", "steady", ...).
	Name string
	// Requests bounds the phase by request count. Count-bounded phases
	// are fully deterministic in simulation mode: the set of sequence
	// numbers processed does not depend on goroutine scheduling.
	Requests int
	// Duration bounds the phase by clock time instead, for real-time
	// runs (and the virtual-clock soak). Ignored when Requests > 0.
	Duration time.Duration
	// Concurrency is the closed-loop worker count (default 1). In open
	// loop it is unused; see MaxOutstanding.
	Concurrency int
	// QPS > 0 selects the open-loop driver: arrivals on a fixed
	// 1/QPS grid, latency measured from the scheduled arrival
	// (coordinated-omission-safe), unbounded concurrency by default.
	QPS float64
	// MaxOutstanding caps open-loop in-flight requests; past it,
	// arrivals queue and their queueing time counts as latency. Zero
	// means unbounded.
	MaxOutstanding int
	// Chaos routes this phase's requests through the runner's fault
	// gate first; gate-injected failures count as ClassInjected.
	Chaos bool
}

// mode returns the driver the phase selects.
func (p Phase) mode() string {
	if p.QPS > 0 {
		return "open"
	}
	return "closed"
}

func (p Phase) workers() int {
	if p.Concurrency <= 0 {
		return 1
	}
	return p.Concurrency
}

// ServiceModel maps a request to a simulated service time. When set,
// the runner is in simulation mode: recorded latency comes from the
// model (a pure function of the request, for reproducibility), not
// the wall clock, and the virtual clock advances by it.
type ServiceModel func(seq uint64, res Result) time.Duration

// Config wires a Runner.
type Config struct {
	// Clock is the time source. Virtual + Model = deterministic
	// simulation; RealClock (or nil) + no Model = wall-time measurement.
	Clock *resilience.Clock
	// Workload supplies the need for each request sequence number.
	Workload *Workload
	// Target serves the requests.
	Target Target
	// Model, when non-nil, switches to simulated service times.
	Model ServiceModel
	// Chaos is the fault gate used by chaos phases; nil disables
	// injection even when a phase asks for it.
	Chaos *faults.Gate
	// Buckets are the latency histogram bounds in seconds; nil
	// selects LogBuckets(100µs, 10s, 10).
	Buckets []float64
	// Timeout bounds each request's context; zero means none.
	Timeout time.Duration
}

// chaosNetwork is the label chaos phases charge gate calls against.
const chaosNetwork = "loadgen"

// Runner executes phases and aggregates per-phase results. A Runner
// owns a monotone request-sequence counter: re-running the same
// phases on a fresh Runner with the same workload replays the exact
// request stream.
type Runner struct {
	cfg      Config
	nextBase uint64
}

// NewRunner returns a runner over cfg, applying defaults: nil Clock
// means real time, nil Buckets the standard log-spaced ladder.
func NewRunner(cfg Config) *Runner {
	if cfg.Clock == nil {
		cfg.Clock = resilience.RealClock()
	}
	if cfg.Buckets == nil {
		cfg.Buckets = telemetry.LogBuckets(100e-6, 10, 10)
	}
	return &Runner{cfg: cfg}
}

// phaseState aggregates one phase's measurements. All sinks are
// order-independent (atomic sums, histogram bucket counts), so the
// aggregate is deterministic even though workers race.
type phaseState struct {
	hist     *telemetry.Histogram
	classes  []atomic.Uint64  // indexed parallel to Classes
	cache    [3]atomic.Uint64 // hit, miss, coalesced
	executed atomic.Uint64
	sumLat   atomic.Int64 // nanoseconds
}

// cacheStatuses indexes phaseState.cache.
var cacheStatuses = [3]string{"hit", "miss", "coalesced"}

func newPhaseState(buckets []float64) *phaseState {
	reg := telemetry.NewRegistry()
	return &phaseState{
		hist:    reg.Histogram("latency_seconds", "per-request latency", buckets),
		classes: make([]atomic.Uint64, len(Classes)),
	}
}

func classIndex(c Class) int {
	for i, k := range Classes {
		if k == c {
			return i
		}
	}
	return len(Classes) - 1
}

func (st *phaseState) record(res Result, lat time.Duration) {
	st.executed.Add(1)
	st.classes[classIndex(res.Class)].Add(1)
	for i, s := range cacheStatuses {
		if res.Cache == s {
			st.cache[i].Add(1)
			break
		}
	}
	st.sumLat.Add(int64(lat))
	st.hist.Observe(lat.Seconds())
}

// Run executes the phases in order and returns one result per phase.
func (r *Runner) Run(phases ...Phase) []PhaseResult {
	out := make([]PhaseResult, 0, len(phases))
	for _, p := range phases {
		out = append(out, r.runPhase(p))
	}
	return out
}

// serve issues request seq and returns its outcome. Chaos-gated
// requests that draw a fault never reach the target.
func (r *Runner) serve(seq uint64, chaos bool) Result {
	if chaos && r.cfg.Chaos != nil {
		if err := r.cfg.Chaos.Call(chaosNetwork); err != nil {
			return Result{Class: ClassInjected, Err: err}
		}
	}
	ctx := context.Background()
	if r.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.cfg.Timeout)
		defer cancel()
	}
	return r.cfg.Target.Do(ctx, r.cfg.Workload.Need(seq))
}

// doOne serves request seq and records it. In simulation mode the
// latency is the model's and advances the virtual clock; otherwise it
// is measured from startAt (the scheduled arrival in open loop, the
// send time in closed loop) to completion — the coordinated-omission-
// safe convention.
func (r *Runner) doOne(st *phaseState, seq uint64, chaos bool, startAt time.Time) {
	res := r.serve(seq, chaos)
	var lat time.Duration
	if r.cfg.Model != nil {
		lat = r.cfg.Model(seq, res)
		r.cfg.Clock.Sleep(lat)
	} else {
		lat = r.cfg.Clock.Now().Sub(startAt)
		if lat < 0 {
			lat = 0
		}
	}
	st.record(res, lat)
}

func (r *Runner) runPhase(p Phase) PhaseResult {
	st := newPhaseState(r.cfg.Buckets)
	base := r.nextBase
	start := r.cfg.Clock.Now()

	if p.QPS > 0 {
		r.openLoop(p, st, base)
	} else {
		r.closedLoop(p, st, base)
	}

	executed := st.executed.Load()
	r.nextBase = base + executed

	dur := r.phaseDuration(p, st, start, executed)
	return r.result(p, st, executed, dur)
}

// closedLoop runs Concurrency workers, each issuing its next request
// the moment the previous one completes. Count-bounded phases claim
// slots from a phase-local counter so exactly Requests sequence
// numbers — a deterministic set — are executed.
func (r *Runner) closedLoop(p Phase, st *phaseState, base uint64) {
	var slot atomic.Int64
	deadline := r.cfg.Clock.Now().Add(p.Duration)
	var wg sync.WaitGroup
	for w := 0; w < p.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if p.Requests <= 0 && !r.cfg.Clock.Now().Before(deadline) {
					return
				}
				s := slot.Add(1) - 1
				if p.Requests > 0 && s >= int64(p.Requests) {
					return
				}
				r.doOne(st, base+uint64(s), p.Chaos, r.cfg.Clock.Now())
			}
		}()
	}
	wg.Wait()
}

// openLoop issues arrivals on the fixed 1/QPS grid. In real time each
// arrival runs in its own goroutine and its latency is measured from
// the *scheduled* arrival instant, so server stalls surface as tail
// latency instead of silently pausing the generator. In simulation
// mode arrivals are issued sequentially (the model already defines
// each request's latency; there is no queueing to simulate).
func (r *Runner) openLoop(p Phase, st *phaseState, base uint64) {
	interval := time.Duration(float64(time.Second) / p.QPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	total := p.Requests
	if total <= 0 {
		total = int(p.Duration / interval)
	}

	if r.cfg.Model != nil {
		for i := 0; i < total; i++ {
			r.doOne(st, base+uint64(i), p.Chaos, time.Time{})
		}
		return
	}

	start := r.cfg.Clock.Now()
	var sem chan struct{}
	if p.MaxOutstanding > 0 {
		sem = make(chan struct{}, p.MaxOutstanding)
	}
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		sched := start.Add(time.Duration(i) * interval)
		if d := sched.Sub(r.cfg.Clock.Now()); d > 0 {
			r.cfg.Clock.Sleep(d)
		}
		wg.Add(1)
		go func(seq uint64, sched time.Time) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			r.doOne(st, seq, p.Chaos, sched)
		}(base+uint64(i), sched)
	}
	wg.Wait()
}

// phaseDuration derives the phase's effective wall time. Real-time
// phases report measured elapsed time. Simulated closed-loop phases
// divide the accumulated virtual time by the worker count (virtual
// sleeps serialize, so raw elapsed overstates duration by exactly
// that factor); simulated open-loop phases last their scheduled span.
func (r *Runner) phaseDuration(p Phase, st *phaseState, start time.Time, executed uint64) time.Duration {
	if r.cfg.Model == nil {
		return r.cfg.Clock.Now().Sub(start)
	}
	if p.QPS > 0 {
		return time.Duration(float64(executed) / p.QPS * float64(time.Second))
	}
	return time.Duration(st.sumLat.Load() / int64(p.workers()))
}

func (r *Runner) result(p Phase, st *phaseState, executed uint64, dur time.Duration) PhaseResult {
	res := PhaseResult{
		Name:        p.Name,
		Mode:        p.mode(),
		Chaos:       p.Chaos,
		Requests:    executed,
		Errors:      map[string]uint64{},
		TargetQPS:   p.QPS,
		Concurrency: 0,
	}
	if p.QPS <= 0 {
		res.Concurrency = p.workers()
	}
	for i, c := range Classes {
		if c == ClassOK {
			continue
		}
		if n := st.classes[i].Load(); n > 0 {
			res.Errors[string(c)] = n
		}
	}
	for i, s := range cacheStatuses {
		if n := st.cache[i].Load(); n > 0 {
			if res.Cache == nil {
				res.Cache = map[string]uint64{}
			}
			res.Cache[s] = n
		}
	}
	res.DurationSeconds = dur.Seconds()
	if dur > 0 {
		res.QPS = float64(executed) / dur.Seconds()
	}
	d := st.hist.Snapshot()
	res.Latency = Percentiles{
		P50:  d.Quantile(0.50),
		P95:  d.Quantile(0.95),
		P99:  d.Quantile(0.99),
		P999: d.Quantile(0.999),
	}
	return res
}
