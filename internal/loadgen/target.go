package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"

	"expertfind"
)

// Class buckets every request outcome into the error taxonomy the
// report aggregates. The classes are deliberately coarse: fine enough
// to tell load shedding from genuine failure, coarse enough to diff
// across runs.
type Class string

// The taxonomy. ClassOK is success; everything else names a failure
// mode.
const (
	// ClassOK is a successful request.
	ClassOK Class = "ok"
	// ClassShed is a load-shed rejection: HTTP 503 "server
	// overloaded" / "corpus not ready" with a Retry-After hint. Under
	// chaos these are expected behavior, not harness failures.
	ClassShed Class = "shed"
	// ClassTimeout is a deadline miss: client-side context deadline or
	// the server's 503 "request timed out".
	ClassTimeout Class = "timeout"
	// Class4xx is a client error (bad request, not found).
	Class4xx Class = "4xx"
	// Class5xx is a server error other than the classified 503s.
	Class5xx Class = "5xx"
	// ClassTransport is a connection-level failure (refused, reset,
	// EOF) before any HTTP status arrived.
	ClassTransport Class = "transport"
	// ClassInjected is a fault introduced by the harness's own chaos
	// gate, never sent to the target.
	ClassInjected Class = "injected"
)

// Classes lists the taxonomy in report order.
var Classes = []Class{ClassOK, ClassShed, ClassTimeout, Class4xx, Class5xx, ClassTransport, ClassInjected}

// Result is one request's outcome.
type Result struct {
	Class Class
	// Bytes is a deterministic response-cost proxy: the serialized
	// response size. Service models may scale simulated latency by it.
	Bytes int
	// Cache is the result-cache disposition when the target's system
	// caches rankings: "hit", "miss" or "coalesced" (the in-process
	// disposition, or the HTTP Cache-Status header). Empty when the
	// query bypassed caching. Service models may discount hit latency.
	Cache string
	// Err retains the underlying error for logging; nil for ClassOK.
	Err error
}

// Target serves one expertise need and classifies the outcome. Do
// must be safe for concurrent use.
type Target interface {
	Do(ctx context.Context, need string) Result
}

// TargetFunc adapts a function to the Target interface.
type TargetFunc func(ctx context.Context, need string) Result

// Do implements Target.
func (f TargetFunc) Do(ctx context.Context, need string) Result { return f(ctx, need) }

// NewFinderTarget drives the in-process pipeline: analysis, matching,
// index scoring, and graph expansion, without the HTTP layer. The
// ranking is truncated to top experts (0 = all) and Bytes is the JSON
// size of that list — mirroring what the HTTP handler serializes, so
// the two drivers' cost proxies stay comparable.
// The finder itself is not cancelable mid-query, so the deadline is
// enforced here: an expired context classifies as timeout whether it
// expired before or during the call.
func NewFinderTarget(sys *expertfind.System, top int, opts ...expertfind.FindOption) Target {
	return TargetFunc(func(ctx context.Context, need string) Result {
		if err := ctx.Err(); err != nil {
			return Result{Class: ClassTimeout, Err: err}
		}
		experts, cacheStatus, err := sys.FindCachedContext(ctx, need, opts...)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				return Result{Class: ClassTimeout, Err: err}
			}
			return Result{Class: Class5xx, Err: err}
		}
		if err := ctx.Err(); err != nil {
			return Result{Class: ClassTimeout, Err: err}
		}
		if top > 0 && len(experts) > top {
			experts = experts[:top]
		}
		b, _ := json.Marshal(experts)
		return Result{Class: ClassOK, Bytes: len(b), Cache: cacheStatus}
	})
}

// NewHTTPTarget drives a live /v1/find endpoint. baseURL is the
// server root (e.g. "http://127.0.0.1:8080"); params are extra query
// parameters (top, alpha, ...) appended to every request. A nil
// client selects http.DefaultClient.
func NewHTTPTarget(client *http.Client, baseURL string, params url.Values) Target {
	if client == nil {
		client = http.DefaultClient
	}
	base := strings.TrimSuffix(baseURL, "/")
	return TargetFunc(func(ctx context.Context, need string) Result {
		q := url.Values{}
		for k, vs := range params {
			q[k] = vs
		}
		q.Set("q", need)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/find?"+q.Encode(), nil)
		if err != nil {
			return Result{Class: ClassTransport, Err: err}
		}
		resp, err := client.Do(req)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || os.IsTimeout(err) {
				return Result{Class: ClassTimeout, Err: err}
			}
			return Result{Class: ClassTransport, Err: err}
		}
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if readErr != nil {
			return Result{Class: ClassTransport, Bytes: len(body), Err: readErr}
		}
		return Result{
			Class: classifyHTTP(resp.StatusCode, body),
			Bytes: len(body),
			Cache: resp.Header.Get("Cache-Status"),
		}
	})
}

// classifyHTTP maps an HTTP response to the taxonomy. The serving
// stack uses 503 for three distinct conditions — load shed, corpus
// not ready, and request timeout — distinguishable only by the error
// message, so the body participates in classification.
func classifyHTTP(status int, body []byte) Class {
	switch {
	case status < 400:
		return ClassOK
	case status == http.StatusServiceUnavailable:
		if strings.Contains(string(body), "timed out") {
			return ClassTimeout
		}
		return ClassShed
	case status == http.StatusGatewayTimeout:
		return ClassTimeout
	case status >= 500:
		return Class5xx
	default:
		return Class4xx
	}
}
