//go:build race

package loadgen

// RaceEnabled reports whether this binary was built with -race.
// BuildScatterBinaries propagates it to the child processes so a
// race-enabled harness run race-checks the whole topology.
const RaceEnabled = true
