package loadgen

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"expertfind/internal/analysis"
	"expertfind/internal/core"
	"expertfind/internal/dataset"
	"expertfind/internal/experiments"
	"expertfind/internal/index"
	"expertfind/internal/resilience"
	"expertfind/internal/socialgraph"
)

// TestSoakVirtualClock drives the in-process finder through 30
// simulated seconds of closed-loop load while a background writer
// keeps adding fresh documents to the live sharded index — the
// crawler-indexes-while-serving scenario. Run under -race this is the
// concurrency soak: queries and index growth must coexist without
// data races, and the error rate must stay at zero.
func TestSoakVirtualClock(t *testing.T) {
	sys := experiments.BuildSystem(dataset.Config{Seed: 5, Scale: 0.05})
	sharded, ok := sys.Finder.Index().(*index.Sharded)
	if !ok {
		t.Fatalf("finder index is %T, want *index.Sharded", sys.Finder.Index())
	}
	pipe := sys.Finder.Pipeline()

	// Background writer: an endless stream of new English documents
	// entering the corpus mid-flight, at fresh DocIDs far above the
	// generated range.
	// Pre-analyze a handful of document variants so the writer's inner
	// loop is dominated by Add itself, maximizing write/read overlap.
	var docs []analysis.Analyzed
	for i := 0; i < 8; i++ {
		text := fmt.Sprintf("Fresh post %d about marathon training pace and camera lenses.", i)
		a, ok := pipe.Analyze(text, nil)
		if !ok {
			t.Fatalf("doc %d rejected by language filter", i)
		}
		docs = append(docs, a)
	}
	stop := make(chan struct{})
	writerDone := make(chan int)
	go func() {
		n := 0
		defer func() { writerDone <- n }()
		for i := 0; ; {
			select {
			case <-stop:
				return
			default:
			}
			// A batch per scheduling turn: on a single-P runtime the
			// writer is scheduled rarely, so it makes its turns count.
			for j := 0; j < 64; j++ {
				sharded.Add(socialgraph.ResourceID(10_000_000+i), docs[i%len(docs)])
				i++
				n++
			}
			runtime.Gosched()
		}
	}()

	target := TargetFunc(func(ctx context.Context, need string) Result {
		scores := sys.Finder.FindContext(ctx, need, core.Params{})
		return Result{Class: ClassOK, Bytes: 16 * len(scores)}
	})

	var queries []string
	for _, q := range sys.DS.Queries {
		queries = append(queries, q.Text)
	}
	w := NewWorkload(WorkloadConfig{Seed: 9}, Source{Queries: queries})

	clock := resilience.NewClock()
	r := NewRunner(Config{
		Clock:    clock,
		Workload: w,
		Target:   target,
		// A fixed virtual service time sizes the soak: 30 virtual
		// seconds at 20ms/request ≈ 1500 real queries.
		Model: func(uint64, Result) time.Duration { return 20 * time.Millisecond },
	})
	res := r.Run(Phase{Name: "soak", Duration: 30 * time.Second, Concurrency: 8})[0]
	close(stop)
	added := <-writerDone

	if clock.Elapsed() < 30*time.Second {
		t.Errorf("virtual clock only advanced %v", clock.Elapsed())
	}
	if res.Requests < 1000 {
		t.Errorf("soak ran only %d requests", res.Requests)
	}
	// Bounded error rate: in-process queries against a live index
	// must not fail at all (sub-1% tolerated to keep the soak from
	// flaking if a future target adds recoverable failure modes).
	if errCount := res.ErrorCount(); errCount*100 > res.Requests {
		t.Errorf("error rate %d/%d exceeds 1%%: %v", errCount, res.Requests, res.Errors)
	}
	if added == 0 {
		t.Error("background writer added no documents")
	}
	t.Logf("soak: %d requests, %d errors, %d docs added concurrently, index now %d docs",
		res.Requests, res.ErrorCount(), added, sharded.NumDocs())
}
