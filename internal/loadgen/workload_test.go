package loadgen

import (
	"strings"
	"sync"
	"testing"

	"expertfind/internal/kb"
)

func testSource() Source {
	return Source{
		Queries: []string{
			"Who knows about training for a marathon?",
			"Best camera for street photography?",
		},
		DomainWeights: map[kb.Domain]float64{
			kb.Domains[0]: 3,
			kb.Domains[1]: 1,
		},
	}
}

func TestWorkloadDeterministic(t *testing.T) {
	a := NewWorkload(WorkloadConfig{Seed: 42}, testSource())
	b := NewWorkload(WorkloadConfig{Seed: 42}, testSource())
	if len(a.Pool()) != 64 {
		t.Fatalf("pool size = %d, want 64", len(a.Pool()))
	}
	for seq := uint64(0); seq < 500; seq++ {
		if na, nb := a.Need(seq), b.Need(seq); na != nb {
			t.Fatalf("seq %d: %q vs %q across same-seed workloads", seq, na, nb)
		}
	}
	c := NewWorkload(WorkloadConfig{Seed: 43}, testSource())
	diff := 0
	for seq := uint64(0); seq < 500; seq++ {
		if a.Need(seq) != c.Need(seq) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical request streams")
	}
}

// Need must be a pure function: concurrent callers asking about the
// same seq see the same need, and order of calls is irrelevant.
func TestWorkloadNeedConcurrentPure(t *testing.T) {
	w := NewWorkload(WorkloadConfig{Seed: 7}, testSource())
	want := make([]string, 200)
	for seq := range want {
		want[seq] = w.Need(uint64(seq))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seq := len(want) - 1; seq >= 0; seq-- {
				if got := w.Need(uint64(seq)); got != want[seq] {
					t.Errorf("seq %d: %q != %q", seq, got, want[seq])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestWorkloadZipfSkewAndColdTail(t *testing.T) {
	w := NewWorkload(WorkloadConfig{Seed: 1, ColdFraction: 0.05}, testSource())
	pool := w.Pool()
	counts := make(map[string]int)
	const n = 20000
	cold := 0
	for seq := uint64(0); seq < n; seq++ {
		need := w.Need(seq)
		counts[need]++
		if !contains(pool, need) {
			cold++
		}
	}
	// Hot skew: rank 0 must dominate the pool tail.
	if head := counts[pool[0]]; head < 10*counts[pool[len(pool)-1]] || head < n/10 {
		t.Errorf("hot head count %d not Zipf-dominant (tail %d)", head, counts[pool[len(pool)-1]])
	}
	// Cold tail: about 5% unseen needs, each unique.
	if frac := float64(cold) / n; frac < 0.03 || frac > 0.08 {
		t.Errorf("cold fraction = %.3f, want ~0.05", frac)
	}
	// Cold needs never collide with the pool's vocabulary phrasing.
	for need := range counts {
		if !contains(pool, need) && !strings.HasPrefix(need, "Does anyone know about ") {
			t.Fatalf("unexpected non-pool need %q", need)
		}
	}
}

func TestWorkloadPoolSeededFromQueries(t *testing.T) {
	src := testSource()
	w := NewWorkload(WorkloadConfig{Seed: 5, HotNeeds: 16}, src)
	pool := w.Pool()
	for i, q := range src.Queries {
		if pool[i] != q {
			t.Fatalf("pool[%d] = %q, want corpus query %q", i, pool[i], q)
		}
	}
	// Synthetic needs draw on real KB vocabulary/entities.
	if len(pool) != 16 {
		t.Fatalf("pool size = %d, want 16", len(pool))
	}
	for _, need := range pool[len(src.Queries):] {
		if len(need) < 20 {
			t.Errorf("suspiciously short synthetic need %q", need)
		}
	}
}

func TestWorkloadUniformWhenNoWeights(t *testing.T) {
	w := NewWorkload(WorkloadConfig{Seed: 9, HotNeeds: 40}, Source{})
	if len(w.Pool()) != 40 {
		t.Fatalf("pool = %d, want 40 synthetic needs", len(w.Pool()))
	}
}

func TestWorkloadDefaults(t *testing.T) {
	cfg := WorkloadConfig{}.withDefaults()
	if cfg.Seed != 1 || cfg.HotNeeds != 64 || cfg.ZipfS != 1.2 || cfg.ColdFraction != 0.05 {
		t.Fatalf("defaults = %+v", cfg)
	}
	neg := WorkloadConfig{ColdFraction: -1}.withDefaults()
	if neg.ColdFraction != 0 {
		t.Fatalf("negative ColdFraction should clamp to 0, got %v", neg.ColdFraction)
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
