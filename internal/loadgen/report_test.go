package loadgen

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		Schema: Schema, Bench: 4, Mode: "sim", Seed: 11,
		GitRev: "abc123", GeneratedAt: "2026-01-01T00:00:00Z",
		Corpus: CorpusInfo{Seed: 7, Scale: 0.1, Candidates: 20, Documents: 500},
		Drivers: []DriverReport{{
			Driver: "inprocess",
			Phases: []PhaseResult{
				{Name: "warmup", Mode: "closed", Concurrency: 4, Requests: 40, DurationSeconds: 0.1, QPS: 400, Latency: Percentiles{P50: 0.001, P95: 0.002, P99: 0.003, P999: 0.004}},
				{Name: "steady", Mode: "closed", Concurrency: 8, Requests: 200, DurationSeconds: 0.5, QPS: 400,
					Errors:  map[string]uint64{"shed": 3},
					Latency: Percentiles{P50: 0.001, P95: 0.002, P99: 0.003, P999: 0.004}},
			},
		}},
	}
}

func TestReportRoundtripAndStrip(t *testing.T) {
	rep := sampleReport()
	path := filepath.Join(t.TempDir(), "BENCH_4.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != Schema || got.Bench != 4 || got.GitRev != "abc123" {
		t.Fatalf("roundtrip lost fields: %+v", got)
	}
	st := got.Stripped()
	if st.GitRev != "" || st.GeneratedAt != "" {
		t.Errorf("Stripped kept stamps: %+v", st)
	}
	if got.GitRev == "" {
		t.Error("Stripped mutated the receiver")
	}
	p := got.Driver("inprocess").Phase("steady")
	if p == nil || p.Errors["shed"] != 3 || p.ErrorCount() != 3 {
		t.Fatalf("steady phase lost data: %+v", p)
	}
	if got.Driver("nope") != nil || got.Drivers[0].Phase("nope") != nil {
		t.Error("lookup of missing driver/phase should be nil")
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"schema":"other/v9"}`), 0o644)
	if _, err := ReadReport(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("err = %v, want schema mismatch", err)
	}
	garbage := filepath.Join(dir, "garbage.json")
	os.WriteFile(garbage, []byte(`{{{`), 0o644)
	if _, err := ReadReport(garbage); err == nil {
		t.Fatal("garbage JSON accepted")
	}
	if _, err := ReadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func withSteadyP95(p95, qps float64) *Report {
	r := sampleReport()
	p := r.Drivers[0].Phase("steady")
	p.Latency.P95 = p95
	p.QPS = qps
	return r
}

func TestCompareGate(t *testing.T) {
	base := withSteadyP95(0.010, 400)

	if errs := Compare(base, withSteadyP95(0.011, 400), 0.20); len(errs) != 0 {
		t.Errorf("10%% p95 regression within 20%% budget flagged: %v", errs)
	}
	if errs := Compare(base, withSteadyP95(0.013, 400), 0.20); len(errs) != 1 ||
		!strings.Contains(errs[0].Error(), "p95 regressed") {
		t.Errorf("30%% p95 regression not flagged: %v", errs)
	}
	if errs := Compare(base, withSteadyP95(0.010, 300), 0.20); len(errs) != 1 ||
		!strings.Contains(errs[0].Error(), "throughput dropped") {
		t.Errorf("25%% qps drop not flagged: %v", errs)
	}
	// Improvements never fail the gate.
	if errs := Compare(base, withSteadyP95(0.002, 4000), 0.20); len(errs) != 0 {
		t.Errorf("improvement flagged: %v", errs)
	}
	// Default tolerance kicks in for maxRegress <= 0.
	if errs := Compare(base, withSteadyP95(0.013, 400), 0); len(errs) != 1 {
		t.Errorf("default tolerance: %v", errs)
	}
}

func TestCompareStructuralMismatches(t *testing.T) {
	base := sampleReport()

	cur := sampleReport()
	cur.Corpus.Scale = 0.5
	if errs := Compare(base, cur, 0.20); len(errs) != 1 ||
		!strings.Contains(errs[0].Error(), "corpus mismatch") {
		t.Errorf("corpus mismatch: %v", errs)
	}

	cur = sampleReport()
	cur.Drivers[0].Driver = "http"
	if errs := Compare(base, cur, 0.20); len(errs) != 1 ||
		!strings.Contains(errs[0].Error(), "missing from current") {
		t.Errorf("missing driver: %v", errs)
	}

	// A baseline without a steady phase gates nothing.
	cur = sampleReport()
	base.Drivers[0].Phases = base.Drivers[0].Phases[:1]
	if errs := Compare(base, cur, 0.20); len(errs) != 0 {
		t.Errorf("no steady phase: %v", errs)
	}
}
