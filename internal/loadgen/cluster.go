package loadgen

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ScatterCluster runs a real multi-process scatter-gather deployment:
// N shard-mode cmd/serve processes over disjoint corpus slices and a
// cmd/coordinator front, all on loopback ports. Unlike the in-process
// chaos gate, faults here are the real thing — KillShard delivers
// SIGKILL to a live process and RestartShard brings a replacement up
// on the same port, so the harness exercises genuine connection
// refusals, breaker trips, and degraded-mode recovery.
type ScatterCluster struct {
	cfg    ScatterConfig
	shards []*managedProc
	coord  *managedProc
	client *http.Client
}

// ScatterConfig parameterizes StartScatter. ServeBin and CoordBin
// are paths to prebuilt binaries (see BuildScatterBinaries); Shards
// is the topology size.
type ScatterConfig struct {
	ServeBin string
	CoordBin string
	// Shards is the number of shard processes (and the -shard-count
	// each is started with).
	Shards int
	// CorpusSeed and Scale select the corpus every shard generates its
	// slice of; they must match the single-process baseline the caller
	// compares against.
	CorpusSeed int64
	Scale      float64
	// IndexShards is each process's in-process scoring parallelism
	// (0 = GOMAXPROCS); it does not affect result bytes.
	IndexShards int
	// HealthInterval is the coordinator's shard probe cadence
	// (default 200ms — snappy so kill/restart transitions are visible
	// to /readyz quickly).
	HealthInterval time.Duration
	// StartTimeout bounds each readiness wait (default 120s; slice
	// corpus builds run once per process, race-instrumented in -race
	// runs).
	StartTimeout time.Duration
	// ShardSLOLatency, when positive, is passed to every shard process
	// as its -slo-latency objective. The harness sets it absurdly low
	// to induce a latency-SLO breach and assert the on-breach pprof
	// capture fires exactly once.
	ShardSLOLatency time.Duration
	// ShardPprofDir, when set, gives each shard process a private
	// -pprof-dir subdirectory (<dir>/shard<i>) for breach captures, so
	// concurrent captures never collide on file names.
	ShardPprofDir string
	// Logf receives child process output and cluster lifecycle notes;
	// nil discards.
	Logf func(format string, args ...any)
}

func (c ScatterConfig) healthInterval() time.Duration {
	if c.HealthInterval <= 0 {
		return 200 * time.Millisecond
	}
	return c.HealthInterval
}

func (c ScatterConfig) startTimeout() time.Duration {
	if c.StartTimeout <= 0 {
		return 120 * time.Second
	}
	return c.StartTimeout
}

func (c ScatterConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// BuildScatterBinaries compiles cmd/serve and cmd/coordinator into
// dir and returns their paths. When the calling test binary was built
// with -race the children are race-instrumented too, so the chaos
// scenario runs under the race detector end to end.
func BuildScatterBinaries(dir string) (serveBin, coordBin string, err error) {
	root, err := moduleRoot()
	if err != nil {
		return "", "", err
	}
	bins := make([]string, 2)
	for i, name := range []string{"serve", "coordinator"} {
		bin := filepath.Join(dir, name)
		args := []string{"build"}
		if RaceEnabled {
			args = append(args, "-race")
		}
		args = append(args, "-o", bin, "./cmd/"+name)
		cmd := exec.Command("go", args...)
		cmd.Dir = root
		if out, err := cmd.CombinedOutput(); err != nil {
			return "", "", fmt.Errorf("build %s: %v\n%s", name, err, out)
		}
		bins[i] = bin
	}
	return bins[0], bins[1], nil
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output()
	if err != nil {
		return "", fmt.Errorf("locate module root: %v", err)
	}
	return strings.TrimSpace(string(out)), nil
}

// managedProc is one child process pinned to a loopback address, so a
// restart comes back where the coordinator expects it.
type managedProc struct {
	name string
	bin  string
	args []string
	addr string // host:port, stable across restarts

	mu   sync.Mutex
	cmd  *exec.Cmd
	done chan struct{} // closed when the current cmd is reaped
}

func (p *managedProc) base() string { return "http://" + p.addr }

// start spawns the process. The caller supplies Logf-backed stdio.
func (p *managedProc) start(logf func(string, ...any)) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cmd != nil {
		return fmt.Errorf("%s already running", p.name)
	}
	cmd := exec.Command(p.bin, p.args...)
	w := &lineWriter{prefix: p.name, logf: logf}
	cmd.Stdout = w
	cmd.Stderr = w
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start %s: %v", p.name, err)
	}
	done := make(chan struct{})
	go func() {
		cmd.Wait()
		w.flush()
		close(done)
	}()
	p.cmd, p.done = cmd, done
	return nil
}

// kill delivers SIGKILL and reaps the process.
func (p *managedProc) kill() error {
	p.mu.Lock()
	cmd, done := p.cmd, p.done
	p.cmd, p.done = nil, nil
	p.mu.Unlock()
	if cmd == nil {
		return fmt.Errorf("%s not running", p.name)
	}
	cmd.Process.Kill()
	<-done
	return nil
}

// lineWriter forwards child stdio to logf one line at a time,
// prefixed with the process name.
type lineWriter struct {
	prefix string
	logf   func(string, ...any)

	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *lineWriter) Write(b []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Write(b)
	for {
		line, err := w.buf.ReadString('\n')
		if err != nil {
			w.buf.WriteString(line) // incomplete line: keep for later
			break
		}
		if w.logf != nil {
			w.logf("[%s] %s", w.prefix, strings.TrimRight(line, "\n"))
		}
	}
	return len(b), nil
}

func (w *lineWriter) flush() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.buf.Len() > 0 && w.logf != nil {
		w.logf("[%s] %s", w.prefix, w.buf.String())
	}
	w.buf.Reset()
}

// StartScatter boots the topology: Shards serve processes (shard i
// started with -shard-id i -shard-count N) plus the coordinator
// pointed at all of them, then waits until the coordinator reports
// full readiness — every slice built and every shard probed up. Call
// Close to tear everything down.
func StartScatter(cfg ScatterConfig) (*ScatterCluster, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("scatter: Shards must be positive")
	}
	addrs, err := reserveAddrs(cfg.Shards + 1)
	if err != nil {
		return nil, err
	}
	cl := &ScatterCluster{
		cfg:    cfg,
		client: &http.Client{Timeout: 5 * time.Second},
	}
	bases := make([]string, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		args := []string{
			"-addr", addrs[i],
			"-seed", strconv.FormatInt(cfg.CorpusSeed, 10),
			"-scale", strconv.FormatFloat(cfg.Scale, 'g', -1, 64),
			"-index-shards", strconv.Itoa(cfg.IndexShards),
			"-shard-id", strconv.Itoa(i),
			"-shard-count", strconv.Itoa(cfg.Shards),
		}
		if cfg.ShardSLOLatency > 0 {
			args = append(args, "-slo-latency", cfg.ShardSLOLatency.String())
		}
		if cfg.ShardPprofDir != "" {
			args = append(args, "-pprof-dir", filepath.Join(cfg.ShardPprofDir, fmt.Sprintf("shard%d", i)))
		}
		p := &managedProc{
			name: fmt.Sprintf("shard%d", i),
			bin:  cfg.ServeBin,
			addr: addrs[i],
			args: args,
		}
		cl.shards = append(cl.shards, p)
		bases[i] = p.base()
	}
	cl.coord = &managedProc{
		name: "coordinator",
		bin:  cfg.CoordBin,
		addr: addrs[cfg.Shards],
		args: []string{
			"-addr", addrs[cfg.Shards],
			"-shards", strings.Join(bases, ","),
			"-health-interval", cfg.healthInterval().String(),
		},
	}
	for _, p := range append(append([]*managedProc{}, cl.shards...), cl.coord) {
		if err := p.start(cfg.logf); err != nil {
			cl.Close()
			return nil, err
		}
	}
	cfg.logf("cluster: %d shards + coordinator at %s", cfg.Shards, cl.CoordinatorURL())
	if err := cl.WaitCoordinator("ready", cfg.startTimeout()); err != nil {
		cl.Close()
		return nil, err
	}
	return cl, nil
}

// reserveAddrs picks n free loopback ports by binding and releasing
// them. The window between release and the child's bind is racy in
// principle; in practice nothing else grabs an ephemeral port that
// fast, and a collision fails loudly at child startup.
func reserveAddrs(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, 0, n)
	defer func() {
		for _, ln := range lns {
			ln.Close()
		}
	}()
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, fmt.Errorf("reserve port: %v", err)
		}
		lns = append(lns, ln)
		addrs[i] = ln.Addr().String()
	}
	return addrs, nil
}

// CoordinatorURL is the base URL queries should target.
func (c *ScatterCluster) CoordinatorURL() string { return c.coord.base() }

// ShardURL is shard i's base URL.
func (c *ScatterCluster) ShardURL(i int) string { return c.shards[i].base() }

// KillShard SIGKILLs shard i — no draining, no goodbye, exactly what
// a crashed or OOM-killed replica looks like to the coordinator.
func (c *ScatterCluster) KillShard(i int) error {
	c.cfg.logf("cluster: SIGKILL shard %d", i)
	return c.shards[i].kill()
}

// RestartShard starts a replacement for shard i on its original port
// and waits for the new process to finish building its slice.
func (c *ScatterCluster) RestartShard(i int) error {
	c.cfg.logf("cluster: restart shard %d", i)
	if err := c.shards[i].start(c.cfg.logf); err != nil {
		return err
	}
	return c.waitHTTP(c.ShardURL(i)+"/readyz", c.cfg.startTimeout(), func(status int, _ []byte) bool {
		return status == http.StatusOK
	})
}

// WaitCoordinator polls the coordinator's /readyz until it reports
// the wanted status ("ready" or "degraded") or the timeout elapses.
func (c *ScatterCluster) WaitCoordinator(status string, timeout time.Duration) error {
	marker := []byte(`"` + status + `"`)
	return c.waitHTTP(c.CoordinatorURL()+"/readyz", timeout, func(code int, body []byte) bool {
		return code == http.StatusOK && bytes.Contains(body, marker)
	})
}

func (c *ScatterCluster) waitHTTP(url string, timeout time.Duration, ok func(int, []byte) bool) error {
	deadline := time.Now().Add(timeout)
	var lastCode int
	var lastBody []byte
	for time.Now().Before(deadline) {
		resp, err := c.client.Get(url)
		if err == nil {
			body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			if ok(resp.StatusCode, body) {
				return nil
			}
			lastCode, lastBody = resp.StatusCode, body
		}
		time.Sleep(50 * time.Millisecond)
	}
	return fmt.Errorf("wait %s: timed out after %v (last: %d %s)", url, timeout, lastCode, lastBody)
}

// Metric scrapes the coordinator's /metrics and returns the summed
// value of the named family across all label sets (the value itself
// for unlabeled metrics). Missing families return 0 with ok=false.
func (c *ScatterCluster) Metric(name string) (float64, bool, error) {
	return c.metricFrom(c.CoordinatorURL(), name)
}

// ShardMetric scrapes shard i's /metrics the same way.
func (c *ScatterCluster) ShardMetric(i int, name string) (float64, bool, error) {
	return c.metricFrom(c.ShardURL(i), name)
}

func (c *ScatterCluster) metricFrom(base, name string) (float64, bool, error) {
	resp, err := c.client.Get(base + "/metrics")
	if err != nil {
		return 0, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, false, err
	}
	sum, ok := 0.0, false
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		metric := line[:sp]
		if metric != name && !strings.HasPrefix(metric, name+"{") {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return 0, false, fmt.Errorf("parse %q: %v", line, err)
		}
		sum += v
		ok = true
	}
	return sum, ok, nil
}

// Close SIGKILLs every process still running. Safe to call more than
// once and after individual kills.
func (c *ScatterCluster) Close() {
	for _, p := range append(append([]*managedProc{}, c.shards...), c.coord) {
		if p != nil {
			p.kill() // "not running" errors are fine here
		}
	}
}
