package loadgen

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"expertfind"
	"expertfind/internal/httpapi"
)

// sharedSystem builds one small corpus for all target tests; building
// a System is the expensive part.
var (
	sysOnce sync.Once
	sysVal  *expertfind.System
)

func testSystem(t *testing.T) *expertfind.System {
	t.Helper()
	sysOnce.Do(func() {
		sysVal = expertfind.NewSystem(expertfind.Config{Seed: 7, Scale: 0.1})
	})
	return sysVal
}

func TestFinderTarget(t *testing.T) {
	sys := testSystem(t)
	target := NewFinderTarget(sys, 5)
	res := target.Do(context.Background(), "Who knows about running marathons and trail races?")
	if res.Class != ClassOK {
		t.Fatalf("class = %s (err %v), want ok", res.Class, res.Err)
	}
	if res.Bytes <= 2 {
		t.Errorf("bytes = %d, want a serialized expert list", res.Bytes)
	}

	// A canceled context classifies as timeout, not server error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res = target.Do(ctx, "anything at all")
	if res.Class != ClassTimeout {
		t.Errorf("canceled ctx class = %s, want timeout", res.Class)
	}
}

func TestClassifyHTTP(t *testing.T) {
	cases := []struct {
		status int
		body   string
		want   Class
	}{
		{200, `{"experts":[]}`, ClassOK},
		{503, `{"error":"server overloaded","request_id":"x"}`, ClassShed},
		{503, `{"error":"corpus not ready","request_id":"x"}`, ClassShed},
		{503, `{"error":"request timed out","request_id":"x"}`, ClassTimeout},
		{504, `gateway timeout`, ClassTimeout},
		{500, `{"error":"boom"}`, Class5xx},
		{400, `{"error":"missing required parameter: q"}`, Class4xx},
		{404, `{"error":"not found"}`, Class4xx},
	}
	for _, tc := range cases {
		if got := classifyHTTP(tc.status, []byte(tc.body)); got != tc.want {
			t.Errorf("classifyHTTP(%d, %q) = %s, want %s", tc.status, tc.body, got, tc.want)
		}
	}
}

func TestHTTPTargetClassification(t *testing.T) {
	// A scripted server: the response depends on the need, so one
	// target exercises the whole taxonomy.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Query().Get("q") {
		case "shed":
			w.Header().Set("Retry-After", "2")
			http.Error(w, `{"error":"server overloaded"}`, http.StatusServiceUnavailable)
		case "slow":
			time.Sleep(200 * time.Millisecond)
			w.Write([]byte(`{}`))
		case "bad":
			http.Error(w, `{"error":"bad"}`, http.StatusBadRequest)
		case "boom":
			http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
		default:
			w.Write([]byte(`{"experts":["a","b"]}`))
		}
	}))
	defer srv.Close()

	target := NewHTTPTarget(srv.Client(), srv.URL+"/", url.Values{"top": {"5"}})
	ctx := context.Background()

	if res := target.Do(ctx, "ok"); res.Class != ClassOK || res.Bytes == 0 {
		t.Errorf("ok: %+v", res)
	}
	if res := target.Do(ctx, "shed"); res.Class != ClassShed {
		t.Errorf("shed: %+v", res)
	}
	if res := target.Do(ctx, "bad"); res.Class != Class4xx {
		t.Errorf("bad: %+v", res)
	}
	if res := target.Do(ctx, "boom"); res.Class != Class5xx {
		t.Errorf("boom: %+v", res)
	}

	// Client-side deadline -> timeout.
	tctx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if res := target.Do(tctx, "slow"); res.Class != ClassTimeout {
		t.Errorf("slow: %+v", res)
	}

	// Dead server -> transport.
	srv.Close()
	if res := target.Do(ctx, "ok"); res.Class != ClassTransport {
		t.Errorf("dead server: %+v", res)
	}
}

func TestHTTPTargetAgainstRealAPI(t *testing.T) {
	// End to end against the actual serving stack, parameters intact.
	sys := testSystem(t)
	srv := httptest.NewServer(httpapi.New(sys))
	defer srv.Close()

	target := NewHTTPTarget(srv.Client(), srv.URL, url.Values{"top": {"3"}})
	res := target.Do(context.Background(), "Who can give advice about photography gear?")
	if res.Class != ClassOK {
		t.Fatalf("class = %s (err %v), want ok", res.Class, res.Err)
	}
	if res.Bytes == 0 {
		t.Error("empty response body")
	}
}
