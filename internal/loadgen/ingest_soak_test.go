package loadgen

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"expertfind/internal/analysis"
	"expertfind/internal/core"
	"expertfind/internal/corpusio"
	"expertfind/internal/dataset"
	"expertfind/internal/faults"
	"expertfind/internal/ingest"
	"expertfind/internal/resilience"
	"expertfind/internal/socialgraph"
)

// TestIngestRollingDeltaSoak drives the in-process finder through 30
// simulated seconds of closed-loop load while a background ingester
// applies rolling update-only deltas to the live graph and sharded
// index — the serve -ingest-interval scenario. Under -race this is the
// ingest concurrency soak. Two gates:
//
//   - zero taxonomy errors: every query answers ok;
//   - never-torn rankings: every observed ranking equals one of the
//     precomputed discrete corpus states (update-only rounds leave
//     reachability alone and the index delta flips atomically, so no
//     query may observe a blend of two states).
//
// After the soak, the delta-absorbed finder must agree exactly with a
// cold rebuild of the final remote state — the differential gate.
//
// The workload's cold tail is disabled so every sampled need comes
// from the hot pool, whose full expected rankings are precomputed per
// discrete state — the torn-read check is exact for every request.
func TestIngestRollingDeltaSoak(t *testing.T) {
	cfg := dataset.Config{Seed: 5, Scale: 0.05}
	const (
		shards    = 3
		rounds    = 4
		churnSeed = 31
		churnOps  = 10
	)
	params := core.Params{Traversal: socialgraph.TraversalOptions{MaxDistance: 2}}

	// The live side: installed system + remote twin + ingester.
	installed := dataset.Generate(cfg)
	remote := dataset.Generate(cfg)
	pipe := analysis.New(analysis.Options{Web: installed.Web})
	ix, _ := corpusio.BuildShardedIndex(installed.Graph, pipe, shards)
	finder := core.NewFinder(installed.Graph, ix, pipe, installed.Candidates)
	ing := ingest.New(ingest.Config{
		API:     faults.Wrap(remote.Graph, faults.Config{}),
		Graph:   installed.Graph,
		Index:   ix,
		Pipe:    pipe,
		Finders: []*core.Finder{finder},
	})
	churn := ingest.NewChurn(remote.Graph, ingest.ChurnConfig{Seed: churnSeed, Updates: churnOps})

	// The workload: corpus queries plus synthetic hot needs, no cold
	// tail — every request's need is in w.pool, so every observed
	// ranking can be checked against the precomputed states.
	var queries []string
	for _, q := range installed.Queries {
		queries = append(queries, q.Text)
	}
	w := NewWorkload(WorkloadConfig{Seed: 9, ColdFraction: -1}, Source{Queries: queries})
	needIndex := make(map[string]int, len(w.pool))
	for i, need := range w.pool {
		needIndex[need] = i
	}

	// The discrete states a reader may legally observe: a cold twin
	// churned r rounds — update-only churn is a pure function of
	// (graph, seed), so the twin evolves exactly like the soak's
	// remote will.
	expected := make([][][]core.ExpertScore, rounds+1)
	for r := 0; r <= rounds; r++ {
		twin := dataset.Generate(cfg)
		ch := ingest.NewChurn(twin.Graph, ingest.ChurnConfig{Seed: churnSeed, Updates: churnOps})
		for i := 0; i < r; i++ {
			ch.Round()
		}
		coldPipe := analysis.New(analysis.Options{Web: twin.Web})
		coldIx, _ := corpusio.BuildShardedIndex(twin.Graph, coldPipe, shards)
		cold := core.NewFinder(twin.Graph, coldIx, coldPipe, twin.Candidates)
		perNeed := make([][]core.ExpertScore, len(w.pool))
		for i, need := range w.pool {
			perNeed[i] = cold.Find(need, params)
		}
		expected[r] = perNeed
	}

	// Background ingester: rolling deltas spread across the soak.
	writerDone := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			time.Sleep(20 * time.Millisecond)
			churn.Round()
			if _, err := ing.RunOnce(context.Background()); err != nil {
				writerDone <- fmt.Errorf("ingest round %d: %w", i, err)
				return
			}
		}
		writerDone <- nil
	}()

	target := TargetFunc(func(ctx context.Context, need string) Result {
		got := finder.FindContext(ctx, need, params)
		qi, ok := needIndex[need]
		if !ok {
			return Result{Class: Class5xx, Err: fmt.Errorf("need %q outside the hot pool", need)}
		}
		for r := 0; r <= rounds; r++ {
			if reflect.DeepEqual(got, expected[r][qi]) {
				return Result{Class: ClassOK, Bytes: 16 * len(got)}
			}
		}
		return Result{Class: Class5xx, Err: fmt.Errorf("torn ranking for %q: matches no discrete corpus state", need)}
	})

	clock := resilience.NewClock()
	r := NewRunner(Config{
		Clock:    clock,
		Workload: w,
		Target:   target,
		Model:    func(uint64, Result) time.Duration { return 20 * time.Millisecond },
	})
	res := r.Run(Phase{Name: "ingest-soak", Duration: 30 * time.Second, Concurrency: 8})[0]
	if err := <-writerDone; err != nil {
		t.Fatal(err)
	}

	if res.Requests < 1000 {
		t.Errorf("soak ran only %d requests", res.Requests)
	}
	if n := res.ErrorCount(); n != 0 {
		t.Errorf("soak taxonomy errors %d/%d: %v (torn or failed rankings)", n, res.Requests, res.Errors)
	}

	// Differential gate: the delta-absorbed system now equals the final
	// discrete state exactly, need by need.
	status := ing.Status()
	if status.Rounds != rounds || status.Updates == 0 {
		t.Fatalf("ingester ran %d rounds with %d updates, want %d rounds with updates applied",
			status.Rounds, status.Updates, rounds)
	}
	for i, need := range w.pool {
		if got := finder.Find(need, params); !reflect.DeepEqual(got, expected[rounds][i]) {
			t.Fatalf("final state: need %d diverged from cold rebuild of the final remote state", i)
		}
	}
	t.Logf("ingest soak: %d requests over %d rolling deltas (%d updates), zero errors",
		res.Requests, status.Rounds, status.Updates)
}
