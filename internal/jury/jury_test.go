package jury

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("%s = %v, want %v", name, got, want)
	}
}

func TestMajorityErrorRateSingle(t *testing.T) {
	approx(t, "single 0.3", MajorityErrorRate([]float64{0.3}), 0.3)
	approx(t, "single 0", MajorityErrorRate([]float64{0}), 0)
	approx(t, "single 1", MajorityErrorRate([]float64{1}), 1)
	approx(t, "empty", MajorityErrorRate(nil), 1)
}

func TestMajorityErrorRateTriple(t *testing.T) {
	// Three identical jurors with p = 0.2: majority errs when >= 2
	// err: 3·p²(1−p) + p³ = 3·0.04·0.8 + 0.008 = 0.104.
	approx(t, "3x0.2", MajorityErrorRate([]float64{0.2, 0.2, 0.2}), 0.104)
	// Heterogeneous case computed by enumeration: p = .1, .2, .3.
	// P(>=2 err) = p1p2(1-p3) + p1p3(1-p2) + p2p3(1-p1) + p1p2p3
	want := 0.1*0.2*0.7 + 0.1*0.3*0.8 + 0.2*0.3*0.9 + 0.1*0.2*0.3
	approx(t, "heterogeneous", MajorityErrorRate([]float64{0.1, 0.2, 0.3}), want)
}

func TestMajorityErrorRateEvenTiesErr(t *testing.T) {
	// Two jurors, ties (exactly one err) count as errors:
	// P(>=1 err) = 1 − (1−p)².
	approx(t, "2x0.2", MajorityErrorRate([]float64{0.2, 0.2}), 1-0.8*0.8)
}

func TestWisdomOfCrowds(t *testing.T) {
	// More identical sub-0.5 jurors → lower majority error.
	p1 := MajorityErrorRate([]float64{0.3})
	p3 := MajorityErrorRate([]float64{0.3, 0.3, 0.3})
	p5 := MajorityErrorRate([]float64{0.3, 0.3, 0.3, 0.3, 0.3})
	if !(p5 < p3 && p3 < p1) {
		t.Errorf("crowd did not help: %v %v %v", p1, p3, p5)
	}
}

func TestSelectPicksBestJurors(t *testing.T) {
	cands := []Juror{
		{ID: 1, ErrorRate: 0.45},
		{ID: 2, ErrorRate: 0.10},
		{ID: 3, ErrorRate: 0.30},
		{ID: 4, ErrorRate: 0.12},
		{ID: 5, ErrorRate: 0.20},
	}
	j, err := Select(cands, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Members) != 3 {
		t.Fatalf("jury size = %d", len(j.Members))
	}
	ids := map[int64]bool{}
	for _, m := range j.Members {
		ids[m.ID] = true
	}
	if !ids[2] || !ids[4] || !ids[5] {
		t.Errorf("jury = %+v, want the three lowest error rates", j.Members)
	}
	want := MajorityErrorRate([]float64{0.10, 0.12, 0.20})
	approx(t, "jury error", j.ErrorRate, want)
}

func TestSelectPrefersSmallJuryWithOneStrongVoter(t *testing.T) {
	// One near-perfect juror among coin flippers: the singleton jury
	// beats any enlargement.
	cands := []Juror{
		{ID: 1, ErrorRate: 0.01},
		{ID: 2, ErrorRate: 0.49},
		{ID: 3, ErrorRate: 0.49},
	}
	j, err := Select(cands, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Members) != 1 || j.Members[0].ID != 1 {
		t.Errorf("jury = %+v, want singleton of juror 1", j.Members)
	}
}

func TestSelectValidation(t *testing.T) {
	if _, err := Select(nil, 3); err == nil {
		t.Error("empty pool accepted")
	}
	if _, err := Select([]Juror{{ID: 1, ErrorRate: 0.2}}, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := Select([]Juror{{ID: 1, ErrorRate: 1.5}}, 3); err == nil {
		t.Error("invalid error rate accepted")
	}
}

func TestSelectClampsToPool(t *testing.T) {
	j, err := Select([]Juror{{ID: 1, ErrorRate: 0.2}, {ID: 2, ErrorRate: 0.3}}, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Members)%2 != 1 {
		t.Errorf("even jury selected: %d", len(j.Members))
	}
}

func TestErrorRateFromExpertise(t *testing.T) {
	approx(t, "layman", ErrorRateFromExpertise(0), 0.5)
	approx(t, "expert", ErrorRateFromExpertise(1), 0.05)
	approx(t, "mid", ErrorRateFromExpertise(0.5), 0.275)
	approx(t, "clamped low", ErrorRateFromExpertise(-1), 0.5)
	approx(t, "clamped high", ErrorRateFromExpertise(2), 0.05)
}

// Property: the DP matches Monte-Carlo simulation.
func TestMajorityErrorRateMatchesSimulation(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(7)
		rates := make([]float64, n)
		for i := range rates {
			rates[i] = r.Float64() * 0.6
		}
		exact := MajorityErrorRate(rates)

		const trials = 20000
		wrong := 0
		for tr := 0; tr < trials; tr++ {
			errs := 0
			for _, p := range rates {
				if r.Float64() < p {
					errs++
				}
			}
			if 2*errs >= n {
				wrong++
			}
		}
		sim := float64(wrong) / trials
		return math.Abs(exact-sim) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: selection never returns a jury worse than the best single
// juror, and the error rate is a valid probability.
func TestSelectProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(12)
		cands := make([]Juror, n)
		bestSingle := 1.0
		for i := range cands {
			cands[i] = Juror{ID: int64(i), ErrorRate: r.Float64()}
			if cands[i].ErrorRate < bestSingle {
				bestSingle = cands[i].ErrorRate
			}
		}
		j, err := Select(cands, 1+2*r.Intn(4))
		if err != nil {
			return false
		}
		if j.ErrorRate < 0 || j.ErrorRate > 1 {
			return false
		}
		return j.ErrorRate <= bestSingle+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
