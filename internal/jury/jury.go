// Package jury implements the Jury Selection Problem the paper's
// related work discusses (§4, Cao, She, Tong & Chen, "Whom to ask?
// Jury selection for decision making tasks on micro-blog services",
// VLDB 2012): choose, from a pool of candidates with individual error
// rates, the jury whose majority vote minimizes the overall decision
// error.
//
// The Jury Error Rate of a set of voters with independent error
// probabilities is the probability that at least half of them err
// (ties count as errors, which is why juries have odd size). It is
// computed exactly with the Poisson-binomial dynamic program. As in
// the VLDB paper's majority-voting setting, the optimal jury of a
// given size consists of the members with the lowest error rates, so
// selection sorts by error rate and scans all odd sizes.
package jury

import (
	"fmt"
	"sort"
)

// Juror is one candidate voter. In this repository, error rates are
// typically derived from expertise scores (an expert erring rarely),
// but any probability in [0, 1] works.
type Juror struct {
	ID        int64
	ErrorRate float64
}

// Jury is a selected voting committee.
type Jury struct {
	Members []Juror
	// ErrorRate is the probability that the majority vote is wrong.
	ErrorRate float64
}

// ErrorRateFromExpertise maps a normalized expertise level in [0, 1]
// to an individual error rate in [0.05, 0.5]: a complete layman is a
// coin flip, a perfect expert still errs 5% of the time (the floor
// the VLDB paper also applies to keep voters imperfect).
func ErrorRateFromExpertise(skill float64) float64 {
	if skill < 0 {
		skill = 0
	}
	if skill > 1 {
		skill = 1
	}
	return 0.5 - 0.45*skill
}

// MajorityErrorRate returns the probability that the majority vote of
// independent jurors errs; ties are errors. An empty jury always errs.
func MajorityErrorRate(errorRates []float64) float64 {
	n := len(errorRates)
	if n == 0 {
		return 1
	}
	// dp[k] = probability that exactly k jurors err.
	dp := make([]float64, n+1)
	dp[0] = 1
	for i, p := range errorRates {
		for k := i + 1; k >= 1; k-- {
			dp[k] = dp[k]*(1-p) + dp[k-1]*p
		}
		dp[0] *= (1 - p)
	}
	// Majority errs when #errors * 2 >= n (ties are errors).
	threshold := (n + 1) / 2
	if n%2 == 0 {
		threshold = n / 2
	}
	wrong := 0.0
	for k := threshold; k <= n; k++ {
		wrong += dp[k]
	}
	return wrong
}

// Select chooses the jury of odd size at most maxSize minimizing the
// majority error rate. Candidates with error rates outside [0, 1] are
// rejected. Jurors are never duplicated; if fewer candidates than
// maxSize exist, all odd sizes up to the pool size are considered.
func Select(candidates []Juror, maxSize int) (Jury, error) {
	if len(candidates) == 0 {
		return Jury{}, fmt.Errorf("jury: no candidates")
	}
	if maxSize <= 0 {
		return Jury{}, fmt.Errorf("jury: non-positive jury size %d", maxSize)
	}
	for _, c := range candidates {
		if c.ErrorRate < 0 || c.ErrorRate > 1 {
			return Jury{}, fmt.Errorf("jury: candidate %d has error rate %v outside [0,1]", c.ID, c.ErrorRate)
		}
	}
	pool := append([]Juror(nil), candidates...)
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].ErrorRate != pool[j].ErrorRate {
			return pool[i].ErrorRate < pool[j].ErrorRate
		}
		return pool[i].ID < pool[j].ID
	})
	if maxSize > len(pool) {
		maxSize = len(pool)
	}

	best := Jury{ErrorRate: 2}
	rates := make([]float64, 0, maxSize)
	for size := 1; size <= maxSize; size += 2 {
		rates = rates[:0]
		for _, j := range pool[:size] {
			rates = append(rates, j.ErrorRate)
		}
		if e := MajorityErrorRate(rates); e < best.ErrorRate {
			best = Jury{Members: append([]Juror(nil), pool[:size]...), ErrorRate: e}
		}
	}
	return best, nil
}
