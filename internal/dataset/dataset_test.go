package dataset

import (
	"math"
	"testing"

	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
)

// small returns a cheap dataset for structural tests.
func small(t testing.TB) *Dataset {
	t.Helper()
	return Generate(Config{Seed: 7, Scale: 0.05})
}

func TestQueriesWellFormed(t *testing.T) {
	qs := Queries()
	if len(qs) != 30 {
		t.Fatalf("got %d queries, want 30", len(qs))
	}
	perDomain := map[kb.Domain]int{}
	for i, q := range qs {
		if q.ID != i+1 {
			t.Errorf("query %d has ID %d", i, q.ID)
		}
		if q.Text == "" {
			t.Errorf("query %d empty", q.ID)
		}
		perDomain[q.Domain]++
	}
	for _, d := range kb.Domains {
		if perDomain[d] < 4 {
			t.Errorf("domain %s has %d queries, want >= 4", d, perDomain[d])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 3, Scale: 0.03})
	b := Generate(Config{Seed: 3, Scale: 0.03})
	if a.Graph.NumResources() != b.Graph.NumResources() {
		t.Fatalf("resource counts differ: %d vs %d", a.Graph.NumResources(), b.Graph.NumResources())
	}
	if a.Graph.NumUsers() != b.Graph.NumUsers() {
		t.Fatalf("user counts differ")
	}
	for i := 0; i < a.Graph.NumResources(); i += 97 {
		ra := a.Graph.Resource(socialgraph.ResourceID(i))
		rb := b.Graph.Resource(socialgraph.ResourceID(i))
		if ra.Text != rb.Text || ra.Network != rb.Network || ra.Kind != rb.Kind {
			t.Errorf("resource %d differs: %+v vs %+v", i, ra, rb)
		}
	}
	// Different seeds give different corpora.
	c := Generate(Config{Seed: 4, Scale: 0.03})
	if c.Graph.NumResources() == a.Graph.NumResources() {
		// Counts may coincide; compare some texts.
		same := true
		for i := 0; i < a.Graph.NumResources() && i < c.Graph.NumResources(); i += 53 {
			if a.Graph.Resource(socialgraph.ResourceID(i)).Text != c.Graph.Resource(socialgraph.ResourceID(i)).Text {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds generated identical corpora")
		}
	}
}

func TestGroundTruthCalibration(t *testing.T) {
	d := small(t)
	if len(d.Candidates) != 40 {
		t.Fatalf("candidates = %d", len(d.Candidates))
	}

	totalExperts, totalLevel := 0, 0.0
	for _, dom := range kb.Domains {
		n := len(d.Experts(dom))
		totalExperts += n
		if n < 5 || n > 30 {
			t.Errorf("domain %s has %d experts, implausible", dom, n)
		}
		for _, u := range d.Candidates {
			totalLevel += float64(d.Level(u, dom))
		}
	}
	avgExperts := float64(totalExperts) / float64(len(kb.Domains))
	if avgExperts < 12 || avgExperts > 22 {
		t.Errorf("average experts per domain = %.1f, want ≈17", avgExperts)
	}
	avgLevel := totalLevel / float64(len(d.Candidates)*len(kb.Domains))
	if math.Abs(avgLevel-3.57) > 0.6 {
		t.Errorf("average expertise = %.2f, want ≈3.57", avgLevel)
	}
	// Location must have notably fewer experts than Technology.
	if len(d.Experts(kb.Location)) >= len(d.Experts(kb.Technology)) {
		t.Errorf("location experts %d >= technology experts %d",
			len(d.Experts(kb.Location)), len(d.Experts(kb.Technology)))
	}
}

func TestExpertDefinitionAboveAverage(t *testing.T) {
	d := small(t)
	for _, dom := range kb.Domains {
		mean := d.DomainMean(dom)
		for _, u := range d.Candidates {
			want := float64(d.Level(u, dom)) > mean
			if got := d.IsExpert(u, dom); got != want {
				t.Fatalf("IsExpert(%d,%s)=%v, level=%d mean=%.2f", u, dom, got, d.Level(u, dom), mean)
			}
		}
	}
}

func TestLevelsInLikertRange(t *testing.T) {
	d := small(t)
	for _, u := range d.Candidates {
		for _, dom := range kb.Domains {
			if l := d.Level(u, dom); l < 1 || l > 7 {
				t.Fatalf("level %d out of 1..7", l)
			}
		}
	}
}

func TestSilentExpertsExist(t *testing.T) {
	d := small(t)
	silent := 0
	for _, u := range d.Candidates {
		e := d.Expressiveness(u)
		if e < 0 || e > 1 {
			t.Fatalf("expressiveness %v out of range", e)
		}
		if e < 0.15 {
			silent++
		}
	}
	if silent != 8 {
		t.Errorf("silent candidates = %d, want 8", silent)
	}
}

func TestInterestShape(t *testing.T) {
	d := small(t)
	for _, u := range d.Candidates {
		for _, dom := range kb.Domains {
			in := d.Interest(u, dom)
			if in < 0 || in > 1 {
				t.Fatalf("interest %v out of range", in)
			}
			// Minimum skill can still carry fan enthusiasm, but never
			// beyond the expressiveness ceiling.
			if d.Level(u, dom) == 1 && in > d.Expressiveness(u) {
				t.Fatalf("interest %v above expressiveness for minimum skill", in)
			}
		}
	}
	// Interest is monotone in level for a fixed user.
	u := d.Candidates[0]
	e := d.Expressiveness(u)
	if e > 0.15 {
		var prev float64 = -1
		for l := 1; l <= 7; l++ {
			s := float64(l-1) / 6
			in := e * math.Pow(s, 1.7)
			if in < prev {
				t.Fatal("interest not monotone in level")
			}
			prev = in
		}
	}
}

func TestCorpusStructure(t *testing.T) {
	d := small(t)
	g := d.Graph

	counts := g.DistanceCounts(d.Candidates, socialgraph.TraversalOptions{MaxDistance: 2})
	fb, tw, li := counts[socialgraph.Facebook], counts[socialgraph.Twitter], counts[socialgraph.LinkedIn]

	// Every candidate has a profile on each network.
	for _, net := range socialgraph.Networks {
		if counts[net][0] != len(d.Candidates) {
			t.Errorf("%s distance-0 resources = %d, want %d", net, counts[net][0], len(d.Candidates))
		}
	}

	fbTotal := fb[0] + fb[1] + fb[2]
	twTotal := tw[0] + tw[1] + tw[2]
	liTotal := li[0] + li[1] + li[2]

	// Fig. 5a shape: Facebook largest, LinkedIn smallest.
	if !(fbTotal > twTotal && twTotal > liTotal) {
		t.Errorf("network totals fb=%d tw=%d li=%d, want fb > tw > li", fbTotal, twTotal, liTotal)
	}
	// Twitter has the highest distance-1 volume.
	if !(tw[1] > fb[1] && tw[1] > li[1]) {
		t.Errorf("distance-1: fb=%d tw=%d li=%d, want twitter highest", fb[1], tw[1], li[1])
	}
	// LinkedIn is dominated by distance-2 group posts (~95% at full
	// scale; at this test's tiny Scale the fixed per-candidate
	// profiles weigh more, so assert the dominance only loosely here —
	// TestCorpusStructureFullScale covers the 95% property).
	if frac := float64(li[2]) / float64(liTotal); frac < 0.45 {
		t.Errorf("linkedin distance-2 fraction = %.2f, want >= 0.45", frac)
	}
}

func TestCorpusStructureFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale corpus generation")
	}
	d := Generate(Config{Seed: 1})
	counts := d.Graph.DistanceCounts(d.Candidates, socialgraph.TraversalOptions{MaxDistance: 2})
	li := counts[socialgraph.LinkedIn]
	liTotal := li[0] + li[1] + li[2]
	if frac := float64(li[2]) / float64(liTotal); frac < 0.85 {
		t.Errorf("linkedin distance-2 fraction = %.2f, want >= 0.85 (paper: 95%%)", frac)
	}
	if d.Graph.NumResources() < 10000 {
		t.Errorf("full-scale corpus has %d resources, want >= 10000", d.Graph.NumResources())
	}
}

func TestURLsRegisteredInWeb(t *testing.T) {
	d := small(t)
	g := d.Graph
	withURL, total := 0, 0
	for i := 0; i < g.NumResources(); i++ {
		r := g.Resource(socialgraph.ResourceID(i))
		if r.Kind == socialgraph.KindProfile || r.Kind == socialgraph.KindContainerDesc {
			continue
		}
		total++
		if len(r.URLs) > 0 {
			withURL++
			for _, u := range r.URLs {
				if _, ok := d.Web.Lookup(u); !ok {
					t.Fatalf("resource %d links unregistered URL %s", i, u)
				}
			}
		}
	}
	frac := float64(withURL) / float64(total)
	// The paper reports ~70% of resources containing a URL; topical
	// posts link at 70% but chatter never does, so expect 40–65%.
	if frac < 0.30 || frac > 0.80 {
		t.Errorf("URL fraction = %.2f, want within [0.30, 0.80]", frac)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Seed != 1 || c.NumCandidates != 40 || c.Scale != 1.0 || c.SilentExperts != 8 {
		t.Errorf("defaults = %+v", c)
	}
	c = Config{NumCandidates: 10, SilentExperts: 9}.withDefaults()
	if c.SilentExperts != 5 {
		t.Errorf("silent experts not clamped: %d", c.SilentExperts)
	}
}

func TestQueriesInDomain(t *testing.T) {
	d := small(t)
	total := 0
	for _, dom := range kb.Domains {
		qs := d.QueriesInDomain(dom)
		total += len(qs)
		for _, q := range qs {
			if q.Domain != dom {
				t.Errorf("query %d leaked into %s", q.ID, dom)
			}
		}
	}
	if total != 30 {
		t.Errorf("domain partition covers %d queries", total)
	}
}
