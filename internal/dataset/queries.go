package dataset

import "expertfind/internal/kb"

// Queries returns the 30 expertise needs of the evaluation (§3.1),
// formulated as textual queries spanning the seven domains. The seven
// example queries quoted in the paper are included verbatim (query
// IDs 1, 5, 9, 13, 17, 22 and 26).
func Queries() []Query {
	qs := []Query{
		// Computer engineering
		{Text: "Which PHP function can I use in order to obtain the length of a string?", Domain: kb.ComputerEngineering},
		{Text: "How do I write a regular expression to validate an email address in JavaScript?", Domain: kb.ComputerEngineering},
		{Text: "What is the best way to add an index to a huge MySQL database table?", Domain: kb.ComputerEngineering},
		{Text: "My Linux server keeps crashing, how do I debug the Apache error log?", Domain: kb.ComputerEngineering},

		// Location
		{Text: "Can you list some restaurants in Milan?", Domain: kb.Location},
		{Text: "What are the best places to visit in Paris near the Eiffel Tower?", Domain: kb.Location},
		{Text: "Which district of Berlin is worth a trip for a weekend vacation?", Domain: kb.Location},
		{Text: "Can you suggest a hotel near Lake Como with a nice view of the mountains?", Domain: kb.Location},

		// Movies & tv
		{Text: "Can you list some famous actors in how I met your mother?", Domain: kb.MoviesTV},
		{Text: "Which Quentin Tarantino movie should I watch first?", Domain: kb.MoviesTV},
		{Text: "Is the final season of Breaking Bad worth watching?", Domain: kb.MoviesTV},
		{Text: "What are the best films directed by Christopher Nolan?", Domain: kb.MoviesTV},

		// Music
		{Text: "Can you list some famous songs of Michael Jackson?", Domain: kb.Music},
		{Text: "Which album of the Beatles should I listen to first?", Domain: kb.Music},
		{Text: "Who plays the guitar solo in that famous Queen song?", Domain: kb.Music},
		{Text: "What is a good Mozart piece for someone new to classical music?", Domain: kb.Music},

		// Science
		{Text: "Why is copper a good conductor?", Domain: kb.Science},
		{Text: "How does DNA carry the genetic information of a cell?", Domain: kb.Science},
		{Text: "What did the CERN experiment discover about the Higgs boson particle?", Domain: kb.Science},
		{Text: "Can someone explain the theory of relativity in simple words?", Domain: kb.Science},
		{Text: "Why is mercury used in thermometers although the element is toxic?", Domain: kb.Science},

		// Sport
		{Text: "Can you list some famous European football teams?", Domain: kb.Sport},
		{Text: "Who is the best at freestyle swimming after Michael Phelps?", Domain: kb.Sport},
		{Text: "Which team will win the Champions League this season?", Domain: kb.Sport},
		{Text: "Is Roger Federer or Rafael Nadal the greatest tennis player ever?", Domain: kb.Sport},

		// Technology & videogames
		{Text: "I am looking for a graphic card to play Diablo 3 but I don't want to spend too much. What do you suggest?", Domain: kb.Technology},
		{Text: "Which gaming console should I buy, PlayStation or Xbox?", Domain: kb.Technology},
		{Text: "Is a solid state drive worth the upgrade for an old laptop?", Domain: kb.Technology},
		{Text: "What are the best raid strategies in World of Warcraft?", Domain: kb.Technology},
		{Text: "Should I pick an iPhone or an Android smartphone as my next device?", Domain: kb.Technology},
	}
	for i := range qs {
		qs[i].ID = i + 1
	}
	return qs
}
