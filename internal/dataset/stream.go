package dataset

import (
	"fmt"
	"math/rand"

	"expertfind/internal/kb"
	"expertfind/internal/platform"
	"expertfind/internal/socialgraph"
)

// StreamConfig parameterizes streaming corpus generation: the base
// dataset configuration plus the chunking of the bulk volume.
type StreamConfig struct {
	Config
	// ChunkDocs is the number of bulk resources emitted per chunk
	// (default 25000). Generation memory is bounded by the base corpus
	// plus one chunk, regardless of Scale.
	ChunkDocs int
}

// Per scale unit beyond the base corpus, the bulk audience adds
// bulkUsersPerScale users authoring bulkDocsPerScale resources — at
// Scale 100 that is one million users around the 40 candidates,
// matching the public-crowd-to-candidate ratio of a real deployment.
const (
	bulkUsersPerScale = 10000
	bulkDocsPerScale  = 24000
)

// StreamUser is one bulk audience user of a chunk.
type StreamUser struct {
	Name string `json:"name"`
}

// StreamResource is one bulk resource of a chunk. It is closed over
// chunk-local state: the creator is an index into the chunk's Users,
// and the container (when ≥ 0) is a container id of the base corpus,
// so replaying chunks in order rebuilds the exact same graph.
type StreamResource struct {
	Network   socialgraph.Network      `json:"network"`
	Kind      socialgraph.ResourceKind `json:"kind"`
	User      int                      `json:"user"`
	Container socialgraph.ContainerID  `json:"container"` // NoContainer for wall posts
	Text      string                   `json:"text"`
	URLs      []string                 `json:"urls,omitempty"`
}

// StreamLike is a candidate annotation on a chunk resource (by local
// index), the distance-1 edge that makes a slice of the bulk volume
// expertise evidence rather than background noise.
type StreamLike struct {
	Candidate socialgraph.UserID `json:"candidate"`
	Resource  int                `json:"resource"`
}

// StreamChunk is one bulk extension of a base dataset: new audience
// users, the resources they author (mostly into candidate-related
// containers, so they are reachable at distance 2), and sparse
// candidate likes. Chunks are self-contained and must be applied in
// order; ApplyChunk fills FirstUser/FirstResource with the ids the
// graph assigned, which are identical for generation and replay.
type StreamChunk struct {
	Index     int              `json:"index"`
	Users     []StreamUser     `json:"users"`
	Resources []StreamResource `json:"resources"`
	Likes     []StreamLike     `json:"likes,omitempty"`

	FirstUser     socialgraph.UserID     `json:"-"`
	FirstResource socialgraph.ResourceID `json:"-"`
}

func (c StreamConfig) withStreamDefaults() StreamConfig {
	c.Config = c.Config.withDefaults()
	if c.ChunkDocs <= 0 {
		c.ChunkDocs = 25000
	}
	return c
}

// BulkChunks returns how many chunks GenerateStream will emit for the
// configuration (zero at Scale ≤ 1, where the base corpus is the
// whole dataset).
func (c StreamConfig) BulkChunks() int {
	c = c.withStreamDefaults()
	if c.Scale <= 1 {
		return 0
	}
	total := int(bulkDocsPerScale * c.Scale)
	return (total + c.ChunkDocs - 1) / c.ChunkDocs
}

// GenerateStream builds the dataset for cfg incrementally: the base
// corpus (ground truth, candidates, containers, paper-shaped
// resources) is generated at Scale 1 and handed to onBase, then the
// bulk volume — bulkDocsPerScale × Scale resources authored by
// bulkUsersPerScale × Scale fresh audience users — is emitted as
// seeded chunks, each applied to the dataset's graph and handed to
// onChunk before the next one is built. Callers persist and index a
// chunk inside onChunk (and may blank its texts afterwards, see
// BlankChunkTexts) so peak memory stays bounded by base + one chunk
// of text regardless of Scale.
//
// The returned dataset carries the full graph. Generation is
// deterministic: equal configs produce identical datasets, and equal
// to replaying the emitted chunks over the emitted base.
func GenerateStream(cfg StreamConfig, onBase func(*Dataset) error, onChunk func(*Dataset, *StreamChunk) error) (*Dataset, error) {
	cfg = cfg.withStreamDefaults()
	baseCfg := cfg.Config
	if baseCfg.Scale > 1 {
		baseCfg.Scale = 1
	}
	d := Generate(baseCfg)
	d.Config.Scale = cfg.Scale
	if onBase != nil {
		if err := onBase(d); err != nil {
			return nil, err
		}
	}
	chunks := cfg.BulkChunks()
	if chunks == 0 {
		return d, nil
	}
	pool := candidateContainers(d)
	totalDocs := int(bulkDocsPerScale * cfg.Scale)
	totalUsers := int(bulkUsersPerScale * cfg.Scale)
	for ci := 0; ci < chunks; ci++ {
		nDocs := cfg.ChunkDocs
		if rem := totalDocs - ci*cfg.ChunkDocs; rem < nDocs {
			nDocs = rem
		}
		nUsers := totalUsers / chunks
		if ci == chunks-1 {
			nUsers = totalUsers - nUsers*(chunks-1)
		}
		c := buildChunk(cfg, d, ci, pool, nUsers, nDocs)
		d.ApplyChunk(c)
		if onChunk != nil {
			if err := onChunk(d, c); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

// candidateContainers collects the containers any candidate relates
// to — the groups and pages whose contained posts are reachable at
// distance 2, where bulk audience content becomes evidence.
func candidateContainers(d *Dataset) []socialgraph.ContainerID {
	seen := map[socialgraph.ContainerID]bool{}
	var pool []socialgraph.ContainerID
	for _, u := range d.Candidates {
		for _, c := range d.Graph.RelatedContainers(u) {
			if !seen[c] {
				seen[c] = true
				pool = append(pool, c)
			}
		}
	}
	return pool
}

// buildChunk composes one seeded bulk chunk without mutating the
// dataset. Chunk randomness is independent per index, so a chunk's
// content depends only on (Seed, Index) and the base corpus shape.
func buildChunk(cfg StreamConfig, d *Dataset, ci int, pool []socialgraph.ContainerID, nUsers, nDocs int) *StreamChunk {
	r := rand.New(rand.NewSource(cfg.Seed + 1_000_000 + int64(ci)*104729))
	text := platform.NewTextGen(d.KB, d.Web, r)
	// Bulk posts never register new Web pages: the synthetic Web stays
	// the base corpus's, keeping stream memory independent of Scale.
	text.URLProb = 0
	c := &StreamChunk{Index: ci}
	for i := 0; i < nUsers; i++ {
		c.Users = append(c.Users, StreamUser{Name: fmt.Sprintf("bulk-%06d-%05d", ci, i)})
	}
	nets := []socialgraph.Network{socialgraph.Facebook, socialgraph.Twitter, socialgraph.LinkedIn}
	for i := 0; i < nDocs; i++ {
		user := r.Intn(nUsers)
		dom := kb.Domains[r.Intn(len(kb.Domains))]
		var body string
		if r.Float64() < 0.35 {
			body = text.Chatter()
		} else {
			body, _ = text.TopicalPost(dom)
		}
		res := StreamResource{User: user, Text: body}
		if len(pool) > 0 && r.Float64() < 0.6 {
			// Audience post inside a candidate-related group or page.
			res.Container = pool[r.Intn(len(pool))]
			res.Network = d.Graph.Container(res.Container).Network
			res.Kind = socialgraph.KindGroupPost
		} else {
			// Standalone wall post: background volume, unreachable from
			// the candidate pool unless a candidate likes it below.
			res.Container = socialgraph.NoContainer
			res.Network = nets[r.Intn(len(nets))]
			res.Kind = socialgraph.KindPost
		}
		c.Resources = append(c.Resources, res)
		if r.Float64() < 0.005 {
			c.Likes = append(c.Likes, StreamLike{
				Candidate: d.Candidates[r.Intn(len(d.Candidates))],
				Resource:  i,
			})
		}
	}
	return c
}

// ApplyChunk appends a bulk chunk to the dataset's graph: users,
// resources (ids assigned consecutively in slice order) and candidate
// likes. It records the assigned id ranges in the chunk. Chunks must
// be applied in the order they were generated.
func (d *Dataset) ApplyChunk(c *StreamChunk) {
	g := d.Graph
	c.FirstUser = socialgraph.UserID(g.NumUsers())
	users := make([]socialgraph.UserID, len(c.Users))
	for i, u := range c.Users {
		users[i] = g.AddUser(u.Name, false)
	}
	c.FirstResource = socialgraph.ResourceID(g.NumResources())
	for _, res := range c.Resources {
		creator := users[res.User]
		if res.Container != socialgraph.NoContainer {
			g.AddContainedResource(res.Kind, res.Container, creator, res.Text, res.URLs...)
		} else {
			rid := g.AddResource(res.Network, res.Kind, creator, res.Text, res.URLs...)
			g.Owns(creator, rid)
		}
	}
	for _, l := range c.Likes {
		g.Annotates(l.Candidate, c.FirstResource+socialgraph.ResourceID(l.Resource))
	}
}

// BlankChunkTexts clears the text of every resource of an applied
// chunk, keeping the graph structure (creators, containers, edges)
// while releasing the bulk of the memory — used by streaming builds
// after a chunk has been analyzed and persisted. The blanked graph
// still answers traversals and candidate aggregation; only re-analysis
// of the blanked resources becomes impossible.
func (d *Dataset) BlankChunkTexts(c *StreamChunk) {
	for i := range c.Resources {
		d.Graph.SetResourceText(c.FirstResource+socialgraph.ResourceID(i), "")
	}
}
