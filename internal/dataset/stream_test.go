package dataset

import (
	"testing"

	"expertfind/internal/socialgraph"
)

func streamTestConfig() StreamConfig {
	return StreamConfig{
		Config:    Config{Seed: 3, Scale: 1.5},
		ChunkDocs: 9000,
	}
}

// sampleTexts fingerprints a graph: sparse resource texts plus counts.
func sampleTexts(g *socialgraph.Graph) []string {
	var out []string
	for i := 0; i < g.NumResources(); i += 997 {
		out = append(out, g.Resource(socialgraph.ResourceID(i)).Text)
	}
	return out
}

func TestGenerateStreamDeterministic(t *testing.T) {
	cfg := streamTestConfig()
	a, err := GenerateStream(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateStream(cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumResources() != b.Graph.NumResources() || a.Graph.NumUsers() != b.Graph.NumUsers() {
		t.Fatalf("runs differ: %d/%d resources, %d/%d users",
			a.Graph.NumResources(), b.Graph.NumResources(), a.Graph.NumUsers(), b.Graph.NumUsers())
	}
	sa, sb := sampleTexts(a.Graph), sampleTexts(b.Graph)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sampled text %d differs between runs", i)
		}
	}
}

func TestGenerateStreamVolumeAndChunking(t *testing.T) {
	cfg := streamTestConfig()
	wantChunks := cfg.BulkChunks()
	if wantChunks != 4 { // ceil(24000*1.5 / 9000)
		t.Fatalf("BulkChunks = %d, want 4", wantChunks)
	}
	var chunks []*StreamChunk
	var baseUsers, baseRes int
	d, err := GenerateStream(cfg,
		func(d *Dataset) error {
			baseUsers, baseRes = d.Graph.NumUsers(), d.Graph.NumResources()
			return nil
		},
		func(_ *Dataset, c *StreamChunk) error {
			chunks = append(chunks, c)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != wantChunks {
		t.Fatalf("emitted %d chunks, want %d", len(chunks), wantChunks)
	}
	bulkRes, bulkUsers := 0, 0
	for _, c := range chunks {
		bulkRes += len(c.Resources)
		bulkUsers += len(c.Users)
	}
	if want := int(bulkDocsPerScale * cfg.Scale); bulkRes != want {
		t.Fatalf("bulk resources %d, want %d", bulkRes, want)
	}
	if want := int(bulkUsersPerScale * cfg.Scale); bulkUsers != want {
		t.Fatalf("bulk users %d, want %d", bulkUsers, want)
	}
	if got := d.Graph.NumResources(); got != baseRes+bulkRes {
		t.Fatalf("final resources %d, want base %d + bulk %d", got, baseRes, bulkRes)
	}
	if got := d.Graph.NumUsers(); got != baseUsers+bulkUsers {
		t.Fatalf("final users %d, want base %d + bulk %d", got, baseUsers, bulkUsers)
	}
	// Chunk id ranges are consecutive and disjoint.
	next := socialgraph.ResourceID(baseRes)
	for i, c := range chunks {
		if c.FirstResource != next {
			t.Fatalf("chunk %d starts at resource %d, want %d", i, c.FirstResource, next)
		}
		next += socialgraph.ResourceID(len(c.Resources))
	}
}

// Replaying the emitted base + chunks rebuilds the generated graph
// exactly — the property the stream corpus format relies on.
func TestGenerateStreamReplay(t *testing.T) {
	cfg := streamTestConfig()
	var base *Snapshot
	var chunks []*StreamChunk
	gen, err := GenerateStream(cfg,
		func(d *Dataset) error { base = d.Snapshot(); return nil },
		func(_ *Dataset, c *StreamChunk) error { chunks = append(chunks, c); return nil })
	if err != nil {
		t.Fatal(err)
	}
	replayed, err := FromSnapshot(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range chunks {
		replayed.ApplyChunk(c)
	}
	if replayed.Graph.NumResources() != gen.Graph.NumResources() ||
		replayed.Graph.NumUsers() != gen.Graph.NumUsers() {
		t.Fatalf("replay: %d resources / %d users, want %d / %d",
			replayed.Graph.NumResources(), replayed.Graph.NumUsers(),
			gen.Graph.NumResources(), gen.Graph.NumUsers())
	}
	sa, sb := sampleTexts(gen.Graph), sampleTexts(replayed.Graph)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sampled text %d differs after replay", i)
		}
	}
	// Creators and containers replay too, not just texts.
	for i := 0; i < gen.Graph.NumResources(); i += 1511 {
		ra := gen.Graph.Resource(socialgraph.ResourceID(i))
		rb := replayed.Graph.Resource(socialgraph.ResourceID(i))
		if ra.Creator != rb.Creator || ra.Container != rb.Container || ra.Network != rb.Network {
			t.Fatalf("resource %d structure differs after replay: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestGenerateStreamSmallScaleIsBaseOnly(t *testing.T) {
	cfg := StreamConfig{Config: Config{Seed: 2, Scale: 0.5}}
	calls := 0
	d, err := GenerateStream(cfg, nil, func(*Dataset, *StreamChunk) error { calls++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if calls != 0 {
		t.Fatalf("scale 0.5 emitted %d chunks, want 0", calls)
	}
	plain := Generate(Config{Seed: 2, Scale: 0.5})
	if d.Graph.NumResources() != plain.Graph.NumResources() {
		t.Fatalf("stream base %d resources, Generate %d", d.Graph.NumResources(), plain.Graph.NumResources())
	}
}

func TestBlankChunkTexts(t *testing.T) {
	cfg := StreamConfig{Config: Config{Seed: 5, Scale: 1.2}, ChunkDocs: 3000}
	d, err := GenerateStream(cfg, nil, func(d *Dataset, c *StreamChunk) error {
		d.BlankChunkTexts(c)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every bulk resource text is blank, base texts are intact.
	blank, withText := 0, 0
	for i := 0; i < d.Graph.NumResources(); i++ {
		if d.Graph.Resource(socialgraph.ResourceID(i)).Text == "" {
			blank++
		} else {
			withText++
		}
	}
	if blank < int(bulkDocsPerScale*cfg.Scale) {
		t.Fatalf("only %d blank texts, want ≥ %d", blank, int(bulkDocsPerScale*cfg.Scale))
	}
	if withText == 0 {
		t.Fatal("base texts were blanked too")
	}
}
