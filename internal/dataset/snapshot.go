package dataset

import (
	"fmt"

	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
	"expertfind/internal/webcontent"
)

// CandidateTruth is the serialized ground truth of one candidate.
type CandidateTruth struct {
	User           socialgraph.UserID `json:"user"`
	Levels         [7]int             `json:"levels"` // per kb.Domains order
	Expressiveness float64            `json:"expressiveness"`
	Activity       float64            `json:"activity"`
	FanLevels      [7]float64         `json:"fan_levels"`
}

// Snapshot is the serialization-friendly form of a complete dataset:
// the social graph, the synthetic Web, the queries and the ground
// truth. It is what the corpus save/load layer reads and writes.
type Snapshot struct {
	Config     Config                `json:"config"`
	Graph      *socialgraph.Snapshot `json:"graph"`
	Pages      []webcontent.Page     `json:"pages"`
	Queries    []Query               `json:"queries"`
	Candidates []CandidateTruth      `json:"candidates"`
}

// Snapshot exports the dataset.
func (d *Dataset) Snapshot() *Snapshot {
	s := &Snapshot{
		Config:  d.Config,
		Graph:   d.Graph.Snapshot(),
		Pages:   d.Web.Pages(),
		Queries: d.Queries,
	}
	for _, u := range d.Candidates {
		s.Candidates = append(s.Candidates, CandidateTruth{
			User:           u,
			Levels:         d.levels[u],
			Expressiveness: d.expressiveness[u],
			Activity:       d.activity[u],
			FanLevels:      d.fanLevels[u],
		})
	}
	return s
}

// FromSnapshot rebuilds a dataset from its snapshot, validating the
// graph and ground truth.
func FromSnapshot(s *Snapshot) (*Dataset, error) {
	if s.Graph == nil {
		return nil, fmt.Errorf("dataset: snapshot has no graph")
	}
	g, err := socialgraph.FromSnapshot(s.Graph)
	if err != nil {
		return nil, err
	}
	d := &Dataset{
		Config:         s.Config,
		Graph:          g,
		Web:            webcontent.NewWeb(),
		KB:             kb.Builtin(),
		Queries:        s.Queries,
		levels:         make(map[socialgraph.UserID][7]int),
		expressiveness: make(map[socialgraph.UserID]float64),
		activity:       make(map[socialgraph.UserID]float64),
		fanLevels:      make(map[socialgraph.UserID][7]float64),
	}
	for _, p := range s.Pages {
		d.Web.AddPage(p.URL, p.Title, p.Main)
	}
	for _, c := range s.Candidates {
		if int(c.User) < 0 || int(c.User) >= g.NumUsers() {
			return nil, fmt.Errorf("dataset: ground truth references unknown user %d", c.User)
		}
		if !g.User(c.User).Candidate {
			return nil, fmt.Errorf("dataset: ground truth for non-candidate user %d", c.User)
		}
		for _, l := range c.Levels {
			if l < 1 || l > 7 {
				return nil, fmt.Errorf("dataset: user %d has Likert level %d outside 1..7", c.User, l)
			}
		}
		d.Candidates = append(d.Candidates, c.User)
		d.levels[c.User] = c.Levels
		d.expressiveness[c.User] = c.Expressiveness
		d.activity[c.User] = c.Activity
		d.fanLevels[c.User] = c.FanLevels
	}
	if len(d.Candidates) == 0 {
		return nil, fmt.Errorf("dataset: snapshot has no candidates")
	}
	for _, q := range d.Queries {
		if _, err := domainIndexErr(q.Domain); err != nil {
			return nil, fmt.Errorf("dataset: query %d: %w", q.ID, err)
		}
	}
	d.computeDomainMeans()
	return d, nil
}

func domainIndexErr(dom kb.Domain) (int, error) {
	for i, dd := range kb.Domains {
		if dd == dom {
			return i, nil
		}
	}
	return 0, fmt.Errorf("unknown domain %q", dom)
}
