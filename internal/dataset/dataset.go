// Package dataset builds the evaluation dataset of the paper (§3.1):
// an expert-candidate pool active on Facebook, Twitter and LinkedIn,
// a corpus of their social resources, 30 expertise needs over seven
// domains, and the self-assessment ground truth.
//
// The paper recruited 40 volunteers and crawled ~330k resources
// through the platform APIs; offline, this package generates a
// statistically equivalent corpus with a deterministic, seeded
// generator whose per-network structure is produced by the
// internal/platform simulators. The ground truth follows the paper's
// construction exactly: each candidate has a 7-point Likert expertise
// level per domain, and the domain experts are the candidates whose
// level exceeds the domain average.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"expertfind/internal/kb"
	"expertfind/internal/platform"
	"expertfind/internal/socialgraph"
	"expertfind/internal/webcontent"
)

// Config parameterizes dataset generation. The zero value selects the
// paper-calibrated defaults.
type Config struct {
	// Seed drives all randomness; equal seeds generate identical
	// datasets. Zero selects seed 1.
	Seed int64
	// NumCandidates is the size of the expert-candidate pool
	// (default 40, as recruited in the paper).
	NumCandidates int
	// Scale multiplies all resource volumes; 1.0 (default) generates
	// ≈20k resources. The paper's crawl is roughly Scale 15.
	Scale float64
	// SilentExperts is the number of candidates whose social activity
	// exposes almost none of their expertise (default 8, matching the
	// unreliable users of Fig. 10).
	SilentExperts int
	// IndexShards is the number of document-hash shards the corpus
	// index is built with. It parameterizes the corpus build, not
	// generation: 0 selects GOMAXPROCS at build time, 1 forces a
	// monolithic single shard. Persisted with snapshots so a reloaded
	// corpus rebuilds the same layout; ranking output is identical
	// for any value.
	IndexShards int
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.NumCandidates == 0 {
		c.NumCandidates = 40
	}
	if c.Scale == 0 {
		c.Scale = 1.0
	}
	if c.SilentExperts == 0 {
		c.SilentExperts = 8
	}
	if c.SilentExperts > c.NumCandidates/2 {
		c.SilentExperts = c.NumCandidates / 2
	}
	return c
}

// Query is one expertise need with its reference domain.
type Query struct {
	ID     int
	Text   string
	Domain kb.Domain
}

// Dataset is a generated evaluation dataset.
type Dataset struct {
	Config     Config
	Graph      *socialgraph.Graph
	Web        *webcontent.Web
	KB         *kb.KB
	Queries    []Query
	Candidates []socialgraph.UserID

	levels         map[socialgraph.UserID][7]int // Likert level per domain index
	expressiveness map[socialgraph.UserID]float64
	activity       map[socialgraph.UserID]float64
	fanLevels      map[socialgraph.UserID][7]float64
	domainMeans    [7]float64
}

// expertFraction is the target fraction of domain experts per domain,
// calibrated to the distribution of Fig. 5b (≈17 experts per domain on
// average; few in Location, many in Technology & games).
var expertFraction = map[kb.Domain]float64{
	kb.ComputerEngineering: 0.45,
	kb.Location:            0.22,
	kb.MoviesTV:            0.42,
	kb.Music:               0.35,
	kb.Science:             0.38,
	kb.Sport:               0.50,
	kb.Technology:          0.60,
}

// domainExpression discounts how much of their expertise people
// actually express for a domain: many self-declared music and sport
// experts never post about it, and people hardly write about biology
// or electrical conductors on their walls (§3.7).
var domainExpression = map[kb.Domain]float64{
	kb.ComputerEngineering: 1.00,
	kb.Location:            0.90,
	kb.MoviesTV:            1.00,
	kb.Music:               0.60,
	kb.Science:             0.70,
	kb.Sport:               0.75,
	kb.Technology:          1.00,
}

func domainIndex(d kb.Domain) int {
	for i, dd := range kb.Domains {
		if dd == d {
			return i
		}
	}
	panic(fmt.Sprintf("dataset: unknown domain %q", d))
}

// Generate builds a dataset from the configuration.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	d := &Dataset{
		Config:         cfg,
		Graph:          socialgraph.New(),
		Web:            webcontent.NewWeb(),
		KB:             kb.Builtin(),
		Queries:        Queries(),
		levels:         make(map[socialgraph.UserID][7]int),
		expressiveness: make(map[socialgraph.UserID]float64),
		activity:       make(map[socialgraph.UserID]float64),
		fanLevels:      make(map[socialgraph.UserID][7]float64),
	}

	gtRand := rand.New(rand.NewSource(cfg.Seed))
	for i := 0; i < cfg.NumCandidates; i++ {
		u := d.Graph.AddUser(fmt.Sprintf("candidate-%02d", i+1), true)
		d.Candidates = append(d.Candidates, u)
		d.levels[u] = drawLevels(gtRand)
		d.activity[u] = math.Exp(0.8 * gtRand.NormFloat64())
		d.expressiveness[u] = 0.45 + 0.55*gtRand.Float64()
		d.fanLevels[u] = drawFanLevels(gtRand)
	}
	// Silent experts: pick the first SilentExperts candidates by a
	// deterministic shuffle and collapse their expressiveness.
	perm := gtRand.Perm(cfg.NumCandidates)
	for _, i := range perm[:cfg.SilentExperts] {
		d.expressiveness[d.Candidates[i]] = 0.03 + 0.09*gtRand.Float64()
	}
	d.computeDomainMeans()

	// Populate the three platforms.
	textRand := rand.New(rand.NewSource(cfg.Seed + 1000))
	ctx := &platform.Context{
		Graph:      d.Graph,
		Web:        d.Web,
		KB:         d.KB,
		Text:       platform.NewTextGen(d.KB, d.Web, textRand),
		Candidates: d.Candidates,
		Interest:   d.Interest,
		Skill:      d.Skill,
		Activity:   func(u socialgraph.UserID) float64 { return d.activity[u] },
		Scale:      cfg.Scale,
	}
	gens := []platform.Generator{
		platform.DefaultFacebook(),
		platform.DefaultTwitter(),
		platform.DefaultLinkedIn(),
	}
	for i, gen := range gens {
		ctx.Rand = rand.New(rand.NewSource(cfg.Seed + int64(i+2)*7919))
		gen.Generate(ctx)
	}
	return d
}

// drawLevels draws the 7-point Likert self-assessment per domain: with
// the domain's expert fraction the level comes from a high block
// (4–7), otherwise from a low block (1–2), reproducing the expert
// counts of Fig. 5b. The gap between the blocks keeps the
// above-average classification aligned with the high block: the domain
// mean always lands strictly between 2 and 4 for expert fractions in
// (0.14, 0.65), so exactly the high-block candidates are experts.
func drawLevels(r *rand.Rand) [7]int {
	var out [7]int
	for i, dom := range kb.Domains {
		if r.Float64() < expertFraction[dom] {
			out[i] = drawWeighted(r, []int{4, 5, 6, 7}, []float64{0.20, 0.25, 0.30, 0.25})
		} else {
			out[i] = drawWeighted(r, []int{1, 2}, []float64{0.40, 0.60})
		}
	}
	return out
}

func drawWeighted(r *rand.Rand, vals []int, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return vals[i]
		}
	}
	return vals[len(vals)-1]
}

func (d *Dataset) computeDomainMeans() {
	for i := range kb.Domains {
		sum := 0.0
		for _, u := range d.Candidates {
			sum += float64(d.levels[u][i])
		}
		d.domainMeans[i] = sum / float64(len(d.Candidates))
	}
}

// Level returns the candidate's 7-point self-assessed expertise level
// in a domain.
func (d *Dataset) Level(u socialgraph.UserID, dom kb.Domain) int {
	return d.levels[u][domainIndex(dom)]
}

// DomainMean returns the average expertise level of a domain over the
// candidate pool.
func (d *Dataset) DomainMean(dom kb.Domain) float64 {
	return d.domainMeans[domainIndex(dom)]
}

// IsExpert reports whether the candidate is a domain expert: a
// candidate whose level exceeds the domain average (§3.1).
func (d *Dataset) IsExpert(u socialgraph.UserID, dom kb.Domain) bool {
	i := domainIndex(dom)
	return float64(d.levels[u][i]) > d.domainMeans[i]
}

// Experts returns the domain experts, ordered by candidate ID.
func (d *Dataset) Experts(dom kb.Domain) []socialgraph.UserID {
	var out []socialgraph.UserID
	for _, u := range d.Candidates {
		if d.IsExpert(u, dom) {
			out = append(out, u)
		}
	}
	return out
}

// Skill returns the candidate's latent expertise in [0, 1] for a
// domain: the normalized Likert level.
func (d *Dataset) Skill(u socialgraph.UserID, dom kb.Domain) float64 {
	return float64(d.Level(u, dom)-1) / 6
}

// Interest returns the candidate's propensity to produce content
// about a domain: latent skill shaped by personal expressiveness and
// the domain's expression discount (silent experts have near-zero
// interest in every domain regardless of skill), plus fan enthusiasm.
//
// Fan enthusiasm is the precision-eroding noise channel of §3.7: a
// minority of candidates post abundantly about domains they are not
// experts in (the football fan who never played, the gadget follower
// with no engineering background), so topical activity is genuine but
// misleading evidence — exactly why the paper's absolute precision
// stays well below 1.
func (d *Dataset) Interest(u socialgraph.UserID, dom kb.Domain) float64 {
	s := math.Pow(d.Skill(u, dom), 1.7)
	if fan := d.fanLevels[u][domainIndex(dom)]; fan > s {
		s = fan
	}
	return d.expressiveness[u] * s * domainExpression[dom]
}

// drawFanLevels marks each (candidate, domain) pair as fan enthusiasm
// with 35% probability, at an intensity overlapping genuine expert
// interest.
func drawFanLevels(r *rand.Rand) [7]float64 {
	var out [7]float64
	for i := range out {
		if r.Float64() < 0.35 {
			out[i] = 0.35 + 0.55*r.Float64()
		}
	}
	return out
}

// Expressiveness returns the fraction of their expertise the
// candidate exposes on social platforms.
func (d *Dataset) Expressiveness(u socialgraph.UserID) float64 {
	return d.expressiveness[u]
}

// Activity returns the candidate's posting-volume multiplier.
func (d *Dataset) Activity(u socialgraph.UserID) float64 {
	return d.activity[u]
}

// WithGraph returns a shallow copy of the dataset whose corpus is
// replaced by g — typically a partial crawl of the original graph.
// Ground truth, queries and the synthetic Web are shared, so g must
// use the same user identifiers (the crawler preserves them).
func (d *Dataset) WithGraph(g *socialgraph.Graph) *Dataset {
	out := *d
	out.Graph = g
	return &out
}

// QueriesInDomain returns the queries whose reference domain is dom.
func (d *Dataset) QueriesInDomain(dom kb.Domain) []Query {
	var out []Query
	for _, q := range d.Queries {
		if q.Domain == dom {
			out = append(out, q)
		}
	}
	return out
}
