package platform

import (
	"fmt"

	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
)

// Facebook generates the Facebook slice of the corpus: short,
// weakly-topical profiles, wall posts (owned, sometimes created by
// friends), likes, bidirectional friendships, and the groups and
// pages whose posts dominate the network's distance-2 volume.
type Facebook struct {
	// MeanOwnPosts is the average number of wall posts per candidate
	// (scaled by activity and Context.Scale).
	MeanOwnPosts float64
	// MeanLikes is the average number of annotated (liked) group/page
	// posts per candidate.
	MeanLikes float64
	// GroupsPerDomain is the number of groups per domain.
	GroupsPerDomain int
	// MeanGroupPosts is the average number of posts per group.
	MeanGroupPosts float64
	// Pages is the number of entity-focused pages.
	Pages int
	// MeanPagePosts is the average number of posts per page.
	MeanPagePosts float64
	// FriendProb is the probability that two candidates are friends.
	FriendProb float64
	// ChatterProb is the probability that an own post is generic
	// chatter rather than topical.
	ChatterProb float64
}

// DefaultFacebook returns the calibrated generator.
func DefaultFacebook() *Facebook {
	return &Facebook{
		MeanOwnPosts:    40,
		MeanLikes:       15,
		GroupsPerDomain: 4,
		MeanGroupPosts:  150,
		Pages:           40,
		MeanPagePosts:   80,
		FriendProb:      0.15,
		ChatterProb:     0.40,
	}
}

// Network implements Generator.
func (*Facebook) Network() socialgraph.Network { return socialgraph.Facebook }

// Generate implements Generator.
func (fb *Facebook) Generate(ctx *Context) {
	g, r := ctx.Graph, ctx.Rand
	net := socialgraph.Facebook

	// Profiles: a short bio, topical with probability proportional to
	// the candidate's strongest interest, plus — for most users — a
	// location line (the widespread geographic information of §3.7).
	for _, u := range ctx.Candidates {
		d, ok := topInterest(ctx, u)
		topical := ok && r.Float64() < 0.45+0.4*ctx.Interest(u, d)
		bio := ctx.Text.ShortBio(d, topical)
		if r.Float64() < 0.6 {
			bio += ", " + ctx.Text.CityLine()
		}
		g.SetProfile(u, net, bio)
	}

	// Friendships among candidates (bidirectional; the paper could not
	// crawl friends' content on Facebook, and neither do the Table 1
	// follow-paths, since every relationship here is mutual).
	for i, a := range ctx.Candidates {
		for _, b := range ctx.Candidates[i+1:] {
			if r.Float64() < fb.FriendProb {
				g.Befriend(a, b, net)
			}
		}
	}

	// Groups per domain, with external members authoring the posts.
	groupsByDomain := make(map[kb.Domain][]socialgraph.ContainerID)
	postsByDomain := make(map[kb.Domain][]socialgraph.ResourceID)
	for _, d := range kb.Domains {
		for gi := 0; gi < fb.GroupsPerDomain; gi++ {
			owner := g.AddUser(fmt.Sprintf("fb-group-owner-%s-%d", d, gi), false)
			name, desc := ctx.Text.GroupDesc(d)
			c := g.AddContainer(net, socialgraph.ContainerGroup, owner, name, desc)
			groupsByDomain[d] = append(groupsByDomain[d], c)
			n := poisson(r, ctx.scaled(fb.MeanGroupPosts))
			for p := 0; p < n; p++ {
				author := owner
				if r.Float64() < 0.8 {
					author = g.AddUser(fmt.Sprintf("fb-member-%s-%d-%d", d, gi, p), false)
				}
				text, urls := fb.memberPost(ctx, d)
				g.AddContainedResource(socialgraph.KindGroupPost, c, author, text, urls...)
			}
			postsByDomain[d] = append(postsByDomain[d], g.ContainedResources(c)...)
		}
	}

	// Entity-focused pages (e.g. the Facebook page of a band or club).
	pagesByDomain := make(map[kb.Domain][]socialgraph.ContainerID)
	for pi := 0; pi < fb.Pages; pi++ {
		d := kb.Domains[pi%len(kb.Domains)]
		owner := g.AddUser(fmt.Sprintf("fb-page-owner-%d", pi), false)
		name, desc := ctx.Text.GroupDesc(d)
		c := g.AddContainer(net, socialgraph.ContainerPage, owner, name, desc)
		pagesByDomain[d] = append(pagesByDomain[d], c)
		n := poisson(r, ctx.scaled(fb.MeanPagePosts))
		for p := 0; p < n; p++ {
			text, urls := fb.memberPost(ctx, d)
			g.AddContainedResource(socialgraph.KindPagePost, c, owner, text, urls...)
		}
		postsByDomain[d] = append(postsByDomain[d], g.ContainedResources(c)...)
	}

	// Candidate activity: wall posts, group/page memberships, likes.
	for _, u := range ctx.Candidates {
		nPosts := poisson(r, ctx.scaled(fb.MeanOwnPosts)*ctx.Activity(u))
		for p := 0; p < nPosts; p++ {
			var text string
			var urls []string
			if d, ok := pickDomain(ctx, u, net); ok && r.Float64() > fb.ChatterProb {
				text, urls = ctx.Text.TopicalPost(d)
			} else {
				text = ctx.Text.Chatter()
			}
			rid := g.AddResource(net, socialgraph.KindPost, u, text, urls...)
			g.Owns(u, rid)
		}

		// Memberships: join groups/pages of domains proportionally to
		// interest × network bias (kept selective: memberships spread
		// every contained post over all joining candidates, so loose
		// joining would flatten the expertise signal at distance 2);
		// everyone joins a little noise.
		for _, d := range kb.Domains {
			p := clamp(ctx.Interest(u, d)*DomainBias(net, d)*0.35, 0.8)
			for _, c := range groupsByDomain[d] {
				if r.Float64() < p {
					g.RelatesTo(u, c)
				}
			}
			for _, c := range pagesByDomain[d] {
				if r.Float64() < p*0.8 {
					g.RelatesTo(u, c)
				}
			}
		}
		if r.Float64() < 0.3 && len(groupsByDomain) > 0 {
			d := kb.Domains[r.Intn(len(kb.Domains))]
			gs := groupsByDomain[d]
			g.RelatesTo(u, gs[r.Intn(len(gs))])
		}

		// Likes on group/page posts, in the candidate's domains of
		// interest — annotations are genuine expertise clues, not
		// random clicks.
		nLikes := poisson(r, ctx.scaled(fb.MeanLikes)*ctx.Activity(u))
		for li := 0; li < nLikes; li++ {
			d, ok := pickDomain(ctx, u, net)
			if !ok {
				d = kb.Domains[r.Intn(len(kb.Domains))]
			}
			pool := postsByDomain[d]
			if len(pool) == 0 {
				continue
			}
			g.Annotates(u, pool[r.Intn(len(pool))])
		}
	}
}

// memberPost composes a group/page post: mostly topical, with some
// chatter mixed in.
func (fb *Facebook) memberPost(ctx *Context, d kb.Domain) (string, []string) {
	if ctx.Rand.Float64() < 0.2 {
		return ctx.Text.Chatter(), nil
	}
	return ctx.Text.TopicalPost(d)
}

// topInterest returns the candidate's highest-interest domain.
func topInterest(ctx *Context, u socialgraph.UserID) (kb.Domain, bool) {
	best, bestW := kb.Domain(""), 0.0
	for _, d := range kb.Domains {
		if w := ctx.Interest(u, d); w > bestW {
			best, bestW = d, w
		}
	}
	return best, bestW > 0.05
}
