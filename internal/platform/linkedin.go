package platform

import (
	"fmt"
	"sort"

	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
)

// LinkedIn generates the LinkedIn slice of the corpus: verbose,
// work-topical career profiles (the paper's explanation for the good
// distance-0 precision in computer engineering), very few status
// updates, and professional groups whose posts account for ~95% of
// the network's resources, all at distance 2 (§3.1).
type LinkedIn struct {
	// MeanUpdates is the average number of status updates per
	// candidate; the paper notes only few users contributed any.
	MeanUpdates float64
	// GroupsPerWorkDomain is the number of professional groups per
	// work-related domain.
	GroupsPerWorkDomain int
	// MeanGroupPosts is the average number of posts per group.
	MeanGroupPosts float64
	// ConnectionProb is the probability that two candidates are
	// connected (bidirectional, like Facebook friendship).
	ConnectionProb float64
}

// DefaultLinkedIn returns the calibrated generator.
func DefaultLinkedIn() *LinkedIn {
	return &LinkedIn{
		MeanUpdates:         2,
		GroupsPerWorkDomain: 4,
		MeanGroupPosts:      100,
		ConnectionProb:      0.25,
	}
}

// workDomains are the domains that plausibly appear in career
// profiles and professional groups.
var workDomains = []kb.Domain{kb.ComputerEngineering, kb.Technology, kb.Science}

// Network implements Generator.
func (*LinkedIn) Network() socialgraph.Network { return socialgraph.LinkedIn }

// Generate implements Generator.
func (li *LinkedIn) Generate(ctx *Context) {
	g, r := ctx.Graph, ctx.Rand
	net := socialgraph.LinkedIn

	// Career profiles centred on the candidate's strongest work
	// domains. Unlike Facebook/Twitter bios, these reflect skills and
	// work experience in detail — even for otherwise silent users,
	// since a LinkedIn profile is filled in once, not continuously.
	for _, u := range ctx.Candidates {
		work := rankedWorkDomains(ctx, u)
		g.SetProfile(u, net, ctx.Text.CareerProfile(work))
	}

	// Connections (bidirectional).
	for i, a := range ctx.Candidates {
		for _, b := range ctx.Candidates[i+1:] {
			if r.Float64() < li.ConnectionProb {
				g.Befriend(a, b, net)
			}
		}
	}

	// Professional groups with external members' posts.
	groupsByDomain := make(map[kb.Domain][]socialgraph.ContainerID)
	for _, d := range workDomains {
		for gi := 0; gi < li.GroupsPerWorkDomain; gi++ {
			owner := g.AddUser(fmt.Sprintf("li-group-owner-%s-%d", d, gi), false)
			name, desc := ctx.Text.GroupDesc(d)
			c := g.AddContainer(net, socialgraph.ContainerGroup, owner, name, desc)
			groupsByDomain[d] = append(groupsByDomain[d], c)
			n := poisson(r, ctx.scaled(li.MeanGroupPosts))
			for p := 0; p < n; p++ {
				author := owner
				if r.Float64() < 0.85 {
					author = g.AddUser(fmt.Sprintf("li-member-%s-%d-%d", d, gi, p), false)
				}
				text, urls := ctx.Text.TopicalPost(d)
				if r.Float64() < 0.1 {
					text, urls = ctx.Text.Chatter(), nil
				}
				g.AddContainedResource(socialgraph.KindGroupPost, c, author, text, urls...)
			}
		}
	}

	// Candidate activity: sparse updates and group memberships.
	for _, u := range ctx.Candidates {
		n := poisson(r, ctx.scaled(li.MeanUpdates)*ctx.Activity(u))
		for p := 0; p < n; p++ {
			var text string
			var urls []string
			if d, ok := pickDomain(ctx, u, net); ok && r.Float64() < 0.8 {
				text, urls = ctx.Text.TopicalPost(d)
			} else {
				text = ctx.Text.Chatter()
			}
			rid := g.AddResource(net, socialgraph.KindUpdate, u, text, urls...)
			g.Owns(u, rid)
		}
		for _, d := range workDomains {
			p := clamp(ctx.Interest(u, d)*DomainBias(net, d)*0.35, 0.8)
			for _, c := range groupsByDomain[d] {
				if r.Float64() < p {
					g.RelatesTo(u, c)
				}
			}
		}
	}
}

// rankedWorkDomains returns the work domains ordered by the
// candidate's latent skill, strongest first, keeping those with
// non-trivial competence. Skill (not Interest) drives the career
// profile: LinkedIn résumés reflect competence even for users who are
// silent elsewhere.
func rankedWorkDomains(ctx *Context, u socialgraph.UserID) []kb.Domain {
	type dw struct {
		d kb.Domain
		w float64
	}
	var ds []dw
	for _, d := range workDomains {
		if w := ctx.Skill(u, d); w > 0.45 {
			ds = append(ds, dw{d, w})
		}
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].w != ds[j].w {
			return ds[i].w > ds[j].w
		}
		return ds[i].d < ds[j].d
	})
	out := make([]kb.Domain, len(ds))
	for i, x := range ds {
		out[i] = x.d
	}
	return out
}
