package platform

import (
	"fmt"

	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
)

// Twitter generates the Twitter slice of the corpus: short bios, own
// tweets and favourites at distance 1, and — in place of groups and
// pages — thematically focused followed accounts (§2.2) whose profiles
// are distance-1 resources and whose tweets dominate distance 2.
// Candidates also maintain mutual follows (friends): real-world bonds
// whose content is off-topic w.r.t. the candidate's expertise, which
// is why including it does not help (§3.3.3, Table 2).
type Twitter struct {
	// MeanOwnTweets is the average number of tweets per candidate.
	MeanOwnTweets float64
	// MeanFavorites is the average number of favourited tweets per
	// candidate.
	MeanFavorites float64
	// AccountsPerDomain is the number of thematic accounts per domain.
	AccountsPerDomain int
	// MeanAccountTweets is the average number of tweets per thematic
	// account.
	MeanAccountTweets float64
	// FriendProb is the probability that two candidates mutually
	// follow each other.
	FriendProb float64
	// FriendAccounts is the number of external friend users (mutual
	// follows) per candidate, drawn Poisson.
	FriendAccounts float64
	// MeanFriendTweets is the average number of tweets per external
	// friend.
	MeanFriendTweets float64
	// ChatterProb is the probability that an own tweet is generic
	// chatter.
	ChatterProb float64
}

// DefaultTwitter returns the calibrated generator.
func DefaultTwitter() *Twitter {
	return &Twitter{
		MeanOwnTweets:     60,
		MeanFavorites:     15,
		AccountsPerDomain: 10,
		MeanAccountTweets: 60,
		FriendProb:        0.20,
		FriendAccounts:    3,
		MeanFriendTweets:  40,
		ChatterProb:       0.30,
	}
}

// Network implements Generator.
func (*Twitter) Network() socialgraph.Network { return socialgraph.Twitter }

// Generate implements Generator.
func (tw *Twitter) Generate(ctx *Context) {
	g, r := ctx.Graph, ctx.Rand
	net := socialgraph.Twitter

	// Candidate profiles: short bios, topical more often than on
	// Facebook (Twitter bios tend to state interests).
	for _, u := range ctx.Candidates {
		d, ok := topInterest(ctx, u)
		topical := ok && r.Float64() < 0.5+0.4*ctx.Interest(u, d)
		g.SetProfile(u, net, ctx.Text.ShortBio(d, topical))
	}

	// Thematic accounts: topical profile + a stream of topical tweets.
	accountsByDomain := make(map[kb.Domain][]socialgraph.UserID)
	accountTweets := make(map[socialgraph.UserID][]socialgraph.ResourceID)
	for _, d := range kb.Domains {
		for ai := 0; ai < tw.AccountsPerDomain; ai++ {
			acc := g.AddUser(fmt.Sprintf("tw-account-%s-%d", d, ai), false)
			g.SetProfile(acc, net, ctx.Text.AccountBio(d))
			accountsByDomain[d] = append(accountsByDomain[d], acc)
			n := poisson(r, ctx.scaled(tw.MeanAccountTweets))
			for ti := 0; ti < n; ti++ {
				text, urls := ctx.Text.TopicalPost(d)
				if r.Float64() < 0.1 {
					text = ctx.Text.Chatter()
					urls = nil
				}
				rid := g.AddResource(net, socialgraph.KindTweet, acc, text, urls...)
				g.Owns(acc, rid)
				accountTweets[acc] = append(accountTweets[acc], rid)
			}
		}
	}

	// Candidate ↔ candidate friendships (mutual follows).
	for i, a := range ctx.Candidates {
		for _, b := range ctx.Candidates[i+1:] {
			if r.Float64() < tw.FriendProb {
				g.Befriend(a, b, net)
			}
		}
	}

	for _, u := range ctx.Candidates {
		// Own tweets.
		nTweets := poisson(r, ctx.scaled(tw.MeanOwnTweets)*ctx.Activity(u))
		for ti := 0; ti < nTweets; ti++ {
			var text string
			var urls []string
			if d, ok := pickDomain(ctx, u, net); ok && r.Float64() > tw.ChatterProb {
				text, urls = ctx.Text.TopicalPost(d)
			} else {
				text = ctx.Text.Chatter()
			}
			rid := g.AddResource(net, socialgraph.KindTweet, u, text, urls...)
			g.Owns(u, rid)
		}

		// Follows: thematic accounts by interest (selective, for the
		// same distance-2 flattening reason as Facebook memberships).
		var followedPool []socialgraph.UserID
		for _, d := range kb.Domains {
			p := clamp(ctx.Interest(u, d)*DomainBias(net, d)*0.45, 0.8)
			for _, acc := range accountsByDomain[d] {
				if r.Float64() < p {
					g.Follows(u, acc, net)
					followedPool = append(followedPool, acc)
				}
			}
		}
		// A couple of off-interest follows as noise.
		for k := 0; k < 2; k++ {
			d := kb.Domains[r.Intn(len(kb.Domains))]
			accs := accountsByDomain[d]
			acc := accs[r.Intn(len(accs))]
			if !g.FollowsEdge(u, acc, net) {
				g.Follows(u, acc, net)
				followedPool = append(followedPool, acc)
			}
		}

		// External friends: mutual follows with their own off-topic
		// streams (real-world bonds do not imply shared expertise).
		nFriends := poisson(r, tw.FriendAccounts)
		for fi := 0; fi < nFriends; fi++ {
			fr := g.AddUser(fmt.Sprintf("tw-friend-%d-%d", u, fi), false)
			g.SetProfile(fr, net, ctx.Text.ShortBio(randomDomain(ctx), r.Float64() < 0.3))
			g.Befriend(u, fr, net)
			n := poisson(r, ctx.scaled(tw.MeanFriendTweets))
			for ti := 0; ti < n; ti++ {
				var text string
				var urls []string
				if r.Float64() < 0.5 {
					text, urls = ctx.Text.TopicalPost(randomDomain(ctx))
				} else {
					text = ctx.Text.Chatter()
				}
				rid := g.AddResource(net, socialgraph.KindTweet, fr, text, urls...)
				g.Owns(fr, rid)
			}
		}

		// Favourites: annotate tweets from followed accounts.
		nFavs := poisson(r, ctx.scaled(tw.MeanFavorites)*ctx.Activity(u))
		for li := 0; li < nFavs && len(followedPool) > 0; li++ {
			acc := followedPool[r.Intn(len(followedPool))]
			tweets := accountTweets[acc]
			if len(tweets) == 0 {
				continue
			}
			g.Annotates(u, tweets[r.Intn(len(tweets))])
		}
	}
}

func randomDomain(ctx *Context) kb.Domain {
	return kb.Domains[ctx.Rand.Intn(len(kb.Domains))]
}
