package platform

import (
	"math"
	"math/rand"
	"testing"

	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
	"expertfind/internal/webcontent"
)

// testContext builds a deterministic Context over nCandidates users:
// even-indexed candidates are sport experts, odd ones have no
// interests at all.
func testContext(t testing.TB, nCandidates int, scale float64) *Context {
	t.Helper()
	g := socialgraph.New()
	var cands []socialgraph.UserID
	for i := 0; i < nCandidates; i++ {
		cands = append(cands, g.AddUser("u", true))
	}
	return &Context{
		Graph:      g,
		Web:        webcontent.NewWeb(),
		KB:         kb.Builtin(),
		Rand:       rand.New(rand.NewSource(42)),
		Candidates: cands,
		Interest: func(u socialgraph.UserID, d kb.Domain) float64 {
			if u%2 == 0 && d == kb.Sport {
				return 0.8
			}
			return 0
		},
		Skill: func(u socialgraph.UserID, d kb.Domain) float64 {
			if u%2 == 0 && d == kb.ComputerEngineering {
				return 0.9
			}
			return 0.1
		},
		Activity: func(socialgraph.UserID) float64 { return 1 },
		Scale:    scale,
	}
}

func TestFacebookGenerate(t *testing.T) {
	ctx := testContext(t, 6, 0.1)
	ctx.Text = NewTextGen(ctx.KB, ctx.Web, ctx.Rand)
	fb := DefaultFacebook()
	if fb.Network() != socialgraph.Facebook {
		t.Fatal("wrong network")
	}
	fb.Generate(ctx)

	g := ctx.Graph
	// Every candidate has a Facebook profile.
	for _, u := range ctx.Candidates {
		if _, ok := g.Profile(u, socialgraph.Facebook); !ok {
			t.Errorf("candidate %d has no facebook profile", u)
		}
	}
	// Groups exist for every domain with posts in them.
	if g.NumContainers() < len(kb.Domains)*fb.GroupsPerDomain {
		t.Errorf("containers = %d", g.NumContainers())
	}
	// All resources are on Facebook.
	for i := 0; i < g.NumResources(); i++ {
		if net := g.Resource(socialgraph.ResourceID(i)).Network; net != socialgraph.Facebook {
			t.Fatalf("resource %d on %s", i, net)
		}
	}
}

func TestFacebookInterestDrivesReach(t *testing.T) {
	ctx := testContext(t, 10, 0.3)
	ctx.Text = NewTextGen(ctx.KB, ctx.Web, ctx.Rand)
	DefaultFacebook().Generate(ctx)

	// Sport-interested (even) candidates must reach more distance-2
	// resources than interest-free (odd) ones, on average.
	var evenSum, oddSum float64
	for _, u := range ctx.Candidates {
		n := float64(len(ctx.Graph.ResourcesWithin(u, socialgraph.TraversalOptions{MaxDistance: 2})))
		if u%2 == 0 {
			evenSum += n
		} else {
			oddSum += n
		}
	}
	if evenSum <= oddSum {
		t.Errorf("interested candidates reach %.0f resources, uninterested %.0f", evenSum, oddSum)
	}
}

func TestTwitterGenerate(t *testing.T) {
	ctx := testContext(t, 6, 0.1)
	ctx.Text = NewTextGen(ctx.KB, ctx.Web, ctx.Rand)
	tw := DefaultTwitter()
	if tw.Network() != socialgraph.Twitter {
		t.Fatal("wrong network")
	}
	tw.Generate(ctx)

	g := ctx.Graph
	for _, u := range ctx.Candidates {
		if _, ok := g.Profile(u, socialgraph.Twitter); !ok {
			t.Errorf("candidate %d has no twitter profile", u)
		}
	}
	// Sport-interested candidates follow sport accounts
	// (unidirectionally), so they reach followed profiles at dist 1.
	reached := false
	for _, u := range ctx.Candidates {
		if u%2 != 0 {
			continue
		}
		if len(g.Followed(u, socialgraph.Twitter, false)) > 0 {
			reached = true
		}
	}
	if !reached {
		t.Error("no interested candidate follows any thematic account")
	}
	// Twitter has no containers.
	if g.NumContainers() != 0 {
		t.Errorf("twitter created %d containers", g.NumContainers())
	}
}

func TestTwitterFriendsAreMutual(t *testing.T) {
	ctx := testContext(t, 8, 0.1)
	ctx.Text = NewTextGen(ctx.KB, ctx.Web, ctx.Rand)
	DefaultTwitter().Generate(ctx)
	g := ctx.Graph

	// External friend users mutually follow their candidate; the
	// default traversal must therefore NOT reach their tweets, while
	// IncludeFriends must.
	for _, u := range ctx.Candidates {
		base := len(g.ResourcesWithin(u, socialgraph.TraversalOptions{MaxDistance: 2}))
		withFriends := len(g.ResourcesWithin(u, socialgraph.TraversalOptions{MaxDistance: 2, IncludeFriends: true}))
		if withFriends < base {
			t.Fatalf("friend expansion shrank reach: %d -> %d", base, withFriends)
		}
	}
}

func TestLinkedInGenerate(t *testing.T) {
	ctx := testContext(t, 6, 0.1)
	ctx.Text = NewTextGen(ctx.KB, ctx.Web, ctx.Rand)
	li := DefaultLinkedIn()
	if li.Network() != socialgraph.LinkedIn {
		t.Fatal("wrong network")
	}
	li.Generate(ctx)

	g := ctx.Graph
	// Career profiles of skilled (even) candidates mention computer
	// engineering vocabulary or entities; unskilled profiles are
	// generic.
	for _, u := range ctx.Candidates {
		rid, ok := g.Profile(u, socialgraph.LinkedIn)
		if !ok {
			t.Fatalf("candidate %d has no linkedin profile", u)
		}
		text := g.Resource(rid).Text
		if u%2 == 0 && len(text) < 60 {
			t.Errorf("skilled candidate %d has a thin career profile: %q", u, text)
		}
	}
}

func TestDomainBiasShapesTopics(t *testing.T) {
	if DomainBias(socialgraph.LinkedIn, kb.ComputerEngineering) <= DomainBias(socialgraph.LinkedIn, kb.Music) {
		t.Error("linkedin must favor computer engineering over music")
	}
	if DomainBias(socialgraph.Facebook, kb.MoviesTV) <= DomainBias(socialgraph.Facebook, kb.Science) {
		t.Error("facebook must favor movies over science")
	}
	if DomainBias(socialgraph.Twitter, kb.ComputerEngineering) <= DomainBias(socialgraph.Facebook, kb.ComputerEngineering) {
		t.Error("twitter must favor computer engineering more than facebook")
	}
}

func TestPickDomainRespectsInterest(t *testing.T) {
	ctx := testContext(t, 2, 1)
	// Candidate 0 is sport-only: apart from the off-interest share,
	// picks must be sport.
	sport, other, none := 0, 0, 0
	for i := 0; i < 1000; i++ {
		d, ok := pickDomain(ctx, ctx.Candidates[0], socialgraph.Facebook)
		switch {
		case !ok:
			none++
		case d == kb.Sport:
			sport++
		default:
			other++
		}
	}
	if sport < 700 {
		t.Errorf("sport picked %d/1000", sport)
	}
	if other > 250 { // ≈ offInterestProb·6/7
		t.Errorf("off-interest picked %d/1000", other)
	}
	// Candidate 1 has no interests: only off-interest picks succeed.
	okCount := 0
	for i := 0; i < 1000; i++ {
		if _, ok := pickDomain(ctx, ctx.Candidates[1], socialgraph.Facebook); ok {
			okCount++
		}
	}
	if okCount < 100 || okCount > 250 {
		t.Errorf("interest-free candidate picked a domain %d/1000, want ≈150", okCount)
	}
}

func TestPoisson(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for _, mean := range []float64{0, 0.5, 3, 10, 80} {
		n := 20000
		sum := 0
		for i := 0; i < n; i++ {
			k := poisson(r, mean)
			if k < 0 {
				t.Fatalf("negative poisson draw %d", k)
			}
			sum += k
		}
		got := float64(sum) / float64(n)
		if math.Abs(got-mean) > 0.05*mean+0.05 {
			t.Errorf("poisson mean %v: sample mean %v", mean, got)
		}
	}
	if poisson(r, -1) != 0 {
		t.Error("negative mean must yield 0")
	}
}

func TestClampAndScaled(t *testing.T) {
	if clamp(-0.5, 1) != 0 || clamp(0.5, 1) != 0.5 || clamp(2, 1) != 1 {
		t.Error("clamp wrong")
	}
	ctx := &Context{Scale: 2}
	if ctx.scaled(3) != 6 {
		t.Error("scaled wrong")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	build := func() int {
		ctx := testContext(t, 5, 0.1)
		ctx.Text = NewTextGen(ctx.KB, ctx.Web, rand.New(rand.NewSource(7)))
		DefaultFacebook().Generate(ctx)
		DefaultTwitter().Generate(ctx)
		DefaultLinkedIn().Generate(ctx)
		return ctx.Graph.NumResources()
	}
	if a, b := build(), build(); a != b {
		t.Errorf("nondeterministic generation: %d vs %d resources", a, b)
	}
}
