package platform

import (
	"math/rand"
	"strings"
	"testing"

	"expertfind/internal/kb"
	"expertfind/internal/langid"
	"expertfind/internal/webcontent"
)

func newGen(seed int64) (*TextGen, *webcontent.Web) {
	web := webcontent.NewWeb()
	return NewTextGen(kb.Builtin(), web, rand.New(rand.NewSource(seed))), web
}

func TestTopicalPostMentionsDomainContent(t *testing.T) {
	g, web := newGen(1)
	k := kb.Builtin()
	for _, d := range kb.Domains {
		found := false
		for i := 0; i < 20 && !found; i++ {
			text, urls := g.TopicalPost(d)
			// The post must contain at least one vocabulary word or
			// entity surface of its domain.
			for _, w := range k.Vocab(d) {
				if strings.Contains(text, w) {
					found = true
				}
			}
			for _, e := range k.EntitiesInDomain(d) {
				if strings.Contains(text, kb.SurfaceForm(e.Label)) {
					found = true
				}
			}
			for _, u := range urls {
				if _, ok := web.Lookup(u); !ok {
					t.Fatalf("unregistered url %s", u)
				}
			}
		}
		if !found {
			t.Errorf("domain %s: no topical content in 20 posts", d)
		}
	}
}

func TestTopicalPostURLRate(t *testing.T) {
	g, _ := newGen(2)
	withURL := 0
	const n = 2000
	for i := 0; i < n; i++ {
		_, urls := g.TopicalPost(kb.Sport)
		if len(urls) > 0 {
			withURL++
		}
	}
	frac := float64(withURL) / n
	if frac < 0.65 || frac > 0.75 {
		t.Errorf("url rate = %.3f, want ≈0.70", frac)
	}
}

func TestChatterLanguageMix(t *testing.T) {
	g, _ := newGen(3)
	nonEnglish := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if langid.Identify(g.Chatter()) != langid.English {
			nonEnglish++
		}
	}
	frac := float64(nonEnglish) / n
	if frac < 0.2 || frac > 0.4 {
		t.Errorf("non-english chatter rate = %.3f, want ≈0.30", frac)
	}
}

func TestTopicalPostsAreEnglish(t *testing.T) {
	g, _ := newGen(4)
	for i := 0; i < 50; i++ {
		text, _ := g.TopicalPost(kb.Science)
		if lang := langid.Identify(text); lang != langid.English {
			t.Errorf("topical post classified %v: %q", lang, text)
		}
	}
}

func TestShortBio(t *testing.T) {
	g, _ := newGen(5)
	topical := g.ShortBio(kb.Sport, true)
	if topical == "" {
		t.Fatal("empty topical bio")
	}
	generic := g.ShortBio(kb.Sport, false)
	if generic == "" {
		t.Fatal("empty generic bio")
	}
	// Generic bios never contain sport vocabulary.
	for _, w := range kb.Builtin().Vocab(kb.Sport) {
		if strings.Contains(generic, w) {
			t.Errorf("generic bio mentions %q: %q", w, generic)
		}
	}
}

func TestCareerProfile(t *testing.T) {
	g, _ := newGen(6)
	long := g.CareerProfile([]kb.Domain{kb.ComputerEngineering, kb.Technology})
	if len(long) < 80 {
		t.Errorf("career profile too short: %q", long)
	}
	empty := g.CareerProfile(nil)
	if empty == "" {
		t.Error("empty-profile fallback missing")
	}
}

func TestGroupDescAndAccountBio(t *testing.T) {
	g, _ := newGen(7)
	name, desc := g.GroupDesc(kb.Music)
	if name == "" || desc == "" {
		t.Fatalf("group = %q / %q", name, desc)
	}
	if !strings.Contains(name, "community") {
		t.Errorf("group name %q", name)
	}
	if bio := g.AccountBio(kb.Technology); bio == "" {
		t.Error("empty account bio")
	}
}

func TestCityLine(t *testing.T) {
	g, _ := newGen(8)
	line := g.CityLine()
	if !strings.HasPrefix(line, "living in ") {
		t.Errorf("city line %q", line)
	}
}

func TestTitleCase(t *testing.T) {
	tests := []struct{ in, want string }{
		{"ac milan", "Ac Milan"},
		{"php", "Php"},
		{"", ""},
	}
	for _, tc := range tests {
		if got := titleCase(tc.in); got != tc.want {
			t.Errorf("titleCase(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSurfaceFormsAreSpottable(t *testing.T) {
	// Every entity's generation surface must resolve back to an
	// anchor of the KB, otherwise generated mentions would be
	// invisible to the annotator.
	k := kb.Builtin()
	for _, e := range k.Entities() {
		surface := kb.SurfaceForm(e.Label)
		if cands, _ := k.Candidates(kb.NormalizeAnchor(surface)); cands == nil {
			t.Errorf("surface %q of %q is not an anchor", surface, e.Label)
		}
	}
}
