package platform

import (
	"fmt"
	"math/rand"
	"strings"

	"expertfind/internal/kb"
)

// TextGen composes synthetic resource texts: topical posts that
// mention knowledge-base entities and domain vocabulary (so they are
// spottable by the annotator and matchable by the vector-space model),
// generic chatter, non-English posts (filtered later by the language
// identification step, as ~30% of the paper's corpus was), profile
// bios, career summaries, and the external Web pages that ~70% of
// resources link to.
type TextGen struct {
	kb     *kb.KB
	web    webRegistry
	rand   *rand.Rand
	urlSeq int

	// URLProb is the probability that a topical post links an external
	// page (the paper reports 70% of resources containing a URL).
	URLProb float64
	// NonEnglishProb is the probability that a chatter post is written
	// in a non-English language (~30% of the paper's corpus).
	NonEnglishProb float64
}

// webRegistry is the subset of webcontent.Web that TextGen needs;
// kept as an interface so tests can observe page registration.
type webRegistry interface {
	AddPage(url, title, main string)
}

// NewTextGen returns a generator drawing entities and vocabulary from
// k, registering linked pages in web, and using r for all randomness.
func NewTextGen(k *kb.KB, web webRegistry, r *rand.Rand) *TextGen {
	return &TextGen{kb: k, web: web, rand: r, URLProb: 0.7, NonEnglishProb: 0.30}
}

var postTemplates = []string{
	"just read a great article about %e, the %v details were impressive and worth your time",
	"spent the whole evening on %v and %v again, %e never disappoints me",
	"can anyone recommend good resources about %e? i really want to improve my %v skills",
	"thinking about %e again today, such an amazing %v story when you look closely",
	"long day of %v work, but the news about %e made everything better tonight",
	"wow, %e just announced something big and the whole %v community is excited about it",
	"hot take: %e is a bit overrated, the real %v gems are found elsewhere honestly",
	"finally understood how %v actually works thanks to a brilliant post about %e",
	"%v and %v night tonight, reading everything i can find about %e",
	"quick question about %e: how does the %v part actually work in practice?",
	"wrote a long piece on %v yesterday and compared notes on %e with a colleague",
	"the %v scene keeps getting better, and %e is leading the charge this year",
}

var chatterEnglish = []string{
	"what a week, so tired but happy that it is finally over tonight",
	"coffee first, everything else can wait until later this morning",
	"happy birthday to my wonderful sister, hope the year treats her well",
	"cannot believe how fast this year is flying by, almost december already",
	"rainy sunday, blankets and tea and absolutely no plans whatsoever",
	"there was such a long line at the shop again, they say patience is a virtue",
	"we are having dinner with the whole family tonight and i could not be happier",
	"traffic was terrible this morning, almost missed the early meeting",
	"new haircut day, feeling like a completely different person now",
	"weekend plans: absolutely nothing and i am very much looking forward to it",
}

var chatterNonEnglish = []string{
	"che settimana lunga, finalmente arriva il fine settimana e posso riposare un poco",
	"stasera cena con gli amici di sempre, non vedo l'ora di raccontare tutto",
	"il traffico di questa mattina era davvero impossibile, sono arrivato tardissimo",
	"qué semana tan larga, por fin llega el fin de semana y puedo descansar",
	"esta noche cena con los amigos de siempre, tengo muchas ganas de verlos",
	"oggi il tempo è bellissimo e ho voglia di fare una lunga passeggiata in centro",
	"domani si torna al lavoro ma almeno oggi mi godo questa giornata tranquilla",
	"el tráfico de esta mañana era imposible, llegué tardísimo a la oficina",
}

var pageTemplates = []string{
	"This in-depth article examines %e from every angle. Readers interested in %v will find a" +
		" detailed discussion of %v and %v, with expert commentary and historical context." +
		" The piece closes with an analysis of how %e compares with its peers and what the" +
		" %v community expects next.",
	"A comprehensive guide to %e. We cover the fundamentals of %v, walk through practical" +
		" %v examples, and interview specialists about the future of %v. Whether you are new" +
		" to %e or a seasoned follower, there is something here for you.",
	"Breaking analysis: everything you need to know about %e this season. Our correspondents" +
		" break down the %v situation, assess the %v implications, and rank the key moments." +
		" The %v angle receives particular attention in the second half.",
}

// TopicalPost composes a post about domain d: a template filled with
// a domain entity and vocabulary words, plus an optional linked Web
// page (registered in the synthetic Web) whose extracted content
// reinforces the topical signal.
func (t *TextGen) TopicalPost(d kb.Domain) (text string, urls []string) {
	tmpl := postTemplates[t.rand.Intn(len(postTemplates))]
	text = t.fill(tmpl, d)
	if t.rand.Float64() < t.URLProb {
		urls = []string{t.registerPage(d)}
	}
	return text, urls
}

// Chatter composes a generic, non-topical post; a fraction of them is
// non-English so the corpus exercises the language filter.
func (t *TextGen) Chatter() string {
	if t.rand.Float64() < t.NonEnglishProb {
		return chatterNonEnglish[t.rand.Intn(len(chatterNonEnglish))]
	}
	return chatterEnglish[t.rand.Intn(len(chatterEnglish))]
}

// ShortBio composes a Facebook/Twitter-style profile line. When
// topical is set, it mentions the given domain's vocabulary and one
// entity (the fragmentary expertise signal that distance-0 retrieval
// has to work with); otherwise it is purely generic.
func (t *TextGen) ShortBio(d kb.Domain, topical bool) string {
	if !topical {
		generic := []string{
			"living one day at a time and enjoying the ride",
			"proud parent, occasional cook, full time dreamer",
			"here for the memes and the good conversations",
			"just a regular person with an internet connection",
			"trying to be better than yesterday, every day",
		}
		return generic[t.rand.Intn(len(generic))]
	}
	tmpl := []string{
		"big fan of %v and %v, always happy to talk about %e",
		"%v enthusiast, follower of everything %e related",
		"i spend my weekends on %v, %e fan since forever",
	}
	return t.fill(tmpl[t.rand.Intn(len(tmpl))], d)
}

// CityLine returns a location fragment appended to many profiles
// regardless of expertise: the widespread geographic information that
// makes the Location domain hard for the system (§3.7).
func (t *TextGen) CityLine() string {
	cities := t.kb.EntitiesInDomain(kb.Location)
	var cityNames []string
	for _, e := range cities {
		if e.Type == "City" {
			cityNames = append(cityNames, kb.SurfaceForm(e.Label))
		}
	}
	return "living in " + cityNames[t.rand.Intn(len(cityNames))]
}

// CareerProfile composes a verbose LinkedIn-style career description
// centred on the given work domains, in decreasing order of weight.
func (t *TextGen) CareerProfile(work []kb.Domain) string {
	if len(work) == 0 {
		return "professional with several years of cross functional industry experience"
	}
	var b strings.Builder
	titles := []string{
		"senior engineer", "consultant", "team lead", "research associate",
		"product specialist", "freelance professional", "analyst",
	}
	fmt.Fprintf(&b, "%s with %d years of experience", titles[t.rand.Intn(len(titles))], 3+t.rand.Intn(15))
	for i, d := range work {
		if i >= 2 {
			break
		}
		b.WriteString(". ")
		b.WriteString(t.fill("worked extensively with %e and %e, skilled in %v, %v and %v", d))
	}
	b.WriteString(". open to interesting opportunities and collaborations")
	return b.String()
}

// GroupDesc composes the textual description of a group or page
// focused on domain d.
func (t *TextGen) GroupDesc(d kb.Domain) (name, desc string) {
	e := t.entity(d)
	v := t.vocab(d)
	name = fmt.Sprintf("%s %s community", titleCase(kb.SurfaceForm(e.Label)), v)
	desc = t.fill("a community for people who love %e and everything about %v and %v", d)
	return name, desc
}

// AccountBio composes the profile of a thematically focused Twitter
// account (the followed users that stand in for groups/pages on
// Twitter, §2.2).
func (t *TextGen) AccountBio(d kb.Domain) string {
	tmpl := []string{
		"official updates about %e, daily %v news and %v commentary",
		"all things %e: %v analysis, interviews and breaking %v stories",
		"your daily dose of %v, covering %e since 2009",
	}
	return t.fill(tmpl[t.rand.Intn(len(tmpl))], d)
}

// fill replaces %e with entity surface forms and %v with vocabulary
// words of the domain, drawing independently for each placeholder.
func (t *TextGen) fill(tmpl string, d kb.Domain) string {
	var b strings.Builder
	for i := 0; i < len(tmpl); i++ {
		if tmpl[i] == '%' && i+1 < len(tmpl) {
			switch tmpl[i+1] {
			case 'e':
				b.WriteString(kb.SurfaceForm(t.entity(d).Label))
				i++
				continue
			case 'v':
				b.WriteString(t.vocab(d))
				i++
				continue
			}
		}
		b.WriteByte(tmpl[i])
	}
	return b.String()
}

// titleCase uppercases the first letter of every space-separated word.
func titleCase(s string) string {
	words := strings.Fields(s)
	for i, w := range words {
		words[i] = strings.ToUpper(w[:1]) + w[1:]
	}
	return strings.Join(words, " ")
}

func (t *TextGen) entity(d kb.Domain) kb.Entity {
	ents := t.kb.EntitiesInDomain(d)
	return ents[t.rand.Intn(len(ents))]
}

func (t *TextGen) vocab(d kb.Domain) string {
	v := t.kb.Vocab(d)
	return v[t.rand.Intn(len(v))]
}

// registerPage creates a synthetic Web page about domain d and
// returns its URL.
func (t *TextGen) registerPage(d kb.Domain) string {
	t.urlSeq++
	url := fmt.Sprintf("https://%s.example.com/article/%d", strings.ReplaceAll(string(d), "-", ""), t.urlSeq)
	e := t.entity(d)
	title := fmt.Sprintf("Everything about %s", kb.SurfaceForm(e.Label))
	tmpl := pageTemplates[t.rand.Intn(len(pageTemplates))]
	body := t.fill(strings.ReplaceAll(tmpl, "%e", kb.SurfaceForm(e.Label)), d)
	t.web.AddPage(url, title, body)
	return url
}
