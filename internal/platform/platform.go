// Package platform simulates the three social platforms of the paper
// — Facebook, Twitter and LinkedIn — as generators that populate a
// socialgraph.Graph with meta-model instances whose structure and
// topical statistics match what the paper reports for each network
// (§2.2, §3.1, Fig. 5a):
//
//   - Facebook: bidirectional friendships; the largest resource
//     volume, dominated by group and page posts at distance 2;
//     content leaning towards entertainment domains (location, music,
//     sport, movies & tv).
//   - Twitter: directed follows; the largest distance-1 volume (own
//     tweets plus followed-user profiles); thematically focused
//     followed accounts standing in for groups/pages; content leaning
//     towards computer engineering, science, sport and technology.
//   - LinkedIn: few resources, 95% of them group posts at distance 2;
//     verbose, work-topical profiles (the paper's explanation for its
//     good distance-0 precision in computer engineering).
//
// The generators are deterministic given the Context's seeded random
// source.
package platform

import (
	"math"
	"math/rand"

	"expertfind/internal/kb"
	"expertfind/internal/socialgraph"
	"expertfind/internal/webcontent"
)

// Context carries the shared state a network generator operates on.
type Context struct {
	Graph *socialgraph.Graph
	Web   *webcontent.Web
	KB    *kb.KB
	Rand  *rand.Rand
	Text  *TextGen

	// Candidates is the expert-candidate pool CE.
	Candidates []socialgraph.UserID

	// Interest returns the propensity in [0, 1] of a candidate to
	// produce or consume content about a domain. It folds together the
	// candidate's latent expertise and how much of it they express on
	// social platforms (§3.7: silent experts have near-zero interest
	// everywhere even when their self-assessment is high).
	Interest func(u socialgraph.UserID, d kb.Domain) float64

	// Skill returns the candidate's latent expertise in [0, 1] for a
	// domain, independent of how much of it they express in their
	// social activity. LinkedIn career profiles are driven by Skill
	// rather than Interest: a résumé is filled in once and reflects
	// actual competence even for users who never post (§3.7).
	Skill func(u socialgraph.UserID, d kb.Domain) float64

	// Activity scales a candidate's posting volume (mean 1, heavy
	// tailed: some users publish thousands of resources, some almost
	// none — the spread visible in Fig. 10).
	Activity func(u socialgraph.UserID) float64

	// Scale multiplies every volume constant; 1.0 generates ≈20k
	// resources for 40 candidates.
	Scale float64
}

// Generator populates the graph with one platform's users, resources
// and relationships.
type Generator interface {
	Network() socialgraph.Network
	Generate(ctx *Context)
}

// DomainBias returns the per-network multiplier applied to a domain's
// probability of being the topic of a resource, encoding each
// platform's editorial slant as reported in §3.6–§3.7.
func DomainBias(net socialgraph.Network, d kb.Domain) float64 {
	return domainBias[net][d]
}

var domainBias = map[socialgraph.Network]map[kb.Domain]float64{
	socialgraph.Facebook: {
		kb.ComputerEngineering: 0.30,
		kb.Location:            1.30,
		kb.MoviesTV:            1.50,
		kb.Music:               1.40,
		kb.Science:             0.25,
		kb.Sport:               1.30,
		kb.Technology:          0.80,
	},
	socialgraph.Twitter: {
		kb.ComputerEngineering: 1.50,
		kb.Location:            0.70,
		kb.MoviesTV:            0.90,
		kb.Music:               0.90,
		kb.Science:             1.20,
		kb.Sport:               1.20,
		kb.Technology:          1.40,
	},
	socialgraph.LinkedIn: {
		kb.ComputerEngineering: 2.00,
		kb.Location:            0.10,
		kb.MoviesTV:            0.05,
		kb.Music:               0.05,
		kb.Science:             0.80,
		kb.Sport:               0.10,
		kb.Technology:          0.80,
	},
}

// offInterestProb is the probability that a topical resource is about
// a uniformly random domain instead of one the candidate cares about:
// people share articles, retweet acquaintances and comment on current
// events outside their interests, which blurs the expertise signal
// (part of why the paper's absolute precision stays moderate).
const offInterestProb = 0.15

// pickDomain draws a topic domain for a candidate's resource on a
// network, weighting each domain by interest × bias. It returns false
// when the candidate has no topical pull at all (the resource becomes
// generic chatter).
func pickDomain(ctx *Context, u socialgraph.UserID, net socialgraph.Network) (kb.Domain, bool) {
	if ctx.Rand.Float64() < offInterestProb {
		return kb.Domains[ctx.Rand.Intn(len(kb.Domains))], true
	}
	weights := make([]float64, len(kb.Domains))
	total := 0.0
	for i, d := range kb.Domains {
		w := ctx.Interest(u, d) * DomainBias(net, d)
		weights[i] = w
		total += w
	}
	if total < 1e-6 {
		return "", false
	}
	x := ctx.Rand.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return kb.Domains[i], true
		}
	}
	return kb.Domains[len(kb.Domains)-1], true
}

// poisson draws a Poisson-distributed count with the given mean
// (Knuth's algorithm; the means used here are small). Means below
// zero yield zero.
func poisson(r *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		// Normal approximation for large means.
		n := int(mean + math.Sqrt(mean)*r.NormFloat64() + 0.5)
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// scaled multiplies a base volume by the context scale.
func (ctx *Context) scaled(base float64) float64 { return base * ctx.Scale }

// clamp01 limits v to [0, hi].
func clamp(v, hi float64) float64 {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}
