package socialgraph

import (
	"fmt"
	"sort"
)

// Snapshot is a plain, serialization-friendly copy of a Graph: all
// nodes and edges of the meta-model as flat slices, with stable IDs.
// It is the interchange format used by the corpus save/load layer.
type Snapshot struct {
	Users      []User        `json:"users"`
	Resources  []Resource    `json:"resources"`
	Containers []Container   `json:"containers"`
	Profiles   []ProfileEdge `json:"profiles"`
	Owns       []UserRes     `json:"owns"`
	Creates    []UserRes     `json:"creates"`
	Annotates  []UserRes     `json:"annotates"`
	RelatesTo  []UserCont    `json:"relates_to"`
	Contains   []ContRes     `json:"contains"`
	Follows    []FollowEdge  `json:"follows"`
}

// ProfileEdge links a user to its profile resource on a network.
type ProfileEdge struct {
	User     UserID     `json:"user"`
	Network  Network    `json:"network"`
	Resource ResourceID `json:"resource"`
}

// UserRes is a user→resource edge.
type UserRes struct {
	User     UserID     `json:"user"`
	Resource ResourceID `json:"resource"`
}

// UserCont is a user→container edge.
type UserCont struct {
	User      UserID      `json:"user"`
	Container ContainerID `json:"container"`
}

// ContRes is a container→resource edge.
type ContRes struct {
	Container ContainerID `json:"container"`
	Resource  ResourceID  `json:"resource"`
}

// FollowEdge is a directed social relationship on a network.
type FollowEdge struct {
	From    UserID  `json:"from"`
	To      UserID  `json:"to"`
	Network Network `json:"network"`
}

// Snapshot exports the graph. Edge lists are emitted in deterministic
// order, so equal graphs produce identical snapshots.
func (g *Graph) Snapshot() *Snapshot {
	s := &Snapshot{
		Users:      append([]User(nil), g.users...),
		Resources:  append([]Resource(nil), g.resources...),
		Containers: append([]Container(nil), g.containers...),
	}
	for u := UserID(0); int(u) < len(g.users); u++ {
		for _, net := range Networks {
			if rid, ok := g.profiles[profileKey{u, net}]; ok {
				s.Profiles = append(s.Profiles, ProfileEdge{User: u, Network: net, Resource: rid})
			}
		}
		for _, r := range g.owns[u] {
			s.Owns = append(s.Owns, UserRes{User: u, Resource: r})
		}
		for _, r := range g.creates[u] {
			s.Creates = append(s.Creates, UserRes{User: u, Resource: r})
		}
		for _, r := range g.annotates[u] {
			s.Annotates = append(s.Annotates, UserRes{User: u, Resource: r})
		}
		for _, c := range g.relatesTo[u] {
			s.RelatesTo = append(s.RelatesTo, UserCont{User: u, Container: c})
		}
	}
	for c := ContainerID(0); int(c) < len(g.containers); c++ {
		for _, r := range g.contains[c] {
			s.Contains = append(s.Contains, ContRes{Container: c, Resource: r})
		}
	}
	for _, net := range Networks {
		m := g.follows[net]
		froms := make([]UserID, 0, len(m))
		for u := range m {
			froms = append(froms, u)
		}
		sort.Slice(froms, func(i, j int) bool { return froms[i] < froms[j] })
		for _, from := range froms {
			tos := make([]UserID, 0, len(m[from]))
			for to := range m[from] {
				tos = append(tos, to)
			}
			sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
			for _, to := range tos {
				s.Follows = append(s.Follows, FollowEdge{From: from, To: to, Network: net})
			}
		}
	}
	return s
}

// FromSnapshot rebuilds a graph from a snapshot, validating that all
// referenced IDs exist and are consistent.
func FromSnapshot(s *Snapshot) (*Graph, error) {
	g := New()
	for i, u := range s.Users {
		if int(u.ID) != i {
			return nil, fmt.Errorf("socialgraph: user %d has ID %d", i, u.ID)
		}
		g.users = append(g.users, u)
	}
	for i, r := range s.Resources {
		if int(r.ID) != i {
			return nil, fmt.Errorf("socialgraph: resource %d has ID %d", i, r.ID)
		}
		if err := g.checkUser(r.Creator); err != nil {
			return nil, fmt.Errorf("socialgraph: resource %d: %w", i, err)
		}
		if r.Container != NoContainer {
			if int(r.Container) < 0 || int(r.Container) >= len(s.Containers) {
				return nil, fmt.Errorf("socialgraph: resource %d references container %d", i, r.Container)
			}
		}
		g.resources = append(g.resources, r)
	}
	for i, c := range s.Containers {
		if int(c.ID) != i {
			return nil, fmt.Errorf("socialgraph: container %d has ID %d", i, c.ID)
		}
		if err := g.checkResource(c.Desc); err != nil {
			return nil, fmt.Errorf("socialgraph: container %d description: %w", i, err)
		}
		g.containers = append(g.containers, c)
	}
	for _, p := range s.Profiles {
		if err := g.checkUser(p.User); err != nil {
			return nil, err
		}
		if err := g.checkResource(p.Resource); err != nil {
			return nil, err
		}
		g.profiles[profileKey{p.User, p.Network}] = p.Resource
	}
	addUR := func(dst map[UserID][]ResourceID, edges []UserRes) error {
		for _, e := range edges {
			if err := g.checkUser(e.User); err != nil {
				return err
			}
			if err := g.checkResource(e.Resource); err != nil {
				return err
			}
			dst[e.User] = append(dst[e.User], e.Resource)
		}
		return nil
	}
	if err := addUR(g.owns, s.Owns); err != nil {
		return nil, err
	}
	if err := addUR(g.creates, s.Creates); err != nil {
		return nil, err
	}
	if err := addUR(g.annotates, s.Annotates); err != nil {
		return nil, err
	}
	for _, e := range s.RelatesTo {
		if err := g.checkUser(e.User); err != nil {
			return nil, err
		}
		if int(e.Container) < 0 || int(e.Container) >= len(g.containers) {
			return nil, fmt.Errorf("socialgraph: relatesTo references container %d", e.Container)
		}
		g.relatesTo[e.User] = append(g.relatesTo[e.User], e.Container)
	}
	for _, e := range s.Contains {
		if int(e.Container) < 0 || int(e.Container) >= len(g.containers) {
			return nil, fmt.Errorf("socialgraph: contains references container %d", e.Container)
		}
		if err := g.checkResource(e.Resource); err != nil {
			return nil, err
		}
		g.contains[e.Container] = append(g.contains[e.Container], e.Resource)
	}
	for _, e := range s.Follows {
		if err := g.checkUser(e.From); err != nil {
			return nil, err
		}
		if err := g.checkUser(e.To); err != nil {
			return nil, err
		}
		if e.From == e.To {
			return nil, fmt.Errorf("socialgraph: self-follow for user %d", e.From)
		}
		g.Follows(e.From, e.To, e.Network)
	}
	return g, nil
}

func (g *Graph) checkUser(u UserID) error {
	if int(u) < 0 || int(u) >= len(g.users) {
		return fmt.Errorf("unknown user %d", u)
	}
	return nil
}

func (g *Graph) checkResource(r ResourceID) error {
	if int(r) < 0 || int(r) >= len(g.resources) {
		return fmt.Errorf("unknown resource %d", r)
	}
	return nil
}
