package socialgraph

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestSnapshotRoundTrip(t *testing.T) {
	f := buildPaperExample()
	snap := f.g.Snapshot()
	g2, err := FromSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumUsers() != f.g.NumUsers() || g2.NumResources() != f.g.NumResources() ||
		g2.NumContainers() != f.g.NumContainers() {
		t.Fatal("sizes differ after round trip")
	}
	// Reachability must be preserved exactly for every user and
	// traversal configuration.
	for u := UserID(0); int(u) < f.g.NumUsers(); u++ {
		for _, opts := range []TraversalOptions{
			{MaxDistance: 0},
			{MaxDistance: 1},
			{MaxDistance: 2},
			{MaxDistance: 2, IncludeFriends: true},
			{MaxDistance: 2, Networks: []Network{Twitter}},
		} {
			a := f.g.ResourcesWithin(u, opts)
			b := g2.ResourcesWithin(u, opts)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("user %d opts %+v: %v vs %v", u, opts, a, b)
			}
		}
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	f := buildPaperExample()
	a := f.g.Snapshot()
	b := f.g.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Error("snapshots of the same graph differ")
	}
}

func TestFromSnapshotValidation(t *testing.T) {
	base := buildPaperExample().g.Snapshot()

	corrupt := func(mutate func(*Snapshot)) error {
		f := buildPaperExample()
		s := f.g.Snapshot()
		mutate(s)
		_, err := FromSnapshot(s)
		return err
	}

	cases := []struct {
		name   string
		mutate func(*Snapshot)
	}{
		{"user id gap", func(s *Snapshot) { s.Users[1].ID = 99 }},
		{"resource id gap", func(s *Snapshot) { s.Resources[0].ID = 99 }},
		{"container id gap", func(s *Snapshot) { s.Containers[0].ID = 99 }},
		{"resource bad creator", func(s *Snapshot) { s.Resources[0].Creator = 99 }},
		{"resource bad container", func(s *Snapshot) { s.Resources[0].Container = 99 }},
		{"container bad desc", func(s *Snapshot) { s.Containers[0].Desc = 9999 }},
		{"profile bad user", func(s *Snapshot) { s.Profiles[0].User = 99 }},
		{"profile bad resource", func(s *Snapshot) { s.Profiles[0].Resource = 9999 }},
		{"owns bad resource", func(s *Snapshot) { s.Owns[0].Resource = 9999 }},
		{"relatesTo bad container", func(s *Snapshot) { s.RelatesTo[0].Container = 99 }},
		{"contains bad resource", func(s *Snapshot) { s.Contains[0].Resource = 9999 }},
		{"self follow", func(s *Snapshot) { s.Follows[0].To = s.Follows[0].From }},
		{"follow bad user", func(s *Snapshot) { s.Follows[0].To = 99 }},
	}
	for _, tc := range cases {
		if err := corrupt(tc.mutate); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// The untouched snapshot must still load.
	if _, err := FromSnapshot(base); err != nil {
		t.Fatalf("clean snapshot rejected: %v", err)
	}
}

// randomGraph builds a random but valid graph for property tests.
func randomGraph(r *rand.Rand) *Graph {
	g := New()
	nUsers := 3 + r.Intn(10)
	users := make([]UserID, nUsers)
	for i := range users {
		users[i] = g.AddUser("u", i%2 == 0)
	}
	for _, u := range users {
		for _, net := range Networks {
			if r.Intn(2) == 0 {
				g.SetProfile(u, net, "profile text")
			}
		}
	}
	nCont := r.Intn(4)
	conts := make([]ContainerID, 0, nCont)
	for i := 0; i < nCont; i++ {
		owner := users[r.Intn(nUsers)]
		conts = append(conts, g.AddContainer(Facebook, ContainerGroup, owner, "grp", "desc"))
	}
	for i := 0; i < 5+r.Intn(20); i++ {
		creator := users[r.Intn(nUsers)]
		if len(conts) > 0 && r.Intn(3) == 0 {
			g.AddContainedResource(KindGroupPost, conts[r.Intn(len(conts))], creator, "post")
		} else {
			rid := g.AddResource(Twitter, KindTweet, creator, "tweet")
			g.Owns(creator, rid)
			if r.Intn(4) == 0 {
				g.Annotates(users[r.Intn(nUsers)], rid)
			}
		}
	}
	for _, u := range users {
		if len(conts) > 0 && r.Intn(2) == 0 {
			g.RelatesTo(u, conts[r.Intn(len(conts))])
		}
	}
	for i := 0; i < nUsers; i++ {
		a, b := users[r.Intn(nUsers)], users[r.Intn(nUsers)]
		if a != b {
			g.Follows(a, b, Twitter)
		}
	}
	return g
}

// Property: snapshot round trips preserve reachability on random
// graphs.
func TestSnapshotRoundTripRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		g2, err := FromSnapshot(g.Snapshot())
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		for u := UserID(0); int(u) < g.NumUsers(); u++ {
			a := g.ResourcesWithin(u, TraversalOptions{MaxDistance: 2})
			b := g2.ResourcesWithin(u, TraversalOptions{MaxDistance: 2})
			if !reflect.DeepEqual(a, b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: hits at MaxDistance d are a subset of hits at d+1, and
// recorded distances never increase when the bound grows.
func TestTraversalMonotoneInDistance(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		for u := UserID(0); int(u) < g.NumUsers(); u++ {
			prev := map[ResourceID]int{}
			for d := 0; d <= 2; d++ {
				cur := map[ResourceID]int{}
				for _, h := range g.ResourcesWithin(u, TraversalOptions{MaxDistance: d}) {
					cur[h.Resource] = h.Distance
					if h.Distance > d {
						return false
					}
				}
				for rID, dist := range prev {
					got, ok := cur[rID]
					if !ok || got > dist {
						return false // lost a resource or demoted it
					}
				}
				prev = cur
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: IncludeFriends only adds hits, never removes or demotes.
func TestTraversalFriendsMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomGraph(r)
		for u := UserID(0); int(u) < g.NumUsers(); u++ {
			base := map[ResourceID]int{}
			for _, h := range g.ResourcesWithin(u, TraversalOptions{MaxDistance: 2}) {
				base[h.Resource] = h.Distance
			}
			with := map[ResourceID]int{}
			for _, h := range g.ResourcesWithin(u, TraversalOptions{MaxDistance: 2, IncludeFriends: true}) {
				with[h.Resource] = h.Distance
			}
			for rID, dist := range base {
				got, ok := with[rID]
				if !ok || got > dist {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
