package socialgraph

import (
	"sort"
	"time"

	"expertfind/internal/telemetry"
)

// Traversal metrics: ResourceCandidateMap is the expensive structure
// behind expert ranking; these expose how often it is rebuilt (cache
// misses upstream) and how much graph it walks.
var (
	mTraversals = telemetry.Default().Counter(
		"expertfind_graph_traversals_total",
		"Per-candidate ResourcesWithin traversals performed by ResourceCandidateMap.")
	mTraversalHits = telemetry.Default().Counter(
		"expertfind_graph_traversal_resources_total",
		"Resource hits (candidate, resource, distance) collected by ResourceCandidateMap.")
	mTraversalSeconds = telemetry.Default().Histogram(
		"expertfind_graph_traversal_duration_seconds",
		"Wall time of one full ResourceCandidateMap build.", nil)
)

// TraversalOptions controls the reach of the social-graph exploration
// around an expert candidate (paper §2.2, Table 1).
type TraversalOptions struct {
	// MaxDistance is the maximum graph distance of the resources to
	// collect: 0 (profile only), 1, or 2. Distances are cumulative, as
	// in the paper's experiments: distance 2 includes distances 0 and 1.
	MaxDistance int
	// Networks restricts the exploration to the given platforms; nil
	// means all of them.
	Networks []Network
	// IncludeFriends extends the follow-based paths to bidirectional
	// (friendship) relationships. The paper excludes friends by
	// default, having verified empirically (§3.3.3, Table 2) that
	// their resources do not improve the matching.
	IncludeFriends bool
}

// Hit is a resource reached by the traversal, with its minimal graph
// distance from the candidate.
type Hit struct {
	Resource ResourceID
	Distance int
}

// ResourcesWithin enumerates the resources related to candidate u at
// distance ≤ opts.MaxDistance, following the paths of Table 1:
//
//	distance 0: the candidate's profile(s);
//	distance 1: resources the candidate owns/creates/annotates,
//	            descriptions of containers the candidate relates to,
//	            profiles of users the candidate follows;
//	distance 2: resources contained in the candidate's containers,
//	            resources owned/created/annotated by followed users,
//	            descriptions of the followed users' containers,
//	            profiles of users followed by followed users.
//
// A resource reachable through several paths is reported once at its
// minimal distance. Hits are ordered by (distance, resource ID).
// Tombstoned resources are not reported.
func (g *Graph) ResourcesWithin(u UserID, opts TraversalOptions) []Hit {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.resourcesWithin(u, opts)
}

// resourcesWithin is ResourcesWithin without the lock; the caller
// holds the read lock.
func (g *Graph) resourcesWithin(u UserID, opts TraversalOptions) []Hit {
	g.user(u)
	nets := opts.Networks
	if nets == nil {
		nets = Networks
	}
	inNet := make(map[Network]bool, len(nets))
	for _, n := range nets {
		inNet[n] = true
	}

	dist := make(map[ResourceID]int)
	record := func(r ResourceID, d int) {
		if g.deleted[r] || !inNet[g.resources[r].Network] {
			return
		}
		if prev, ok := dist[r]; !ok || d < prev {
			dist[r] = d
		}
	}

	// Distance 0: candidate profiles.
	for _, net := range nets {
		if rid, ok := g.profiles[profileKey{u, net}]; ok {
			record(rid, 0)
		}
	}

	if opts.MaxDistance >= 1 {
		for _, r := range g.owns[u] {
			record(r, 1)
		}
		for _, r := range g.creates[u] {
			record(r, 1)
		}
		for _, r := range g.annotates[u] {
			record(r, 1)
		}
		for _, c := range g.relatesTo[u] {
			record(g.containers[c].Desc, 1)
		}
		for _, net := range nets {
			for _, v := range g.followed(u, net, opts.IncludeFriends) {
				if rid, ok := g.profiles[profileKey{v, net}]; ok {
					record(rid, 1)
				}
			}
		}
	}

	if opts.MaxDistance >= 2 {
		for _, c := range g.relatesTo[u] {
			for _, r := range g.contains[c] {
				record(r, 2)
			}
		}
		for _, net := range nets {
			for _, v := range g.followed(u, net, opts.IncludeFriends) {
				for _, r := range g.owns[v] {
					record(r, 2)
				}
				for _, r := range g.creates[v] {
					record(r, 2)
				}
				for _, r := range g.annotates[v] {
					record(r, 2)
				}
				for _, c := range g.relatesTo[v] {
					record(g.containers[c].Desc, 2)
				}
				for _, w := range g.followed(v, net, opts.IncludeFriends) {
					if w == u {
						continue
					}
					if rid, ok := g.profiles[profileKey{w, net}]; ok {
						record(rid, 2)
					}
				}
			}
		}
	}

	hits := make([]Hit, 0, len(dist))
	for r, d := range dist {
		hits = append(hits, Hit{Resource: r, Distance: d})
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Distance != hits[j].Distance {
			return hits[i].Distance < hits[j].Distance
		}
		return hits[i].Resource < hits[j].Resource
	})
	return hits
}

// followed returns the users v that u follows on net. When
// includeFriends is false, bidirectional (friendship) relationships
// are excluded: only genuine followed users — the thematically
// focused accounts of §2.2 — are returned. The result is sorted.
func (g *Graph) followed(u UserID, net Network, includeFriends bool) []UserID {
	m := g.follows[net]
	if m == nil {
		return nil
	}
	var out []UserID
	for v := range m[u] {
		if !includeFriends && m[v][u] {
			continue // mutual: a friend, not a followed user
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Followed exposes the followed-user list of u on net (friends
// excluded unless includeFriends).
func (g *Graph) Followed(u UserID, net Network, includeFriends bool) []UserID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.user(u)
	return g.followed(u, net, includeFriends)
}

// CandidateDistance associates an expert candidate with the distance
// at which a resource was reached from it.
type CandidateDistance struct {
	Candidate UserID
	Distance  int
}

// ResourceCandidateMap inverts ResourcesWithin over a set of
// candidates: for every reachable resource it lists the candidates
// that reach it, with their minimal distance. This is the structure
// the expert-ranking step (Eq. 3) consumes to attribute relevant
// resources to candidates.
func (g *Graph) ResourceCandidateMap(candidates []UserID, opts TraversalOptions) map[ResourceID][]CandidateDistance {
	defer mTraversalSeconds.ObserveSince(time.Now())
	g.mu.RLock()
	defer g.mu.RUnlock()
	hits := 0
	out := make(map[ResourceID][]CandidateDistance)
	for _, u := range candidates {
		for _, h := range g.resourcesWithin(u, opts) {
			out[h.Resource] = append(out[h.Resource], CandidateDistance{Candidate: u, Distance: h.Distance})
			hits++
		}
	}
	mTraversals.Add(float64(len(candidates)))
	mTraversalHits.Add(float64(hits))
	return out
}

// DistanceCounts tallies, per network, how many distinct resources are
// reachable from any candidate at each distance (the statistic plotted
// in Fig. 5a). The result maps network → [3]int counts for distances
// 0, 1, 2.
func (g *Graph) DistanceCounts(candidates []UserID, opts TraversalOptions) map[Network][3]int {
	type key struct {
		net Network
		r   ResourceID
	}
	best := make(map[key]int)
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, u := range candidates {
		for _, h := range g.resourcesWithin(u, opts) {
			k := key{g.resources[h.Resource].Network, h.Resource}
			if prev, ok := best[k]; !ok || h.Distance < prev {
				best[k] = h.Distance
			}
		}
	}
	out := make(map[Network][3]int)
	for k, d := range best {
		counts := out[k.net]
		counts[d]++
		out[k.net] = counts
	}
	return out
}
