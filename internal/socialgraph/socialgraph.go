// Package socialgraph implements the platform-independent social
// network meta-model of the paper (Fig. 2): User Profiles, Resources,
// Resource Containers and URLs, connected by social relationships
// (friendship / follows), creates, owns, annotates, relatesTo and
// contains edges.
//
// Every textual object — including user profiles and container
// descriptions — is represented as a Resource, so that the same
// indexing and matching machinery applies uniformly; the paper treats
// profiles exactly this way (they are the distance-0 resources of
// Table 1).
//
// The central query is ResourcesWithin, which enumerates the resources
// related to an expert candidate at graph distance 0, 1 and 2
// following precisely the paths of Table 1.
package socialgraph

import (
	"fmt"
	"sync"
)

// Network identifies a social platform.
type Network string

// The social networks considered in the paper.
const (
	Facebook Network = "facebook"
	Twitter  Network = "twitter"
	LinkedIn Network = "linkedin"
)

// Networks lists all platforms in the paper's order.
var Networks = []Network{Facebook, Twitter, LinkedIn}

// UserID identifies a user (a person, possibly present on several
// networks).
type UserID int32

// ResourceID identifies a resource.
type ResourceID int32

// ContainerID identifies a resource container.
type ContainerID int32

// NoContainer marks a resource that lives outside any container.
const NoContainer ContainerID = -1

// ResourceKind classifies resources by their platform role.
type ResourceKind uint8

// Resource kinds.
const (
	KindProfile       ResourceKind = iota // user profile text (distance-0 resource)
	KindPost                              // Facebook status update / wall post
	KindTweet                             // Twitter tweet
	KindGroupPost                         // post inside a group
	KindPagePost                          // post on a page
	KindUpdate                            // LinkedIn status update
	KindContainerDesc                     // textual description of a container
)

// String returns the kind name.
func (k ResourceKind) String() string {
	switch k {
	case KindProfile:
		return "profile"
	case KindPost:
		return "post"
	case KindTweet:
		return "tweet"
	case KindGroupPost:
		return "group-post"
	case KindPagePost:
		return "page-post"
	case KindUpdate:
		return "update"
	case KindContainerDesc:
		return "container-desc"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// User is a person registered on one or more networks.
type User struct {
	ID        UserID
	Name      string
	Candidate bool // member of the expert-candidate pool CE
}

// Resource is any informative material found inside a social platform.
type Resource struct {
	ID        ResourceID
	Network   Network
	Kind      ResourceKind
	Text      string
	URLs      []string    // links to external Web pages
	Creator   UserID      // who authored the resource
	Container ContainerID // NoContainer when standalone
}

// ContainerKind classifies resource containers.
type ContainerKind uint8

// Container kinds.
const (
	ContainerGroup ContainerKind = iota // Facebook / LinkedIn group
	ContainerPage                       // Facebook page
)

// String returns the container kind name.
func (k ContainerKind) String() string {
	if k == ContainerPage {
		return "page"
	}
	return "group"
}

// Container is a logical aggregator of resources (group, page),
// typically focused on a specific topic or real-world entity.
type Container struct {
	ID      ContainerID
	Network Network
	Kind    ContainerKind
	Name    string
	Desc    ResourceID // the description, itself a resource
}

type profileKey struct {
	user UserID
	net  Network
}

// Graph is a mutable in-memory social graph spanning all networks.
// Graph methods panic when given identifiers that were not returned
// by the corresponding Add method, mirroring slice indexing: the graph
// is built programmatically by generators and loaders that control
// their inputs.
//
// Graph is safe for concurrent use: public mutators hold a graph-wide
// write lock, public readers (traversals included) hold the read lock
// for their full duration, so a live ingest applying resource changes
// never exposes a torn view to concurrent queries.
type Graph struct {
	mu sync.RWMutex

	users      []User
	resources  []Resource
	containers []Container

	profiles map[profileKey]ResourceID

	owns      map[UserID][]ResourceID
	creates   map[UserID][]ResourceID
	annotates map[UserID][]ResourceID
	relatesTo map[UserID][]ContainerID
	contains  map[ContainerID][]ResourceID
	follows   map[Network]map[UserID]map[UserID]bool

	// deleted tombstones removed resources. Resource IDs are positional
	// (slice indices), so records are never physically deleted; the
	// tombstone hides them from traversal and corpus builds while their
	// record stays readable for delta bookkeeping.
	deleted map[ResourceID]bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		profiles:  make(map[profileKey]ResourceID),
		owns:      make(map[UserID][]ResourceID),
		creates:   make(map[UserID][]ResourceID),
		annotates: make(map[UserID][]ResourceID),
		relatesTo: make(map[UserID][]ContainerID),
		contains:  make(map[ContainerID][]ResourceID),
		follows:   make(map[Network]map[UserID]map[UserID]bool),
		deleted:   make(map[ResourceID]bool),
	}
}

// AddUser registers a user and returns its ID.
func (g *Graph) AddUser(name string, candidate bool) UserID {
	g.mu.Lock()
	defer g.mu.Unlock()
	id := UserID(len(g.users))
	g.users = append(g.users, User{ID: id, Name: name, Candidate: candidate})
	return id
}

// SetProfile attaches profile text for user on a network, creating
// the backing profile resource. A user has at most one profile per
// network; setting it twice replaces the text.
func (g *Graph) SetProfile(u UserID, net Network, text string, urls ...string) ResourceID {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.user(u)
	key := profileKey{u, net}
	if rid, ok := g.profiles[key]; ok {
		g.resources[rid].Text = text
		g.resources[rid].URLs = urls
		return rid
	}
	rid := g.addResource(Resource{
		Network: net, Kind: KindProfile, Text: text, URLs: urls,
		Creator: u, Container: NoContainer,
	})
	g.profiles[key] = rid
	return rid
}

// SetResourceText replaces the text and URLs of an existing resource
// in place — the "update" leg of an ingest delta. The resource must
// not be deleted.
func (g *Graph) SetResourceText(r ResourceID, text string, urls ...string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	res := g.resource(r)
	if g.deleted[r] {
		panic(fmt.Sprintf("socialgraph: updating deleted resource %d", r))
	}
	res.Text = text
	res.URLs = urls
}

// RemoveResource tombstones a resource: it disappears from traversals
// and corpus builds, while its record remains readable (IDs are
// positional, so nothing shifts). Profiles cannot be removed — replace
// them via SetProfile. Removing an unknown or already-removed resource
// panics.
func (g *Graph) RemoveResource(r ResourceID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	res := g.resource(r)
	if res.Kind == KindProfile {
		panic(fmt.Sprintf("socialgraph: removing profile resource %d", r))
	}
	if g.deleted[r] {
		panic(fmt.Sprintf("socialgraph: removing already-removed resource %d", r))
	}
	g.deleted[r] = true
}

// ResourceDeleted reports whether r has been tombstoned.
func (g *Graph) ResourceDeleted(r ResourceID) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.resource(r)
	return g.deleted[r]
}

// NumDeletedResources returns the number of tombstoned resources.
func (g *Graph) NumDeletedResources() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.deleted)
}

// Profile returns the profile resource of user u on net, if any.
func (g *Graph) Profile(u UserID, net Network) (ResourceID, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	rid, ok := g.profiles[profileKey{u, net}]
	return rid, ok
}

// AddResource registers a standalone resource created by creator and
// returns its ID. The creates edge is recorded automatically.
func (g *Graph) AddResource(net Network, kind ResourceKind, creator UserID, text string, urls ...string) ResourceID {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.user(creator)
	rid := g.addResource(Resource{
		Network: net, Kind: kind, Text: text, URLs: urls,
		Creator: creator, Container: NoContainer,
	})
	g.creates[creator] = append(g.creates[creator], rid)
	return rid
}

// AddContainer registers a container with its textual description
// (authored by owner, typically the group/page creator) and returns
// its ID.
func (g *Graph) AddContainer(net Network, kind ContainerKind, owner UserID, name, desc string) ContainerID {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.user(owner)
	descID := g.addResource(Resource{
		Network: net, Kind: KindContainerDesc, Text: desc,
		Creator: owner, Container: NoContainer,
	})
	cid := ContainerID(len(g.containers))
	g.containers = append(g.containers, Container{
		ID: cid, Network: net, Kind: kind, Name: name, Desc: descID,
	})
	return cid
}

// AddContainedResource registers a resource inside container c,
// created by creator, recording both the creates and contains edges.
func (g *Graph) AddContainedResource(kind ResourceKind, c ContainerID, creator UserID, text string, urls ...string) ResourceID {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.user(creator)
	cont := g.container(c)
	rid := g.addResource(Resource{
		Network: cont.Network, Kind: kind, Text: text, URLs: urls,
		Creator: creator, Container: c,
	})
	g.creates[creator] = append(g.creates[creator], rid)
	g.contains[c] = append(g.contains[c], rid)
	return rid
}

func (g *Graph) addResource(r Resource) ResourceID {
	r.ID = ResourceID(len(g.resources))
	g.resources = append(g.resources, r)
	return r.ID
}

// Owns records that the resource appears on u's wall or stream
// (published there, possibly created by someone else).
func (g *Graph) Owns(u UserID, r ResourceID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.user(u)
	g.resource(r)
	g.owns[u] = append(g.owns[u], r)
}

// Annotates records that u liked / marked as favourite the resource.
func (g *Graph) Annotates(u UserID, r ResourceID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.user(u)
	g.resource(r)
	g.annotates[u] = append(g.annotates[u], r)
}

// RelatesTo records that u belongs to (or likes) the container.
func (g *Graph) RelatesTo(u UserID, c ContainerID) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.user(u)
	g.container(c)
	g.relatesTo[u] = append(g.relatesTo[u], c)
}

// Follows records the directed social relationship a → b on net.
// A bidirectional pair of Follows edges constitutes a friendship
// (paper §2.2): Facebook friendships are stored as mutual follows.
func (g *Graph) Follows(a, b UserID, net Network) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addFollows(a, b, net)
}

// addFollows is Follows without the lock; the caller holds it.
func (g *Graph) addFollows(a, b UserID, net Network) {
	g.user(a)
	g.user(b)
	if a == b {
		panic("socialgraph: self-follow")
	}
	m := g.follows[net]
	if m == nil {
		m = make(map[UserID]map[UserID]bool)
		g.follows[net] = m
	}
	if m[a] == nil {
		m[a] = make(map[UserID]bool)
	}
	m[a][b] = true
}

// Befriend records a bidirectional relationship on net.
func (g *Graph) Befriend(a, b UserID, net Network) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.addFollows(a, b, net)
	g.addFollows(b, a, net)
}

// IsFriend reports whether a and b mutually follow each other on net.
func (g *Graph) IsFriend(a, b UserID, net Network) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	m := g.follows[net]
	return m != nil && m[a][b] && m[b][a]
}

// FollowsEdge reports whether the directed edge a → b exists on net.
func (g *Graph) FollowsEdge(a, b UserID, net Network) bool {
	g.mu.RLock()
	defer g.mu.RUnlock()
	m := g.follows[net]
	return m != nil && m[a][b]
}

// User returns the user record.
func (g *Graph) User(u UserID) User {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return *g.user(u)
}

// Resource returns the resource record. Tombstoned resources remain
// readable (see RemoveResource).
func (g *Graph) Resource(r ResourceID) Resource {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return *g.resource(r)
}

// Container returns the container record.
func (g *Graph) Container(c ContainerID) Container {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return *g.container(c)
}

// NumUsers returns the number of registered users.
func (g *Graph) NumUsers() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.users)
}

// NumResources returns the number of resource slots, profiles,
// container descriptions and tombstoned resources included (IDs are
// positional, so the count never shrinks).
func (g *Graph) NumResources() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.resources)
}

// NumContainers returns the number of containers.
func (g *Graph) NumContainers() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.containers)
}

// ContainedResources returns the resources contained in c (a copy).
func (g *Graph) ContainedResources(c ContainerID) []ResourceID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.container(c)
	out := make([]ResourceID, len(g.contains[c]))
	copy(out, g.contains[c])
	return out
}

// OwnedBy returns the resources on u's wall or stream (a copy).
func (g *Graph) OwnedBy(u UserID) []ResourceID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.user(u)
	out := make([]ResourceID, len(g.owns[u]))
	copy(out, g.owns[u])
	return out
}

// CreatedBy returns the resources authored by u (a copy).
func (g *Graph) CreatedBy(u UserID) []ResourceID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.user(u)
	out := make([]ResourceID, len(g.creates[u]))
	copy(out, g.creates[u])
	return out
}

// AnnotatedBy returns the resources u liked or favourited (a copy).
func (g *Graph) AnnotatedBy(u UserID) []ResourceID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.user(u)
	out := make([]ResourceID, len(g.annotates[u]))
	copy(out, g.annotates[u])
	return out
}

// RelatedContainers returns the containers u relates to (a copy).
func (g *Graph) RelatedContainers(u UserID) []ContainerID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.user(u)
	out := make([]ContainerID, len(g.relatesTo[u]))
	copy(out, g.relatesTo[u])
	return out
}

// Users returns all users.
func (g *Graph) Users() []User {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]User, len(g.users))
	copy(out, g.users)
	return out
}

// Candidates returns the expert-candidate pool CE, ordered by ID.
func (g *Graph) Candidates() []UserID {
	g.mu.RLock()
	defer g.mu.RUnlock()
	var out []UserID
	for _, u := range g.users {
		if u.Candidate {
			out = append(out, u.ID)
		}
	}
	return out
}

func (g *Graph) user(u UserID) *User {
	if int(u) < 0 || int(u) >= len(g.users) {
		panic(fmt.Sprintf("socialgraph: unknown user %d", u))
	}
	return &g.users[u]
}

func (g *Graph) resource(r ResourceID) *Resource {
	if int(r) < 0 || int(r) >= len(g.resources) {
		panic(fmt.Sprintf("socialgraph: unknown resource %d", r))
	}
	return &g.resources[r]
}

func (g *Graph) container(c ContainerID) *Container {
	if int(c) < 0 || int(c) >= len(g.containers) {
		panic(fmt.Sprintf("socialgraph: unknown container %d", c))
	}
	return &g.containers[c]
}
