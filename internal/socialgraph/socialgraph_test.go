package socialgraph

import (
	"testing"
)

// buildPaperExample reproduces the Facebook example of Fig. 3a plus a
// Twitter follow structure like Fig. 3b.
//
// Facebook: Alice and Bob are friends. Alice creates p1 (owned by
// her), creates p2 on Bob's wall (owned by Bob), likes p3 created and
// owned by Bob. Alice belongs to a group containing posts g1, g2
// created by Charlie.
//
// Twitter: Alice follows Charlie (unidirectional); Alice and Bob
// mutually follow (friends). Charlie owns tweets t1, t2; Bob owns t3;
// Alice favourites t3; Charlie follows Dave who has a profile.
type fixture struct {
	g                       *Graph
	alice, bob, charlie     UserID
	dave                    UserID
	p1, p2, p3, g1, g2      ResourceID
	t1, t2, t3              ResourceID
	aliceFBProf, bobFBProf  ResourceID
	aliceTWProf, charTWProf ResourceID
	daveTWProf              ResourceID
	groupDesc               ResourceID
	group                   ContainerID
}

func buildPaperExample() *fixture {
	f := &fixture{g: New()}
	g := f.g
	f.alice = g.AddUser("Alice", true)
	f.bob = g.AddUser("Bob", true)
	f.charlie = g.AddUser("Charlie", false)
	f.dave = g.AddUser("Dave", false)

	// Facebook
	f.aliceFBProf = g.SetProfile(f.alice, Facebook, "hobby swimming")
	f.bobFBProf = g.SetProfile(f.bob, Facebook, "hobby football")
	g.Befriend(f.alice, f.bob, Facebook)
	f.p1 = g.AddResource(Facebook, KindPost, f.alice, "post at 09.00 by alice")
	g.Owns(f.alice, f.p1)
	f.p2 = g.AddResource(Facebook, KindPost, f.alice, "post at 09.05 by alice on bob wall")
	g.Owns(f.bob, f.p2)
	f.p3 = g.AddResource(Facebook, KindPost, f.bob, "post at 09.10 by bob")
	g.Owns(f.bob, f.p3)
	g.Annotates(f.alice, f.p3) // like
	f.group = g.AddContainer(Facebook, ContainerGroup, f.charlie, "Swimming Club", "a group about swimming")
	f.groupDesc = g.Container(f.group).Desc
	g.RelatesTo(f.alice, f.group)
	f.g1 = g.AddContainedResource(KindGroupPost, f.group, f.charlie, "group post at 08.00")
	f.g2 = g.AddContainedResource(KindGroupPost, f.group, f.charlie, "group post at 08.05")

	// Twitter
	f.aliceTWProf = g.SetProfile(f.alice, Twitter, "i tweet about swimming")
	g.SetProfile(f.bob, Twitter, "bob on twitter")
	f.charTWProf = g.SetProfile(f.charlie, Twitter, "coach at the pool")
	f.daveTWProf = g.SetProfile(f.dave, Twitter, "swimming journalist")
	g.Follows(f.alice, f.charlie, Twitter) // followed user
	g.Befriend(f.alice, f.bob, Twitter)    // mutual: friends
	f.t1 = g.AddResource(Twitter, KindTweet, f.charlie, "tweet at 10.00")
	g.Owns(f.charlie, f.t1)
	f.t2 = g.AddResource(Twitter, KindTweet, f.charlie, "tweet at 10.10")
	g.Owns(f.charlie, f.t2)
	f.t3 = g.AddResource(Twitter, KindTweet, f.bob, "tweet at 10.20")
	g.Owns(f.bob, f.t3)
	g.Annotates(f.alice, f.t3) // favourite
	g.Follows(f.charlie, f.dave, Twitter)
	return f
}

func hitMap(hits []Hit) map[ResourceID]int {
	m := make(map[ResourceID]int, len(hits))
	for _, h := range hits {
		m[h.Resource] = h.Distance
	}
	return m
}

func TestDistanceZeroProfilesOnly(t *testing.T) {
	f := buildPaperExample()
	hits := f.g.ResourcesWithin(f.alice, TraversalOptions{MaxDistance: 0})
	m := hitMap(hits)
	if len(m) != 2 {
		t.Fatalf("got %d hits %v, want 2 profiles", len(m), m)
	}
	if m[f.aliceFBProf] != 0 || m[f.aliceTWProf] != 0 {
		t.Errorf("profiles not at distance 0: %v", m)
	}
}

func TestDistanceOnePaths(t *testing.T) {
	f := buildPaperExample()
	m := hitMap(f.g.ResourcesWithin(f.alice, TraversalOptions{MaxDistance: 1}))

	wantAt1 := map[ResourceID]string{
		f.p1:         "created+owned post",
		f.p2:         "created post on bob's wall",
		f.p3:         "annotated (liked) post",
		f.groupDesc:  "description of related container",
		f.charTWProf: "profile of followed user",
		f.t3:         "favourited tweet",
	}
	for r, why := range wantAt1 {
		if d, ok := m[r]; !ok || d != 1 {
			t.Errorf("%s (res %d): distance %d (present=%v), want 1", why, r, d, ok)
		}
	}
	// Friend-only reachable content must be absent.
	if _, ok := m[f.bobFBProf]; ok {
		t.Error("friend Bob's profile reached without IncludeFriends")
	}
	// Distance-2 content must be absent at MaxDistance 1.
	if _, ok := m[f.g1]; ok {
		t.Error("group post reached at MaxDistance 1")
	}
	if _, ok := m[f.t1]; ok {
		t.Error("followed user's tweet reached at MaxDistance 1")
	}
}

func TestDistanceTwoPaths(t *testing.T) {
	f := buildPaperExample()
	m := hitMap(f.g.ResourcesWithin(f.alice, TraversalOptions{MaxDistance: 2}))

	wantAt2 := map[ResourceID]string{
		f.g1:         "post contained in related group",
		f.g2:         "post contained in related group",
		f.t1:         "tweet owned by followed user",
		f.t2:         "tweet owned by followed user",
		f.daveTWProf: "profile of followed-of-followed user",
	}
	for r, why := range wantAt2 {
		if d, ok := m[r]; !ok || d != 2 {
			t.Errorf("%s (res %d): distance %d (present=%v), want 2", why, r, d, ok)
		}
	}
	// Distance-1 resources keep their minimal distance.
	if m[f.p1] != 1 || m[f.t3] != 1 {
		t.Errorf("distance-1 resources re-ranked: p1=%d t3=%d", m[f.p1], m[f.t3])
	}
}

func TestIncludeFriends(t *testing.T) {
	f := buildPaperExample()
	// Without friends, Bob's Twitter profile is unreachable from Alice.
	m := hitMap(f.g.ResourcesWithin(f.alice, TraversalOptions{MaxDistance: 2}))
	if _, ok := m[f.g.mustProfile(f.bob, Twitter)]; ok {
		t.Error("friend profile reachable without IncludeFriends")
	}
	m = hitMap(f.g.ResourcesWithin(f.alice, TraversalOptions{MaxDistance: 2, IncludeFriends: true}))
	if d := m[f.g.mustProfile(f.bob, Twitter)]; d != 1 {
		t.Errorf("friend profile at distance %d with IncludeFriends, want 1", d)
	}
	// Friend's owned tweet now reachable at distance 2 (it was already
	// at 1 via the annotation; check min-dedup keeps 1).
	if d := m[f.t3]; d != 1 {
		t.Errorf("annotated tweet at distance %d, want 1 (min dedup)", d)
	}
}

func TestNetworkFilter(t *testing.T) {
	f := buildPaperExample()
	m := hitMap(f.g.ResourcesWithin(f.alice, TraversalOptions{MaxDistance: 2, Networks: []Network{Twitter}}))
	for r := range m {
		if net := f.g.Resource(r).Network; net != Twitter {
			t.Errorf("resource %d from %s leaked through Twitter filter", r, net)
		}
	}
	if _, ok := m[f.aliceTWProf]; !ok {
		t.Error("twitter profile missing")
	}
	if _, ok := m[f.p1]; ok {
		t.Error("facebook post leaked")
	}
}

func TestHitsSorted(t *testing.T) {
	f := buildPaperExample()
	hits := f.g.ResourcesWithin(f.alice, TraversalOptions{MaxDistance: 2})
	for i := 1; i < len(hits); i++ {
		a, b := hits[i-1], hits[i]
		if a.Distance > b.Distance || (a.Distance == b.Distance && a.Resource >= b.Resource) {
			t.Fatalf("hits not sorted at %d: %v then %v", i, a, b)
		}
	}
}

func TestIsFriendAndFollowsEdge(t *testing.T) {
	f := buildPaperExample()
	g := f.g
	if !g.IsFriend(f.alice, f.bob, Twitter) || !g.IsFriend(f.bob, f.alice, Twitter) {
		t.Error("mutual follows not detected as friendship")
	}
	if g.IsFriend(f.alice, f.charlie, Twitter) {
		t.Error("unidirectional follow detected as friendship")
	}
	if !g.FollowsEdge(f.alice, f.charlie, Twitter) || g.FollowsEdge(f.charlie, f.alice, Twitter) {
		t.Error("follows edges wrong")
	}
	if g.IsFriend(f.alice, f.bob, LinkedIn) {
		t.Error("friendship leaked across networks")
	}
}

func TestFollowedExcludesFriends(t *testing.T) {
	f := buildPaperExample()
	got := f.g.Followed(f.alice, Twitter, false)
	if len(got) != 1 || got[0] != f.charlie {
		t.Errorf("Followed = %v, want [charlie]", got)
	}
	got = f.g.Followed(f.alice, Twitter, true)
	if len(got) != 2 {
		t.Errorf("Followed with friends = %v, want 2 users", got)
	}
}

func TestResourceCandidateMap(t *testing.T) {
	f := buildPaperExample()
	rcm := f.g.ResourceCandidateMap([]UserID{f.alice, f.bob}, TraversalOptions{MaxDistance: 2})
	// p2 is owned by Bob (dist 1) and created by Alice (dist 1).
	cds := rcm[f.p2]
	if len(cds) != 2 {
		t.Fatalf("p2 candidates = %v, want both alice and bob", cds)
	}
	for _, cd := range cds {
		if cd.Distance != 1 {
			t.Errorf("p2 candidate %d at distance %d, want 1", cd.Candidate, cd.Distance)
		}
	}
	// g1 reachable only from Alice (via her group) at distance 2.
	cds = rcm[f.g1]
	if len(cds) != 1 || cds[0].Candidate != f.alice || cds[0].Distance != 2 {
		t.Errorf("g1 candidates = %v, want [{alice 2}]", cds)
	}
}

func TestDistanceCounts(t *testing.T) {
	f := buildPaperExample()
	counts := f.g.DistanceCounts([]UserID{f.alice, f.bob}, TraversalOptions{MaxDistance: 2})
	fb := counts[Facebook]
	if fb[0] != 2 { // alice + bob profiles
		t.Errorf("facebook distance-0 count = %d, want 2", fb[0])
	}
	if fb[1] < 3 {
		t.Errorf("facebook distance-1 count = %d, want >= 3", fb[1])
	}
	tw := counts[Twitter]
	if tw[0] != 2 { // alice and bob profiles
		t.Errorf("twitter distance-0 count = %d, want 2", tw[0])
	}
}

func TestCandidates(t *testing.T) {
	f := buildPaperExample()
	c := f.g.Candidates()
	if len(c) != 2 || c[0] != f.alice || c[1] != f.bob {
		t.Errorf("Candidates = %v", c)
	}
}

func TestSetProfileReplaces(t *testing.T) {
	g := New()
	u := g.AddUser("u", true)
	r1 := g.SetProfile(u, Facebook, "first")
	r2 := g.SetProfile(u, Facebook, "second")
	if r1 != r2 {
		t.Fatalf("profile resource changed: %d -> %d", r1, r2)
	}
	if g.Resource(r1).Text != "second" {
		t.Errorf("profile text = %q", g.Resource(r1).Text)
	}
	if g.NumResources() != 1 {
		t.Errorf("NumResources = %d, want 1", g.NumResources())
	}
}

func TestPanicsOnInvalidIDs(t *testing.T) {
	g := New()
	u := g.AddUser("u", true)
	assertPanics(t, "unknown user", func() { g.Owns(UserID(99), 0) })
	assertPanics(t, "unknown resource", func() { g.Annotates(u, ResourceID(99)) })
	assertPanics(t, "unknown container", func() { g.RelatesTo(u, ContainerID(99)) })
	assertPanics(t, "self follow", func() { g.Follows(u, u, Twitter) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: no panic", name)
		}
	}()
	fn()
}

func TestKindStrings(t *testing.T) {
	kinds := []ResourceKind{KindProfile, KindPost, KindTweet, KindGroupPost, KindPagePost, KindUpdate, KindContainerDesc}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad string %q", k, s)
		}
		seen[s] = true
	}
	if ContainerGroup.String() != "group" || ContainerPage.String() != "page" {
		t.Error("container kind strings wrong")
	}
}

// mustProfile is a test helper.
func (g *Graph) mustProfile(u UserID, net Network) ResourceID {
	r, ok := g.Profile(u, net)
	if !ok {
		panic("no profile")
	}
	return r
}
