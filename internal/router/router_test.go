package router

import (
	"errors"
	"fmt"
	"testing"
)

// stubRanker always returns the same ranked pool.
func stubRanker(pool ...RankedExpert) Ranker {
	return RankerFunc(func(string) ([]RankedExpert, error) {
		return append([]RankedExpert(nil), pool...), nil
	})
}

func pool(n int) []RankedExpert {
	out := make([]RankedExpert, n)
	for i := range out {
		out[i] = RankedExpert{Name: fmt.Sprintf("e%02d", i+1), Score: float64(n - i)}
	}
	return out
}

func TestAskPicksTopExperts(t *testing.T) {
	r := New(stubRanker(pool(10)...), Config{CrowdSize: 3})
	a, err := r.Ask("q1")
	if err != nil {
		t.Fatal(err)
	}
	if a.Fallback || a.Partial {
		t.Fatalf("assignment = %+v", a)
	}
	want := []string{"e01", "e02", "e03"}
	for i, name := range want {
		if a.Crowd[i] != name {
			t.Errorf("crowd[%d] = %s, want %s", i, a.Crowd[i], name)
		}
	}
}

func TestBudgetSpreadsLoad(t *testing.T) {
	r := New(stubRanker(pool(10)...), Config{CrowdSize: 2, MaxOpen: 1, Cooldown: 1})
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		a, err := r.Ask(fmt.Sprintf("q%d", i))
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range a.Crowd {
			seen[name] = true
			if r.Load(name) > 1 {
				t.Fatalf("expert %s over budget", name)
			}
		}
	}
	// With budget 1 and no completions, 4 questions × 2 experts hit 8
	// distinct experts.
	if len(seen) != 8 {
		t.Errorf("distinct experts asked = %d, want 8", len(seen))
	}
}

func TestCompleteFreesBudgetAndCoolsDown(t *testing.T) {
	r := New(stubRanker(pool(4)...), Config{CrowdSize: 1, MaxOpen: 1, Cooldown: 1})
	a1, _ := r.Ask("q1")
	if a1.Crowd[0] != "e01" {
		t.Fatalf("crowd = %v", a1.Crowd)
	}
	if err := r.Complete(a1.ID, "e01"); err != nil {
		t.Fatal(err)
	}
	if r.Load("e01") != 0 || r.Answered("e01") != 1 {
		t.Errorf("load=%d answered=%d", r.Load("e01"), r.Answered("e01"))
	}
	// e01 is cooling down: the next question goes to e02.
	a2, _ := r.Ask("q2")
	if a2.Crowd[0] != "e02" {
		t.Errorf("cooldown ignored: %v", a2.Crowd)
	}
	// Cooldown expired after one routed question: e01 is available
	// again (e02 still holds q2).
	a3, _ := r.Ask("q3")
	if a3.Crowd[0] != "e01" {
		t.Errorf("cooldown did not expire: %v", a3.Crowd)
	}
}

func TestCompleteValidation(t *testing.T) {
	r := New(stubRanker(pool(3)...), Config{})
	a, _ := r.Ask("q")
	if err := r.Complete(999, "e01"); err == nil {
		t.Error("unknown assignment accepted")
	}
	if err := r.Complete(a.ID, "nobody"); err == nil {
		t.Error("unassigned expert accepted")
	}
	if err := r.Complete(a.ID, a.Crowd[0]); err != nil {
		t.Fatal(err)
	}
	if err := r.Complete(a.ID, a.Crowd[0]); err == nil {
		t.Error("double completion accepted")
	}
}

func TestAssignmentClosesWhenAllAnswer(t *testing.T) {
	r := New(stubRanker(pool(5)...), Config{CrowdSize: 2})
	a, _ := r.Ask("q")
	if r.OpenQuestions() != 1 {
		t.Fatalf("open = %d", r.OpenQuestions())
	}
	for _, name := range append([]string(nil), a.Crowd...) {
		if err := r.Complete(a.ID, name); err != nil {
			t.Fatal(err)
		}
	}
	if r.OpenQuestions() != 0 {
		t.Errorf("open = %d after all answered", r.OpenQuestions())
	}
}

func TestFallbackWhenNobodyAvailable(t *testing.T) {
	r := New(stubRanker(), Config{})
	a, err := r.Ask("q")
	if err != nil {
		t.Fatal(err)
	}
	if !a.Fallback {
		t.Errorf("assignment = %+v, want fallback", a)
	}
	if r.OpenQuestions() != 0 {
		t.Error("fallback question left open")
	}
}

func TestPartialCrowd(t *testing.T) {
	r := New(stubRanker(pool(2)...), Config{CrowdSize: 3})
	a, _ := r.Ask("q")
	if !a.Partial || len(a.Crowd) != 2 {
		t.Errorf("assignment = %+v", a)
	}
}

func TestMinScoreRatioCutsTail(t *testing.T) {
	r := New(stubRanker(
		RankedExpert{Name: "strong", Score: 100},
		RankedExpert{Name: "weak", Score: 1},
	), Config{CrowdSize: 3, MinScoreRatio: 0.1})
	a, _ := r.Ask("q")
	if len(a.Crowd) != 1 || a.Crowd[0] != "strong" {
		t.Errorf("crowd = %v, want the strong expert only", a.Crowd)
	}
}

func TestRankerErrorPropagates(t *testing.T) {
	r := New(RankerFunc(func(string) ([]RankedExpert, error) {
		return nil, errors.New("boom")
	}), Config{})
	if _, err := r.Ask("q"); err == nil {
		t.Error("ranker error swallowed")
	}
}

func TestLeaderboard(t *testing.T) {
	r := New(stubRanker(pool(3)...), Config{CrowdSize: 1, MaxOpen: 5, Cooldown: 1})
	for i := 0; i < 3; i++ {
		a, _ := r.Ask("q")
		if len(a.Crowd) == 0 {
			t.Fatal("no crowd")
		}
		if err := r.Complete(a.ID, a.Crowd[0]); err != nil {
			t.Fatal(err)
		}
	}
	lb := r.Leaderboard()
	if len(lb) == 0 {
		t.Fatal("empty leaderboard")
	}
	for i := 1; i < len(lb); i++ {
		if lb[i].Score > lb[i-1].Score {
			t.Error("leaderboard not descending")
		}
	}
}
